#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/datasets.h"
#include "storage/table.h"

namespace lqo {
namespace {

Table MakeToyTable() {
  TableBuilder builder("toy");
  builder.AddInt64Column("a");
  builder.AddCategoricalColumn("color", {"blue", "green", "red"});
  builder.AppendRow({10, 0});
  builder.AppendRow({20, 2});
  builder.AppendRow({20, 1});
  return builder.Build();
}

TEST(TableBuilderTest, BuildsWithDerivedStats) {
  Table t = MakeToyTable();
  EXPECT_EQ(t.name(), "toy");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
  const Column& a = t.column(0);
  EXPECT_EQ(a.min_value, 10);
  EXPECT_EQ(a.max_value, 20);
  EXPECT_EQ(a.num_distinct, 2);
  const Column& color = t.column(1);
  EXPECT_EQ(color.num_distinct, 3);
  EXPECT_EQ(color.ValueToString(1), "red");
}

TEST(TableTest, ColumnLookup) {
  Table t = MakeToyTable();
  ASSERT_TRUE(t.ColumnIndex("color").ok());
  EXPECT_EQ(t.ColumnIndex("color").value(), 1u);
  EXPECT_FALSE(t.ColumnIndex("missing").ok());
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("b"));
  EXPECT_EQ(t.ValueAt(2, 0), 20);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeToyTable()).ok());
  EXPECT_FALSE(catalog.AddTable(MakeToyTable()).ok()) << "duplicate allowed";
  EXPECT_TRUE(catalog.HasTable("toy"));
  EXPECT_FALSE(catalog.HasTable("other"));
  ASSERT_TRUE(catalog.GetTable("toy").ok());
  EXPECT_EQ((*catalog.GetTable("toy"))->num_rows(), 3u);
}

TEST(CatalogTest, JoinEdgeValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeToyTable()).ok());
  TableBuilder other("other");
  other.AddInt64Column("toy_a");
  other.AppendRow({10});
  ASSERT_TRUE(catalog.AddTable(other.Build()).ok());

  JoinEdge good{.left_table = "toy",
                .left_column = "a",
                .right_table = "other",
                .right_column = "toy_a"};
  EXPECT_TRUE(catalog.AddJoinEdge(good).ok());
  JoinEdge bad = good;
  bad.right_column = "nope";
  EXPECT_FALSE(catalog.AddJoinEdge(bad).ok());
  EXPECT_EQ(catalog.EdgesOf("toy").size(), 1u);
  EXPECT_EQ(catalog.EdgesOf("other").size(), 1u);
}

class DatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetTest, GeneratesValidCatalog) {
  DatasetOptions options;
  options.scale = 0.1;
  auto catalog_or = MakeDataset(GetParam(), options);
  ASSERT_TRUE(catalog_or.ok());
  const Catalog& catalog = *catalog_or;
  EXPECT_GE(catalog.table_names().size(), 3u);
  EXPECT_GE(catalog.join_edges().size(), 2u);
  for (const std::string& name : catalog.table_names()) {
    const Table& t = **catalog.GetTable(name);
    EXPECT_GT(t.num_rows(), 0u) << name;
    for (const Column& col : t.columns()) {
      EXPECT_GE(col.num_distinct, 1) << name << "." << col.name;
      EXPECT_LE(col.min_value, col.max_value);
    }
  }
  // Every join edge references valid table/columns (AddJoinEdge validated).
  for (const JoinEdge& edge : catalog.join_edges()) {
    EXPECT_TRUE(catalog.HasTable(edge.left_table));
    EXPECT_TRUE(catalog.HasTable(edge.right_table));
  }
}

TEST_P(DatasetTest, DeterministicAcrossCalls) {
  DatasetOptions options;
  options.scale = 0.05;
  options.seed = 99;
  Catalog a = *MakeDataset(GetParam(), options);
  Catalog b = *MakeDataset(GetParam(), options);
  for (const std::string& name : a.table_names()) {
    const Table& ta = **a.GetTable(name);
    const Table& tb = **b.GetTable(name);
    ASSERT_EQ(ta.num_rows(), tb.num_rows()) << name;
    for (size_t c = 0; c < ta.num_columns(); ++c) {
      EXPECT_EQ(ta.column(c).data, tb.column(c).data) << name;
    }
  }
}

TEST_P(DatasetTest, ScaleChangesSize) {
  DatasetOptions small, large;
  small.scale = 0.05;
  large.scale = 0.2;
  Catalog cs = *MakeDataset(GetParam(), small);
  Catalog cl = *MakeDataset(GetParam(), large);
  EXPECT_GT(cl.TotalRows(), cs.TotalRows());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::ValuesIn(DatasetNames()));

TEST(DatasetTest, UnknownNameFails) {
  EXPECT_FALSE(MakeDataset("bogus", DatasetOptions{}).ok());
}

TEST(DatasetTest, ImdbCorrelationPresent) {
  // production_year should correlate with kind_id by construction: compute
  // mean year for kind 0 vs the highest kind and expect a visible gap.
  DatasetOptions options;
  options.scale = 0.25;
  Catalog catalog = MakeImdbLite(options);
  const Table& title = **catalog.GetTable("title");
  size_t kind_idx = title.ColumnIndex("kind_id").value();
  size_t year_idx = title.ColumnIndex("production_year").value();
  double sum_low = 0, n_low = 0, sum_high = 0, n_high = 0;
  int64_t max_kind = title.column(kind_idx).max_value;
  for (size_t r = 0; r < title.num_rows(); ++r) {
    int64_t kind = title.ValueAt(r, kind_idx);
    int64_t year = title.ValueAt(r, year_idx);
    if (kind == 0) {
      sum_low += static_cast<double>(year);
      n_low += 1;
    } else if (kind == max_kind) {
      sum_high += static_cast<double>(year);
      n_high += 1;
    }
  }
  ASSERT_GT(n_low, 0);
  ASSERT_GT(n_high, 0);
  // Kind 0 titles skew older than max-kind titles.
  EXPECT_LT(sum_low / n_low + 3.0, sum_high / n_high);
}

TEST(CsvTest, TableRoundTrip) {
  Table original = MakeToyTable();
  std::string path = ::testing::TempDir() + "/toy.csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto loaded = ReadCsv(path, "toy");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  ASSERT_EQ(loaded->num_columns(), original.num_columns());
  for (size_t c = 0; c < original.num_columns(); ++c) {
    EXPECT_EQ(loaded->column(c).name, original.column(c).name);
    EXPECT_EQ(loaded->column(c).type, original.column(c).type);
    for (size_t r = 0; r < original.num_rows(); ++r) {
      EXPECT_EQ(loaded->column(c).ValueToString(r),
                original.column(c).ValueToString(r));
    }
  }
}

TEST(CsvTest, CatalogRoundTripPreservesDataAndEdges) {
  DatasetOptions options;
  options.scale = 0.03;
  Catalog original = MakeStatsLite(options);
  std::string dir = ::testing::TempDir() + "/catalog_csv";
  ASSERT_TRUE(WriteCatalogCsv(original, dir).ok());
  auto loaded = ReadCatalogCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->table_names(), original.table_names());
  EXPECT_EQ(loaded->join_edges().size(), original.join_edges().size());
  for (const std::string& name : original.table_names()) {
    const Table& a = **original.GetTable(name);
    const Table& b = **loaded->GetTable(name);
    ASSERT_EQ(a.num_rows(), b.num_rows()) << name;
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.column(c).data, b.column(c).data) << name;
    }
  }
}

TEST(CsvTest, ErrorsSurfaceAsStatuses) {
  EXPECT_FALSE(ReadCsv("/no/such/file.csv", "x").ok());
  EXPECT_FALSE(ReadCatalogCsv("/no/such/dir").ok());
  // Malformed content.
  std::string path = ::testing::TempDir() + "/bad.csv";
  {
    std::ofstream out(path);
    out << "a,b\nint64,int64\n1,notanint\n";
  }
  EXPECT_FALSE(ReadCsv(path, "bad").ok());
}

}  // namespace
}  // namespace lqo
