#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "joinorder/join_env.h"
#include "joinorder/mcts.h"
#include "joinorder/online_skinner.h"
#include "joinorder/qlearning.h"
#include "optimizer/baseline_estimator.h"
#include "optimizer/optimizer.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

class JoinOrderTest : public ::testing::Test {
 protected:
  JoinOrderTest() {
    catalog_ = MakeChainSchema(8, 2000, 71);
    stats_.Build(catalog_);
    estimator_ =
        std::make_unique<BaselineCardinalityEstimator>(&catalog_, &stats_);
    cards_ = std::make_unique<CardinalityProvider>(estimator_.get());
    cost_model_ = std::make_unique<AnalyticalCostModel>(&stats_);
    optimizer_ = std::make_unique<Optimizer>(&stats_, cost_model_.get());

    WorkloadOptions wopts;
    wopts.num_queries = 12;
    wopts.min_tables = 4;
    wopts.max_tables = 7;
    wopts.seed = 702;
    workload_ = GenerateWorkload(catalog_, wopts);
  }

  Catalog catalog_;
  StatsCatalog stats_;
  std::unique_ptr<BaselineCardinalityEstimator> estimator_;
  std::unique_ptr<CardinalityProvider> cards_;
  std::unique_ptr<AnalyticalCostModel> cost_model_;
  std::unique_ptr<Optimizer> optimizer_;
  Workload workload_;
};

TEST_F(JoinOrderTest, ChainSchemaShape) {
  EXPECT_EQ(catalog_.table_names().size(), 8u);
  EXPECT_EQ(catalog_.join_edges().size(), 7u);
  EXPECT_TRUE((*catalog_.GetTable("t3"))->HasColumn("prev_id"));
  EXPECT_FALSE((*catalog_.GetTable("t0"))->HasColumn("prev_id"));
}

TEST_F(JoinOrderTest, EnvEpisodeProducesCompletePlan) {
  const Query& q = workload_.queries[0];
  JoinOrderEnv env(&q, &stats_, cost_model_.get(), cards_.get());
  int steps = 0;
  while (!env.Done()) {
    std::vector<JoinOrderEnv::Action> actions = env.LegalActions();
    ASSERT_FALSE(actions.empty());
    for (const auto& action : actions) {
      std::vector<double> f = env.ActionFeatures(action);
      EXPECT_EQ(f.size(), JoinOrderEnv::kFeatureDim);
    }
    env.Step(actions[0]);
    ++steps;
  }
  EXPECT_EQ(steps, q.num_tables() - 1);
  EXPECT_GT(env.total_cost(), 0.0);
  PhysicalPlan plan = env.ExtractPlan();
  EXPECT_EQ(plan.root->table_set, q.AllTables());
}

TEST_F(JoinOrderTest, EnvResetIsIdempotent) {
  const Query& q = workload_.queries[0];
  JoinOrderEnv env(&q, &stats_, cost_model_.get(), cards_.get());
  std::vector<JoinOrderEnv::Action> first = env.LegalActions();
  env.Step(first[0]);
  double cost_after = env.total_cost();
  env.Reset();
  EXPECT_LT(env.total_cost(), cost_after);
  EXPECT_EQ(env.LegalActions().size(), first.size());
}

TEST_F(JoinOrderTest, DpIsLowerBoundForAllSearchers) {
  // DP cost (bushy, exhaustive) lower-bounds any env episode cost under the
  // same cost model and cards.
  for (const Query& q : workload_.queries) {
    double dp_cost = optimizer_->Optimize(q, cards_.get()).estimated_cost;

    MctsJoinOrderer mcts(&stats_, cost_model_.get(), cards_.get());
    double mcts_cost = 0;
    mcts.Plan(q, &mcts_cost);
    EXPECT_GE(mcts_cost, dp_cost * (1 - 1e-9)) << q.ToString();
  }
}

TEST_F(JoinOrderTest, MctsImprovesWithMoreIterations) {
  double few_total = 0, many_total = 0;
  for (const Query& q : workload_.queries) {
    MctsOptions few_options;
    few_options.iterations = 4;
    few_options.seed = 3;
    MctsJoinOrderer few(&stats_, cost_model_.get(), cards_.get(),
                        few_options);
    MctsOptions many_options;
    many_options.iterations = 400;
    many_options.seed = 3;
    MctsJoinOrderer many(&stats_, cost_model_.get(), cards_.get(),
                         many_options);
    double few_cost = 0, many_cost = 0;
    few.Plan(q, &few_cost);
    many.Plan(q, &many_cost);
    few_total += few_cost;
    many_total += many_cost;
  }
  EXPECT_LE(many_total, few_total * 1.001);
}

TEST_F(JoinOrderTest, MctsNearOptimal) {
  double mcts_total = 0, dp_total = 0;
  for (const Query& q : workload_.queries) {
    MctsOptions options;
    options.iterations = 500;
    MctsJoinOrderer mcts(&stats_, cost_model_.get(), cards_.get(), options);
    double mcts_cost = 0;
    mcts.Plan(q, &mcts_cost);
    mcts_total += mcts_cost;
    dp_total += optimizer_->Optimize(q, cards_.get()).estimated_cost;
  }
  EXPECT_LT(mcts_total, dp_total * 1.5);
}

TEST_F(JoinOrderTest, QLearningImprovesOverUntrained) {
  QLearningOptions untrained_options;
  QLearningJoinOrderer untrained(&stats_, cost_model_.get(), cards_.get(),
                                 untrained_options);
  // Untrained Q ties everywhere -> picks the first legal action.
  double untrained_total = 0;
  for (const Query& q : workload_.queries) {
    double cost = 0;
    untrained.Plan(q, &cost);
    untrained_total += cost;
  }

  QLearningOptions options;
  options.episodes_per_query = 25;
  QLearningJoinOrderer learner(&stats_, cost_model_.get(), cards_.get(),
                               options);
  learner.Train(workload_.queries);
  ASSERT_TRUE(learner.trained());
  EXPECT_GT(learner.transitions_collected(), 100u);

  double trained_total = 0;
  for (const Query& q : workload_.queries) {
    double cost = 0;
    learner.Plan(q, &cost);
    trained_total += cost;
  }
  EXPECT_LT(trained_total, untrained_total);
}

TEST_F(JoinOrderTest, QLearningGeneralizesToUnseenQueries) {
  QLearningOptions options;
  options.episodes_per_query = 25;
  QLearningJoinOrderer learner(&stats_, cost_model_.get(), cards_.get(),
                               options);
  learner.Train(workload_.queries);

  WorkloadOptions wopts;
  wopts.num_queries = 8;
  wopts.min_tables = 4;
  wopts.max_tables = 7;
  wopts.seed = 999;  // unseen
  Workload test = GenerateWorkload(catalog_, wopts);

  double learned_total = 0, dp_total = 0, first_action_total = 0;
  QLearningJoinOrderer untrained(&stats_, cost_model_.get(), cards_.get());
  for (const Query& q : test.queries) {
    double cost = 0;
    learner.Plan(q, &cost);
    learned_total += cost;
    untrained.Plan(q, &cost);
    first_action_total += cost;
    dp_total += optimizer_->Optimize(q, cards_.get()).estimated_cost;
  }
  EXPECT_LT(learned_total, first_action_total);
  EXPECT_LT(learned_total, dp_total * 10);
}

class OnlineSkinnerTest : public JoinOrderTest {
 protected:
  std::vector<PhysicalPlan> Candidates(const Query& q) {
    std::vector<PhysicalPlan> candidates;
    CardinalityProvider cards(estimator_.get());
    Executor executor(&catalog_);
    for (int mask : {7, 1, 2, 4}) {
      HintSet hints;
      hints.enable_hash_join = (mask & 1) != 0;
      hints.enable_nested_loop = (mask & 2) != 0;
      hints.enable_merge_join = (mask & 4) != 0;
      candidates.push_back(optimizer_->Optimize(q, &cards, hints).plan);
    }
    return candidates;
  }
};

TEST_F(OnlineSkinnerTest, SingleCandidateMatchesDirectExecution) {
  Executor executor(&catalog_);
  const Query& q = workload_.queries[0];
  CardinalityProvider cards(estimator_.get());
  PhysicalPlan plan = optimizer_->Optimize(q, &cards).plan;
  auto direct = executor.Execute(plan);
  ASSERT_TRUE(direct.ok());

  std::vector<PhysicalPlan> one;
  one.push_back(std::move(plan));
  OnlineSkinnerExecutor online(&executor);
  OnlineSkinnerResult result = online.Run(one);
  EXPECT_EQ(result.switches, 0);
  EXPECT_NEAR(result.total_time, direct->time_units,
              direct->time_units * 1e-9);
  EXPECT_EQ(result.row_count, direct->row_count);
}

TEST_F(OnlineSkinnerTest, RegretBoundedBetweenBestAndWorst) {
  Executor executor(&catalog_);
  OnlineSkinnerExecutor online(&executor);
  for (size_t i = 0; i < 6; ++i) {
    const Query& q = workload_.queries[i];
    OnlineSkinnerResult result = online.Run(Candidates(q));
    EXPECT_GE(result.total_time, result.best_plan_time * (1 - 1e-9));
    // Regret bound: well below the worst plan whenever plans differ, and
    // within a moderate factor of the best.
    if (result.worst_plan_time > result.best_plan_time * 2) {
      EXPECT_LT(result.total_time, result.worst_plan_time * 0.8);
    }
    EXPECT_LT(result.total_time, result.best_plan_time * 2.5);
    EXPECT_LT(result.preferred_plan, 4u);
  }
}

TEST_F(OnlineSkinnerTest, ConvergesToPreferringTheBestArm) {
  Executor executor(&catalog_);
  // Low exploration: after trying everything once it should settle on the
  // cheapest plan for the remaining slices.
  OnlineSkinnerOptions options;
  options.exploration = 0.05;
  options.num_slices = 100;
  OnlineSkinnerExecutor online(&executor, options);
  const Query& q = workload_.queries[1];
  std::vector<PhysicalPlan> candidates = Candidates(q);
  std::vector<double> times;
  for (const PhysicalPlan& plan : candidates) {
    times.push_back(executor.Execute(plan)->time_units);
  }
  size_t best = static_cast<size_t>(
      std::min_element(times.begin(), times.end()) - times.begin());
  OnlineSkinnerResult result = online.Run(candidates);
  EXPECT_EQ(result.preferred_plan, best);
}

}  // namespace
}  // namespace lqo
