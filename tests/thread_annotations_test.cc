// Smoke tests for src/common/thread_annotations.h: the macros must expand
// to valid (empty) attributes under GCC and to Clang Thread Safety
// attributes under clang, and an annotated class must behave normally.
// This is a compile-time contract as much as a runtime one — if a macro
// expands to garbage on either compiler, this TU stops building.
#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>

#include "common/thread_pool.h"

namespace lqo {
namespace {

// An annotated toy mirroring the real shapes in the tree: ThreadPool's
// queue (LQO_GUARDED_BY + LQO_EXCLUDES) and CardinalityProvider's frozen
// cache (shared_mutex with guarded map).
class AnnotatedCounter {
 public:
  void Add(int delta) LQO_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    AddLocked(delta);
  }

  int Get() const LQO_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  void AddLocked(int delta) LQO_REQUIRES(mutex_) { value_ += delta; }

  mutable std::mutex mutex_;  // guards: value_
  int value_ LQO_GUARDED_BY(mutex_) = 0;
};

TEST(ThreadAnnotationsTest, AnnotatedClassBehavesNormally) {
  AnnotatedCounter counter;
  counter.Add(3);
  counter.Add(4);
  EXPECT_EQ(counter.Get(), 7);
}

TEST(ThreadAnnotationsTest, SharedMutexAnnotationsCompile) {
  class Snapshot {
   public:
    void Set(int v) LQO_EXCLUDES(mutex_) {
      std::unique_lock<std::shared_mutex> lock(mutex_);
      value_ = v;
    }
    int Read() const LQO_REQUIRES_SHARED(mutex_) { return value_; }
    std::shared_mutex& mutex() LQO_NO_THREAD_SAFETY_ANALYSIS {
      return mutex_;
    }

   private:
    mutable std::shared_mutex mutex_;  // guards: value_
    int value_ LQO_GUARDED_BY(mutex_) = 0;
  };

  Snapshot snapshot;
  snapshot.Set(42);
  std::shared_lock<std::shared_mutex> lock(snapshot.mutex());
  EXPECT_EQ(snapshot.Read(), 42);
}

TEST(ThreadAnnotationsTest, AnnotatedSubmitStillRuns) {
  // ThreadPool::Submit carries LQO_EXCLUDES(mutex_); exercise it through
  // the annotated declaration to make sure the attribute changes nothing
  // about overload resolution or the call itself.
  AnnotatedCounter counter;
  ParallelFor(16, [&](size_t) { counter.Add(1); });
  EXPECT_EQ(counter.Get(), 16);
}

}  // namespace
}  // namespace lqo
