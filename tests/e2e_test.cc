#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "e2e/bao.h"
#include "e2e/hyperqo.h"
#include "e2e/leon.h"
#include "e2e/lero.h"
#include "e2e/neo.h"
#include "e2e/risk_models.h"
#include "e2e/value_search.h"

namespace lqo {
namespace {

class E2eTest : public ::testing::Test {
 protected:
  E2eTest() {
    lab_ = MakeLab("stats_lite", 0.08);
    WorkloadOptions wopts;
    wopts.num_queries = 40;
    wopts.min_tables = 2;
    wopts.max_tables = 4;
    wopts.seed = 801;
    train_ = GenerateWorkload(lab_->catalog, wopts);
    wopts.seed = 802;
    wopts.num_queries = 15;
    test_ = GenerateWorkload(lab_->catalog, wopts);
  }

  std::unique_ptr<Lab> lab_;
  Workload train_, test_;
};

TEST_F(E2eTest, RiskModelPointwisePicksFaster) {
  ExperienceBuffer buffer;
  // Feature[0] linearly determines time.
  for (int i = 0; i < 50; ++i) {
    PlanExperience e;
    e.query_key = "q" + std::to_string(i % 10);
    e.features = {static_cast<double>(i % 7), 1.0};
    e.time_units = 100.0 * static_cast<double>(i % 7) + 10.0;
    e.plan_signature = "p" + std::to_string(i);
    buffer.Add(e);
  }
  PointwiseRiskModel model;
  model.Train(buffer);
  ASSERT_TRUE(model.trained());
  EXPECT_EQ(model.PickBest({{6.0, 1.0}, {0.0, 1.0}, {3.0, 1.0}}), 1u);
  EXPECT_LT(model.PredictTime({0.0, 1.0}), model.PredictTime({6.0, 1.0}));
}

TEST_F(E2eTest, RiskModelPairwisePicksWinner) {
  ExperienceBuffer buffer;
  for (int q = 0; q < 30; ++q) {
    for (int p = 0; p < 3; ++p) {
      PlanExperience e;
      e.query_key = "q" + std::to_string(q);
      e.features = {static_cast<double>(p), static_cast<double>(q % 5)};
      e.time_units = 50.0 + 100.0 * p;
      e.plan_signature = "p" + std::to_string(p);
      buffer.Add(e);
    }
  }
  PairwiseRiskModel model;
  model.Train(buffer);
  ASSERT_TRUE(model.trained());
  EXPECT_EQ(model.PickBest({{2.0, 1.0}, {0.0, 1.0}, {1.0, 1.0}}), 1u);
  // Antisymmetry of the comparator.
  double p_ab = model.CompareProba({0.0, 1.0}, {2.0, 1.0});
  double p_ba = model.CompareProba({2.0, 1.0}, {0.0, 1.0});
  EXPECT_NEAR(p_ab + p_ba, 1.0, 1e-9);
  EXPECT_GT(p_ab, 0.5);
}

TEST_F(E2eTest, BaoArmsCoverHintSpaceAndChoosesNativeUntrained) {
  BaoOptimizer bao(lab_->Context());
  EXPECT_EQ(bao.arms().size(), 7u);
  // Untrained with epsilon 0 behaves natively.
  BaoOptions options;
  options.initial_epsilon = 0.0;
  BaoOptimizer greedy_bao(lab_->Context(), options);
  const Query& q = test_.queries[0];
  PhysicalPlan plan = greedy_bao.ChoosePlan(q);
  PhysicalPlan native = NativePlan(lab_->Context(), q);
  EXPECT_EQ(plan.Signature(), native.Signature());
}

TEST_F(E2eTest, BaoLearnsAndDiscoverUsefulArmsShrinks) {
  BaoOptimizer bao(lab_->Context());
  TrainLearnedOptimizer(&bao, train_, *lab_->executor);
  EXPECT_TRUE(bao.trained());
  auto useful = bao.DiscoverUsefulArms();
  EXPECT_GE(useful.size(), 1u);
  EXPECT_LE(useful.size(), 7u);
  // Trained Bao never crashes on unseen queries and returns full plans.
  for (const Query& q : test_.queries) {
    PhysicalPlan plan = bao.ChoosePlan(q);
    EXPECT_EQ(plan.root->table_set, q.AllTables());
  }
}

TEST_F(E2eTest, LeroCandidatesComeFromScaledCards) {
  LeroOptimizer lero(lab_->Context());
  int multi = 0;
  for (const Query& q : test_.queries) {
    auto candidates = lero.Candidates(q);
    ASSERT_GE(candidates.size(), 1u);
    std::set<std::string> signatures;
    for (const PhysicalPlan& plan : candidates) {
      signatures.insert(plan.Signature());
      EXPECT_EQ(plan.root->table_set, q.AllTables());
    }
    EXPECT_EQ(signatures.size(), candidates.size()) << "dup candidates";
    if (candidates.size() > 1) ++multi;
  }
  EXPECT_GT(multi, 0) << "cardinality scaling never changed any plan";
}

TEST_F(E2eTest, LeroTrainsPairwiseAndEvaluates) {
  LeroOptimizer lero(lab_->Context());
  TrainLearnedOptimizer(&lero, train_, *lab_->executor);
  EXPECT_TRUE(lero.trained());
  E2eEvalResult result = EvaluateLearnedOptimizer(&lero, lab_->Context(),
                                                  test_, *lab_->executor);
  EXPECT_EQ(result.learned_times.size(), test_.queries.size());
  EXPECT_GT(result.total_learned, 0.0);
  // Lero should not catastrophically regress the workload.
  EXPECT_LT(result.total_learned, result.total_native * 1.5);
}

TEST_F(E2eTest, NeoBootstrapsFromExpertThenSearches) {
  NeoOptimizer neo(lab_->Context());
  const Query& q = test_.queries[0];
  PhysicalPlan bootstrap = neo.ChoosePlan(q);
  PhysicalPlan native = NativePlan(lab_->Context(), q);
  EXPECT_EQ(bootstrap.Signature(), native.Signature());

  TrainLearnedOptimizer(&neo, train_, *lab_->executor);
  ASSERT_TRUE(neo.trained());
  for (const Query& query : test_.queries) {
    PhysicalPlan plan = neo.ChoosePlan(query);
    EXPECT_EQ(plan.root->table_set, query.AllTables()) << query.ToString();
    // Neo searches left-deep plans.
    VisitPlanBottomUp(*plan.root, [](const PlanNode& node) {
      if (node.kind == PlanNode::Kind::kJoin) {
        EXPECT_EQ(node.right->kind, PlanNode::Kind::kScan);
      }
    });
  }
}

TEST_F(E2eTest, BalsaSimulationPhaseTrainsWithoutExecutions) {
  BalsaOptimizer balsa(lab_->Context(), train_.queries);
  EXPECT_TRUE(balsa.trained()) << "simulation phase should train the model";
  EXPECT_EQ(balsa.real_experience_size(), 0u);
  for (const Query& q : test_.queries) {
    PhysicalPlan plan = balsa.ChoosePlan(q);
    EXPECT_EQ(plan.root->table_set, q.AllTables());
  }
}

TEST_F(E2eTest, HyperQoFiltersAndFallsBack) {
  HyperQoOptimizer hyperqo(lab_->Context());
  // Untrained: native plan.
  const Query& q = test_.queries[0];
  EXPECT_EQ(hyperqo.ChoosePlan(q).Signature(),
            NativePlan(lab_->Context(), q).Signature());

  TrainLearnedOptimizer(&hyperqo, train_, *lab_->executor);
  ASSERT_TRUE(hyperqo.trained());
  double mean, stddev;
  PhysicalPlan plan = hyperqo.ChoosePlan(q);
  AnnotateWithBaseline(lab_->Context(), &plan);
  hyperqo.Predict(PlanFeaturizer::Featurize(plan), &mean, &stddev);
  EXPECT_GE(stddev, 0.0);
  EXPECT_GT(mean, 0.0);
}

TEST_F(E2eTest, LeonUsesDpCandidates) {
  LeonOptimizer leon(lab_->Context());
  TrainLearnedOptimizer(&leon, train_, *lab_->executor);
  EXPECT_TRUE(leon.trained());
  E2eEvalResult result = EvaluateLearnedOptimizer(&leon, lab_->Context(),
                                                  test_, *lab_->executor);
  EXPECT_LT(result.total_learned, result.total_native * 1.5);
}

TEST_F(E2eTest, ValueSearchProducesValidPlansUnderBothStrategies) {
  // Train a tiny value model on native executions.
  NeoOptimizer neo(lab_->Context());
  TrainLearnedOptimizer(&neo, train_, *lab_->executor);

  ValueSearch search(lab_->Context(), 200, 4);
  ExperienceBuffer buffer;
  for (int i = 0; i < 5; ++i) {
    const Query& q = train_.queries[static_cast<size_t>(i)];
    PhysicalPlan plan = NativePlan(lab_->Context(), q);
    auto result = lab_->executor->Execute(plan);
    ASSERT_TRUE(result.ok());
    for (PlanExperience& e :
         search.SubplanExperiences(q, plan, result->time_units)) {
      buffer.Add(std::move(e));
    }
  }
  PointwiseRiskModel value_model;
  value_model.Train(buffer);
  ASSERT_TRUE(value_model.trained());

  for (const Query& q : test_.queries) {
    PhysicalPlan best_first =
        search.Search(q, value_model, ValueSearch::Strategy::kBestFirst);
    PhysicalPlan beam =
        search.Search(q, value_model, ValueSearch::Strategy::kBeam);
    EXPECT_EQ(best_first.root->table_set, q.AllTables());
    EXPECT_EQ(beam.root->table_set, q.AllTables());
  }
}

TEST_F(E2eTest, TrainingImprovesOrMatchesNativeInAggregate) {
  // The headline claim (paper Section 2.2): learned optimizers match or
  // beat the native optimizer on the training distribution.
  LeroOptimizer lero(lab_->Context());
  TrainLearnedOptimizer(&lero, train_, *lab_->executor);
  E2eEvalResult on_train = EvaluateLearnedOptimizer(&lero, lab_->Context(),
                                                    train_, *lab_->executor);
  EXPECT_LE(on_train.total_learned, on_train.total_native * 1.1)
      << "speedup=" << on_train.Speedup();
}

}  // namespace
}  // namespace lqo
