#include <memory>

#include <gtest/gtest.h>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"

namespace lqo {
namespace {

/// Deterministic stub optimizer for harness bookkeeping tests: always the
/// native plan, counts calls.
class StubOptimizer : public LearnedQueryOptimizer {
 public:
  explicit StubOptimizer(const E2eContext& context) : context_(context) {}

  PhysicalPlan ChoosePlan(const Query& query) override {
    ++choose_calls;
    return NativePlan(context_, query);
  }
  void Observe(const Query&, const PhysicalPlan&, double) override {
    ++observe_calls;
  }
  void Retrain() override { ++retrain_calls; }
  std::string Name() const override { return "stub"; }
  bool trained() const override { return retrain_calls > 0; }

  int choose_calls = 0;
  int observe_calls = 0;
  int retrain_calls = 0;

 private:
  E2eContext context_;
};

class BenchlibTest : public ::testing::Test {
 protected:
  BenchlibTest() {
    lab_ = MakeLab("tpch_lite", 0.05);
    WorkloadOptions wopts;
    wopts.num_queries = 10;
    wopts.min_tables = 2;
    wopts.max_tables = 3;
    wopts.seed = 1401;
    workload_ = GenerateWorkload(lab_->catalog, wopts);
  }

  std::unique_ptr<Lab> lab_;
  Workload workload_;
};

TEST_F(BenchlibTest, MakeLabBundlesAConsistentStack) {
  EXPECT_TRUE(lab_->stats.built());
  EXPECT_EQ(lab_->Context().catalog, &lab_->catalog);
  EXPECT_EQ(lab_->Context().estimator, lab_->estimator.get());
  // The bundle plans and executes out of the box.
  CardinalityProvider cards(lab_->estimator.get());
  PhysicalPlan plan = lab_->optimizer->Optimize(workload_.queries[0], &cards)
                          .plan;
  EXPECT_TRUE(lab_->executor->Execute(plan).ok());
  EXPECT_DEATH(MakeLab("no_such_dataset", 0.1), "unknown dataset");
}

TEST_F(BenchlibTest, TrainHarnessDrivesObserveAndRetrain) {
  StubOptimizer stub(lab_->Context());
  HarnessOptions options;
  options.retrain_every = 4;
  options.training_passes = 2;
  double cost = TrainLearnedOptimizer(&stub, workload_, *lab_->executor,
                                      options);
  EXPECT_GT(cost, 0.0);
  // One candidate per query per pass.
  EXPECT_EQ(stub.observe_calls, 20);
  // ceil(20 / 4) periodic retrains + the final one.
  EXPECT_EQ(stub.retrain_calls, 6);
}

TEST_F(BenchlibTest, EvaluationBookkeepingConsistent) {
  StubOptimizer stub(lab_->Context());
  E2eEvalResult result = EvaluateLearnedOptimizer(&stub, lab_->Context(),
                                                  workload_, *lab_->executor);
  EXPECT_EQ(result.name, "stub");
  EXPECT_EQ(result.native_times.size(), workload_.queries.size());
  EXPECT_EQ(result.learned_times.size(), workload_.queries.size());
  // The stub IS the native optimizer: perfect parity.
  EXPECT_DOUBLE_EQ(result.total_learned, result.total_native);
  EXPECT_DOUBLE_EQ(result.Speedup(), 1.0);
  EXPECT_EQ(result.wins, 0);
  EXPECT_EQ(result.losses, 0);
  EXPECT_DOUBLE_EQ(result.worst_regression_ratio, 1.0);
}

}  // namespace
}  // namespace lqo
