// Tests for the survey's extension topics: P-error [12,44], prediction
// intervals [33,55], Robust-MSCN masking [45], the AutoCE advisor [74] and
// the concurrent-query cost models [78,20,31].

#include <memory>

#include <gtest/gtest.h>

#include "benchlib/lab.h"
#include "cardinality/advisor.h"
#include "cardinality/evaluation.h"
#include "cardinality/perror.h"
#include "cardinality/query_driven.h"
#include "cardinality/registry.h"
#include "common/stats_util.h"
#include "costmodel/concurrent.h"
#include "optimizer/reoptimizer.h"
#include "costmodel/sample_collection.h"

namespace lqo {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() {
    lab_ = MakeLab("stats_lite", 0.08);
    WorkloadOptions wopts;
    wopts.num_queries = 50;
    wopts.min_tables = 1;
    wopts.max_tables = 4;
    wopts.seed = 1101;
    train_ = GenerateWorkload(lab_->catalog, wopts);
    wopts.seed = 1102;
    wopts.num_queries = 20;
    wopts.min_tables = 2;
    test_ = GenerateWorkload(lab_->catalog, wopts);
    training_ = BuildCeTrainingData(lab_->catalog, lab_->stats, train_,
                                    lab_->truth.get());
  }

  std::unique_ptr<Lab> lab_;
  Workload train_, test_;
  CeTrainingData training_;
};

// ---- P-error ---------------------------------------------------------------

TEST_F(ExtensionsTest, PErrorIsOneForOracleLikeEstimates) {
  PErrorEvaluator evaluator(lab_->optimizer.get(), lab_->cost_model.get(),
                            lab_->truth.get());
  // The baseline estimator induces the same plan as itself -> well-defined;
  // an estimator that IS the oracle must have P-error exactly 1 everywhere.
  class Oracle : public CardinalityEstimatorInterface {
   public:
    explicit Oracle(TrueCardinalityService* truth) : truth_(truth) {}
    double EstimateSubquery(const Subquery& s) override {
      return static_cast<double>(truth_->Cardinality(s));
    }
    std::string Name() const override { return "oracle"; }
    TrueCardinalityService* truth_;
  } oracle(lab_->truth.get());

  for (const Query& q : test_.queries) {
    EXPECT_DOUBLE_EQ(evaluator.PError(q, &oracle), 1.0) << q.ToString();
  }
}

TEST_F(ExtensionsTest, PErrorAtLeastOneAndSensitiveToBadEstimates) {
  PErrorEvaluator evaluator(lab_->optimizer.get(), lab_->cost_model.get(),
                            lab_->truth.get());

  std::vector<double> baseline_perrors =
      evaluator.Evaluate(test_, lab_->estimator.get());
  for (double p : baseline_perrors) EXPECT_GE(p, 1.0);

  // A deliberately nonsense estimator (everything = 1 row) must have a
  // strictly worse P-error profile than the baseline.
  class OneRow : public CardinalityEstimatorInterface {
   public:
    double EstimateSubquery(const Subquery&) override { return 1.0; }
    std::string Name() const override { return "one_row"; }
  } nonsense;
  std::vector<double> nonsense_perrors = evaluator.Evaluate(test_, &nonsense);
  EXPECT_GT(GeometricMean(nonsense_perrors),
            GeometricMean(baseline_perrors) * 0.999);
  EXPECT_GT(*std::max_element(nonsense_perrors.begin(),
                              nonsense_perrors.end()),
            1.5);
}

// ---- Prediction intervals --------------------------------------------------

TEST_F(ExtensionsTest, ForestEstimatorIntervalsCoverTruth) {
  QueryDrivenEstimator forest(QueryDrivenEstimator::ModelType::kForest,
                              &lab_->catalog, &lab_->stats);
  forest.Train(training_);
  EXPECT_EQ(forest.Name(), "forest_qd");

  CeTrainingData evaluation = BuildCeTrainingData(
      lab_->catalog, lab_->stats, test_, lab_->truth.get());
  int covered = 0;
  for (const LabeledSubquery& labeled : evaluation.labeled) {
    double lo = 0, hi = 0;
    double estimate =
        forest.EstimateWithInterval(labeled.AsSubquery(), 2.0, &lo, &hi);
    EXPECT_LE(lo, estimate * (1 + 1e-9));
    EXPECT_GE(hi, estimate * (1 - 1e-9));
    if (labeled.cardinality >= lo * 0.999 &&
        labeled.cardinality <= hi * 1.001) {
      ++covered;
    }
  }
  // z=2 intervals should cover a majority (not necessarily 95% — ensemble
  // spread underestimates total uncertainty, as [55] reports).
  EXPECT_GT(covered, static_cast<int>(evaluation.labeled.size() / 2));
}

// ---- Robust-MSCN masking ---------------------------------------------------

TEST_F(ExtensionsTest, MaskedTrainingKeepsAccuracyAndHelpsOnUnseenShapes) {
  QueryDrivenOptions robust_options;
  robust_options.mask_training = true;
  QueryDrivenEstimator robust(QueryDrivenEstimator::ModelType::kGbdt,
                              &lab_->catalog, &lab_->stats, robust_options);
  robust.Train(training_);
  EXPECT_EQ(robust.Name(), "gbdt_qd_robust");

  QueryDrivenEstimator plain(QueryDrivenEstimator::ModelType::kGbdt,
                             &lab_->catalog, &lab_->stats);
  plain.Train(training_);

  // In-distribution: robust training must not destroy accuracy.
  CeTrainingData evaluation = BuildCeTrainingData(
      lab_->catalog, lab_->stats, test_, lab_->truth.get());
  double robust_geo =
      EvaluateEstimator(&robust, evaluation.labeled).geometric_mean;
  double plain_geo =
      EvaluateEstimator(&plain, evaluation.labeled).geometric_mean;
  EXPECT_LT(robust_geo, plain_geo * 2.0);

  // Serving-time masking (out-of-distribution predicates detected): the
  // robust model has learned a calibrated fallback for the mask token; the
  // plain model sees inputs it has never encountered.
  std::vector<double> robust_masked, plain_masked;
  for (const LabeledSubquery& labeled : evaluation.labeled) {
    if (labeled.query->PredicatesOf(__builtin_ctzll(labeled.tables)).empty() &&
        PopCount(labeled.tables) == 1) {
      continue;  // nothing to mask.
    }
    robust_masked.push_back(
        QError(robust.EstimateMasked(labeled.AsSubquery()),
               labeled.cardinality));
    plain_masked.push_back(QError(plain.EstimateMasked(labeled.AsSubquery()),
                                  labeled.cardinality));
  }
  ASSERT_FALSE(robust_masked.empty());
  EXPECT_LE(GeometricMean(robust_masked), GeometricMean(plain_masked) * 1.05)
      << "masking-trained model should degrade more gracefully";
}

TEST_F(ExtensionsTest, RobustMscnNameAndTraining) {
  QueryDrivenOptions robust_options;
  robust_options.mask_training = true;
  QueryDrivenEstimator robust(QueryDrivenEstimator::ModelType::kMlp,
                              &lab_->catalog, &lab_->stats, robust_options);
  EXPECT_EQ(robust.Name(), "robust_mscn");
  robust.Train(training_);
  Query q;
  q.AddTable("users");
  EXPECT_GT(robust.EstimateSubquery(Subquery{&q, 1}), 0.0);
}

// ---- AutoCE advisor --------------------------------------------------------

TEST_F(ExtensionsTest, AdvisorRanksByValidationError) {
  EstimatorSuiteOptions options;
  options.include_mlp = false;
  std::vector<RegisteredEstimator> suite =
      MakeEstimatorSuite(lab_->catalog, lab_->stats, training_, options);
  CeTrainingData evaluation = BuildCeTrainingData(
      lab_->catalog, lab_->stats, test_, lab_->truth.get());
  std::vector<AdvisorEntry> ranking =
      ModelAdvisor::Rank(suite, evaluation.labeled);
  ASSERT_EQ(ranking.size(), suite.size());
  for (size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_LE(ranking[i - 1].geo_mean_qerror, ranking[i].geo_mean_qerror);
  }
  EXPECT_GE(ranking.front().geo_mean_qerror, 1.0);
}

TEST_F(ExtensionsTest, AdvisorMetaFeaturesSeparateSchemas) {
  auto tpch = MakeLab("tpch_lite", 0.05);
  std::vector<double> stats_features =
      ModelAdvisor::MetaFeatures(lab_->catalog, lab_->stats);
  std::vector<double> tpch_features =
      ModelAdvisor::MetaFeatures(tpch->catalog, tpch->stats);
  ASSERT_EQ(stats_features.size(), tpch_features.size());
  // The correlated schema must show higher mean column correlation.
  EXPECT_GT(stats_features[2], tpch_features[2]);
}

TEST_F(ExtensionsTest, AdvisorNearestProfileRecommendation) {
  ModelAdvisor advisor;
  auto tpch = MakeLab("tpch_lite", 0.05);
  advisor.Profile(lab_->catalog, lab_->stats, "factorjoin");
  advisor.Profile(tpch->catalog, tpch->stats, "histogram");
  EXPECT_EQ(advisor.num_profiles(), 2u);

  // A second instance of the same generator family should map to its own
  // profile's winner.
  auto stats2 = MakeLab("stats_lite", 0.06, /*seed=*/99);
  EXPECT_EQ(advisor.Advise(stats2->catalog, stats2->stats), "factorjoin");
  auto tpch2 = MakeLab("tpch_lite", 0.06, /*seed=*/99);
  EXPECT_EQ(advisor.Advise(tpch2->catalog, tpch2->stats), "histogram");
}

// ---- Progressive re-optimization (LPCE [59]) -------------------------------

TEST_F(ExtensionsTest, ReoptimizerCorrectAndNoReplansUnderGoodEstimates) {
  ProgressiveReoptimizer reoptimizer(lab_->optimizer.get(),
                                     lab_->executor.get());
  for (size_t i = 0; i < 5; ++i) {
    const Query& q = test_.queries[i];
    CardinalityProvider cards(lab_->estimator.get());
    ReoptimizationResult result = reoptimizer.Execute(q, &cards);
    EXPECT_EQ(result.row_count, lab_->truth->Cardinality(q)) << q.ToString();
    EXPECT_GE(result.observations, q.num_tables() - 1);
    EXPECT_GE(result.time_units, 0.0);
  }
}

TEST_F(ExtensionsTest, ReoptimizerRescuesBadEstimates) {
  // An estimator whose multi-table estimates are wrong by 300x in a
  // direction that depends (deterministically) on the sub-query — the
  // regime that scrambles join orders, the costliest failure mode.
  class Scrambling : public CardinalityEstimatorInterface {
   public:
    explicit Scrambling(CardinalityEstimatorInterface* base) : base_(base) {}
    double EstimateSubquery(const Subquery& s) override {
      double e = base_->EstimateSubquery(s);
      if (PopCount(s.tables) <= 1) return e;
      size_t h = std::hash<std::string>{}(s.Key());
      return h % 2 == 0 ? e * 300.0 : std::max(1.0, e / 300.0);
    }
    std::string Name() const override { return "scrambling"; }
    CardinalityEstimatorInterface* base_;
  } bad(lab_->estimator.get());

  ProgressiveReoptimizer reoptimizer(lab_->optimizer.get(),
                                     lab_->executor.get());
  int total_replans = 0;
  double static_total = 0.0, reopt_total = 0.0, oracle_total = 0.0;
  for (size_t i = 0; i < 8; ++i) {
    const Query& q = test_.queries[i];
    if (q.num_tables() < 3) continue;

    CardinalityProvider bad_cards(&bad);
    auto static_exec = lab_->executor->Execute(
        lab_->optimizer->Optimize(q, &bad_cards).plan);
    ASSERT_TRUE(static_exec.ok());
    static_total += static_exec->time_units;

    CardinalityProvider reopt_cards(&bad);
    ReoptimizationResult reopt = reoptimizer.Execute(q, &reopt_cards);
    reopt_total += reopt.time_units;
    total_replans += reopt.replans;
    EXPECT_EQ(reopt.row_count, lab_->truth->Cardinality(q));

    class Oracle : public CardinalityEstimatorInterface {
     public:
      explicit Oracle(TrueCardinalityService* truth) : truth_(truth) {}
      double EstimateSubquery(const Subquery& s) override {
        return static_cast<double>(truth_->Cardinality(s));
      }
      std::string Name() const override { return "oracle"; }
      TrueCardinalityService* truth_;
    } oracle(lab_->truth.get());
    CardinalityProvider oracle_cards(&oracle);
    auto oracle_exec = lab_->executor->Execute(
        lab_->optimizer->Optimize(q, &oracle_cards).plan);
    ASSERT_TRUE(oracle_exec.ok());
    oracle_total += oracle_exec->time_units;
  }
  EXPECT_GT(total_replans, 0) << "bad estimates should trigger re-planning";
  // Re-optimization (including its pilot overhead) must substantially
  // repair the damage of the static mis-estimated plans.
  EXPECT_LT(reopt_total, static_total);
  EXPECT_GE(reopt_total, oracle_total);
}

// ---- Concurrent cost models ------------------------------------------------

class ConcurrentTest : public ExtensionsTest {
 protected:
  std::vector<PlanResourceProfile> MakeProfiles() {
    CardinalityProvider cards(lab_->estimator.get());
    std::vector<CollectedPlan> corpus = CollectCostSamples(
        test_, *lab_->optimizer, &cards, *lab_->executor);
    std::vector<PlanResourceProfile> profiles;
    for (const CollectedPlan& entry : corpus) {
      auto result = lab_->executor->Execute(entry.plan);
      profiles.push_back(MakeResourceProfile(entry.plan, *result));
    }
    return profiles;
  }
};

TEST_F(ConcurrentTest, SimulatorSoloEqualsBaseAndInterferenceInflates) {
  std::vector<PlanResourceProfile> profiles = MakeProfiles();
  ASSERT_GE(profiles.size(), 3u);
  ConcurrencySimulator simulator;

  std::vector<const PlanResourceProfile*> solo = {&profiles[0]};
  EXPECT_DOUBLE_EQ(simulator.BatchLatencies(solo)[0], profiles[0].solo_time);

  std::vector<const PlanResourceProfile*> batch = {&profiles[0], &profiles[1],
                                                   &profiles[2]};
  std::vector<double> latencies = simulator.BatchLatencies(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_GE(latencies[i], batch[i]->solo_time);
  }
}

TEST_F(ConcurrentTest, LearnedMixModelBeatsSoloBaseline) {
  std::vector<PlanResourceProfile> profiles = MakeProfiles();
  ASSERT_GE(profiles.size(), 8u);
  ConcurrencySimulator simulator;
  Rng rng(1201);

  std::vector<std::vector<double>> x;
  std::vector<double> y;
  std::vector<double> solo_prediction;
  for (int b = 0; b < 120; ++b) {
    int k = static_cast<int>(rng.UniformInt(2, 4));
    std::vector<const PlanResourceProfile*> batch;
    for (int i = 0; i < k; ++i) {
      batch.push_back(&profiles[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(profiles.size()) - 1))]);
    }
    std::vector<double> latencies = simulator.BatchLatencies(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
      x.push_back(ConcurrentCostModel::MixFeatures(*batch[i], batch));
      y.push_back(latencies[i]);
      solo_prediction.push_back(batch[i]->solo_time);
    }
  }
  // Train/test split by batch order (last quarter held out).
  size_t split = x.size() * 3 / 4;
  ConcurrentCostModel model;
  model.Train({x.begin(), x.begin() + static_cast<long>(split)},
              {y.begin(), y.begin() + static_cast<long>(split)});

  std::vector<double> learned_pred, truth, solo_pred;
  for (size_t i = split; i < x.size(); ++i) {
    learned_pred.push_back(model.Predict(x[i]));
    truth.push_back(y[i]);
    solo_pred.push_back(solo_prediction[i]);
  }
  double learned_mae = MeanAbsoluteError(learned_pred, truth);
  double solo_mae = MeanAbsoluteError(solo_pred, truth);
  EXPECT_LT(learned_mae, solo_mae)
      << "interference-aware model should beat the solo baseline";
}

}  // namespace
}  // namespace lqo
