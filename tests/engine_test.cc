#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "engine/executor.h"
#include "engine/filter_kernels.h"
#include "engine/plan.h"
#include "engine/explain.h"
#include "engine/true_cardinality.h"
#include "engine/vec_batch.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

// Tiny hand-checkable database:
//   r(k, v):  (1,10) (1,20) (2,30) (3,40)
//   s(k, w):  (1,100) (2,200) (2,300) (4,400)
// r join s on k: k=1 -> 2*1, k=2 -> 1*2  => 4 rows.
Catalog MakeToyCatalog() {
  Catalog catalog;
  {
    TableBuilder b("r");
    b.AddInt64Column("k");
    b.AddInt64Column("v");
    b.AppendRow({1, 10});
    b.AppendRow({1, 20});
    b.AppendRow({2, 30});
    b.AppendRow({3, 40});
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  {
    TableBuilder b("s");
    b.AddInt64Column("k");
    b.AddInt64Column("w");
    b.AppendRow({1, 100});
    b.AppendRow({2, 200});
    b.AppendRow({2, 300});
    b.AppendRow({4, 400});
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "r",
                              .left_column = "k",
                              .right_table = "s",
                              .right_column = "k"})
                .ok());
  return catalog;
}

Query MakeJoinQuery() {
  Query q;
  q.AddTable("r");
  q.AddTable("s");
  q.AddJoin(0, "k", 1, "k");
  return q;
}

TEST(PlanTest, MakeScanAndJoinNodes) {
  auto scan0 = MakeScanNode(0);
  EXPECT_EQ(scan0->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(scan0->table_set, TableSet{1});
  auto join = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  EXPECT_EQ(join->table_set, TableSet{0b11});
  EXPECT_EQ(join->kind, PlanNode::Kind::kJoin);
}

TEST(PlanTest, CloneIsDeep) {
  auto join = MakeJoinNode(JoinAlgorithm::kMergeJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto copy = join->Clone();
  EXPECT_EQ(copy->algorithm, JoinAlgorithm::kMergeJoin);
  EXPECT_NE(copy->left.get(), join->left.get());
  copy->algorithm = JoinAlgorithm::kHashJoin;
  EXPECT_EQ(join->algorithm, JoinAlgorithm::kMergeJoin);
}

TEST(PlanTest, SignatureEncodesShapeAndOperators) {
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kNestedLoopJoin, MakeScanNode(0),
                           MakeScanNode(1));
  EXPECT_EQ(plan.Signature(), "(NL (S t0) (S t1))");
}

TEST(ExecutorTest, SingleTableScanCounts) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddPredicate(Predicate::Range(0, "v", 15, 35));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count, 2u);  // v=20, v=30
  EXPECT_GT(result->time_units, 0.0);
  ASSERT_EQ(result->node_profiles.size(), 1u);
  EXPECT_EQ(result->node_profiles[0].left_rows, 4u);
  EXPECT_EQ(result->node_profiles[0].output_rows, 2u);
}

TEST(ExecutorTest, HashJoinCountsMatchHandComputation) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count, 4u);
}

TEST(ExecutorTest, JoinResultInvariantToAlgorithmAndOrder) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kHashJoin, JoinAlgorithm::kNestedLoopJoin,
        JoinAlgorithm::kMergeJoin}) {
    for (bool swap : {false, true}) {
      PhysicalPlan plan;
      plan.query = &q;
      plan.root = swap ? MakeJoinNode(algo, MakeScanNode(1), MakeScanNode(0))
                       : MakeJoinNode(algo, MakeScanNode(0), MakeScanNode(1));
      auto result = executor.Execute(plan);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->row_count, 4u)
          << JoinAlgorithmName(algo) << " swap=" << swap;
    }
  }
}

TEST(ExecutorTest, PredicatePushdownAffectsJoin) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  q.AddPredicate(Predicate::Equals(1, "w", 300));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 1u);  // only s(2,300) joins r(2,30).
}

TEST(ExecutorTest, ChargesDeclaredAlgorithm) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();

  auto run = [&](JoinAlgorithm algo) {
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeJoinNode(algo, MakeScanNode(0), MakeScanNode(1));
    auto result = executor.Execute(plan);
    LQO_CHECK(result.ok());
    return result->time_units;
  };
  double hash = run(JoinAlgorithm::kHashJoin);
  double nlj = run(JoinAlgorithm::kNestedLoopJoin);
  double merge = run(JoinAlgorithm::kMergeJoin);
  EXPECT_NE(hash, nlj);
  EXPECT_NE(hash, merge);
  // On a tiny cached inner, NLJ is the cheapest algorithm — the cliff the
  // analytical model does not know about.
  EXPECT_LT(nlj, hash);
}

TEST(ExecutorTest, RejectsCrossProduct) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddTable("s");  // no join edge
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, RejectsEmptyPlan) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  PhysicalPlan plan;
  EXPECT_FALSE(executor.Execute(plan).ok());
}

TEST(MakeLeftDeepPlanTest, CoversAllTablesConnected) {
  DatasetOptions options;
  options.scale = 0.05;
  Catalog catalog = MakeStatsLite(options);
  WorkloadOptions wopts;
  wopts.num_queries = 15;
  wopts.min_tables = 2;
  wopts.max_tables = 5;
  Workload workload = GenerateWorkload(catalog, wopts);
  Executor executor(&catalog);
  for (const Query& q : workload.queries) {
    PhysicalPlan plan =
        MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin);
    EXPECT_EQ(plan.root->table_set, q.AllTables());
    auto result = executor.Execute(plan);
    ASSERT_TRUE(result.ok()) << q.ToString() << "\n"
                             << result.status().ToString();
  }
}

TEST(TrueCardinalityTest, MatchesDirectExecutionAndCaches) {
  Catalog catalog = MakeToyCatalog();
  TrueCardinalityService service(&catalog);
  Query q = MakeJoinQuery();
  EXPECT_EQ(service.Cardinality(q), 4u);
  size_t after_first = service.cache_size();
  EXPECT_EQ(service.Cardinality(q), 4u);
  EXPECT_EQ(service.cache_size(), after_first) << "second call should hit cache";

  // Single-table subquery.
  Subquery sub{&q, TableBit(0)};
  EXPECT_EQ(service.Cardinality(sub), 4u);
}

TEST(ExplainAnalyzeTest, RendersEstimatesActualsAndFlagsErrors) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  plan.root->estimated_cardinality = 100.0;  // wildly wrong on purpose.
  plan.root->left->estimated_cardinality = 4.0;
  plan.root->right->estimated_cardinality = 4.0;
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  std::string text = ExplainAnalyze(plan, *result);
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("Scan r t0"), std::string::npos);
  EXPECT_NE(text.find("actual=4"), std::string::npos);
  EXPECT_NE(text.find("q-error 25"), std::string::npos)
      << text;  // 100 est vs 4 actual.
  EXPECT_NE(text.find("Total: 4 rows"), std::string::npos);
  // Hash joins report open-addressing collision counts and the radix
  // partition fan-out; a 4-row toy join stays on the serial single
  // partition path.
  EXPECT_NE(text.find("collisions="), std::string::npos) << text;
  EXPECT_NE(text.find("partitions=1"), std::string::npos) << text;
}

// --- Vectorized execution: kernels, edge cases, scalar/vectorized and
// thread-count bit-equality (DESIGN.md "Vectorized execution"). ------------

// Full ExecutionResult equality, excluding the wall-clock *_seconds
// diagnostics — the only fields outside the determinism contract.
void ExpectResultsBitIdentical(const ExecutionResult& a,
                               const ExecutionResult& b) {
  EXPECT_EQ(a.row_count, b.row_count);
  EXPECT_EQ(a.time_units, b.time_units);
  ASSERT_EQ(a.node_profiles.size(), b.node_profiles.size());
  for (size_t i = 0; i < a.node_profiles.size(); ++i) {
    const NodeProfile& p = a.node_profiles[i];
    const NodeProfile& q = b.node_profiles[i];
    EXPECT_EQ(p.kind, q.kind) << "node " << i;
    EXPECT_EQ(p.algorithm, q.algorithm) << "node " << i;
    EXPECT_EQ(p.table_index, q.table_index) << "node " << i;
    EXPECT_EQ(p.left_rows, q.left_rows) << "node " << i;
    EXPECT_EQ(p.right_rows, q.right_rows) << "node " << i;
    EXPECT_EQ(p.output_rows, q.output_rows) << "node " << i;
    EXPECT_EQ(p.time_units, q.time_units) << "node " << i;
    EXPECT_EQ(p.build_collisions, q.build_collisions) << "node " << i;
    EXPECT_EQ(p.probe_collisions, q.probe_collisions) << "node " << i;
    EXPECT_EQ(p.partitions, q.partitions) << "node " << i;
  }
}

// Two joinable tables of parameterized size with overlapping skewed keys
// (hash chains + collisions) and filterable value columns.
Catalog MakeSyntheticCatalog(size_t rows_a, size_t rows_b) {
  Catalog catalog;
  {
    TableBuilder b("big_a");
    b.AddInt64Column("k");
    b.AddInt64Column("v");
    for (size_t i = 0; i < rows_a; ++i) {
      b.AppendRow({static_cast<int64_t>((i * 37 + 11) % 512),
                   static_cast<int64_t>((i * 13) % 1000)});
    }
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  {
    TableBuilder b("big_b");
    b.AddInt64Column("k");
    b.AddInt64Column("w");
    for (size_t i = 0; i < rows_b; ++i) {
      b.AppendRow({static_cast<int64_t>((i * 29 + 3) % 512),
                   static_cast<int64_t>(i % 7)});
    }
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "big_a",
                              .left_column = "k",
                              .right_table = "big_b",
                              .right_column = "k"})
                .ok());
  return catalog;
}

TEST(VectorizedKernelTest, KernelsMatchPredicateReference) {
  std::vector<int64_t> col;
  for (size_t i = 0; i < 2500; ++i) {
    col.push_back(static_cast<int64_t>((i * 31 + 7) % 97));
  }
  std::vector<Predicate> predicates = {
      Predicate::Equals(0, "c", 42),
      Predicate::Range(0, "c", 20, 60),
      Predicate::Range(0, "c", -5, 1000),  // fully selected
      Predicate::Range(0, "c", 200, 300),  // fully filtered
      Predicate::In(0, "c", {3, 5, 8, 13, 21, 34, 55, 89}),
  };
  std::vector<uint32_t> sel(col.size());
  std::vector<uint32_t> out(col.size());
  for (const Predicate& p : predicates) {
    // Dense kernel over the whole column vs per-row Matches.
    size_t got = FilterDense(p, col.data(), 0,
                             static_cast<uint32_t>(col.size()), out.data());
    std::vector<uint32_t> want;
    for (uint32_t r = 0; r < col.size(); ++r) {
      if (p.Matches(col[r])) want.push_back(r);
    }
    ASSERT_EQ(got, want.size());
    for (size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], want[i]);
    // Sel kernel refining every third row.
    size_t count = 0;
    for (uint32_t r = 0; r < col.size(); r += 3) sel[count++] = r;
    got = FilterSel(p, col.data(), sel.data(), count, out.data());
    want.clear();
    for (size_t i = 0; i < count; ++i) {
      if (p.Matches(col[sel[i]])) want.push_back(sel[i]);
    }
    ASSERT_EQ(got, want.size());
    for (size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], want[i]);
  }
  // Empty batch: zero rows in, zero survivors out.
  EXPECT_EQ(FilterDense(predicates[0], col.data(), 5, 5, out.data()), 0u);
  EXPECT_EQ(FilterSel(predicates[0], col.data(), sel.data(), 0, out.data()),
            0u);
}

TEST(VectorizedScanTest, EdgeCaseSelectionsMatchScalar) {
  // Batch-size boundaries around kVecBatchRows and the morsel/parallel
  // thresholds; predicates that select everything, nothing, and a mix.
  for (size_t rows : {size_t{1}, kVecBatchRows - 1, kVecBatchRows,
                      kVecBatchRows + 1, size_t{4096}, size_t{8193}}) {
    Catalog catalog = MakeSyntheticCatalog(rows, 16);
    Executor executor(&catalog);
    struct Case {
      const char* name;
      std::vector<Predicate> predicates;
    };
    std::vector<Case> cases = {
        {"all", {Predicate::Range(0, "v", -1, 10000)}},
        {"none", {Predicate::Range(0, "v", 5000, 6000)}},
        {"mixed", {Predicate::Range(0, "v", 100, 700)}},
        {"chained",
         {Predicate::Range(0, "v", 100, 700), Predicate::In(0, "k", {1, 2, 3}),
          Predicate::Equals(0, "v", 104)}},
        {"nopred", {}},
    };
    for (const Case& c : cases) {
      Query q;
      q.AddTable("big_a");
      for (const Predicate& p : c.predicates) q.AddPredicate(p);
      PhysicalPlan plan;
      plan.query = &q;
      plan.root = MakeScanNode(0);
      executor.set_vectorized(true);
      auto vec = executor.Execute(plan);
      executor.set_vectorized(false);
      auto scalar = executor.Execute(plan);
      ASSERT_TRUE(vec.ok() && scalar.ok()) << c.name << " rows=" << rows;
      ExpectResultsBitIdentical(*vec, *scalar);
      // Cross-check the count against a direct per-row evaluation.
      uint64_t want = 0;
      const Table& t = **catalog.GetTable("big_a");
      for (size_t r = 0; r < t.num_rows(); ++r) {
        bool pass = true;
        for (const Predicate& p : c.predicates) {
          auto idx = t.ColumnIndex(p.column);
          if (!p.Matches(t.ValueAt(r, *idx))) {
            pass = false;
            break;
          }
        }
        if (pass) ++want;
      }
      EXPECT_EQ(vec->row_count, want) << c.name << " rows=" << rows;
    }
  }
}

TEST(VectorizedJoinTest, MatchesScalarBitForBitAcrossThreads) {
  // Sizes straddle the parallel-join threshold (8192 build+probe rows) and
  // the batch size, so both the single-partition and the 16-partition radix
  // paths are exercised; match counts exceed kVecBatchRows per partition on
  // the larger sizes, exercising the match-buffer flush.
  struct Shape {
    size_t rows_a, rows_b;
  };
  for (Shape shape : {Shape{100, 50}, Shape{1025, 1023}, Shape{4096, 4095},
                      Shape{9000, 3000}}) {
    Catalog catalog = MakeSyntheticCatalog(shape.rows_a, shape.rows_b);
    Executor executor(&catalog);
    Query q;
    q.AddTable("big_a");
    q.AddTable("big_b");
    q.AddJoin(0, "k", 1, "k");
    q.AddPredicate(Predicate::Range(1, "w", 0, 4));
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                             MakeScanNode(1));

    ExecutionResult reference;
    bool have_reference = false;
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetGlobalThreads(static_cast<size_t>(threads));
      executor.set_vectorized(true);
      auto vec = executor.Execute(plan);
      executor.set_vectorized(false);
      auto scalar = executor.Execute(plan);
      ASSERT_TRUE(vec.ok() && scalar.ok())
          << shape.rows_a << "x" << shape.rows_b << " threads=" << threads;
      ExpectResultsBitIdentical(*vec, *scalar);
      if (!have_reference) {
        reference = *vec;
        have_reference = true;
      } else {
        ExpectResultsBitIdentical(*vec, reference);
      }
    }
    ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  }
}

TEST(VectorizedExecutorTest, EnvEscapeHatchControlsDefault) {
  Catalog catalog = MakeToyCatalog();
  setenv("LQO_VECTORIZED", "0", /*overwrite=*/1);
  Executor scalar_default(&catalog);
  EXPECT_FALSE(scalar_default.vectorized());
  setenv("LQO_VECTORIZED", "1", /*overwrite=*/1);
  Executor vectorized_on(&catalog);
  EXPECT_TRUE(vectorized_on.vectorized());
  unsetenv("LQO_VECTORIZED");
  Executor vectorized_default(&catalog);
  EXPECT_TRUE(vectorized_default.vectorized());
  vectorized_default.set_vectorized(false);
  EXPECT_FALSE(vectorized_default.vectorized());
}

TEST(TrueCardinalityTest, SubqueryMonotoneUnderPredicates) {
  DatasetOptions options;
  options.scale = 0.05;
  Catalog catalog = MakeStatsLite(options);
  TrueCardinalityService service(&catalog);

  Query wide;
  wide.AddTable("users");
  wide.AddPredicate(Predicate::Range(0, "reputation", 0, 1000000));
  Query narrow;
  narrow.AddTable("users");
  narrow.AddPredicate(Predicate::Range(0, "reputation", 0, 100));
  EXPECT_GE(service.Cardinality(wide), service.Cardinality(narrow));
}

}  // namespace
}  // namespace lqo
