#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/explain.h"
#include "engine/true_cardinality.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

// Tiny hand-checkable database:
//   r(k, v):  (1,10) (1,20) (2,30) (3,40)
//   s(k, w):  (1,100) (2,200) (2,300) (4,400)
// r join s on k: k=1 -> 2*1, k=2 -> 1*2  => 4 rows.
Catalog MakeToyCatalog() {
  Catalog catalog;
  {
    TableBuilder b("r");
    b.AddInt64Column("k");
    b.AddInt64Column("v");
    b.AppendRow({1, 10});
    b.AppendRow({1, 20});
    b.AppendRow({2, 30});
    b.AppendRow({3, 40});
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  {
    TableBuilder b("s");
    b.AddInt64Column("k");
    b.AddInt64Column("w");
    b.AppendRow({1, 100});
    b.AppendRow({2, 200});
    b.AppendRow({2, 300});
    b.AppendRow({4, 400});
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "r",
                              .left_column = "k",
                              .right_table = "s",
                              .right_column = "k"})
                .ok());
  return catalog;
}

Query MakeJoinQuery() {
  Query q;
  q.AddTable("r");
  q.AddTable("s");
  q.AddJoin(0, "k", 1, "k");
  return q;
}

TEST(PlanTest, MakeScanAndJoinNodes) {
  auto scan0 = MakeScanNode(0);
  EXPECT_EQ(scan0->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(scan0->table_set, TableSet{1});
  auto join = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  EXPECT_EQ(join->table_set, TableSet{0b11});
  EXPECT_EQ(join->kind, PlanNode::Kind::kJoin);
}

TEST(PlanTest, CloneIsDeep) {
  auto join = MakeJoinNode(JoinAlgorithm::kMergeJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto copy = join->Clone();
  EXPECT_EQ(copy->algorithm, JoinAlgorithm::kMergeJoin);
  EXPECT_NE(copy->left.get(), join->left.get());
  copy->algorithm = JoinAlgorithm::kHashJoin;
  EXPECT_EQ(join->algorithm, JoinAlgorithm::kMergeJoin);
}

TEST(PlanTest, SignatureEncodesShapeAndOperators) {
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kNestedLoopJoin, MakeScanNode(0),
                           MakeScanNode(1));
  EXPECT_EQ(plan.Signature(), "(NL (S t0) (S t1))");
}

TEST(ExecutorTest, SingleTableScanCounts) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddPredicate(Predicate::Range(0, "v", 15, 35));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count, 2u);  // v=20, v=30
  EXPECT_GT(result->time_units, 0.0);
  ASSERT_EQ(result->node_profiles.size(), 1u);
  EXPECT_EQ(result->node_profiles[0].left_rows, 4u);
  EXPECT_EQ(result->node_profiles[0].output_rows, 2u);
}

TEST(ExecutorTest, HashJoinCountsMatchHandComputation) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count, 4u);
}

TEST(ExecutorTest, JoinResultInvariantToAlgorithmAndOrder) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kHashJoin, JoinAlgorithm::kNestedLoopJoin,
        JoinAlgorithm::kMergeJoin}) {
    for (bool swap : {false, true}) {
      PhysicalPlan plan;
      plan.query = &q;
      plan.root = swap ? MakeJoinNode(algo, MakeScanNode(1), MakeScanNode(0))
                       : MakeJoinNode(algo, MakeScanNode(0), MakeScanNode(1));
      auto result = executor.Execute(plan);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->row_count, 4u)
          << JoinAlgorithmName(algo) << " swap=" << swap;
    }
  }
}

TEST(ExecutorTest, PredicatePushdownAffectsJoin) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  q.AddPredicate(Predicate::Equals(1, "w", 300));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 1u);  // only s(2,300) joins r(2,30).
}

TEST(ExecutorTest, ChargesDeclaredAlgorithm) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();

  auto run = [&](JoinAlgorithm algo) {
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeJoinNode(algo, MakeScanNode(0), MakeScanNode(1));
    auto result = executor.Execute(plan);
    LQO_CHECK(result.ok());
    return result->time_units;
  };
  double hash = run(JoinAlgorithm::kHashJoin);
  double nlj = run(JoinAlgorithm::kNestedLoopJoin);
  double merge = run(JoinAlgorithm::kMergeJoin);
  EXPECT_NE(hash, nlj);
  EXPECT_NE(hash, merge);
  // On a tiny cached inner, NLJ is the cheapest algorithm — the cliff the
  // analytical model does not know about.
  EXPECT_LT(nlj, hash);
}

TEST(ExecutorTest, RejectsCrossProduct) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddTable("s");  // no join edge
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, RejectsEmptyPlan) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  PhysicalPlan plan;
  EXPECT_FALSE(executor.Execute(plan).ok());
}

TEST(MakeLeftDeepPlanTest, CoversAllTablesConnected) {
  DatasetOptions options;
  options.scale = 0.05;
  Catalog catalog = MakeStatsLite(options);
  WorkloadOptions wopts;
  wopts.num_queries = 15;
  wopts.min_tables = 2;
  wopts.max_tables = 5;
  Workload workload = GenerateWorkload(catalog, wopts);
  Executor executor(&catalog);
  for (const Query& q : workload.queries) {
    PhysicalPlan plan =
        MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin);
    EXPECT_EQ(plan.root->table_set, q.AllTables());
    auto result = executor.Execute(plan);
    ASSERT_TRUE(result.ok()) << q.ToString() << "\n"
                             << result.status().ToString();
  }
}

TEST(TrueCardinalityTest, MatchesDirectExecutionAndCaches) {
  Catalog catalog = MakeToyCatalog();
  TrueCardinalityService service(&catalog);
  Query q = MakeJoinQuery();
  EXPECT_EQ(service.Cardinality(q), 4u);
  size_t after_first = service.cache_size();
  EXPECT_EQ(service.Cardinality(q), 4u);
  EXPECT_EQ(service.cache_size(), after_first) << "second call should hit cache";

  // Single-table subquery.
  Subquery sub{&q, TableBit(0)};
  EXPECT_EQ(service.Cardinality(sub), 4u);
}

TEST(ExplainAnalyzeTest, RendersEstimatesActualsAndFlagsErrors) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  plan.root->estimated_cardinality = 100.0;  // wildly wrong on purpose.
  plan.root->left->estimated_cardinality = 4.0;
  plan.root->right->estimated_cardinality = 4.0;
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  std::string text = ExplainAnalyze(plan, *result);
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("Scan r t0"), std::string::npos);
  EXPECT_NE(text.find("actual=4"), std::string::npos);
  EXPECT_NE(text.find("q-error 25"), std::string::npos)
      << text;  // 100 est vs 4 actual.
  EXPECT_NE(text.find("Total: 4 rows"), std::string::npos);
  // Hash joins report open-addressing collision counts and the radix
  // partition fan-out; a 4-row toy join stays on the serial single
  // partition path.
  EXPECT_NE(text.find("collisions="), std::string::npos) << text;
  EXPECT_NE(text.find("partitions=1"), std::string::npos) << text;
}

TEST(TrueCardinalityTest, SubqueryMonotoneUnderPredicates) {
  DatasetOptions options;
  options.scale = 0.05;
  Catalog catalog = MakeStatsLite(options);
  TrueCardinalityService service(&catalog);

  Query wide;
  wide.AddTable("users");
  wide.AddPredicate(Predicate::Range(0, "reputation", 0, 1000000));
  Query narrow;
  narrow.AddTable("users");
  narrow.AddPredicate(Predicate::Range(0, "reputation", 0, 100));
  EXPECT_GE(service.Cardinality(wide), service.Cardinality(narrow));
}

}  // namespace
}  // namespace lqo
