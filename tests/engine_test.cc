#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "engine/agg_kernels.h"
#include "engine/executor.h"
#include "engine/filter_kernels.h"
#include "engine/simd.h"
#include "engine/plan.h"
#include "engine/explain.h"
#include "engine/true_cardinality.h"
#include "engine/vec_batch.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

// Tiny hand-checkable database:
//   r(k, v):  (1,10) (1,20) (2,30) (3,40)
//   s(k, w):  (1,100) (2,200) (2,300) (4,400)
// r join s on k: k=1 -> 2*1, k=2 -> 1*2  => 4 rows.
Catalog MakeToyCatalog() {
  Catalog catalog;
  {
    TableBuilder b("r");
    b.AddInt64Column("k");
    b.AddInt64Column("v");
    b.AppendRow({1, 10});
    b.AppendRow({1, 20});
    b.AppendRow({2, 30});
    b.AppendRow({3, 40});
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  {
    TableBuilder b("s");
    b.AddInt64Column("k");
    b.AddInt64Column("w");
    b.AppendRow({1, 100});
    b.AppendRow({2, 200});
    b.AppendRow({2, 300});
    b.AppendRow({4, 400});
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "r",
                              .left_column = "k",
                              .right_table = "s",
                              .right_column = "k"})
                .ok());
  return catalog;
}

Query MakeJoinQuery() {
  Query q;
  q.AddTable("r");
  q.AddTable("s");
  q.AddJoin(0, "k", 1, "k");
  return q;
}

TEST(PlanTest, MakeScanAndJoinNodes) {
  auto scan0 = MakeScanNode(0);
  EXPECT_EQ(scan0->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(scan0->table_set, TableSet{1});
  auto join = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  EXPECT_EQ(join->table_set, TableSet{0b11});
  EXPECT_EQ(join->kind, PlanNode::Kind::kJoin);
}

TEST(PlanTest, CloneIsDeep) {
  auto join = MakeJoinNode(JoinAlgorithm::kMergeJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto copy = join->Clone();
  EXPECT_EQ(copy->algorithm, JoinAlgorithm::kMergeJoin);
  EXPECT_NE(copy->left.get(), join->left.get());
  copy->algorithm = JoinAlgorithm::kHashJoin;
  EXPECT_EQ(join->algorithm, JoinAlgorithm::kMergeJoin);
}

TEST(PlanTest, SignatureEncodesShapeAndOperators) {
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kNestedLoopJoin, MakeScanNode(0),
                           MakeScanNode(1));
  EXPECT_EQ(plan.Signature(), "(NL (S t0) (S t1))");
}

TEST(ExecutorTest, SingleTableScanCounts) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddPredicate(Predicate::Range(0, "v", 15, 35));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count, 2u);  // v=20, v=30
  EXPECT_GT(result->time_units, 0.0);
  ASSERT_EQ(result->node_profiles.size(), 1u);
  EXPECT_EQ(result->node_profiles[0].left_rows, 4u);
  EXPECT_EQ(result->node_profiles[0].output_rows, 2u);
}

TEST(ExecutorTest, HashJoinCountsMatchHandComputation) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count, 4u);
}

TEST(ExecutorTest, JoinResultInvariantToAlgorithmAndOrder) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kHashJoin, JoinAlgorithm::kNestedLoopJoin,
        JoinAlgorithm::kMergeJoin}) {
    for (bool swap : {false, true}) {
      PhysicalPlan plan;
      plan.query = &q;
      plan.root = swap ? MakeJoinNode(algo, MakeScanNode(1), MakeScanNode(0))
                       : MakeJoinNode(algo, MakeScanNode(0), MakeScanNode(1));
      auto result = executor.Execute(plan);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->row_count, 4u)
          << JoinAlgorithmName(algo) << " swap=" << swap;
    }
  }
}

TEST(ExecutorTest, PredicatePushdownAffectsJoin) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  q.AddPredicate(Predicate::Equals(1, "w", 300));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 1u);  // only s(2,300) joins r(2,30).
}

TEST(ExecutorTest, ChargesDeclaredAlgorithm) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();

  auto run = [&](JoinAlgorithm algo) {
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeJoinNode(algo, MakeScanNode(0), MakeScanNode(1));
    auto result = executor.Execute(plan);
    LQO_CHECK(result.ok());
    return result->time_units;
  };
  double hash = run(JoinAlgorithm::kHashJoin);
  double nlj = run(JoinAlgorithm::kNestedLoopJoin);
  double merge = run(JoinAlgorithm::kMergeJoin);
  EXPECT_NE(hash, nlj);
  EXPECT_NE(hash, merge);
  // On a tiny cached inner, NLJ is the cheapest algorithm — the cliff the
  // analytical model does not know about.
  EXPECT_LT(nlj, hash);
}

TEST(ExecutorTest, RejectsCrossProduct) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddTable("s");  // no join edge
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, RejectsEmptyPlan) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  PhysicalPlan plan;
  EXPECT_FALSE(executor.Execute(plan).ok());
}

TEST(MakeLeftDeepPlanTest, CoversAllTablesConnected) {
  DatasetOptions options;
  options.scale = 0.05;
  Catalog catalog = MakeStatsLite(options);
  WorkloadOptions wopts;
  wopts.num_queries = 15;
  wopts.min_tables = 2;
  wopts.max_tables = 5;
  Workload workload = GenerateWorkload(catalog, wopts);
  Executor executor(&catalog);
  for (const Query& q : workload.queries) {
    PhysicalPlan plan =
        MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin);
    EXPECT_EQ(plan.root->table_set, q.AllTables());
    auto result = executor.Execute(plan);
    ASSERT_TRUE(result.ok()) << q.ToString() << "\n"
                             << result.status().ToString();
  }
}

TEST(TrueCardinalityTest, MatchesDirectExecutionAndCaches) {
  Catalog catalog = MakeToyCatalog();
  TrueCardinalityService service(&catalog);
  Query q = MakeJoinQuery();
  EXPECT_EQ(service.Cardinality(q), 4u);
  size_t after_first = service.cache_size();
  EXPECT_EQ(service.Cardinality(q), 4u);
  EXPECT_EQ(service.cache_size(), after_first) << "second call should hit cache";

  // Single-table subquery.
  Subquery sub{&q, TableBit(0)};
  EXPECT_EQ(service.Cardinality(sub), 4u);
}

TEST(ExplainAnalyzeTest, RendersEstimatesActualsAndFlagsErrors) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  plan.root->estimated_cardinality = 100.0;  // wildly wrong on purpose.
  plan.root->left->estimated_cardinality = 4.0;
  plan.root->right->estimated_cardinality = 4.0;
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok());
  std::string text = ExplainAnalyze(plan, *result);
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("Scan r t0"), std::string::npos);
  EXPECT_NE(text.find("actual=4"), std::string::npos);
  EXPECT_NE(text.find("q-error 25"), std::string::npos)
      << text;  // 100 est vs 4 actual.
  EXPECT_NE(text.find("Total: 4 rows"), std::string::npos);
  // Hash joins report open-addressing collision counts and the radix
  // partition fan-out; a 4-row toy join stays on the serial single
  // partition path.
  EXPECT_NE(text.find("collisions="), std::string::npos) << text;
  EXPECT_NE(text.find("partitions=1"), std::string::npos) << text;
}

// --- Vectorized execution: kernels, edge cases, scalar/vectorized and
// thread-count bit-equality (DESIGN.md "Vectorized execution"). ------------

// Full ExecutionResult equality, excluding the wall-clock *_seconds
// diagnostics — the only fields outside the determinism contract.
void ExpectResultsBitIdentical(const ExecutionResult& a,
                               const ExecutionResult& b) {
  EXPECT_EQ(a.row_count, b.row_count);
  EXPECT_EQ(a.time_units, b.time_units);
  EXPECT_EQ(a.output_row_count, b.output_row_count);
  ASSERT_EQ(a.output_cols.size(), b.output_cols.size());
  for (size_t c = 0; c < a.output_cols.size(); ++c) {
    EXPECT_EQ(a.output_cols[c], b.output_cols[c]) << "output col " << c;
  }
  ASSERT_EQ(a.node_profiles.size(), b.node_profiles.size());
  for (size_t i = 0; i < a.node_profiles.size(); ++i) {
    const NodeProfile& p = a.node_profiles[i];
    const NodeProfile& q = b.node_profiles[i];
    EXPECT_EQ(p.kind, q.kind) << "node " << i;
    EXPECT_EQ(p.algorithm, q.algorithm) << "node " << i;
    EXPECT_EQ(p.table_index, q.table_index) << "node " << i;
    EXPECT_EQ(p.left_rows, q.left_rows) << "node " << i;
    EXPECT_EQ(p.right_rows, q.right_rows) << "node " << i;
    EXPECT_EQ(p.output_rows, q.output_rows) << "node " << i;
    EXPECT_EQ(p.time_units, q.time_units) << "node " << i;
    EXPECT_EQ(p.build_collisions, q.build_collisions) << "node " << i;
    EXPECT_EQ(p.probe_collisions, q.probe_collisions) << "node " << i;
    EXPECT_EQ(p.partitions, q.partitions) << "node " << i;
    EXPECT_EQ(p.carried_columns, q.carried_columns) << "node " << i;
    EXPECT_EQ(p.materialized_values, q.materialized_values) << "node " << i;
    EXPECT_EQ(p.groups, q.groups) << "node " << i;
  }
}

// Two joinable tables of parameterized size with overlapping skewed keys
// (hash chains + collisions) and filterable value columns.
Catalog MakeSyntheticCatalog(size_t rows_a, size_t rows_b) {
  Catalog catalog;
  {
    TableBuilder b("big_a");
    b.AddInt64Column("k");
    b.AddInt64Column("v");
    for (size_t i = 0; i < rows_a; ++i) {
      b.AppendRow({static_cast<int64_t>((i * 37 + 11) % 512),
                   static_cast<int64_t>((i * 13) % 1000)});
    }
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  {
    TableBuilder b("big_b");
    b.AddInt64Column("k");
    b.AddInt64Column("w");
    for (size_t i = 0; i < rows_b; ++i) {
      b.AppendRow({static_cast<int64_t>((i * 29 + 3) % 512),
                   static_cast<int64_t>(i % 7)});
    }
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "big_a",
                              .left_column = "k",
                              .right_table = "big_b",
                              .right_column = "k"})
                .ok());
  return catalog;
}

TEST(VectorizedKernelTest, KernelsMatchPredicateReference) {
  std::vector<int64_t> col;
  for (size_t i = 0; i < 2500; ++i) {
    col.push_back(static_cast<int64_t>((i * 31 + 7) % 97));
  }
  std::vector<Predicate> predicates = {
      Predicate::Equals(0, "c", 42),
      Predicate::Range(0, "c", 20, 60),
      Predicate::Range(0, "c", -5, 1000),  // fully selected
      Predicate::Range(0, "c", 200, 300),  // fully filtered
      Predicate::In(0, "c", {3, 5, 8, 13, 21, 34, 55, 89}),
  };
  std::vector<uint32_t> sel(col.size());
  std::vector<uint32_t> out(col.size());
  for (const Predicate& p : predicates) {
    // Dense kernel over the whole column vs per-row Matches.
    size_t got = FilterDense(p, col.data(), 0,
                             static_cast<uint32_t>(col.size()), out.data());
    std::vector<uint32_t> want;
    for (uint32_t r = 0; r < col.size(); ++r) {
      if (p.Matches(col[r])) want.push_back(r);
    }
    ASSERT_EQ(got, want.size());
    for (size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], want[i]);
    // Sel kernel refining every third row.
    size_t count = 0;
    for (uint32_t r = 0; r < col.size(); r += 3) sel[count++] = r;
    got = FilterSel(p, col.data(), sel.data(), count, out.data());
    want.clear();
    for (size_t i = 0; i < count; ++i) {
      if (p.Matches(col[sel[i]])) want.push_back(sel[i]);
    }
    ASSERT_EQ(got, want.size());
    for (size_t i = 0; i < got; ++i) EXPECT_EQ(out[i], want[i]);
  }
  // Empty batch: zero rows in, zero survivors out.
  EXPECT_EQ(FilterDense(predicates[0], col.data(), 5, 5, out.data()), 0u);
  EXPECT_EQ(FilterSel(predicates[0], col.data(), sel.data(), 0, out.data()),
            0u);
}

TEST(VectorizedScanTest, EdgeCaseSelectionsMatchScalar) {
  // Batch-size boundaries around kVecBatchRows and the morsel/parallel
  // thresholds; predicates that select everything, nothing, and a mix.
  for (size_t rows : {size_t{1}, kVecBatchRows - 1, kVecBatchRows,
                      kVecBatchRows + 1, size_t{4096}, size_t{8193}}) {
    Catalog catalog = MakeSyntheticCatalog(rows, 16);
    Executor executor(&catalog);
    struct Case {
      const char* name;
      std::vector<Predicate> predicates;
    };
    std::vector<Case> cases = {
        {"all", {Predicate::Range(0, "v", -1, 10000)}},
        {"none", {Predicate::Range(0, "v", 5000, 6000)}},
        {"mixed", {Predicate::Range(0, "v", 100, 700)}},
        {"chained",
         {Predicate::Range(0, "v", 100, 700), Predicate::In(0, "k", {1, 2, 3}),
          Predicate::Equals(0, "v", 104)}},
        {"nopred", {}},
    };
    for (const Case& c : cases) {
      Query q;
      q.AddTable("big_a");
      for (const Predicate& p : c.predicates) q.AddPredicate(p);
      PhysicalPlan plan;
      plan.query = &q;
      plan.root = MakeScanNode(0);
      executor.set_vectorized(true);
      auto vec = executor.Execute(plan);
      executor.set_vectorized(false);
      auto scalar = executor.Execute(plan);
      ASSERT_TRUE(vec.ok() && scalar.ok()) << c.name << " rows=" << rows;
      ExpectResultsBitIdentical(*vec, *scalar);
      // Cross-check the count against a direct per-row evaluation.
      uint64_t want = 0;
      const Table& t = **catalog.GetTable("big_a");
      for (size_t r = 0; r < t.num_rows(); ++r) {
        bool pass = true;
        for (const Predicate& p : c.predicates) {
          auto idx = t.ColumnIndex(p.column);
          if (!p.Matches(t.ValueAt(r, *idx))) {
            pass = false;
            break;
          }
        }
        if (pass) ++want;
      }
      EXPECT_EQ(vec->row_count, want) << c.name << " rows=" << rows;
    }
  }
}

TEST(VectorizedJoinTest, MatchesScalarBitForBitAcrossThreads) {
  // Sizes straddle the parallel-join threshold (8192 build+probe rows) and
  // the batch size, so both the single-partition and the 16-partition radix
  // paths are exercised; match counts exceed kVecBatchRows per partition on
  // the larger sizes, exercising the match-buffer flush.
  struct Shape {
    size_t rows_a, rows_b;
  };
  for (Shape shape : {Shape{100, 50}, Shape{1025, 1023}, Shape{4096, 4095},
                      Shape{9000, 3000}}) {
    Catalog catalog = MakeSyntheticCatalog(shape.rows_a, shape.rows_b);
    Executor executor(&catalog);
    Query q;
    q.AddTable("big_a");
    q.AddTable("big_b");
    q.AddJoin(0, "k", 1, "k");
    q.AddPredicate(Predicate::Range(1, "w", 0, 4));
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                             MakeScanNode(1));

    ExecutionResult reference;
    bool have_reference = false;
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetGlobalThreads(static_cast<size_t>(threads));
      executor.set_vectorized(true);
      auto vec = executor.Execute(plan);
      executor.set_vectorized(false);
      auto scalar = executor.Execute(plan);
      ASSERT_TRUE(vec.ok() && scalar.ok())
          << shape.rows_a << "x" << shape.rows_b << " threads=" << threads;
      ExpectResultsBitIdentical(*vec, *scalar);
      if (!have_reference) {
        reference = *vec;
        have_reference = true;
      } else {
        ExpectResultsBitIdentical(*vec, reference);
      }
    }
    ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  }
}

// --- SIMD dispatch layer: level detection, LQO_SIMD override, per-level
// kernel bit-equality, and the real merge/NLJ join paths (DESIGN.md
// "Vectorized execution" → "SIMD dispatch"). ------------------------------

// Restores the active SIMD level on scope exit so tests compose.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::SetLevelForTest(level)) {}
  ~ScopedSimdLevel() { simd::SetLevelForTest(previous_); }

 private:
  simd::Level previous_;
};

TEST(SimdDispatchTest, SupportedLevelsAndNames) {
  std::vector<simd::Level> levels = simd::SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
    EXPECT_TRUE(simd::LevelSupported(levels[i]));
  }
  EXPECT_TRUE(simd::LevelSupported(simd::BestSupportedLevel()));
  for (simd::Level level : levels) {
    simd::Level parsed;
    ASSERT_TRUE(simd::ParseLevel(simd::LevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  simd::Level unused;
  EXPECT_FALSE(simd::ParseLevel("avx512", &unused));
  EXPECT_FALSE(simd::ParseLevel("", &unused));
}

TEST(SimdDispatchTest, EnvOverrideHonored) {
  simd::Level entry = simd::ActiveLevel();
  ASSERT_EQ(setenv("LQO_SIMD", "scalar", 1), 0);
  EXPECT_EQ(simd::ReinitFromEnv(), simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  // An unrecognized spelling falls back to plain detection.
  ASSERT_EQ(setenv("LQO_SIMD", "bogus", 1), 0);
  EXPECT_EQ(simd::ReinitFromEnv(), simd::BestSupportedLevel());
  ASSERT_EQ(unsetenv("LQO_SIMD"), 0);
  EXPECT_EQ(simd::ReinitFromEnv(), simd::BestSupportedLevel());
  simd::SetLevelForTest(entry);
}

TEST(SimdDispatchTest, SetLevelForTestClampsUnsupported) {
  simd::Level entry = simd::ActiveLevel();
  for (int l = 0; l < simd::kNumLevels; ++l) {
    simd::Level level = static_cast<simd::Level>(l);
    simd::SetLevelForTest(level);
    if (simd::LevelSupported(level)) {
      EXPECT_EQ(simd::ActiveLevel(), level);
    } else {
      EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
      // The table for an unsupported level is the scalar reference.
      EXPECT_EQ(&simd::KernelsFor(level),
                &simd::KernelsFor(simd::Level::kScalar));
    }
  }
  simd::SetLevelForTest(entry);
}

// Every supported level must produce byte-identical survivor vectors and
// hash words on lane-width edge cases: empty inputs, single rows, sizes
// straddling multiples of the 2/4/8-row lane groups, and selections that
// keep everything or nothing (compressed-store full/empty masks).
TEST(SimdKernelTest, AllLevelsMatchScalarOnEdgeSizes) {
  const simd::KernelTable& ref = simd::KernelsFor(simd::Level::kScalar);
  std::vector<int64_t> needles = {3, 5, 8, 13, 21, 34, 55, 89};
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{5},
                   size_t{7}, size_t{8}, size_t{9}, size_t{1023},
                   size_t{1024}, size_t{1025}, size_t{8193}}) {
    std::vector<int64_t> col(n);
    for (size_t i = 0; i < n; ++i) {
      col[i] = static_cast<int64_t>((i * 31 + 7) % 97);
    }
    // Selection of every third row, plus empty and full selections.
    std::vector<uint32_t> third;
    for (uint32_t r = 0; r < n; r += 3) third.push_back(r);
    std::vector<uint32_t> full(n);
    for (uint32_t r = 0; r < n; ++r) full[r] = r;
    std::vector<uint32_t> want(n + 1);
    std::vector<uint32_t> got(n + 1);
    std::vector<uint64_t> want_hash(n, 0x12345678u);
    std::vector<uint64_t> got_hash(n);
    ref.hash_combine_column(want_hash.data(), col.data(), 0, n);
    ref.hash_finalize(want_hash.data(), 0, n);
    for (simd::Level level : simd::SupportedLevels()) {
      if (level == simd::Level::kScalar) continue;
      const simd::KernelTable& kt = simd::KernelsFor(level);
      SCOPED_TRACE(std::string("level=") + simd::LevelName(level) +
                   " n=" + std::to_string(n));
      auto check = [&](size_t want_count, size_t got_count) {
        ASSERT_EQ(want_count, got_count);
        for (size_t i = 0; i < want_count; ++i) {
          ASSERT_EQ(want[i], got[i]) << "survivor " << i;
        }
      };
      uint32_t un = static_cast<uint32_t>(n);
      check(ref.filter_eq_dense(col.data(), 0, un, 42, want.data()),
            kt.filter_eq_dense(col.data(), 0, un, 42, got.data()));
      check(ref.filter_range_dense(col.data(), 0, un, 20, 60, want.data()),
            kt.filter_range_dense(col.data(), 0, un, 20, 60, got.data()));
      // Select-everything and select-nothing ranges (full/empty masks).
      check(ref.filter_range_dense(col.data(), 0, un, -5, 1000, want.data()),
            kt.filter_range_dense(col.data(), 0, un, -5, 1000, got.data()));
      check(ref.filter_range_dense(col.data(), 0, un, 200, 300, want.data()),
            kt.filter_range_dense(col.data(), 0, un, 200, 300, got.data()));
      check(ref.filter_in_dense(col.data(), 0, un, needles.data(),
                                needles.size(), want.data()),
            kt.filter_in_dense(col.data(), 0, un, needles.data(),
                               needles.size(), got.data()));
      for (const std::vector<uint32_t>* sel : {&third, &full}) {
        check(ref.filter_eq_sel(col.data(), sel->data(), sel->size(), 42,
                                want.data()),
              kt.filter_eq_sel(col.data(), sel->data(), sel->size(), 42,
                               got.data()));
        check(ref.filter_range_sel(col.data(), sel->data(), sel->size(), 20,
                                   60, want.data()),
              kt.filter_range_sel(col.data(), sel->data(), sel->size(), 20,
                                  60, got.data()));
        check(ref.filter_in_sel(col.data(), sel->data(), sel->size(),
                                needles.data(), needles.size(), want.data()),
              kt.filter_in_sel(col.data(), sel->data(), sel->size(),
                               needles.data(), needles.size(), got.data()));
      }
      // Empty selection.
      EXPECT_EQ(kt.filter_eq_sel(col.data(), full.data(), 0, 42, got.data()),
                0u);
      std::fill(got_hash.begin(), got_hash.end(), 0x12345678u);
      kt.hash_combine_column(got_hash.data(), col.data(), 0, n);
      kt.hash_finalize(got_hash.data(), 0, n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(want_hash[i], got_hash[i]) << "hash word " << i;
      }
    }
  }
}

// Executes `plan` at every supported SIMD level and thread count 1/2/8,
// vectorized and scalar, and expects one bit-identical ExecutionResult.
void ExpectPlanInvariantAcrossLevelsAndThreads(Catalog* catalog,
                                               const PhysicalPlan& plan) {
  Executor executor(catalog);
  simd::Level entry = simd::ActiveLevel();
  ExecutionResult reference;
  bool have_reference = false;
  for (simd::Level level : simd::SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetGlobalThreads(static_cast<size_t>(threads));
      executor.set_vectorized(true);
      auto vec = executor.Execute(plan);
      executor.set_vectorized(false);
      auto scalar = executor.Execute(plan);
      ASSERT_TRUE(vec.ok() && scalar.ok())
          << "level=" << simd::LevelName(level) << " threads=" << threads;
      SCOPED_TRACE(std::string("level=") + simd::LevelName(level) +
                   " threads=" + std::to_string(threads));
      ExpectResultsBitIdentical(*vec, *scalar);
      if (!have_reference) {
        reference = *vec;
        have_reference = true;
      } else {
        ExpectResultsBitIdentical(*vec, reference);
      }
    }
  }
  ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  simd::SetLevelForTest(entry);
}

TEST(SimdJoinTest, MergeJoinDuplicateRunsMatchScalarAndHash) {
  // Key space of 512 over thousands of rows → long duplicate runs on both
  // sides, exercising galloping run detection and the batched cross-product
  // emission (match buffers overflow kVecBatchRows within single runs).
  Catalog catalog = MakeSyntheticCatalog(3000, 2000);
  Query q;
  q.AddTable("big_a");
  q.AddTable("big_b");
  q.AddJoin(0, "k", 1, "k");
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kMergeJoin, MakeScanNode(0),
                           MakeScanNode(1));
  ExpectPlanInvariantAcrossLevelsAndThreads(&catalog, plan);
  // Same row count as the hash strategy (same multiset contract).
  Executor executor(&catalog);
  auto merge = executor.Execute(plan);
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto hash = executor.Execute(plan);
  ASSERT_TRUE(merge.ok() && hash.ok());
  EXPECT_EQ(merge->row_count, hash->row_count);
  EXPECT_GT(merge->row_count, 0u);
}

TEST(SimdJoinTest, NestedLoopBatchesMatchScalarAndHash) {
  // 1500 x 1300 = 1.95M pairs — under the 2^22 NLJ gate, so the real block
  // NLJ runs; inner batches hit full/partial kVecBatchRows boundaries.
  Catalog catalog = MakeSyntheticCatalog(1500, 1300);
  Query q;
  q.AddTable("big_a");
  q.AddTable("big_b");
  q.AddJoin(0, "k", 1, "k");
  q.AddPredicate(Predicate::Range(1, "w", 0, 4));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kNestedLoopJoin, MakeScanNode(0),
                           MakeScanNode(1));
  ExpectPlanInvariantAcrossLevelsAndThreads(&catalog, plan);
  Executor executor(&catalog);
  auto nlj = executor.Execute(plan);
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto hash = executor.Execute(plan);
  ASSERT_TRUE(nlj.ok() && hash.ok());
  EXPECT_EQ(nlj->row_count, hash->row_count);
  EXPECT_GT(nlj->row_count, 0u);
}

TEST(SimdJoinTest, AboveGateDeclaredJoinsFallBackToHash) {
  // 3000 x 2000 = 6M pairs > 2^22: an NLJ-declared node must take the hash
  // strategy (partitioned once past the parallel threshold) yet still charge
  // quadratic NLJ time.
  Catalog catalog = MakeSyntheticCatalog(3000, 2000);
  Executor executor(&catalog);
  Query q;
  q.AddTable("big_a");
  q.AddTable("big_b");
  q.AddJoin(0, "k", 1, "k");
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kNestedLoopJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto nlj = executor.Execute(plan);
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto hash = executor.Execute(plan);
  ASSERT_TRUE(nlj.ok() && hash.ok());
  EXPECT_EQ(nlj->row_count, hash->row_count);
  // Hash execution internals leak only into diagnostics, never charging:
  // the NLJ-declared node still pays the quadratic pair cost.
  EXPECT_GT(nlj->node_profiles.back().time_units,
            hash->node_profiles.back().time_units);
  EXPECT_EQ(nlj->node_profiles.back().partitions,
            hash->node_profiles.back().partitions);
}

TEST(SimdJoinTest, ScanFilterPlanInvariantAcrossLevels) {
  Catalog catalog = MakeSyntheticCatalog(8193, 16);
  Query q;
  q.AddTable("big_a");
  q.AddPredicate(Predicate::Range(0, "v", 100, 700));
  q.AddPredicate(Predicate::In(0, "k", {1, 2, 3, 5, 8, 13}));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  ExpectPlanInvariantAcrossLevelsAndThreads(&catalog, plan);
}

TEST(VectorizedExecutorTest, EnvEscapeHatchControlsDefault) {
  Catalog catalog = MakeToyCatalog();
  setenv("LQO_VECTORIZED", "0", /*overwrite=*/1);
  Executor scalar_default(&catalog);
  EXPECT_FALSE(scalar_default.vectorized());
  setenv("LQO_VECTORIZED", "1", /*overwrite=*/1);
  Executor vectorized_on(&catalog);
  EXPECT_TRUE(vectorized_on.vectorized());
  unsetenv("LQO_VECTORIZED");
  Executor vectorized_default(&catalog);
  EXPECT_TRUE(vectorized_default.vectorized());
  vectorized_default.set_vectorized(false);
  EXPECT_FALSE(vectorized_default.vectorized());
}

// --- Late-materialization output stage: aggregation kernels, projection,
// grouped aggregation (DESIGN.md "Late materialization & output pipeline").

// Every supported level's aggregation kernels must equal the scalar
// reference bit-for-bit at lane-width boundary sizes, through selections,
// and on wrapping-overflow sums.
TEST(AggregateKernelTest, AllLevelsMatchScalarAtBoundarySizes) {
  const simd::AggKernelTable& ref = simd::AggKernelsFor(simd::Level::kScalar);
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{5},
                   size_t{7}, size_t{8}, size_t{9}, size_t{1023},
                   size_t{1024}, size_t{1025}, size_t{8193}}) {
    std::vector<int64_t> col(n);
    for (size_t i = 0; i < n; ++i) {
      // Mixed signs, and huge values so multi-element sums wrap uint64.
      col[i] = static_cast<int64_t>((i * 31 + 7) % 97) - 48;
      if (i % 11 == 0) col[i] = INT64_MAX - static_cast<int64_t>(i);
    }
    std::vector<uint32_t> third;
    for (uint32_t r = 0; r < n; r += 3) third.push_back(r);
    std::vector<uint32_t> full(n);
    for (uint32_t r = 0; r < n; ++r) full[r] = r;
    uint32_t un = static_cast<uint32_t>(n);
    uint32_t mid = un / 3;  // sub-range with unaligned begin
    for (simd::Level level : simd::SupportedLevels()) {
      if (level == simd::Level::kScalar) continue;
      const simd::AggKernelTable& kt = simd::AggKernelsFor(level);
      SCOPED_TRACE(std::string("level=") + simd::LevelName(level) +
                   " n=" + std::to_string(n));
      EXPECT_EQ(ref.sum_dense(col.data(), 0, un),
                kt.sum_dense(col.data(), 0, un));
      EXPECT_EQ(ref.sum_dense(col.data(), mid, un),
                kt.sum_dense(col.data(), mid, un));
      EXPECT_EQ(ref.min_dense(col.data(), 0, un),
                kt.min_dense(col.data(), 0, un));
      EXPECT_EQ(ref.max_dense(col.data(), 0, un),
                kt.max_dense(col.data(), 0, un));
      for (const std::vector<uint32_t>* sel : {&third, &full}) {
        EXPECT_EQ(ref.sum_sel(col.data(), sel->data(), sel->size()),
                  kt.sum_sel(col.data(), sel->data(), sel->size()));
        EXPECT_EQ(ref.min_sel(col.data(), sel->data(), sel->size()),
                  kt.min_sel(col.data(), sel->data(), sel->size()));
        EXPECT_EQ(ref.max_sel(col.data(), sel->data(), sel->size()),
                  kt.max_sel(col.data(), sel->data(), sel->size()));
      }
      // Empty inputs return the fold identities at every level.
      EXPECT_EQ(kt.sum_dense(col.data(), un, un), 0u);
      EXPECT_EQ(kt.min_sel(col.data(), full.data(), 0), INT64_MAX);
      EXPECT_EQ(kt.max_sel(col.data(), full.data(), 0), INT64_MIN);
    }
  }
}

TEST(GroupIndexTest, AssignsFirstSeenOrderIdsAcrossGrowth) {
  // 10k keys over 600 distinct values forces several doublings past the
  // initial capacity; ids must stay dense and first-seen ordered.
  const simd::KernelTable& kt = simd::KernelsFor(simd::Level::kScalar);
  std::vector<int64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>((i * 37 + 11) % 600) - 300;
  }
  std::vector<uint64_t> hashes(keys.size(), 0);
  kt.hash_combine_column(hashes.data(), keys.data(), 0, keys.size());
  kt.hash_finalize(hashes.data(), 0, keys.size());
  simd::GroupIndex index(4);
  std::vector<uint32_t> ids(keys.size());
  index.MapBatch(keys.data(), hashes.data(), keys.size(), ids.data());
  // Reference: first-seen order via a plain map.
  std::vector<int64_t> want_keys;
  std::vector<uint32_t> want_ids;
  for (int64_t k : keys) {
    size_t g = 0;
    for (; g < want_keys.size(); ++g) {
      if (want_keys[g] == k) break;
    }
    if (g == want_keys.size()) want_keys.push_back(k);
    want_ids.push_back(static_cast<uint32_t>(g));
  }
  ASSERT_EQ(index.num_groups(), want_keys.size());
  EXPECT_EQ(index.group_keys(), want_keys);
  EXPECT_EQ(ids, want_ids);
}

TEST(AggregateTest, GlobalAggregatesMatchHandComputation) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddPredicate(Predicate::Range(0, "v", 15, 35));  // v=20, v=30 qualify
  q.AddOutput(OutputExpr::CountStar());
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMin, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMax, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kAvg, 0, "v"));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  executor.set_vectorized(true);
  auto vec = executor.Execute(plan);
  executor.set_vectorized(false);
  auto scalar = executor.Execute(plan);
  ASSERT_TRUE(vec.ok() && scalar.ok()) << vec.status().ToString();
  ExpectResultsBitIdentical(*vec, *scalar);
  EXPECT_EQ(vec->row_count, 2u);  // qualifying-row semantics unchanged
  EXPECT_EQ(vec->output_row_count, 1u);
  ASSERT_EQ(vec->output_cols.size(), 5u);
  EXPECT_EQ(vec->output_cols[0], (std::vector<int64_t>{2}));   // COUNT(*)
  EXPECT_EQ(vec->output_cols[1], (std::vector<int64_t>{50}));  // SUM
  EXPECT_EQ(vec->output_cols[2], (std::vector<int64_t>{20}));  // MIN
  EXPECT_EQ(vec->output_cols[3], (std::vector<int64_t>{30}));  // MAX
  EXPECT_EQ(vec->output_cols[4], (std::vector<int64_t>{25}));  // AVG
  // The sink appends one trailing profile: scan + output.
  ASSERT_EQ(vec->node_profiles.size(), 2u);
  EXPECT_EQ(vec->node_profiles.back().kind, PlanNode::Kind::kOutput);
  EXPECT_EQ(vec->node_profiles.back().output_rows, 1u);
}

TEST(AggregateTest, EmptyInputAggregatesAreZero) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddPredicate(Predicate::Equals(0, "v", 999));  // matches nothing
  q.AddOutput(OutputExpr::CountStar());
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMin, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMax, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kAvg, 0, "v"));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  executor.set_vectorized(true);
  auto vec = executor.Execute(plan);
  executor.set_vectorized(false);
  auto scalar = executor.Execute(plan);
  ASSERT_TRUE(vec.ok() && scalar.ok());
  ExpectResultsBitIdentical(*vec, *scalar);
  EXPECT_EQ(vec->row_count, 0u);
  EXPECT_EQ(vec->output_row_count, 1u);  // one (all-zero) global agg row
  for (size_t o = 0; o < vec->output_cols.size(); ++o) {
    EXPECT_EQ(vec->output_cols[o], (std::vector<int64_t>{0})) << "output " << o;
  }
}

TEST(AggregateTest, GroupByMatchesHandComputation) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddOutput(OutputExpr::Column(0, "k"));
  q.AddOutput(OutputExpr::CountStar());
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 0, "v"));
  q.SetGroupBy(0, "k");
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  executor.set_vectorized(true);
  auto vec = executor.Execute(plan);
  executor.set_vectorized(false);
  auto scalar = executor.Execute(plan);
  ASSERT_TRUE(vec.ok() && scalar.ok()) << vec.status().ToString();
  ExpectResultsBitIdentical(*vec, *scalar);
  // r = (1,10) (1,20) (2,30) (3,40): groups in first-seen order 1, 2, 3.
  EXPECT_EQ(vec->row_count, 4u);
  EXPECT_EQ(vec->output_row_count, 3u);
  ASSERT_EQ(vec->output_cols.size(), 3u);
  EXPECT_EQ(vec->output_cols[0], (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(vec->output_cols[1], (std::vector<int64_t>{2, 1, 1}));
  EXPECT_EQ(vec->output_cols[2], (std::vector<int64_t>{30, 30, 40}));
  EXPECT_EQ(vec->node_profiles.back().groups, 3u);
}

TEST(AggregateTest, AllGroupsDistinctOnePerRow) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q;
  q.AddTable("r");
  q.AddOutput(OutputExpr::Column(0, "v"));
  q.AddOutput(OutputExpr::CountStar());
  q.SetGroupBy(0, "v");  // unique column: every row its own group
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  executor.set_vectorized(true);
  auto vec = executor.Execute(plan);
  executor.set_vectorized(false);
  auto scalar = executor.Execute(plan);
  ASSERT_TRUE(vec.ok() && scalar.ok());
  ExpectResultsBitIdentical(*vec, *scalar);
  EXPECT_EQ(vec->output_row_count, 4u);
  EXPECT_EQ(vec->output_cols[0], (std::vector<int64_t>{10, 20, 30, 40}));
  EXPECT_EQ(vec->output_cols[1], (std::vector<int64_t>{1, 1, 1, 1}));
}

TEST(AggregateTest, SparseKeyDomainTakesHashGroupingPath) {
  // Keys spread over a huge domain defeat the dense direct-table mapping,
  // forcing the vectorized sink onto the hash + GroupIndex fallback — which
  // must still match the scalar reference bit for bit, first-seen order
  // included.
  Catalog catalog;
  {
    TableBuilder b("sparse");
    b.AddInt64Column("k");
    b.AddInt64Column("v");
    for (int64_t i = 0; i < 5000; ++i) {
      // 40 distinct keys ~2.6e14 apart: domain >> 2n+1024 and >> 1<<20.
      b.AppendRow({(i % 40) * 262'144'000'000'000, i});
    }
    LQO_CHECK(catalog.AddTable(b.Build()).ok());
  }
  Executor executor(&catalog);
  Query q;
  q.AddTable("sparse");
  q.AddOutput(OutputExpr::Column(0, "k"));
  q.AddOutput(OutputExpr::CountStar());
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMin, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMax, 0, "v"));
  q.SetGroupBy(0, "k");
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeScanNode(0);
  executor.set_vectorized(true);
  auto vec = executor.Execute(plan);
  executor.set_vectorized(false);
  auto scalar = executor.Execute(plan);
  ASSERT_TRUE(vec.ok() && scalar.ok());
  ExpectResultsBitIdentical(*vec, *scalar);
  EXPECT_EQ(vec->output_row_count, 40u);
  // First-seen order: group g holds rows g, g+40, ... -> COUNT 125 each,
  // MIN = g, MAX = g + 4960.
  for (size_t g = 0; g < 40; ++g) {
    EXPECT_EQ(vec->output_cols[0][g],
              static_cast<int64_t>(g) * 262'144'000'000'000);
    EXPECT_EQ(vec->output_cols[1][g], 125);
    EXPECT_EQ(vec->output_cols[3][g], static_cast<int64_t>(g));
    EXPECT_EQ(vec->output_cols[4][g], static_cast<int64_t>(g) + 4960);
  }
}

TEST(AggregateTest, GroupByOverJoinCrossChecksRowCount) {
  // Per-group COUNT(*) over a join must sum to the plain COUNT(*) row count
  // of the identical join — the output stage cannot change join semantics.
  Catalog catalog = MakeSyntheticCatalog(9000, 3000);
  Executor executor(&catalog);
  Query q;
  q.AddTable("big_a");
  q.AddTable("big_b");
  q.AddJoin(0, "k", 1, "k");
  q.AddPredicate(Predicate::Range(1, "w", 0, 4));
  q.AddOutput(OutputExpr::Column(1, "w"));
  q.AddOutput(OutputExpr::CountStar());
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMax, 0, "v"));
  q.SetGroupBy(1, "w");
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto grouped = executor.Execute(plan);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();

  Query plain;
  plain.AddTable("big_a");
  plain.AddTable("big_b");
  plain.AddJoin(0, "k", 1, "k");
  plain.AddPredicate(Predicate::Range(1, "w", 0, 4));
  PhysicalPlan plain_plan;
  plain_plan.query = &plain;
  plain_plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                                 MakeScanNode(1));
  auto counted = executor.Execute(plain_plan);
  ASSERT_TRUE(counted.ok());

  EXPECT_EQ(grouped->row_count, counted->row_count);
  uint64_t group_total = 0;
  for (int64_t c : grouped->output_cols[1]) {
    group_total += static_cast<uint64_t>(c);
  }
  EXPECT_EQ(group_total, counted->row_count);
  EXPECT_EQ(grouped->output_row_count, 5u);  // w in [0,4]
}

TEST(AggregateTest, GroupedJoinInvariantAcrossLevelsAndThreads) {
  Catalog catalog = MakeSyntheticCatalog(9000, 3000);
  Query q;
  q.AddTable("big_a");
  q.AddTable("big_b");
  q.AddJoin(0, "k", 1, "k");
  q.AddOutput(OutputExpr::Column(1, "w"));
  q.AddOutput(OutputExpr::CountStar());
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMin, 0, "v"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kMax, 1, "w"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kAvg, 0, "v"));
  q.SetGroupBy(1, "w");
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  ExpectPlanInvariantAcrossLevelsAndThreads(&catalog, plan);
}

TEST(ProjectionTest, ScanProjectionMatchesReferenceAtBoundarySizes) {
  for (size_t rows : {size_t{1}, size_t{1023}, size_t{1024}, size_t{1025},
                      size_t{8193}}) {
    Catalog catalog = MakeSyntheticCatalog(rows, 16);
    Executor executor(&catalog);
    Query q;
    q.AddTable("big_a");
    q.AddPredicate(Predicate::Range(0, "v", 100, 700));
    q.AddOutput(OutputExpr::Column(0, "v"));
    q.AddOutput(OutputExpr::Column(0, "k"));
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeScanNode(0);
    executor.set_vectorized(true);
    auto vec = executor.Execute(plan);
    executor.set_vectorized(false);
    auto scalar = executor.Execute(plan);
    ASSERT_TRUE(vec.ok() && scalar.ok()) << "rows=" << rows;
    ExpectResultsBitIdentical(*vec, *scalar);
    // Direct reference: qualifying rows in base-table order.
    const Table& t = **catalog.GetTable("big_a");
    std::vector<int64_t> want_v, want_k;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      int64_t v = t.ValueAt(r, *t.ColumnIndex("v"));
      if (v >= 100 && v <= 700) {
        want_v.push_back(v);
        want_k.push_back(t.ValueAt(r, *t.ColumnIndex("k")));
      }
    }
    EXPECT_EQ(vec->output_row_count, want_v.size()) << "rows=" << rows;
    EXPECT_EQ(vec->output_cols[0], want_v) << "rows=" << rows;
    EXPECT_EQ(vec->output_cols[1], want_k) << "rows=" << rows;
  }
}

TEST(ProjectionTest, JoinProjectionInvariantAcrossLevelsAndThreads) {
  Catalog catalog = MakeSyntheticCatalog(4096, 4095);
  Query q;
  q.AddTable("big_a");
  q.AddTable("big_b");
  q.AddJoin(0, "k", 1, "k");
  q.AddPredicate(Predicate::Range(1, "w", 0, 2));
  q.AddOutput(OutputExpr::Column(0, "v"));
  q.AddOutput(OutputExpr::Column(1, "w"));
  q.AddOutput(OutputExpr::Column(0, "k"));
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  ExpectPlanInvariantAcrossLevelsAndThreads(&catalog, plan);
}

TEST(ExecutorTest, RejectsInvalidOutputStage) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  // Mixing bare columns and aggregates without GROUP BY.
  {
    Query q;
    q.AddTable("r");
    q.AddOutput(OutputExpr::Column(0, "v"));
    q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 0, "v"));
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeScanNode(0);
    EXPECT_FALSE(executor.Execute(plan).ok());
  }
  // A bare column that is not the GROUP BY key.
  {
    Query q;
    q.AddTable("r");
    q.AddOutput(OutputExpr::Column(0, "v"));
    q.SetGroupBy(0, "k");
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeScanNode(0);
    EXPECT_FALSE(executor.Execute(plan).ok());
  }
  // Output referencing a table outside the plan.
  {
    Query q;
    q.AddTable("r");
    q.AddTable("s");
    q.AddJoin(0, "k", 1, "k");
    q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 1, "w"));
    PhysicalPlan plan;
    plan.query = &q;
    plan.root = MakeScanNode(0);  // plan covers r only
    EXPECT_FALSE(executor.Execute(plan).ok());
  }
}

TEST(ExplainAnalyzeTest, RendersOutputStageAndMaterialization) {
  Catalog catalog = MakeToyCatalog();
  Executor executor(&catalog);
  Query q = MakeJoinQuery();
  q.AddOutput(OutputExpr::Column(0, "k"));
  q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 1, "w"));
  q.SetGroupBy(0, "k");
  PhysicalPlan plan;
  plan.query = &q;
  plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                           MakeScanNode(1));
  auto result = executor.Execute(plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string text = ExplainAnalyze(plan, *result);
  EXPECT_NE(text.find("Output t0.k, SUM(t1.w) GROUP BY t0.k"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("carried_cols="), std::string::npos) << text;
  EXPECT_NE(text.find("materialized="), std::string::npos) << text;
  EXPECT_NE(text.find("groups=2"), std::string::npos) << text;  // k=1, k=2
  EXPECT_NE(text.find("output rows"), std::string::npos) << text;
}

TEST(TrueCardinalityTest, SubqueryMonotoneUnderPredicates) {
  DatasetOptions options;
  options.scale = 0.05;
  Catalog catalog = MakeStatsLite(options);
  TrueCardinalityService service(&catalog);

  Query wide;
  wide.AddTable("users");
  wide.AddPredicate(Predicate::Range(0, "reputation", 0, 1000000));
  Query narrow;
  narrow.AddTable("users");
  narrow.AddPredicate(Predicate::Range(0, "reputation", 0, 100));
  EXPECT_GE(service.Cardinality(wide), service.Cardinality(narrow));
}

}  // namespace
}  // namespace lqo
