#include <memory>

#include <gtest/gtest.h>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "cardinality/training_data.h"
#include "pilotscope/console.h"
#include "pilotscope/drivers.h"
#include "pilotscope/interactor.h"

namespace lqo {
namespace {

class PilotScopeTest : public ::testing::Test {
 protected:
  PilotScopeTest() {
    lab_ = MakeLab("stats_lite", 0.08);
    interactor_ = std::make_unique<EngineInteractor>(
        &lab_->catalog, lab_->optimizer.get(), lab_->estimator.get(),
        lab_->executor.get());
    WorkloadOptions wopts;
    wopts.num_queries = 20;
    wopts.min_tables = 2;
    wopts.max_tables = 4;
    wopts.seed = 1001;
    workload_ = GenerateWorkload(lab_->catalog, wopts);
  }

  std::unique_ptr<Lab> lab_;
  std::unique_ptr<EngineInteractor> interactor_;
  Workload workload_;
};

TEST_F(PilotScopeTest, InteractorPushPullRoundTrip) {
  const Query& q = workload_.queries[0];
  auto native = interactor_->PullPlan(q);
  ASSERT_TRUE(native.ok());

  // Pushing hints changes the planned operators.
  HintSet nlj_only;
  nlj_only.enable_hash_join = false;
  nlj_only.enable_merge_join = false;
  ASSERT_TRUE(interactor_->PushHints(nlj_only).ok());
  auto hinted = interactor_->PullPlan(q);
  ASSERT_TRUE(hinted.ok());
  VisitPlanBottomUp(*hinted->root, [](const PlanNode& node) {
    if (node.kind == PlanNode::Kind::kJoin) {
      EXPECT_EQ(node.algorithm, JoinAlgorithm::kNestedLoopJoin);
    }
  });
  ASSERT_TRUE(interactor_->ClearPushes().ok());

  // Execution returns the same count for both plans.
  auto native_result = interactor_->PullExecution(*native);
  auto hinted_result = interactor_->PullExecution(*hinted);
  ASSERT_TRUE(native_result.ok());
  ASSERT_TRUE(hinted_result.ok());
  EXPECT_EQ(native_result->row_count, hinted_result->row_count);
  EXPECT_GT(interactor_->op_counts().pushes, 0);
  EXPECT_GT(interactor_->op_counts().pulls, 0);
}

TEST_F(PilotScopeTest, InteractorCardinalityInjectionChangesEstimates) {
  const Query& q = workload_.queries[0];
  Subquery full{&q, q.AllTables()};
  auto base = interactor_->PullEstimatedCardinality(full);
  ASSERT_TRUE(base.ok());
  EXPECT_GT(*base, 0.0);

  // Injection affects planning (the pushed value flows into PullPlan's
  // provider, which we verify indirectly via plan annotation).
  ASSERT_TRUE(interactor_->PushCardinalityOverride(full.Key(), 1.0).ok());
  auto plan = interactor_->PullPlan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->root->estimated_cardinality, 1.0);
  ASSERT_TRUE(interactor_->ClearPushes().ok());
}

TEST_F(PilotScopeTest, InteractorValidatesInput) {
  EXPECT_FALSE(interactor_->PushCardinalityOverride("key", -5.0).ok());
  EXPECT_FALSE(interactor_->PushCardinalityScale(-1.0, 2).ok());
}

TEST_F(PilotScopeTest, SubqueriesPulledMatchConnectedSubsets) {
  const Query& q = workload_.queries[0];
  auto subqueries = interactor_->PullSubqueries(q);
  ASSERT_TRUE(subqueries.ok());
  EXPECT_EQ(subqueries->size(), ConnectedSubsets(q).size());
}

TEST_F(PilotScopeTest, ConsoleNativeExecutionMatchesTruth) {
  PilotScopeConsole console(&lab_->catalog, interactor_.get());
  const Query& q = workload_.queries[0];
  auto result = console.ExecuteQuery(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, lab_->truth->Cardinality(q));
}

TEST_F(PilotScopeTest, ConsoleExecutesSql) {
  PilotScopeConsole console(&lab_->catalog, interactor_.get());
  auto result = console.ExecuteSql(
      "SELECT COUNT(*) FROM users u, posts p "
      "WHERE u.id = p.owner_user_id AND u.reputation >= 500");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->row_count, 0u);
  EXPECT_FALSE(console.ExecuteSql("SELECT garbage").ok());
}

TEST_F(PilotScopeTest, CardinalityDriverInjectsLearnedEstimates) {
  // Build a data-driven estimator and deploy it through the driver.
  DataDrivenEstimator estimator("factorjoin", &lab_->catalog, &lab_->stats,
                                JoinCombineMode::kKeyBuckets);
  estimator.SetUniformModelKind(TableModelKind::kSample);
  estimator.Build();

  PilotScopeConsole console(&lab_->catalog, interactor_.get());
  ASSERT_TRUE(console
                  .RegisterDriver(
                      std::make_unique<CardinalityDriver>(&estimator))
                  .ok());
  ASSERT_TRUE(console.ActivateDriver("ce_driver(factorjoin)").ok());

  for (size_t i = 0; i < 5; ++i) {
    const Query& q = workload_.queries[i];
    auto result = console.ExecuteQuery(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The driver must preserve result correctness regardless of estimates.
    EXPECT_EQ(result->row_count, lab_->truth->Cardinality(q));
  }
}

TEST_F(PilotScopeTest, ConsoleRejectsDuplicateAndUnknownDrivers) {
  PilotScopeConsole console(&lab_->catalog, interactor_.get());
  ASSERT_TRUE(console.RegisterDriver(std::make_unique<BaoDriver>()).ok());
  EXPECT_FALSE(console.RegisterDriver(std::make_unique<BaoDriver>()).ok());
  EXPECT_FALSE(console.ActivateDriver("nope").ok());
  EXPECT_TRUE(console.ActivateDriver("bao_driver").ok());
  EXPECT_EQ(console.driver_names().size(), 1u);
}

TEST_F(PilotScopeTest, BaoDriverTrainsAndServes) {
  PilotScopeConsole console(&lab_->catalog, interactor_.get());
  auto driver = std::make_unique<BaoDriver>();
  BaoDriver* bao = driver.get();
  ASSERT_TRUE(console.RegisterDriver(std::move(driver)).ok());
  ASSERT_TRUE(console.ActivateDriver("bao_driver").ok());
  ASSERT_TRUE(console.TrainActiveDriver(workload_).ok());
  EXPECT_TRUE(bao->trained());
  auto result = console.ExecuteQuery(workload_.queries[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, lab_->truth->Cardinality(workload_.queries[0]));
}

TEST_F(PilotScopeTest, LeroDriverTrainsAndServes) {
  PilotScopeConsole console(&lab_->catalog, interactor_.get());
  auto driver = std::make_unique<LeroDriver>();
  LeroDriver* lero = driver.get();
  ASSERT_TRUE(console.RegisterDriver(std::move(driver)).ok());
  ASSERT_TRUE(console.ActivateDriver("lero_driver").ok());
  ASSERT_TRUE(console.TrainActiveDriver(workload_).ok());
  EXPECT_TRUE(lero->trained());
  auto result = console.ExecuteQuery(workload_.queries[1]);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, lab_->truth->Cardinality(workload_.queries[1]));
}

TEST_F(PilotScopeTest, DriverTransparencyPreservesAllResults) {
  // Whatever driver runs, the user sees correct COUNT(*) values.
  PilotScopeConsole console(&lab_->catalog, interactor_.get());
  ASSERT_TRUE(console.RegisterDriver(std::make_unique<LeroDriver>()).ok());
  ASSERT_TRUE(console.ActivateDriver("lero_driver").ok());
  for (size_t i = 0; i < 8; ++i) {
    const Query& q = workload_.queries[i];
    auto with_driver = console.ExecuteQuery(q);
    ASSERT_TRUE(with_driver.ok());
    EXPECT_EQ(with_driver->row_count, lab_->truth->Cardinality(q))
        << q.ToString();
  }
}

}  // namespace
}  // namespace lqo
