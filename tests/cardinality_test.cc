#include <cmath>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "cardinality/ar_model.h"
#include "cardinality/bayes_net_model.h"
#include "cardinality/data_driven.h"
#include "cardinality/discretize.h"
#include "cardinality/evaluation.h"
#include "cardinality/featurizer.h"
#include "cardinality/hybrid.h"
#include "cardinality/kde_model.h"
#include "cardinality/query_driven.h"
#include "cardinality/registry.h"
#include "cardinality/sample_model.h"
#include "cardinality/sketch_model.h"
#include "cardinality/spn_model.h"
#include "cardinality/traditional.h"
#include "cardinality/training_data.h"
#include "common/stats_util.h"
#include "engine/true_cardinality.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

TEST(ColumnBinningTest, SmallDomainOneBinPerValue) {
  std::vector<int64_t> values = {3, 1, 2, 1, 3, 3};
  ColumnBinning binning = ColumnBinning::BuildEquiDepth(values, 10);
  EXPECT_EQ(binning.num_bins(), 3);
  EXPECT_EQ(binning.BinOf(1), 0);
  EXPECT_EQ(binning.BinOf(2), 1);
  EXPECT_EQ(binning.BinOf(3), 2);
  EXPECT_DOUBLE_EQ(binning.OverlapFraction(0, 1, 5), 1.0);
  EXPECT_DOUBLE_EQ(binning.OverlapFraction(0, 2, 5), 0.0);
}

TEST(ColumnBinningTest, LargeDomainEquiDepth) {
  std::vector<int64_t> values;
  for (int64_t v = 0; v < 10000; ++v) values.push_back(v);
  ColumnBinning binning = ColumnBinning::BuildEquiDepth(values, 16);
  EXPECT_LE(binning.num_bins(), 16);
  EXPECT_GE(binning.num_bins(), 8);
  // Bins tile the domain contiguously.
  EXPECT_EQ(binning.BinLow(0), 0);
  EXPECT_EQ(binning.BinHigh(binning.num_bins() - 1), 9999);
  for (int b = 1; b < binning.num_bins(); ++b) {
    EXPECT_EQ(binning.BinLow(b), binning.BinHigh(b - 1) + 1);
  }
  // BinOf is consistent with ranges.
  for (int64_t v : {0L, 777L, 5000L, 9999L}) {
    int b = binning.BinOf(v);
    EXPECT_GE(v, binning.BinLow(b));
    EXPECT_LE(v, binning.BinHigh(b));
  }
}

TEST(KeyBucketsTest, CoversDomain) {
  KeyBuckets buckets(0, 999, 10);
  EXPECT_EQ(buckets.num_buckets(), 10);
  EXPECT_EQ(buckets.BucketOf(0), 0);
  EXPECT_EQ(buckets.BucketOf(999), 9);
  EXPECT_EQ(buckets.BucketOf(-5), 0);
  EXPECT_EQ(buckets.BucketOf(5000), 9);
  for (int b = 0; b < 10; ++b) {
    EXPECT_EQ(buckets.BucketOf(buckets.BucketLow(b)), b);
    EXPECT_EQ(buckets.BucketOf(buckets.BucketHigh(b)), b);
  }
  EXPECT_EQ(buckets.BucketLow(0), 0);
  EXPECT_EQ(buckets.BucketHigh(9), 999);
}

class CardinalityTest : public ::testing::Test {
 protected:
  CardinalityTest() {
    DatasetOptions options;
    options.scale = 0.08;
    catalog_ = MakeStatsLite(options);
    stats_.Build(catalog_);
    truth_ = std::make_unique<TrueCardinalityService>(&catalog_);

    WorkloadOptions wopts;
    wopts.num_queries = 60;
    wopts.min_tables = 1;
    wopts.max_tables = 3;
    wopts.seed = 501;
    train_workload_ = GenerateWorkload(catalog_, wopts);
    wopts.seed = 502;
    wopts.num_queries = 25;
    test_workload_ = GenerateWorkload(catalog_, wopts);

    training_data_ =
        BuildCeTrainingData(catalog_, stats_, train_workload_, truth_.get());
    test_data_ =
        BuildCeTrainingData(catalog_, stats_, test_workload_, truth_.get());
  }

  const Table& TableOf(const std::string& name) {
    return **catalog_.GetTable(name);
  }

  Catalog catalog_;
  StatsCatalog stats_;
  std::unique_ptr<TrueCardinalityService> truth_;
  Workload train_workload_, test_workload_;
  CeTrainingData training_data_, test_data_;
};

TEST_F(CardinalityTest, ConnectedSubsetsEnumeration) {
  Query q;
  q.AddTable("users");
  q.AddTable("posts");
  q.AddTable("comments");
  q.AddJoin(0, "id", 1, "owner_user_id");
  q.AddJoin(1, "id", 2, "post_id");
  std::vector<TableSet> subsets = ConnectedSubsets(q);
  // Chain of 3: {0},{1},{2},{01},{12},{012} = 6 connected subsets.
  EXPECT_EQ(subsets.size(), 6u);
  for (TableSet s : subsets) EXPECT_TRUE(q.IsConnected(s));
}

TEST_F(CardinalityTest, TrainingDataLabelsAreExact) {
  ASSERT_FALSE(training_data_.labeled.empty());
  for (size_t i = 0; i < 10; ++i) {
    const LabeledSubquery& labeled = training_data_.labeled[i];
    EXPECT_EQ(labeled.cardinality,
              static_cast<double>(truth_->Cardinality(labeled.AsSubquery())));
  }
}

TEST_F(CardinalityTest, FeaturizerFixedDimAndDeterministic) {
  QueryFeaturizer featurizer(&catalog_, &stats_);
  EXPECT_GT(featurizer.dim(), 10u);
  for (const LabeledSubquery& labeled : training_data_.labeled) {
    std::vector<double> f1 = featurizer.Featurize(labeled.AsSubquery());
    std::vector<double> f2 = featurizer.Featurize(labeled.AsSubquery());
    ASSERT_EQ(f1.size(), featurizer.dim());
    EXPECT_EQ(f1, f2);
  }
}

TEST_F(CardinalityTest, FeaturizerDistinguishesPredicates) {
  QueryFeaturizer featurizer(&catalog_, &stats_);
  Query a, b;
  a.AddTable("users");
  a.AddPredicate(Predicate::Range(0, "reputation", 0, 100));
  b.AddTable("users");
  b.AddPredicate(Predicate::Range(0, "reputation", 0, 5000));
  EXPECT_NE(featurizer.Featurize(Subquery{&a, 1}),
            featurizer.Featurize(Subquery{&b, 1}));
}

// ---- Per-table models ------------------------------------------------------

class TableModelTest : public CardinalityTest,
                       public ::testing::WithParamInterface<std::string> {
 protected:
  std::unique_ptr<SingleTableDistribution> MakeModel(
      const std::string& table) {
    const Table* t = &TableOf(table);
    const std::string& kind = GetParam();
    if (kind == "sample") {
      return std::make_unique<SampleTableModel>(
          t, stats_.Of(table).sample_rows);
    }
    if (kind == "kde") {
      return std::make_unique<KdeTableModel>(t,
                                             stats_.Of(table).sample_rows);
    }
    if (kind == "bayesnet") return std::make_unique<BayesNetTableModel>(t);
    if (kind == "spn") return std::make_unique<SpnTableModel>(t);
    if (kind == "ar") return std::make_unique<ArTableModel>(t);
    if (kind == "sketch") return std::make_unique<SketchTableModel>(t);
    LQO_LOG(Fatal) << "unknown model " << kind;
    return nullptr;
  }
};

TEST_P(TableModelTest, SelectivityMatchesTruthOnCorrelatedPredicates) {
  // users.reputation and users.up_votes are strongly correlated; the
  // histogram+independence baseline misestimates conjunctions, data-driven
  // per-table models should stay within a modest q-error.
  auto model = MakeModel("users");
  Query q;
  q.AddTable("users");
  q.AddPredicate(Predicate::Range(0, "reputation", 5000, 12000));
  q.AddPredicate(Predicate::Range(0, "up_votes", 500, 1300));

  double truth_rows = static_cast<double>(truth_->Cardinality(q));
  double est_rows = model->Selectivity(q, 0) *
                    static_cast<double>(TableOf("users").num_rows());
  double q_err = QError(est_rows, truth_rows);
  EXPECT_LT(q_err, 4.0) << GetParam() << ": est=" << est_rows
                        << " truth=" << truth_rows;
}

TEST_P(TableModelTest, SelectivityBounds) {
  auto model = MakeModel("posts");
  Query q;
  q.AddTable("posts");
  q.AddPredicate(Predicate::Range(0, "score", -100000, 100000));
  double sel = model->Selectivity(q, 0);
  EXPECT_GE(sel, 0.9);  // everything passes.
  EXPECT_LE(sel, 1.0 + 1e-9);

  Query empty_q;
  empty_q.AddTable("posts");
  empty_q.AddPredicate(Predicate::Equals(0, "score", -999999));
  EXPECT_LT(model->Selectivity(empty_q, 0), 0.05);
}

TEST_P(TableModelTest, FilteredKeyHistogramMassConsistent) {
  auto model = MakeModel("posts");
  Query q;
  q.AddTable("posts");
  q.AddPredicate(Predicate::Range(0, "score", 2, 50));
  const ColumnStats& key_stats = stats_.Of("posts").ColumnStatsOf("id");
  KeyBuckets buckets(key_stats.min_value, key_stats.max_value, 32);
  std::vector<double> masses =
      model->FilteredKeyHistogram(q, 0, "id", buckets);
  ASSERT_EQ(masses.size(), 32u);
  double total = 0.0;
  for (double m : masses) {
    EXPECT_GE(m, 0.0);
    total += m;
  }
  double expected = model->Selectivity(q, 0) *
                    static_cast<double>(TableOf("posts").num_rows());
  EXPECT_GT(total, expected * 0.5);
  EXPECT_LT(total, expected * 2.0 + 10.0);
}

INSTANTIATE_TEST_SUITE_P(AllTableModels, TableModelTest,
                         ::testing::Values("sample", "kde", "bayesnet", "spn",
                                           "ar", "sketch"));

TEST_F(CardinalityTest, IamGmmBinningShrinksWideDomains) {
  // users.up_votes is wide; the IAM variant discretizes it with far fewer
  // bins than the equi-depth default while staying usable.
  ArTableModel equi(&TableOf("users"), 40, 200, 601, /*gmm_binning=*/false);
  ArTableModel iam(&TableOf("users"), 40, 200, 601, /*gmm_binning=*/true);
  EXPECT_LT(iam.NumBinsOf("up_votes"), equi.NumBinsOf("up_votes"));

  Query q;
  q.AddTable("users");
  q.AddPredicate(Predicate::Range(0, "reputation", 5000, 12000));
  double truth_rows = static_cast<double>(truth_->Cardinality(q));
  double est = iam.Selectivity(q, 0) *
               static_cast<double>(TableOf("users").num_rows());
  EXPECT_LT(QError(est, truth_rows), 4.0);
}

TEST_F(CardinalityTest, SketchModelPairsCorrelatedColumns) {
  // users.reputation and users.up_votes are constructed to co-vary; the
  // Iris-style budget allocation must pair them.
  SketchTableModel sketch(&TableOf("users"));
  EXPECT_GE(sketch.num_pairs(), 1u);
  EXPECT_EQ(sketch.Kind(), "sketch");
}

// ---- Full estimators -------------------------------------------------------

TEST_F(CardinalityTest, HistogramEstimatorMatchesBaselineName) {
  HistogramEstimator histogram(&catalog_, &stats_);
  EXPECT_EQ(histogram.Name(), "histogram");
  Query q;
  q.AddTable("users");
  double est = histogram.EstimateSubquery(Subquery{&q, 1});
  EXPECT_NEAR(est, static_cast<double>(TableOf("users").num_rows()),
              static_cast<double>(TableOf("users").num_rows()) * 0.01);
}

TEST_F(CardinalityTest, SamplingEstimatorAccurateOnSingleTable) {
  SamplingEstimator sampling(&catalog_, 0.1);
  std::vector<LabeledSubquery> single, multi;
  SplitBySize(test_data_.labeled, &single, &multi);
  ASSERT_FALSE(single.empty());
  QErrorSummary summary = EvaluateEstimator(&sampling, single);
  EXPECT_LT(summary.p50, 2.0);
}

TEST_F(CardinalityTest, QueryDrivenModelsFitTrainingWorkload) {
  for (auto type : {QueryDrivenEstimator::ModelType::kLinear,
                    QueryDrivenEstimator::ModelType::kGbdt}) {
    QueryDrivenEstimator estimator(type, &catalog_, &stats_);
    estimator.Train(training_data_);
    QErrorSummary summary =
        EvaluateEstimator(&estimator, training_data_.labeled);
    EXPECT_LT(summary.p50, 6.0) << estimator.Name();
  }
}

TEST_F(CardinalityTest, GbdtGeneralizesToTestWorkload) {
  QueryDrivenEstimator estimator(QueryDrivenEstimator::ModelType::kGbdt,
                                 &catalog_, &stats_);
  estimator.Train(training_data_);
  QErrorSummary summary = EvaluateEstimator(&estimator, test_data_.labeled);
  EXPECT_LT(summary.p50, 12.0);
}

TEST_F(CardinalityTest, QuickSelLearnsSingleTableSelectivities) {
  QuickSelEstimator quicksel(&catalog_, &stats_);
  quicksel.Train(training_data_);
  std::vector<LabeledSubquery> single, multi;
  SplitBySize(test_data_.labeled, &single, &multi);
  ASSERT_FALSE(single.empty());
  QErrorSummary summary = EvaluateEstimator(&quicksel, single);
  EXPECT_LT(summary.p50, 4.0);
}

TEST_F(CardinalityTest, DataDrivenEstimatorsReasonableOnJoins) {
  std::vector<LabeledSubquery> single, multi;
  SplitBySize(test_data_.labeled, &single, &multi);
  ASSERT_FALSE(multi.empty());

  for (auto [kind, mode] :
       {std::pair{TableModelKind::kSpn, JoinCombineMode::kIndependence},
        std::pair{TableModelKind::kBayesNet, JoinCombineMode::kKeyBuckets},
        std::pair{TableModelKind::kSample, JoinCombineMode::kKeyBuckets}}) {
    DataDrivenEstimator estimator("dd_test", &catalog_, &stats_, mode);
    estimator.SetUniformModelKind(kind);
    estimator.Build();
    QErrorSummary summary = EvaluateEstimator(&estimator, multi);
    EXPECT_LT(summary.p50, 25.0) << TableModelKindName(kind);
    EXPECT_GE(summary.p50, 1.0);
  }
}

TEST_F(CardinalityTest, KeyBucketCombineBeatsIndependenceOnSkewedJoin) {
  // posts.owner_user_id is Zipf-skewed toward high-reputation users; with a
  // predicate on users.reputation the key-bucket combine should capture the
  // correlation that the independence combine misses.
  Query q;
  q.AddTable("users");
  q.AddTable("posts");
  q.AddJoin(0, "id", 1, "owner_user_id");
  q.AddPredicate(Predicate::Range(0, "reputation", 8000, 1000000));
  double truth_rows = static_cast<double>(truth_->Cardinality(q));

  DataDrivenEstimator buckets("buckets", &catalog_, &stats_,
                              JoinCombineMode::kKeyBuckets);
  buckets.SetUniformModelKind(TableModelKind::kSample);
  buckets.Build();
  DataDrivenEstimator indep("indep", &catalog_, &stats_,
                            JoinCombineMode::kIndependence);
  indep.SetUniformModelKind(TableModelKind::kSample);
  indep.Build();

  double q_buckets =
      QError(buckets.EstimateSubquery(Subquery{&q, 0b11}), truth_rows);
  double q_indep =
      QError(indep.EstimateSubquery(Subquery{&q, 0b11}), truth_rows);
  EXPECT_LT(q_buckets, q_indep * 1.5)
      << "buckets=" << q_buckets << " indep=" << q_indep;
}

TEST_F(CardinalityTest, UaeCorrectionImprovesOverDataOnly) {
  UaeEstimator uae(&catalog_, &stats_);
  uae.Train(training_data_);
  // On the training workload the corrected estimates must beat raw data
  // estimates in aggregate.
  std::vector<double> corrected, data_only;
  for (const LabeledSubquery& labeled : training_data_.labeled) {
    corrected.push_back(QError(uae.EstimateSubquery(labeled.AsSubquery()),
                               labeled.cardinality));
    data_only.push_back(QError(uae.DataOnlyEstimate(labeled.AsSubquery()),
                               labeled.cardinality));
  }
  EXPECT_LE(GeometricMean(corrected), GeometricMean(data_only) * 1.05);
}

TEST_F(CardinalityTest, GlueSelectsPerTableModels) {
  auto glue = MakeGlueEstimator(&catalog_, &stats_, training_data_);
  ASSERT_TRUE(glue->built());
  EXPECT_EQ(glue->Name(), "glue");
  QErrorSummary summary = EvaluateEstimator(glue.get(), test_data_.labeled);
  EXPECT_LT(summary.p50, 20.0);
}

TEST_F(CardinalityTest, RegistryBuildsFullSuiteWithUniqueNames) {
  EstimatorSuiteOptions options;
  options.include_mlp = false;  // keep unit test fast; MLP covered elsewhere.
  std::vector<RegisteredEstimator> suite =
      MakeEstimatorSuite(catalog_, stats_, training_data_, options);
  EXPECT_GE(suite.size(), 10u);
  std::set<std::string> names;
  std::set<CeCategory> categories;
  for (const RegisteredEstimator& entry : suite) {
    EXPECT_TRUE(names.insert(entry.estimator->Name()).second)
        << "duplicate estimator " << entry.estimator->Name();
    categories.insert(entry.category);
    EXPECT_FALSE(entry.represents.empty());
    // Every estimator answers a simple query.
    Query q;
    q.AddTable("users");
    double est = entry.estimator->EstimateSubquery(Subquery{&q, 1});
    EXPECT_GT(est, 0.0) << entry.estimator->Name();
  }
  // All Table-1 categories except the skipped DNN row are populated.
  EXPECT_GE(categories.size(), 4u);
}

TEST_F(CardinalityTest, EvaluationSplitsPartitionLabeledSet) {
  std::vector<LabeledSubquery> single, multi;
  SplitBySize(test_data_.labeled, &single, &multi);
  EXPECT_EQ(single.size() + multi.size(), test_data_.labeled.size());
  for (const LabeledSubquery& s : single) EXPECT_EQ(PopCount(s.tables), 1);
  for (const LabeledSubquery& m : multi) EXPECT_GT(PopCount(m.tables), 1);
}

}  // namespace
}  // namespace lqo
