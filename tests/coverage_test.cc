// Edge-path coverage: small behaviors not exercised by the module suites.

#include <memory>

#include <gtest/gtest.h>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "common/table_printer.h"
#include "costmodel/learned_cost_model.h"
#include "costmodel/plan_featurizer.h"
#include "e2e/neo.h"
#include "e2e/value_search.h"
#include "optimizer/optimizer.h"

namespace lqo {
namespace {

TEST(HintSetTest, AllDisabledFallsBackToAllAlgorithms) {
  HintSet hints;
  hints.enable_hash_join = false;
  hints.enable_nested_loop = false;
  hints.enable_merge_join = false;
  EXPECT_EQ(hints.AllowedAlgorithms().size(), 3u);
  HintSet one;
  one.enable_hash_join = false;
  one.enable_merge_join = false;
  ASSERT_EQ(one.AllowedAlgorithms().size(), 1u);
  EXPECT_EQ(one.AllowedAlgorithms()[0], JoinAlgorithm::kNestedLoopJoin);
}

TEST(TablePrinterTest, EmptyTableStillRenders) {
  TablePrinter printer({"a"});
  std::string out = printer.ToString();
  EXPECT_NE(out.find("| a |"), std::string::npos);
  EXPECT_EQ(printer.num_rows(), 0u);
}

class CoverageTest : public ::testing::Test {
 protected:
  CoverageTest() : lab_(MakeLab("stats_lite", 0.05)) {}
  std::unique_ptr<Lab> lab_;
};

TEST_F(CoverageTest, ProviderOverrideInvalidatesCache) {
  Query q;
  q.AddTable("users");
  Subquery sub{&q, 1};
  CardinalityProvider provider(lab_->estimator.get());
  double before = provider.Cardinality(sub);  // caches.
  provider.InjectOverride(sub.Key(), before * 7);
  EXPECT_DOUBLE_EQ(provider.Cardinality(sub), before * 7);
  provider.ClearOverrides();
  EXPECT_DOUBLE_EQ(provider.Cardinality(sub), before);
}

TEST_F(CoverageTest, SubqueryKeyEncodesInPredicates) {
  Query a, b;
  a.AddTable("users");
  a.AddPredicate(Predicate::In(0, "reputation", {1, 2, 3}));
  b.AddTable("users");
  b.AddPredicate(Predicate::In(0, "reputation", {1, 2, 4}));
  EXPECT_NE((Subquery{&a, 1}).Key(), (Subquery{&b, 1}).Key());
}

TEST_F(CoverageTest, LeadingHintRespectsFullOrder) {
  Query q;
  q.AddTable("users");
  q.AddTable("posts");
  q.AddTable("comments");
  q.AddJoin(0, "id", 1, "owner_user_id");
  q.AddJoin(1, "id", 2, "post_id");
  CardinalityProvider cards(lab_->estimator.get());
  HintSet hints;
  hints.leading = {2, 1, 0};  // complete forced order.
  PlannerResult result = lab_->optimizer->Optimize(q, &cards, hints);
  // Left-deep spine must be comments, posts, users bottom-up.
  const PlanNode* node = result.plan.root.get();
  ASSERT_EQ(node->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(node->right->table_index, 0);
  node = node->left.get();
  ASSERT_EQ(node->kind, PlanNode::Kind::kJoin);
  EXPECT_EQ(node->right->table_index, 1);
  EXPECT_EQ(node->left->table_index, 2);
}

TEST_F(CoverageTest, NeoSearchSurvivesTinyExpansionBudget) {
  WorkloadOptions wopts;
  wopts.num_queries = 10;
  wopts.min_tables = 3;
  wopts.max_tables = 4;
  wopts.seed = 1501;
  Workload workload = GenerateWorkload(lab_->catalog, wopts);

  NeoOptions options;
  options.max_expansions = 1;  // forces the greedy-completion fallback.
  NeoOptimizer neo(lab_->Context(), options);
  HarnessOptions train_options;
  train_options.training_passes = 1;
  TrainLearnedOptimizer(&neo, workload, *lab_->executor, train_options);
  ASSERT_TRUE(neo.trained());
  for (const Query& q : workload.queries) {
    PhysicalPlan plan = neo.ChoosePlan(q);
    EXPECT_EQ(plan.root->table_set, q.AllTables());
  }
}

TEST_F(CoverageTest, FeaturizerDimsStable) {
  CardinalityProvider cards(lab_->estimator.get());
  Query q;
  q.AddTable("users");
  q.AddTable("posts");
  q.AddJoin(0, "id", 1, "owner_user_id");
  PhysicalPlan plan = lab_->optimizer->Optimize(q, &cards).plan;
  EXPECT_EQ(PlanFeaturizer::Featurize(plan).size(), PlanFeaturizer::kDim);
  EXPECT_EQ(PlanNodeFeatures(plan, lab_->stats).size(), 3u);
  for (const auto& f : PlanNodeFeatures(plan, lab_->stats)) {
    EXPECT_EQ(f.size(), PlanFeaturizer::kNodeDim);
  }
}

TEST_F(CoverageTest, GreedySingleTableQuery) {
  Query q;
  q.AddTable("users");
  q.AddPredicate(Predicate::Range(0, "reputation", 0, 100));
  CardinalityProvider cards(lab_->estimator.get());
  PlannerResult dp = lab_->optimizer->Optimize(q, &cards);
  PlannerResult greedy = lab_->optimizer->OptimizeGreedy(q, &cards);
  EXPECT_EQ(dp.plan.Signature(), greedy.plan.Signature());
  EXPECT_DOUBLE_EQ(dp.estimated_cost, greedy.estimated_cost);
}

}  // namespace
}  // namespace lqo
