// Tests for the lqo-lint rule engine (tools/lqo-lint): every rule is
// exercised with one violating and one conforming fixture, plus waiver
// parsing, allowlist handling, and the comment/string-aware lexer. Fixtures
// live in string literals, which is itself a regression test: the repo-wide
// lint gate scans this file, so the engine must not see into literals.
#include "lqo-lint/lint.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace lqo::lint {
namespace {

int Count(const std::vector<Finding>& findings, std::string_view rule_id,
          bool waived = false) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.rule_id == rule_id && f.waived == waived;
      }));
}

TEST(LintCatalog, RulesAreWellFormed) {
  ASSERT_FALSE(Rules().empty());
  for (const Rule& rule : Rules()) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_TRUE(rule.family == "determinism" || rule.family == "concurrency" ||
                rule.family == "hygiene")
        << rule.id;
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    EXPECT_FALSE(rule.explain.empty()) << rule.id;
    // Waiver syntax embeds the rule id so --explain is self-describing.
    EXPECT_NE(rule.waiver.find(std::string(rule.id) + "-ok("),
              std::string_view::npos)
        << rule.id;
    EXPECT_EQ(FindRule(rule.id), &rule);
  }
  EXPECT_EQ(FindRule("no-such-rule"), nullptr);
}

TEST(LintScrub, BlanksCommentsAndLiterals) {
  ScrubResult s = Scrub("int a; // rand()\nconst char* b = \"rand()\";\n");
  EXPECT_EQ(s.code.find("rand"), std::string::npos);
  ASSERT_GT(s.line_comments.size(), 1u);
  EXPECT_NE(s.line_comments[1].find("rand()"), std::string::npos);
}

TEST(LintScrub, RawStringsAreOpaque) {
  ScrubResult s = Scrub("auto fixture = R\"(std::thread t; rand();)\";\n");
  EXPECT_EQ(s.code.find("thread"), std::string::npos);
  EXPECT_EQ(s.code.find("rand"), std::string::npos);
}

TEST(LintScrub, DigitSeparatorIsNotACharLiteral) {
  ScrubResult s = Scrub("int n = 1'000'000; srand(n);\n");
  EXPECT_NE(s.code.find("srand"), std::string::npos);
}

// --- determinism -----------------------------------------------------------

TEST(LintRules, RandViolatingAndConforming) {
  EXPECT_EQ(Count(LintText("a.cc", "int x = rand();\n"), "rand"), 1);
  EXPECT_EQ(Count(LintText("a.cc", "void f() { srand(7); }\n"), "rand"), 1);
  // `rand` as a plain identifier (no call) and rng.Rand() are fine.
  EXPECT_EQ(Count(LintText("a.cc", "int rand = 3; int y = rng.Rand();\n"),
                  "rand"),
            0);
}

TEST(LintRules, RandomDeviceViolatingAndConforming) {
  EXPECT_EQ(Count(LintText("a.cc", "std::random_device rd;\n"),
                  "random-device"),
            1);
  EXPECT_EQ(Count(LintText("a.cc", "lqo::Rng rng(42);\n"), "random-device"),
            0);
}

TEST(LintRules, WallClockViolatingAndConforming) {
  EXPECT_EQ(Count(LintText("a.cc", "long t = time(nullptr);\n"), "wall-clock"),
            1);
  EXPECT_EQ(
      Count(LintText("a.cc", "auto n = std::chrono::system_clock::now();\n"),
            "wall-clock"),
      1);
  // steady_clock durations and identifiers containing `time` are fine.
  EXPECT_EQ(
      Count(LintText("a.cc",
                     "auto t0 = std::chrono::steady_clock::now();\n"
                     "double exec_time(int x);\n"),
            "wall-clock"),
      0);
}

TEST(LintRules, ExecPolicyViolatingAndConforming) {
  EXPECT_EQ(Count(LintText("a.cc",
                           "std::sort(std::execution::par, v.begin(), "
                           "v.end());\n"),
                  "exec-policy"),
            1);
  EXPECT_EQ(Count(LintText("a.cc", "ParallelFor(n, fn);\n"), "exec-policy"),
            0);
}

TEST(LintRules, UnorderedIterViolatingAndConforming) {
  std::string violating = R"cpp(
    void f() {
      std::unordered_map<int, double> counts;
      for (const auto& [k, v] : counts) Use(k, v);
    }
  )cpp";
  EXPECT_EQ(Count(LintText("a.cc", violating), "unordered-iter"), 1);

  std::string conforming = R"cpp(
    void f() {
      std::map<int, double> counts;
      std::unordered_map<int, double> lookup;
      for (const auto& [k, v] : counts) Use(k, v);
      Use(lookup.at(3), 0);
    }
  )cpp";
  EXPECT_EQ(Count(LintText("a.cc", conforming), "unordered-iter"), 0);
}

TEST(LintRules, UnorderedIterSeesAliasesAndSets) {
  std::string via_alias = R"cpp(
    using Index = std::unordered_set<uint64_t>;
    void f() {
      Index seen;
      for (uint64_t h : seen) Use(h);
    }
  )cpp";
  EXPECT_EQ(Count(LintText("a.cc", via_alias), "unordered-iter"), 1);
}

TEST(LintRules, UnorderedIterSeesPairedHeaderMembers) {
  FileInput input;
  input.path = "m.cc";
  input.paired_header = R"cpp(
    class Memo {
      std::unordered_map<uint64_t, double> cache_;
      void Dump();
    };
  )cpp";
  input.content = R"cpp(
    void Memo::Dump() {
      for (const auto& [k, v] : cache_) Print(k, v);
    }
  )cpp";
  EXPECT_EQ(Count(LintFile(input), "unordered-iter"), 1);
  input.paired_header.clear();  // without the header the member is unknown
  EXPECT_EQ(Count(LintFile(input), "unordered-iter"), 0);
}

TEST(LintRules, ParallelReductionViolatingAndConforming) {
  std::string violating = R"cpp(
    double Sum(const std::vector<double>& x) {
      double total = 0;
      ParallelFor(x.size(), [&](size_t i) { total += x[i]; });
      return total;
    }
  )cpp";
  EXPECT_EQ(Count(LintText("a.cc", violating), "parallel-reduction"), 1);

  // Index-addressed slots with a serial fold — the sanctioned pattern —
  // and accumulators declared inside the lambda body are both exempt.
  std::string conforming = R"cpp(
    double Sum(const std::vector<double>& x) {
      std::vector<double> out(x.size());
      ParallelFor(x.size(), [&](size_t i) { out[i] += x[i]; });
      ParallelFor(x.size(), [&](size_t i) {
        double local = 0;
        local += x[i];
        out[i] = local;
      });
      double total = 0;
      for (double v : out) total += v;
      return total;
    }
  )cpp";
  EXPECT_EQ(Count(LintText("a.cc", conforming), "parallel-reduction"), 0);
}

TEST(LintRules, ParallelReductionSeesPairedHeaderMembers) {
  FileInput input;
  input.path = "m.cc";
  input.paired_header = R"cpp(
    class Stats {
      double running_sum_ = 0;
      void Accumulate(const std::vector<double>& x);
    };
  )cpp";
  input.content = R"cpp(
    void Stats::Accumulate(const std::vector<double>& x) {
      ParallelFor(x.size(), [&](size_t i) { running_sum_ += x[i]; });
    }
  )cpp";
  EXPECT_EQ(Count(LintFile(input), "parallel-reduction"), 1);
  input.paired_header.clear();  // without the header the member is unknown
  EXPECT_EQ(Count(LintFile(input), "parallel-reduction"), 0);
}

TEST(LintRules, ParallelReductionRespectsOrderedComment) {
  // A stated determinism argument on the site (or the comment block right
  // above it) downgrades the site to sanctioned.
  std::string ordered = R"cpp(
    void f(std::vector<double>& x, double& total) {
      ParallelFor(1, [&](size_t chunk) {
        // ordered-reduction: single chunk, serial within the task
        total += x[chunk];
      });
    }
  )cpp";
  EXPECT_EQ(Count(LintText("a.cc", ordered), "parallel-reduction"), 0);

  std::string waived = R"cpp(
    void f(std::vector<double>& x, double& total) {
      ParallelFor(1, [&](size_t chunk) {
        total += x[chunk];  // lint: parallel-reduction-ok(fixture)
      });
    }
  )cpp";
  std::vector<Finding> findings = LintText("a.cc", waived);
  EXPECT_EQ(Count(findings, "parallel-reduction", /*waived=*/true), 1);
  EXPECT_EQ(Count(findings, "parallel-reduction", /*waived=*/false), 0);

  // A by-value capture holds a task-private copy: no aliasing, no race.
  std::string by_value = R"cpp(
    void f() {
      double total = 0;
      ParallelFor(4, [total](size_t i) mutable { total += Noop(i); });
    }
  )cpp";
  EXPECT_EQ(Count(LintText("a.cc", by_value), "parallel-reduction"), 0);
}

// --- concurrency -----------------------------------------------------------

TEST(LintRules, RawThreadViolatingAndConforming) {
  std::string spawn = "void f() { std::thread t([] {}); t.join(); }\n";
  EXPECT_EQ(Count(LintText("src/e2e/bao.cc", spawn), "raw-thread"), 1);
  std::string detach = "void f(Worker* w) { w->handle().detach(); }\n";
  EXPECT_EQ(Count(LintText("a.cc", detach), "raw-thread"), 1);
  std::string tls = "thread_local int scratch = 0;\n";
  EXPECT_EQ(Count(LintText("a.cc", tls), "raw-thread"), 1);
  // std::thread::id and std::this_thread never spawn; the pool API is the
  // sanctioned route.
  std::string conforming =
      "void f() {\n"
      "  std::thread::id me = std::this_thread::get_id();\n"
      "  ParallelFor(8, [&](size_t i) { Use(i, me); });\n"
      "}\n";
  EXPECT_EQ(Count(LintText("a.cc", conforming), "raw-thread"), 0);
}

TEST(LintRules, RawThreadAllowlistsTheThreadPool) {
  std::string spawn = "std::thread worker([] { Loop(); });\n";
  EXPECT_EQ(Count(LintText("src/common/thread_pool.cc", spawn), "raw-thread"),
            0);
  EXPECT_EQ(Count(LintText("src/common/thread_pool.h", spawn), "raw-thread"),
            0);
  EXPECT_EQ(Count(LintText("src/engine/executor.cc", spawn), "raw-thread"), 1);
}

TEST(LintRules, MutexGuardsViolatingAndConforming) {
  std::string bare = R"cpp(
    class Pool {
      std::mutex mutex_;
    };
  )cpp";
  EXPECT_EQ(Count(LintText("a.h", bare), "mutex-guards"), 1);

  std::string commented = R"cpp(
    class Pool {
      std::mutex mutex_;  // guards: queue_, stop_
      // guards: cache_ — reads shared, inserts exclusive (spans two
      // comment lines right above the declaration).
      mutable std::shared_mutex cache_mutex_;
    };
  )cpp";
  EXPECT_EQ(Count(LintText("a.h", commented), "mutex-guards"), 0);

  // Lock instantiations mentioning std::mutex as a template argument are
  // not declarations.
  std::string lock = "void f() { std::lock_guard<std::mutex> lock(m_); }\n";
  EXPECT_EQ(Count(LintText("a.cc", lock), "mutex-guards"), 0);
}

TEST(LintRules, AtomicCommentViolatingAndConforming) {
  std::string bare = R"cpp(
    class Counters {
      std::atomic<uint64_t> hits_{0};
    };
  )cpp";
  EXPECT_EQ(Count(LintText("a.h", bare), "atomic-comment"), 1);

  std::string commented = R"cpp(
    class Counters {
      std::atomic<uint64_t> hits_{0};  // relaxed: monotonic stat only
      // Release-store in Freeze(), acquire-load in readers: publishes the
      // single-threaded-phase contents (comment block above also counts).
      std::atomic<bool> frozen_{false};
    };
  )cpp";
  EXPECT_EQ(Count(LintText("a.h", commented), "atomic-comment"), 0);

  // std::atomic as a nested template argument is a use, not a declaration.
  std::string nested = "std::vector<std::atomic<int>> slots(n);\n";
  EXPECT_EQ(Count(LintText("a.cc", nested), "atomic-comment"), 0);
}

TEST(LintRules, HeaderMutableStateViolatingAndConforming) {
  std::string violating =
      "#ifndef G_H_\n#define G_H_\n"
      "namespace lqo {\n"
      "inline int g_calls = 0;\n"
      "}\n#endif\n";
  EXPECT_EQ(Count(LintText("g.h", violating), "header-mutable-state"), 1);

  std::string conforming =
      "#ifndef G_H_\n#define G_H_\n"
      "namespace lqo {\n"
      "inline constexpr int kLimit = 64;\n"
      "class Counter { static int count_; };\n"
      "inline int Twice(int x) { static const int kTwo = 2; return kTwo * x; }\n"
      "}\n#endif\n";
  EXPECT_EQ(Count(LintText("g.h", conforming), "header-mutable-state"), 0);

  // The rule is header-only: function-local statics in a .cc are the
  // sanctioned lazy-init pattern (cf. ThreadPool::Global()).
  EXPECT_EQ(Count(LintText("g.cc", "static int g_calls = 0;\n"),
                  "header-mutable-state"),
            0);
}

// --- hygiene ---------------------------------------------------------------

TEST(LintRules, HeaderGuardViolatingAndConforming) {
  EXPECT_EQ(Count(LintText("a.h", "int F();\n"), "header-guard"), 1);
  // Mismatched #ifndef/#define is as broken as no guard.
  EXPECT_EQ(Count(LintText("a.h", "#ifndef A_H_\n#define B_H_\n#endif\n"),
                  "header-guard"),
            1);
  EXPECT_EQ(Count(LintText("a.h",
                           "// banner comment\n"
                           "#ifndef A_H_\n#define A_H_\nint F();\n#endif\n"),
                  "header-guard"),
            0);
  EXPECT_EQ(Count(LintText("a.h", "#pragma once\nint F();\n"), "header-guard"),
            0);
  // .cc files need no guard.
  EXPECT_EQ(Count(LintText("a.cc", "int F() { return 1; }\n"), "header-guard"),
            0);
}

TEST(LintRules, UsingNamespaceHeaderViolatingAndConforming) {
  std::string with_using =
      "#pragma once\nusing namespace std;\nint F();\n";
  EXPECT_EQ(Count(LintText("a.h", with_using), "using-namespace-header"), 1);
  std::string qualified = "#pragma once\nusing lqo::ThreadPool;\nint F();\n";
  EXPECT_EQ(Count(LintText("a.h", qualified), "using-namespace-header"), 0);
  // The rule is header-only by design.
  EXPECT_EQ(Count(LintText("a.cc", "using namespace std;\n"),
                  "using-namespace-header"),
            0);
}

TEST(LintRules, HotLoopGrowthViolatingAndConforming) {
  // Growth in a nested loop of a hot-path file fires.
  std::string violating = R"cpp(
    void Kernel(std::vector<std::vector<long>>& cols, long n) {
      for (long r = 0; r < n; ++r) {
        for (size_t c = 0; c < cols.size(); ++c) {
          cols[c].push_back(r);
        }
      }
    }
  )cpp";
  EXPECT_EQ(Count(LintText("engine/executor.cc", violating),
                  "hot-loop-growth"),
            1);
  // emplace_back in a while-inside-for fires too.
  std::string while_nested = R"cpp(
    void Probe(std::vector<long>& out, long n) {
      for (long l = 0; l < n; ++l) {
        while (Step(l)) {
          out.emplace_back(l);
        }
      }
    }
  )cpp";
  EXPECT_EQ(Count(LintText("engine/executor.cc", while_nested),
                  "hot-loop-growth"),
            1);
  // Depth-1 growth (scatter loops) and bulk gathers are fine.
  std::string conforming = R"cpp(
    void Scatter(std::vector<long>& out, long n) {
      for (long r = 0; r < n; ++r) {
        out.push_back(r);
      }
      for (long r = 0; r < n; ++r) {
        for (long c = 0; c < 3; ++c) {
          GatherAppend(col, sel, count, &out);
        }
      }
    }
  )cpp";
  EXPECT_EQ(Count(LintText("engine/executor.cc", conforming),
                  "hot-loop-growth"),
            0);
  // The rule is scoped to hot-path files: engine/ and *kernel* paths.
  EXPECT_EQ(Count(LintText("optimizer/search.cc", violating),
                  "hot-loop-growth"),
            0);
  EXPECT_EQ(Count(LintText("ml/scan_kernels.cc", violating),
                  "hot-loop-growth"),
            1);
  // Non-member push_back identifiers don't count.
  std::string free_fn = R"cpp(
    void F(long n) {
      for (long r = 0; r < n; ++r) {
        for (long c = 0; c < 3; ++c) {
          push_back(r);
        }
      }
    }
  )cpp";
  EXPECT_EQ(Count(LintText("engine/executor.cc", free_fn), "hot-loop-growth"),
            0);
}

TEST(LintRules, HotLoopGrowthWaiverOnScalarReferencePath) {
  std::string waived = R"cpp(
    void Scan(std::vector<long>& out, long n) {
      for (long r = 0; r < n; ++r) {
        for (long c = 0; c < 3; ++c) {
          // lint: hot-loop-growth-ok(scalar reference path for A/B equality)
          out.push_back(r);
        }
      }
    }
  )cpp";
  std::vector<Finding> findings = LintText("engine/executor.cc", waived);
  EXPECT_EQ(Count(findings, "hot-loop-growth", /*waived=*/false), 0);
  EXPECT_EQ(Count(findings, "hot-loop-growth", /*waived=*/true), 1);
}

TEST(LintRules, RawIntrinsicsViolatingAndConforming) {
  // Intrinsic headers and _mm*/v*q_ calls outside engine/simd.* fire.
  std::string include_violation = "#include <immintrin.h>\n";
  EXPECT_EQ(Count(LintText("engine/executor.cc", include_violation),
                  "raw-intrinsics"),
            1);
  EXPECT_EQ(Count(LintText("ml/forest.cc", "#include <arm_neon.h>\n"),
                  "raw-intrinsics"),
            1);
  std::string call_violation = R"cpp(
    long F(const long* p) {
      __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      return _mm256_extract_epi64(v, 0);
    }
  )cpp";
  EXPECT_EQ(Count(LintText("engine/filter_kernels.cc", call_violation),
                  "raw-intrinsics"),
            2);
  std::string neon_violation = R"cpp(
    void G(const long* p) { auto v = vld1q_s64(p); Use(v); }
  )cpp";
  EXPECT_EQ(Count(LintText("bench/bench_micro_components.cc", neon_violation),
                  "raw-intrinsics"),
            1);
  // The dispatch layer itself is the allowlisted home for intrinsics.
  EXPECT_EQ(Count(LintText("engine/simd.cc", call_violation),
                  "raw-intrinsics"),
            0);
  EXPECT_EQ(Count(LintText("engine/simd.h", include_violation),
                  "raw-intrinsics"),
            0);
  // Identifiers that merely contain a prefix mid-token don't count, and
  // calling through the dispatch table is the conforming spelling.
  std::string conforming = R"cpp(
    void H(const long* col, unsigned* out) {
      int my_mm_count = 0;
      simd::Kernels().filter_eq_dense(col, 0, 8, 42, out);
      Use(my_mm_count);
    }
  )cpp";
  EXPECT_EQ(Count(LintText("engine/executor.cc", conforming),
                  "raw-intrinsics"),
            0);
}

TEST(LintRules, RawIntrinsicsWaiver) {
  std::string waived = R"cpp(
    // lint: raw-intrinsics-ok(prefetch hint only, no data-path SIMD)
    void F(const char* p) { _mm_prefetch(p, 1); }
  )cpp";
  std::vector<Finding> findings = LintText("engine/executor.cc", waived);
  EXPECT_EQ(Count(findings, "raw-intrinsics", /*waived=*/false), 0);
  EXPECT_EQ(Count(findings, "raw-intrinsics", /*waived=*/true), 1);
}

// --- waivers ---------------------------------------------------------------

TEST(LintWaivers, SameLineAndPrecedingLineWaive) {
  std::string same_line = R"cpp(
    void f() {
      std::unordered_map<int, long> counts;
      long total = 0;
      for (const auto& [k, v] : counts) total += v;  // lint: unordered-iter-ok(integer sum is order-free)
      Use(total);
    }
  )cpp";
  std::vector<Finding> findings = LintText("a.cc", same_line);
  EXPECT_EQ(Count(findings, "unordered-iter", /*waived=*/true), 1);
  EXPECT_EQ(Count(findings, "unordered-iter", /*waived=*/false), 0);

  std::string prev_line = R"cpp(
    void f() {
      std::unordered_map<int, long> counts;
      long total = 0;
      // lint: unordered-iter-ok(integer sum is order-free)
      for (const auto& [k, v] : counts) total += v;
      Use(total);
    }
  )cpp";
  findings = LintText("a.cc", prev_line);
  EXPECT_EQ(Count(findings, "unordered-iter", /*waived=*/true), 1);
  EXPECT_EQ(Count(findings, "unordered-iter", /*waived=*/false), 0);
}

TEST(LintWaivers, ReasonIsMandatoryAndRuleIdMustMatch) {
  std::string no_reason =
      "int x = rand();  // lint: rand-ok()\n";
  EXPECT_EQ(Count(LintText("a.cc", no_reason), "rand", /*waived=*/false), 1);
  std::string wrong_rule =
      "int x = rand();  // lint: wall-clock-ok(not the right rule)\n";
  EXPECT_EQ(Count(LintText("a.cc", wrong_rule), "rand", /*waived=*/false), 1);
  std::string ok = "int x = rand();  // lint: rand-ok(fixture noise source)\n";
  std::vector<Finding> findings = LintText("a.cc", ok);
  EXPECT_EQ(Count(findings, "rand", /*waived=*/true), 1);
  EXPECT_EQ(Count(findings, "rand", /*waived=*/false), 0);
}

// --- aggregation -----------------------------------------------------------

TEST(LintTally, SplitsErrorsAndWaived) {
  std::string source =
      "int a = rand();\n"
      "int b = rand();  // lint: rand-ok(fixture)\n"
      "std::random_device rd;\n";
  auto tally = Tally(LintText("a.cc", source));
  EXPECT_EQ(tally["rand"].errors, 1);
  EXPECT_EQ(tally["rand"].waived, 1);
  EXPECT_EQ(tally["random-device"].errors, 1);
  EXPECT_EQ(tally["random-device"].waived, 0);
}

TEST(LintFindings, CarryFileLineAndSortOrder) {
  std::string source = "int a = 1;\nint b = rand();\n";
  std::vector<Finding> findings = LintText("dir/f.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "dir/f.cc");
  EXPECT_EQ(findings[0].line, 2);
}

// --- whole-program analysis (phase 2) --------------------------------------

std::vector<Finding> Analyze(std::vector<FileInput> files) {
  return AnalyzeFiles(std::move(files));
}

TEST(LintLockDiscipline, BareUseOfGuardedMemberIsReported) {
  std::string source = R"cpp(
    class Counter {
     public:
      void Bump() {
        total_ += 1;
      }

     private:
      std::mutex mutex_;  // guards: total_
      long total_ = 0;
    };
  )cpp";
  std::vector<Finding> findings = Analyze({{"counter.h", source, ""}});
  EXPECT_EQ(Count(findings, "lock-discipline"), 1);
}

TEST(LintLockDiscipline, LockGuardAcquisitionConforms) {
  std::string source = R"cpp(
    class Counter {
     public:
      void Bump() {
        std::lock_guard<std::mutex> lock(mutex_);
        total_ += 1;
      }

     private:
      std::mutex mutex_;  // guards: total_
      long total_ = 0;
    };
  )cpp";
  std::vector<Finding> findings = Analyze({{"counter.h", source, ""}});
  EXPECT_EQ(Count(findings, "lock-discipline"), 0);
}

TEST(LintLockDiscipline, LockedByWaiverIsHonored) {
  std::string source = R"cpp(
    class Counter {
     public:
      void Init() {
        // locked-by: mutex_(called before any worker can see this object)
        total_ = 0;
      }

     private:
      std::mutex mutex_;  // guards: total_
      long total_ = 0;
    };
  )cpp";
  std::vector<Finding> findings = Analyze({{"counter.h", source, ""}});
  EXPECT_EQ(Count(findings, "lock-discipline", /*waived=*/false), 0);
  EXPECT_EQ(Count(findings, "lock-discipline", /*waived=*/true), 1);
}

TEST(LintLockDiscipline, SharedAndExclusiveLocksBothAccepted) {
  std::string source = R"cpp(
    class Stats {
     public:
      long Read() const {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        return value_;
      }
      void Write(long v) {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        value_ = v;
      }

     private:
      mutable std::shared_mutex mutex_;  // guards: value_
      long value_ = 0;
    };
  )cpp";
  std::vector<Finding> findings = Analyze({{"stats.h", source, ""}});
  EXPECT_EQ(Count(findings, "lock-discipline"), 0);
}

TEST(LintLockDiscipline, CrossTuOutOfLineDefinitionIsChecked) {
  std::string header = R"cpp(
    class Registry {
     public:
      void Add(int v);

     private:
      std::mutex mutex_;  // guards: items_
      std::vector<int> items_;
    };
  )cpp";
  std::string impl = R"cpp(
    void Registry::Add(int v) {
      items_.push_back(v);
    }
  )cpp";
  // The contract lives in the header; the violation is in the impl TU.
  std::vector<Finding> findings =
      Analyze({{"registry.h", header, ""}, {"other.cc", impl, ""}});
  EXPECT_EQ(Count(findings, "lock-discipline"), 1);
}

TEST(LintLockDiscipline, RequiresAnnotationTreatsLockAsHeld) {
  std::string header = R"cpp(
    class Registry {
     public:
      void AddLocked(int v) LQO_REQUIRES(mutex_);

     private:
      std::mutex mutex_;  // guards: items_
      std::vector<int> items_;
    };
  )cpp";
  std::string impl = R"cpp(
    void Registry::AddLocked(int v) {
      items_.push_back(v);
    }
  )cpp";
  std::vector<Finding> findings =
      Analyze({{"registry.h", header, ""}, {"registry.cc", impl, ""}});
  EXPECT_EQ(Count(findings, "lock-discipline"), 0);
}

TEST(LintLockDiscipline, LockScopeEndsAtBlockClose) {
  std::string source = R"cpp(
    class Box {
     public:
      void Reset() {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          v_ = 0;
        }
        v_ = 1;
      }

     private:
      std::mutex mutex_;  // guards: v_
      long v_ = 0;
    };
  )cpp";
  std::vector<Finding> findings = Analyze({{"box.h", source, ""}});
  EXPECT_EQ(Count(findings, "lock-discipline"), 1);
}

TEST(LintXtuUnorderedIter, MemberThroughHeaderAliasAcrossTu) {
  // The alias lives in a third TU, so neither widget.cc nor its paired
  // header can resolve by_id_'s type alone — only the project index can.
  std::string types = R"cpp(
    using Index = std::unordered_map<long, long>;
  )cpp";
  std::string header = R"cpp(
    class Widget {
     public:
      long Sum() const;

     private:
      Index by_id_;
    };
  )cpp";
  std::string impl = R"cpp(
    long Widget::Sum() const {
      long total = 0;
      for (const auto& [k, v] : by_id_) total += v;
      return total;
    }
  )cpp";
  std::vector<Finding> findings = Analyze({{"types.h", types, ""},
                                           {"widget.h", header, ""},
                                           {"widget.cc", impl, ""}});
  EXPECT_EQ(Count(findings, "unordered-iter"), 1);
}

TEST(LintXtuUnorderedIter, NoDoubleReportWithPairedHeader) {
  // The per-file pass already sees the paired header; the cross-TU pass
  // must not report the same site a second time.
  std::string header = R"cpp(
    class Catalog {
     public:
      long Total() const;

     private:
      std::unordered_map<long, long> counts_;
    };
  )cpp";
  std::string impl = R"cpp(
    long Catalog::Total() const {
      long total = 0;
      for (const auto& [k, v] : counts_) total += v;
      return total;
    }
  )cpp";
  std::vector<Finding> findings =
      Analyze({{"catalog.h", header, ""}, {"catalog.cc", impl, ""}});
  EXPECT_EQ(Count(findings, "unordered-iter"), 1);
}

TEST(LintLayering, ForbiddenEdgeReportedAllowedEdgeClean) {
  std::string bad = "#include \"serving/plan_cache.h\"\n";
  std::string good = "#include \"common/logging.h\"\n";
  std::vector<Finding> findings =
      Analyze({{"src/engine/exec.cc", bad, ""},
               {"src/engine/exec2.cc", good, ""}});
  EXPECT_EQ(Count(findings, "layering"), 1);
  std::string waived =
      "// lint: layering-ok(transition shim, tracked in ROADMAP)\n"
      "#include \"serving/plan_cache.h\"\n";
  findings = Analyze({{"src/ml/model.cc", waived, ""}});
  EXPECT_EQ(Count(findings, "layering", /*waived=*/false), 0);
  EXPECT_EQ(Count(findings, "layering", /*waived=*/true), 1);
}

TEST(LintLayering, DagIsWellFormed) {
  ASSERT_FALSE(LayerDag().empty());
  const LayerSpec* common = FindLayer("common");
  ASSERT_NE(common, nullptr);
  EXPECT_TRUE(common->may_include.empty());  // common is the base layer
  // Every listed dependency must itself be a known layer, and no layer may
  // list itself (self-edges are implicit).
  for (const LayerSpec& layer : LayerDag()) {
    for (std::string_view dep : layer.may_include) {
      EXPECT_NE(FindLayer(dep), nullptr) << layer.name << " -> " << dep;
      EXPECT_NE(dep, layer.name) << layer.name;
    }
  }
  // The tentpole constraint: engine/ml/storage must not see the serving top.
  for (std::string_view low : {"engine", "ml", "storage"}) {
    const LayerSpec* spec = FindLayer(low);
    ASSERT_NE(spec, nullptr);
    for (std::string_view dep : spec->may_include) {
      EXPECT_NE(dep, "serving") << low;
      EXPECT_NE(dep, "e2e") << low;
      EXPECT_NE(dep, "pilotscope") << low;
    }
  }
  EXPECT_EQ(FindLayer("no-such-layer"), nullptr);
}

// --- baseline (waiver budget) ----------------------------------------------

Finding WaivedFinding(std::string_view rule, int line) {
  Finding f;
  f.rule_id = rule;
  f.file = "a.cc";
  f.line = line;
  f.message = "fixture";
  f.waived = true;
  return f;
}

TEST(LintBaseline, MatchingCountsPass) {
  std::vector<Finding> findings = {WaivedFinding("rand", 1),
                                   WaivedFinding("unordered-iter", 2)};
  std::string baseline = RenderBaseline(findings);
  EXPECT_TRUE(CheckBaseline(findings, baseline).empty());
}

TEST(LintBaseline, GrowthFails) {
  std::vector<Finding> findings = {WaivedFinding("rand", 1)};
  std::string baseline = RenderBaseline(findings);
  findings.push_back(WaivedFinding("rand", 2));
  std::vector<std::string> problems = CheckBaseline(findings, baseline);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("exceeded"), std::string::npos);
}

TEST(LintBaseline, ShrinkWithoutRegenerationFails) {
  std::vector<Finding> findings = {WaivedFinding("rand", 1),
                                   WaivedFinding("rand", 2)};
  std::string baseline = RenderBaseline(findings);
  findings.pop_back();
  std::vector<std::string> problems = CheckBaseline(findings, baseline);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("stale"), std::string::npos);
  // Dropping the rule's waivers entirely is also a shrink.
  problems = CheckBaseline({}, baseline);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("stale"), std::string::npos);
}

TEST(LintBaseline, UnreadableBaselineFails) {
  EXPECT_FALSE(CheckBaseline({}, "not json at all").empty());
}

// --- machine-readable emission ---------------------------------------------

TEST(LintFormat, JsonCarriesFindingsAndTally) {
  std::vector<Finding> findings = LintText("dir/f.cc", "int b = rand();\n");
  std::string json = RenderJson(findings);
  EXPECT_NE(json.find("\"tool\": \"lqo-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"rand\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"dir/f.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tally\""), std::string::npos);
}

TEST(LintFormat, SarifCarriesRuleMetadataAndSuppressions) {
  std::vector<Finding> findings =
      LintText("a.cc", "int b = rand();  // lint: rand-ok(fixture)\n");
  std::string sarif = RenderSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"suppressions\""), std::string::npos);
  EXPECT_NE(sarif.find("\"kind\": \"inSource\""), std::string::npos);
  // Every catalog rule is published in the driver metadata.
  for (const Rule& rule : Rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
}

// --- determinism across thread counts --------------------------------------

TEST(LintWholeProgram, ByteIdenticalAcrossThreadCounts) {
  // A fixture set wide enough that phase 1 actually fans out.
  std::vector<FileInput> files;
  for (int i = 0; i < 12; ++i) {
    std::string tag = std::to_string(i);
    files.push_back(
        {"src/engine/f" + tag + ".cc",
         "#include \"serving/x.h\"\nint v" + tag + " = rand();\n", ""});
  }
  files.push_back({"counter.h",
                   "class C" + std::string("0") +
                       " {\n void B() { t_ += 1; }\n std::mutex m_;  "
                       "// guards: t_\n long t_ = 0;\n};\n",
                   ""});
  std::string reference;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    std::string rendered = RenderJson(AnalyzeFiles(files));
    if (reference.empty()) {
      reference = rendered;
    } else {
      EXPECT_EQ(rendered, reference) << "LQO_THREADS=" << threads;
    }
  }
  ThreadPool::SetGlobalThreads(
      ThreadPool::ParseThreadCount(std::getenv("LQO_THREADS")));
  // Sanity: the fixture exercises per-file and both cross-TU rule families.
  std::vector<Finding> findings = AnalyzeFiles(files);
  EXPECT_EQ(Count(findings, "rand"), 12);
  EXPECT_EQ(Count(findings, "layering"), 12);
  EXPECT_EQ(Count(findings, "lock-discipline"), 1);
}

}  // namespace
}  // namespace lqo::lint
