// Failure-injection tests: API contract violations must fail fast and
// loudly (LQO_CHECK aborts), never corrupt state silently. gtest death
// tests pin the contracts down.

#include <gtest/gtest.h>

#include "benchlib/lab.h"
#include "common/logging.h"
#include "engine/plan.h"
#include "ml/gbdt.h"
#include "optimizer/table_stats.h"
#include "storage/table.h"

namespace lqo {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, CheckMacroAborts) {
  EXPECT_DEATH({ LQO_CHECK(false) << "boom"; }, "Check failed");
  EXPECT_DEATH({ LQO_CHECK_EQ(1, 2); }, "Check failed");
}

TEST(ContractsDeathTest, TableBuilderArityMismatchAborts) {
  TableBuilder builder("t");
  builder.AddInt64Column("a");
  builder.AddInt64Column("b");
  EXPECT_DEATH(builder.AppendRow({1}), "Check failed");
}

TEST(ContractsDeathTest, TableBuilderDoubleBuildAborts) {
  TableBuilder builder("t");
  builder.AddInt64Column("a");
  builder.AppendRow({1});
  builder.Build();
  EXPECT_DEATH(builder.Build(), "twice");
}

TEST(ContractsDeathTest, CategoricalCodeOutOfRangeAborts) {
  TableBuilder builder("t");
  builder.AddCategoricalColumn("c", {"x", "y"});
  EXPECT_DEATH(builder.AppendRow({5}), "out of range");
}

TEST(ContractsDeathTest, UnsortedDictionaryAborts) {
  TableBuilder builder("t");
  EXPECT_DEATH(builder.AddCategoricalColumn("c", {"zz", "aa"}), "sorted");
}

TEST(ContractsDeathTest, JoinNodeWithOverlappingSidesAborts) {
  EXPECT_DEATH(MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                            MakeScanNode(0)),
               "overlap");
}

TEST(ContractsDeathTest, StatsLookupOfUnknownTableAborts) {
  StatsCatalog stats;
  Catalog catalog;
  TableBuilder builder("known");
  builder.AddInt64Column("a");
  builder.AppendRow({1});
  LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  stats.Build(catalog);
  EXPECT_DEATH(stats.Of("unknown"), "no statistics");
  EXPECT_DEATH(stats.Of("known").ColumnStatsOf("nope"), "no stats");
}

TEST(ContractsDeathTest, UntrainedModelsAbortOnPredict) {
  GradientBoostedTrees gbdt;
  EXPECT_DEATH(gbdt.Predict({1.0}), "Check failed");
}

TEST(ContractsDeathTest, ConnectedSetRequiredForLeftDeepPlan) {
  Query q;
  q.AddTable("a");
  q.AddTable("b");  // no join edge: disconnected.
  EXPECT_DEATH(MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin),
               "connected");
}

}  // namespace
}  // namespace lqo
