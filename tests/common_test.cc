#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats_util.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/table_printer.h"

namespace lqo {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad column");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 7);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(3);
  int low = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    int64_t v = rng.Zipf(100, 1.5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
    if (v < 5) ++low;
  }
  // Under s=1.5, ranks 0..4 carry well over half the mass.
  EXPECT_GT(low, kTrials / 2);
}

TEST(RngTest, ZipfDistributionMatchesRngZipf) {
  ZipfDistribution dist(50, 1.2);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = dist.Sample(rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(6);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementAll) {
  Rng rng(7);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(StatsUtilTest, MeanAndStdDev) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsUtilTest, QuantileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 20.0);
}

TEST(StatsUtilTest, GeometricMean) {
  EXPECT_NEAR(GeometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsUtilTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(StatsUtilTest, SpearmanMonotone) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 4, 9, 16, 25};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(StrUtilTest, SplitAndStrip) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(AsciiLower("AbC"), "abc");
}

TEST(StrUtilTest, Join) {
  std::vector<std::string> v = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(v, ", "), "x, y, z");
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ","), "");
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(1234567.0, 3), "1.23e+06");
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter printer({"name", "value"});
  printer.AddRow({"alpha", "1"});
  printer.AddRow({"b", "22"});
  std::string out = printer.ToString("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
  EXPECT_EQ(printer.num_rows(), 2u);
}

}  // namespace
}  // namespace lqo
