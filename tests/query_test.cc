#include <set>

#include <gtest/gtest.h>

#include "query/predicate.h"
#include "query/query.h"
#include "query/sql_parser.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

TEST(PredicateTest, EqualsMatches) {
  Predicate p = Predicate::Equals(0, "x", 5);
  EXPECT_TRUE(p.Matches(5));
  EXPECT_FALSE(p.Matches(4));
}

TEST(PredicateTest, RangeMatchesInclusive) {
  Predicate p = Predicate::Range(0, "x", 2, 4);
  EXPECT_FALSE(p.Matches(1));
  EXPECT_TRUE(p.Matches(2));
  EXPECT_TRUE(p.Matches(3));
  EXPECT_TRUE(p.Matches(4));
  EXPECT_FALSE(p.Matches(5));
}

TEST(PredicateTest, InDeduplicatesAndSorts) {
  Predicate p = Predicate::In(0, "x", {7, 3, 7, 1});
  EXPECT_EQ(p.in_values, (std::vector<int64_t>{1, 3, 7}));
  EXPECT_TRUE(p.Matches(3));
  EXPECT_FALSE(p.Matches(5));
}

Query MakeTriangleQuery() {
  // t0 -- t1 -- t2 with an extra edge t0 -- t2 (cycle).
  Query q;
  q.AddTable("a");
  q.AddTable("b");
  q.AddTable("c");
  q.AddJoin(0, "x", 1, "x");
  q.AddJoin(1, "y", 2, "y");
  q.AddJoin(0, "z", 2, "z");
  q.AddPredicate(Predicate::Equals(1, "v", 9));
  return q;
}

TEST(QueryTest, BasicAccessors) {
  Query q = MakeTriangleQuery();
  EXPECT_EQ(q.num_tables(), 3);
  EXPECT_EQ(q.AllTables(), TableSet{0b111});
  EXPECT_EQ(q.PredicatesOf(1).size(), 1u);
  EXPECT_TRUE(q.PredicatesOf(0).empty());
  EXPECT_EQ(q.Neighbors(0), (std::vector<int>{1, 2}));
}

TEST(QueryTest, JoinsWithinSubset) {
  Query q = MakeTriangleQuery();
  EXPECT_EQ(q.JoinsWithin(0b011).size(), 1u);
  EXPECT_EQ(q.JoinsWithin(0b111).size(), 3u);
  EXPECT_TRUE(q.JoinsWithin(0b001).empty());
}

TEST(QueryTest, Connectivity) {
  Query q;
  q.AddTable("a");
  q.AddTable("b");
  q.AddTable("c");
  q.AddJoin(0, "x", 1, "x");
  EXPECT_TRUE(q.IsConnected(0b011));
  EXPECT_FALSE(q.IsConnected(0b101));
  EXPECT_FALSE(q.IsConnected(0b111));
  EXPECT_TRUE(q.IsConnected(0b001));
}

TEST(QueryTest, ToStringRendersSql) {
  Query q = MakeTriangleQuery();
  std::string s = q.ToString();
  EXPECT_NE(s.find("SELECT COUNT(*) FROM a t0, b t1, c t2"),
            std::string::npos);
  EXPECT_NE(s.find("t0.x = t1.x"), std::string::npos);
  EXPECT_NE(s.find("t1.v = 9"), std::string::npos);
}

TEST(SubqueryTest, KeyCanonicalAcrossTableOrder) {
  // Same logical subquery expressed with different table indices must yield
  // the same key.
  Query q1;
  q1.AddTable("posts");
  q1.AddTable("users");
  q1.AddJoin(0, "owner_user_id", 1, "id");
  q1.AddPredicate(Predicate::Range(1, "reputation", 0, 10));

  Query q2;
  q2.AddTable("users");
  q2.AddTable("posts");
  q2.AddJoin(1, "owner_user_id", 0, "id");
  q2.AddPredicate(Predicate::Range(0, "reputation", 0, 10));

  Subquery s1{&q1, q1.AllTables()};
  Subquery s2{&q2, q2.AllTables()};
  EXPECT_EQ(s1.Key(), s2.Key());
}

TEST(SubqueryTest, KeyDistinguishesPredicates) {
  Query q1;
  q1.AddTable("users");
  q1.AddPredicate(Predicate::Range(0, "reputation", 0, 10));
  Query q2;
  q2.AddTable("users");
  q2.AddPredicate(Predicate::Range(0, "reputation", 0, 11));
  EXPECT_NE((Subquery{&q1, 1}).Key(), (Subquery{&q2, 1}).Key());
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {
 protected:
  static DatasetOptions SmallOptions() {
    DatasetOptions options;
    options.scale = 0.1;
    return options;
  }
};

TEST_P(WorkloadTest, GeneratesConnectedQueriesWithValidPredicates) {
  Catalog catalog = *MakeDataset(GetParam(), SmallOptions());
  WorkloadOptions options;
  options.num_queries = 40;
  options.min_tables = 1;
  options.max_tables = 4;
  Workload workload = GenerateWorkload(catalog, options);
  ASSERT_EQ(workload.queries.size(), 40u);
  for (const Query& q : workload.queries) {
    EXPECT_TRUE(q.IsConnected(q.AllTables())) << q.ToString();
    EXPECT_GE(q.num_tables(), 1);
    EXPECT_LE(q.num_tables(), 4);
    for (const Predicate& p : q.predicates()) {
      const Table& t = **catalog.GetTable(
          q.tables()[static_cast<size_t>(p.table_index)].table_name);
      EXPECT_TRUE(t.HasColumn(p.column)) << p.ToString();
    }
    for (const QueryJoin& j : q.joins()) {
      EXPECT_NE(j.left_table, j.right_table);
    }
  }
}

TEST_P(WorkloadTest, Deterministic) {
  Catalog catalog = *MakeDataset(GetParam(), SmallOptions());
  WorkloadOptions options;
  options.num_queries = 10;
  Workload w1 = GenerateWorkload(catalog, options);
  Workload w2 = GenerateWorkload(catalog, options);
  for (size_t i = 0; i < w1.queries.size(); ++i) {
    EXPECT_EQ(w1.queries[i].ToString(), w2.queries[i].ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, WorkloadTest,
                         ::testing::ValuesIn(DatasetNames()));

TEST(PredicateColumnsTest, ExcludesJoinAndIdColumns) {
  DatasetOptions options;
  options.scale = 0.05;
  Catalog catalog = MakeStatsLite(options);
  auto cols = PredicateColumns(catalog, "posts");
  std::set<std::string> col_set(cols.begin(), cols.end());
  EXPECT_EQ(col_set.count("id"), 0u);
  EXPECT_EQ(col_set.count("owner_user_id"), 0u);
  EXPECT_EQ(col_set.count("score"), 1u);
}

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() {
    DatasetOptions options;
    options.scale = 0.05;
    catalog_ = MakeStatsLite(options);
  }
  Catalog catalog_;
};

TEST_F(SqlParserTest, ParsesJoinQuery) {
  auto q = ParseSql(catalog_,
                    "SELECT COUNT(*) FROM users u, posts p "
                    "WHERE u.id = p.owner_user_id AND u.reputation >= 100 "
                    "AND p.score BETWEEN 1 AND 5;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_tables(), 2);
  EXPECT_EQ(q->joins().size(), 1u);
  ASSERT_EQ(q->predicates().size(), 2u);
  EXPECT_EQ(q->predicates()[1].kind, PredicateKind::kRange);
  EXPECT_EQ(q->predicates()[1].lo, 1);
  EXPECT_EQ(q->predicates()[1].hi, 5);
}

TEST_F(SqlParserTest, ParsesInListAndStringLiteral) {
  auto q = ParseSql(catalog_,
                    "select count(*) from posts p where "
                    "p.post_type = 'ptype_1' and p.answer_count in (1, 2, 3)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates().size(), 2u);
  EXPECT_EQ(q->predicates()[0].kind, PredicateKind::kEquals);
  EXPECT_EQ(q->predicates()[0].value, 1);  // dictionary code of 'ptype_1'
  EXPECT_EQ(q->predicates()[1].in_values.size(), 3u);
}

TEST_F(SqlParserTest, NormalizesInequalities) {
  auto q = ParseSql(catalog_,
                    "SELECT COUNT(*) FROM users u WHERE u.reputation < 50");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates().size(), 1u);
  const Predicate& p = q->predicates()[0];
  EXPECT_EQ(p.kind, PredicateKind::kRange);
  EXPECT_EQ(p.hi, 49);
}

TEST_F(SqlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSql(catalog_, "SELECT * FROM users").ok());
  EXPECT_FALSE(ParseSql(catalog_, "SELECT COUNT(*) FROM nosuch").ok());
  EXPECT_FALSE(
      ParseSql(catalog_, "SELECT COUNT(*) FROM users u WHERE u.nope = 1").ok());
  EXPECT_FALSE(
      ParseSql(catalog_,
               "SELECT COUNT(*) FROM users u, posts p WHERE u.reputation = 1")
          .ok())
      << "cross product should be rejected";
  EXPECT_FALSE(ParseSql(catalog_, "").ok());
}

TEST_F(SqlParserTest, RoundTripsGeneratedQueries) {
  WorkloadOptions options;
  options.num_queries = 20;
  options.max_tables = 3;
  Workload workload = GenerateWorkload(catalog_, options);
  for (const Query& q : workload.queries) {
    auto parsed = ParseSql(catalog_, q.ToString());
    ASSERT_TRUE(parsed.ok())
        << q.ToString() << " -> " << parsed.status().ToString();
    EXPECT_EQ(parsed->num_tables(), q.num_tables());
    EXPECT_EQ(parsed->joins().size(), q.joins().size());
    EXPECT_EQ(parsed->predicates().size(), q.predicates().size());
  }
}

TEST_F(SqlParserTest, BareCountStarStaysLegacy) {
  // The literature's SELECT COUNT(*) must keep parsing to an empty select
  // list — the legacy cardinality-only query every estimator test uses.
  auto q = ParseSql(catalog_, "SELECT COUNT(*) FROM users u");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->HasOutputStage());
  EXPECT_TRUE(q->outputs().empty());
  EXPECT_FALSE(q->has_group_by());
}

TEST_F(SqlParserTest, ParsesSelectListAndGroupBy) {
  auto q = ParseSql(catalog_,
                    "SELECT p.post_type, COUNT(*), SUM(p.score), AVG(u.reputation) "
                    "FROM users u, posts p WHERE u.id = p.owner_user_id "
                    "GROUP BY p.post_type;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->outputs().size(), 4u);
  EXPECT_EQ(q->outputs()[0].kind, OutputExpr::Kind::kColumn);
  EXPECT_EQ(q->outputs()[0].table_index, 1);
  EXPECT_EQ(q->outputs()[0].column, "post_type");
  EXPECT_FALSE(q->outputs()[1].ReferencesColumn());  // COUNT(*)
  EXPECT_EQ(q->outputs()[2].func, AggFunc::kSum);
  EXPECT_EQ(q->outputs()[2].table_index, 1);
  EXPECT_EQ(q->outputs()[3].func, AggFunc::kAvg);
  EXPECT_EQ(q->outputs()[3].table_index, 0);
  EXPECT_TRUE(q->has_group_by());
  EXPECT_EQ(q->group_by_table(), 1);
  EXPECT_EQ(q->group_by_column(), "post_type");
}

TEST_F(SqlParserTest, ParsesProjectionAndCountStarGroupBy) {
  auto proj = ParseSql(catalog_,
                       "SELECT u.reputation, u.up_votes FROM users u "
                       "WHERE u.reputation >= 100");
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();
  ASSERT_EQ(proj->outputs().size(), 2u);
  EXPECT_EQ(proj->outputs()[0].kind, OutputExpr::Kind::kColumn);
  EXPECT_FALSE(proj->has_group_by());

  // GROUP BY promotes a bare COUNT(*) into an explicit per-group count.
  auto grouped = ParseSql(
      catalog_, "SELECT COUNT(*) FROM posts p GROUP BY p.post_type");
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  EXPECT_TRUE(grouped->HasOutputStage());
  ASSERT_EQ(grouped->outputs().size(), 1u);
  EXPECT_FALSE(grouped->outputs()[0].ReferencesColumn());
  EXPECT_TRUE(grouped->has_group_by());
}

TEST_F(SqlParserTest, RejectsBadSelectLists) {
  EXPECT_FALSE(
      ParseSql(catalog_, "SELECT nosuch.x FROM users u").ok());
  EXPECT_FALSE(
      ParseSql(catalog_, "SELECT u.nope FROM users u").ok());
  EXPECT_FALSE(
      ParseSql(catalog_, "SELECT MEDIAN(u.reputation) FROM users u").ok());
  EXPECT_FALSE(
      ParseSql(catalog_, "SELECT SUM(u.reputation FROM users u").ok());
  EXPECT_FALSE(ParseSql(catalog_,
                        "SELECT COUNT(*) FROM users u GROUP BY nosuch.x")
                   .ok());
}

TEST_F(SqlParserTest, RoundTripsOutputQueries) {
  WorkloadOptions options;
  options.num_queries = 30;
  options.max_tables = 3;
  options.output_stage_prob = 1.0;
  Workload workload = GenerateWorkload(catalog_, options);
  bool saw_group_by = false;
  for (const Query& q : workload.queries) {
    auto parsed = ParseSql(catalog_, q.ToString());
    ASSERT_TRUE(parsed.ok())
        << q.ToString() << " -> " << parsed.status().ToString();
    ASSERT_EQ(parsed->outputs().size(), q.outputs().size()) << q.ToString();
    for (size_t i = 0; i < q.outputs().size(); ++i) {
      EXPECT_EQ(parsed->outputs()[i].kind, q.outputs()[i].kind);
      EXPECT_EQ(parsed->outputs()[i].func, q.outputs()[i].func);
      EXPECT_EQ(parsed->outputs()[i].table_index, q.outputs()[i].table_index);
      EXPECT_EQ(parsed->outputs()[i].column, q.outputs()[i].column);
    }
    EXPECT_EQ(parsed->has_group_by(), q.has_group_by());
    if (q.has_group_by()) {
      saw_group_by = true;
      EXPECT_EQ(parsed->group_by_table(), q.group_by_table());
      EXPECT_EQ(parsed->group_by_column(), q.group_by_column());
    }
  }
  EXPECT_TRUE(saw_group_by) << "output workload never drew a GROUP BY shape";
}

TEST(WorkloadOutputTest, DefaultsDrawZeroExtraRngValues) {
  // Output-stage knobs are gated on output_stage_prob > 0: with the default
  // 0, changing the other knobs must not perturb the RNG stream, so the
  // workload is byte-identical to one generated before the knobs existed.
  DatasetOptions dopts;
  dopts.scale = 0.05;
  Catalog catalog = MakeStatsLite(dopts);
  WorkloadOptions plain;
  plain.num_queries = 25;
  WorkloadOptions knobs_changed = plain;
  knobs_changed.group_by_prob = 0.9;
  knobs_changed.max_output_items = 7;
  Workload w1 = GenerateWorkload(catalog, plain);
  Workload w2 = GenerateWorkload(catalog, knobs_changed);
  ASSERT_EQ(w1.queries.size(), w2.queries.size());
  for (size_t i = 0; i < w1.queries.size(); ++i) {
    EXPECT_EQ(w1.queries[i].ToString(), w2.queries[i].ToString());
    EXPECT_FALSE(w1.queries[i].HasOutputStage());
  }
}

TEST(WorkloadOutputTest, OutputStageShapesAreValid) {
  DatasetOptions dopts;
  dopts.scale = 0.05;
  Catalog catalog = MakeStatsLite(dopts);
  WorkloadOptions options;
  options.num_queries = 40;
  options.max_tables = 3;
  options.output_stage_prob = 1.0;
  Workload workload = GenerateWorkload(catalog, options);
  for (const Query& q : workload.queries) {
    ASSERT_TRUE(q.HasOutputStage()) << q.ToString();
    bool has_bare = false, has_agg = false;
    for (const OutputExpr& o : q.outputs()) {
      if (o.kind == OutputExpr::Kind::kColumn) {
        has_bare = true;
        // Bare columns only appear as the GROUP BY key or in pure
        // projections (the executor's validation contract).
        if (q.has_group_by()) {
          EXPECT_EQ(o.table_index, q.group_by_table()) << q.ToString();
          EXPECT_EQ(o.column, q.group_by_column()) << q.ToString();
        }
      } else {
        has_agg = true;
      }
      if (o.ReferencesColumn()) {
        const Table& t = **catalog.GetTable(
            q.tables()[static_cast<size_t>(o.table_index)].table_name);
        EXPECT_TRUE(t.HasColumn(o.column)) << q.ToString();
      }
    }
    if (has_bare && has_agg) {
      EXPECT_TRUE(q.has_group_by()) << q.ToString();
    }
  }
}

TEST(WorkloadOutputTest, ResampleConstantsPreservesOutputStage) {
  DatasetOptions dopts;
  dopts.scale = 0.05;
  Catalog catalog = MakeStatsLite(dopts);
  WorkloadOptions options;
  options.num_queries = 10;
  options.max_tables = 3;
  options.output_stage_prob = 1.0;
  Workload workload = GenerateWorkload(catalog, options);
  Rng rng(123);
  for (const Query& q : workload.queries) {
    Query r = ResampleConstants(catalog, q, rng);
    ASSERT_EQ(r.outputs().size(), q.outputs().size());
    for (size_t i = 0; i < q.outputs().size(); ++i) {
      EXPECT_EQ(r.outputs()[i].kind, q.outputs()[i].kind);
      EXPECT_EQ(r.outputs()[i].func, q.outputs()[i].func);
      EXPECT_EQ(r.outputs()[i].table_index, q.outputs()[i].table_index);
      EXPECT_EQ(r.outputs()[i].column, q.outputs()[i].column);
    }
    EXPECT_EQ(r.has_group_by(), q.has_group_by());
    if (q.has_group_by()) {
      EXPECT_EQ(r.group_by_table(), q.group_by_table());
      EXPECT_EQ(r.group_by_column(), q.group_by_column());
    }
  }
}

}  // namespace
}  // namespace lqo
