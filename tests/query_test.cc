#include <set>

#include <gtest/gtest.h>

#include "query/predicate.h"
#include "query/query.h"
#include "query/sql_parser.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

TEST(PredicateTest, EqualsMatches) {
  Predicate p = Predicate::Equals(0, "x", 5);
  EXPECT_TRUE(p.Matches(5));
  EXPECT_FALSE(p.Matches(4));
}

TEST(PredicateTest, RangeMatchesInclusive) {
  Predicate p = Predicate::Range(0, "x", 2, 4);
  EXPECT_FALSE(p.Matches(1));
  EXPECT_TRUE(p.Matches(2));
  EXPECT_TRUE(p.Matches(3));
  EXPECT_TRUE(p.Matches(4));
  EXPECT_FALSE(p.Matches(5));
}

TEST(PredicateTest, InDeduplicatesAndSorts) {
  Predicate p = Predicate::In(0, "x", {7, 3, 7, 1});
  EXPECT_EQ(p.in_values, (std::vector<int64_t>{1, 3, 7}));
  EXPECT_TRUE(p.Matches(3));
  EXPECT_FALSE(p.Matches(5));
}

Query MakeTriangleQuery() {
  // t0 -- t1 -- t2 with an extra edge t0 -- t2 (cycle).
  Query q;
  q.AddTable("a");
  q.AddTable("b");
  q.AddTable("c");
  q.AddJoin(0, "x", 1, "x");
  q.AddJoin(1, "y", 2, "y");
  q.AddJoin(0, "z", 2, "z");
  q.AddPredicate(Predicate::Equals(1, "v", 9));
  return q;
}

TEST(QueryTest, BasicAccessors) {
  Query q = MakeTriangleQuery();
  EXPECT_EQ(q.num_tables(), 3);
  EXPECT_EQ(q.AllTables(), TableSet{0b111});
  EXPECT_EQ(q.PredicatesOf(1).size(), 1u);
  EXPECT_TRUE(q.PredicatesOf(0).empty());
  EXPECT_EQ(q.Neighbors(0), (std::vector<int>{1, 2}));
}

TEST(QueryTest, JoinsWithinSubset) {
  Query q = MakeTriangleQuery();
  EXPECT_EQ(q.JoinsWithin(0b011).size(), 1u);
  EXPECT_EQ(q.JoinsWithin(0b111).size(), 3u);
  EXPECT_TRUE(q.JoinsWithin(0b001).empty());
}

TEST(QueryTest, Connectivity) {
  Query q;
  q.AddTable("a");
  q.AddTable("b");
  q.AddTable("c");
  q.AddJoin(0, "x", 1, "x");
  EXPECT_TRUE(q.IsConnected(0b011));
  EXPECT_FALSE(q.IsConnected(0b101));
  EXPECT_FALSE(q.IsConnected(0b111));
  EXPECT_TRUE(q.IsConnected(0b001));
}

TEST(QueryTest, ToStringRendersSql) {
  Query q = MakeTriangleQuery();
  std::string s = q.ToString();
  EXPECT_NE(s.find("SELECT COUNT(*) FROM a t0, b t1, c t2"),
            std::string::npos);
  EXPECT_NE(s.find("t0.x = t1.x"), std::string::npos);
  EXPECT_NE(s.find("t1.v = 9"), std::string::npos);
}

TEST(SubqueryTest, KeyCanonicalAcrossTableOrder) {
  // Same logical subquery expressed with different table indices must yield
  // the same key.
  Query q1;
  q1.AddTable("posts");
  q1.AddTable("users");
  q1.AddJoin(0, "owner_user_id", 1, "id");
  q1.AddPredicate(Predicate::Range(1, "reputation", 0, 10));

  Query q2;
  q2.AddTable("users");
  q2.AddTable("posts");
  q2.AddJoin(1, "owner_user_id", 0, "id");
  q2.AddPredicate(Predicate::Range(0, "reputation", 0, 10));

  Subquery s1{&q1, q1.AllTables()};
  Subquery s2{&q2, q2.AllTables()};
  EXPECT_EQ(s1.Key(), s2.Key());
}

TEST(SubqueryTest, KeyDistinguishesPredicates) {
  Query q1;
  q1.AddTable("users");
  q1.AddPredicate(Predicate::Range(0, "reputation", 0, 10));
  Query q2;
  q2.AddTable("users");
  q2.AddPredicate(Predicate::Range(0, "reputation", 0, 11));
  EXPECT_NE((Subquery{&q1, 1}).Key(), (Subquery{&q2, 1}).Key());
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {
 protected:
  static DatasetOptions SmallOptions() {
    DatasetOptions options;
    options.scale = 0.1;
    return options;
  }
};

TEST_P(WorkloadTest, GeneratesConnectedQueriesWithValidPredicates) {
  Catalog catalog = *MakeDataset(GetParam(), SmallOptions());
  WorkloadOptions options;
  options.num_queries = 40;
  options.min_tables = 1;
  options.max_tables = 4;
  Workload workload = GenerateWorkload(catalog, options);
  ASSERT_EQ(workload.queries.size(), 40u);
  for (const Query& q : workload.queries) {
    EXPECT_TRUE(q.IsConnected(q.AllTables())) << q.ToString();
    EXPECT_GE(q.num_tables(), 1);
    EXPECT_LE(q.num_tables(), 4);
    for (const Predicate& p : q.predicates()) {
      const Table& t = **catalog.GetTable(
          q.tables()[static_cast<size_t>(p.table_index)].table_name);
      EXPECT_TRUE(t.HasColumn(p.column)) << p.ToString();
    }
    for (const QueryJoin& j : q.joins()) {
      EXPECT_NE(j.left_table, j.right_table);
    }
  }
}

TEST_P(WorkloadTest, Deterministic) {
  Catalog catalog = *MakeDataset(GetParam(), SmallOptions());
  WorkloadOptions options;
  options.num_queries = 10;
  Workload w1 = GenerateWorkload(catalog, options);
  Workload w2 = GenerateWorkload(catalog, options);
  for (size_t i = 0; i < w1.queries.size(); ++i) {
    EXPECT_EQ(w1.queries[i].ToString(), w2.queries[i].ToString());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, WorkloadTest,
                         ::testing::ValuesIn(DatasetNames()));

TEST(PredicateColumnsTest, ExcludesJoinAndIdColumns) {
  DatasetOptions options;
  options.scale = 0.05;
  Catalog catalog = MakeStatsLite(options);
  auto cols = PredicateColumns(catalog, "posts");
  std::set<std::string> col_set(cols.begin(), cols.end());
  EXPECT_EQ(col_set.count("id"), 0u);
  EXPECT_EQ(col_set.count("owner_user_id"), 0u);
  EXPECT_EQ(col_set.count("score"), 1u);
}

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() {
    DatasetOptions options;
    options.scale = 0.05;
    catalog_ = MakeStatsLite(options);
  }
  Catalog catalog_;
};

TEST_F(SqlParserTest, ParsesJoinQuery) {
  auto q = ParseSql(catalog_,
                    "SELECT COUNT(*) FROM users u, posts p "
                    "WHERE u.id = p.owner_user_id AND u.reputation >= 100 "
                    "AND p.score BETWEEN 1 AND 5;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_tables(), 2);
  EXPECT_EQ(q->joins().size(), 1u);
  ASSERT_EQ(q->predicates().size(), 2u);
  EXPECT_EQ(q->predicates()[1].kind, PredicateKind::kRange);
  EXPECT_EQ(q->predicates()[1].lo, 1);
  EXPECT_EQ(q->predicates()[1].hi, 5);
}

TEST_F(SqlParserTest, ParsesInListAndStringLiteral) {
  auto q = ParseSql(catalog_,
                    "select count(*) from posts p where "
                    "p.post_type = 'ptype_1' and p.answer_count in (1, 2, 3)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates().size(), 2u);
  EXPECT_EQ(q->predicates()[0].kind, PredicateKind::kEquals);
  EXPECT_EQ(q->predicates()[0].value, 1);  // dictionary code of 'ptype_1'
  EXPECT_EQ(q->predicates()[1].in_values.size(), 3u);
}

TEST_F(SqlParserTest, NormalizesInequalities) {
  auto q = ParseSql(catalog_,
                    "SELECT COUNT(*) FROM users u WHERE u.reputation < 50");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates().size(), 1u);
  const Predicate& p = q->predicates()[0];
  EXPECT_EQ(p.kind, PredicateKind::kRange);
  EXPECT_EQ(p.hi, 49);
}

TEST_F(SqlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSql(catalog_, "SELECT * FROM users").ok());
  EXPECT_FALSE(ParseSql(catalog_, "SELECT COUNT(*) FROM nosuch").ok());
  EXPECT_FALSE(
      ParseSql(catalog_, "SELECT COUNT(*) FROM users u WHERE u.nope = 1").ok());
  EXPECT_FALSE(
      ParseSql(catalog_,
               "SELECT COUNT(*) FROM users u, posts p WHERE u.reputation = 1")
          .ok())
      << "cross product should be rejected";
  EXPECT_FALSE(ParseSql(catalog_, "").ok());
}

TEST_F(SqlParserTest, RoundTripsGeneratedQueries) {
  WorkloadOptions options;
  options.num_queries = 20;
  options.max_tables = 3;
  Workload workload = GenerateWorkload(catalog_, options);
  for (const Query& q : workload.queries) {
    auto parsed = ParseSql(catalog_, q.ToString());
    ASSERT_TRUE(parsed.ok())
        << q.ToString() << " -> " << parsed.status().ToString();
    EXPECT_EQ(parsed->num_tables(), q.num_tables());
    EXPECT_EQ(parsed->joins().size(), q.joins().size());
    EXPECT_EQ(parsed->predicates().size(), q.predicates().size());
  }
}

}  // namespace
}  // namespace lqo
