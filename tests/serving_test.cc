// Serving-layer contracts: query typing (same hash iff constants-only
// differences), the plan-cache generation protocol, learned invalidation
// and demotion, and thread-count invariance of the session driver.
#include <memory>

#include <gtest/gtest.h>

#include "benchlib/lab.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "query/workload.h"
#include "serving/front_end.h"
#include "serving/plan_cache.h"
#include "serving/query_type.h"
#include "serving/session_driver.h"

namespace lqo {
namespace {

Query ThreeTableQuery() {
  Query q;
  int a = q.AddTable("users");
  int b = q.AddTable("orders");
  int c = q.AddTable("items");
  q.AddJoin(a, "id", b, "user_id");
  q.AddJoin(b, "id", c, "order_id");
  q.AddPredicate(Predicate::Equals(a, "age", 30));
  q.AddPredicate(Predicate::Range(b, "total", 10, 90));
  q.AddPredicate(Predicate::In(c, "kind", {1, 2, 3}));
  return q;
}

TEST(QueryTypeTest, ConstantsDoNotChangeTheType) {
  Query base = ThreeTableQuery();

  Query rebound = ThreeTableQuery();
  Query other;
  other.AddTable("users");
  other.AddTable("orders");
  other.AddTable("items");
  other.AddJoin(0, "id", 1, "user_id");
  other.AddJoin(1, "id", 2, "order_id");
  other.AddPredicate(Predicate::Equals(0, "age", 77));        // new value
  other.AddPredicate(Predicate::Range(1, "total", -5, 1000));  // new bounds
  // New IN values AND a different list length: both are constants.
  other.AddPredicate(Predicate::In(2, "kind", {9}));

  EXPECT_EQ(QueryTypeHash(base), QueryTypeHash(rebound));
  EXPECT_EQ(QueryTypeHash(base), QueryTypeHash(other));
  EXPECT_EQ(QueryTypeKey(base), QueryTypeKey(other));
}

TEST(QueryTypeTest, StructureChangesTheType) {
  const Query base = ThreeTableQuery();
  const uint64_t base_hash = QueryTypeHash(base);

  {  // Extra predicate.
    Query q = ThreeTableQuery();
    q.AddPredicate(Predicate::Equals(1, "status", 1));
    EXPECT_NE(QueryTypeHash(q), base_hash);
  }
  {  // Same column, different predicate kind.
    Query q;
    q.AddTable("users");
    q.AddTable("orders");
    q.AddTable("items");
    q.AddJoin(0, "id", 1, "user_id");
    q.AddJoin(1, "id", 2, "order_id");
    q.AddPredicate(Predicate::Range(0, "age", 20, 40));  // was kEquals
    q.AddPredicate(Predicate::Range(1, "total", 10, 90));
    q.AddPredicate(Predicate::In(2, "kind", {1, 2, 3}));
    EXPECT_NE(QueryTypeHash(q), base_hash);
  }
  {  // Extra table.
    Query q = ThreeTableQuery();
    int d = q.AddTable("shipments");
    q.AddJoin(2, "id", d, "item_id");
    EXPECT_NE(QueryTypeHash(q), base_hash);
  }
  {  // Different join column.
    Query q;
    q.AddTable("users");
    q.AddTable("orders");
    q.AddTable("items");
    q.AddJoin(0, "id", 1, "user_id");
    q.AddJoin(1, "id", 2, "parent_id");  // was order_id
    q.AddPredicate(Predicate::Equals(0, "age", 30));
    q.AddPredicate(Predicate::Range(1, "total", 10, 90));
    q.AddPredicate(Predicate::In(2, "kind", {1, 2, 3}));
    EXPECT_NE(QueryTypeHash(q), base_hash);
  }
  {  // Same tables in a different FROM order: cached plans address tables
     // by index, so this is NOT a constants-only difference.
    Query q;
    int b = q.AddTable("orders");
    int a = q.AddTable("users");
    int c = q.AddTable("items");
    q.AddJoin(a, "id", b, "user_id");
    q.AddJoin(b, "id", c, "order_id");
    q.AddPredicate(Predicate::Equals(a, "age", 30));
    q.AddPredicate(Predicate::Range(b, "total", 10, 90));
    q.AddPredicate(Predicate::In(c, "kind", {1, 2, 3}));
    EXPECT_NE(QueryTypeHash(q), base_hash);
  }
}

TEST(QueryTypeTest, AttachmentOrderIsNeutral) {
  // Predicates and join conjuncts reordered (the executor re-derives both
  // from the query by table index, so this is semantically the same query).
  Query reordered;
  reordered.AddTable("users");
  reordered.AddTable("orders");
  reordered.AddTable("items");
  reordered.AddJoin(2, "order_id", 1, "id");  // swapped endpoints
  reordered.AddJoin(0, "id", 1, "user_id");
  reordered.AddPredicate(Predicate::In(2, "kind", {1, 2, 3}));
  reordered.AddPredicate(Predicate::Equals(0, "age", 30));
  reordered.AddPredicate(Predicate::Range(1, "total", 10, 90));

  EXPECT_EQ(QueryTypeHash(ThreeTableQuery()), QueryTypeHash(reordered));
  EXPECT_EQ(QueryTypeKey(ThreeTableQuery()), QueryTypeKey(reordered));
}

TEST(QueryTypeTest, TypeKeyMasksConstants) {
  const std::string key = QueryTypeKey(ThreeTableQuery());
  EXPECT_EQ(key.find("30"), std::string::npos);
  EXPECT_EQ(key.find("90"), std::string::npos);
  EXPECT_NE(key.find("users"), std::string::npos);
  EXPECT_NE(key.find("age=?"), std::string::npos);
  EXPECT_NE(key.find("total between ?"), std::string::npos);
  EXPECT_NE(key.find("kind in (?)"), std::string::npos);
}

TEST(QueryTypeTest, OutputShapeIsPartOfTheType) {
  const Query base = ThreeTableQuery();
  const uint64_t base_hash = QueryTypeHash(base);

  // A select list changes the type: a cached plan's rebinding must produce
  // the same output shape, not just the same row count.
  Query agg = ThreeTableQuery();
  agg.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 1, "total"));
  EXPECT_NE(QueryTypeHash(agg), base_hash);
  EXPECT_NE(QueryTypeKey(agg), QueryTypeKey(base));

  // Different aggregate function, different type.
  Query avg = ThreeTableQuery();
  avg.AddOutput(OutputExpr::Aggregate(AggFunc::kAvg, 1, "total"));
  EXPECT_NE(QueryTypeHash(avg), QueryTypeHash(agg));

  // Select-list order is the order of ExecutionResult::output_cols, so it
  // is structural too.
  Query ab = ThreeTableQuery();
  ab.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 1, "total"));
  ab.AddOutput(OutputExpr::CountStar());
  Query ba = ThreeTableQuery();
  ba.AddOutput(OutputExpr::CountStar());
  ba.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 1, "total"));
  EXPECT_NE(QueryTypeHash(ab), QueryTypeHash(ba));

  // GROUP BY key folds in as well.
  Query grouped = ThreeTableQuery();
  grouped.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 1, "total"));
  grouped.SetGroupBy(2, "kind");
  EXPECT_NE(QueryTypeHash(grouped), QueryTypeHash(agg));
  EXPECT_NE(QueryTypeKey(grouped), QueryTypeKey(agg));

  // Same output shape on both sides: still one type (constants-only
  // difference elsewhere is already covered above).
  Query same = ThreeTableQuery();
  same.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 1, "total"));
  EXPECT_EQ(QueryTypeHash(same), QueryTypeHash(agg));
  EXPECT_EQ(QueryTypeKey(same), QueryTypeKey(agg));
}

class ServingTest : public ::testing::Test {
 protected:
  ServingTest() {
    lab_ = MakeLab("stats_lite", 0.05);
    context_ = lab_->Context();
    WorkloadOptions wopts;
    wopts.num_queries = 6;
    wopts.min_tables = 2;
    wopts.max_tables = 3;
    wopts.seed = 901;
    templates_ = GenerateWorkload(lab_->catalog, wopts).queries;
  }

  PhysicalPlan PlanOf(const Query& q) { return NativePlan(context_, q); }

  std::unique_ptr<Lab> lab_;
  E2eContext context_;
  std::vector<Query> templates_;
};

TEST_F(ServingTest, ResampleConstantsPreservesTheType) {
  Rng rng(11);
  for (const Query& t : templates_) {
    for (double widen : {1.0, 0.02, 10.0}) {
      Query rebound = ResampleConstants(lab_->catalog, t, rng, widen);
      EXPECT_EQ(QueryTypeHash(t), QueryTypeHash(rebound));
      EXPECT_EQ(QueryTypeKey(t), QueryTypeKey(rebound));
    }
  }
}

TEST_F(ServingTest, BoundPlanMatchesFreshPlanResults) {
  Rng rng(12);
  const Query& t = templates_[0];
  PhysicalPlan installed = PlanOf(t);
  std::shared_ptr<const PlanNode> root(installed.root->Clone().release());

  for (int i = 0; i < 4; ++i) {
    Query rebound = ResampleConstants(lab_->catalog, t, rng, 1.0);
    PhysicalPlan bound = BindPlan(root, rebound);
    auto bound_result = lab_->executor->Execute(bound);
    auto fresh_result = lab_->executor->Execute(PlanOf(rebound));
    ASSERT_TRUE(bound_result.ok() && fresh_result.ok());
    // A COUNT(*) answer cannot depend on which (valid) plan computed it.
    EXPECT_EQ(bound_result->row_count, fresh_result->row_count);
  }
}

TEST_F(ServingTest, CacheMissInstallHitAndFirstWriterWins) {
  PlanCache cache;
  const uint64_t type = 42;
  PhysicalPlan plan = PlanOf(templates_[0]);

  PlanCacheLookup miss = cache.Lookup(type);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(cache.TryInstall(type, miss.generation, plan, 100.0));
  // Second racer with the same token loses; the first install stays.
  EXPECT_FALSE(cache.TryInstall(type, miss.generation, plan, 7.0));

  PlanCacheLookup hit = cache.Lookup(type);
  ASSERT_TRUE(hit.hit);
  EXPECT_EQ(hit.generation, miss.generation);
  EXPECT_EQ(hit.install_estimated_rows, 100.0);
  EXPECT_NE(hit.root, nullptr);

  PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.installs, 1u);
  EXPECT_EQ(stats.install_races, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.cached_plans, 1u);
}

TEST_F(ServingTest, MajorityQerrorDriftInvalidates) {
  PlanCacheOptions options;
  options.drift_window = 4;
  PlanCache cache(options);
  const uint64_t type = 7;
  PhysicalPlan plan = PlanOf(templates_[0]);
  PlanCacheLookup miss = cache.Lookup(type);
  ASSERT_TRUE(cache.TryInstall(type, miss.generation, plan, 10.0));

  // A minority outlier binding (1 of 4) must NOT evict the plan.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.Observe(type, miss.generation, 10.0, 1.0),
              PlanObserveOutcome::kKept);
  }
  EXPECT_EQ(cache.Observe(type, miss.generation, 5000.0, 1.0),
            PlanObserveOutcome::kKept);

  // A majority-drifted window must.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache.Observe(type, miss.generation, 5000.0, 1.0),
              PlanObserveOutcome::kKept);
  }
  EXPECT_EQ(cache.Observe(type, miss.generation, 5000.0, 1.0),
            PlanObserveOutcome::kInvalidated);

  PlanCacheLookup after = cache.Lookup(type);
  EXPECT_FALSE(after.hit);
  EXPECT_FALSE(after.always_optimize);
  EXPECT_EQ(after.generation, miss.generation + 1);
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

TEST_F(ServingTest, ReoptimizationChurnDemotes) {
  PlanCacheOptions options;
  options.drift_window = 2;
  options.max_reoptimizations = 1;
  PlanCache cache(options);
  const uint64_t type = 8;
  PhysicalPlan plan = PlanOf(templates_[0]);

  PlanCacheLookup l0 = cache.Lookup(type);
  ASSERT_TRUE(cache.TryInstall(type, l0.generation, plan, 10.0));
  cache.Observe(type, l0.generation, 5000.0, 1.0);
  EXPECT_EQ(cache.Observe(type, l0.generation, 5000.0, 1.0),
            PlanObserveOutcome::kInvalidated);

  PlanCacheLookup l1 = cache.Lookup(type);
  ASSERT_TRUE(cache.TryInstall(type, l1.generation, plan, 10.0));
  cache.Observe(type, l1.generation, 5000.0, 1.0);
  // Second eviction crosses max_reoptimizations: the type is sticky
  // always-optimize from here on.
  EXPECT_EQ(cache.Observe(type, l1.generation, 5000.0, 1.0),
            PlanObserveOutcome::kDemoted);

  PlanCacheLookup l2 = cache.Lookup(type);
  EXPECT_FALSE(l2.hit);
  EXPECT_TRUE(l2.always_optimize);
  // A planner that raced the demotion cannot re-cache the type.
  EXPECT_FALSE(cache.TryInstall(type, l2.generation, plan, 10.0));
  EXPECT_FALSE(cache.Lookup(type).hit);

  PlanCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.demotions, 1u);
  EXPECT_GE(stats.volatile_skips, 1u);
}

TEST_F(ServingTest, LatencyCvDemotesParameterSensitiveTypes) {
  PlanCacheOptions options;
  options.drift_window = 4;
  options.sensitivity_min_observations = 8;
  PlanCache cache(options);
  const uint64_t type = 9;
  PhysicalPlan plan = PlanOf(templates_[0]);
  PlanCacheLookup miss = cache.Lookup(type);
  // estimated_rows <= 0 disables the q-error path: this isolates the CV
  // detector.
  ASSERT_TRUE(cache.TryInstall(type, miss.generation, plan, 0.0));

  PlanObserveOutcome last = PlanObserveOutcome::kKept;
  for (int i = 0; i < 8; ++i) {
    last = cache.Observe(type, miss.generation, 10.0,
                         i == 7 ? 1000.0 : 1.0);  // spiky latency, cv ~ 2.6
  }
  EXPECT_EQ(last, PlanObserveOutcome::kDemoted);
  EXPECT_TRUE(cache.Lookup(type).always_optimize);
  EXPECT_EQ(cache.Stats().demotions, 1u);
}

TEST_F(ServingTest, StaleObserveIsBenignStaleInstallIsFatal) {
  PlanCache cache;
  const uint64_t type = 10;
  PhysicalPlan plan = PlanOf(templates_[0]);
  PlanCacheLookup before = cache.Lookup(type);
  ASSERT_TRUE(cache.TryInstall(type, before.generation, plan, 10.0));
  cache.Invalidate(type);

  // Feedback for the evicted plan: dropped, counted, never applied.
  EXPECT_EQ(cache.Observe(type, before.generation, 10.0, 1.0),
            PlanObserveOutcome::kDropped);
  EXPECT_EQ(cache.Stats().stale_feedback, 1u);

  // Installing against the evicted generation would resurrect the plan the
  // drift detector just removed: protocol violation, fatal.
  EXPECT_DEATH(cache.TryInstall(type, before.generation, plan, 10.0),
               "stale plan install");
}

TEST_F(ServingTest, FrontEndServesAndTagsTypesPerProducer) {
  NativePlanProducer native(&context_);
  PlanCache cache;
  ServingFrontEnd front_end(&cache, &native, lab_->executor.get());

  auto first = front_end.Serve(templates_[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_TRUE(first->planned);
  EXPECT_TRUE(first->installed);

  Rng rng(13);
  Query rebound = ResampleConstants(lab_->catalog, templates_[0], rng, 1.0);
  auto second = front_end.Serve(rebound);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_FALSE(second->planned);
  EXPECT_EQ(second->type, first->type);

  // Another producer family sharing the cache must not collide on types.
  struct Renamed : public PlanProducer {
    explicit Renamed(const E2eContext* context) : inner(context) {}
    StatusOr<PhysicalPlan> Plan(const Query& query) override {
      return inner.Plan(query);
    }
    std::string Name() const override { return "renamed"; }
    NativePlanProducer inner;
  } renamed(&context_);
  ServingFrontEnd other(&cache, &renamed, lab_->executor.get());
  EXPECT_NE(other.TypeOf(templates_[0]), front_end.TypeOf(templates_[0]));
  auto third = other.Serve(templates_[0]);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->cache_hit);

  // Baseline mode (null cache): plans every query, never caches.
  ServingFrontEnd baseline(nullptr, &native, lab_->executor.get());
  for (int i = 0; i < 2; ++i) {
    auto served = baseline.Serve(templates_[0]);
    ASSERT_TRUE(served.ok());
    EXPECT_FALSE(served->cache_hit);
    EXPECT_TRUE(served->planned);
    EXPECT_FALSE(served->installed);
  }
}

TEST_F(ServingTest, SessionDriverIsThreadCountInvariant) {
  SessionDriverOptions sopts;
  sopts.sessions = 8;
  sopts.rounds = 6;
  sopts.seed = 31;
  sopts.drift_round = 3;
  sopts.sensitive_fraction = 0.2;
  const std::vector<Query> queries =
      BuildSessionQueries(lab_->catalog, templates_, sopts);

  uint64_t fingerprints[2] = {0, 0};
  uint64_t hits[2] = {0, 0};
  int i = 0;
  for (int threads : {1, 4}) {
    ThreadPool::SetGlobalThreads(threads);
    NativePlanProducer native(&context_);
    PlanCache cache;
    ServingFrontEnd front_end(&cache, &native, lab_->executor.get());
    SessionReport report = DriveSessions(front_end, queries, sopts);
    EXPECT_EQ(report.queries, queries.size());
    EXPECT_GT(report.cache_hits, 0u);
    fingerprints[i] = report.fingerprint;
    hits[i] = report.cache_hits;
    ++i;
  }
  ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(hits[0], hits[1]);
}

}  // namespace
}  // namespace lqo
