// Property-based tests: randomized sweeps over datasets, queries and plans
// checking the library's core invariants rather than point examples.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "benchlib/lab.h"
#include "cardinality/registry.h"
#include "common/rng.h"
#include "joinorder/join_env.h"
#include "query/sql_parser.h"

namespace lqo {
namespace {

class PropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  PropertyTest() : lab_(MakeLab(GetParam(), 0.06)) {
    WorkloadOptions wopts;
    wopts.num_queries = 12;
    wopts.min_tables = 2;
    wopts.max_tables = 5;
    wopts.seed = 1301;
    workload_ = GenerateWorkload(lab_->catalog, wopts);
  }

  /// A uniformly random valid (connected, possibly bushy) plan via random
  /// env actions.
  PhysicalPlan RandomPlan(const Query& query, CardinalityProvider* cards,
                          Rng* rng) {
    JoinOrderEnv env(&query, &lab_->stats, lab_->cost_model.get(), cards);
    while (!env.Done()) {
      std::vector<JoinOrderEnv::Action> actions = env.LegalActions();
      env.Step(actions[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(actions.size()) - 1))]);
    }
    return env.ExtractPlan();
  }

  std::unique_ptr<Lab> lab_;
  Workload workload_;
};

// Invariant: every valid plan for a query returns the same COUNT(*) — join
// order, bushiness and operator choice never change results.
TEST_P(PropertyTest, AllRandomPlansAgreeOnResult) {
  Rng rng(1);
  CardinalityProvider cards(lab_->estimator.get());
  for (const Query& q : workload_.queries) {
    uint64_t expected = lab_->truth->Cardinality(q);
    for (int trial = 0; trial < 5; ++trial) {
      PhysicalPlan plan = RandomPlan(q, &cards, &rng);
      auto result = lab_->executor->Execute(plan);
      ASSERT_TRUE(result.ok()) << q.ToString();
      EXPECT_EQ(result->row_count, expected)
          << q.ToString() << "\n" << plan.ToString();
    }
  }
}

// Invariant: the DP plan's estimated cost lower-bounds every random plan's
// cost under the same cardinalities and cost model.
TEST_P(PropertyTest, DpIsOptimalAmongRandomPlans) {
  Rng rng(2);
  CardinalityProvider cards(lab_->estimator.get());
  for (const Query& q : workload_.queries) {
    double dp_cost = lab_->optimizer->Optimize(q, &cards).estimated_cost;
    for (int trial = 0; trial < 5; ++trial) {
      PhysicalPlan plan = RandomPlan(q, &cards, &rng);
      double cost = lab_->cost_model->PlanCost(&plan, &cards);
      EXPECT_GE(cost, dp_cost * (1 - 1e-9)) << q.ToString();
    }
  }
}

// Invariant: estimates are deterministic, >= 1, and bounded by the join
// domain product; they never crash on any connected sub-query.
TEST_P(PropertyTest, EstimatorSanitySweep) {
  WorkloadOptions wopts;
  wopts.num_queries = 25;
  wopts.min_tables = 1;
  wopts.max_tables = 4;
  wopts.seed = 1302;
  Workload train = GenerateWorkload(lab_->catalog, wopts);
  CeTrainingData training = BuildCeTrainingData(lab_->catalog, lab_->stats,
                                                train, lab_->truth.get());
  EstimatorSuiteOptions options;
  options.include_mlp = false;  // runtime; MLP covered in cardinality_test.
  std::vector<RegisteredEstimator> suite =
      MakeEstimatorSuite(lab_->catalog, lab_->stats, training, options);

  for (const Query& q : workload_.queries) {
    double domain_product = 1.0;
    for (const QueryTable& t : q.tables()) {
      domain_product *= static_cast<double>(
          (*lab_->catalog.GetTable(t.table_name))->num_rows());
    }
    Subquery full{&q, q.AllTables()};
    for (RegisteredEstimator& entry : suite) {
      double e1 = entry.estimator->EstimateSubquery(full);
      double e2 = entry.estimator->EstimateSubquery(full);
      EXPECT_EQ(e1, e2) << entry.estimator->Name() << " nondeterministic";
      EXPECT_GE(e1, 1.0) << entry.estimator->Name();
      EXPECT_LE(e1, domain_product * 1.001)
          << entry.estimator->Name() << " exceeded the join domain on "
          << q.ToString();
    }
  }
}

// Invariant: per-column CDFs are monotone over every column of the schema.
TEST_P(PropertyTest, HistogramCdfMonotoneEverywhere) {
  for (const std::string& name : lab_->catalog.table_names()) {
    const Table& table = **lab_->catalog.GetTable(name);
    for (const Column& col : table.columns()) {
      const ColumnStats& cs = lab_->stats.Of(name).ColumnStatsOf(col.name);
      double prev = -1.0;
      int64_t step = std::max<int64_t>(
          1, (cs.max_value - cs.min_value) / 37);
      for (int64_t v = cs.min_value; v <= cs.max_value; v += step) {
        double cdf = cs.CdfLessEq(v);
        EXPECT_GE(cdf, prev - 1e-12) << name << "." << col.name;
        prev = cdf;
      }
    }
  }
}

// Invariant: the canonical sub-query key is injective over the distinct
// connected subsets of one query.
TEST_P(PropertyTest, SubqueryKeysDistinctWithinQuery) {
  for (const Query& q : workload_.queries) {
    std::set<std::string> keys;
    for (TableSet set : ConnectedSubsets(q)) {
      EXPECT_TRUE(keys.insert(Subquery{&q, set}.Key()).second)
          << "key collision in " << q.ToString();
    }
  }
}

// Robustness: the SQL parser never crashes on garbage, and it round-trips
// every generated query on this schema.
TEST_P(PropertyTest, ParserRobustToGarbageAndRoundTrips) {
  Rng rng(3);
  const std::string kAlphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789_.,()*'<>= \t";
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
      garbage.push_back(kAlphabet[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(kAlphabet.size()) - 1))]);
    }
    // Must not crash; nearly always an error (a random string that parses
    // is fine too — we only check no aborts / UB).
    ParseSql(lab_->catalog, garbage);
  }
  for (const Query& q : workload_.queries) {
    auto parsed = ParseSql(lab_->catalog, q.ToString());
    ASSERT_TRUE(parsed.ok()) << q.ToString();
    EXPECT_EQ(lab_->truth->Cardinality(*parsed), lab_->truth->Cardinality(q));
  }
}

// Invariant: executor latency accounting is additive over node profiles
// and strictly positive.
TEST_P(PropertyTest, ExecutorTimeIsSumOfNodeProfiles) {
  CardinalityProvider cards(lab_->estimator.get());
  for (const Query& q : workload_.queries) {
    PhysicalPlan plan = lab_->optimizer->Optimize(q, &cards).plan;
    auto result = lab_->executor->Execute(plan);
    ASSERT_TRUE(result.ok());
    double sum = 0.0;
    for (const NodeProfile& node : result->node_profiles) {
      // Zero is legal for operators over empty intermediates; negative
      // work is not.
      EXPECT_GE(node.time_units, 0.0);
      sum += node.time_units;
    }
    EXPECT_GT(result->time_units, 0.0);
    EXPECT_NEAR(result->time_units, sum, sum * 1e-12);
    EXPECT_EQ(result->node_profiles.size(),
              static_cast<size_t>(2 * q.num_tables() - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, PropertyTest,
                         ::testing::ValuesIn(DatasetNames()));

}  // namespace
}  // namespace lqo
