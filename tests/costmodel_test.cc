#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/stats_util.h"
#include "costmodel/learned_cost_model.h"
#include "costmodel/plan_featurizer.h"
#include "costmodel/sample_collection.h"
#include "engine/executor.h"
#include "engine/true_cardinality.h"
#include "optimizer/baseline_estimator.h"
#include "optimizer/optimizer.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() {
    DatasetOptions options;
    options.scale = 0.08;
    catalog_ = MakeStatsLite(options);
    stats_.Build(catalog_);
    estimator_ =
        std::make_unique<BaselineCardinalityEstimator>(&catalog_, &stats_);
    cards_ = std::make_unique<CardinalityProvider>(estimator_.get());
    cost_model_ = std::make_unique<AnalyticalCostModel>(&stats_);
    optimizer_ = std::make_unique<Optimizer>(&stats_, cost_model_.get());
    executor_ = std::make_unique<Executor>(&catalog_);

    WorkloadOptions wopts;
    wopts.num_queries = 30;
    wopts.min_tables = 2;
    wopts.max_tables = 4;
    wopts.seed = 601;
    workload_ = GenerateWorkload(catalog_, wopts);
    corpus_ = CollectCostSamples(workload_, *optimizer_, cards_.get(),
                                 *executor_);
  }

  std::vector<CostSample> Samples() const {
    std::vector<CostSample> samples;
    for (const CollectedPlan& entry : corpus_) samples.push_back(entry.sample);
    return samples;
  }

  Catalog catalog_;
  StatsCatalog stats_;
  std::unique_ptr<BaselineCardinalityEstimator> estimator_;
  std::unique_ptr<CardinalityProvider> cards_;
  std::unique_ptr<AnalyticalCostModel> cost_model_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<Executor> executor_;
  Workload workload_;
  std::vector<CollectedPlan> corpus_;
};

TEST_F(CostModelTest, CorpusIsDiverseAndConsistent) {
  EXPECT_GT(corpus_.size(), workload_.queries.size());
  for (const CollectedPlan& entry : corpus_) {
    EXPECT_EQ(entry.sample.plan_features.size(), PlanFeaturizer::kDim);
    EXPECT_GT(entry.sample.time_units, 0.0);
    EXPECT_EQ(entry.sample.node_features.size(),
              entry.sample.node_times.size());
  }
}

TEST_F(CostModelTest, FeaturizerDistinguishesOperators) {
  Query& q = workload_.queries[0];
  CardinalityProvider cards(estimator_.get());
  HintSet hash_only;
  hash_only.enable_nested_loop = false;
  hash_only.enable_merge_join = false;
  HintSet nlj_only;
  nlj_only.enable_hash_join = false;
  nlj_only.enable_merge_join = false;
  PhysicalPlan hash_plan = optimizer_->Optimize(q, &cards, hash_only).plan;
  PhysicalPlan nlj_plan = optimizer_->Optimize(q, &cards, nlj_only).plan;
  EXPECT_NE(PlanFeaturizer::Featurize(hash_plan),
            PlanFeaturizer::Featurize(nlj_plan));
}

TEST_F(CostModelTest, NodeFeatureDimensions) {
  std::vector<double> f = PlanFeaturizer::NodeFeatures(
      PlanNode::Kind::kJoin, JoinAlgorithm::kHashJoin, 10, 20, 30, 2);
  EXPECT_EQ(f.size(), PlanFeaturizer::kNodeDim);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
}

// The analytical model misranks plans because it ignores skew/cache/spill;
// learned models trained on executions should correlate better with truth.
TEST_F(CostModelTest, LearnedModelsBeatAnalyticalCorrelation) {
  std::vector<CostSample> samples = Samples();
  // Split: even index train, odd test (plans of interleaved queries).
  std::vector<CostSample> train, test;
  std::vector<const PhysicalPlan*> test_plans;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i % 2 == 0) {
      train.push_back(samples[i]);
    } else {
      test.push_back(samples[i]);
      test_plans.push_back(&corpus_[i].plan);
    }
  }

  std::vector<double> truth;
  std::vector<double> analytical_pred;
  for (size_t i = 0; i < test.size(); ++i) {
    truth.push_back(std::log(test[i].time_units + 1));
    PhysicalPlan clone = test_plans[i]->Clone();
    analytical_pred.push_back(
        std::log(cost_model_->PlanCost(&clone, cards_.get()) + 1));
  }

  LearnedPlanCostModel gbdt(LearnedPlanCostModel::ModelType::kGbdt);
  gbdt.Train(train);
  std::vector<double> gbdt_pred;
  for (const PhysicalPlan* plan : test_plans) {
    gbdt_pred.push_back(std::log(gbdt.PredictTime(*plan) + 1));
  }

  double spearman_analytical = SpearmanCorrelation(analytical_pred, truth);
  double spearman_gbdt = SpearmanCorrelation(gbdt_pred, truth);
  EXPECT_GT(spearman_gbdt, 0.6);
  EXPECT_GT(spearman_gbdt, spearman_analytical - 0.1)
      << "learned=" << spearman_gbdt << " analytical=" << spearman_analytical;
}

TEST_F(CostModelTest, CalibratedModelFitsLatencyScale) {
  std::vector<CostSample> samples = Samples();
  CalibratedCostModel calibrated;
  calibrated.Train(samples);
  ASSERT_TRUE(calibrated.trained());
  // Predictions should be on the right order of magnitude.
  std::vector<double> ratios;
  for (const CollectedPlan& entry : corpus_) {
    double predicted = calibrated.PredictTime(entry.plan);
    if (predicted <= 0) continue;
    ratios.push_back(predicted / entry.sample.time_units);
  }
  ASSERT_FALSE(ratios.empty());
  double median_ratio = Quantile(ratios, 0.5);
  EXPECT_GT(median_ratio, 0.2);
  EXPECT_LT(median_ratio, 5.0);
}

TEST_F(CostModelTest, ZeroShotModelPredictsAndTransfers) {
  std::vector<CostSample> samples = Samples();
  ZeroShotCostModel zero_shot;
  zero_shot.Train(samples);

  // In-schema sanity: rank correlation with truth.
  std::vector<double> pred, truth;
  for (const CollectedPlan& entry : corpus_) {
    pred.push_back(std::log(zero_shot.PredictTime(entry.plan, stats_) + 1));
    truth.push_back(std::log(entry.sample.time_units + 1));
  }
  EXPECT_GT(SpearmanCorrelation(pred, truth), 0.7);

  // Transfer: evaluate on a *different* schema without retraining.
  DatasetOptions options;
  options.scale = 0.05;
  Catalog other = MakeTpchLite(options);
  StatsCatalog other_stats;
  other_stats.Build(other);
  BaselineCardinalityEstimator other_estimator(&other, &other_stats);
  CardinalityProvider other_cards(&other_estimator);
  AnalyticalCostModel other_model(&other_stats);
  Optimizer other_optimizer(&other_stats, &other_model);
  Executor other_executor(&other);
  WorkloadOptions wopts;
  wopts.num_queries = 10;
  wopts.min_tables = 2;
  wopts.max_tables = 3;
  Workload other_workload = GenerateWorkload(other, wopts);
  std::vector<CollectedPlan> other_corpus = CollectCostSamples(
      other_workload, other_optimizer, &other_cards, other_executor);
  std::vector<double> t_pred, t_truth;
  for (const CollectedPlan& entry : other_corpus) {
    t_pred.push_back(
        std::log(zero_shot.PredictTime(entry.plan, other_stats) + 1));
    t_truth.push_back(std::log(entry.sample.time_units + 1));
  }
  EXPECT_GT(SpearmanCorrelation(t_pred, t_truth), 0.5)
      << "zero-shot transfer failed";
}

TEST_F(CostModelTest, MlpCostModelTrains) {
  std::vector<CostSample> samples = Samples();
  LearnedPlanCostModel mlp(LearnedPlanCostModel::ModelType::kMlp);
  mlp.Train(samples);
  std::vector<double> pred, truth;
  for (const CollectedPlan& entry : corpus_) {
    pred.push_back(std::log(mlp.PredictTime(entry.plan) + 1));
    truth.push_back(std::log(entry.sample.time_units + 1));
  }
  EXPECT_GT(SpearmanCorrelation(pred, truth), 0.6);
}

}  // namespace
}  // namespace lqo
