#include <memory>

#include <gtest/gtest.h>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "e2e/bao.h"
#include "regression/eraser.h"

namespace lqo {
namespace {

/// A deliberately harmful "learned" optimizer: always picks the plan the
/// native optimizer would pick under nonsense cardinalities. Eraser must
/// neutralize it.
class AdversarialOptimizer : public LearnedQueryOptimizer {
 public:
  explicit AdversarialOptimizer(const E2eContext& context)
      : context_(context) {}

  PhysicalPlan ChoosePlan(const Query& query) override {
    CardinalityProvider cards(context_.estimator);
    cards.SetScale(10000.0, 2);
    HintSet merge_only;
    merge_only.enable_hash_join = false;
    merge_only.enable_nested_loop = false;
    PhysicalPlan plan =
        context_.optimizer->Optimize(query, &cards, merge_only).plan;
    AnnotateWithBaseline(context_, &plan);
    return plan;
  }
  void Observe(const Query&, const PhysicalPlan&, double) override {}
  void Retrain() override {}
  std::string Name() const override { return "adversarial"; }
  bool trained() const override { return true; }

 private:
  E2eContext context_;
};

class EraserTest : public ::testing::Test {
 protected:
  EraserTest() {
    lab_ = MakeLab("stats_lite", 0.08);
    WorkloadOptions wopts;
    wopts.num_queries = 30;
    wopts.min_tables = 2;
    wopts.max_tables = 4;
    wopts.seed = 901;
    train_ = GenerateWorkload(lab_->catalog, wopts);
    wopts.seed = 902;
    wopts.num_queries = 12;
    test_ = GenerateWorkload(lab_->catalog, wopts);
  }

  std::unique_ptr<Lab> lab_;
  Workload train_, test_;
};

TEST_F(EraserTest, UntrainedGuardPassesThrough) {
  AdversarialOptimizer inner(lab_->Context());
  EraserGuard guard(lab_->Context(), &inner);
  const Query& q = test_.queries[0];
  EXPECT_EQ(guard.ChoosePlan(q).Signature(),
            inner.ChoosePlan(q).Signature());
}

TEST_F(EraserTest, TrainingCandidatesIncludeNative) {
  AdversarialOptimizer inner(lab_->Context());
  EraserGuard guard(lab_->Context(), &inner);
  const Query& q = test_.queries[0];
  auto candidates = guard.TrainingCandidates(q);
  ASSERT_GE(candidates.size(), 1u);
  bool has_native = false;
  std::string native_signature = NativePlan(lab_->Context(), q).Signature();
  for (const PhysicalPlan& plan : candidates) {
    if (plan.Signature() == native_signature) has_native = true;
  }
  EXPECT_TRUE(has_native);
}

TEST_F(EraserTest, GuardEliminatesAdversarialRegressions) {
  AdversarialOptimizer inner(lab_->Context());

  // Raw adversarial optimizer regresses badly.
  E2eEvalResult raw = EvaluateLearnedOptimizer(&inner, lab_->Context(),
                                               test_, *lab_->executor);

  EraserGuard guard(lab_->Context(), &inner);
  TrainLearnedOptimizer(&guard, train_, *lab_->executor);
  ASSERT_TRUE(guard.trained());
  E2eEvalResult guarded = EvaluateLearnedOptimizer(&guard, lab_->Context(),
                                                   test_, *lab_->executor);

  EXPECT_LT(guarded.total_learned, raw.total_learned)
      << "guard should reduce total time of a harmful optimizer";
  EXPECT_LE(guarded.total_learned, guarded.total_native * 1.15)
      << "guarded optimizer should be near-native";
  EXPECT_GT(guard.fallbacks(), 0);
}

TEST_F(EraserTest, GuardKeepsGoodOptimizerBenefits) {
  BaoOptimizer bao(lab_->Context());
  EraserGuard guard(lab_->Context(), &bao);
  TrainLearnedOptimizer(&guard, train_, *lab_->executor);
  E2eEvalResult guarded = EvaluateLearnedOptimizer(&guard, lab_->Context(),
                                                   test_, *lab_->executor);
  // With a sane inner optimizer the guard must not destroy performance.
  EXPECT_LE(guarded.total_learned, guarded.total_native * 1.2);
}

TEST_F(EraserTest, WithinSeenRangesDetectsOutliers) {
  AdversarialOptimizer inner(lab_->Context());
  EraserGuard guard(lab_->Context(), &inner);
  TrainLearnedOptimizer(&guard, train_, *lab_->executor);
  ASSERT_TRUE(guard.trained());

  // A feature vector taken from a real plan is inside the seen ranges.
  PhysicalPlan plan = NativePlan(lab_->Context(), test_.queries[0]);
  AnnotateWithBaseline(lab_->Context(), &plan);
  std::vector<double> features = PlanFeaturizer::Featurize(plan);
  // Massively out-of-range features must be flagged.
  std::vector<double> outlier = features;
  outlier[6] = 1e9;
  EXPECT_FALSE(guard.WithinSeenRanges(outlier));
}

}  // namespace
}  // namespace lqo
