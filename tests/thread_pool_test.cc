// ThreadPool unit tests plus the serial == parallel determinism contract
// for every parallelized site: DP join enumeration, estimator evaluation,
// the e2e harness and the lab sweep (forest/GBDT live in ml_test.cc).

#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>

#include <gtest/gtest.h>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "cardinality/bayes_net_model.h"
#include "cardinality/evaluation.h"
#include "cardinality/query_driven.h"
#include "cardinality/spn_model.h"
#include "cardinality/training_data.h"
#include "common/rng.h"
#include "e2e/bao.h"
#include "e2e/hyperqo.h"
#include "e2e/lero.h"
#include "engine/explain.h"
#include "ml/chow_liu.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

// Restores the global pool to its default size after each test so thread
// sweeps cannot leak into other suites.
class ThreadPoolTest : public ::testing::Test {
 protected:
  ~ThreadPoolTest() override {
    ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  }
};

TEST_F(ThreadPoolTest, ParseThreadCountHonorsOverrideAndFallsBack) {
  int fallback = ThreadPool::ParseThreadCount(nullptr);
  EXPECT_GE(fallback, 1);
  EXPECT_EQ(ThreadPool::ParseThreadCount("4"), 4);
  EXPECT_EQ(ThreadPool::ParseThreadCount("1"), 1);
  EXPECT_EQ(ThreadPool::ParseThreadCount(""), fallback);
  EXPECT_EQ(ThreadPool::ParseThreadCount("abc"), fallback);
  EXPECT_EQ(ThreadPool::ParseThreadCount("0"), fallback);
  EXPECT_EQ(ThreadPool::ParseThreadCount("-3"), fallback);
  EXPECT_EQ(ThreadPool::ParseThreadCount("12abc"), fallback);
  EXPECT_EQ(ThreadPool::ParseThreadCount("100000"), 256);  // clamped.
}

TEST_F(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v = 0;
    ParallelFor(visits.size(), [&](size_t i) { ++visits[i]; }, &pool);
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST_F(ThreadPoolTest, ParallelMapKeepsIndexOrder) {
  ThreadPool pool(4);
  std::vector<int> out =
      ParallelMap(100, [](size_t i) { return static_cast<int>(i * i); },
                  &pool);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST_F(ThreadPoolTest, ExceptionPropagatesFromWorkerTask) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(
          64,
          [](size_t i) {
            if (i == 13) throw std::runtime_error("boom at 13");
          },
          &pool),
      std::runtime_error);
  // The pool survives a throwing batch and keeps executing.
  std::atomic<int> count{0};
  ParallelFor(32, [&](size_t) { ++count; }, &pool);
  EXPECT_EQ(count.load(), 32);
}

TEST_F(ThreadPoolTest, ExceptionAlsoPropagatesInSerialMode) {
  ThreadPool pool(1);
  EXPECT_THROW(ParallelFor(
                   4,
                   [](size_t i) {
                     if (i == 2) throw std::logic_error("serial boom");
                   },
                   &pool),
               std::logic_error);
}

TEST_F(ThreadPoolTest, NestedParallelForIsSafeAndCorrect) {
  ThreadPool pool(4);
  std::vector<long> sums(16, 0);
  ParallelFor(
      sums.size(),
      [&](size_t outer) {
        // Inner loop runs inline on whichever thread owns `outer`; it must
        // neither deadlock nor skip work.
        std::vector<long> partial(100);
        ParallelFor(partial.size(), [&](size_t inner) {
          partial[inner] = static_cast<long>(outer * inner);
        }, &pool);
        sums[outer] = std::accumulate(partial.begin(), partial.end(), 0L);
      },
      &pool);
  for (size_t outer = 0; outer < sums.size(); ++outer) {
    EXPECT_EQ(sums[outer], static_cast<long>(outer) * 4950);
  }
}

TEST_F(ThreadPoolTest, OneThreadPoolRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  ParallelFor(seen.size(), [&](size_t i) {
    seen[i] = std::this_thread::get_id();
  }, &pool);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST_F(ThreadPoolTest, DerivedSeedStreamsMatchAcrossThreadCounts) {
  // The per-task RNG pattern used by every stochastic parallel site.
  auto draw = [](ThreadPool* pool) {
    return ParallelMap(64, [](size_t i) {
      Rng rng(DeriveSeed(99, i));
      return rng.UniformDouble(0.0, 1.0) + rng.Gaussian(0.0, 1.0);
    }, pool);
  };
  ThreadPool serial(1), parallel(4);
  EXPECT_EQ(draw(&serial), draw(&parallel));
}

// ---------------------------------------------------------------------------
// Site determinism: serial pool vs 4-thread pool must agree bit for bit.
// ---------------------------------------------------------------------------

struct SiteFixture {
  std::unique_ptr<Lab> lab;
  Workload workload;

  SiteFixture() {
    lab = MakeLab("stats_lite", 0.03);
    WorkloadOptions wopts;
    wopts.num_queries = 12;
    wopts.min_tables = 2;
    wopts.max_tables = 5;
    wopts.seed = 321;
    workload = GenerateWorkload(lab->catalog, wopts);
  }
};

TEST_F(ThreadPoolTest, DpJoinEnumerationIsThreadCountInvariant) {
  SiteFixture f;
  auto plan_all = [&] {
    std::vector<std::string> rendered;
    std::vector<double> costs;
    std::vector<uint64_t> combos;
    for (const Query& q : f.workload.queries) {
      CardinalityProvider cards(f.lab->estimator.get());
      PlannerResult planned = f.lab->optimizer->Optimize(q, &cards);
      rendered.push_back(planned.plan.Signature());
      costs.push_back(planned.estimated_cost);
      combos.push_back(planned.combinations_evaluated);
    }
    return std::make_tuple(rendered, costs, combos);
  };
  ThreadPool::SetGlobalThreads(1);
  auto serial = plan_all();
  ThreadPool::SetGlobalThreads(4);
  auto parallel = plan_all();
  EXPECT_EQ(std::get<0>(serial), std::get<0>(parallel));
  EXPECT_EQ(std::get<1>(serial), std::get<1>(parallel));
  EXPECT_EQ(std::get<2>(serial), std::get<2>(parallel));
}

TEST_F(ThreadPoolTest, EstimatorEvaluationIsThreadCountInvariant) {
  SiteFixture f;
  CeTrainingData data = BuildCeTrainingData(f.lab->catalog, f.lab->stats,
                                            f.workload, f.lab->truth.get());
  ASSERT_FALSE(data.labeled.empty());
  ThreadPool::SetGlobalThreads(1);
  std::vector<double> serial =
      EstimatorQErrors(f.lab->estimator.get(), data.labeled);
  ThreadPool::SetGlobalThreads(4);
  std::vector<double> parallel =
      EstimatorQErrors(f.lab->estimator.get(), data.labeled);
  EXPECT_EQ(serial, parallel);
}

TEST_F(ThreadPoolTest, LabSweepIsThreadCountInvariant) {
  SiteFixture f;
  ThreadPool::SetGlobalThreads(1);
  std::vector<SweepResult> serial = SweepWorkload(*f.lab, f.workload);
  ThreadPool::SetGlobalThreads(4);
  std::vector<SweepResult> parallel = SweepWorkload(*f.lab, f.workload);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].estimated_cost, parallel[i].estimated_cost);
    EXPECT_EQ(serial[i].time_units, parallel[i].time_units);
    EXPECT_EQ(serial[i].row_count, parallel[i].row_count);
  }
}

// Minimal deterministic learned optimizer: native plan plus two hint-set
// candidates. Exercises the harness's candidate fan-out and per-query
// evaluation fan-out without training noise.
class HintProbeOptimizer : public LearnedQueryOptimizer {
 public:
  explicit HintProbeOptimizer(const E2eContext& context)
      : context_(context) {}

  PhysicalPlan ChoosePlan(const Query& query) override {
    return NativePlan(context_, query);
  }

  std::vector<PhysicalPlan> TrainingCandidates(const Query& query) override {
    std::vector<PhysicalPlan> plans;
    plans.push_back(ChoosePlan(query));
    for (bool hash_only : {true, false}) {
      HintSet hints;
      hints.enable_hash_join = hash_only;
      hints.enable_merge_join = !hash_only;
      hints.enable_nested_loop = false;
      CardinalityProvider cards(context_.estimator);
      plans.push_back(
          context_.optimizer->Optimize(query, &cards, hints).plan);
    }
    return plans;
  }

  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override {
    (void)query;
    (void)plan;
    observed_.push_back(time_units);
  }

  void Retrain() override { ++retrains_; }
  std::string Name() const override { return "hint_probe"; }
  bool trained() const override { return retrains_ > 0; }

  const std::vector<double>& observed() const { return observed_; }

 private:
  E2eContext context_;
  std::vector<double> observed_;
  int retrains_ = 0;
};

TEST_F(ThreadPoolTest, E2eHarnessIsThreadCountInvariant) {
  SiteFixture f;
  auto run = [&] {
    HintProbeOptimizer opt(f.lab->Context());
    double train_time =
        TrainLearnedOptimizer(&opt, f.workload, *f.lab->executor);
    E2eEvalResult eval = EvaluateLearnedOptimizer(&opt, f.lab->Context(),
                                                  f.workload,
                                                  *f.lab->executor);
    return std::make_tuple(train_time, opt.observed(), eval.native_times,
                           eval.learned_times, eval.wins, eval.losses,
                           eval.worst_regression_ratio);
  };
  ThreadPool::SetGlobalThreads(1);
  auto serial = run();
  ThreadPool::SetGlobalThreads(4);
  auto parallel = run();
  EXPECT_EQ(serial, parallel);
}

TEST_F(ThreadPoolTest, CardinalityProviderCountsHitsAndMisses) {
  SiteFixture f;
  CardinalityProvider cards(f.lab->estimator.get());
  const Query& q = f.workload.queries[0];
  Subquery all{&q, q.AllTables()};
  EXPECT_EQ(cards.Stats().hits, 0u);
  EXPECT_EQ(cards.Stats().misses, 0u);
  double first = cards.Cardinality(all);
  EXPECT_EQ(cards.Stats().misses, 1u);
  double second = cards.Cardinality(all);
  EXPECT_EQ(cards.Stats().hits, 1u);
  EXPECT_EQ(first, second);

  // DP planning over the cache: every connected subset probed once, hit on
  // every re-probe across candidate splits.
  CardinalityProvider dp_cards(f.lab->estimator.get());
  f.lab->optimizer->Optimize(q, &dp_cards);
  EXPECT_GT(dp_cards.Stats().misses, 0u);
}

// ---------------------------------------------------------------------------
// PR 2 sites: partitioned join, model training, batched candidate costing.
// Each must be bit-for-bit identical at LQO_THREADS = 1, 2 and 8.
// ---------------------------------------------------------------------------

// Sweeps the global pool over 1/2/8 threads and requires `work()` to return
// an identical (operator==) result at every count.
template <typename Fn>
void ExpectThreadCountInvariant(Fn&& work) {
  ThreadPool::SetGlobalThreads(1);
  auto serial = work();
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    EXPECT_EQ(work(), serial) << "diverged at " << threads << " threads";
  }
}

TEST_F(ThreadPoolTest, PartitionedHashJoinIsThreadCountInvariant) {
  // 6000 + 6000 input rows clear the 8192-tuple gate, so the join takes the
  // 16-partition parallel path at every thread count.
  Catalog chain = MakeChainSchema(3, 6000);
  Executor executor(&chain);
  WorkloadOptions wopts;
  wopts.num_queries = 6;
  wopts.min_tables = 2;
  wopts.max_tables = 3;
  wopts.seed = 88;
  Workload workload = GenerateWorkload(chain, wopts);
  ExpectThreadCountInvariant([&] {
    std::vector<std::tuple<uint64_t, double, uint64_t, uint64_t, int>> out;
    for (const Query& q : workload.queries) {
      PhysicalPlan plan =
          MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin);
      auto result = executor.Execute(plan);
      LQO_CHECK(result.ok());
      for (const NodeProfile& p : result->node_profiles) {
        out.emplace_back(p.output_rows, p.time_units, p.build_collisions,
                         p.probe_collisions, p.partitions);
      }
      out.emplace_back(result->row_count, result->time_units, 0u, 0u, 0);
    }
    return out;
  });
}

TEST_F(ThreadPoolTest, SpnTrainingIsThreadCountInvariant) {
  Catalog chain = MakeChainSchema(2, 4000);
  const Table* t1 = *chain.GetTable("t1");
  Query probe;
  probe.AddTable("t1");
  probe.AddPredicate(Predicate::Range(0, "val", 2, 30));
  ExpectThreadCountInvariant([&] {
    SpnTableModel model(t1);
    return std::make_pair(model.num_nodes(), model.Selectivity(probe, 0));
  });
}

TEST_F(ThreadPoolTest, ChowLiuTreeIsThreadCountInvariant) {
  Rng rng(7);
  std::vector<std::vector<int64_t>> columns(10);
  std::vector<int64_t> domains(10, 12);
  for (auto& col : columns) {
    col.reserve(2000);
    for (int r = 0; r < 2000; ++r) col.push_back(rng.UniformInt(0, 11));
  }
  ExpectThreadCountInvariant([&] {
    ChowLiuResult tree = LearnChowLiuTree(columns, domains);
    return std::make_pair(tree.parent, tree.topological_order);
  });
}

TEST_F(ThreadPoolTest, BayesNetTrainingIsThreadCountInvariant) {
  Catalog chain = MakeChainSchema(2, 3000);
  const Table* t1 = *chain.GetTable("t1");
  Query probe;
  probe.AddTable("t1");
  probe.AddPredicate(Predicate::Range(0, "val", 1, 20));
  ExpectThreadCountInvariant([&] {
    BayesNetTableModel model(t1, /*max_bins=*/16);
    return model.Selectivity(probe, 0);
  });
}

TEST_F(ThreadPoolTest, LeroCandidateRankingIsThreadCountInvariant) {
  SiteFixture f;
  ExpectThreadCountInvariant([&] {
    LeroOptimizer lero(f.lab->Context());
    std::vector<std::string> signatures;
    std::vector<double> costs;
    for (const Query& q : f.workload.queries) {
      for (const PhysicalPlan& plan : lero.Candidates(q)) {
        signatures.push_back(plan.Signature());
        costs.push_back(plan.root->estimated_cost);
      }
    }
    return std::make_pair(signatures, costs);
  });
}

// ---------------------------------------------------------------------------
// PR 3 sites: batched model inference through the e2e candidate scorers.
// PredictBatch is morsel-parallel, so plan choice (and the number of rows
// scored) must be bit-for-bit identical at LQO_THREADS = 1, 2 and 8.
// ---------------------------------------------------------------------------

TEST_F(ThreadPoolTest, BatchedCandidateScoringIsThreadCountInvariant) {
  SiteFixture f;
  // Exploration off: every ChoosePlan must take the batched scoring path,
  // so any thread-count dependence in PredictBatch shows up as a different
  // plan signature (not as bandit noise).
  BaoOptions bao_options;
  bao_options.initial_epsilon = 0.0;
  BaoOptimizer bao(f.lab->Context(), bao_options);
  HyperQoOptimizer hyperqo(f.lab->Context());
  HarnessOptions hopts;
  hopts.training_passes = 1;
  TrainLearnedOptimizer(&bao, f.workload, *f.lab->executor, hopts);
  TrainLearnedOptimizer(&hyperqo, f.workload, *f.lab->executor, hopts);
  ASSERT_TRUE(bao.trained());
  ExpectThreadCountInvariant([&] {
    std::vector<std::string> signatures;
    uint64_t rows_before = bao.InferenceStats().rows +
                           hyperqo.InferenceStats().rows;
    for (const Query& q : f.workload.queries) {
      signatures.push_back(bao.ChoosePlan(q).Signature());
      signatures.push_back(hyperqo.ChoosePlan(q).Signature());
    }
    uint64_t rows_scored = bao.InferenceStats().rows +
                           hyperqo.InferenceStats().rows - rows_before;
    return std::make_pair(signatures, rows_scored);
  });
}

TEST_F(ThreadPoolTest, EstimateSubqueryBatchIsThreadCountInvariant) {
  SiteFixture f;
  // Batch estimation over every query's full-table subquery, through the
  // default ParallelMap path of the base estimator.
  std::vector<Subquery> subqueries;
  for (const Query& q : f.workload.queries) {
    subqueries.push_back(Subquery{&q, q.AllTables()});
  }
  ExpectThreadCountInvariant(
      [&] { return f.lab->estimator->EstimateSubqueryBatch(subqueries); });
}

// ---------------------------------------------------------------------------
// PR 5 sites: plan-feature cache and compact layouts in the retrain loop.
// The lab-wide FeatureCache is cold on the first sweep and warm afterwards,
// so the 1-thread reference runs mostly cold while the 2/8-thread runs are
// served from the cache: the sweep checks warm-vs-cold identity as well as
// thread-count invariance. Fingerprints cover plan signatures and simulated
// times only — never cache hit/miss deltas, which legitimately differ
// between the cold and warm passes.
// ---------------------------------------------------------------------------

TEST_F(ThreadPoolTest, CachedRetrainIsThreadCountInvariant) {
  SiteFixture f;
  ASSERT_NE(f.lab->feature_cache, nullptr);
  HarnessOptions hopts;
  hopts.training_passes = 2;  // second pass re-featurizes cached candidates
  ExpectThreadCountInvariant([&] {
    LeroOptimizer lero(f.lab->Context());
    HyperQoOptimizer hyperqo(f.lab->Context());
    double train_cost =
        TrainLearnedOptimizer(&lero, f.workload, *f.lab->executor, hopts) +
        TrainLearnedOptimizer(&hyperqo, f.workload, *f.lab->executor, hopts);
    std::vector<std::string> signatures;
    for (const Query& q : f.workload.queries) {
      signatures.push_back(lero.ChoosePlan(q).Signature());
      signatures.push_back(hyperqo.ChoosePlan(q).Signature());
    }
    return std::make_pair(signatures, train_cost);
  });
}

TEST_F(ThreadPoolTest, CachedEstimatorRetrainIsThreadCountInvariant) {
  SiteFixture f;
  CeTrainingData data = BuildCeTrainingData(f.lab->catalog, f.lab->stats,
                                            f.workload, f.lab->truth.get());
  // One estimator across the sweep: its training-featurization cache is
  // cold on the serial pass and warm on every retrain after it.
  QueryDrivenEstimator forest(QueryDrivenEstimator::ModelType::kForest,
                              &f.lab->catalog, &f.lab->stats);
  ExpectThreadCountInvariant([&] {
    forest.Train(data);
    std::vector<double> estimates;
    for (const Query& q : f.workload.queries) {
      estimates.push_back(forest.EstimateSubquery(Subquery{&q, q.AllTables()}));
    }
    return estimates;
  });
}

TEST_F(ThreadPoolTest, FrozenProviderServesConcurrentReadsDeterministically) {
  SiteFixture f;
  // Serial reference values, one per query.
  std::vector<double> reference;
  for (const Query& q : f.workload.queries) {
    CardinalityProvider fresh(f.lab->estimator.get());
    reference.push_back(fresh.Cardinality(Subquery{&q, q.AllTables()}));
  }

  ThreadPool::SetGlobalThreads(8);
  CardinalityProvider cards(f.lab->estimator.get());
  cards.Freeze();
  EXPECT_TRUE(cards.frozen());
  // Hammer the frozen cache: many tasks per query, all racing on the same
  // handful of keys.
  const size_t kTasks = 256;
  std::vector<double> got = ParallelMap(kTasks, [&](size_t i) {
    const Query& q = f.workload.queries[i % f.workload.queries.size()];
    return cards.Cardinality(Subquery{&q, q.AllTables()});
  });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(got[i], reference[i % reference.size()]);
  }

  CardinalityCacheStats stats = cards.Stats();
  // hits + misses always equals the number of lookups, and racing threads
  // that lose the insert count as hits, so misses == distinct keys exactly.
  EXPECT_EQ(stats.hits + stats.misses, kTasks);
  EXPECT_EQ(stats.misses, f.workload.queries.size());
  // Every hit was served under the shared (frozen) lock.
  EXPECT_EQ(stats.concurrent_hits, stats.hits);
  EXPECT_GT(stats.concurrent_hits, 0u);
}

TEST_F(ThreadPoolTest, FrozenProviderRejectsKnobMutations) {
  SiteFixture f;
  CardinalityProvider cards(f.lab->estimator.get());
  cards.SetScale(2.0, 2);  // mutable before freeze.
  cards.ClearOverrides();
  cards.Freeze();
  EXPECT_DEATH(cards.SetScale(2.0, 2), "frozen");
  EXPECT_DEATH(cards.InjectOverride("k", 5.0), "frozen");
  EXPECT_DEATH(cards.ClearOverrides(), "frozen");
}

TEST_F(ThreadPoolTest, ScaledViewMatchesDirectScaling) {
  SiteFixture f;
  CardinalityProvider base(f.lab->estimator.get());
  base.Freeze();
  const double kFactor = 10.0;
  CardinalityProvider view(&base, kFactor, /*scale_min_tables=*/2);
  for (const Query& q : f.workload.queries) {
    Subquery all{&q, q.AllTables()};
    double expected = f.lab->estimator->EstimateSubquery(all);
    if (PopCount(all.tables) >= 2) expected *= kFactor;
    EXPECT_EQ(view.Cardinality(all), std::max(expected, 1.0));
  }
}

TEST_F(ThreadPoolTest, SubqueryKeyHashIsCanonicalAcrossQueryObjects) {
  SiteFixture f;
  const Query& q = f.workload.queries[0];
  Query copy = q;  // same logical query, distinct object.
  Subquery a{&q, q.AllTables()};
  Subquery b{&copy, copy.AllTables()};
  EXPECT_EQ(a.Key(), b.Key());
  EXPECT_EQ(a.KeyHash(), b.KeyHash());

  // Distinct subsets should (overwhelmingly) hash apart.
  std::vector<uint64_t> hashes;
  for (const Query& query : f.workload.queries) {
    for (TableSet s : ConnectedSubsets(query)) {
      hashes.push_back(Subquery{&query, s}.KeyHash());
    }
  }
  std::sort(hashes.begin(), hashes.end());
  size_t distinct =
      static_cast<size_t>(std::unique(hashes.begin(), hashes.end()) -
                          hashes.begin());
  // Some subqueries are legitimately identical across generated queries;
  // just assert hashing is not degenerate.
  EXPECT_GT(distinct, hashes.size() / 2);
}

}  // namespace
}  // namespace lqo
