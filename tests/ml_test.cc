#include <cmath>
#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/chow_liu.h"
#include "ml/compact_forest.h"
#include "ml/dataset.h"
#include "ml/feature_cache.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/gmm.h"
#include "ml/inference_stats.h"
#include "ml/kmeans.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/tree.h"

namespace lqo {
namespace {

// y = 3x0 - 2x1 + 1 with small noise.
MlDataset MakeLinearData(size_t n, uint64_t seed, double noise = 0.0) {
  Rng rng(seed);
  MlDataset data;
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.UniformDouble(-2, 2);
    double x1 = rng.UniformDouble(-2, 2);
    double y = 3 * x0 - 2 * x1 + 1 + (noise > 0 ? rng.Gaussian(0, noise) : 0);
    data.Add({x0, x1}, y);
  }
  return data;
}

// Nonlinear target: y = x0^2 + sign(x1).
MlDataset MakeNonlinearData(size_t n, uint64_t seed) {
  Rng rng(seed);
  MlDataset data;
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.UniformDouble(-2, 2);
    double x1 = rng.UniformDouble(-2, 2);
    data.Add({x0, x1}, x0 * x0 + (x1 > 0 ? 1.0 : -1.0));
  }
  return data;
}

TEST(DatasetTest, TrainTestSplitPartitions) {
  MlDataset data = MakeLinearData(100, 1);
  MlDataset train, test;
  TrainTestSplit(data, 0.25, 7, &train, &test);
  EXPECT_EQ(train.size(), 75u);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.num_features(), 2u);
}

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  MlDataset data = MakeLinearData(500, 2);
  Standardizer standardizer;
  standardizer.Fit(data.rows);
  double sum = 0;
  for (const auto& row : data.rows) sum += standardizer.Transform(row)[0];
  EXPECT_NEAR(sum / 500.0, 0.0, 1e-9);
}

TEST(RidgeTest, RecoversLinearFunction) {
  MlDataset data = MakeLinearData(200, 3);
  RidgeRegression model(1e-6);
  ASSERT_TRUE(model.Fit(data.rows, data.targets).ok());
  EXPECT_NEAR(model.weights()[0], 3.0, 1e-3);
  EXPECT_NEAR(model.weights()[1], -2.0, 1e-3);
  EXPECT_NEAR(model.intercept(), 1.0, 1e-3);
  EXPECT_NEAR(model.Predict({1.0, 1.0}), 2.0, 1e-2);
}

TEST(RidgeTest, RejectsEmptyAndMismatched) {
  RidgeRegression model;
  EXPECT_FALSE(model.Fit({}, {}).ok());
  EXPECT_FALSE(model.Fit({{1.0}}, {1.0, 2.0}).ok());
}

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 9]  =>  x = [1.5, 2].
  std::vector<double> x;
  ASSERT_TRUE(CholeskySolve({{4, 2}, {2, 3}}, {10, 9}, &x));
  EXPECT_NEAR(x[0], 1.5, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(RegressionTreeTest, FitsPiecewiseConstant) {
  // y = 10 for x<0, y = -10 otherwise: one split suffices.
  MlDataset data;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    double x = rng.UniformDouble(-1, 1);
    data.Add({x}, x < 0 ? 10.0 : -10.0);
  }
  RegressionTree tree;
  TreeOptions options;
  options.max_depth = 2;
  tree.Fit(data.rows, data.targets, options);
  EXPECT_NEAR(tree.Predict({-0.5}), 10.0, 1e-9);
  EXPECT_NEAR(tree.Predict({0.5}), -10.0, 1e-9);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  MlDataset data = MakeNonlinearData(300, 5);
  RegressionTree stump, deep;
  TreeOptions shallow_options;
  shallow_options.max_depth = 1;
  TreeOptions deep_options;
  deep_options.max_depth = 8;
  stump.Fit(data.rows, data.targets, shallow_options);
  deep.Fit(data.rows, data.targets, deep_options);
  EXPECT_LE(stump.num_nodes(), 3u);
  EXPECT_GT(deep.num_nodes(), stump.num_nodes());
}

TEST(GbdtTest, BeatsConstantOnNonlinear) {
  MlDataset data = MakeNonlinearData(500, 6);
  MlDataset train, test;
  TrainTestSplit(data, 0.2, 11, &train, &test);
  GradientBoostedTrees model;
  model.Fit(train.rows, train.targets);
  std::vector<double> predictions;
  for (const auto& row : test.rows) predictions.push_back(model.Predict(row));
  EXPECT_GT(R2Score(predictions, test.targets), 0.9);
}

TEST(ForestTest, FitsAndQuantifiesUncertainty) {
  MlDataset data = MakeNonlinearData(400, 7);
  RandomForest forest;
  forest.Fit(data.rows, data.targets);
  std::vector<double> predictions;
  for (const auto& row : data.rows) predictions.push_back(forest.Predict(row));
  EXPECT_GT(R2Score(predictions, data.targets), 0.8);
  double mean, stddev;
  forest.PredictWithUncertainty({0.0, 1.0}, &mean, &stddev);
  EXPECT_GE(stddev, 0.0);
  // Far outside the training domain the ensemble should disagree more than
  // deep inside it... at minimum the call must be well-formed.
  forest.PredictWithUncertainty({100.0, -100.0}, &mean, &stddev);
  EXPECT_GE(stddev, 0.0);
}

TEST(MlpTest, LearnsLinearRegression) {
  MlDataset data = MakeLinearData(400, 8, 0.01);
  MlpOptions options;
  options.hidden_layers = {16};
  options.epochs = 200;
  Mlp mlp(options);
  mlp.Fit(data.rows, data.targets);
  std::vector<double> predictions;
  for (const auto& row : data.rows) predictions.push_back(mlp.Predict(row));
  EXPECT_GT(R2Score(predictions, data.targets), 0.95);
}

TEST(MlpTest, LearnsNonlinearRegression) {
  MlDataset data = MakeNonlinearData(600, 9);
  MlpOptions options;
  options.hidden_layers = {32, 16};
  options.epochs = 250;
  Mlp mlp(options);
  mlp.Fit(data.rows, data.targets);
  std::vector<double> predictions;
  for (const auto& row : data.rows) predictions.push_back(mlp.Predict(row));
  EXPECT_GT(R2Score(predictions, data.targets), 0.85);
}

TEST(MlpTest, LearnsLogisticClassification) {
  Rng rng(10);
  MlDataset data;
  for (int i = 0; i < 400; ++i) {
    double x0 = rng.UniformDouble(-2, 2);
    double x1 = rng.UniformDouble(-2, 2);
    data.Add({x0, x1}, x0 + x1 > 0 ? 1.0 : 0.0);
  }
  MlpOptions options;
  options.loss = MlpOptions::Loss::kLogistic;
  options.hidden_layers = {16};
  options.epochs = 150;
  Mlp mlp(options);
  mlp.Fit(data.rows, data.targets);
  int correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    double p = mlp.PredictProba(data.rows[i]);
    if ((p > 0.5) == (data.targets[i] > 0.5)) ++correct;
  }
  EXPECT_GT(correct, 360);  // > 90% train accuracy.
}

TEST(MlpTest, PairwiseRankingIsAntisymmetricAndAccurate) {
  // Items have a latent quality = 2*x0 - x1; pairs labeled by quality.
  Rng rng(11);
  std::vector<std::vector<double>> first, second;
  std::vector<double> labels;
  auto quality = [](const std::vector<double>& x) {
    return 2 * x[0] - x[1];
  };
  for (int i = 0; i < 600; ++i) {
    std::vector<double> a = {rng.UniformDouble(-1, 1), rng.UniformDouble(-1, 1)};
    std::vector<double> b = {rng.UniformDouble(-1, 1), rng.UniformDouble(-1, 1)};
    first.push_back(a);
    second.push_back(b);
    labels.push_back(quality(a) > quality(b) ? 1.0 : 0.0);
  }
  MlpOptions options;
  options.hidden_layers = {16};
  options.epochs = 120;
  Mlp mlp(options);
  mlp.FitPairwise(first, second, labels);

  int correct = 0;
  for (size_t i = 0; i < first.size(); ++i) {
    double p = mlp.CompareProba(first[i], second[i]);
    if ((p > 0.5) == (labels[i] > 0.5)) ++correct;
    // Antisymmetry: P(a>b) + P(b>a) == 1 by construction.
    EXPECT_NEAR(p + mlp.CompareProba(second[i], first[i]), 1.0, 1e-9);
  }
  EXPECT_GT(correct, 540);  // > 90%
}

TEST(KMeansTest, SeparatesObviousClusters) {
  Rng rng(12);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({rng.Gaussian(0, 0.1), rng.Gaussian(0, 0.1)});
    rows.push_back({rng.Gaussian(10, 0.1), rng.Gaussian(10, 0.1)});
  }
  KMeansOptions options;
  options.k = 2;
  KMeans kmeans(options);
  kmeans.Fit(rows);
  ASSERT_EQ(kmeans.centroids().size(), 2u);
  size_t c0 = kmeans.Assign({0.0, 0.0});
  size_t c1 = kmeans.Assign({10.0, 10.0});
  EXPECT_NE(c0, c1);
  // All near-origin points share a cluster.
  for (size_t i = 0; i < rows.size(); i += 2) {
    EXPECT_EQ(kmeans.labels()[i], c0);
  }
}

TEST(KMeansTest, HandlesFewerDistinctPointsThanK) {
  std::vector<std::vector<double>> rows = {{1, 1}, {1, 1}, {1, 1}};
  KMeansOptions options;
  options.k = 5;
  KMeans kmeans(options);
  kmeans.Fit(rows);
  EXPECT_GE(kmeans.centroids().size(), 1u);
  EXPECT_LE(kmeans.centroids().size(), 3u);
}

TEST(GmmTest, RecoversWellSeparatedComponents) {
  Rng rng(21);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.Gaussian(0, 1));
    values.push_back(rng.Gaussian(50, 2));
  }
  GmmOptions options;
  options.num_components = 2;
  GaussianMixture1D gmm(options);
  gmm.Fit(values);
  ASSERT_EQ(gmm.num_components(), 2u);
  std::vector<double> means = gmm.means();
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 0.0, 1.0);
  EXPECT_NEAR(means[1], 50.0, 1.0);
  EXPECT_NEAR(gmm.weights()[0] + gmm.weights()[1], 1.0, 1e-9);
  // CDF monotone, 0 at -inf side, 1 at +inf side.
  EXPECT_LT(gmm.Cdf(-20), 0.01);
  EXPECT_GT(gmm.Cdf(80), 0.99);
  EXPECT_NEAR(gmm.Cdf(25), 0.5, 0.05);
  // Assignment separates the clusters.
  EXPECT_NE(gmm.Assign(0.0), gmm.Assign(50.0));
}

TEST(GmmTest, DegenerateSingleValue) {
  GaussianMixture1D gmm;
  gmm.Fit({5.0, 5.0, 5.0});
  EXPECT_EQ(gmm.num_components(), 1u);
  EXPECT_NEAR(gmm.means()[0], 5.0, 1e-6);
  EXPECT_GT(gmm.Density(5.0), gmm.Density(100.0));
}

TEST(GmmTest, MoreComponentsImproveLikelihoodOnMultimodalData) {
  Rng rng(22);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(rng.Gaussian(0, 1));
    values.push_back(rng.Gaussian(30, 1));
    values.push_back(rng.Gaussian(60, 1));
  }
  GmmOptions one;
  one.num_components = 1;
  GaussianMixture1D gmm1(one);
  gmm1.Fit(values);
  GmmOptions three;
  three.num_components = 3;
  GaussianMixture1D gmm3(three);
  gmm3.Fit(values);
  EXPECT_GT(gmm3.log_likelihood(), gmm1.log_likelihood());
}

TEST(MutualInformationTest, IndependentVsDependent) {
  Rng rng(13);
  std::vector<int64_t> x, y_dep, y_ind;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    x.push_back(v);
    y_dep.push_back(v);  // fully dependent
    y_ind.push_back(rng.UniformInt(0, 3));
  }
  double mi_dep = MutualInformation(x, y_dep, 4, 4);
  double mi_ind = MutualInformation(x, y_ind, 4, 4);
  EXPECT_GT(mi_dep, 1.0);  // ~log(4) = 1.386 nats.
  EXPECT_LT(mi_ind, 0.05);
  EXPECT_GT(mi_dep, mi_ind * 10);
}

TEST(ChowLiuTest, RecoversChainStructure) {
  // v0 -> v1 -> v2: v1 = v0 with noise; v2 = v1 with noise; MI(v0,v2) is
  // lower than adjacent pairs, so the MST must be the chain.
  Rng rng(14);
  std::vector<int64_t> v0, v1, v2;
  for (int i = 0; i < 4000; ++i) {
    int64_t a = rng.UniformInt(0, 3);
    int64_t b = rng.Bernoulli(0.85) ? a : rng.UniformInt(0, 3);
    int64_t c = rng.Bernoulli(0.85) ? b : rng.UniformInt(0, 3);
    v0.push_back(a);
    v1.push_back(b);
    v2.push_back(c);
  }
  ChowLiuResult tree = LearnChowLiuTree({v0, v1, v2}, {4, 4, 4});
  EXPECT_EQ(tree.parent[0], -1);
  EXPECT_EQ(tree.parent[1], 0);
  EXPECT_EQ(tree.parent[2], 1);
  EXPECT_EQ(tree.topological_order.size(), 3u);
  EXPECT_EQ(tree.topological_order[0], 0);
}

TEST(MetricsTest, QErrorSymmetricAndClamped) {
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(QError(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);   // clamped to 1 row each.
  EXPECT_DOUBLE_EQ(QError(0, 50), 50.0);
}

TEST(MetricsTest, SummaryQuantiles) {
  std::vector<double> qerrors;
  for (int i = 1; i <= 100; ++i) qerrors.push_back(static_cast<double>(i));
  QErrorSummary s = SummarizeQErrors(qerrors);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_GT(s.geometric_mean, 1.0);
}

// Fits `model` at both thread counts and returns predictions over a grid;
// training must be bit-for-bit identical (per-task RNG streams + ordered
// reductions), not merely statistically close.
template <typename Model>
std::vector<double> FitAndPredictAtThreads(int threads, const MlDataset& data) {
  ThreadPool::SetGlobalThreads(threads);
  Model model;
  model.Fit(data.rows, data.targets);
  std::vector<double> predictions;
  for (double x0 = -2.0; x0 <= 2.0; x0 += 0.25) {
    for (double x1 = -2.0; x1 <= 2.0; x1 += 0.25) {
      predictions.push_back(model.Predict({x0, x1}));
    }
  }
  ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  return predictions;
}

TEST(ForestTest, TrainingIsDeterministicAcrossThreadCounts) {
  MlDataset data = MakeNonlinearData(600, 8);
  std::vector<double> serial = FitAndPredictAtThreads<RandomForest>(1, data);
  std::vector<double> two = FitAndPredictAtThreads<RandomForest>(2, data);
  std::vector<double> four = FitAndPredictAtThreads<RandomForest>(4, data);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, four);
}

TEST(GbdtTest, TrainingIsDeterministicAcrossThreadCounts) {
  MlDataset data = MakeNonlinearData(600, 9);
  std::vector<double> serial =
      FitAndPredictAtThreads<GradientBoostedTrees>(1, data);
  std::vector<double> four =
      FitAndPredictAtThreads<GradientBoostedTrees>(4, data);
  EXPECT_EQ(serial, four);
}

// -- Batched inference: PredictBatch must be bit-for-bit identical to the
// per-row Predict loop, at every thread count, for every model family. --

FeatureMatrix ToMatrix(const std::vector<std::vector<double>>& rows) {
  FeatureMatrix matrix(rows.empty() ? 0 : rows[0].size());
  matrix.Reserve(rows.size());
  for (const auto& row : rows) matrix.AddRow(row);
  return matrix;
}

TEST(BatchInferenceTest, TreeMatchesScalarBitForBit) {
  MlDataset data = MakeNonlinearData(500, 31);
  RegressionTree tree;
  tree.Fit(data.rows, data.targets, TreeOptions());
  FeatureMatrix matrix = ToMatrix(data.rows);
  std::vector<double> batch(matrix.rows());
  tree.PredictBatch(matrix, batch);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    EXPECT_EQ(batch[i], tree.Predict(data.rows[i])) << "row " << i;
  }
}

TEST(BatchInferenceTest, ForestMatchesScalarIncludingUncertainty) {
  MlDataset data = MakeNonlinearData(400, 32);
  RandomForest forest;
  forest.Fit(data.rows, data.targets);
  FeatureMatrix matrix = ToMatrix(data.rows);
  std::vector<double> batch(matrix.rows());
  forest.PredictBatch(matrix, batch);
  std::vector<double> means(matrix.rows()), stddevs(matrix.rows());
  forest.PredictBatchWithUncertainty(matrix, means, stddevs);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    EXPECT_EQ(batch[i], forest.Predict(data.rows[i])) << "row " << i;
    double mean = 0.0, stddev = 0.0;
    forest.PredictWithUncertainty(data.rows[i], &mean, &stddev);
    EXPECT_EQ(means[i], mean) << "row " << i;
    EXPECT_EQ(stddevs[i], stddev) << "row " << i;
  }
}

TEST(BatchInferenceTest, GbdtMatchesScalarBitForBit) {
  MlDataset data = MakeNonlinearData(500, 33);
  GradientBoostedTrees gbdt;
  gbdt.Fit(data.rows, data.targets);
  FeatureMatrix matrix = ToMatrix(data.rows);
  std::vector<double> batch(matrix.rows());
  gbdt.PredictBatch(matrix, batch);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    EXPECT_EQ(batch[i], gbdt.Predict(data.rows[i])) << "row " << i;
  }
}

TEST(BatchInferenceTest, MlpMatchesScalarBitForBit) {
  MlDataset data = MakeNonlinearData(400, 34);
  MlpOptions options;
  options.hidden_layers = {24, 12};
  options.epochs = 20;
  Mlp mlp(options);
  mlp.Fit(data.rows, data.targets);
  FeatureMatrix matrix = ToMatrix(data.rows);
  std::vector<double> batch(matrix.rows());
  mlp.PredictBatch(matrix, batch);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    EXPECT_EQ(batch[i], mlp.Predict(data.rows[i])) << "row " << i;
  }
}

TEST(BatchInferenceTest, RidgeMatchesScalarBitForBit) {
  MlDataset data = MakeLinearData(300, 35, 0.05);
  RidgeRegression model(1e-6);
  ASSERT_TRUE(model.Fit(data.rows, data.targets).ok());
  FeatureMatrix matrix = ToMatrix(data.rows);
  std::vector<double> batch(matrix.rows());
  model.PredictBatch(matrix, batch);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    EXPECT_EQ(batch[i], model.Predict(data.rows[i])) << "row " << i;
  }
}

// PredictBatch parallelizes over morsels; the outputs must not depend on
// the thread count (disjoint output slices, no cross-morsel reductions).
TEST(BatchInferenceTest, BatchIsThreadCountInvariant) {
  MlDataset data = MakeNonlinearData(1200, 36);
  RandomForest forest;
  forest.Fit(data.rows, data.targets);
  GradientBoostedTrees gbdt;
  gbdt.Fit(data.rows, data.targets);
  MlpOptions options;
  options.hidden_layers = {16};
  options.epochs = 10;
  Mlp mlp(options);
  mlp.Fit(data.rows, data.targets);
  FeatureMatrix matrix = ToMatrix(data.rows);

  auto predict_all = [&](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<double> out(3 * matrix.rows());
    std::span<double> all(out);
    forest.PredictBatch(matrix, all.subspan(0, matrix.rows()));
    gbdt.PredictBatch(matrix, all.subspan(matrix.rows(), matrix.rows()));
    mlp.PredictBatch(matrix, all.subspan(2 * matrix.rows(), matrix.rows()));
    return out;
  };
  std::vector<double> serial = predict_all(1);
  std::vector<double> two = predict_all(2);
  std::vector<double> eight = predict_all(8);
  ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(BatchInferenceTest, StatsCountRowsAndBatches) {
  MlDataset data = MakeNonlinearData(300, 37);
  GradientBoostedTrees gbdt;
  gbdt.Fit(data.rows, data.targets);
  FeatureMatrix matrix = ToMatrix(data.rows);
  std::vector<double> out(matrix.rows());
  InferenceStatsSnapshot before = gbdt.Stats();
  gbdt.PredictBatch(matrix, out);
  gbdt.PredictBatch(matrix, out);
  InferenceStatsSnapshot delta = gbdt.Stats() - before;
  EXPECT_EQ(delta.rows, 2 * matrix.rows());
  EXPECT_EQ(delta.batches, 2u);
  EXPECT_GE(delta.seconds, 0.0);
  EXPECT_GE(delta.RowsPerSec(), 0.0);
}

// -- Compact quantized layouts: ConfigureCompact(0) forces the packed
// arenas; predictions must be bit-for-bit the SoA traversal's, because
// thresholds are quantized to float at build time. --

TEST(BatchInferenceTest, CompactForestMatchesScalarBitForBit) {
  MlDataset data = MakeNonlinearData(500, 38);
  RandomForest forest;
  forest.Fit(data.rows, data.targets);
  forest.ConfigureCompact(0);  // force the compact layout
  ASSERT_TRUE(forest.compact());
  EXPECT_GT(forest.compact_bytes(), 0u);
  FeatureMatrix matrix = ToMatrix(data.rows);
  std::vector<double> batch(matrix.rows());
  forest.PredictBatch(matrix, batch);
  std::vector<double> means(matrix.rows()), stddevs(matrix.rows());
  forest.PredictBatchWithUncertainty(matrix, means, stddevs);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    EXPECT_EQ(batch[i], forest.Predict(data.rows[i])) << "row " << i;
    double mean = 0.0, stddev = 0.0;
    forest.PredictWithUncertainty(data.rows[i], &mean, &stddev);
    EXPECT_EQ(means[i], mean) << "row " << i;
    EXPECT_EQ(stddevs[i], stddev) << "row " << i;
  }
}

TEST(BatchInferenceTest, CompactGbdtMatchesScalarBitForBit) {
  MlDataset data = MakeNonlinearData(500, 39);
  GradientBoostedTrees gbdt;
  gbdt.Fit(data.rows, data.targets);
  gbdt.ConfigureCompact(0);  // force the compact layout
  ASSERT_TRUE(gbdt.compact());
  FeatureMatrix matrix = ToMatrix(data.rows);
  std::vector<double> batch(matrix.rows());
  gbdt.PredictBatch(matrix, batch);
  for (size_t i = 0; i < data.rows.size(); ++i) {
    EXPECT_EQ(batch[i], gbdt.Predict(data.rows[i])) << "row " << i;
  }
  // Flipping back to the SoA layout must not change a single bit either.
  std::vector<double> soa(matrix.rows());
  gbdt.ConfigureCompact(SIZE_MAX);
  EXPECT_FALSE(gbdt.compact());
  gbdt.PredictBatch(matrix, soa);
  EXPECT_EQ(batch, soa);
}

TEST(BatchInferenceTest, CompactLayoutIsThreadCountInvariant) {
  MlDataset data = MakeNonlinearData(1200, 40);
  RandomForest forest;
  forest.Fit(data.rows, data.targets);
  forest.ConfigureCompact(0);
  GradientBoostedTrees gbdt;
  gbdt.Fit(data.rows, data.targets);
  gbdt.ConfigureCompact(0);
  FeatureMatrix matrix = ToMatrix(data.rows);

  auto predict_all = [&](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<double> out(2 * matrix.rows());
    std::span<double> all(out);
    forest.PredictBatch(matrix, all.subspan(0, matrix.rows()));
    gbdt.PredictBatch(matrix, all.subspan(matrix.rows(), matrix.rows()));
    return out;
  };
  std::vector<double> serial = predict_all(1);
  std::vector<double> two = predict_all(2);
  std::vector<double> eight = predict_all(8);
  ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

// The compact layout narrows thresholds to float, which is only lossless
// because BuildNode snaps every chosen split threshold to a
// float-representable double before partitioning. This pins that build
// contract directly (CompactForest::Pack also CHECKs it when packing).
TEST(CompactForestTest, FitThresholdsAreFloatRepresentable) {
  MlDataset data = MakeNonlinearData(800, 41);
  RegressionTree tree;
  tree.Fit(data.rows, data.targets, TreeOptions());
  std::span<const int32_t> features = tree.node_features();
  std::span<const double> thresholds = tree.node_thresholds();
  size_t interior = 0;
  for (size_t n = 0; n < features.size(); ++n) {
    if (features[n] < 0) continue;  // leaf
    ++interior;
    EXPECT_EQ(static_cast<double>(static_cast<float>(thresholds[n])),
              thresholds[n])
        << "node " << n;
  }
  EXPECT_GT(interior, 0u);
}

TEST(CompactForestTest, CompactBytesAreSmallerThanSoa) {
  MlDataset data = MakeNonlinearData(800, 42);
  RandomForest forest;
  forest.Fit(data.rows, data.targets);
  forest.ConfigureCompact(0);
  // SoA per node: int32 feature + double threshold + double value +
  // 2x int32 children = 28 bytes. Compact: uint16 + float + int32 = 10 per
  // node, plus an 8-byte leaf value per leaf (roughly half the nodes) and
  // a root index per tree — about half the SoA footprint for leafy trees.
  size_t soa_bytes = forest.total_nodes() * 28;
  EXPECT_GT(forest.compact_bytes(), 0u);
  EXPECT_LT(forest.compact_bytes(), (soa_bytes * 3) / 5);
}

// -- Plan-feature cache: keyed rows, first-writer-wins inserts, versioned
// wholesale invalidation. --

TEST(FeatureCacheTest, MissThenHitServesIdenticalRow) {
  FeatureCache cache(3);
  std::vector<double> row = {1.5, -2.0, 0.25};
  std::vector<double> out(3, 0.0);
  EXPECT_FALSE(cache.Lookup(42, /*version=*/1, out.data()));
  cache.Insert(42, 1, row.data());
  EXPECT_TRUE(cache.Lookup(42, 1, out.data()));
  EXPECT_EQ(out, row);
  EXPECT_FALSE(cache.Lookup(43, 1, out.data()));
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.rows, 1u);
}

TEST(FeatureCacheTest, FirstWriterWins) {
  FeatureCache cache(2);
  std::vector<double> first = {1.0, 2.0};
  std::vector<double> second = {9.0, 9.0};
  std::vector<double> scratch(2, 0.0);
  EXPECT_FALSE(cache.Lookup(7, 1, scratch.data()));
  cache.Insert(7, 1, first.data());
  cache.Insert(7, 1, second.data());  // duplicate insert: ignored
  std::vector<double> out(2, 0.0);
  ASSERT_TRUE(cache.Lookup(7, 1, out.data()));
  EXPECT_EQ(out, first);
  EXPECT_EQ(cache.Stats().rows, 1u);
}

TEST(FeatureCacheTest, VersionBumpClearsWholesale) {
  FeatureCache cache(1);
  double v1 = 11.0, v2 = 22.0;
  double scratch = 0.0;
  EXPECT_FALSE(cache.Lookup(1, 1, &scratch));  // syncs the cache to v1
  cache.Insert(1, 1, &v1);
  cache.Insert(2, 1, &v2);
  EXPECT_EQ(cache.Stats().rows, 2u);
  double out = 0.0;
  // A lookup under a newer featurizer version invalidates every row.
  EXPECT_FALSE(cache.Lookup(1, 2, &out));
  EXPECT_EQ(cache.Stats().rows, 0u);
  EXPECT_GE(cache.Stats().evictions, 1u);
  cache.Insert(1, 2, &v1);
  EXPECT_TRUE(cache.Lookup(1, 2, &out));
  EXPECT_EQ(out, v1);
}

TEST(FeatureCacheTest, CapacityRotatesGenerations) {
  FeatureCache cache(1, /*max_rows=*/4);
  double value = 1.0;
  double scratch = 0.0;
  EXPECT_FALSE(cache.Lookup(0, 1, &scratch));  // syncs the cache to v1
  for (uint64_t key = 0; key < 4; ++key) cache.Insert(key, 1, &value);
  EXPECT_EQ(cache.Stats().rows, 4u);
  cache.Insert(99, 1, &value);  // fifth insert rotates, then admits
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.rows, 5u);  // 1 current + 4 rotated-out but servable
  EXPECT_EQ(stats.generation_evictions, 1u);
  // Only the initial version sync counts as a wholesale eviction; capacity
  // pressure rotates instead of clearing.
  EXPECT_EQ(stats.evictions, 1u);
  double out = 0.0;
  EXPECT_TRUE(cache.Lookup(99, 1, &out));  // current generation
  EXPECT_TRUE(cache.Lookup(0, 1, &out));   // previous generation still serves
}

TEST(FeatureCacheTest, SecondRotationDropsOldestGeneration) {
  FeatureCache cache(1, /*max_rows=*/2);
  double value = 1.0;
  double scratch = 0.0;
  EXPECT_FALSE(cache.Lookup(0, 1, &scratch));  // syncs the cache to v1
  for (uint64_t key = 0; key < 5; ++key) cache.Insert(key, 1, &value);
  // Inserting 0..4 rotates twice: {0,1} filled, rotated out by 2; {2,3}
  // filled, rotated out by 4. The oldest generation {0,1} is gone.
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.generation_evictions, 2u);
  EXPECT_EQ(stats.rows, 3u);  // current {4} + previous {2,3}
  double out = 0.0;
  EXPECT_FALSE(cache.Lookup(0, 1, &out));
  EXPECT_FALSE(cache.Lookup(1, 1, &out));
  EXPECT_TRUE(cache.Lookup(2, 1, &out));
  EXPECT_TRUE(cache.Lookup(3, 1, &out));
  EXPECT_TRUE(cache.Lookup(4, 1, &out));
}

TEST(FeatureCacheTest, WorkingSetLargerThanMaxRowsStopsThrashing) {
  // A retrain working set larger than max_rows (but within two
  // generations) must keep hitting after warmup. Under the old wholesale
  // clear, every pass over 6 keys with max_rows=4 re-missed most keys.
  FeatureCache cache(1, /*max_rows=*/4);
  double scratch = 0.0;
  EXPECT_FALSE(cache.Lookup(0, 1, &scratch));  // syncs the cache to v1
  const uint64_t kWorkingSet = 6;
  for (int pass = 0; pass < 4; ++pass) {
    for (uint64_t key = 0; key < kWorkingSet; ++key) {
      double out = 0.0;
      if (!cache.Lookup(key, 1, &out)) {
        double row = static_cast<double>(key);
        cache.Insert(key, 1, &row);
      }
    }
  }
  FeatureCacheStats stats = cache.Stats();
  // Warmup misses each key at most twice (initial + one rotation casualty);
  // steady-state passes are all hits.
  EXPECT_LE(stats.misses, 1 + 2 * kWorkingSet);
  EXPECT_GE(stats.hits, 2 * kWorkingSet);
  EXPECT_EQ(stats.evictions, 1u);  // the initial version sync only
  EXPECT_GE(stats.generation_evictions, 1u);
}

TEST(FeatureCacheTest, ConcurrentMixedLookupInsertIsConsistent) {
  FeatureCache cache(2);
  const size_t kKeys = 256;
  ThreadPool::SetGlobalThreads(8);
  // Every task lookup-or-computes its key's row twice; with first-writer-
  // wins semantics every served row must equal the key's canonical row.
  std::vector<double> errors = ParallelMap(kKeys * 2, [&](size_t i) {
    uint64_t key = i % kKeys;
    std::vector<double> want = {static_cast<double>(key),
                                static_cast<double>(key) * 0.5};
    std::vector<double> got(2, 0.0);
    if (!cache.Lookup(key, 1, got.data())) {
      cache.Insert(key, 1, want.data());
      if (!cache.Lookup(key, 1, got.data())) return 1.0;
    }
    return got == want ? 0.0 : 1.0;
  });
  ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  for (double e : errors) EXPECT_EQ(e, 0.0);
  EXPECT_EQ(cache.Stats().rows, kKeys);
}

TEST(FeatureCacheDeathTest, InsertUnderStaleVersionDies) {
  FeatureCache cache(1);
  double value = 3.0;
  double scratch = 0.0;
  EXPECT_FALSE(cache.Lookup(5, /*version=*/2, &scratch));
  cache.Insert(5, /*version=*/2, &value);
  // Inserting a row computed under an older featurizer version would poison
  // the cache with mixed-version rows; the protocol CHECK-fails instead.
  EXPECT_DEATH(cache.Insert(6, /*version=*/1, &value),
               "stale featurizer version");
}

TEST(MetricsTest, R2PerfectAndMeanBaseline) {
  std::vector<double> targets = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(R2Score(targets, targets), 1.0);
  std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(R2Score(mean_pred, targets), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2}, {2, 4}), 1.5);
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2}, {2, 4}), 2.5);
}

}  // namespace
}  // namespace lqo
