#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/true_cardinality.h"
#include "optimizer/baseline_estimator.h"
#include "optimizer/cardinality_interface.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/table_stats.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

/// Oracle estimator: returns exact cardinalities (used to isolate the
/// enumerator / cost model from estimation error).
class OracleEstimator : public CardinalityEstimatorInterface {
 public:
  explicit OracleEstimator(const Catalog* catalog) : service_(catalog) {}
  double EstimateSubquery(const Subquery& subquery) override {
    return static_cast<double>(service_.Cardinality(subquery));
  }
  std::string Name() const override { return "oracle"; }

 private:
  TrueCardinalityService service_;
};

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() {
    DatasetOptions options;
    options.scale = 0.1;
    catalog_ = MakeStatsLite(options);
    stats_.Build(catalog_);
    estimator_ = std::make_unique<BaselineCardinalityEstimator>(&catalog_,
                                                                &stats_);
    oracle_ = std::make_unique<OracleEstimator>(&catalog_);
    cost_model_ = std::make_unique<AnalyticalCostModel>(&stats_);
    optimizer_ = std::make_unique<Optimizer>(&stats_, cost_model_.get());
  }

  Workload MakeJoinWorkload(int n, int min_tables = 2, int max_tables = 5) {
    WorkloadOptions options;
    options.num_queries = n;
    options.min_tables = min_tables;
    options.max_tables = max_tables;
    options.seed = 77;
    return GenerateWorkload(catalog_, options);
  }

  Catalog catalog_;
  StatsCatalog stats_;
  std::unique_ptr<BaselineCardinalityEstimator> estimator_;
  std::unique_ptr<OracleEstimator> oracle_;
  std::unique_ptr<AnalyticalCostModel> cost_model_;
  std::unique_ptr<Optimizer> optimizer_;
};

TEST_F(OptimizerTest, StatsHistogramCdfMonotone) {
  const TableStatistics& users = stats_.Of("users");
  const ColumnStats& rep = users.ColumnStatsOf("reputation");
  double prev = 0.0;
  for (int64_t v = rep.min_value; v <= rep.max_value;
       v += std::max<int64_t>(1, (rep.max_value - rep.min_value) / 50)) {
    double cdf = rep.CdfLessEq(v);
    EXPECT_GE(cdf, prev - 1e-12);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
  EXPECT_DOUBLE_EQ(rep.CdfLessEq(rep.max_value), 1.0);
  EXPECT_DOUBLE_EQ(rep.CdfLessEq(rep.min_value - 1), 0.0);
}

TEST_F(OptimizerTest, StatsSelectivityAccurateOnSingleColumn) {
  // Histogram selectivities should be close to truth for 1-D predicates.
  const Table& users = **catalog_.GetTable("users");
  size_t col = users.ColumnIndex("reputation").value();
  const ColumnStats& cs = stats_.Of("users").ColumnStatsOf("reputation");
  int64_t lo = 100, hi = 4000;
  size_t truth = 0;
  for (size_t r = 0; r < users.num_rows(); ++r) {
    int64_t v = users.ValueAt(r, col);
    if (v >= lo && v <= hi) ++truth;
  }
  double est = cs.SelectivityRange(lo, hi) *
               static_cast<double>(users.num_rows());
  double q = std::max(est / static_cast<double>(std::max<size_t>(truth, 1)),
                      static_cast<double>(std::max<size_t>(truth, 1)) /
                          std::max(est, 1.0));
  EXPECT_LT(q, 1.6) << "est=" << est << " truth=" << truth;
}

TEST_F(OptimizerTest, SelectivityInAndEqualsClamped) {
  const ColumnStats& cs = stats_.Of("users").ColumnStatsOf("reputation");
  EXPECT_GT(cs.SelectivityEquals(cs.min_value), 0.0);
  EXPECT_LE(cs.SelectivityEquals(cs.min_value), 1.0);
  EXPECT_GT(cs.SelectivityIn({cs.min_value, cs.max_value}), 0.0);
  // Out-of-domain value gets (near) zero.
  EXPECT_LT(cs.SelectivityEquals(cs.max_value + 100), 1e-8);
}

TEST_F(OptimizerTest, BaselineSingleTableReasonable) {
  // Independence holds trivially for one predicate, so q-error vs truth
  // should be small.
  TrueCardinalityService truth(&catalog_);
  Query q;
  q.AddTable("posts");
  q.AddPredicate(Predicate::Range(0, "score", 0, 3));
  double est = estimator_->EstimateSubquery(Subquery{&q, 1});
  double actual = static_cast<double>(truth.Cardinality(q));
  EXPECT_LT(std::max(est / actual, actual / est), 1.7)
      << "est=" << est << " actual=" << actual;
}

TEST_F(OptimizerTest, BaselineJoinEstimateWithinSaneBounds) {
  Query q;
  q.AddTable("users");
  q.AddTable("posts");
  q.AddJoin(0, "id", 1, "owner_user_id");
  double est = estimator_->EstimateSubquery(Subquery{&q, 0b11});
  // PK-FK join: |posts| rows expected.
  const Table& posts = **catalog_.GetTable("posts");
  double actual = static_cast<double>(posts.num_rows());
  EXPECT_GT(est, actual / 20);
  EXPECT_LT(est, actual * 20);
}

TEST_F(OptimizerTest, ProviderOverrideAndScale) {
  Query q;
  q.AddTable("users");
  CardinalityProvider provider(estimator_.get());
  Subquery sub{&q, 1};
  double base = provider.Cardinality(sub);
  EXPECT_GT(base, 1.0);

  CardinalityProvider injected(estimator_.get());
  injected.InjectOverride(sub.Key(), 123.0);
  EXPECT_DOUBLE_EQ(injected.Cardinality(sub), 123.0);

  CardinalityProvider scaled(estimator_.get());
  scaled.SetScale(10.0, 1);
  EXPECT_NEAR(scaled.Cardinality(sub), base * 10.0, base * 1e-9);
  scaled.ClearOverrides();
  EXPECT_NEAR(scaled.Cardinality(sub), base, base * 1e-9);
}

TEST_F(OptimizerTest, DpPlanCoversQueryAndExecutes) {
  Workload workload = MakeJoinWorkload(15);
  Executor executor(&catalog_);
  CardinalityProvider provider(estimator_.get());
  for (const Query& q : workload.queries) {
    PlannerResult result = optimizer_->Optimize(q, &provider);
    EXPECT_EQ(result.plan.root->table_set, q.AllTables());
    EXPECT_GT(result.estimated_cost, 0.0);
    auto exec = executor.Execute(result.plan);
    ASSERT_TRUE(exec.ok()) << q.ToString();
  }
}

TEST_F(OptimizerTest, DpNeverWorseThanGreedyUnderSameCards) {
  // DP is exhaustive, so its estimated cost is a lower bound on greedy's
  // under the same cost model and cardinalities.
  Workload workload = MakeJoinWorkload(20);
  CardinalityProvider provider(oracle_.get());
  for (const Query& q : workload.queries) {
    PlannerResult dp = optimizer_->Optimize(q, &provider);
    PlannerResult greedy = optimizer_->OptimizeGreedy(q, &provider);
    EXPECT_LE(dp.estimated_cost, greedy.estimated_cost * (1 + 1e-9))
        << q.ToString();
  }
}

TEST_F(OptimizerTest, HintsRestrictOperators) {
  Workload workload = MakeJoinWorkload(10, 3, 5);
  CardinalityProvider provider(estimator_.get());
  HintSet hash_only;
  hash_only.enable_nested_loop = false;
  hash_only.enable_merge_join = false;
  for (const Query& q : workload.queries) {
    PlannerResult result = optimizer_->Optimize(q, &provider, hash_only);
    VisitPlanBottomUp(*result.plan.root, [&](const PlanNode& node) {
      if (node.kind == PlanNode::Kind::kJoin) {
        EXPECT_EQ(node.algorithm, JoinAlgorithm::kHashJoin);
      }
    });
  }
}

TEST_F(OptimizerTest, HintCostNeverBelowUnhinted) {
  Workload workload = MakeJoinWorkload(10, 2, 4);
  CardinalityProvider provider(estimator_.get());
  HintSet no_hash;
  no_hash.enable_hash_join = false;
  for (const Query& q : workload.queries) {
    PlannerResult free_plan = optimizer_->Optimize(q, &provider);
    PlannerResult hinted = optimizer_->Optimize(q, &provider, no_hash);
    EXPECT_GE(hinted.estimated_cost, free_plan.estimated_cost * (1 - 1e-9));
  }
}

TEST_F(OptimizerTest, LeadingHintForcesPrefix) {
  Query q;
  q.AddTable("users");
  q.AddTable("posts");
  q.AddTable("comments");
  q.AddJoin(0, "id", 1, "owner_user_id");
  q.AddJoin(1, "id", 2, "post_id");
  CardinalityProvider provider(estimator_.get());
  HintSet leading;
  leading.leading = {2, 1};  // comments first, then posts.
  PlannerResult result = optimizer_->Optimize(q, &provider, leading);
  // Left-most leaf must be comments (index 2).
  const PlanNode* node = result.plan.root.get();
  while (node->kind == PlanNode::Kind::kJoin) node = node->left.get();
  EXPECT_EQ(node->table_index, 2);
  EXPECT_EQ(result.plan.root->table_set, q.AllTables());
}

TEST_F(OptimizerTest, LeftDeepOptionRestrictsShape) {
  OptimizerOptions options;
  options.bushy = false;
  Optimizer left_deep(&stats_, cost_model_.get(), options);
  Workload workload = MakeJoinWorkload(10, 4, 5);
  CardinalityProvider provider(estimator_.get());
  for (const Query& q : workload.queries) {
    PlannerResult result = left_deep.Optimize(q, &provider);
    VisitPlanBottomUp(*result.plan.root, [&](const PlanNode& node) {
      if (node.kind == PlanNode::Kind::kJoin) {
        EXPECT_EQ(node.right->kind, PlanNode::Kind::kScan);
      }
    });
  }
}

TEST_F(OptimizerTest, CostModelAnnotatesNodes) {
  Query q;
  q.AddTable("users");
  q.AddTable("posts");
  q.AddJoin(0, "id", 1, "owner_user_id");
  CardinalityProvider provider(estimator_.get());
  PlannerResult result = optimizer_->Optimize(q, &provider);
  double replay = cost_model_->PlanCost(&result.plan, &provider);
  EXPECT_NEAR(replay, result.estimated_cost, result.estimated_cost * 1e-9);
  VisitPlanBottomUp(*result.plan.root, [](const PlanNode& node) {
    EXPECT_GE(node.estimated_cardinality, 0.0);
    EXPECT_GE(node.estimated_cost, 0.0);
  });
}

TEST_F(OptimizerTest, OracleCardsYieldCheaperOrEqualTrueCost) {
  // With exact cardinalities the chosen plan's *true executed* time should
  // on aggregate not exceed the baseline-estimate plan's time.
  Workload workload = MakeJoinWorkload(12, 3, 5);
  Executor executor(&catalog_);
  CardinalityProvider baseline_cards(estimator_.get());
  CardinalityProvider oracle_cards(oracle_.get());
  double total_baseline = 0, total_oracle = 0;
  for (const Query& q : workload.queries) {
    auto b = executor.Execute(optimizer_->Optimize(q, &baseline_cards).plan);
    auto o = executor.Execute(optimizer_->Optimize(q, &oracle_cards).plan);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(o.ok());
    total_baseline += b->time_units;
    total_oracle += o->time_units;
  }
  EXPECT_LE(total_oracle, total_baseline * 1.1);
}

}  // namespace
}  // namespace lqo
