#!/usr/bin/env bash
# Race-hunting gate for the parallel execution substrate: builds the suite
# under ThreadSanitizer and runs every test with a 4-thread global pool, so
# any unsynchronized access introduced by a new parallel site fails CI even
# on single-core runners.
#
# Usage: scripts/check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DLQO_SANITIZE=thread
cmake --build "$BUILD_DIR" -j"$(nproc)"

export LQO_THREADS=4
# second_deadlock_stack aids diagnosing lock-order reports from the pool.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# The scaling bench sweeps every parallel site at 1/2/4/N threads under
# TSan and exits nonzero if any site diverges from its serial result.
"$BUILD_DIR"/bench/bench_parallel_scaling

# Batched-inference gates, still under TSan + 4 threads: the bit-identity
# and thread-invariance tests, then the inference microbenchmarks (whose
# fixture CHECK-fails if PredictBatch diverges from per-row Predict).
"$BUILD_DIR"/tests/ml_test --gtest_filter='BatchInference*'
"$BUILD_DIR"/tests/thread_pool_test \
  --gtest_filter='*BatchedCandidateScoring*:*EstimateSubqueryBatch*'
"$BUILD_DIR"/bench/bench_micro_components \
  --benchmark_filter='Inference' --benchmark_min_time=0.05

echo "check.sh: TSan suite passed with LQO_THREADS=4"
