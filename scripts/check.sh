#!/usr/bin/env bash
# CI gate, three stages ordered cheapest-first so hazards fail fast:
#
#   1. lqo-lint       — two-phase whole-program static analysis over src/,
#                       tests/, bench/, examples/ and tools/
#                       (tools/lqo-lint): per-file determinism/concurrency/
#                       hygiene rules plus cross-TU lock-discipline,
#                       unordered-iter and layering, gated against the
#                       checked-in waiver budget (baseline.json), before
#                       any build of the full suite.
#   2. TSan suite     — builds under ThreadSanitizer and runs every test
#                       with a 4-thread global pool, so unsynchronized
#                       accesses introduced by a new parallel site fail even
#                       on single-core runners.
#   3. UBSan suite    — rebuilds under UndefinedBehaviorSanitizer with
#                       -fno-sanitize-recover=all (any UB aborts) and runs
#                       ctest again.
#
# Both sanitizer builds compile with LQO_WERROR=ON, so the hardened warning
# set (-Wshadow -Wnon-virtual-dtor -Wimplicit-fallthrough -Wcast-qual) is
# enforced as errors.
#
# A fourth stage rebuilds the tree with clang++ and -Werror=thread-safety,
# statically checking the LQO_GUARDED_BY/LQO_REQUIRES annotations. It
# auto-enables whenever clang++ is on PATH; LQO_CLANG_TSA=1 forces it,
# LQO_CLANG_TSA=0 skips it (the default image ships GCC only).
#
# Usage: scripts/check.sh [tsan-build-dir] [ubsan-build-dir] [tsa-build-dir]
#        (defaults: build-tsan build-ubsan build-tsa)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"
UBSAN_DIR="${2:-build-ubsan}"
JOBS="$(nproc)"

# --- Stage 1: static analysis (fail-fast, before the expensive builds) -----
cmake -B "$BUILD_DIR" -S . -DLQO_SANITIZE=thread -DLQO_WERROR=ON
cmake --build "$BUILD_DIR" -j"$JOBS" --target lqo-lint
# Whole-program analysis (per-file rules + cross-TU lock-discipline /
# unordered-iter / layering) with the waiver budget enforced against the
# checked-in baseline. A SARIF log is always written so CI can upload it as
# an artifact; on failure its path is echoed for the uploader.
SARIF_OUT="$BUILD_DIR/lqo-lint.sarif"
if ! "$BUILD_DIR"/tools/lqo-lint/lqo-lint --root . \
    --baseline tools/lqo-lint/baseline.json \
    --sarif-out "$SARIF_OUT" \
    src tests bench examples tools; then
  echo "check.sh: stage 1 (lqo-lint) FAILED — SARIF artifact: $SARIF_OUT" >&2
  exit 1
fi
echo "check.sh: stage 1 (lqo-lint) passed (SARIF: $SARIF_OUT)"

# --- Stage 2: ThreadSanitizer suite ----------------------------------------
cmake --build "$BUILD_DIR" -j"$JOBS"

export LQO_THREADS=4
# second_deadlock_stack aids diagnosing lock-order reports from the pool.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# The scaling bench sweeps every parallel site at 1/2/4/N threads under
# TSan and exits nonzero if any site diverges from its serial result. Its
# vectorized_exec site additionally folds the scalar and batch executor
# paths into one fingerprint, so a scalar/vectorized divergence fails here
# too (the >=1.5x throughput floor is compiled out under sanitizers).
"$BUILD_DIR"/bench/bench_parallel_scaling

# Vectorized-executor and SIMD-dispatch gates, under TSan + 4 threads:
# selection-vector kernel reference checks, scan/join edge-case batches,
# per-ISA-level kernel bit-equality, the LQO_SIMD override path, the real
# merge/NLJ join paths, and bit-equality of scalar vs vectorized results at
# 1/2/8 threads.
"$BUILD_DIR"/tests/engine_test --gtest_filter='Vectorized*:Simd*'
# The kernel microbenchmarks' fixture CHECK-fails if any filter kernel
# disagrees with per-row Predicate::Matches or any SIMD level diverges from
# the scalar reference table on odd batch sizes.
"$BUILD_DIR"/bench/bench_micro_components \
  --benchmark_filter='Kernel' --benchmark_min_time=0.05
# SIMD determinism fingerprint, twice: once pinned to the scalar reference
# level and once at the best detected level. The site itself sweeps every
# supported level x scalar/vectorized path x 1/2/4/N threads and exits
# nonzero on any bit divergence (the >=1.3x filter-kernel floor is compiled
# out under sanitizers).
LQO_SIMD=scalar "$BUILD_DIR"/bench/bench_parallel_scaling --simd-only
"$BUILD_DIR"/bench/bench_parallel_scaling --simd-only

# Late-materialization output pipeline gates, under TSan + 4 threads:
# aggregate-kernel bit-equality at boundary batch sizes, GROUP BY hash
# aggregation, projection gathers, thread/SIMD-level invariance, then the
# agg_projection determinism fingerprint (every supported level x
# scalar/vectorized path x 1/2/4/N threads, folding every output value;
# the >=1.5x grouped-aggregation floor is compiled out under sanitizers).
"$BUILD_DIR"/tests/engine_test \
  --gtest_filter='Aggregate*:Projection*:GroupIndex*'
LQO_SIMD=scalar "$BUILD_DIR"/bench/bench_parallel_scaling --agg-only
"$BUILD_DIR"/bench/bench_parallel_scaling --agg-only

# Batched-inference gates, still under TSan + 4 threads: the bit-identity
# and thread-invariance tests, then the inference microbenchmarks (whose
# fixture CHECK-fails if PredictBatch diverges from per-row Predict).
"$BUILD_DIR"/tests/ml_test --gtest_filter='BatchInference*'
"$BUILD_DIR"/tests/thread_pool_test \
  --gtest_filter='*BatchedCandidateScoring*:*EstimateSubqueryBatch*'
"$BUILD_DIR"/bench/bench_micro_components \
  --benchmark_filter='Inference' --benchmark_min_time=0.05

# Serving front end determinism site, under TSan: replays concurrent
# sessions (drift + parameter-sensitive scenarios included) through the
# shared plan cache at LQO_THREADS 1/2/8 and exits nonzero unless the
# fingerprints are bit-identical (the 3x throughput gate is compiled out
# under sanitizers).
"$BUILD_DIR"/bench/bench_serving --determinism-only
echo "check.sh: stage 2 (TSan suite) passed with LQO_THREADS=4"

# --- Stage 3: UndefinedBehaviorSanitizer suite -----------------------------
cmake -B "$UBSAN_DIR" -S . -DLQO_SANITIZE=undefined -DLQO_WERROR=ON
cmake --build "$UBSAN_DIR" -j"$JOBS"
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  ctest --test-dir "$UBSAN_DIR" --output-on-failure -j"$JOBS"
echo "check.sh: stage 3 (UBSan suite) passed"

# --- Stage 4: Clang Thread Safety Analysis ---------------------------------
# Compiles the tree with clang++ and -Wthread-safety as errors, statically
# checking the LQO_GUARDED_BY/LQO_REQUIRES annotations
# (src/common/thread_annotations.h). Auto-enables when clang++ is on PATH
# (LQO_CLANG_TSA unset or "auto"); LQO_CLANG_TSA=1 forces it (error if
# clang++ is missing), LQO_CLANG_TSA=0 skips it. The annotations are no-ops
# under GCC, so skipping on a GCC-only image loses nothing the lint
# lock-discipline pass doesn't cover.
TSA_MODE="${LQO_CLANG_TSA:-auto}"
RUN_TSA=0
case "$TSA_MODE" in
  1) RUN_TSA=1 ;;
  0) RUN_TSA=0 ;;
  *) command -v clang++ >/dev/null 2>&1 && RUN_TSA=1 || RUN_TSA=0 ;;
esac
if [[ "$RUN_TSA" == "1" ]]; then
  TSA_DIR="${3:-build-tsa}"
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "check.sh: LQO_CLANG_TSA=1 but clang++ is not installed." >&2
    echo "  Thread Safety Analysis needs Clang; install clang or set" >&2
    echo "  LQO_CLANG_TSA=0 to run the GCC-only stages." >&2
    exit 1
  fi
  # Compile-only gate: any -Wthread-safety finding fails the build.
  cmake -B "$TSA_DIR" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DLQO_THREAD_SAFETY=ON -DCMAKE_CXX_FLAGS=-Werror=thread-safety
  cmake --build "$TSA_DIR" -j"$JOBS"
  echo "check.sh: stage 4 (clang -Wthread-safety) passed"
else
  echo "check.sh: stage 4 (clang -Wthread-safety) skipped (no clang++)"
fi

echo "check.sh: all stages passed (lint, TSan, UBSan)"
