#!/usr/bin/env bash
# Build and run the lqo-lint determinism/concurrency gate by itself.
#
# Usage: scripts/lint.sh [build-dir] [dirs...]
#   build-dir  cmake build tree to (re)use for the linter binary
#              (default: build)
#   dirs       directories to scan relative to the repo root
#              (default: src tests bench examples)
#
# This is the fast local loop for the gate scripts/check.sh runs first;
# see DESIGN.md "Static analysis & correctness gates" and
# `lqo-lint --list-rules` / `lqo-lint --explain <id>` for the rules.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true
DIRS=("$@")
if [ "${#DIRS[@]}" -eq 0 ]; then
  DIRS=(src tests bench examples)
fi

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" --target lqo-lint -j

exec "$BUILD_DIR"/tools/lqo-lint/lqo-lint --root . "${DIRS[@]}"
