#!/usr/bin/env bash
# Build and run the lqo-lint determinism/concurrency gate by itself.
#
# Usage: scripts/lint.sh [--changed] [build-dir] [dirs...]
#   --changed  fast inner loop: report findings only for files touched per
#              git (unstaged + staged + untracked) plus their header/impl
#              pairs. The full project index is still built, so cross-TU
#              rules (lock-discipline, layering, cross-TU unordered-iter)
#              stay whole-program; baseline comparison is skipped.
#   build-dir  cmake build tree to (re)use for the linter binary
#              (default: build)
#   dirs       directories to scan relative to the repo root
#              (default: src tests bench examples tools)
#
# This is the fast local loop for the gate scripts/check.sh runs first;
# see DESIGN.md "Static analysis & correctness gates" and
# `lqo-lint --list-rules` / `lqo-lint --explain <id>` for the rules.
set -euo pipefail

cd "$(dirname "$0")/.."

CHANGED=0
if [ "${1:-}" == "--changed" ]; then
  CHANGED=1
  shift
fi

BUILD_DIR="${1:-build}"
shift || true
DIRS=("$@")
if [ "${#DIRS[@]}" -eq 0 ]; then
  DIRS=(src tests bench examples tools)
fi

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" --target lqo-lint -j

if [ "$CHANGED" == "1" ]; then
  # Touched C++ files: unstaged + staged + untracked, filtered to the
  # extensions the linter loads.
  mapfile -t touched < <(
    { git diff --name-only
      git diff --name-only --cached
      git ls-files --others --exclude-standard
    } | grep -E '\.(h|hpp|cc|cpp)$' | sort -u)

  # Add each file's header/impl pair so a .cc edit re-checks its header's
  # contracts and vice versa.
  declare -A seen=()
  ONLY_ARGS=()
  add() {
    local f="$1"
    [ -e "$f" ] || return 0
    [ -n "${seen[$f]:-}" ] && return 0
    seen[$f]=1
    ONLY_ARGS+=(--only "$f")
  }
  for f in "${touched[@]:-}"; do
    [ -n "$f" ] || continue
    add "$f"
    stem="${f%.*}"
    case "$f" in
      *.cc|*.cpp) add "$stem.h"; add "$stem.hpp" ;;
      *.h|*.hpp)  add "$stem.cc"; add "$stem.cpp" ;;
    esac
  done

  if [ "${#ONLY_ARGS[@]}" -eq 0 ]; then
    echo "lint.sh: no changed C++ files"
    exit 0
  fi
  exec "$BUILD_DIR"/tools/lqo-lint/lqo-lint --root . \
    "${ONLY_ARGS[@]}" "${DIRS[@]}"
fi

exec "$BUILD_DIR"/tools/lqo-lint/lqo-lint --root . \
  --baseline tools/lqo-lint/baseline.json "${DIRS[@]}"
