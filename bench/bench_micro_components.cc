// Microbenchmarks (google-benchmark): per-component latencies that frame
// the system-level experiments — estimator inference cost, DP planning
// cost, executor throughput and plan featurization. Every benchmark also
// reports items/sec (one query/plan per iteration), so parallel speedups
// read directly as throughput deltas in the output table.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "common/logging.h"
#include "common/rng.h"
#include "costmodel/plan_featurizer.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/tree.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

struct MicroFixture {
  std::unique_ptr<Lab> lab;
  Workload workload;
  std::unique_ptr<DataDrivenEstimator> spn;

  MicroFixture() {
    lab = MakeLab("stats_lite", 0.05);
    WorkloadOptions wopts;
    wopts.num_queries = 20;
    wopts.min_tables = 2;
    wopts.max_tables = 4;
    wopts.seed = 111;
    workload = GenerateWorkload(lab->catalog, wopts);
    spn = std::make_unique<DataDrivenEstimator>(
        "deepdb_spn", &lab->catalog, &lab->stats,
        JoinCombineMode::kIndependence);
    spn->Build();
  }
};

MicroFixture& Fixture() {
  static MicroFixture* fixture = new MicroFixture();
  return *fixture;
}

void BM_BaselineEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(
        f.lab->estimator->EstimateSubquery(Subquery{&q, q.AllTables()}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineEstimate);

void BM_SpnEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(
        f.spn->EstimateSubquery(Subquery{&q, q.AllTables()}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpnEstimate);

void BM_DpPlanning(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(f.lab->optimizer->Optimize(q, &cards));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpPlanning);

void BM_ExecuteNativePlan(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  std::vector<PhysicalPlan> plans;
  for (const Query& q : f.workload.queries) {
    plans.push_back(f.lab->optimizer->Optimize(q, &cards).plan);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.lab->executor->Execute(plans[i++ % plans.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteNativePlan);

// Per-phase wall-clock of the partitioned hash join (build / probe /
// ordered concat), reported as counters alongside whole-plan latency. Uses
// a chain catalog large enough to take the 16-partition parallel path.
void BM_JoinPhases(benchmark::State& state) {
  static Catalog* chain = new Catalog(MakeChainSchema(3, 20000));
  static Executor* executor = new Executor(chain);
  Query q;
  q.AddTable("t0");
  q.AddTable("t1");
  q.AddTable("t2");
  q.AddJoin(0, "id", 1, "prev_id");
  q.AddJoin(1, "id", 2, "prev_id");
  PhysicalPlan plan =
      MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin);
  double build = 0.0, probe = 0.0, concat = 0.0;
  for (auto _ : state) {
    auto result = executor->Execute(plan);
    LQO_CHECK(result.ok());
    for (const NodeProfile& p : result->node_profiles) {
      if (p.kind != PlanNode::Kind::kJoin) continue;
      build += p.build_seconds;
      probe += p.probe_seconds;
      concat += p.concat_seconds;
    }
    benchmark::DoNotOptimize(result->row_count);
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["build_s"] = build / iters;
  state.counters["probe_s"] = probe / iters;
  state.counters["concat_s"] = concat / iters;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JoinPhases);

// Batched-inference substrate: scalar Predict loops vs PredictBatch over
// the SoA tree kernels and the blocked MLP forward, on one shared fitted
// model set. The fixture CHECK-fails if batch and scalar predictions ever
// diverge, so any run of this binary (including scripts/check.sh's) doubles
// as a bit-identity gate.
struct InferenceFixture {
  static constexpr size_t kRows = 2048;
  static constexpr size_t kDim = 12;

  std::vector<std::vector<double>> rows;
  FeatureMatrix matrix{kDim};
  RegressionTree tree;
  RandomForest forest;
  GradientBoostedTrees gbdt;
  Mlp mlp;

  InferenceFixture() {
    Rng rng(4242);
    std::vector<double> targets;
    matrix.Reserve(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      std::vector<double> row(kDim);
      for (double& v : row) v = rng.UniformDouble(-2.0, 2.0);
      double y = row[0] * 3.0 - row[1] * row[1] + std::sin(row[2]) +
                 rng.Gaussian(0.0, 0.1);
      targets.push_back(y);
      matrix.AddRow(row);
      rows.push_back(std::move(row));
    }
    TreeOptions tree_options;
    tree.Fit(rows, targets, tree_options);
    ForestOptions forest_options;
    forest_options.num_trees = 20;
    forest = RandomForest(forest_options);
    forest.Fit(rows, targets);
    GbdtOptions gbdt_options;
    gbdt_options.num_trees = 40;
    gbdt = GradientBoostedTrees(gbdt_options);
    gbdt.Fit(rows, targets);
    MlpOptions mlp_options;
    mlp_options.hidden_layers = {32, 16};
    mlp_options.epochs = 10;
    mlp = Mlp(mlp_options);
    mlp.Fit(rows, targets);

    CheckBatchMatchesScalar();
  }

  /// Divergence gate: batch output must be bit-for-bit the scalar loop's.
  void CheckBatchMatchesScalar() const {
    std::vector<double> batch(kRows);
    auto check = [&](const char* name, auto&& scalar) {
      for (size_t r = 0; r < kRows; ++r) {
        LQO_CHECK_EQ(batch[r], scalar(rows[r]))
            << name << ": batch diverges from scalar at row " << r;
      }
    };
    tree.PredictBatch(matrix, batch);
    check("tree", [&](const std::vector<double>& row) {
      return tree.Predict(row);
    });
    forest.PredictBatch(matrix, batch);
    check("forest", [&](const std::vector<double>& row) {
      return forest.Predict(row);
    });
    gbdt.PredictBatch(matrix, batch);
    check("gbdt", [&](const std::vector<double>& row) {
      return gbdt.Predict(row);
    });
    mlp.PredictBatch(matrix, batch);
    check("mlp", [&](const std::vector<double>& row) {
      return mlp.Predict(row);
    });

    // Compact quantized layouts, forced via ConfigureCompact(0) on copies,
    // must reproduce the same bits as the scalar traversal of the SoA
    // originals: thresholds are quantized at build time, so the layout
    // never changes a comparison outcome.
    RandomForest forest_compact = forest;
    forest_compact.ConfigureCompact(0);
    forest_compact.PredictBatch(matrix, batch);
    check("compact-forest", [&](const std::vector<double>& row) {
      return forest.Predict(row);
    });
    GradientBoostedTrees gbdt_compact = gbdt;
    gbdt_compact.ConfigureCompact(0);
    gbdt_compact.PredictBatch(matrix, batch);
    check("compact-gbdt", [&](const std::vector<double>& row) {
      return gbdt.Predict(row);
    });
  }
};

InferenceFixture& Inference() {
  static InferenceFixture* fixture = new InferenceFixture();
  return *fixture;
}

template <typename Model>
void RunInferenceScalar(benchmark::State& state, const Model& model) {
  InferenceFixture& f = Inference();
  for (auto _ : state) {
    double sink = 0.0;
    for (const std::vector<double>& row : f.rows) sink += model.Predict(row);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(InferenceFixture::kRows));
}

template <typename Model>
void RunInferenceBatch(benchmark::State& state, const Model& model) {
  InferenceFixture& f = Inference();
  std::vector<double> out(InferenceFixture::kRows);
  for (auto _ : state) {
    model.PredictBatch(f.matrix, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(InferenceFixture::kRows));
}

void BM_InferenceScalarTree(benchmark::State& state) {
  RunInferenceScalar(state, Inference().tree);
}
BENCHMARK(BM_InferenceScalarTree);
void BM_InferenceBatchTree(benchmark::State& state) {
  RunInferenceBatch(state, Inference().tree);
}
BENCHMARK(BM_InferenceBatchTree);

void BM_InferenceScalarForest(benchmark::State& state) {
  RunInferenceScalar(state, Inference().forest);
}
BENCHMARK(BM_InferenceScalarForest);
void BM_InferenceBatchForest(benchmark::State& state) {
  RunInferenceBatch(state, Inference().forest);
}
BENCHMARK(BM_InferenceBatchForest);

void BM_InferenceScalarGbdt(benchmark::State& state) {
  RunInferenceScalar(state, Inference().gbdt);
}
BENCHMARK(BM_InferenceScalarGbdt);
void BM_InferenceBatchGbdt(benchmark::State& state) {
  RunInferenceBatch(state, Inference().gbdt);
}
BENCHMARK(BM_InferenceBatchGbdt);

void BM_InferenceScalarMlp(benchmark::State& state) {
  RunInferenceScalar(state, Inference().mlp);
}
BENCHMARK(BM_InferenceScalarMlp);
void BM_InferenceBatchMlp(benchmark::State& state) {
  RunInferenceBatch(state, Inference().mlp);
}
BENCHMARK(BM_InferenceBatchMlp);

// Large-ensemble fixture, past the compact_min_total_nodes L2 gate, shared
// by the *Large layout benchmarks below. Like the other fixtures it is
// built lazily on first use, so filtered runs that never touch these
// benchmarks (scripts/check.sh's --benchmark_filter='Inference' TSan pass
// in particular) start fast and never pay the multi-second ensemble fits.
struct LargeEnsembleFixture {
  static constexpr size_t kRows = 4096;
  static constexpr size_t kDim = 12;

  std::vector<std::vector<double>> rows;
  FeatureMatrix matrix{kDim};
  RandomForest soa_forest;      // ConfigureCompact(SIZE_MAX): SoA arrays
  RandomForest compact_forest;  // ConfigureCompact(0): quantized arenas
  GradientBoostedTrees soa_gbdt;
  GradientBoostedTrees compact_gbdt;

  LargeEnsembleFixture() {
    Rng rng(515);
    std::vector<double> targets;
    matrix.Reserve(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      std::vector<double> row(kDim);
      for (double& v : row) v = rng.UniformDouble(-2.0, 2.0);
      double y = row[0] * 2.0 - row[3] * row[1] + std::sin(row[4]) +
                 rng.Gaussian(0.0, 0.1);
      targets.push_back(y);
      matrix.AddRow(row);
      rows.push_back(std::move(row));
    }
    ForestOptions forest_options;
    forest_options.num_trees = 64;
    soa_forest = RandomForest(forest_options);
    soa_forest.Fit(rows, targets);
    compact_forest = soa_forest;
    soa_forest.ConfigureCompact(SIZE_MAX);
    compact_forest.ConfigureCompact(0);

    GbdtOptions gbdt_options;
    gbdt_options.num_trees = 96;
    gbdt_options.tree.max_depth = 8;  // past the cache-resident node gate
    soa_gbdt = GradientBoostedTrees(gbdt_options);
    soa_gbdt.Fit(rows, targets);
    compact_gbdt = soa_gbdt;
    soa_gbdt.ConfigureCompact(SIZE_MAX);
    compact_gbdt.ConfigureCompact(0);

    // Layout-identity gate: the two layouts of the same fitted model must
    // produce the same bits on every row.
    std::vector<double> a(kRows), b(kRows);
    soa_forest.PredictBatch(matrix, a);
    compact_forest.PredictBatch(matrix, b);
    for (size_t r = 0; r < kRows; ++r) {
      LQO_CHECK_EQ(a[r], b[r]) << "forest: compact layout diverges at row "
                               << r;
    }
    soa_gbdt.PredictBatch(matrix, a);
    compact_gbdt.PredictBatch(matrix, b);
    for (size_t r = 0; r < kRows; ++r) {
      LQO_CHECK_EQ(a[r], b[r]) << "gbdt: compact layout diverges at row "
                               << r;
    }
  }
};

LargeEnsembleFixture& LargeEnsemble() {
  static LargeEnsembleFixture* fixture = new LargeEnsembleFixture();
  return *fixture;
}

template <typename Model>
void RunLayoutBatch(benchmark::State& state, const Model& model) {
  LargeEnsembleFixture& f = LargeEnsemble();
  std::vector<double> out(LargeEnsembleFixture::kRows);
  for (auto _ : state) {
    model.PredictBatch(f.matrix, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(LargeEnsembleFixture::kRows));
}

void BM_SoaForestLarge(benchmark::State& state) {
  RunLayoutBatch(state, LargeEnsemble().soa_forest);
}
BENCHMARK(BM_SoaForestLarge);
void BM_CompactForestLarge(benchmark::State& state) {
  RunLayoutBatch(state, LargeEnsemble().compact_forest);
}
BENCHMARK(BM_CompactForestLarge);

void BM_SoaGbdtLarge(benchmark::State& state) {
  RunLayoutBatch(state, LargeEnsemble().soa_gbdt);
}
BENCHMARK(BM_SoaGbdtLarge);
void BM_CompactGbdtLarge(benchmark::State& state) {
  RunLayoutBatch(state, LargeEnsemble().compact_gbdt);
}
BENCHMARK(BM_CompactGbdtLarge);

void BM_PlanFeaturize(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  PhysicalPlan plan =
      f.lab->optimizer->Optimize(f.workload.queries[0], &cards).plan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanFeaturizer::Featurize(plan));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanFeaturize);

}  // namespace
}  // namespace lqo

BENCHMARK_MAIN();
