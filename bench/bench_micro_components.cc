// Microbenchmarks (google-benchmark): per-component latencies that frame
// the system-level experiments — estimator inference cost, DP planning
// cost, executor throughput and plan featurization. Every benchmark also
// reports items/sec (one query/plan per iteration), so parallel speedups
// read directly as throughput deltas in the output table.

#include <benchmark/benchmark.h>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "common/logging.h"
#include "costmodel/plan_featurizer.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

struct MicroFixture {
  std::unique_ptr<Lab> lab;
  Workload workload;
  std::unique_ptr<DataDrivenEstimator> spn;

  MicroFixture() {
    lab = MakeLab("stats_lite", 0.05);
    WorkloadOptions wopts;
    wopts.num_queries = 20;
    wopts.min_tables = 2;
    wopts.max_tables = 4;
    wopts.seed = 111;
    workload = GenerateWorkload(lab->catalog, wopts);
    spn = std::make_unique<DataDrivenEstimator>(
        "deepdb_spn", &lab->catalog, &lab->stats,
        JoinCombineMode::kIndependence);
    spn->Build();
  }
};

MicroFixture& Fixture() {
  static MicroFixture* fixture = new MicroFixture();
  return *fixture;
}

void BM_BaselineEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(
        f.lab->estimator->EstimateSubquery(Subquery{&q, q.AllTables()}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineEstimate);

void BM_SpnEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(
        f.spn->EstimateSubquery(Subquery{&q, q.AllTables()}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpnEstimate);

void BM_DpPlanning(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(f.lab->optimizer->Optimize(q, &cards));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpPlanning);

void BM_ExecuteNativePlan(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  std::vector<PhysicalPlan> plans;
  for (const Query& q : f.workload.queries) {
    plans.push_back(f.lab->optimizer->Optimize(q, &cards).plan);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.lab->executor->Execute(plans[i++ % plans.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteNativePlan);

// Per-phase wall-clock of the partitioned hash join (build / probe /
// ordered concat), reported as counters alongside whole-plan latency. Uses
// a chain catalog large enough to take the 16-partition parallel path.
void BM_JoinPhases(benchmark::State& state) {
  static Catalog* chain = new Catalog(MakeChainSchema(3, 20000));
  static Executor* executor = new Executor(chain);
  Query q;
  q.AddTable("t0");
  q.AddTable("t1");
  q.AddTable("t2");
  q.AddJoin(0, "id", 1, "prev_id");
  q.AddJoin(1, "id", 2, "prev_id");
  PhysicalPlan plan =
      MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin);
  double build = 0.0, probe = 0.0, concat = 0.0;
  for (auto _ : state) {
    auto result = executor->Execute(plan);
    LQO_CHECK(result.ok());
    for (const NodeProfile& p : result->node_profiles) {
      if (p.kind != PlanNode::Kind::kJoin) continue;
      build += p.build_seconds;
      probe += p.probe_seconds;
      concat += p.concat_seconds;
    }
    benchmark::DoNotOptimize(result->row_count);
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["build_s"] = build / iters;
  state.counters["probe_s"] = probe / iters;
  state.counters["concat_s"] = concat / iters;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JoinPhases);

void BM_PlanFeaturize(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  PhysicalPlan plan =
      f.lab->optimizer->Optimize(f.workload.queries[0], &cards).plan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanFeaturizer::Featurize(plan));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanFeaturize);

}  // namespace
}  // namespace lqo

BENCHMARK_MAIN();
