// Microbenchmarks (google-benchmark): per-component latencies that frame
// the system-level experiments — estimator inference cost, DP planning
// cost, executor throughput and plan featurization. Every benchmark also
// reports items/sec (one query/plan per iteration), so parallel speedups
// read directly as throughput deltas in the output table.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "common/logging.h"
#include "common/rng.h"
#include "costmodel/plan_featurizer.h"
#include "engine/filter_kernels.h"
#include "engine/simd.h"
#include "engine/vec_batch.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/tree.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

struct MicroFixture {
  std::unique_ptr<Lab> lab;
  Workload workload;
  std::unique_ptr<DataDrivenEstimator> spn;

  MicroFixture() {
    lab = MakeLab("stats_lite", 0.05);
    WorkloadOptions wopts;
    wopts.num_queries = 20;
    wopts.min_tables = 2;
    wopts.max_tables = 4;
    wopts.seed = 111;
    workload = GenerateWorkload(lab->catalog, wopts);
    spn = std::make_unique<DataDrivenEstimator>(
        "deepdb_spn", &lab->catalog, &lab->stats,
        JoinCombineMode::kIndependence);
    spn->Build();
  }
};

MicroFixture& Fixture() {
  static MicroFixture* fixture = new MicroFixture();
  return *fixture;
}

void BM_BaselineEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(
        f.lab->estimator->EstimateSubquery(Subquery{&q, q.AllTables()}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineEstimate);

void BM_SpnEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(
        f.spn->EstimateSubquery(Subquery{&q, q.AllTables()}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpnEstimate);

void BM_DpPlanning(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(f.lab->optimizer->Optimize(q, &cards));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpPlanning);

void BM_ExecuteNativePlan(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  std::vector<PhysicalPlan> plans;
  for (const Query& q : f.workload.queries) {
    plans.push_back(f.lab->optimizer->Optimize(q, &cards).plan);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.lab->executor->Execute(plans[i++ % plans.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteNativePlan);

// Per-phase wall-clock of the partitioned hash join (build / probe /
// ordered concat), reported as counters alongside whole-plan latency. Uses
// a chain catalog large enough to take the 16-partition parallel path.
void BM_JoinPhases(benchmark::State& state) {
  static Catalog* chain = new Catalog(MakeChainSchema(3, 20000));
  static Executor* executor = new Executor(chain);
  Query q;
  q.AddTable("t0");
  q.AddTable("t1");
  q.AddTable("t2");
  q.AddJoin(0, "id", 1, "prev_id");
  q.AddJoin(1, "id", 2, "prev_id");
  PhysicalPlan plan =
      MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin);
  double build = 0.0, probe = 0.0, concat = 0.0;
  for (auto _ : state) {
    auto result = executor->Execute(plan);
    LQO_CHECK(result.ok());
    for (const NodeProfile& p : result->node_profiles) {
      if (p.kind != PlanNode::Kind::kJoin) continue;
      build += p.build_seconds;
      probe += p.probe_seconds;
      concat += p.concat_seconds;
    }
    benchmark::DoNotOptimize(result->row_count);
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["build_s"] = build / iters;
  state.counters["probe_s"] = probe / iters;
  state.counters["concat_s"] = concat / iters;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JoinPhases);

// Batched-inference substrate: scalar Predict loops vs PredictBatch over
// the SoA tree kernels and the blocked MLP forward, on one shared fitted
// model set. The fixture CHECK-fails if batch and scalar predictions ever
// diverge, so any run of this binary (including scripts/check.sh's) doubles
// as a bit-identity gate.
struct InferenceFixture {
  static constexpr size_t kRows = 2048;
  static constexpr size_t kDim = 12;

  std::vector<std::vector<double>> rows;
  FeatureMatrix matrix{kDim};
  RegressionTree tree;
  RandomForest forest;
  GradientBoostedTrees gbdt;
  Mlp mlp;

  InferenceFixture() {
    Rng rng(4242);
    std::vector<double> targets;
    matrix.Reserve(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      std::vector<double> row(kDim);
      for (double& v : row) v = rng.UniformDouble(-2.0, 2.0);
      double y = row[0] * 3.0 - row[1] * row[1] + std::sin(row[2]) +
                 rng.Gaussian(0.0, 0.1);
      targets.push_back(y);
      matrix.AddRow(row);
      rows.push_back(std::move(row));
    }
    TreeOptions tree_options;
    tree.Fit(rows, targets, tree_options);
    ForestOptions forest_options;
    forest_options.num_trees = 20;
    forest = RandomForest(forest_options);
    forest.Fit(rows, targets);
    GbdtOptions gbdt_options;
    gbdt_options.num_trees = 40;
    gbdt = GradientBoostedTrees(gbdt_options);
    gbdt.Fit(rows, targets);
    MlpOptions mlp_options;
    mlp_options.hidden_layers = {32, 16};
    mlp_options.epochs = 10;
    mlp = Mlp(mlp_options);
    mlp.Fit(rows, targets);

    CheckBatchMatchesScalar();
  }

  /// Divergence gate: batch output must be bit-for-bit the scalar loop's.
  void CheckBatchMatchesScalar() const {
    std::vector<double> batch(kRows);
    auto check = [&](const char* name, auto&& scalar) {
      for (size_t r = 0; r < kRows; ++r) {
        LQO_CHECK_EQ(batch[r], scalar(rows[r]))
            << name << ": batch diverges from scalar at row " << r;
      }
    };
    tree.PredictBatch(matrix, batch);
    check("tree", [&](const std::vector<double>& row) {
      return tree.Predict(row);
    });
    forest.PredictBatch(matrix, batch);
    check("forest", [&](const std::vector<double>& row) {
      return forest.Predict(row);
    });
    gbdt.PredictBatch(matrix, batch);
    check("gbdt", [&](const std::vector<double>& row) {
      return gbdt.Predict(row);
    });
    mlp.PredictBatch(matrix, batch);
    check("mlp", [&](const std::vector<double>& row) {
      return mlp.Predict(row);
    });

    // Compact quantized layouts, forced via ConfigureCompact(0) on copies,
    // must reproduce the same bits as the scalar traversal of the SoA
    // originals: thresholds are quantized at build time, so the layout
    // never changes a comparison outcome.
    RandomForest forest_compact = forest;
    forest_compact.ConfigureCompact(0);
    forest_compact.PredictBatch(matrix, batch);
    check("compact-forest", [&](const std::vector<double>& row) {
      return forest.Predict(row);
    });
    GradientBoostedTrees gbdt_compact = gbdt;
    gbdt_compact.ConfigureCompact(0);
    gbdt_compact.PredictBatch(matrix, batch);
    check("compact-gbdt", [&](const std::vector<double>& row) {
      return gbdt.Predict(row);
    });

    // Odd-size batch (not a multiple of the interleaved kernels' lane
    // width, nor of the morsel size): exercises the remainder rows of the
    // lockstep tree descent, which must still be bit-identical to scalar.
    constexpr size_t kOddRows = 1021;
    FeatureMatrix odd(kDim);
    odd.Reserve(kOddRows);
    for (size_t r = 0; r < kOddRows; ++r) odd.AddRow(rows[r]);
    std::vector<double> odd_batch(kOddRows);
    auto odd_check = [&](const char* name, auto&& scalar) {
      for (size_t r = 0; r < kOddRows; ++r) {
        LQO_CHECK_EQ(odd_batch[r], scalar(rows[r]))
            << name << ": odd-size batch diverges from scalar at row " << r;
      }
    };
    gbdt.PredictBatch(odd, odd_batch);
    odd_check("gbdt-odd", [&](const std::vector<double>& row) {
      return gbdt.Predict(row);
    });
    forest.PredictBatch(odd, odd_batch);
    odd_check("forest-odd", [&](const std::vector<double>& row) {
      return forest.Predict(row);
    });
  }
};

InferenceFixture& Inference() {
  static InferenceFixture* fixture = new InferenceFixture();
  return *fixture;
}

template <typename Model>
void RunInferenceScalar(benchmark::State& state, const Model& model) {
  InferenceFixture& f = Inference();
  for (auto _ : state) {
    double sink = 0.0;
    for (const std::vector<double>& row : f.rows) sink += model.Predict(row);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(InferenceFixture::kRows));
}

template <typename Model>
void RunInferenceBatch(benchmark::State& state, const Model& model) {
  InferenceFixture& f = Inference();
  std::vector<double> out(InferenceFixture::kRows);
  for (auto _ : state) {
    model.PredictBatch(f.matrix, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(InferenceFixture::kRows));
}

void BM_InferenceScalarTree(benchmark::State& state) {
  RunInferenceScalar(state, Inference().tree);
}
BENCHMARK(BM_InferenceScalarTree);
void BM_InferenceBatchTree(benchmark::State& state) {
  RunInferenceBatch(state, Inference().tree);
}
BENCHMARK(BM_InferenceBatchTree);

void BM_InferenceScalarForest(benchmark::State& state) {
  RunInferenceScalar(state, Inference().forest);
}
BENCHMARK(BM_InferenceScalarForest);
void BM_InferenceBatchForest(benchmark::State& state) {
  RunInferenceBatch(state, Inference().forest);
}
BENCHMARK(BM_InferenceBatchForest);

void BM_InferenceScalarGbdt(benchmark::State& state) {
  RunInferenceScalar(state, Inference().gbdt);
}
BENCHMARK(BM_InferenceScalarGbdt);
void BM_InferenceBatchGbdt(benchmark::State& state) {
  RunInferenceBatch(state, Inference().gbdt);
}
BENCHMARK(BM_InferenceBatchGbdt);

void BM_InferenceScalarMlp(benchmark::State& state) {
  RunInferenceScalar(state, Inference().mlp);
}
BENCHMARK(BM_InferenceScalarMlp);
void BM_InferenceBatchMlp(benchmark::State& state) {
  RunInferenceBatch(state, Inference().mlp);
}
BENCHMARK(BM_InferenceBatchMlp);

// Large-ensemble fixture, past the compact_min_total_nodes L2 gate, shared
// by the *Large layout benchmarks below. Like the other fixtures it is
// built lazily on first use, so filtered runs that never touch these
// benchmarks (scripts/check.sh's --benchmark_filter='Inference' TSan pass
// in particular) start fast and never pay the multi-second ensemble fits.
struct LargeEnsembleFixture {
  static constexpr size_t kRows = 4096;
  static constexpr size_t kDim = 12;

  std::vector<std::vector<double>> rows;
  FeatureMatrix matrix{kDim};
  RandomForest soa_forest;      // ConfigureCompact(SIZE_MAX): SoA arrays
  RandomForest compact_forest;  // ConfigureCompact(0): quantized arenas
  GradientBoostedTrees soa_gbdt;
  GradientBoostedTrees compact_gbdt;

  LargeEnsembleFixture() {
    Rng rng(515);
    std::vector<double> targets;
    matrix.Reserve(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      std::vector<double> row(kDim);
      for (double& v : row) v = rng.UniformDouble(-2.0, 2.0);
      double y = row[0] * 2.0 - row[3] * row[1] + std::sin(row[4]) +
                 rng.Gaussian(0.0, 0.1);
      targets.push_back(y);
      matrix.AddRow(row);
      rows.push_back(std::move(row));
    }
    ForestOptions forest_options;
    forest_options.num_trees = 64;
    soa_forest = RandomForest(forest_options);
    soa_forest.Fit(rows, targets);
    compact_forest = soa_forest;
    soa_forest.ConfigureCompact(SIZE_MAX);
    compact_forest.ConfigureCompact(0);

    GbdtOptions gbdt_options;
    gbdt_options.num_trees = 96;
    gbdt_options.tree.max_depth = 8;  // past the cache-resident node gate
    soa_gbdt = GradientBoostedTrees(gbdt_options);
    soa_gbdt.Fit(rows, targets);
    compact_gbdt = soa_gbdt;
    soa_gbdt.ConfigureCompact(SIZE_MAX);
    compact_gbdt.ConfigureCompact(0);

    // Layout-identity gate: the two layouts of the same fitted model must
    // produce the same bits on every row.
    std::vector<double> a(kRows), b(kRows);
    soa_forest.PredictBatch(matrix, a);
    compact_forest.PredictBatch(matrix, b);
    for (size_t r = 0; r < kRows; ++r) {
      LQO_CHECK_EQ(a[r], b[r]) << "forest: compact layout diverges at row "
                               << r;
    }
    soa_gbdt.PredictBatch(matrix, a);
    compact_gbdt.PredictBatch(matrix, b);
    for (size_t r = 0; r < kRows; ++r) {
      LQO_CHECK_EQ(a[r], b[r]) << "gbdt: compact layout diverges at row "
                               << r;
    }
  }
};

LargeEnsembleFixture& LargeEnsemble() {
  static LargeEnsembleFixture* fixture = new LargeEnsembleFixture();
  return *fixture;
}

template <typename Model>
void RunLayoutBatch(benchmark::State& state, const Model& model) {
  LargeEnsembleFixture& f = LargeEnsemble();
  std::vector<double> out(LargeEnsembleFixture::kRows);
  for (auto _ : state) {
    model.PredictBatch(f.matrix, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(LargeEnsembleFixture::kRows));
}

void BM_SoaForestLarge(benchmark::State& state) {
  RunLayoutBatch(state, LargeEnsemble().soa_forest);
}
BENCHMARK(BM_SoaForestLarge);
void BM_CompactForestLarge(benchmark::State& state) {
  RunLayoutBatch(state, LargeEnsemble().compact_forest);
}
BENCHMARK(BM_CompactForestLarge);

void BM_SoaGbdtLarge(benchmark::State& state) {
  RunLayoutBatch(state, LargeEnsemble().soa_gbdt);
}
BENCHMARK(BM_SoaGbdtLarge);
void BM_CompactGbdtLarge(benchmark::State& state) {
  RunLayoutBatch(state, LargeEnsemble().compact_gbdt);
}
BENCHMARK(BM_CompactGbdtLarge);

// Selection-vector kernel fixture: one 64k-row int64 column plus a
// half-density input selection. The constructor CHECK-fails if any kernel
// disagrees with per-row Predicate::Matches, so every run of this binary
// (including scripts/check.sh's filtered TSan pass) doubles as a kernel
// correctness gate.
struct KernelFixture {
  static constexpr uint32_t kRows = 1u << 16;

  std::vector<int64_t> col;
  std::vector<uint32_t> half_sel;             // every other row
  std::vector<int64_t> in_values;             // sorted-unique IN list
  std::vector<uint32_t> out =
      std::vector<uint32_t>(kRows);           // kernel output scratch

  KernelFixture() {
    Rng rng(77);
    col.reserve(kRows);
    for (uint32_t r = 0; r < kRows; ++r) col.push_back(rng.UniformInt(0, 999));
    for (uint32_t r = 0; r < kRows; r += 2) half_sel.push_back(r);
    in_values = {3, 17, 96, 204, 305, 401, 477, 508};

    Predicate range = Predicate::Range(0, "c", 100, 600);
    Predicate eq = Predicate::Equals(0, "c", 42);
    Predicate in = Predicate::In(0, "c", in_values);
    auto reference = [&](const Predicate& p, const uint32_t* sel,
                         size_t count) {
      std::vector<uint32_t> survivors;
      for (size_t i = 0; i < count; ++i) {
        uint32_t r = sel == nullptr ? static_cast<uint32_t>(i)
                                    : sel[i];
        if (p.Matches(col[r])) survivors.push_back(r);
      }
      return survivors;
    };
    auto check = [&](const char* name, const Predicate& p) {
      size_t n = FilterDense(p, col.data(), 0, kRows, out.data());
      std::vector<uint32_t> expect = reference(p, nullptr, kRows);
      LQO_CHECK_EQ(n, expect.size()) << name << " dense count";
      for (size_t i = 0; i < n; ++i) {
        LQO_CHECK_EQ(out[i], expect[i]) << name << " dense row " << i;
      }
      n = FilterSel(p, col.data(), half_sel.data(), half_sel.size(),
                    out.data());
      expect = reference(p, half_sel.data(), half_sel.size());
      LQO_CHECK_EQ(n, expect.size()) << name << " sel count";
      for (size_t i = 0; i < n; ++i) {
        LQO_CHECK_EQ(out[i], expect[i]) << name << " sel row " << i;
      }
    };
    check("range", range);
    check("eq", eq);
    check("in", in);

    // Per-ISA-level bit-equality at odd batch sizes: every supported SIMD
    // level must agree with the scalar reference table on sizes that leave
    // 1/3/... row remainder tails after the 2/4/8-row lane groups. Guards
    // the dispatch layer itself, not just whichever level is active.
    const simd::KernelTable& ref = simd::KernelsFor(simd::Level::kScalar);
    std::vector<uint32_t> expect(kRows);
    for (uint32_t n : {1u, 1023u, 1025u, 8193u, kRows}) {
      for (simd::Level level : simd::SupportedLevels()) {
        const simd::KernelTable& kt = simd::KernelsFor(level);
        auto check_isa = [&](const char* name, size_t want, size_t got) {
          LQO_CHECK_EQ(want, got)
              << name << " count, level=" << simd::LevelName(level)
              << " n=" << n;
          for (size_t i = 0; i < want; ++i) {
            LQO_CHECK_EQ(expect[i], out[i])
                << name << " row " << i
                << ", level=" << simd::LevelName(level) << " n=" << n;
          }
        };
        check_isa("eq",
                  ref.filter_eq_dense(col.data(), 0, n, 42, expect.data()),
                  kt.filter_eq_dense(col.data(), 0, n, 42, out.data()));
        check_isa(
            "range",
            ref.filter_range_dense(col.data(), 0, n, 100, 600, expect.data()),
            kt.filter_range_dense(col.data(), 0, n, 100, 600, out.data()));
        check_isa("in",
                  ref.filter_in_dense(col.data(), 0, n, in_values.data(),
                                      in_values.size(), expect.data()),
                  kt.filter_in_dense(col.data(), 0, n, in_values.data(),
                                     in_values.size(), out.data()));
        size_t sel_count = std::min<size_t>(half_sel.size(), n / 2 + 1);
        check_isa("range_sel",
                  ref.filter_range_sel(col.data(), half_sel.data(), sel_count,
                                       100, 600, expect.data()),
                  kt.filter_range_sel(col.data(), half_sel.data(), sel_count,
                                      100, 600, out.data()));
      }
    }
  }
};

KernelFixture& Kernels() {
  static KernelFixture* fixture = new KernelFixture();
  return *fixture;
}

void BM_KernelFilterRangeDense(benchmark::State& state) {
  KernelFixture& f = Kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterRangeDense(
        f.col.data(), 0, KernelFixture::kRows, 100, 600, f.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * KernelFixture::kRows);
}
BENCHMARK(BM_KernelFilterRangeDense);

// Branchy tuple-at-a-time reference for the range kernel: what the scalar
// executor path pays per row, for a direct rows/s comparison in the table.
void BM_KernelFilterRangeScalarRef(benchmark::State& state) {
  KernelFixture& f = Kernels();
  for (auto _ : state) {
    size_t n = 0;
    for (uint32_t r = 0; r < KernelFixture::kRows; ++r) {
      if (f.col[r] >= 100 && f.col[r] <= 600) f.out[n++] = r;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * KernelFixture::kRows);
}
BENCHMARK(BM_KernelFilterRangeScalarRef);

// Same kernels pinned to the scalar ISA level (bypassing dispatch), so the
// report shows the active SIMD level's margin directly:
// BM_KernelFilter*Dense (dispatched) vs BM_KernelFilter*DenseScalarIsa.
void BM_KernelFilterRangeDenseScalarIsa(benchmark::State& state) {
  KernelFixture& f = Kernels();
  const simd::KernelTable& kt = simd::KernelsFor(simd::Level::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kt.filter_range_dense(
        f.col.data(), 0, KernelFixture::kRows, 100, 600, f.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * KernelFixture::kRows);
}
BENCHMARK(BM_KernelFilterRangeDenseScalarIsa);

void BM_KernelFilterEqDense(benchmark::State& state) {
  KernelFixture& f = Kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterEqDense(
        f.col.data(), 0, KernelFixture::kRows, 42, f.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * KernelFixture::kRows);
}
BENCHMARK(BM_KernelFilterEqDense);

void BM_KernelFilterEqDenseScalarIsa(benchmark::State& state) {
  KernelFixture& f = Kernels();
  const simd::KernelTable& kt = simd::KernelsFor(simd::Level::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kt.filter_eq_dense(
        f.col.data(), 0, KernelFixture::kRows, 42, f.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * KernelFixture::kRows);
}
BENCHMARK(BM_KernelFilterEqDenseScalarIsa);

void BM_KernelFilterInDense(benchmark::State& state) {
  KernelFixture& f = Kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterInDense(f.col.data(), 0,
                                           KernelFixture::kRows, f.in_values,
                                           f.out.data()));
  }
  state.SetItemsProcessed(state.iterations() * KernelFixture::kRows);
}
BENCHMARK(BM_KernelFilterInDense);

void BM_KernelFilterRangeSel(benchmark::State& state) {
  KernelFixture& f = Kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterRangeSel(f.col.data(), f.half_sel.data(),
                                            f.half_sel.size(), 100, 600,
                                            f.out.data()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.half_sel.size()));
}
BENCHMARK(BM_KernelFilterRangeSel);

void BM_KernelGatherAppend(benchmark::State& state) {
  KernelFixture& f = Kernels();
  size_t n = FilterRangeDense(f.col.data(), 0, KernelFixture::kRows, 100, 600,
                              f.out.data());
  std::vector<int64_t> gathered;
  for (auto _ : state) {
    gathered.clear();
    GatherAppend(f.col.data(), f.out.data(), n, &gathered);
    benchmark::DoNotOptimize(gathered.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelGatherAppend);

void BM_PlanFeaturize(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  PhysicalPlan plan =
      f.lab->optimizer->Optimize(f.workload.queries[0], &cards).plan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanFeaturizer::Featurize(plan));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanFeaturize);

}  // namespace
}  // namespace lqo

BENCHMARK_MAIN();
