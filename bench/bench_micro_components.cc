// Microbenchmarks (google-benchmark): per-component latencies that frame
// the system-level experiments — estimator inference cost, DP planning
// cost, executor throughput and plan featurization. Every benchmark also
// reports items/sec (one query/plan per iteration), so parallel speedups
// read directly as throughput deltas in the output table.

#include <benchmark/benchmark.h>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "costmodel/plan_featurizer.h"
#include "query/workload.h"

namespace lqo {
namespace {

struct MicroFixture {
  std::unique_ptr<Lab> lab;
  Workload workload;
  std::unique_ptr<DataDrivenEstimator> spn;

  MicroFixture() {
    lab = MakeLab("stats_lite", 0.05);
    WorkloadOptions wopts;
    wopts.num_queries = 20;
    wopts.min_tables = 2;
    wopts.max_tables = 4;
    wopts.seed = 111;
    workload = GenerateWorkload(lab->catalog, wopts);
    spn = std::make_unique<DataDrivenEstimator>(
        "deepdb_spn", &lab->catalog, &lab->stats,
        JoinCombineMode::kIndependence);
    spn->Build();
  }
};

MicroFixture& Fixture() {
  static MicroFixture* fixture = new MicroFixture();
  return *fixture;
}

void BM_BaselineEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(
        f.lab->estimator->EstimateSubquery(Subquery{&q, q.AllTables()}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineEstimate);

void BM_SpnEstimate(benchmark::State& state) {
  MicroFixture& f = Fixture();
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(
        f.spn->EstimateSubquery(Subquery{&q, q.AllTables()}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpnEstimate);

void BM_DpPlanning(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = f.workload.queries[i++ % f.workload.queries.size()];
    benchmark::DoNotOptimize(f.lab->optimizer->Optimize(q, &cards));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpPlanning);

void BM_ExecuteNativePlan(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  std::vector<PhysicalPlan> plans;
  for (const Query& q : f.workload.queries) {
    plans.push_back(f.lab->optimizer->Optimize(q, &cards).plan);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.lab->executor->Execute(plans[i++ % plans.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteNativePlan);

void BM_PlanFeaturize(benchmark::State& state) {
  MicroFixture& f = Fixture();
  CardinalityProvider cards(f.lab->estimator.get());
  PhysicalPlan plan =
      f.lab->optimizer->Optimize(f.workload.queries[0], &cards).plan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanFeaturizer::Featurize(plan));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanFeaturize);

}  // namespace
}  // namespace lqo

BENCHMARK_MAIN();
