// Serving front end experiment: replays thousands of in-flight sessions
// through the query-type plan cache (src/serving) against every optimizer
// family and reports p50/p95/p99 plan+execute latency, cache hit rate,
// re-optimization counts and the warm-cache-vs-optimize-every-query
// speedup as BENCH_serving.json.
//
// Two hard checks ride along:
//  - determinism: the replay's fingerprint (per-query types, flags, row
//    counts, bit-cast time_units, cache-stats delta) is identical at
//    LQO_THREADS 1/2/8 — run only this site with --determinism-only (the
//    check.sh TSan stage does);
//  - throughput: warm-cache serving must be >= 3x the optimize-every-query
//    baseline for the native DP producer (compiled out under sanitizers,
//    like the BENCH_vectorized gates).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "common/logging.h"
#include "common/stats_util.h"
#include "common/thread_pool.h"
#include "e2e/bao.h"
#include "e2e/hyperqo.h"
#include "e2e/leon.h"
#include "e2e/lero.h"
#include "e2e/neo.h"
#include "query/workload.h"
#include "serving/front_end.h"
#include "serving/plan_cache.h"
#include "serving/session_driver.h"

// Sanitized builds run an order of magnitude slower with skewed ratios, so
// the throughput gate only arms in plain builds; the determinism site
// always runs.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define LQO_BENCH_SANITIZED 1
#endif
#endif
#if !defined(LQO_BENCH_SANITIZED) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define LQO_BENCH_SANITIZED 1
#endif
#ifndef LQO_BENCH_SANITIZED
#define LQO_BENCH_SANITIZED 0
#endif

namespace lqo {
namespace {

struct Latencies {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Latencies LatenciesOf(const std::vector<double>& seconds) {
  Latencies l;
  l.p50 = Quantile(seconds, 0.50);
  l.p95 = Quantile(seconds, 0.95);
  l.p99 = Quantile(seconds, 0.99);
  return l;
}

// Keeps only the predicates on the first two query tables. With 10+ chain
// tables each carrying predicates the 200-row joins annihilate every row
// (observed counts pin at 0 and the drift detector has no signal); two
// predicate sites keep results non-empty and binding-dependent.
Query TrimPredicates(const Query& query) {
  Query trimmed;
  for (const QueryTable& t : query.tables())
    trimmed.AddTable(t.table_name, t.alias);
  for (const QueryJoin& j : query.joins())
    trimmed.AddJoin(j.left_table, j.left_column, j.right_table,
                    j.right_column);
  for (const Predicate& p : query.predicates())
    if (p.table_index < 2) trimmed.AddPredicate(p);
  return trimmed;
}

std::vector<Query> MakeTemplates(const Lab& lab, int count) {
  WorkloadOptions wopts;
  wopts.num_queries = count;
  // 10-12-way joins over the small chain schema: DP planning costs ~10x the
  // execution (measured ~400us vs ~40us single-core), the regime where plan
  // caching pays — the serving analogue of OLTP point traffic under a big
  // schema. Predicates are range-only (equality on a Zipf column swings
  // selectivity by 50x binding-to-binding, which reads as drift to the
  // q-error detector even in steady traffic).
  wopts.min_tables = 10;
  wopts.max_tables = 12;
  wopts.equality_prob = 0.0;
  wopts.in_prob = 0.0;
  wopts.seed = 77;
  std::vector<Query> templates = GenerateWorkload(lab.catalog, wopts).queries;
  for (Query& q : templates) q = TrimPredicates(q);
  return templates;
}

// One optimizer family wired for serving: the producer plus the state
// backing it (owned here so families are constructed fresh per use).
struct Family {
  std::string name;
  std::unique_ptr<LearnedQueryOptimizer> optimizer;  // null for native
  std::unique_ptr<PlanProducer> producer;
};

Family MakeFamily(const std::string& name, const E2eContext& context,
                  const Workload& train, const Executor& executor) {
  Family f;
  f.name = name;
  if (name == "native") {
    f.producer = std::make_unique<NativePlanProducer>(&context);
    return f;
  }
  if (name == "bao") {
    f.optimizer = std::make_unique<BaoOptimizer>(context);
  } else if (name == "lero") {
    f.optimizer = std::make_unique<LeroOptimizer>(context);
  } else if (name == "neo") {
    f.optimizer = std::make_unique<NeoOptimizer>(context);
  } else if (name == "balsa") {
    f.optimizer = std::make_unique<BalsaOptimizer>(context, train.queries);
  } else if (name == "hyperqo") {
    f.optimizer = std::make_unique<HyperQoOptimizer>(context);
  } else if (name == "leon") {
    f.optimizer = std::make_unique<LeonOptimizer>(context);
  } else {
    LQO_CHECK(false) << "unknown family " << name;
  }
  TrainLearnedOptimizer(f.optimizer.get(), train, executor);
  f.producer =
      std::make_unique<LearnedOptimizerPlanProducer>(f.optimizer.get());
  return f;
}

// --- determinism site ------------------------------------------------------

// Replays the full scenario mix (steady traffic + mid-run drift + sensitive
// templates) at each thread count with a fresh cache and freshly trained
// producer, and requires bit-identical fingerprints. Training itself is
// thread-count-invariant (enforced elsewhere), so rebuilding the family per
// count keeps runs independent without losing comparability.
bool RunDeterminismSite(const Lab& lab, const std::vector<Query>& templates,
                        const Workload& train) {
  SessionDriverOptions sopts;
  sopts.sessions = 32;
  sopts.rounds = 10;
  sopts.seed = 404;
  sopts.drift_round = 5;
  sopts.drift_widen = 0.02;
  sopts.sensitive_fraction = 0.15;
  const std::vector<Query> queries =
      BuildSessionQueries(lab.catalog, templates, sopts);

  bool all_ok = true;
  for (const std::string family_name : {"native", "bao"}) {
    uint64_t first_fp = 0;
    bool have_first = false;
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetGlobalThreads(threads);
      E2eContext context = lab.Context();
      Family family =
          MakeFamily(family_name, context, train, *lab.executor);
      PlanCache cache;
      ServingFrontEnd front_end(&cache, family.producer.get(),
                                lab.executor.get());
      SessionReport report = DriveSessions(front_end, queries, sopts);
      std::fprintf(stderr,
                   "  determinism %-6s %d threads: fp=%016llx hits=%llu "
                   "inval=%llu demo=%llu\n",
                   family_name.c_str(), threads,
                   static_cast<unsigned long long>(report.fingerprint),
                   static_cast<unsigned long long>(report.cache_hits),
                   static_cast<unsigned long long>(report.invalidations),
                   static_cast<unsigned long long>(report.demotions));
      if (!have_first) {
        first_fp = report.fingerprint;
        have_first = true;
      } else if (report.fingerprint != first_fp) {
        std::fprintf(stderr, "  NONDETERMINISTIC serving fingerprint (%s)\n",
                     family_name.c_str());
        all_ok = false;
      }
    }
  }
  ThreadPool::SetGlobalThreads(ThreadPool::ParseThreadCount(nullptr));
  return all_ok;
}

// --- per-family serving measurement ---------------------------------------

struct FamilyReport {
  std::string name;
  SessionReport cold;
  SessionReport warm;
  SessionReport baseline;  // optimize-every-query (null cache)
  Latencies cold_lat;
  Latencies warm_lat;
  Latencies baseline_lat;
  uint64_t drift_invalidations = 0;
  uint64_t sensitive_demotions = 0;

  double Speedup() const {
    return baseline.Throughput() > 0.0
               ? warm.Throughput() / baseline.Throughput()
               : 0.0;
  }
};

FamilyReport RunFamily(const Lab& lab, const std::string& name,
                       const std::vector<Query>& templates,
                       const Workload& train) {
  E2eContext context = lab.Context();
  Family family = MakeFamily(name, context, train, *lab.executor);

  // Steady traffic: the same type population cold, then warm, then with the
  // cache disabled. Per-scenario query matrices are identical, so the only
  // variable is the cache state.
  SessionDriverOptions steady;
  steady.sessions = 64;
  steady.rounds = 16;
  steady.seed = 505;
  const std::vector<Query> steady_queries =
      BuildSessionQueries(lab.catalog, templates, steady);

  FamilyReport report;
  report.name = name;
  {
    PlanCache cache;
    ServingFrontEnd front_end(&cache, family.producer.get(),
                              lab.executor.get());
    report.cold = DriveSessions(front_end, steady_queries, steady);
    report.warm = DriveSessions(front_end, steady_queries, steady);
  }
  {
    ServingFrontEnd baseline_fe(nullptr, family.producer.get(),
                                lab.executor.get());
    report.baseline = DriveSessions(baseline_fe, steady_queries, steady);
  }
  report.cold_lat = LatenciesOf(report.cold.serve_seconds);
  report.warm_lat = LatenciesOf(report.warm.serve_seconds);
  report.baseline_lat = LatenciesOf(report.baseline.serve_seconds);

  // Drift scenario: constants tighten to near-points mid-run, so observed
  // cardinalities crater below the install-time estimates; the q-error /
  // latency drift detector must re-optimize.
  SessionDriverOptions drift = steady;
  drift.sessions = 32;
  drift.rounds = 12;
  drift.seed = 606;
  drift.drift_round = 6;
  drift.drift_widen = 0.02;
  {
    PlanCache cache;
    ServingFrontEnd front_end(&cache, family.producer.get(),
                              lab.executor.get());
    SessionReport r = DriveSessions(
        front_end, BuildSessionQueries(lab.catalog, templates, drift), drift);
    report.drift_invalidations = r.invalidations;
  }

  // Sensitivity scenario: the two hottest templates alternate tight/wide
  // bindings, so no installed plan's estimate survives; enough rounds for
  // re-optimization churn to cross max_reoptimizations and demote them.
  SessionDriverOptions sensitive = steady;
  sensitive.sessions = 32;
  sensitive.rounds = 24;
  sensitive.seed = 707;
  sensitive.sensitive_fraction = 0.125;
  {
    PlanCache cache;
    ServingFrontEnd front_end(&cache, family.producer.get(),
                              lab.executor.get());
    SessionReport r = DriveSessions(
        front_end, BuildSessionQueries(lab.catalog, templates, sensitive),
        sensitive);
    report.sensitive_demotions = r.demotions;
  }

  std::fprintf(
      stderr,
      "  %-8s warm hit=%.3f (inval=%llu demo=%llu) q/s cold=%7.0f "
      "warm=%7.0f every-q=%7.0f speedup=%5.2fx drift-inval=%llu "
      "sens-demo=%llu\n",
      name.c_str(), report.warm.HitRate(),
      static_cast<unsigned long long>(report.warm.invalidations),
      static_cast<unsigned long long>(report.warm.demotions),
      report.cold.Throughput(), report.warm.Throughput(),
      report.baseline.Throughput(), report.Speedup(),
      static_cast<unsigned long long>(report.drift_invalidations),
      static_cast<unsigned long long>(report.sensitive_demotions));
  return report;
}

void WriteJson(const std::vector<FamilyReport>& reports, bool deterministic) {
  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"families\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const FamilyReport& r = reports[i];
    auto lat = [&](const char* key, const Latencies& l,
                   const SessionReport& s, bool last = false) {
      json << "      \"" << key << "\": {\"p50_us\": " << l.p50 * 1e6
           << ", \"p95_us\": " << l.p95 * 1e6
           << ", \"p99_us\": " << l.p99 * 1e6
           << ", \"hit_rate\": " << s.HitRate()
           << ", \"queries_per_sec\": " << s.Throughput() << "}"
           << (last ? "\n" : ",\n");
    };
    json << "    {\"name\": \"" << r.name << "\",\n";
    lat("cold", r.cold_lat, r.cold);
    lat("warm", r.warm_lat, r.warm);
    lat("optimize_every_query", r.baseline_lat, r.baseline);
    json << "      \"warm_speedup_vs_optimize_every_query\": " << r.Speedup()
         << ",\n      \"drift_invalidations\": " << r.drift_invalidations
         << ",\n      \"sensitive_demotions\": " << r.sensitive_demotions
         << "}" << (i + 1 < reports.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";
  json.close();
  std::fprintf(stderr, "wrote BENCH_serving.json\n");
}

int Run(bool determinism_only) {
  std::fprintf(stderr, "bench_serving (sanitized=%d)\n",
               static_cast<int>(LQO_BENCH_SANITIZED));
  auto lab = MakeLabFromCatalog(MakeChainSchema(12, 200, 42));
  const std::vector<Query> templates = MakeTemplates(*lab, 16);

  WorkloadOptions topts;
  topts.num_queries = 30;
  topts.min_tables = 2;
  topts.max_tables = 4;
  topts.seed = 88;
  Workload train = GenerateWorkload(lab->catalog, topts);

  const bool deterministic = RunDeterminismSite(*lab, templates, train);
  if (determinism_only) {
    std::fprintf(stderr, "determinism-only mode: %s\n",
                 deterministic ? "ok" : "FAILED");
    return deterministic ? 0 : 1;
  }

  std::vector<FamilyReport> reports;
  for (const std::string name :
       {"native", "bao", "lero", "neo", "balsa", "hyperqo", "leon"}) {
    reports.push_back(RunFamily(*lab, name, templates, train));
  }
  WriteJson(reports, deterministic);

  bool ok = deterministic;
#if !LQO_BENCH_SANITIZED
  // The serving promise in one number: with a warm cache the native DP
  // producer's planning cost is amortized away, so throughput must be at
  // least 3x the optimize-every-query baseline.
  for (const FamilyReport& r : reports) {
    if (r.name != "native") continue;
    if (r.Speedup() < 3.0) {
      std::fprintf(stderr,
                   "FAIL: native warm-cache speedup %.2fx < 3x the "
                   "optimize-every-query baseline\n",
                   r.Speedup());
      ok = false;
    }
    if (r.warm.HitRate() < 0.9) {
      std::fprintf(stderr, "FAIL: native warm hit rate %.3f < 0.9\n",
                   r.warm.HitRate());
      ok = false;
    }
  }
#endif
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lqo

int main(int argc, char** argv) {
  bool determinism_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--determinism-only") == 0) {
      determinism_only = true;
    }
  }
  return lqo::Run(determinism_only);
}
