// E7 — reproduces the Eraser evaluation [62]: per-query regressions of
// each learned optimizer before/after deploying the Eraser plugin, and how
// much of the overall improvement survives.

#include <cstdio>
#include <memory>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "e2e/bao.h"
#include "e2e/lero.h"
#include "e2e/neo.h"
#include "regression/eraser.h"

namespace lqo {
namespace {

void Run() {
  std::printf("== E7: eliminating performance regression with an "
              "Eraser-style plugin (dataset: stats_lite) ==\n\n");
  auto lab = MakeLab("stats_lite", 0.1);
  WorkloadOptions wopts;
  wopts.num_queries = 45;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = 71;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 72;
  wopts.num_queries = 30;
  Workload test = GenerateWorkload(lab->catalog, wopts);

  TablePrinter table({"Optimizer", "speedup", "losses", "worst regr",
                      "fallbacks"});

  auto run_pair = [&](std::unique_ptr<LearnedQueryOptimizer> raw_optimizer,
                      std::unique_ptr<LearnedQueryOptimizer> inner) {
    // Raw run.
    TrainLearnedOptimizer(raw_optimizer.get(), train, *lab->executor);
    E2eEvalResult raw = EvaluateLearnedOptimizer(
        raw_optimizer.get(), lab->Context(), test, *lab->executor);
    table.AddRow({raw.name, FormatDouble(raw.Speedup(), 4),
                  std::to_string(raw.losses),
                  FormatDouble(raw.worst_regression_ratio, 4), "-"});
    // Guarded run (fresh inner optimizer; Eraser needs paired training).
    EraserGuard guard(lab->Context(), inner.get());
    TrainLearnedOptimizer(&guard, train, *lab->executor);
    E2eEvalResult guarded = EvaluateLearnedOptimizer(
        &guard, lab->Context(), test, *lab->executor);
    table.AddRow({guarded.name, FormatDouble(guarded.Speedup(), 4),
                  std::to_string(guarded.losses),
                  FormatDouble(guarded.worst_regression_ratio, 4),
                  std::to_string(guard.fallbacks())});
  };

  run_pair(std::make_unique<BaoOptimizer>(lab->Context()),
           std::make_unique<BaoOptimizer>(lab->Context()));
  run_pair(std::make_unique<LeroOptimizer>(lab->Context()),
           std::make_unique<LeroOptimizer>(lab->Context()));
  run_pair(std::make_unique<NeoOptimizer>(lab->Context()),
           std::make_unique<NeoOptimizer>(lab->Context()));

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape (Eraser [62]): the +eraser rows keep the speedup\n"
      "close to the raw rows while cutting the loss count and the worst\n"
      "regression toward 1.0 (fallbacks show how often the guard chose the\n"
      "native plan).\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
