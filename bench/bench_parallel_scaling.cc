// Parallel-scaling microbenchmark: wall-clock of each parallelized site at
// 1/2/4/N threads, emitted as BENCH_parallel.json so the perf trajectory of
// the execution substrate is tracked PR over PR. Each site also re-checks
// that its parallel result equals its serial result (the determinism
// contract), so a scaling regression can never hide a correctness one.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "costmodel/plan_featurizer.h"
#include "e2e/framework.h"
#include "ml/feature_cache.h"
#include "cardinality/data_driven.h"
#include "cardinality/evaluation.h"
#include "cardinality/spn_model.h"
#include "cardinality/training_data.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "e2e/lero.h"
#include "engine/executor.h"
#include "engine/simd.h"
#include "ml/chow_liu.h"
#include "ml/dataset.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/tree.h"
#include "query/workload.h"
#include "storage/datasets.h"

// Sanitized builds (check.sh runs this bench under TSan) are an order of
// magnitude slower and skew scalar/vectorized ratios, so the throughput
// gates below only arm in plain builds; determinism and scalar-vs-
// vectorized equality checks always run.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define LQO_BENCH_SANITIZED 1
#endif
#endif
#if !defined(LQO_BENCH_SANITIZED) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define LQO_BENCH_SANITIZED 1
#endif
#ifndef LQO_BENCH_SANITIZED
#define LQO_BENCH_SANITIZED 0
#endif

namespace lqo {
namespace {

double SecondsOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

struct SiteReport {
  std::string name;
  std::vector<std::pair<int, double>> seconds_at;  // (threads, seconds)
  bool deterministic = true;

  double SpeedupAt(int threads) const {
    double t1 = 0.0, tn = 0.0;
    for (const auto& [t, s] : seconds_at) {
      if (t == 1) t1 = s;
      if (t == threads) tn = s;
    }
    return (t1 > 0.0 && tn > 0.0) ? t1 / tn : 0.0;
  }
};

/// Runs `work` (returning a comparable fingerprint) at each thread count.
template <typename Fn>
SiteReport RunSite(const std::string& name, const std::vector<int>& counts,
                   Fn&& work) {
  SiteReport report;
  report.name = name;
  decltype(work()) serial_result{};
  for (size_t i = 0; i < counts.size(); ++i) {
    ThreadPool::SetGlobalThreads(counts[i]);
    decltype(work()) result{};
    double secs = SecondsOf([&] { result = work(); });
    report.seconds_at.emplace_back(counts[i], secs);
    if (i == 0) {
      serial_result = result;
    } else if (result != serial_result) {
      report.deterministic = false;
    }
    std::fprintf(stderr, "  %-18s %2d threads  %8.3fs%s\n", name.c_str(),
                 counts[i], secs,
                 (i > 0 && result != serial_result) ? "  NONDETERMINISTIC!"
                                                    : "");
  }
  return report;
}

// Site 13 (also standalone via --simd-only): the explicit SIMD kernel layer
// of engine/simd.h. Three jobs:
//   1. Determinism fingerprint: scan/filter, hash-join, merge-join and NLJ
//      plans executed at every supported LQO_SIMD level x scalar/vectorized
//      path, folded into the RunSite fingerprint, which RunSite then sweeps
//      across thread counts — any bit divergence across the full
//      level x path x threads cube fails the bench.
//   2. Throughput A/B per kernel family (filter eq/range/in dense, join-key
//      hashing) at every supported level, plus executor-level A/Bs of the
//      real merge-join and block-NLJ paths, emitted as BENCH_simd.json.
//   3. Perf floor (plain builds only): the best SIMD level must beat the
//      scalar reference by >= 1.3x on each filter kernel family.
void RunSimdKernelsSite(const std::vector<int>& counts, int hw,
                        std::vector<SiteReport>* reports) {
  simd::Level entry_level = simd::ActiveLevel();
  std::vector<simd::Level> levels = simd::SupportedLevels();
  std::fprintf(stderr, "  simd_kernels: entry level %s, supported",
               simd::LevelName(entry_level));
  for (simd::Level l : levels) {
    std::fprintf(stderr, " %s", simd::LevelName(l));
  }
  std::fprintf(stderr, "\n");

  // fact(262144 rows) x dim(2048 rows): scan, hash-join and (under the 2^20
  // gate) merge-join workloads. outer(1800) x inner(2000) stays under the
  // 2^22-pair gate so the NLJ-declared plan takes the real block path.
  constexpr uint32_t kFactRows = 1u << 18;
  Catalog fcat;
  {
    Rng rng(101);
    TableBuilder builder("fact");
    builder.AddInt64Column("k");
    builder.AddInt64Column("v");
    for (uint32_t r = 0; r < kFactRows; ++r) {
      builder.AppendRow({rng.UniformInt(0, 511), rng.UniformInt(0, 999)});
    }
    LQO_CHECK(fcat.AddTable(builder.Build()).ok());
  }
  {
    Rng rng(102);
    TableBuilder builder("dim");
    builder.AddInt64Column("k");
    builder.AddInt64Column("w");
    for (uint32_t r = 0; r < 2048; ++r) {
      builder.AppendRow({rng.UniformInt(0, 511), rng.UniformInt(0, 99)});
    }
    LQO_CHECK(fcat.AddTable(builder.Build()).ok());
  }
  LQO_CHECK(fcat.AddJoinEdge({.left_table = "fact",
                              .left_column = "k",
                              .right_table = "dim",
                              .right_column = "k"})
                .ok());
  Catalog ncat;
  {
    Rng rng(103);
    TableBuilder builder("outer_t");
    builder.AddInt64Column("k");
    builder.AddInt64Column("v");
    for (uint32_t r = 0; r < 1800; ++r) {
      builder.AppendRow({rng.UniformInt(0, 127), rng.UniformInt(0, 999)});
    }
    LQO_CHECK(ncat.AddTable(builder.Build()).ok());
  }
  {
    Rng rng(104);
    TableBuilder builder("inner_t");
    builder.AddInt64Column("k");
    builder.AddInt64Column("w");
    for (uint32_t r = 0; r < 2000; ++r) {
      builder.AppendRow({rng.UniformInt(0, 127), rng.UniformInt(0, 99)});
    }
    LQO_CHECK(ncat.AddTable(builder.Build()).ok());
  }
  LQO_CHECK(ncat.AddJoinEdge({.left_table = "outer_t",
                              .left_column = "k",
                              .right_table = "inner_t",
                              .right_column = "k"})
                .ok());

  Executor fexec(&fcat);
  Executor nexec(&ncat);
  Query scan_q;
  scan_q.AddTable("fact");
  scan_q.AddPredicate(Predicate::Range(0, "v", 100, 600));
  scan_q.AddPredicate(
      Predicate::In(0, "k", {3, 17, 96, 204, 305, 401, 477, 508}));
  PhysicalPlan scan_plan;
  scan_plan.query = &scan_q;
  scan_plan.root = MakeScanNode(0);
  Query join_q;
  join_q.AddTable("fact");
  join_q.AddTable("dim");
  join_q.AddJoin(0, "k", 1, "k");
  PhysicalPlan hash_plan;
  hash_plan.query = &join_q;
  hash_plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                                MakeScanNode(1));
  PhysicalPlan merge_plan;
  merge_plan.query = &join_q;
  merge_plan.root = MakeJoinNode(JoinAlgorithm::kMergeJoin, MakeScanNode(0),
                                 MakeScanNode(1));
  Query nlj_q;
  nlj_q.AddTable("outer_t");
  nlj_q.AddTable("inner_t");
  nlj_q.AddJoin(0, "k", 1, "k");
  PhysicalPlan nlj_plan;
  nlj_plan.query = &nlj_q;
  nlj_plan.root = MakeJoinNode(JoinAlgorithm::kNestedLoopJoin,
                               MakeScanNode(0), MakeScanNode(1));

  auto result_fingerprint = [](const ExecutionResult& r) {
    double f = static_cast<double>(r.row_count) * 1e-3 + r.time_units;
    for (const NodeProfile& p : r.node_profiles) {
      f += static_cast<double>(p.left_rows + p.right_rows + p.output_rows +
                               p.build_collisions + p.probe_collisions) +
           static_cast<double>(p.partitions) + p.time_units;
    }
    return f;
  };

  // 1. Determinism cube: levels x scalar/vectorized inside the work
  // function, thread counts via RunSite.
  reports->push_back(RunSite("simd_kernels", counts, [&] {
    double fingerprint = 0.0;
    for (simd::Level level : levels) {
      simd::SetLevelForTest(level);
      for (bool vectorized : {false, true}) {
        fexec.set_vectorized(vectorized);
        nexec.set_vectorized(vectorized);
        for (const PhysicalPlan* plan :
             {&scan_plan, &hash_plan, &merge_plan}) {
          auto r = fexec.Execute(*plan);
          LQO_CHECK(r.ok());
          fingerprint += result_fingerprint(*r);
        }
        auto r = nexec.Execute(nlj_plan);
        LQO_CHECK(r.ok());
        fingerprint += result_fingerprint(*r);
      }
    }
    simd::SetLevelForTest(entry_level);
    fexec.set_vectorized(true);
    nexec.set_vectorized(true);
    return fingerprint;
  }));

  // 2. Throughput A/B. Kernel families run the per-level tables directly on
  // the fact table's columns (best-of-5 in-process, so the ratios are
  // stable on a noisy box); the join paths run whole plans.
  ThreadPool::SetGlobalThreads(hw);
  auto best_seconds = [](int reps, const std::function<void()>& fn) {
    double best = 1e100;
    for (int i = 0; i < reps; ++i) {
      double secs = SecondsOf(fn);
      if (secs < best) best = secs;
    }
    return best;
  };
  const Table& fact = **fcat.GetTable("fact");
  const int64_t* fact_k = fact.ColumnSpan(0).data();
  const int64_t* fact_v = fact.ColumnSpan(1).data();
  std::vector<uint32_t> out_sel(kFactRows);
  std::vector<uint64_t> hashes(kFactRows);
  const std::vector<int64_t> in_list = {3, 17, 96, 204, 305, 401, 477, 508};
  static volatile uint64_t simd_sink = 0;
  constexpr int kKernelPasses = 16;
  struct Family {
    const char* name;
    std::vector<double> rps;  // parallel to `levels`
  };
  std::vector<Family> families = {{"filter_eq", {}},
                                  {"filter_range", {}},
                                  {"filter_in", {}},
                                  {"join_hash", {}}};
  for (simd::Level level : levels) {
    const simd::KernelTable& kt = simd::KernelsFor(level);
    auto family_rps = [&](const std::function<void()>& pass) {
      double secs = best_seconds(5, [&] {
        for (int p = 0; p < kKernelPasses; ++p) pass();
      });
      return static_cast<double>(kFactRows) * kKernelPasses / secs;
    };
    families[0].rps.push_back(family_rps([&] {
      simd_sink = simd_sink + kt.filter_eq_dense(fact_v, 0, kFactRows, 42,
                                                 out_sel.data());
    }));
    families[1].rps.push_back(family_rps([&] {
      simd_sink = simd_sink + kt.filter_range_dense(fact_v, 0, kFactRows, 100,
                                                    600, out_sel.data());
    }));
    families[2].rps.push_back(family_rps([&] {
      simd_sink = simd_sink + kt.filter_in_dense(fact_k, 0, kFactRows,
                                                 in_list.data(),
                                                 in_list.size(),
                                                 out_sel.data());
    }));
    families[3].rps.push_back(family_rps([&] {
      std::fill(hashes.begin(), hashes.end(), 0);
      kt.hash_combine_column(hashes.data(), fact_k, 0, kFactRows);
      kt.hash_finalize(hashes.data(), 0, kFactRows);
      simd_sink = simd_sink + hashes[kFactRows - 1];
    }));
  }
  for (const Family& f : families) {
    std::fprintf(stderr, "  simd %-12s", f.name);
    for (size_t i = 0; i < levels.size(); ++i) {
      std::fprintf(stderr, "  %s %9.0f Mrows/s", simd::LevelName(levels[i]),
                   f.rps[i] / 1e6);
    }
    std::fprintf(stderr, "  (best %.2fx)\n",
                 *std::max_element(f.rps.begin(), f.rps.end()) / f.rps[0]);
  }

  // Executor-level A/Bs: merge join tuple-vs-vectorized path (the SIMD
  // level does not enter its comparisons), block NLJ per level (its inner
  // loop is the dispatched Eq kernel), both against the plan's total input.
  auto plan_rps = [&](Executor& ex, const PhysicalPlan& plan, double rows,
                      int passes) {
    double secs = best_seconds(3, [&] {
      for (int p = 0; p < passes; ++p) {
        auto r = ex.Execute(plan);
        LQO_CHECK(r.ok());
        simd_sink = simd_sink + r->row_count;
      }
    });
    return rows * passes / secs;
  };
  const double merge_rows = static_cast<double>(kFactRows) + 2048.0;
  const double nlj_pairs = 1800.0 * 2000.0;
  fexec.set_vectorized(false);
  double merge_tuple_rps = plan_rps(fexec, merge_plan, merge_rows, 2);
  fexec.set_vectorized(true);
  double merge_vec_rps = plan_rps(fexec, merge_plan, merge_rows, 2);
  std::fprintf(stderr,
               "  simd merge_join   tuple %9.0f Mrows/s  vectorized %9.0f "
               "Mrows/s  (%.2fx)\n",
               merge_tuple_rps / 1e6, merge_vec_rps / 1e6,
               merge_vec_rps / merge_tuple_rps);
  nexec.set_vectorized(false);
  double nlj_tuple_rps = plan_rps(nexec, nlj_plan, nlj_pairs, 2);
  nexec.set_vectorized(true);
  std::vector<double> nlj_rps;
  for (simd::Level level : levels) {
    simd::SetLevelForTest(level);
    nlj_rps.push_back(plan_rps(nexec, nlj_plan, nlj_pairs, 2));
  }
  simd::SetLevelForTest(entry_level);
  std::fprintf(stderr, "  simd nlj          tuple %9.0f Mpairs/s",
               nlj_tuple_rps / 1e6);
  for (size_t i = 0; i < levels.size(); ++i) {
    std::fprintf(stderr, "  %s %9.0f Mpairs/s", simd::LevelName(levels[i]),
                 nlj_rps[i] / 1e6);
  }
  std::fprintf(stderr, "\n");

  // 3. Perf floor + JSON.
  std::ofstream sjson("BENCH_simd.json");
  sjson << "{\n  \"entry_level\": \"" << simd::LevelName(entry_level)
        << "\",\n  \"supported_levels\": [";
  for (size_t i = 0; i < levels.size(); ++i) {
    sjson << (i ? ", " : "") << "\"" << simd::LevelName(levels[i]) << "\"";
  }
  sjson << "],\n  \"rows\": " << kFactRows << ",\n  \"families\": [\n";
  for (size_t fi = 0; fi < families.size(); ++fi) {
    const Family& f = families[fi];
    double best = *std::max_element(f.rps.begin(), f.rps.end());
    sjson << "    {\"name\": \"" << f.name << "\"";
    for (size_t i = 0; i < levels.size(); ++i) {
      sjson << ", \"" << simd::LevelName(levels[i])
            << "_rows_per_sec\": " << f.rps[i];
    }
    sjson << ", \"best_speedup\": " << best / f.rps[0] << "}"
          << (fi + 1 < families.size() ? "," : "") << "\n";
  }
  sjson << "  ],\n  \"merge_join\": {\"rows\": " << merge_rows
        << ", \"tuple_rows_per_sec\": " << merge_tuple_rps
        << ", \"vectorized_rows_per_sec\": " << merge_vec_rps
        << ", \"vectorized_speedup\": " << merge_vec_rps / merge_tuple_rps
        << "},\n  \"nested_loop_join\": {\"pairs\": " << nlj_pairs
        << ", \"tuple_pairs_per_sec\": " << nlj_tuple_rps;
  for (size_t i = 0; i < levels.size(); ++i) {
    sjson << ", \"" << simd::LevelName(levels[i])
          << "_pairs_per_sec\": " << nlj_rps[i];
  }
  sjson << ", \"best_speedup\": "
        << *std::max_element(nlj_rps.begin(), nlj_rps.end()) / nlj_rps[0]
        << "}\n}\n";
  sjson.close();
  std::fprintf(stderr, "wrote BENCH_simd.json\n");

#if !LQO_BENCH_SANITIZED
  // Perf floor from ISSUE 8: the best SIMD level must beat the scalar
  // reference by >= 1.3x on every filter kernel family. Only meaningful
  // when the CPU supports a non-scalar level; compiled out under TSan/ASan
  // where instrumentation skews the ratio.
  if (levels.size() > 1) {
    for (const Family& f : families) {
      if (std::string(f.name).rfind("filter_", 0) != 0) continue;
      double best = *std::max_element(f.rps.begin(), f.rps.end());
      LQO_CHECK(best >= 1.3 * f.rps[0])
          << "SIMD " << f.name << " below the 1.3x floor: best " << best
          << " rows/s vs scalar " << f.rps[0];
    }
  }
#endif
}

// Site 14 (also standalone via --agg-only): the late-materialization output
// pipeline (DESIGN.md "Late materialization & output pipeline"). Three jobs:
//   1. Determinism fingerprint: grouped aggregation over a scan, grouped
//      aggregation over a hash join (deferred row-id probe feeding the
//      sink), and a bare projection, executed at every supported LQO_SIMD
//      level x scalar/vectorized path. The fingerprint folds every output
//      value (FNV over output_cols), output_row_count and the
//      carried/materialized/groups profile counters, and RunSite sweeps it
//      across thread counts — any bit divergence across the full
//      level x path x threads cube fails the bench.
//   2. Throughput A/B scalar-vs-vectorized per pipeline shape, emitted as
//      BENCH_agg.json.
//   3. Perf floor (plain builds only): vectorized grouped aggregation must
//      beat the tuple-at-a-time reference by >= 1.5x.
void RunAggProjectionSite(const std::vector<int>& counts, int hw,
                          std::vector<SiteReport>* reports) {
  simd::Level entry_level = simd::ActiveLevel();
  std::vector<simd::Level> levels = simd::SupportedLevels();

  // fact(262144 rows; k in [0,511], v in [0,999]) x dim(2048 rows): 512
  // groups with ~512 rows each on the scan shape, and a fan-out join whose
  // probe output feeds the sink through deferred row ids.
  constexpr uint32_t kFactRows = 1u << 18;
  Catalog cat;
  {
    Rng rng(105);
    TableBuilder builder("fact");
    builder.AddInt64Column("k");
    builder.AddInt64Column("v");
    for (uint32_t r = 0; r < kFactRows; ++r) {
      builder.AppendRow({rng.UniformInt(0, 511), rng.UniformInt(0, 999)});
    }
    LQO_CHECK(cat.AddTable(builder.Build()).ok());
  }
  {
    Rng rng(106);
    TableBuilder builder("dim");
    builder.AddInt64Column("k");
    builder.AddInt64Column("w");
    for (uint32_t r = 0; r < 2048; ++r) {
      builder.AppendRow({rng.UniformInt(0, 511), rng.UniformInt(0, 99)});
    }
    LQO_CHECK(cat.AddTable(builder.Build()).ok());
  }
  LQO_CHECK(cat.AddJoinEdge({.left_table = "fact",
                             .left_column = "k",
                             .right_table = "dim",
                             .right_column = "k"})
                .ok());
  Executor exec(&cat);

  // Shape 1: grouped aggregation over a filtered scan (dense-range and
  // selection kernels both reachable depending on the filter).
  Query group_q;
  group_q.AddTable("fact");
  group_q.AddPredicate(Predicate::Range(0, "v", 50, 900));
  group_q.AddOutput(OutputExpr::Column(0, "k"));
  group_q.AddOutput(OutputExpr::CountStar());
  group_q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 0, "v"));
  group_q.AddOutput(OutputExpr::Aggregate(AggFunc::kMin, 0, "v"));
  group_q.AddOutput(OutputExpr::Aggregate(AggFunc::kMax, 0, "v"));
  group_q.AddOutput(OutputExpr::Aggregate(AggFunc::kAvg, 0, "v"));
  group_q.SetGroupBy(0, "k");
  PhysicalPlan group_plan;
  group_plan.query = &group_q;
  group_plan.root = MakeScanNode(0);

  // Shape 2: grouped aggregation over a hash join — the deferred row-id
  // probe output is gathered only at the sink.
  Query jgroup_q;
  jgroup_q.AddTable("fact");
  jgroup_q.AddTable("dim");
  jgroup_q.AddJoin(0, "k", 1, "k");
  jgroup_q.AddOutput(OutputExpr::Column(1, "w"));
  jgroup_q.AddOutput(OutputExpr::CountStar());
  jgroup_q.AddOutput(OutputExpr::Aggregate(AggFunc::kSum, 0, "v"));
  jgroup_q.AddOutput(OutputExpr::Aggregate(AggFunc::kMax, 0, "v"));
  jgroup_q.SetGroupBy(1, "w");
  PhysicalPlan jgroup_plan;
  jgroup_plan.query = &jgroup_q;
  jgroup_plan.root = MakeJoinNode(JoinAlgorithm::kHashJoin, MakeScanNode(0),
                                  MakeScanNode(1));

  // Shape 3: bare projection of a filtered scan (run-detected gathers).
  Query proj_q;
  proj_q.AddTable("fact");
  proj_q.AddPredicate(Predicate::Range(0, "v", 100, 600));
  proj_q.AddOutput(OutputExpr::Column(0, "v"));
  proj_q.AddOutput(OutputExpr::Column(0, "k"));
  PhysicalPlan proj_plan;
  proj_plan.query = &proj_q;
  proj_plan.root = MakeScanNode(0);

  // Folds every output value: a wrong gather, group id, or aggregate at any
  // level/path/thread count changes the fingerprint.
  auto output_fingerprint = [](const ExecutionResult& r) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (const std::vector<int64_t>& col : r.output_cols) {
      for (int64_t v : col) {
        h = (h ^ static_cast<uint64_t>(v)) * 0x100000001b3ull;
      }
    }
    double f = static_cast<double>(r.row_count) * 1e-3 +
               static_cast<double>(r.output_row_count) +
               static_cast<double>(h >> 11) * 1e-9;
    for (const NodeProfile& p : r.node_profiles) {
      f += static_cast<double>(p.output_rows + p.carried_columns +
                               p.materialized_values + p.groups) +
           p.time_units;
    }
    return f;
  };

  // 1. Determinism cube: levels x scalar/vectorized inside the work
  // function, thread counts via RunSite.
  reports->push_back(RunSite("agg_projection", counts, [&] {
    double fingerprint = 0.0;
    for (simd::Level level : levels) {
      simd::SetLevelForTest(level);
      for (bool vectorized : {false, true}) {
        exec.set_vectorized(vectorized);
        for (const PhysicalPlan* plan :
             {&group_plan, &jgroup_plan, &proj_plan}) {
          auto r = exec.Execute(*plan);
          LQO_CHECK(r.ok());
          fingerprint += output_fingerprint(*r);
        }
      }
    }
    simd::SetLevelForTest(entry_level);
    exec.set_vectorized(true);
    return fingerprint;
  }));

  // 2. Throughput A/B at full thread count, best-of-5.
  ThreadPool::SetGlobalThreads(hw);
  static volatile double agg_sink = 0.0;
  auto plan_rps = [&](const PhysicalPlan& plan, double rows, int passes) {
    double best = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      double secs = SecondsOf([&] {
        for (int p = 0; p < passes; ++p) {
          auto r = exec.Execute(plan);
          LQO_CHECK(r.ok());
          agg_sink = agg_sink + static_cast<double>(r->output_row_count);
        }
      });
      if (secs < best) best = secs;
    }
    return rows * passes / best;
  };
  struct ShapeAb {
    const char* name;
    const PhysicalPlan* plan;
    double rows;
    uint64_t output_rows = 0;
    double scalar_rps = 0.0;
    double vec_rps = 0.0;
  };
  std::vector<ShapeAb> shapes = {
      {"grouped_scan", &group_plan, static_cast<double>(kFactRows)},
      {"grouped_join", &jgroup_plan, static_cast<double>(kFactRows) + 2048.0},
      {"projection", &proj_plan, static_cast<double>(kFactRows)}};
  for (ShapeAb& s : shapes) {
    exec.set_vectorized(true);
    auto r = exec.Execute(*s.plan);
    LQO_CHECK(r.ok());
    s.output_rows = r->output_row_count;
    exec.set_vectorized(false);
    s.scalar_rps = plan_rps(*s.plan, s.rows, 5);
    exec.set_vectorized(true);
    s.vec_rps = plan_rps(*s.plan, s.rows, 5);
    std::fprintf(stderr,
                 "  agg %-13s scalar %12.0f rows/s  batch %12.0f rows/s  "
                 "(%.2fx; %llu output rows)\n",
                 s.name, s.scalar_rps, s.vec_rps, s.vec_rps / s.scalar_rps,
                 static_cast<unsigned long long>(s.output_rows));
  }

  // 3. JSON + perf floor.
  std::ofstream ajson("BENCH_agg.json");
  ajson << "{\n  \"rows\": " << kFactRows << ",\n  \"shapes\": [\n";
  for (size_t i = 0; i < shapes.size(); ++i) {
    const ShapeAb& s = shapes[i];
    ajson << "    {\"name\": \"" << s.name
          << "\", \"output_rows\": " << s.output_rows
          << ", \"scalar_rows_per_sec\": " << s.scalar_rps
          << ", \"vectorized_rows_per_sec\": " << s.vec_rps
          << ", \"vectorized_speedup\": " << s.vec_rps / s.scalar_rps << "}"
          << (i + 1 < shapes.size() ? "," : "") << "\n";
  }
  ajson << "  ]\n}\n";
  ajson.close();
  std::fprintf(stderr, "wrote BENCH_agg.json\n");

#if !LQO_BENCH_SANITIZED
  // Perf floor from ISSUE 10: vectorized grouped aggregation must beat the
  // tuple-at-a-time reference by >= 1.5x. Compiled out under TSan/ASan.
  for (const ShapeAb& s : shapes) {
    if (std::string(s.name) != "grouped_scan") continue;
    LQO_CHECK(s.vec_rps >= 1.5 * s.scalar_rps)
        << "vectorized grouped aggregation below the 1.5x floor: " << s.vec_rps
        << " rows/s vs scalar " << s.scalar_rps;
  }
#endif
}

std::vector<std::vector<double>> MakeMlRows(size_t n, size_t features,
                                            std::vector<double>* targets) {
  Rng rng(5);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  targets->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(features);
    double y = 0.0;
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.UniformDouble(-2.0, 2.0);
      y += (f % 2 == 0 ? 1.0 : -0.5) * row[f] * row[f];
    }
    rows.push_back(std::move(row));
    targets->push_back(y);
  }
  return rows;
}

}  // namespace
}  // namespace lqo

int main(int argc, char** argv) {
  using namespace lqo;

  int hw = ThreadPool::ParseThreadCount(nullptr);
  std::set<int> count_set = {1, 2, 4, hw};
  std::vector<int> counts(count_set.begin(), count_set.end());

  std::fprintf(stderr, "bench_parallel_scaling (hardware_concurrency=%d)\n",
               hw);

  // --simd-only: run just the simd_kernels site (scripts/check.sh uses this
  // to sweep LQO_SIMD settings without paying for the full suite).
  bool simd_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--simd-only") simd_only = true;
  }
  if (simd_only) {
    std::vector<SiteReport> simd_reports;
    RunSimdKernelsSite(counts, hw, &simd_reports);
    ThreadPool::SetGlobalThreads(hw);
    bool ok = true;
    for (const SiteReport& r : simd_reports) ok &= r.deterministic;
    std::fprintf(stderr, "simd_kernels only (%s)\n",
                 ok ? "deterministic" : "DETERMINISM VIOLATION");
    return ok ? 0 : 1;
  }

  // --agg-only: run just the agg_projection site (scripts/check.sh uses
  // this to gate the late-materialization output pipeline under TSan).
  bool agg_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--agg-only") agg_only = true;
  }
  if (agg_only) {
    std::vector<SiteReport> agg_reports;
    RunAggProjectionSite(counts, hw, &agg_reports);
    ThreadPool::SetGlobalThreads(hw);
    bool ok = true;
    for (const SiteReport& r : agg_reports) ok &= r.deterministic;
    std::fprintf(stderr, "agg_projection only (%s)\n",
                 ok ? "deterministic" : "DETERMINISM VIOLATION");
    return ok ? 0 : 1;
  }

  auto lab = MakeLab("stats_lite", 0.05);
  WorkloadOptions wopts;
  wopts.num_queries = 48;
  wopts.min_tables = 3;
  wopts.max_tables = 6;
  wopts.seed = 2024;
  Workload workload = GenerateWorkload(lab->catalog, wopts);

  // A wider sweep for the planning-only site: DP per query is microseconds,
  // so the site needs volume to produce a trackable wall-clock.
  WorkloadOptions dp_opts = wopts;
  dp_opts.num_queries = 400;
  dp_opts.min_tables = 4;
  dp_opts.seed = 4242;
  Workload dp_workload = GenerateWorkload(lab->catalog, dp_opts);

  std::vector<SiteReport> reports;

  // Site 1: benchmark-harness fan-out — plan + execute every workload query.
  reports.push_back(RunSite("harness_sweep", counts, [&] {
    double total = 0.0;
    for (const SweepResult& r : SweepWorkload(*lab, workload)) {
      total += r.time_units + r.estimated_cost;
    }
    return total;
  }));

  // Site 2: ensemble training — random forest (per-tree) and GBDT
  // (per-feature split search).
  {
    std::vector<double> targets;
    std::vector<std::vector<double>> rows = MakeMlRows(3000, 12, &targets);
    reports.push_back(RunSite("forest_train", counts, [&] {
      ForestOptions options;
      options.num_trees = 48;
      RandomForest forest(options);
      forest.Fit(rows, targets);
      double fingerprint = 0.0;
      for (const auto& row : rows) fingerprint += forest.Predict(row);
      return fingerprint;
    }));
    reports.push_back(RunSite("gbdt_train", counts, [&] {
      GbdtOptions options;
      options.num_trees = 40;
      options.subsample = 1.0;
      GradientBoostedTrees gbdt(options);
      gbdt.Fit(rows, targets);
      double fingerprint = 0.0;
      for (const auto& row : rows) fingerprint += gbdt.Predict(row);
      return fingerprint;
    }));
  }

  // Site 3: DP join enumeration, level-parallel.
  reports.push_back(RunSite("dp_join_enum", counts, [&] {
    double total_cost = 0.0;
    uint64_t combos = 0;
    for (const Query& q : dp_workload.queries) {
      CardinalityProvider cards(lab->estimator.get());
      PlannerResult planned = lab->optimizer->Optimize(q, &cards);
      total_cost += planned.estimated_cost;
      combos += planned.combinations_evaluated;
    }
    return total_cost + static_cast<double>(combos);
  }));

  // Site 4: workload-wide estimator evaluation (SPN inference per subquery).
  {
    CeTrainingData data = BuildCeTrainingData(lab->catalog, lab->stats,
                                              workload, lab->truth.get());
    DataDrivenEstimator spn("deepdb_spn", &lab->catalog, &lab->stats,
                            JoinCombineMode::kIndependence);
    spn.Build();
    reports.push_back(RunSite("ce_evaluation", counts, [&] {
      double total = 0.0;
      for (double q : EstimatorQErrors(&spn, data.labeled)) total += q;
      return total;
    }));
  }

  // Sites 5-8 ride on a chain catalog big enough to clear the executor's
  // and SPN's input-size gates (20k rows/table >> the 8192/512 thresholds).
  Catalog chain = MakeChainSchema(5, 20000);

  // Site 5: radix-partitioned hash-join execution. Queries execute one at a
  // time at top level, so the per-join build/probe fan-out is what scales.
  {
    Executor chain_executor(&chain);
    WorkloadOptions jopts;
    jopts.num_queries = 12;
    jopts.min_tables = 3;
    jopts.max_tables = 5;
    jopts.seed = 777;
    Workload join_workload = GenerateWorkload(chain, jopts);
    reports.push_back(RunSite("partitioned_join", counts, [&] {
      double fingerprint = 0.0;
      for (const Query& q : join_workload.queries) {
        PhysicalPlan plan =
            MakeLeftDeepPlan(q, q.AllTables(), JoinAlgorithm::kHashJoin);
        auto result = chain_executor.Execute(plan);
        LQO_CHECK(result.ok());
        fingerprint +=
            static_cast<double>(result->row_count) + result->time_units;
        for (const NodeProfile& p : result->node_profiles) {
          fingerprint += static_cast<double>(p.build_collisions +
                                             p.probe_collisions);
        }
      }
      return fingerprint;
    }));
  }

  // Site 6: SPN training — parallel child regions after each split.
  reports.push_back(RunSite("spn_train", counts, [&] {
    const Table* t1 = *chain.GetTable("t1");
    SpnTableModel model(t1);
    Query probe;
    probe.AddTable("t1");
    probe.AddPredicate(Predicate::Range(0, "val", 2, 40));
    return static_cast<double>(model.num_nodes()) +
           model.Selectivity(probe, 0);
  }));

  // Site 7: Chow-Liu pairwise mutual-information triangle (16 variables ->
  // 120 independent MI tasks over 20k rows each).
  {
    Rng rng(99);
    const size_t kRows = 20000, kVars = 16;
    const int64_t kDomain = 24;
    std::vector<std::vector<int64_t>> columns(kVars);
    std::vector<int64_t> domains(kVars, kDomain);
    for (size_t v = 0; v < kVars; ++v) {
      columns[v].reserve(kRows);
      for (size_t r = 0; r < kRows; ++r) {
        columns[v].push_back(rng.UniformInt(0, kDomain - 1));
      }
    }
    reports.push_back(RunSite("chow_liu_mi", counts, [&] {
      ChowLiuResult tree = LearnChowLiuTree(columns, domains);
      double fingerprint = 0.0;
      for (size_t i = 0; i < tree.parent.size(); ++i) {
        fingerprint += static_cast<double>(tree.parent[i]) * 31.0 +
                       static_cast<double>(tree.topological_order[i]);
      }
      return fingerprint;
    }));
  }

  // Site 8: batched candidate costing — Lero plans every scale factor
  // against per-factor views of one frozen provider.
  reports.push_back(RunSite("lero_costing", counts, [&] {
    LeroOptimizer lero(lab->Context());
    std::string fingerprint;
    for (const Query& q : workload.queries) {
      for (const PhysicalPlan& plan : lero.Candidates(q)) {
        fingerprint += plan.Signature();
        fingerprint += ';';
      }
    }
    return fingerprint;
  }));

  // Site 9: batched model inference — one PredictBatch pass over a shared
  // feature matrix for every model family (SoA tree kernels, blocked MLP
  // forward), morsel-chunked across the pool. The fingerprint sums every
  // prediction, so any thread-count-dependent reordering of the batch path
  // shows up as a determinism violation.
  struct InferenceThroughput {
    std::string name;
    double scalar_rows_per_sec = 0.0;
    double batch_rows_per_sec = 0.0;
  };
  std::vector<InferenceThroughput> inference;
  size_t inference_rows = 0;
  {
    std::vector<double> targets;
    std::vector<std::vector<double>> rows = MakeMlRows(4096, 12, &targets);
    inference_rows = rows.size();
    FeatureMatrix matrix(12);
    matrix.Reserve(rows.size());
    for (const auto& row : rows) matrix.AddRow(row);

    RegressionTree tree;
    tree.Fit(rows, targets, TreeOptions());
    ForestOptions fopts;
    fopts.num_trees = 24;
    RandomForest forest(fopts);
    forest.Fit(rows, targets);
    GbdtOptions gopts;
    gopts.num_trees = 40;
    gopts.subsample = 1.0;
    GradientBoostedTrees gbdt(gopts);
    gbdt.Fit(rows, targets);
    MlpOptions mopts;
    mopts.hidden_layers = {32, 16};
    mopts.epochs = 10;
    Mlp mlp(mopts);
    mlp.Fit(rows, targets);

    reports.push_back(RunSite("inference_batch", counts, [&] {
      std::vector<double> out(matrix.rows());
      double fingerprint = 0.0;
      tree.PredictBatch(matrix, out);
      for (double v : out) fingerprint += v;
      forest.PredictBatch(matrix, out);
      for (double v : out) fingerprint += v;
      gbdt.PredictBatch(matrix, out);
      for (double v : out) fingerprint += v;
      mlp.PredictBatch(matrix, out);
      for (double v : out) fingerprint += v;
      return fingerprint;
    }));

    // Scalar-vs-batch throughput at full thread count, best-of-3 over
    // repeated passes, for BENCH_inference.json.
    ThreadPool::SetGlobalThreads(hw);
    static volatile double sink = 0.0;
    std::vector<double> out(matrix.rows());
    auto rows_per_sec = [&](const std::function<void()>& pass) {
      const int kPasses = 20;
      double best = 1e100;
      for (int rep = 0; rep < 5; ++rep) {
        double secs = SecondsOf([&] {
          for (int p = 0; p < kPasses; ++p) pass();
        });
        if (secs < best) best = secs;
      }
      return static_cast<double>(matrix.rows()) * kPasses / best;
    };
    auto measure = [&](const std::string& name, auto& model) {
      InferenceThroughput t;
      t.name = name;
      t.scalar_rows_per_sec = rows_per_sec([&] {
        double total = 0.0;
        for (const auto& row : rows) total += model.Predict(row);
        sink = sink + total;
      });
      t.batch_rows_per_sec = rows_per_sec([&] {
        model.PredictBatch(matrix, out);
        sink = sink + out[0];
      });
      std::fprintf(stderr,
                   "  inference %-8s scalar %12.0f rows/s  batch %12.0f "
                   "rows/s  (%.2fx)\n",
                   name.c_str(), t.scalar_rows_per_sec, t.batch_rows_per_sec,
                   t.batch_rows_per_sec / t.scalar_rows_per_sec);
      inference.push_back(t);
    };
    measure("tree", tree);
    measure("forest", forest);
    measure("gbdt", gbdt);
    measure("mlp", mlp);
#if !LQO_BENCH_SANITIZED
    // ISSUE 6 satellite gate: the interleaved lockstep GBDT kernel must be
    // at least as fast as per-row Predict. Compiled out under sanitizers.
    for (const InferenceThroughput& t : inference) {
      if (t.name == "gbdt") {
        LQO_CHECK(t.batch_rows_per_sec >= t.scalar_rows_per_sec)
            << "GBDT batch inference regressed below scalar: "
            << t.batch_rows_per_sec << " vs " << t.scalar_rows_per_sec;
      }
    }
#endif
  }

  // Site 10: plan-signature feature cache — a cold epoch of concurrent
  // inserts then a warm epoch of concurrent hits. The fingerprint sums the
  // served feature values, so a cache bug (wrong row for a key, torn
  // write, stale serve) breaks determinism rather than just throughput.
  std::vector<const Query*> cache_queries;
  std::vector<PhysicalPlan> cache_plans;
  for (const Query& q : workload.queries) {
    for (JoinAlgorithm algorithm :
         {JoinAlgorithm::kHashJoin, JoinAlgorithm::kMergeJoin,
          JoinAlgorithm::kNestedLoopJoin}) {
      cache_plans.push_back(MakeLeftDeepPlan(q, q.AllTables(), algorithm));
      cache_queries.push_back(&q);
    }
  }
  reports.push_back(RunSite("feature_cache", counts, [&] {
    FeatureCache cache(PlanFeaturizer::kDim);
    E2eContext context = lab->Context();
    context.feature_cache = &cache;
    double fingerprint = 0.0;
    for (int epoch = 0; epoch < 2; ++epoch) {
      std::vector<double> sums =
          ParallelMap(cache_plans.size(), [&](size_t i) {
            std::vector<double> f = FeaturizePlanCachedVec(
                context, *cache_queries[i], cache_plans[i],
                /*annotated=*/false);
            double s = 0.0;
            for (double v : f) s += v;
            return s;
          });
      for (double s : sums) fingerprint += s;
    }
    return fingerprint;
  }));

  // Cold-vs-warm featurization throughput at full thread count for
  // BENCH_cache.json: the cold pass pays clone + baseline annotation +
  // featurization per candidate, warm passes serve the same rows from the
  // cache by key.
  double cache_cold_rps = 0.0;
  double cache_warm_rps = 0.0;
  FeatureCacheStats cache_stats;
  {
    ThreadPool::SetGlobalThreads(hw);
    static volatile double cache_sink = 0.0;
    double cold_best = 1e100, warm_best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      FeatureCache cache(PlanFeaturizer::kDim);
      E2eContext context = lab->Context();
      context.feature_cache = &cache;
      auto pass = [&] {
        std::vector<double> firsts =
            ParallelMap(cache_plans.size(), [&](size_t i) {
              return FeaturizePlanCachedVec(context, *cache_queries[i],
                                            cache_plans[i],
                                            /*annotated=*/false)[0];
            });
        cache_sink = cache_sink + firsts[0];
      };
      double cold = SecondsOf(pass);
      if (cold < cold_best) cold_best = cold;
      for (int p = 0; p < 5; ++p) {
        double warm = SecondsOf(pass);
        if (warm < warm_best) warm_best = warm;
      }
      cache_stats = cache.Stats();
    }
    cache_cold_rps = static_cast<double>(cache_plans.size()) / cold_best;
    cache_warm_rps = static_cast<double>(cache_plans.size()) / warm_best;
    std::fprintf(stderr,
                 "  feature_cache cold %10.0f rows/s  warm %10.0f rows/s  "
                 "(%.2fx; %llu hits / %llu misses)\n",
                 cache_cold_rps, cache_warm_rps,
                 cache_warm_rps / cache_cold_rps,
                 static_cast<unsigned long long>(cache_stats.hits),
                 static_cast<unsigned long long>(cache_stats.misses));
  }

  // Site 11: compact quantized forest layout vs the SoA arrays on an
  // ensemble far past L2 residence. ConfigureCompact flips layouts on the
  // same fitted model; the RunSite fingerprint must be identical at every
  // thread count because thresholds are quantized at build time.
  double soa_rps = 0.0;
  double compact_rps = 0.0;
  size_t compact_total_nodes = 0, compact_bytes = 0, compact_rows = 0;
  {
    std::vector<double> targets;
    std::vector<std::vector<double>> rows = MakeMlRows(6000, 12, &targets);
    ForestOptions fopts;
    fopts.num_trees = 64;
    RandomForest forest(fopts);
    forest.Fit(rows, targets);
    compact_total_nodes = forest.total_nodes();

    FeatureMatrix matrix(12);
    const size_t kPredictRows = 16384;
    matrix.Reserve(kPredictRows);
    for (size_t i = 0; i < kPredictRows; ++i) {
      matrix.AddRow(rows[i % rows.size()]);
    }
    compact_rows = matrix.rows();

    reports.push_back(RunSite("compact_forest", counts, [&] {
      forest.ConfigureCompact(0);  // force the compact layout
      std::vector<double> out(matrix.rows());
      forest.PredictBatch(matrix, out);
      double fingerprint = 0.0;
      for (double v : out) fingerprint += v;
      return fingerprint;
    }));

    ThreadPool::SetGlobalThreads(hw);
    static volatile double forest_sink = 0.0;
    std::vector<double> out(matrix.rows());
    auto layout_rows_per_sec = [&] {
      const int kPasses = 5;
      double best = 1e100;
      for (int rep = 0; rep < 5; ++rep) {
        double secs = SecondsOf([&] {
          for (int p = 0; p < kPasses; ++p) {
            forest.PredictBatch(matrix, out);
            forest_sink = forest_sink + out[0];
          }
        });
        if (secs < best) best = secs;
      }
      return static_cast<double>(matrix.rows()) * kPasses / best;
    };
    forest.ConfigureCompact(SIZE_MAX);  // plain SoA arrays
    soa_rps = layout_rows_per_sec();
    forest.ConfigureCompact(0);  // compact quantized arenas
    compact_rps = layout_rows_per_sec();
    compact_bytes = forest.compact_bytes();
    std::fprintf(stderr,
                 "  compact_forest soa %11.0f rows/s  compact %11.0f rows/s  "
                 "(%.2fx; %zu nodes, %zu compact bytes)\n",
                 soa_rps, compact_rps, compact_rps / soa_rps,
                 compact_total_nodes, compact_bytes);
  }

  // Site 12: vectorized batch executor vs the tuple-at-a-time reference.
  // The RunSite fingerprint covers row counts, cost-model time units and
  // the physical join counters of BOTH paths, so any divergence between
  // scalar and vectorized — or across thread counts — trips the
  // determinism gate here (this site runs under TSan via check.sh). The
  // throughput A/B below feeds BENCH_vectorized.json and, in plain
  // builds, hard-gates the vectorized scan/filter path at >= 1.5x scalar.
  double vec_filter_rps = 0.0, scalar_filter_rps = 0.0;
  double vec_join_rps = 0.0, scalar_join_rps = 0.0;
  size_t vec_scan_rows = 0;
  uint64_t vec_selected_rows = 0;
  double vec_fingerprint = 0.0;
  {
    // A dedicated two-column table, wider than the chain tables, so the
    // scan A/B is dominated by predicate evaluation + materialization
    // rather than per-query setup.
    Catalog vcat;
    {
      Rng rng(31);
      TableBuilder builder("wide");
      builder.AddInt64Column("k");
      builder.AddInt64Column("v");
      const int64_t kRows = 1 << 18;
      for (int64_t r = 0; r < kRows; ++r) {
        builder.AppendRow({rng.UniformInt(0, 511), rng.UniformInt(0, 999)});
      }
      LQO_CHECK(vcat.AddTable(builder.Build()).ok());
    }
    Executor vexec(&vcat);
    vec_scan_rows = (*vcat.GetTable("wide"))->num_rows();

    Query scan_q;
    scan_q.AddTable("wide");
    scan_q.AddPredicate(Predicate::Range(0, "v", 100, 600));
    scan_q.AddPredicate(
        Predicate::In(0, "k", {3, 17, 96, 204, 305, 401, 477, 508}));
    PhysicalPlan scan_plan;
    scan_plan.query = &scan_q;
    scan_plan.root = MakeScanNode(0);

    Executor join_exec(&chain);
    Query join_q;
    join_q.AddTable("t0");
    join_q.AddTable("t1");
    join_q.AddTable("t2");
    join_q.AddJoin(0, "id", 1, "prev_id");
    join_q.AddJoin(1, "id", 2, "prev_id");
    join_q.AddPredicate(Predicate::Range(0, "val", 2, 60));
    PhysicalPlan join_plan =
        MakeLeftDeepPlan(join_q, join_q.AllTables(), JoinAlgorithm::kHashJoin);

    auto result_fingerprint = [](const ExecutionResult& r) {
      double f = static_cast<double>(r.row_count) * 1e-3 + r.time_units;
      for (const NodeProfile& p : r.node_profiles) {
        f += static_cast<double>(p.left_rows + p.right_rows + p.output_rows +
                                 p.build_collisions + p.probe_collisions) +
             static_cast<double>(p.partitions) + p.time_units;
      }
      return f;
    };
    reports.push_back(RunSite("vectorized_exec", counts, [&] {
      double fingerprint = 0.0;
      for (bool vectorized : {false, true}) {
        vexec.set_vectorized(vectorized);
        join_exec.set_vectorized(vectorized);
        auto scan = vexec.Execute(scan_plan);
        auto join = join_exec.Execute(join_plan);
        LQO_CHECK(scan.ok());
        LQO_CHECK(join.ok());
        vec_selected_rows = scan->row_count;
        // Both paths fold into ONE fingerprint: scalar/vectorized
        // divergence is indistinguishable from thread nondeterminism
        // here, and either fails the bench.
        fingerprint += result_fingerprint(*scan) + result_fingerprint(*join);
      }
      vexec.set_vectorized(true);
      join_exec.set_vectorized(true);
      return fingerprint;
    }));
    {
      // Recompute the (thread-invariant) fingerprint once for the JSON.
      auto scan = vexec.Execute(scan_plan);
      auto join = join_exec.Execute(join_plan);
      LQO_CHECK(scan.ok() && join.ok());
      vec_fingerprint = result_fingerprint(*scan) + result_fingerprint(*join);
    }

    ThreadPool::SetGlobalThreads(hw);
    static volatile double vec_sink = 0.0;
    auto exec_rows_per_sec = [&](Executor& ex, const PhysicalPlan& plan,
                                 size_t rows_per_pass, int passes) {
      double best = 1e100;
      for (int rep = 0; rep < 5; ++rep) {
        double secs = SecondsOf([&] {
          for (int p = 0; p < passes; ++p) {
            auto r = ex.Execute(plan);
            LQO_CHECK(r.ok());
            vec_sink = vec_sink + static_cast<double>(r->row_count);
          }
        });
        if (secs < best) best = secs;
      }
      return static_cast<double>(rows_per_pass) * passes / best;
    };
    const size_t join_input_rows = 3 * 20000;  // base rows fed per pass
    vexec.set_vectorized(false);
    join_exec.set_vectorized(false);
    scalar_filter_rps = exec_rows_per_sec(vexec, scan_plan, vec_scan_rows, 10);
    scalar_join_rps = exec_rows_per_sec(join_exec, join_plan, join_input_rows, 5);
    vexec.set_vectorized(true);
    join_exec.set_vectorized(true);
    vec_filter_rps = exec_rows_per_sec(vexec, scan_plan, vec_scan_rows, 10);
    vec_join_rps = exec_rows_per_sec(join_exec, join_plan, join_input_rows, 5);
    std::fprintf(stderr,
                 "  vectorized scan/filter scalar %12.0f rows/s  batch %12.0f "
                 "rows/s  (%.2fx)\n",
                 scalar_filter_rps, vec_filter_rps,
                 vec_filter_rps / scalar_filter_rps);
    std::fprintf(stderr,
                 "  vectorized join        scalar %12.0f rows/s  batch %12.0f "
                 "rows/s  (%.2fx)\n",
                 scalar_join_rps, vec_join_rps, vec_join_rps / scalar_join_rps);
#if !LQO_BENCH_SANITIZED
    // Perf floor from ISSUE 6: the batch scan/filter pipeline must beat the
    // tuple-at-a-time reference by at least 1.5x. Compiled out under
    // TSan/ASan, where instrumentation overhead distorts the ratio.
    LQO_CHECK(vec_filter_rps >= 1.5 * scalar_filter_rps)
        << "vectorized scan/filter regressed below 1.5x scalar: "
        << vec_filter_rps << " vs " << scalar_filter_rps;
#endif
  }

  // Site 13: SIMD kernel layer (levels x paths x threads determinism cube,
  // per-family throughput A/B, BENCH_simd.json, 1.3x filter floor).
  RunSimdKernelsSite(counts, hw, &reports);

  // Site 14: late-materialization output pipeline (grouped aggregation +
  // projection determinism cube, scalar-vs-vectorized A/B, BENCH_agg.json,
  // 1.5x grouped-aggregation floor).
  RunAggProjectionSite(counts, hw, &reports);

  ThreadPool::SetGlobalThreads(hw);

  std::ofstream cjson("BENCH_cache.json");
  cjson << "{\n  \"feature_cache\": {\"rows\": " << cache_plans.size()
        << ", \"cold_rows_per_sec\": " << cache_cold_rps
        << ", \"warm_rows_per_sec\": " << cache_warm_rps
        << ", \"warm_speedup\": " << cache_warm_rps / cache_cold_rps
        << ", \"hits\": " << cache_stats.hits
        << ", \"misses\": " << cache_stats.misses
        << ", \"evictions\": " << cache_stats.evictions << "},\n"
        << "  \"compact_forest\": {\"rows\": " << compact_rows
        << ", \"total_nodes\": " << compact_total_nodes
        << ", \"compact_bytes\": " << compact_bytes
        << ", \"soa_rows_per_sec\": " << soa_rps
        << ", \"compact_rows_per_sec\": " << compact_rps
        << ", \"compact_speedup\": " << compact_rps / soa_rps << "}\n}\n";
  cjson.close();
  std::fprintf(stderr, "wrote BENCH_cache.json\n");

  std::ofstream ijson("BENCH_inference.json");
  ijson << "{\n  \"rows\": " << inference_rows << ",\n  \"models\": [\n";
  for (size_t i = 0; i < inference.size(); ++i) {
    const InferenceThroughput& t = inference[i];
    ijson << "    {\"name\": \"" << t.name << "\", \"scalar_rows_per_sec\": "
          << t.scalar_rows_per_sec << ", \"batch_rows_per_sec\": "
          << t.batch_rows_per_sec << ", \"batch_speedup\": "
          << t.batch_rows_per_sec / t.scalar_rows_per_sec << "}"
          << (i + 1 < inference.size() ? "," : "") << "\n";
  }
  ijson << "  ]\n}\n";
  ijson.close();
  std::fprintf(stderr, "wrote BENCH_inference.json\n");

  std::ofstream vjson("BENCH_vectorized.json");
  vjson << "{\n  \"scan_rows\": " << vec_scan_rows
        << ",\n  \"selected_rows\": " << vec_selected_rows
        << ",\n  \"result_fingerprint\": " << vec_fingerprint
        << ",\n  \"scan_filter\": {\"scalar_rows_per_sec\": "
        << scalar_filter_rps
        << ", \"vectorized_rows_per_sec\": " << vec_filter_rps
        << ", \"vectorized_speedup\": " << vec_filter_rps / scalar_filter_rps
        << "},\n  \"hash_join\": {\"scalar_rows_per_sec\": " << scalar_join_rps
        << ", \"vectorized_rows_per_sec\": " << vec_join_rps
        << ", \"vectorized_speedup\": " << vec_join_rps / scalar_join_rps
        << "}\n}\n";
  vjson.close();
  std::fprintf(stderr, "wrote BENCH_vectorized.json\n");

  std::ofstream json("BENCH_parallel.json");
  json << "{\n  \"hardware_concurrency\": " << hw << ",\n  \"sites\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const SiteReport& r = reports[i];
    json << "    {\"name\": \"" << r.name << "\", \"deterministic\": "
         << (r.deterministic ? "true" : "false") << ", \"timings\": [";
    for (size_t j = 0; j < r.seconds_at.size(); ++j) {
      json << (j ? ", " : "") << "{\"threads\": " << r.seconds_at[j].first
           << ", \"seconds\": " << r.seconds_at[j].second << "}";
    }
    json << "], \"speedup_4v1\": " << r.SpeedupAt(4) << "}"
         << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  bool all_deterministic = true;
  for (const SiteReport& r : reports) all_deterministic &= r.deterministic;
  std::fprintf(stderr, "wrote BENCH_parallel.json (%s)\n",
               all_deterministic ? "all sites deterministic"
                                 : "DETERMINISM VIOLATION");
  return all_deterministic ? 0 : 1;
}
