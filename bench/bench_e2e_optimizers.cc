// E6 — reproduces the end-to-end learned-optimizer evaluations of
// Section 2.2 (Bao [37], Lero [79], Neo [38], Balsa [69], HyperQO [72],
// LEON [4]): workload speedup over the native optimizer, per-query
// win/loss counts and tail regressions after a training phase.

#include <cstdio>
#include <memory>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "common/logging.h"
#include "common/stats_util.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "e2e/bao.h"
#include "e2e/hyperqo.h"
#include "e2e/leon.h"
#include "e2e/lero.h"
#include "e2e/neo.h"
#include "serving/front_end.h"
#include "serving/plan_cache.h"

namespace lqo {
namespace {

double Gmrl(const E2eEvalResult& result) {
  // Geometric mean relative latency (learned / native), the robustness
  // metric of the Lero/Eraser papers.
  std::vector<double> ratios;
  for (size_t i = 0; i < result.learned_times.size(); ++i) {
    double native = std::max(result.native_times[i], 1e-9);
    ratios.push_back(std::max(result.learned_times[i], 1e-9) / native);
  }
  return GeometricMean(ratios);
}

void RunDataset(const std::string& dataset) {
  auto lab = MakeLab(dataset, 0.1);
  WorkloadOptions wopts;
  wopts.num_queries = 50;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = 61;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 62;
  wopts.num_queries = 30;
  Workload test = GenerateWorkload(lab->catalog, wopts);

  std::vector<std::unique_ptr<LearnedQueryOptimizer>> optimizers;
  optimizers.push_back(std::make_unique<BaoOptimizer>(lab->Context()));
  optimizers.push_back(std::make_unique<LeroOptimizer>(lab->Context()));
  optimizers.push_back(std::make_unique<NeoOptimizer>(lab->Context()));
  optimizers.push_back(
      std::make_unique<BalsaOptimizer>(lab->Context(), train.queries));
  optimizers.push_back(std::make_unique<HyperQoOptimizer>(lab->Context()));
  optimizers.push_back(std::make_unique<LeonOptimizer>(lab->Context()));

  TablePrinter table({"Optimizer", "speedup", "GMRL", "wins", "losses",
                      "worst regr", "train cost", "infer rows",
                      "infer rows/s", "feat hits", "feat miss", "feat rot",
                      "plan hits", "plan miss", "plan inval"});
  for (auto& optimizer : optimizers) {
    // Per-optimizer delta of the lab-wide plan-feature cache: candidates
    // re-featurized across retrain epochs (and signatures shared across
    // optimizers) show up as hits instead of recomputation.
    FeatureCacheStats cache_before = lab->feature_cache->Stats();
    double train_cost =
        TrainLearnedOptimizer(optimizer.get(), train, *lab->executor);
    E2eEvalResult result = EvaluateLearnedOptimizer(
        optimizer.get(), lab->Context(), test, *lab->executor);
    FeatureCacheStats cache_after = lab->feature_cache->Stats();

    // Serving pass: the trained optimizer behind the lab-wide parameterized
    // plan cache, replaying the test workload twice (cold fills, the second
    // pass should hit). Producer-tagged types keep optimizers apart inside
    // the one shared cache.
    PlanCacheStats plan_before = lab->plan_cache->Stats();
    LearnedOptimizerPlanProducer producer(optimizer.get());
    ServingFrontEnd front_end(lab->plan_cache.get(), &producer,
                              lab->executor.get());
    for (int pass = 0; pass < 2; ++pass) {
      for (const Query& q : test.queries) {
        auto served = front_end.Serve(q);
        LQO_CHECK(served.ok()) << served.status().ToString();
      }
    }
    PlanCacheStats plan_delta = lab->plan_cache->Stats() - plan_before;

    table.AddRow({result.name, FormatDouble(result.Speedup(), 4),
                  FormatDouble(Gmrl(result), 4), std::to_string(result.wins),
                  std::to_string(result.losses),
                  FormatDouble(result.worst_regression_ratio, 4),
                  FormatDouble(train_cost, 4),
                  std::to_string(result.inference.rows),
                  FormatDouble(result.inference.RowsPerSec(), 0),
                  std::to_string(cache_after.hits - cache_before.hits),
                  std::to_string(cache_after.misses - cache_before.misses),
                  std::to_string(cache_after.generation_evictions -
                                 cache_before.generation_evictions),
                  std::to_string(plan_delta.hits),
                  std::to_string(plan_delta.misses),
                  std::to_string(plan_delta.invalidations)});
  }
  std::printf("%s\n", table.ToString("-- dataset: " + dataset +
                                     " (speedup>1 & GMRL<1 beat native) --")
                          .c_str());
}

void Run() {
  std::printf("== E6: end-to-end learned query optimizers vs the native "
              "cost-based optimizer ==\n\n");
  RunDataset("stats_lite");
  RunDataset("imdb_lite");
  std::printf(
      "Expected shape (Section 2.2): learned optimizers match or beat the\n"
      "native optimizer in total workload time, with residual per-query\n"
      "regressions (losses > 0) — the problem Eraser (E7) targets.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
