// E2 — reproduces the accuracy comparison of the CE benchmark studies the
// tutorial cites (Han et al. [12], Sun et al. [53], Wang et al. [61]):
// q-error distributions per estimator, split single-table vs multi-join,
// across a correlated schema (stats_lite), a skewed snowflake (imdb_lite)
// and a mostly-uniform synthetic schema (tpch_lite).

#include <cstdio>

#include "benchlib/lab.h"
#include "cardinality/evaluation.h"
#include "cardinality/registry.h"
#include "common/str_util.h"
#include "common/table_printer.h"

namespace lqo {
namespace {

void RunDataset(const std::string& dataset) {
  auto lab = MakeLab(dataset, 0.1);

  WorkloadOptions wopts;
  wopts.num_queries = 60;
  wopts.min_tables = 1;
  wopts.max_tables = 4;
  wopts.seed = 21;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 22;
  wopts.num_queries = 30;
  Workload test = GenerateWorkload(lab->catalog, wopts);

  CeTrainingData training =
      BuildCeTrainingData(lab->catalog, lab->stats, train, lab->truth.get());
  CeTrainingData evaluation =
      BuildCeTrainingData(lab->catalog, lab->stats, test, lab->truth.get());

  std::vector<LabeledSubquery> single, multi;
  SplitBySize(evaluation.labeled, &single, &multi);

  std::vector<RegisteredEstimator> suite =
      MakeEstimatorSuite(lab->catalog, lab->stats, training);

  TablePrinter table({"Method", "Category", "1T p50", "1T p99", "Join p50",
                      "Join p90", "Join p99", "Join max"});
  for (RegisteredEstimator& entry : suite) {
    QErrorSummary s1 = EvaluateEstimator(entry.estimator.get(), single);
    QErrorSummary sj = EvaluateEstimator(entry.estimator.get(), multi);
    table.AddRow({entry.estimator->Name(), CeCategoryName(entry.category),
                  FormatDouble(s1.p50, 3), FormatDouble(s1.p99, 3),
                  FormatDouble(sj.p50, 3), FormatDouble(sj.p90, 3),
                  FormatDouble(sj.p99, 3), FormatDouble(sj.max, 3)});
  }
  std::printf("%s\n",
              table.ToString("-- dataset: " + dataset + " (" +
                             std::to_string(single.size()) +
                             " single-table, " + std::to_string(multi.size()) +
                             " join sub-queries) --")
                  .c_str());
}

void Run() {
  std::printf("== E2: learned cardinality estimator accuracy sweep "
              "(q-error, lower is better) ==\n\n");
  for (const std::string& dataset :
       {std::string("stats_lite"), std::string("imdb_lite"),
        std::string("tpch_lite")}) {
    RunDataset(dataset);
  }
  std::printf(
      "Expected shape (Han et al. [12]): data-driven methods dominate on\n"
      "correlated schemas (stats/imdb), traditional histograms remain\n"
      "competitive on the near-independent tpch_lite; query-driven methods\n"
      "sit between, degrading at the join tail.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
