// E3 — reproduces the *end-to-end* CE evaluation of Han et al. [12]: each
// estimator's cardinalities are injected into the same cost-based
// optimizer (the PilotScope batch-injection path), the chosen plans are
// executed, and total/tail workload latency is compared against the native
// histogram baseline and the true-cardinality oracle.

#include <cstdio>

#include "benchlib/lab.h"
#include "cardinality/perror.h"
#include "cardinality/registry.h"
#include "cardinality/training_data.h"
#include "common/stats_util.h"
#include "common/str_util.h"
#include "common/table_printer.h"

namespace lqo {
namespace {

struct InjectionResult {
  double total_time = 0.0;
  double p99 = 0.0;
  std::vector<double> times;
};

InjectionResult RunWithEstimator(Lab& lab, const Workload& workload,
                                 CardinalityEstimatorInterface* estimator) {
  InjectionResult result;
  for (const Query& query : workload.queries) {
    CardinalityProvider provider(lab.estimator.get());
    // Batch injection: override every sub-query the optimizer will ask for,
    // exactly as the PilotScope CE driver does.
    for (TableSet set : ConnectedSubsets(query)) {
      Subquery subquery{&query, set};
      provider.InjectOverride(subquery.Key(),
                              estimator->EstimateSubquery(subquery));
    }
    PhysicalPlan plan = lab.optimizer->Optimize(query, &provider).plan;
    auto exec = lab.executor->Execute(plan);
    LQO_CHECK(exec.ok());
    result.times.push_back(exec->time_units);
    result.total_time += exec->time_units;
  }
  result.p99 = Quantile(result.times, 0.99);
  return result;
}

/// Oracle estimator (exact cardinalities) to bound achievable quality.
class OracleEstimator : public CardinalityEstimatorInterface {
 public:
  explicit OracleEstimator(TrueCardinalityService* truth) : truth_(truth) {}
  double EstimateSubquery(const Subquery& subquery) override {
    return static_cast<double>(truth_->Cardinality(subquery));
  }
  std::string Name() const override { return "true_cardinality"; }

 private:
  TrueCardinalityService* truth_;
};

void Run() {
  std::printf("== E3: end-to-end plan quality with injected cardinalities "
              "(dataset: stats_lite) ==\n\n");
  auto lab = MakeLab("stats_lite", 0.1);

  WorkloadOptions wopts;
  wopts.num_queries = 50;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = 31;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 32;
  wopts.num_queries = 30;
  Workload test = GenerateWorkload(lab->catalog, wopts);

  CeTrainingData training =
      BuildCeTrainingData(lab->catalog, lab->stats, train, lab->truth.get());

  OracleEstimator oracle(lab->truth.get());
  InjectionResult oracle_result = RunWithEstimator(*lab, test, &oracle);
  InjectionResult baseline_result =
      RunWithEstimator(*lab, test, lab->estimator.get());

  PErrorEvaluator perror(lab->optimizer.get(), lab->cost_model.get(),
                         lab->truth.get());
  TablePrinter table({"Estimator", "Total time", "vs baseline", "vs oracle",
                      "p99 latency", "P-error p90"});
  auto add_row = [&](const std::string& name, const InjectionResult& r,
                     CardinalityEstimatorInterface* estimator) {
    std::string perror_cell = "1 (def.)";
    if (estimator != nullptr) {
      perror_cell =
          FormatDouble(Quantile(perror.Evaluate(test, estimator), 0.9), 4);
    }
    table.AddRow({name, FormatDouble(r.total_time, 6),
                  FormatDouble(r.total_time / baseline_result.total_time, 4),
                  FormatDouble(r.total_time / oracle_result.total_time, 4),
                  FormatDouble(r.p99, 5), perror_cell});
  };
  add_row("true_cardinality (oracle)", oracle_result, nullptr);
  add_row("postgres_baseline (native)", baseline_result,
          lab->estimator.get());

  EstimatorSuiteOptions options;
  std::vector<RegisteredEstimator> suite =
      MakeEstimatorSuite(lab->catalog, lab->stats, training, options);
  for (RegisteredEstimator& entry : suite) {
    if (entry.estimator->Name() == "histogram") continue;  // == baseline.
    add_row(entry.estimator->Name(),
            RunWithEstimator(*lab, test, entry.estimator.get()),
            entry.estimator.get());
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape (Han et al. [12]): injection of accurate learned\n"
      "cardinalities closes most of the gap to the oracle; better q-error\n"
      "generally, but not monotonically, yields better plans.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
