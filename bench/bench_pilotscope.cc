// E9 — reproduces the PilotScope demonstration of the paper's Section 3:
// deploying the learned-CE, Bao and Lero drivers through the middleware's
// push/pull interface, measuring interaction counts and overhead relative
// to native execution, and verifying driver transparency (identical query
// results).

#include <chrono>
#include <cstdio>
#include <memory>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "pilotscope/console.h"
#include "pilotscope/drivers.h"
#include "serving/front_end.h"
#include "serving/plan_cache.h"

namespace lqo {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Run() {
  std::printf("== E9: PilotScope middleware — drivers deployed through "
              "push/pull operators (dataset: stats_lite) ==\n\n");
  auto lab = MakeLab("stats_lite", 0.1);
  EngineInteractor interactor(&lab->catalog, lab->optimizer.get(),
                              lab->estimator.get(), lab->executor.get());
  PilotScopeConsole console(&lab->catalog, &interactor);

  WorkloadOptions wopts;
  wopts.num_queries = 30;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = 91;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 92;
  wopts.num_queries = 20;
  Workload serve = GenerateWorkload(lab->catalog, wopts);

  DataDrivenEstimator factorjoin("factorjoin", &lab->catalog, &lab->stats,
                                 JoinCombineMode::kKeyBuckets);
  factorjoin.SetUniformModelKind(TableModelKind::kSample);
  factorjoin.Build();

  LQO_CHECK(console
                .RegisterDriver(
                    std::make_unique<CardinalityDriver>(&factorjoin))
                .ok());
  LQO_CHECK(console.RegisterDriver(std::make_unique<BaoDriver>()).ok());
  LQO_CHECK(console.RegisterDriver(std::make_unique<LeroDriver>()).ok());

  TablePrinter table({"Driver", "pushes/q", "pulls/q", "exec time units",
                      "driver ms/q", "results ok"});

  auto serve_with = [&](const std::string& driver) {
    LQO_CHECK(console.ActivateDriver(driver).ok());
    if (!driver.empty()) {
      LQO_CHECK(console.TrainActiveDriver(train).ok());
    }
    interactor.ResetOpCounts();
    double total_time_units = 0.0;
    double wall0 = NowSeconds();
    bool all_correct = true;
    for (const Query& query : serve.queries) {
      auto result = console.ExecuteQuery(query);
      LQO_CHECK(result.ok()) << result.status().ToString();
      total_time_units += result->time_units;
      if (result->row_count != lab->truth->Cardinality(query)) {
        all_correct = false;
      }
    }
    double wall_ms =
        (NowSeconds() - wall0) * 1000.0 /
        static_cast<double>(serve.queries.size());
    double n = static_cast<double>(serve.queries.size());
    table.AddRow({driver.empty() ? "(native, no driver)" : driver,
                  FormatDouble(interactor.op_counts().pushes / n, 3),
                  FormatDouble(interactor.op_counts().pulls / n, 3),
                  FormatDouble(total_time_units, 6),
                  FormatDouble(wall_ms, 3), all_correct ? "yes" : "NO"});
  };

  serve_with("");
  serve_with("ce_driver(factorjoin)");
  serve_with("bao_driver");
  serve_with("lero_driver");

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape (Section 3): drivers are transparent (results ok),\n"
      "interaction counts stay small (a handful of pushes/pulls per query)\n"
      "and the steered executions match or beat native time units.\n\n");

  // Serving-path overhead: each driver's PlanQuery behind the parameterized
  // plan cache. The cold pass pays the driver's push/pull protocol per
  // miss; in the warm pass cached plans bypass the middleware entirely, so
  // the interactor op counts collapse to zero.
  TablePrinter serving_table({"Driver", "cold pushes/q", "cold pulls/q",
                              "warm pushes/q", "warm pulls/q", "warm hits/q"});
  auto serve_cached = [&](std::unique_ptr<Driver> driver) {
    LQO_CHECK(driver->Init(&interactor).ok());
    LQO_CHECK(driver->TrainOnWorkload(train).ok());
    DriverPlanProducer producer(driver.get());
    PlanCache cache;
    ServingFrontEnd front_end(&cache, &producer, lab->executor.get());
    const double n = static_cast<double>(serve.queries.size());
    DbInteractor::OpCounts cold, warm;
    uint64_t warm_hits = 0;
    for (int pass = 0; pass < 2; ++pass) {
      interactor.ResetOpCounts();
      uint64_t hits = 0;
      for (const Query& query : serve.queries) {
        auto served = front_end.Serve(query);
        LQO_CHECK(served.ok()) << served.status().ToString();
        hits += served->cache_hit ? 1 : 0;
      }
      if (pass == 0) {
        cold = interactor.op_counts();
      } else {
        warm = interactor.op_counts();
        warm_hits = hits;
      }
    }
    serving_table.AddRow({producer.Name(), FormatDouble(cold.pushes / n, 3),
                          FormatDouble(cold.pulls / n, 3),
                          FormatDouble(warm.pushes / n, 3),
                          FormatDouble(warm.pulls / n, 3),
                          FormatDouble(static_cast<double>(warm_hits) / n, 3)});
  };
  serve_cached(std::make_unique<CardinalityDriver>(&factorjoin));
  serve_cached(std::make_unique<BaoDriver>());
  serve_cached(std::make_unique<LeroDriver>());
  std::printf("%s\n",
              serving_table
                  .ToString("-- serving front end over driver PlanQuery: "
                            "per-query interactor ops, cold vs warm cache --")
                  .c_str());
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
