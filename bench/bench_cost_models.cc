// E4 — reproduces the learned-cost-model comparisons of Section 2.1.2
// ([39,51] plan-level models, BASE [5] calibration, zero-shot [16]):
// predicted-vs-true correlation, rank quality and plan-picking accuracy on
// held-out plans, plus the zero-shot transfer column (train on stats_lite,
// test unchanged on tpch_lite).

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>

#include "benchlib/lab.h"
#include "common/stats_util.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "costmodel/learned_cost_model.h"
#include "costmodel/sample_collection.h"

namespace lqo {
namespace {

struct Corpus {
  std::unique_ptr<Lab> lab;
  // Owned workloads: collected plans reference these Query objects.
  Workload train_queries;
  Workload test_queries;
  std::vector<CollectedPlan> train;
  std::vector<CollectedPlan> test;
  // Candidates grouped per test query for plan-picking accuracy.
  std::map<std::string, std::vector<const CollectedPlan*>> test_groups;
};

Corpus BuildCorpus(const std::string& dataset, uint64_t seed) {
  Corpus corpus;
  corpus.lab = MakeLab(dataset, 0.1);
  Lab& lab = *corpus.lab;

  WorkloadOptions wopts;
  wopts.num_queries = 40;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = seed;
  corpus.train_queries = GenerateWorkload(lab.catalog, wopts);
  wopts.seed = seed + 1;
  wopts.num_queries = 20;
  corpus.test_queries = GenerateWorkload(lab.catalog, wopts);

  CardinalityProvider cards(lab.estimator.get());
  corpus.train = CollectCostSamples(corpus.train_queries, *lab.optimizer,
                                    &cards, *lab.executor);
  corpus.test = CollectCostSamples(corpus.test_queries, *lab.optimizer,
                                   &cards, *lab.executor);
  for (const CollectedPlan& entry : corpus.test) {
    corpus.test_groups[Subquery{entry.plan.query,
                                entry.plan.query->AllTables()}
                           .Key()]
        .push_back(&entry);
  }
  return corpus;
}

struct ModelEval {
  double spearman = 0.0;
  double pearson_log = 0.0;
  double within_query_spearman = 0.0;  // rank quality among one query's plans
  double pick_accuracy = 0.0;  // fraction of queries picking the fastest
};

ModelEval Evaluate(const Corpus& corpus,
                   const std::function<double(const CollectedPlan&)>& predict) {
  ModelEval eval;
  std::vector<double> pred, truth;
  for (const CollectedPlan& entry : corpus.test) {
    pred.push_back(std::log(predict(entry) + 1.0));
    truth.push_back(std::log(entry.sample.time_units + 1.0));
  }
  eval.spearman = SpearmanCorrelation(pred, truth);
  eval.pearson_log = PearsonCorrelation(pred, truth);

  int correct = 0, total = 0;
  std::vector<double> within;
  for (const auto& [key, group] : corpus.test_groups) {
    if (group.size() < 2) continue;
    ++total;
    std::vector<double> group_pred, group_truth;
    for (const CollectedPlan* plan : group) {
      group_pred.push_back(predict(*plan));
      group_truth.push_back(plan->sample.time_units);
    }
    if (group.size() >= 3) {
      within.push_back(SpearmanCorrelation(group_pred, group_truth));
    }
    size_t best_pred = 0, best_true = 0;
    for (size_t i = 1; i < group.size(); ++i) {
      if (predict(*group[i]) < predict(*group[best_pred])) best_pred = i;
      if (group[i]->sample.time_units <
          group[best_true]->sample.time_units) {
        best_true = i;
      }
    }
    if (best_pred == best_true) ++correct;
  }
  eval.pick_accuracy =
      total > 0 ? static_cast<double>(correct) / total : 1.0;
  eval.within_query_spearman = Mean(within);
  return eval;
}

void Run() {
  std::printf("== E4: cost model quality (train: stats_lite plans; test: "
              "held-out stats_lite plans + tpch_lite transfer) ==\n\n");
  Corpus corpus = BuildCorpus("stats_lite", 41);
  Corpus transfer = BuildCorpus("tpch_lite", 43);

  std::vector<CostSample> train_samples;
  for (const CollectedPlan& entry : corpus.train) {
    train_samples.push_back(entry.sample);
  }

  CardinalityProvider cards(corpus.lab->estimator.get());
  auto analytical = [&](const CollectedPlan& entry) {
    PhysicalPlan clone = entry.plan.Clone();
    return corpus.lab->cost_model->PlanCost(&clone, &cards);
  };

  LearnedPlanCostModel gbdt(LearnedPlanCostModel::ModelType::kGbdt);
  gbdt.Train(train_samples);
  LearnedPlanCostModel mlp(LearnedPlanCostModel::ModelType::kMlp);
  mlp.Train(train_samples);
  CalibratedCostModel calibrated;
  calibrated.Train(train_samples);
  ZeroShotCostModel zero_shot;
  zero_shot.Train(train_samples);

  TablePrinter table({"Cost model", "Spearman", "within-q rank",
                      "plan-pick acc", "transfer Spearman"});
  auto add = [&](const std::string& name,
                 const std::function<double(const CollectedPlan&)>& predict,
                 double transfer_spearman) {
    ModelEval eval = Evaluate(corpus, predict);
    table.AddRow({name, FormatDouble(eval.spearman, 3),
                  FormatDouble(eval.within_query_spearman, 3),
                  FormatDouble(eval.pick_accuracy, 3),
                  transfer_spearman == transfer_spearman
                      ? FormatDouble(transfer_spearman, 3)
                      : "-"});
  };

  double nan = std::nan("");
  add("analytical (native)", analytical, nan);
  add("calibrated (BASE [5])",
      [&](const CollectedPlan& e) { return calibrated.PredictTime(e.plan); },
      nan);
  add("learned_gbdt ([39,9])",
      [&](const CollectedPlan& e) { return gbdt.PredictTime(e.plan); }, nan);
  add("learned_mlp ([51,76])",
      [&](const CollectedPlan& e) { return mlp.PredictTime(e.plan); }, nan);
  {
    ModelEval t = Evaluate(transfer, [&](const CollectedPlan& e) {
      return zero_shot.PredictTime(e.plan, transfer.lab->stats);
    });
    add("zero_shot ([16])",
        [&](const CollectedPlan& e) {
          return zero_shot.PredictTime(e.plan, corpus.lab->stats);
        },
        t.spearman);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: learned models beat the analytical model's raw\n"
      "latency correlation (it cannot see skew/cache/spill); the\n"
      "calibrated model recovers most of the gap with a linear fit; the\n"
      "zero-shot model keeps useful accuracy on an unseen schema.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
