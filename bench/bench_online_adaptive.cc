// E12 — reproduces the online adaptive-processing result of SkinnerDB [56]
// (Section 2.1.3, online learning): executing with intra-query plan
// switching tracks the best candidate plan's time *without any optimizer
// estimates*, bounding the damage of a bad native plan.

#include <cstdio>
#include <set>

#include "benchlib/lab.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "joinorder/online_skinner.h"
#include "query/workload.h"

namespace lqo {
namespace {

void Run() {
  std::printf("== E12: online adaptive processing (SkinnerDB-style UCB over "
              "plans, dataset: stats_lite) ==\n\n");
  auto lab = MakeLab("stats_lite", 0.1);
  WorkloadOptions wopts;
  wopts.num_queries = 25;
  wopts.min_tables = 3;
  wopts.max_tables = 5;
  wopts.seed = 131;
  Workload workload = GenerateWorkload(lab->catalog, wopts);

  OnlineSkinnerExecutor online(lab->executor.get());

  double sum_native = 0, sum_best = 0, sum_worst = 0, sum_online = 0;
  int total_switches = 0;
  for (const Query& q : workload.queries) {
    // Candidate plans: the hint-set variants of the native optimizer (the
    // adaptive executor is agnostic to where candidates come from).
    std::vector<PhysicalPlan> candidates;
    CardinalityProvider cards(lab->estimator.get());
    std::set<std::string> seen;
    for (int mask : {7, 1, 2, 4}) {
      HintSet hints;
      hints.enable_hash_join = (mask & 1) != 0;
      hints.enable_nested_loop = (mask & 2) != 0;
      hints.enable_merge_join = (mask & 4) != 0;
      PhysicalPlan plan = lab->optimizer->Optimize(q, &cards, hints).plan;
      if (seen.insert(plan.Signature()).second) {
        candidates.push_back(std::move(plan));
      }
    }
    auto native_exec = lab->executor->Execute(candidates[0]);
    LQO_CHECK(native_exec.ok());
    OnlineSkinnerResult result = online.Run(candidates);
    sum_native += native_exec->time_units;
    sum_best += result.best_plan_time;
    sum_worst += result.worst_plan_time;
    sum_online += result.total_time;
    total_switches += result.switches;
  }

  TablePrinter table({"Strategy", "total time", "vs best possible"});
  table.AddRow({"best candidate (oracle)", FormatDouble(sum_best, 6), "1"});
  table.AddRow({"native plan (no adaptivity)", FormatDouble(sum_native, 6),
                FormatDouble(sum_native / sum_best, 4)});
  table.AddRow({"online skinner (UCB)", FormatDouble(sum_online, 6),
                FormatDouble(sum_online / sum_best, 4)});
  table.AddRow({"worst candidate", FormatDouble(sum_worst, 6),
                FormatDouble(sum_worst / sum_best, 4)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Total plan switches across the workload: %d\n\n",
              total_switches);
  std::printf(
      "Expected shape (SkinnerDB [56]): the online executor lands within a\n"
      "small regret factor of the best candidate — far from the worst —\n"
      "without consulting any cardinality estimates, while the static\n"
      "native plan has no such guarantee.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
