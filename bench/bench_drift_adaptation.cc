// E8 — reproduces the dynamic-data setting of Warper [29] / DDUp [25] /
// ALECE [30]: estimators built on a database snapshot are evaluated after
// the data drifts (the database grows with freshly-distributed rows);
// stale models degrade, refreshed models recover.

#include <cstdio>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "cardinality/evaluation.h"
#include "cardinality/query_driven.h"
#include "common/str_util.h"
#include "common/table_printer.h"

namespace lqo {
namespace {

CeTrainingData LabelWorkload(Lab& lab, const Workload& workload) {
  return BuildCeTrainingData(lab.catalog, lab.stats, workload,
                             lab.truth.get());
}

void Run() {
  std::printf("== E8: data drift — stale vs refreshed estimators "
              "(stats_lite snapshot -> grown database) ==\n\n");

  // Old snapshot and drifted database: 60%% more rows generated with a
  // different seed, changing both sizes and value correlations.
  auto old_lab = MakeLab("stats_lite", 0.1, /*seed=*/42);
  auto new_lab = MakeLab("stats_lite", 0.16, /*seed=*/77);

  WorkloadOptions wopts;
  wopts.num_queries = 50;
  wopts.min_tables = 1;
  wopts.max_tables = 4;
  wopts.seed = 81;
  Workload old_train = GenerateWorkload(old_lab->catalog, wopts);
  wopts.seed = 82;
  wopts.num_queries = 30;
  Workload new_eval = GenerateWorkload(new_lab->catalog, wopts);
  wopts.seed = 83;
  wopts.num_queries = 50;
  Workload new_train = GenerateWorkload(new_lab->catalog, wopts);

  CeTrainingData old_training = LabelWorkload(*old_lab, old_train);
  CeTrainingData new_training = LabelWorkload(*new_lab, new_train);
  CeTrainingData evaluation = LabelWorkload(*new_lab, new_eval);

  TablePrinter table({"Estimator", "state", "q-err p50", "q-err p90",
                      "q-err p99"});
  auto add = [&](const std::string& name, const std::string& state,
                 CardinalityEstimatorInterface* estimator) {
    QErrorSummary summary = EvaluateEstimator(estimator, evaluation.labeled);
    table.AddRow({name, state, FormatDouble(summary.p50, 3),
                  FormatDouble(summary.p90, 3),
                  FormatDouble(summary.p99, 3)});
  };

  // Data-driven: SPN built on old vs new data.
  {
    DataDrivenEstimator stale("deepdb_spn", &old_lab->catalog,
                              &old_lab->stats, JoinCombineMode::kIndependence);
    stale.Build();
    add("deepdb_spn", "stale", &stale);
    DataDrivenEstimator fresh("deepdb_spn", &new_lab->catalog,
                              &new_lab->stats, JoinCombineMode::kIndependence);
    fresh.Build();
    add("deepdb_spn", "refreshed", &fresh);
  }
  // Query-driven: GBDT trained on old workload+old labels vs retrained
  // (Warper's adaptation step).
  {
    QueryDrivenEstimator stale(QueryDrivenEstimator::ModelType::kGbdt,
                               &old_lab->catalog, &old_lab->stats);
    stale.Train(old_training);
    add("gbdt_qd", "stale", &stale);
    QueryDrivenEstimator fresh(QueryDrivenEstimator::ModelType::kGbdt,
                               &new_lab->catalog, &new_lab->stats);
    fresh.Train(new_training);
    add("gbdt_qd", "refreshed (Warper [29])", &fresh);
  }
  // Traditional histogram: stale stats vs re-ANALYZE.
  {
    BaselineCardinalityEstimator stale(&old_lab->catalog, &old_lab->stats);
    add("histogram", "stale", &stale);
    add("histogram", "refreshed", new_lab->estimator.get());
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: every stale model degrades on the drifted data —\n"
      "most sharply the data-driven one — and refreshing (Warper/DDUp's\n"
      "update step) restores accuracy.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
