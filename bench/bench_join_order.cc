// E5 — reproduces the learned join-order search comparisons of
// Section 2.1.3 ([15,24,56,73]): plan quality (cost ratio to the DP
// optimum) and planning effort across query sizes on a chain schema, for
// exhaustive DP, greedy (GOO), UCT/MCTS (SkinnerDB-style) and fitted-Q RL
// (DQ/ReJoin-style).

#include <chrono>
#include <cstdio>

#include "common/str_util.h"
#include "common/table_printer.h"
#include "joinorder/mcts.h"
#include "joinorder/qlearning.h"
#include "optimizer/baseline_estimator.h"
#include "optimizer/optimizer.h"
#include "query/workload.h"
#include "storage/datasets.h"

namespace lqo {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Run() {
  std::printf("== E5: join-order search — plan cost ratio to DP optimum and "
              "planning effort (chain schema) ==\n\n");

  TablePrinter table({"#tables", "method", "cost / DP", "plan effort",
                      "plan ms/query"});

  for (int num_tables : {4, 6, 8, 10, 12}) {
    Catalog catalog = MakeChainSchema(num_tables, 2000, 71);
    StatsCatalog stats;
    stats.Build(catalog);
    BaselineCardinalityEstimator estimator(&catalog, &stats);
    CardinalityProvider cards(&estimator);
    AnalyticalCostModel cost_model(&stats);
    Optimizer optimizer(&stats, &cost_model);

    WorkloadOptions wopts;
    wopts.num_queries = 10;
    wopts.min_tables = num_tables;
    wopts.max_tables = num_tables;
    wopts.seed = 51;
    Workload workload = GenerateWorkload(catalog, wopts);
    wopts.seed = 52;
    wopts.num_queries = 8;
    Workload train = GenerateWorkload(catalog, wopts);

    // Train the RL planner once per size (offline phase).
    QLearningOptions ql_options;
    ql_options.episodes_per_query = 20;
    QLearningJoinOrderer qlearner(&stats, &cost_model, &cards, ql_options);
    qlearner.Train(train.queries);

    struct Row {
      std::string name;
      double cost = 0;
      double effort = 0;
      double seconds = 0;
    };
    std::vector<Row> rows(4);
    rows[0].name = "dp_exhaustive";
    rows[1].name = "greedy_goo";
    rows[2].name = "mcts_skinner";
    rows[3].name = "qlearning_dq";

    for (const Query& q : workload.queries) {
      double t0 = NowSeconds();
      PlannerResult dp = optimizer.Optimize(q, &cards);
      rows[0].seconds += NowSeconds() - t0;
      rows[0].cost += dp.estimated_cost;
      rows[0].effort += static_cast<double>(dp.combinations_evaluated);

      t0 = NowSeconds();
      PlannerResult greedy = optimizer.OptimizeGreedy(q, &cards);
      rows[1].seconds += NowSeconds() - t0;
      rows[1].cost += greedy.estimated_cost;
      rows[1].effort += static_cast<double>(greedy.combinations_evaluated);

      MctsOptions mcts_options;
      mcts_options.iterations = 200;
      MctsJoinOrderer mcts(&stats, &cost_model, &cards, mcts_options);
      double mcts_cost = 0;
      t0 = NowSeconds();
      mcts.Plan(q, &mcts_cost);
      rows[2].seconds += NowSeconds() - t0;
      rows[2].cost += mcts_cost;
      rows[2].effort += 200.0 * (num_tables - 1) * 3;  // iterations x steps

      double ql_cost = 0;
      t0 = NowSeconds();
      qlearner.Plan(q, &ql_cost);
      rows[3].seconds += NowSeconds() - t0;
      rows[3].cost += ql_cost;
      rows[3].effort +=
          static_cast<double>((num_tables - 1) * num_tables * num_tables);
    }

    for (const Row& row : rows) {
      table.AddRow({std::to_string(num_tables), row.name,
                    FormatDouble(row.cost / rows[0].cost, 4),
                    FormatDouble(row.effort / 10.0, 4),
                    FormatDouble(row.seconds / 10.0 * 1000.0, 3)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: DP is optimal but its effort explodes with query\n"
      "size; greedy is cheap but can be far off; the learned searchers stay\n"
      "near-optimal with planning effort that grows mildly (the RL planner\n"
      "amortizes its training across future queries).\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
