// E10 — ablations on the design choices DESIGN.md calls out for the
// Section 2.2 framework: (a) candidate-set size (Lero's scale set, Bao's
// arm count) vs plan quality — diminishing returns; (b) pairwise vs
// pointwise risk models on identical candidates — Lero's learning-to-rank
// claim; (c) HyperQO's variance filter on vs off.

#include <cstdio>
#include <memory>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "costmodel/plan_featurizer.h"
#include "e2e/bao.h"
#include "e2e/hyperqo.h"
#include "e2e/lero.h"

namespace lqo {
namespace {

/// Lero candidates + a *pointwise* latency model: the ablated variant that
/// isolates the value of the pairwise comparator.
class PointwiseLero : public LearnedQueryOptimizer {
 public:
  PointwiseLero(const E2eContext& context, LeroOptions options)
      : lero_(context, options) {}

  PhysicalPlan ChoosePlan(const Query& query) override {
    std::vector<PhysicalPlan> candidates = lero_.Candidates(query);
    if (!risk_model_.trained() || candidates.size() == 1) {
      return std::move(candidates[0]);
    }
    std::vector<std::vector<double>> features;
    for (const PhysicalPlan& plan : candidates) {
      features.push_back(PlanFeaturizer::Featurize(plan));
    }
    return std::move(candidates[risk_model_.PickBest(features)]);
  }
  std::vector<PhysicalPlan> TrainingCandidates(const Query& query) override {
    return lero_.Candidates(query);
  }
  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override {
    PlanExperience experience;
    experience.query_key = Subquery{&query, query.AllTables()}.Key();
    experience.features = PlanFeaturizer::Featurize(plan);
    experience.time_units = time_units;
    experience.plan_signature = plan.Signature();
    experience_.Add(std::move(experience));
  }
  void Retrain() override { risk_model_.Train(experience_); }
  std::string Name() const override { return "lero_pointwise"; }
  bool trained() const override { return risk_model_.trained(); }

 private:
  LeroOptimizer lero_;
  ExperienceBuffer experience_;
  PointwiseRiskModel risk_model_;
};

void Run() {
  std::printf("== E10: ablations of the Section 2.2 design choices "
              "(dataset: stats_lite) ==\n\n");
  auto lab = MakeLab("stats_lite", 0.1);
  WorkloadOptions wopts;
  wopts.num_queries = 45;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = 101;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 102;
  wopts.num_queries = 30;
  Workload test = GenerateWorkload(lab->catalog, wopts);

  TablePrinter table({"Variant", "knob", "speedup", "losses", "worst regr"});
  auto evaluate = [&](LearnedQueryOptimizer* optimizer,
                      const std::string& variant, const std::string& knob) {
    TrainLearnedOptimizer(optimizer, train, *lab->executor);
    E2eEvalResult result = EvaluateLearnedOptimizer(optimizer, lab->Context(),
                                                    test, *lab->executor);
    table.AddRow({variant, knob, FormatDouble(result.Speedup(), 4),
                  std::to_string(result.losses),
                  FormatDouble(result.worst_regression_ratio, 4)});
  };

  // (a) Lero candidate-set size.
  for (auto& [label, scales] :
       std::vector<std::pair<std::string, std::vector<double>>>{
           {"1 scale (native)", {1.0}},
           {"3 scales", {0.1, 1.0, 10.0}},
           {"5 scales", {0.01, 0.1, 1.0, 10.0, 100.0}},
           {"7 scales", {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}}}) {
    LeroOptions options;
    options.scale_factors = scales;
    LeroOptimizer lero(lab->Context(), options);
    evaluate(&lero, "lero candidates", label);
  }

  // (a') Bao arm count.
  for (auto& [label, masks] :
       std::vector<std::pair<std::string, std::vector<int>>>{
           {"1 arm (native)", {7}},
           {"3 arms", {7, 1, 5}},
           {"7 arms", {7, 1, 2, 3, 4, 5, 6}}}) {
    BaoOptions options;
    options.arm_masks = masks;
    BaoOptimizer bao(lab->Context(), options);
    evaluate(&bao, "bao arms", label);
  }

  // (b) pairwise vs pointwise risk model on identical Lero candidates.
  {
    LeroOptimizer pairwise(lab->Context());
    evaluate(&pairwise, "risk model", "pairwise (Lero)");
    PointwiseLero pointwise(lab->Context(), LeroOptions{});
    evaluate(&pointwise, "risk model", "pointwise (ablated)");
  }

  // (c) HyperQO variance filter.
  {
    HyperQoOptimizer filtered(lab->Context());
    evaluate(&filtered, "hyperqo filter", "on (max std 0.5)");
    HyperQoOptions off;
    off.max_relative_std = 1e9;
    HyperQoOptimizer unfiltered(lab->Context(), off);
    evaluate(&unfiltered, "hyperqo filter", "off");
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: more candidates improve plan quality with\n"
      "diminishing returns; the pairwise comparator is at least as robust\n"
      "as the pointwise regressor (fewer losses / smaller worst\n"
      "regression); disabling HyperQO's variance filter increases risk.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
