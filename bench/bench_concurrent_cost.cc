// E11 — reproduces the concurrent-query cost-model comparison of
// Section 2.1.2 (GPredictor [78], Prestroid [20], resource-aware [31]):
// queries run in mixes on a shared server; the interference-aware learned
// model predicts in-mix latency far better than the solo cost model that
// ignores co-runners.

#include <cstdio>

#include "benchlib/lab.h"
#include "common/rng.h"
#include "common/stats_util.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "costmodel/concurrent.h"
#include "costmodel/sample_collection.h"
#include "ml/metrics.h"

namespace lqo {
namespace {

void Run() {
  std::printf("== E11: concurrent-query cost models (dataset: stats_lite, "
              "simulated query mixes) ==\n\n");
  auto lab = MakeLab("stats_lite", 0.1);

  WorkloadOptions wopts;
  wopts.num_queries = 30;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = 121;
  Workload workload = GenerateWorkload(lab->catalog, wopts);

  CardinalityProvider cards(lab->estimator.get());
  std::vector<CollectedPlan> corpus = CollectCostSamples(
      workload, *lab->optimizer, &cards, *lab->executor);
  std::vector<PlanResourceProfile> profiles;
  for (const CollectedPlan& entry : corpus) {
    auto result = lab->executor->Execute(entry.plan);
    LQO_CHECK(result.ok());
    profiles.push_back(MakeResourceProfile(entry.plan, *result));
  }

  // Generate random mixes of 2..5 queries; the simulator provides the
  // ground-truth in-mix latencies.
  ConcurrencySimulator simulator;
  Rng rng(122);
  std::vector<std::vector<double>> x;
  std::vector<double> truth, solo_baseline;
  std::vector<int> batch_sizes;
  for (int b = 0; b < 250; ++b) {
    int k = static_cast<int>(rng.UniformInt(2, 5));
    std::vector<const PlanResourceProfile*> batch;
    for (int i = 0; i < k; ++i) {
      batch.push_back(&profiles[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(profiles.size()) - 1))]);
    }
    std::vector<double> latencies = simulator.BatchLatencies(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
      x.push_back(ConcurrentCostModel::MixFeatures(*batch[i], batch));
      truth.push_back(latencies[i]);
      solo_baseline.push_back(batch[i]->solo_time);
      batch_sizes.push_back(k);
    }
  }

  size_t split = x.size() * 3 / 4;
  ConcurrentCostModel model;
  model.Train({x.begin(), x.begin() + static_cast<long>(split)},
              {truth.begin(), truth.begin() + static_cast<long>(split)});

  // Per-batch-size evaluation on the held-out quarter.
  TablePrinter table({"mix size", "solo-model MAE%", "learned MAE%",
                      "solo Spearman", "learned Spearman"});
  for (int k = 2; k <= 5; ++k) {
    std::vector<double> t, solo;
    // Batch the held-out predictions for this mix size: one feature
    // matrix, one PredictBatch pass (bit-identical to per-row Predict).
    FeatureMatrix features(x.empty() ? 0 : x[0].size());
    for (size_t i = split; i < x.size(); ++i) {
      if (batch_sizes[i] != k) continue;
      t.push_back(truth[i]);
      solo.push_back(solo_baseline[i]);
      features.AddRow(x[i]);
    }
    if (t.size() < 4) continue;
    std::vector<double> learned(features.rows());
    model.PredictBatch(features, learned);
    auto mae_pct = [&](const std::vector<double>& pred) {
      double total = 0;
      for (size_t i = 0; i < pred.size(); ++i) {
        total += std::abs(pred[i] - t[i]) / t[i];
      }
      return 100.0 * total / static_cast<double>(pred.size());
    };
    table.AddRow({std::to_string(k), FormatDouble(mae_pct(solo), 4),
                  FormatDouble(mae_pct(learned), 4),
                  FormatDouble(SpearmanCorrelation(solo, t), 3),
                  FormatDouble(SpearmanCorrelation(learned, t), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape (GPredictor [78]): the solo model's error grows with\n"
      "mix size (it cannot see interference); the learned mix-aware model\n"
      "keeps relative error low and rank correlation high at every size.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
