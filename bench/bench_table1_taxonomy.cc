// E1 — regenerates the paper's Table 1 ("A list of learned cardinality
// estimators"): every taxonomy category instantiated by a working
// representative, with its build/train time and accuracy on a held-out
// workload. See DESIGN.md experiment index.

#include <cstdio>

#include "benchlib/lab.h"
#include "cardinality/evaluation.h"
#include "cardinality/registry.h"
#include "common/stats_util.h"
#include "common/str_util.h"
#include "common/table_printer.h"

namespace lqo {
namespace {

void Run() {
  std::printf("== E1: Table 1 taxonomy — one working representative per "
              "category (dataset: stats_lite) ==\n\n");
  auto lab = MakeLab("stats_lite", 0.1);

  WorkloadOptions wopts;
  wopts.num_queries = 60;
  wopts.min_tables = 1;
  wopts.max_tables = 4;
  wopts.seed = 11;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 12;
  wopts.num_queries = 25;
  Workload test = GenerateWorkload(lab->catalog, wopts);

  CeTrainingData training =
      BuildCeTrainingData(lab->catalog, lab->stats, train, lab->truth.get());
  CeTrainingData evaluation =
      BuildCeTrainingData(lab->catalog, lab->stats, test, lab->truth.get());

  std::vector<RegisteredEstimator> suite =
      MakeEstimatorSuite(lab->catalog, lab->stats, training);

  TablePrinter table({"Category", "Method", "Represents", "Build(s)",
                      "q-err p50", "q-err p95"});
  for (RegisteredEstimator& entry : suite) {
    std::vector<double> qerrors =
        EstimatorQErrors(entry.estimator.get(), evaluation.labeled);
    table.AddRow({CeCategoryName(entry.category), entry.estimator->Name(),
                  entry.represents, FormatDouble(entry.build_seconds, 2),
                  FormatDouble(Quantile(qerrors, 0.5), 3),
                  FormatDouble(Quantile(qerrors, 0.95), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected shape: every category of the paper's Table 1 has a "
              "working representative; learned rows beat the traditional "
              "rows at the tail on this correlated schema.\n");
}

}  // namespace
}  // namespace lqo

int main() {
  lqo::Run();
  return 0;
}
