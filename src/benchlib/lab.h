#ifndef LQO_BENCHLIB_LAB_H_
#define LQO_BENCHLIB_LAB_H_

#include <memory>
#include <string>
#include <vector>

#include "e2e/framework.h"
#include "engine/executor.h"
#include "engine/true_cardinality.h"
#include "optimizer/baseline_estimator.h"
#include "optimizer/optimizer.h"
#include "query/workload.h"
#include "serving/plan_cache.h"
#include "storage/datasets.h"

namespace lqo {

/// Bundles the full native stack over one dataset — catalog, statistics,
/// baseline estimator, analytical cost model, DP optimizer, executor, truth
/// oracle — so every bench/example sets up one object instead of seven.
struct Lab {
  Catalog catalog;
  StatsCatalog stats;
  std::unique_ptr<BaselineCardinalityEstimator> estimator;
  std::unique_ptr<AnalyticalCostModel> cost_model;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<TrueCardinalityService> truth;
  /// Plan-signature feature cache shared by every learned optimizer built
  /// from this lab's Context(): plan features are pure functions of
  /// (query, plan signature) for a fixed baseline estimator, so rows
  /// survive across retrain epochs and across optimizers.
  std::unique_ptr<FeatureCache> feature_cache;
  /// Lab-wide parameterized plan cache for the serving front end: one cache
  /// shared by every ServingFrontEnd built from this lab (producer-tagged
  /// type keys keep families apart; see src/serving/front_end.h).
  std::unique_ptr<PlanCache> plan_cache;

  /// Non-owning view for the e2e learned optimizers.
  E2eContext Context() const {
    E2eContext context;
    context.catalog = &catalog;
    context.stats = &stats;
    context.optimizer = optimizer.get();
    context.cost_model = cost_model.get();
    context.estimator = estimator.get();
    context.feature_cache = feature_cache.get();
    context.plan_cache = plan_cache.get();
    return context;
  }
};

/// Per-query outcome of a native plan-and-execute sweep.
struct SweepResult {
  double estimated_cost = 0.0;
  double time_units = 0.0;
  uint64_t row_count = 0;
};

/// Plans (DP + baseline cards) and executes every workload query, fanned out
/// across the thread pool — the lab-wide sweep underneath most benches. Each
/// query gets a private CardinalityProvider, and results are returned in
/// workload order, so the sweep is deterministic at any thread count.
std::vector<SweepResult> SweepWorkload(const Lab& lab,
                                       const Workload& workload);

/// Builds a Lab from an already-generated catalog.
std::unique_ptr<Lab> MakeLabFromCatalog(Catalog catalog);

/// Builds a Lab over a named dataset ("imdb_lite", "stats_lite",
/// "tpch_lite") at the given scale.
std::unique_ptr<Lab> MakeLab(const std::string& dataset, double scale,
                             uint64_t seed = 42);

}  // namespace lqo

#endif  // LQO_BENCHLIB_LAB_H_
