#ifndef LQO_BENCHLIB_E2E_HARNESS_H_
#define LQO_BENCHLIB_E2E_HARNESS_H_

#include <string>
#include <vector>

#include "e2e/framework.h"
#include "engine/executor.h"
#include "query/workload.h"

namespace lqo {

/// Options for the learned-optimizer training loop.
struct HarnessOptions {
  /// Retrain() is invoked after this many training queries.
  int retrain_every = 25;
  /// Passes over the training workload (later passes exploit the model).
  int training_passes = 2;
};

/// Trains a learned optimizer: for each training query, executes all its
/// TrainingCandidates, feeds the observations back, and retrains
/// periodically. Returns total executed time units (the training cost).
double TrainLearnedOptimizer(LearnedQueryOptimizer* optimizer,
                             const Workload& train, const Executor& executor,
                             const HarnessOptions& options = HarnessOptions());

/// Per-method evaluation result against the native optimizer.
struct E2eEvalResult {
  std::string name;
  double total_native = 0.0;
  double total_learned = 0.0;
  std::vector<double> native_times;
  std::vector<double> learned_times;
  /// Queries where learned is >10% faster / slower than native.
  int wins = 0;
  int losses = 0;
  double worst_regression_ratio = 1.0;  // max over queries learned/native
  /// Batched model inference performed during this evaluation's planning
  /// (delta of the optimizer's counters across EvaluateLearnedOptimizer).
  InferenceStatsSnapshot inference;

  double Speedup() const {
    return total_learned > 0 ? total_native / total_learned : 0.0;
  }
};

/// Runs the evaluation workload through both the native optimizer and the
/// learned one, executing both plans per query.
E2eEvalResult EvaluateLearnedOptimizer(LearnedQueryOptimizer* optimizer,
                                       const E2eContext& context,
                                       const Workload& test,
                                       const Executor& executor);

}  // namespace lqo

#endif  // LQO_BENCHLIB_E2E_HARNESS_H_
