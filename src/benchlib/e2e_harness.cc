#include "benchlib/e2e_harness.h"

#include <algorithm>

#include "common/logging.h"

namespace lqo {

double TrainLearnedOptimizer(LearnedQueryOptimizer* optimizer,
                             const Workload& train, const Executor& executor,
                             const HarnessOptions& options) {
  LQO_CHECK(optimizer != nullptr);
  double total_time = 0.0;
  int since_retrain = 0;
  for (int pass = 0; pass < options.training_passes; ++pass) {
    for (const Query& query : train.queries) {
      for (const PhysicalPlan& plan : optimizer->TrainingCandidates(query)) {
        auto result = executor.Execute(plan);
        LQO_CHECK(result.ok()) << result.status().ToString();
        optimizer->Observe(query, plan, result->time_units);
        total_time += result->time_units;
      }
      if (++since_retrain >= options.retrain_every) {
        optimizer->Retrain();
        since_retrain = 0;
      }
    }
  }
  optimizer->Retrain();
  return total_time;
}

E2eEvalResult EvaluateLearnedOptimizer(LearnedQueryOptimizer* optimizer,
                                       const E2eContext& context,
                                       const Workload& test,
                                       const Executor& executor) {
  E2eEvalResult result;
  result.name = optimizer->Name();
  for (const Query& query : test.queries) {
    PhysicalPlan native = NativePlan(context, query);
    PhysicalPlan learned = optimizer->ChoosePlan(query);
    auto native_exec = executor.Execute(native);
    auto learned_exec = executor.Execute(learned);
    LQO_CHECK(native_exec.ok()) << native_exec.status().ToString();
    LQO_CHECK(learned_exec.ok()) << learned_exec.status().ToString();
    double native_time = native_exec->time_units;
    double learned_time = learned_exec->time_units;
    result.native_times.push_back(native_time);
    result.learned_times.push_back(learned_time);
    result.total_native += native_time;
    result.total_learned += learned_time;
    if (learned_time < native_time / 1.1) ++result.wins;
    if (learned_time > native_time * 1.1) ++result.losses;
    if (native_time > 0) {
      result.worst_regression_ratio =
          std::max(result.worst_regression_ratio, learned_time / native_time);
    }
  }
  return result;
}

}  // namespace lqo
