#include "benchlib/e2e_harness.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

double TrainLearnedOptimizer(LearnedQueryOptimizer* optimizer,
                             const Workload& train, const Executor& executor,
                             const HarnessOptions& options) {
  LQO_CHECK(optimizer != nullptr);
  double total_time = 0.0;
  int since_retrain = 0;
  for (int pass = 0; pass < options.training_passes; ++pass) {
    for (const Query& query : train.queries) {
      // Candidate generation and feedback stay sequential (the optimizer is
      // stateful); the candidate executions in between are independent pure
      // functions of the plan, so they fan out across the pool and are
      // observed back in candidate order. TrainingCandidateSet featurizes
      // and scores the whole set in one batched pass (warming the shared
      // feature cache the Observe calls then hit).
      CandidateSet set = optimizer->TrainingCandidateSet(query);
      std::vector<PhysicalPlan>& candidates = set.plans;
      std::vector<double> times =
          ParallelMap(candidates.size(), [&](size_t i) {
            auto result = executor.Execute(candidates[i]);
            LQO_CHECK(result.ok()) << result.status().ToString();
            return result->time_units;
          });
      for (size_t i = 0; i < candidates.size(); ++i) {
        optimizer->Observe(query, candidates[i], times[i]);
        total_time += times[i];
      }
      if (++since_retrain >= options.retrain_every) {
        optimizer->Retrain();
        since_retrain = 0;
      }
    }
  }
  optimizer->Retrain();
  return total_time;
}

E2eEvalResult EvaluateLearnedOptimizer(LearnedQueryOptimizer* optimizer,
                                       const E2eContext& context,
                                       const Workload& test,
                                       const Executor& executor) {
  E2eEvalResult result;
  result.name = optimizer->Name();
  size_t q = test.queries.size();
  InferenceStatsSnapshot inference_before = optimizer->InferenceStats();

  // Native planning is a pure function of (context, query) — each task gets
  // its own CardinalityProvider — so it fans out. Learned plan choice may
  // mutate the optimizer and stays serial.
  std::vector<PhysicalPlan> native_plans = ParallelMap(
      q, [&](size_t i) { return NativePlan(context, test.queries[i]); });
  std::vector<PhysicalPlan> learned_plans;
  learned_plans.reserve(q);
  for (const Query& query : test.queries) {
    learned_plans.push_back(optimizer->ChoosePlan(query));
  }
  result.inference = optimizer->InferenceStats() - inference_before;

  // Per-query fan-out of both executions; the reduction below walks queries
  // in workload order, so wins/losses/totals match the serial harness.
  struct Timing {
    double native = 0.0;
    double learned = 0.0;
  };
  std::vector<Timing> timings = ParallelMap(q, [&](size_t i) {
    auto native_exec = executor.Execute(native_plans[i]);
    auto learned_exec = executor.Execute(learned_plans[i]);
    LQO_CHECK(native_exec.ok()) << native_exec.status().ToString();
    LQO_CHECK(learned_exec.ok()) << learned_exec.status().ToString();
    return Timing{native_exec->time_units, learned_exec->time_units};
  });

  for (const Timing& t : timings) {
    result.native_times.push_back(t.native);
    result.learned_times.push_back(t.learned);
    result.total_native += t.native;
    result.total_learned += t.learned;
    if (t.learned < t.native / 1.1) ++result.wins;
    if (t.learned > t.native * 1.1) ++result.losses;
    if (t.native > 0) {
      result.worst_regression_ratio =
          std::max(result.worst_regression_ratio, t.learned / t.native);
    }
  }
  return result;
}

}  // namespace lqo
