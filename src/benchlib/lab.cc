#include "benchlib/lab.h"

#include "common/logging.h"

namespace lqo {

std::unique_ptr<Lab> MakeLabFromCatalog(Catalog catalog) {
  auto lab = std::make_unique<Lab>();
  lab->catalog = std::move(catalog);
  lab->stats.Build(lab->catalog);
  lab->estimator = std::make_unique<BaselineCardinalityEstimator>(
      &lab->catalog, &lab->stats);
  lab->cost_model = std::make_unique<AnalyticalCostModel>(&lab->stats);
  lab->optimizer =
      std::make_unique<Optimizer>(&lab->stats, lab->cost_model.get());
  lab->executor = std::make_unique<Executor>(&lab->catalog);
  lab->truth = std::make_unique<TrueCardinalityService>(&lab->catalog);
  return lab;
}

std::unique_ptr<Lab> MakeLab(const std::string& dataset, double scale,
                             uint64_t seed) {
  DatasetOptions options;
  options.scale = scale;
  options.seed = seed;
  auto catalog_or = MakeDataset(dataset, options);
  LQO_CHECK(catalog_or.ok()) << catalog_or.status().ToString();
  return MakeLabFromCatalog(std::move(*catalog_or));
}

}  // namespace lqo
