#include "benchlib/lab.h"

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

std::vector<SweepResult> SweepWorkload(const Lab& lab,
                                       const Workload& workload) {
  return ParallelMap(workload.queries.size(), [&](size_t i) {
    const Query& query = workload.queries[i];
    CardinalityProvider cards(lab.estimator.get());
    PlannerResult planned = lab.optimizer->Optimize(query, &cards);
    auto executed = lab.executor->Execute(planned.plan);
    LQO_CHECK(executed.ok()) << executed.status().ToString();
    SweepResult out;
    out.estimated_cost = planned.estimated_cost;
    out.time_units = executed->time_units;
    out.row_count = executed->row_count;
    return out;
  });
}

std::unique_ptr<Lab> MakeLabFromCatalog(Catalog catalog) {
  auto lab = std::make_unique<Lab>();
  lab->catalog = std::move(catalog);
  lab->stats.Build(lab->catalog);
  lab->estimator = std::make_unique<BaselineCardinalityEstimator>(
      &lab->catalog, &lab->stats);
  lab->cost_model = std::make_unique<AnalyticalCostModel>(&lab->stats);
  lab->optimizer =
      std::make_unique<Optimizer>(&lab->stats, lab->cost_model.get());
  lab->executor = std::make_unique<Executor>(&lab->catalog);
  lab->truth = std::make_unique<TrueCardinalityService>(&lab->catalog);
  lab->feature_cache = std::make_unique<FeatureCache>(PlanFeaturizer::kDim);
  lab->plan_cache = std::make_unique<PlanCache>();
  return lab;
}

std::unique_ptr<Lab> MakeLab(const std::string& dataset, double scale,
                             uint64_t seed) {
  DatasetOptions options;
  options.scale = scale;
  options.seed = seed;
  auto catalog_or = MakeDataset(dataset, options);
  LQO_CHECK(catalog_or.ok()) << catalog_or.status().ToString();
  return MakeLabFromCatalog(std::move(*catalog_or));
}

}  // namespace lqo
