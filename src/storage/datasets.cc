#include "storage/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace lqo {
namespace {

int64_t Scaled(double base, double scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(base * scale));
}

int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return std::clamp(v, lo, hi);
}

// Generates `count` dictionary entries "<prefix>_000".."<prefix>_NNN"; the
// zero-padded suffix keeps the dictionary sorted so code order == string
// order.
std::vector<std::string> MakeDictionary(const std::string& prefix,
                                        int64_t count) {
  std::vector<std::string> dict;
  dict.reserve(static_cast<size_t>(count));
  int width = 1;
  for (int64_t c = count - 1; c >= 10; c /= 10) ++width;
  for (int64_t i = 0; i < count; ++i) {
    std::string digits = std::to_string(i);
    dict.push_back(prefix + "_" + std::string(width - digits.size(), '0') +
                   digits);
  }
  return dict;
}

}  // namespace

Catalog MakeImdbLite(const DatasetOptions& options) {
  Rng rng(options.seed);
  Catalog catalog;

  const int64_t num_titles = Scaled(20000, options.scale);
  const int64_t num_kinds = 7;
  const int64_t num_companies = 500;
  const int64_t num_keywords = 1000;
  const int64_t num_persons = Scaled(8000, options.scale);

  ZipfDistribution kind_dist(num_kinds, 1.1);
  ZipfDistribution votes_dist(100, 1.3);
  ZipfDistribution year_offset_dist(74, 0.8);
  ZipfDistribution company_dist(num_companies, 1.2);
  ZipfDistribution keyword_dist(400, 1.1);
  ZipfDistribution role_dist(11, 1.4);
  ZipfDistribution fanout_dist(8, 1.5);
  ZipfDistribution person_dist(num_persons, 1.05);
  ZipfDistribution info_val_dist(40, 1.0);

  // --- title (fact table) ---
  // Correlations: production_year depends on kind_id (newer kinds skew
  // recent); rating depends on votes bucket.
  std::vector<int64_t> title_kind(num_titles), title_year(num_titles),
      title_votes(num_titles), title_rating(num_titles);
  {
    TableBuilder builder("title");
    builder.AddInt64Column("id");
    builder.AddCategoricalColumn("kind_id", MakeDictionary("kind", num_kinds));
    builder.AddInt64Column("production_year");
    builder.AddInt64Column("votes_bucket");
    builder.AddInt64Column("rating");
    for (int64_t i = 0; i < num_titles; ++i) {
      int64_t kind = kind_dist.Sample(rng);
      // Newer media kinds (higher kind code) concentrate in recent years.
      int64_t offset = year_offset_dist.Sample(rng);
      int64_t year = 2023 - offset - (num_kinds - 1 - kind) * 4;
      year = Clamp(year, 1930, 2023);
      int64_t votes = votes_dist.Sample(rng);  // 0 = most votes bucket.
      int64_t rating =
          Clamp(9 - votes / 12 + rng.UniformInt(-1, 1), 1, 10);
      title_kind[static_cast<size_t>(i)] = kind;
      title_year[static_cast<size_t>(i)] = year;
      title_votes[static_cast<size_t>(i)] = votes;
      title_rating[static_cast<size_t>(i)] = rating;
      builder.AppendRow({i, kind, year, votes, rating});
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- movie_companies ---
  // Popular (low votes bucket) titles attract more company records; company
  // id correlates with title kind.
  {
    TableBuilder builder("movie_companies");
    builder.AddInt64Column("movie_id");
    builder.AddCategoricalColumn("company_id",
                                 MakeDictionary("co", num_companies));
    builder.AddCategoricalColumn("company_type",
                                 MakeDictionary("ctype", 4));
    for (int64_t m = 0; m < num_titles; ++m) {
      size_t mi = static_cast<size_t>(m);
      int64_t fanout = 1 + fanout_dist.Sample(rng);
      if (title_votes[mi] < 10) fanout += 2;  // popular titles.
      for (int64_t f = 0; f < fanout; ++f) {
        int64_t company =
            (company_dist.Sample(rng) + title_kind[mi] * 60) % num_companies;
        int64_t ctype = rng.UniformInt(0, 3);
        builder.AppendRow({m, company, ctype});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- movie_keyword ---
  // Keyword pools are kind-dependent: joins through movie_keyword carry
  // information about title.kind_id.
  {
    TableBuilder builder("movie_keyword");
    builder.AddInt64Column("movie_id");
    builder.AddCategoricalColumn("keyword_id",
                                 MakeDictionary("kw", num_keywords));
    for (int64_t m = 0; m < num_titles; ++m) {
      size_t mi = static_cast<size_t>(m);
      int64_t fanout = 1 + fanout_dist.Sample(rng) +
                       (title_votes[mi] < 5 ? 3 : 0);
      for (int64_t f = 0; f < fanout; ++f) {
        int64_t keyword =
            (keyword_dist.Sample(rng) + title_kind[mi] * 130) % num_keywords;
        builder.AppendRow({m, keyword});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- cast_info ---
  {
    TableBuilder builder("cast_info");
    builder.AddInt64Column("movie_id");
    builder.AddInt64Column("person_id");
    builder.AddCategoricalColumn("role_id", MakeDictionary("role", 11));
    for (int64_t m = 0; m < num_titles; ++m) {
      size_t mi = static_cast<size_t>(m);
      int64_t fanout = 2 + fanout_dist.Sample(rng) +
                       (title_votes[mi] < 10 ? 4 : 0);
      for (int64_t f = 0; f < fanout; ++f) {
        builder.AppendRow({m, person_dist.Sample(rng), role_dist.Sample(rng)});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- movie_info ---
  // info_val is strongly determined by info_type (intra-table correlation).
  {
    TableBuilder builder("movie_info");
    builder.AddInt64Column("movie_id");
    builder.AddCategoricalColumn("info_type_id", MakeDictionary("it", 21));
    builder.AddInt64Column("info_val");
    for (int64_t m = 0; m < num_titles; ++m) {
      int64_t fanout = 1 + fanout_dist.Sample(rng) % 4;
      for (int64_t f = 0; f < fanout; ++f) {
        int64_t info_type = rng.UniformInt(0, 20);
        int64_t val = info_type * 5 + info_val_dist.Sample(rng) % 20;
        builder.AppendRow({m, info_type, val});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  for (const char* satellite :
       {"movie_companies", "movie_keyword", "cast_info", "movie_info"}) {
    LQO_CHECK(catalog
                  .AddJoinEdge({.left_table = "title",
                                .left_column = "id",
                                .right_table = satellite,
                                .right_column = "movie_id"})
                  .ok());
  }
  return catalog;
}

Catalog MakeStatsLite(const DatasetOptions& options) {
  Rng rng(options.seed + 1);
  Catalog catalog;

  const int64_t num_users = Scaled(5000, options.scale);
  const int64_t num_posts = Scaled(15000, options.scale);

  ZipfDistribution reputation_dist(1000, 1.2);
  ZipfDistribution owner_dist(num_users, 1.1);  // low ids post a lot.
  ZipfDistribution comment_fanout_dist(10, 1.4);
  ZipfDistribution vote_fanout_dist(14, 1.2);
  ZipfDistribution badge_fanout_dist(6, 1.3);
  ZipfDistribution commenter_dist(num_users, 1.05);

  // --- users ---
  // reputation and up_votes are strongly correlated; creation_year mildly
  // anti-correlates with reputation (old accounts have more).
  std::vector<int64_t> user_reputation(num_users);
  {
    TableBuilder builder("users");
    builder.AddInt64Column("id");
    builder.AddInt64Column("reputation");
    builder.AddInt64Column("up_votes");
    builder.AddInt64Column("down_votes");
    builder.AddInt64Column("creation_year");
    for (int64_t u = 0; u < num_users; ++u) {
      // Low ids get high reputation: makes owner_user_id joins correlated.
      int64_t rank_bonus = (num_users - u) * 1000 / num_users;  // 0..1000
      int64_t reputation = rank_bonus * 10 + reputation_dist.Sample(rng);
      int64_t up_votes = reputation / 10 + rng.UniformInt(0, 20);
      int64_t down_votes = rng.UniformInt(0, 5) + reputation / 500;
      int64_t creation_year =
          Clamp(2023 - reputation / 700 - rng.UniformInt(0, 6), 2008, 2023);
      user_reputation[static_cast<size_t>(u)] = reputation;
      builder.AppendRow({u, reputation, up_votes, down_votes, creation_year});
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- posts ---
  // score correlates with owner reputation (cross-table correlation through
  // the FK); view_count correlates with score.
  std::vector<int64_t> post_score(num_posts);
  {
    TableBuilder builder("posts");
    builder.AddInt64Column("id");
    builder.AddInt64Column("owner_user_id");
    builder.AddInt64Column("score");
    builder.AddInt64Column("view_count");
    builder.AddInt64Column("answer_count");
    builder.AddCategoricalColumn("post_type", MakeDictionary("ptype", 2));
    for (int64_t p = 0; p < num_posts; ++p) {
      int64_t owner = owner_dist.Sample(rng);
      int64_t rep = user_reputation[static_cast<size_t>(owner)];
      int64_t score = rep / 800 + rng.UniformInt(0, 4);
      int64_t view_count = score * 50 + rng.UniformInt(0, 100);
      int64_t answer_count = Clamp(score / 2 + rng.UniformInt(0, 2), 0, 20);
      int64_t post_type = rng.Bernoulli(0.3) ? 1 : 0;
      post_score[static_cast<size_t>(p)] = score;
      builder.AppendRow(
          {p, owner, score, view_count, answer_count, post_type});
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- comments ---
  {
    TableBuilder builder("comments");
    builder.AddInt64Column("id");
    builder.AddInt64Column("post_id");
    builder.AddInt64Column("user_id");
    builder.AddInt64Column("score");
    int64_t comment_id = 0;
    for (int64_t p = 0; p < num_posts; ++p) {
      size_t pi = static_cast<size_t>(p);
      int64_t fanout =
          comment_fanout_dist.Sample(rng) + (post_score[pi] > 8 ? 4 : 0);
      for (int64_t f = 0; f < fanout; ++f) {
        int64_t user = commenter_dist.Sample(rng);
        int64_t score = Clamp(post_score[pi] / 3 + rng.UniformInt(0, 2), 0, 30);
        builder.AppendRow({comment_id++, p, user, score});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- badges ---
  {
    TableBuilder builder("badges");
    builder.AddInt64Column("user_id");
    builder.AddCategoricalColumn("badge_class", MakeDictionary("bc", 3));
    builder.AddInt64Column("year");
    for (int64_t u = 0; u < num_users; ++u) {
      size_t ui = static_cast<size_t>(u);
      int64_t fanout = badge_fanout_dist.Sample(rng) +
                       user_reputation[ui] / 3000;
      for (int64_t f = 0; f < fanout; ++f) {
        // High-reputation users earn gold (class 0).
        int64_t badge_class =
            user_reputation[ui] > 6000 ? rng.UniformInt(0, 1)
                                       : rng.UniformInt(1, 2);
        builder.AppendRow({u, badge_class, rng.UniformInt(2010, 2023)});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- votes ---
  {
    TableBuilder builder("votes");
    builder.AddInt64Column("post_id");
    builder.AddCategoricalColumn("vote_type", MakeDictionary("vt", 5));
    builder.AddInt64Column("year");
    for (int64_t p = 0; p < num_posts; ++p) {
      size_t pi = static_cast<size_t>(p);
      int64_t fanout =
          vote_fanout_dist.Sample(rng) + Clamp(post_score[pi], 0, 12);
      for (int64_t f = 0; f < fanout; ++f) {
        int64_t vote_type = rng.Bernoulli(0.7) ? 0 : rng.UniformInt(1, 4);
        builder.AppendRow({p, vote_type, rng.UniformInt(2010, 2023)});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "users",
                              .left_column = "id",
                              .right_table = "posts",
                              .right_column = "owner_user_id"})
                .ok());
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "posts",
                              .left_column = "id",
                              .right_table = "comments",
                              .right_column = "post_id"})
                .ok());
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "users",
                              .left_column = "id",
                              .right_table = "comments",
                              .right_column = "user_id"})
                .ok());
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "users",
                              .left_column = "id",
                              .right_table = "badges",
                              .right_column = "user_id"})
                .ok());
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "posts",
                              .left_column = "id",
                              .right_table = "votes",
                              .right_column = "post_id"})
                .ok());
  return catalog;
}

Catalog MakeTpchLite(const DatasetOptions& options) {
  Rng rng(options.seed + 2);
  Catalog catalog;

  const int64_t num_customers = Scaled(5000, options.scale);
  const int64_t num_orders = Scaled(30000, options.scale);
  const int64_t num_parts = 2000;

  // --- customer: independent, uniform-ish attributes ---
  {
    TableBuilder builder("customer");
    builder.AddInt64Column("id");
    builder.AddCategoricalColumn("nation", MakeDictionary("nation", 25));
    builder.AddCategoricalColumn("segment", MakeDictionary("seg", 5));
    builder.AddInt64Column("acctbal");
    for (int64_t c = 0; c < num_customers; ++c) {
      builder.AppendRow({c, rng.UniformInt(0, 24), rng.UniformInt(0, 4),
                         rng.UniformInt(-999, 9999)});
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- orders ---
  std::vector<int64_t> order_year(num_orders);
  {
    TableBuilder builder("orders");
    builder.AddInt64Column("id");
    builder.AddInt64Column("cust_id");
    builder.AddCategoricalColumn("status", MakeDictionary("st", 3));
    builder.AddInt64Column("order_year");
    builder.AddCategoricalColumn("priority", MakeDictionary("prio", 5));
    for (int64_t o = 0; o < num_orders; ++o) {
      int64_t year = rng.UniformInt(1992, 1998);
      order_year[static_cast<size_t>(o)] = year;
      builder.AppendRow({o, rng.UniformInt(0, num_customers - 1),
                         rng.UniformInt(0, 2), year, rng.UniformInt(0, 4)});
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  // --- lineitem ---
  {
    TableBuilder builder("lineitem");
    builder.AddInt64Column("order_id");
    builder.AddInt64Column("part_id");
    builder.AddInt64Column("quantity");
    builder.AddInt64Column("discount_pct");
    builder.AddInt64Column("ship_year");
    for (int64_t o = 0; o < num_orders; ++o) {
      int64_t fanout = rng.UniformInt(1, 4);
      for (int64_t f = 0; f < fanout; ++f) {
        builder.AppendRow({o, rng.UniformInt(0, num_parts - 1),
                           rng.UniformInt(1, 50), rng.UniformInt(0, 10),
                           order_year[static_cast<size_t>(o)] +
                               rng.UniformInt(0, 1)});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
  }

  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "customer",
                              .left_column = "id",
                              .right_table = "orders",
                              .right_column = "cust_id"})
                .ok());
  LQO_CHECK(catalog
                .AddJoinEdge({.left_table = "orders",
                              .left_column = "id",
                              .right_table = "lineitem",
                              .right_column = "order_id"})
                .ok());
  return catalog;
}

Catalog MakeChainSchema(int num_tables, int64_t rows_per_table,
                        uint64_t seed) {
  LQO_CHECK_GE(num_tables, 1);
  LQO_CHECK_GT(rows_per_table, 0);
  Rng rng(seed);
  Catalog catalog;
  ZipfDistribution fk_dist(rows_per_table, 0.8);
  ZipfDistribution val_dist(100, 1.2);
  for (int t = 0; t < num_tables; ++t) {
    TableBuilder builder("t" + std::to_string(t));
    builder.AddInt64Column("id");
    if (t > 0) builder.AddInt64Column("prev_id");
    builder.AddInt64Column("val");
    for (int64_t r = 0; r < rows_per_table; ++r) {
      if (t > 0) {
        builder.AppendRow({r, fk_dist.Sample(rng), val_dist.Sample(rng)});
      } else {
        builder.AppendRow({r, val_dist.Sample(rng)});
      }
    }
    LQO_CHECK(catalog.AddTable(builder.Build()).ok());
    if (t > 0) {
      LQO_CHECK(catalog
                    .AddJoinEdge({.left_table = "t" + std::to_string(t - 1),
                                  .left_column = "id",
                                  .right_table = "t" + std::to_string(t),
                                  .right_column = "prev_id"})
                    .ok());
    }
  }
  return catalog;
}

StatusOr<Catalog> MakeDataset(const std::string& name,
                              const DatasetOptions& options) {
  if (name == "imdb_lite") return MakeImdbLite(options);
  if (name == "stats_lite") return MakeStatsLite(options);
  if (name == "tpch_lite") return MakeTpchLite(options);
  return Status::InvalidArgument("unknown dataset '" + name + "'");
}

std::vector<std::string> DatasetNames() {
  return {"imdb_lite", "stats_lite", "tpch_lite"};
}

}  // namespace lqo
