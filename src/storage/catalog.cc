#include "storage/catalog.h"

namespace lqo {

Status Catalog::AddTable(Table table) {
  if (tables_.count(table.name()) > 0) {
    return Status::InvalidArgument("duplicate table '" + table.name() + "'");
  }
  table_names_.push_back(table.name());
  std::string name = table.name();
  tables_.emplace(std::move(name), std::move(table));
  return Status::Ok();
}

Status Catalog::AddJoinEdge(const JoinEdge& edge) {
  auto check_end = [&](const std::string& table,
                       const std::string& column) -> Status {
    auto t = GetTable(table);
    if (!t.ok()) return t.status();
    if (!(*t)->HasColumn(column)) {
      return Status::NotFound("no column '" + column + "' in '" + table + "'");
    }
    return Status::Ok();
  };
  LQO_RETURN_IF_ERROR(check_end(edge.left_table, edge.left_column));
  LQO_RETURN_IF_ERROR(check_end(edge.right_table, edge.right_column));
  join_edges_.push_back(edge);
  return Status::Ok();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

StatusOr<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "' in catalog");
  }
  return &it->second;
}

std::vector<JoinEdge> Catalog::EdgesOf(const std::string& table) const {
  std::vector<JoinEdge> result;
  for (const JoinEdge& edge : join_edges_) {
    if (edge.left_table == table || edge.right_table == table) {
      result.push_back(edge);
    }
  }
  return result;
}

size_t Catalog::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.num_rows();
  return total;
}

}  // namespace lqo
