#ifndef LQO_STORAGE_DATASETS_H_
#define LQO_STORAGE_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"

namespace lqo {

/// Options for the synthetic dataset generators.
struct DatasetOptions {
  /// Deterministic seed; the same (name, seed, scale) always yields the same
  /// bytes.
  uint64_t seed = 42;
  /// Multiplies all table row counts (1.0 = default laboratory scale).
  double scale = 1.0;
};

/// IMDB-like snowflake with *strong* skew and cross-table correlation, the
/// regime where the paper reports traditional estimators break down (the
/// JOB/CEB role). Fact table `title`; satellites movie_companies,
/// movie_keyword, cast_info, movie_info.
Catalog MakeImdbLite(const DatasetOptions& options);

/// Stack-exchange-like schema with correlated user/post activity, standing
/// in for the STATS benchmark of Han et al. [12]. Tables users, posts,
/// comments, badges, votes.
Catalog MakeStatsLite(const DatasetOptions& options);

/// TPC-H-like schema with mostly-uniform, independent attributes — the
/// "oversimplified synthetic benchmark" regime the paper contrasts with
/// real-world data. Tables customer, orders, lineitem.
Catalog MakeTpchLite(const DatasetOptions& options);

/// Chain schema t0 - t1 - ... - t(n-1) joined on FK edges, used by the
/// join-order scaling experiments (plans over up to ~14 tables, beyond the
/// 3-5 tables of the benchmark schemas). Each table has a skewed payload
/// column `val` for predicates.
Catalog MakeChainSchema(int num_tables, int64_t rows_per_table,
                        uint64_t seed = 52);

/// Dispatches by name: "imdb_lite", "stats_lite", or "tpch_lite".
StatusOr<Catalog> MakeDataset(const std::string& name,
                              const DatasetOptions& options);

/// Names accepted by MakeDataset.
std::vector<std::string> DatasetNames();

}  // namespace lqo

#endif  // LQO_STORAGE_DATASETS_H_
