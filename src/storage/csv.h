#ifndef LQO_STORAGE_CSV_H_
#define LQO_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/catalog.h"

namespace lqo {

/// Writes a table as CSV with a two-line header:
///   line 1: column names
///   line 2: column types ("int64" or "categorical")
/// Categorical values are written as their dictionary strings.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a table written by WriteCsv. The table name is taken from
/// `table_name`; categorical dictionaries are rebuilt (sorted) from the
/// data.
StatusOr<Table> ReadCsv(const std::string& path,
                        const std::string& table_name);

/// Dumps every table of a catalog into `directory` as <table>.csv plus a
/// `schema.txt` listing the join edges ("a.x=b.y" per line).
Status WriteCatalogCsv(const Catalog& catalog, const std::string& directory);

/// Loads a catalog previously written by WriteCatalogCsv.
StatusOr<Catalog> ReadCatalogCsv(const std::string& directory);

}  // namespace lqo

#endif  // LQO_STORAGE_CSV_H_
