#ifndef LQO_STORAGE_COLUMN_H_
#define LQO_STORAGE_COLUMN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lqo {

/// Physical column types. All columns store int64 values; categorical
/// columns additionally carry a dictionary mapping codes to strings, with
/// codes assigned in dictionary sort order so range predicates on strings
/// reduce to range predicates on codes.
enum class ColumnType { kInt64, kCategorical };

/// An immutable column of a table. Built via TableBuilder, which fills in
/// the derived statistics (min/max/distinct).
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  std::vector<int64_t> data;
  /// Only for kCategorical: dictionary[code] is the string value.
  std::vector<std::string> dictionary;

  // Derived on build.
  int64_t min_value = 0;
  int64_t max_value = 0;
  int64_t num_distinct = 0;

  /// Contiguous view of the column values, for the vectorized kernels
  /// (engine/filter_kernels.h): one span covers the whole column, so scan
  /// batches index it directly with absolute row ids.
  std::span<const int64_t> Span() const { return {data.data(), data.size()}; }

  /// Renders a cell for debugging (dictionary-decoded when categorical).
  std::string ValueToString(size_t row) const;
};

}  // namespace lqo

#endif  // LQO_STORAGE_COLUMN_H_
