#ifndef LQO_STORAGE_TABLE_H_
#define LQO_STORAGE_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace lqo {

/// An immutable in-memory columnar table.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t index) const;
  const std::vector<Column>& columns() const { return columns_; }

  /// Contiguous span of one column's values (vectorized-kernel accessor).
  std::span<const int64_t> ColumnSpan(size_t index) const {
    return column(index).Span();
  }

  /// Index of the column named `name`, or kNotFound error.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// True if a column named `name` exists.
  bool HasColumn(const std::string& name) const;

  /// Value at (row, column index).
  int64_t ValueAt(size_t row, size_t col) const;

  /// One-line schema summary for logs.
  std::string SchemaString() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Incrementally builds a Table row by row and computes derived per-column
/// statistics (min / max / distinct count) on Build().
class TableBuilder {
 public:
  explicit TableBuilder(std::string table_name);

  /// Declares an int64 column; returns its index.
  size_t AddInt64Column(const std::string& name);

  /// Declares a categorical column with the given dictionary (codes are
  /// positions in `dictionary`); returns its index.
  size_t AddCategoricalColumn(const std::string& name,
                              std::vector<std::string> dictionary);

  /// Appends one row; `values` arity must match the declared columns.
  void AppendRow(const std::vector<int64_t>& values);

  size_t num_rows() const { return num_rows_; }

  /// Finalizes the table. The builder must not be reused afterwards.
  Table Build();

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  bool built_ = false;
};

}  // namespace lqo

#endif  // LQO_STORAGE_TABLE_H_
