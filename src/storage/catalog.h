#ifndef LQO_STORAGE_CATALOG_H_
#define LQO_STORAGE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace lqo {

/// A declared joinable column pair, typically a foreign-key reference.
/// Workload generators only emit equi-joins along these edges, mirroring how
/// JOB / STATS-CEB queries join along schema references.
struct JoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;

  std::string ToString() const {
    return left_table + "." + left_column + " = " + right_table + "." +
           right_column;
  }
};

/// Owns the tables of a database instance plus its schema join graph.
class Catalog {
 public:
  Catalog() = default;

  // Movable but not copyable: tables can be large.
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table; fails on duplicate name.
  Status AddTable(Table table);

  /// Declares a joinable column pair. Both ends must exist.
  Status AddJoinEdge(const JoinEdge& edge);

  bool HasTable(const std::string& name) const;
  StatusOr<const Table*> GetTable(const std::string& name) const;

  /// All table names in registration order.
  const std::vector<std::string>& table_names() const { return table_names_; }

  const std::vector<JoinEdge>& join_edges() const { return join_edges_; }

  /// Join edges that touch `table`.
  std::vector<JoinEdge> EdgesOf(const std::string& table) const;

  /// Total rows across all tables (for reporting).
  size_t TotalRows() const;

 private:
  std::map<std::string, Table> tables_;
  std::vector<std::string> table_names_;
  std::vector<JoinEdge> join_edges_;
};

}  // namespace lqo

#endif  // LQO_STORAGE_CATALOG_H_
