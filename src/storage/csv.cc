#include "storage/csv.h"

#include <cerrno>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/str_util.h"

namespace lqo {
namespace {

constexpr char kSchemaFile[] = "schema.txt";
constexpr char kTablesFile[] = "tables.txt";

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  std::vector<std::string> names, types;
  for (const Column& col : table.columns()) {
    names.push_back(col.name);
    types.push_back(col.type == ColumnType::kCategorical ? "categorical"
                                                         : "int64");
  }
  out << StrJoin(names, ",") << "\n" << StrJoin(types, ",") << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ",";
      out << table.column(c).ValueToString(r);
    }
    out << "\n";
  }
  if (!out.good()) return Status::Internal("write failed for '" + path + "'");
  return Status::Ok();
}

StatusOr<Table> ReadCsv(const std::string& path,
                        const std::string& table_name) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string names_line, types_line;
  if (!std::getline(in, names_line) || !std::getline(in, types_line)) {
    return Status::InvalidArgument("'" + path + "' missing header lines");
  }
  std::vector<std::string> names = StrSplit(names_line, ',');
  std::vector<std::string> types = StrSplit(types_line, ',');
  if (names.size() != types.size() || names.empty()) {
    return Status::InvalidArgument("'" + path + "' malformed header");
  }
  size_t num_columns = names.size();
  std::vector<bool> categorical(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    if (types[c] == "categorical") {
      categorical[c] = true;
    } else if (types[c] == "int64") {
      categorical[c] = false;
    } else {
      return Status::InvalidArgument("unknown column type '" + types[c] +
                                     "' in '" + path + "'");
    }
  }

  // First pass: collect raw cells (bounded by file size; tables here are
  // laboratory-scale).
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = StrSplit(line, ',');
    if (cells.size() != num_columns) {
      return Status::InvalidArgument("row with " +
                                     std::to_string(cells.size()) +
                                     " cells, expected " +
                                     std::to_string(num_columns));
    }
    rows.push_back(std::move(cells));
  }

  // Rebuild dictionaries for categorical columns.
  std::vector<std::vector<std::string>> dictionaries(num_columns);
  std::vector<std::map<std::string, int64_t>> code_of(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    if (!categorical[c]) continue;
    std::vector<std::string> values;
    for (const auto& row : rows) values.push_back(row[c]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    for (size_t i = 0; i < values.size(); ++i) {
      code_of[c][values[i]] = static_cast<int64_t>(i);
    }
    dictionaries[c] = std::move(values);
  }

  TableBuilder builder(table_name);
  for (size_t c = 0; c < num_columns; ++c) {
    if (categorical[c]) {
      builder.AddCategoricalColumn(names[c], dictionaries[c]);
    } else {
      builder.AddInt64Column(names[c]);
    }
  }
  std::vector<int64_t> values(num_columns);
  for (const auto& row : rows) {
    for (size_t c = 0; c < num_columns; ++c) {
      if (categorical[c]) {
        values[c] = code_of[c].at(row[c]);
      } else {
        const char* begin = row[c].c_str();
        char* end = nullptr;
        errno = 0;
        values[c] = std::strtoll(begin, &end, 10);
        if (errno != 0 || end == begin || *end != '\0') {
          return Status::InvalidArgument("non-integer cell '" + row[c] +
                                         "' in int64 column '" + names[c] +
                                         "'");
        }
      }
    }
    builder.AppendRow(values);
  }
  return builder.Build();
}

Status WriteCatalogCsv(const Catalog& catalog, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory '" + directory +
                                   "': " + ec.message());
  }
  std::ofstream tables(directory + "/" + kTablesFile);
  for (const std::string& name : catalog.table_names()) {
    LQO_RETURN_IF_ERROR(
        WriteCsv(**catalog.GetTable(name), directory + "/" + name + ".csv"));
    tables << name << "\n";
  }
  std::ofstream schema(directory + "/" + kSchemaFile);
  for (const JoinEdge& edge : catalog.join_edges()) {
    schema << edge.left_table << "." << edge.left_column << "="
           << edge.right_table << "." << edge.right_column << "\n";
  }
  if (!schema.good() || !tables.good()) {
    return Status::Internal("failed writing catalog metadata");
  }
  return Status::Ok();
}

StatusOr<Catalog> ReadCatalogCsv(const std::string& directory) {
  std::ifstream tables(directory + "/" + kTablesFile);
  if (!tables.is_open()) {
    return Status::NotFound("no " + std::string(kTablesFile) + " in '" +
                            directory + "'");
  }
  Catalog catalog;
  std::string name;
  while (std::getline(tables, name)) {
    if (name.empty()) continue;
    auto table = ReadCsv(directory + "/" + name + ".csv", name);
    if (!table.ok()) return table.status();
    LQO_RETURN_IF_ERROR(catalog.AddTable(std::move(*table)));
  }

  std::ifstream schema(directory + "/" + kSchemaFile);
  if (schema.is_open()) {
    std::string line;
    while (std::getline(schema, line)) {
      line = StripWhitespace(line);
      if (line.empty()) continue;
      size_t eq = line.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("malformed schema line '" + line + "'");
      }
      auto parse_ref = [](const std::string& ref)
          -> StatusOr<std::pair<std::string, std::string>> {
        size_t dot = ref.find('.');
        if (dot == std::string::npos) {
          return Status::InvalidArgument("malformed column ref '" + ref + "'");
        }
        return std::make_pair(ref.substr(0, dot), ref.substr(dot + 1));
      };
      auto left = parse_ref(line.substr(0, eq));
      if (!left.ok()) return left.status();
      auto right = parse_ref(line.substr(eq + 1));
      if (!right.ok()) return right.status();
      LQO_RETURN_IF_ERROR(catalog.AddJoinEdge({.left_table = left->first,
                                               .left_column = left->second,
                                               .right_table = right->first,
                                               .right_column = right->second}));
    }
  }
  return catalog;
}

}  // namespace lqo
