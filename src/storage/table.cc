#include "storage/table.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace lqo {

std::string Column::ValueToString(size_t row) const {
  LQO_CHECK_LT(row, data.size());
  int64_t v = data[row];
  if (type == ColumnType::kCategorical) {
    LQO_CHECK_GE(v, 0);
    LQO_CHECK_LT(static_cast<size_t>(v), dictionary.size());
    return dictionary[static_cast<size_t>(v)];
  }
  return std::to_string(v);
}

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  num_rows_ = columns_.empty() ? 0 : columns_[0].data.size();
  for (const Column& col : columns_) {
    LQO_CHECK_EQ(col.data.size(), num_rows_)
        << "ragged column " << col.name << " in table " << name_;
  }
}

const Column& Table::column(size_t index) const {
  LQO_CHECK_LT(index, columns_.size());
  return columns_[index];
}

StatusOr<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ + "'");
}

bool Table::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

int64_t Table::ValueAt(size_t row, size_t col) const {
  LQO_CHECK_LT(col, columns_.size());
  LQO_CHECK_LT(row, num_rows_);
  return columns_[col].data[row];
}

std::string Table::SchemaString() const {
  std::ostringstream out;
  out << name_ << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ", ";
    out << columns_[i].name;
  }
  out << ") rows=" << num_rows_;
  return out.str();
}

TableBuilder::TableBuilder(std::string table_name)
    : table_name_(std::move(table_name)) {}

size_t TableBuilder::AddInt64Column(const std::string& name) {
  LQO_CHECK_EQ(num_rows_, 0u) << "add columns before appending rows";
  Column col;
  col.name = name;
  col.type = ColumnType::kInt64;
  columns_.push_back(std::move(col));
  return columns_.size() - 1;
}

size_t TableBuilder::AddCategoricalColumn(const std::string& name,
                                          std::vector<std::string> dictionary) {
  LQO_CHECK_EQ(num_rows_, 0u) << "add columns before appending rows";
  LQO_CHECK(std::is_sorted(dictionary.begin(), dictionary.end()))
      << "dictionary for " << name << " must be sorted so code order matches "
      << "string order";
  Column col;
  col.name = name;
  col.type = ColumnType::kCategorical;
  col.dictionary = std::move(dictionary);
  columns_.push_back(std::move(col));
  return columns_.size() - 1;
}

void TableBuilder::AppendRow(const std::vector<int64_t>& values) {
  LQO_CHECK_EQ(values.size(), columns_.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (columns_[i].type == ColumnType::kCategorical) {
      LQO_CHECK_GE(values[i], 0);
      LQO_CHECK_LT(static_cast<size_t>(values[i]), columns_[i].dictionary.size())
          << "categorical code out of range for " << columns_[i].name;
    }
    columns_[i].data.push_back(values[i]);
  }
  ++num_rows_;
}

Table TableBuilder::Build() {
  LQO_CHECK(!built_) << "TableBuilder::Build called twice";
  built_ = true;
  for (Column& col : columns_) {
    if (col.data.empty()) {
      col.min_value = 0;
      col.max_value = 0;
      col.num_distinct = 0;
      continue;
    }
    auto [min_it, max_it] = std::minmax_element(col.data.begin(), col.data.end());
    col.min_value = *min_it;
    col.max_value = *max_it;
    std::unordered_set<int64_t> distinct(col.data.begin(), col.data.end());
    col.num_distinct = static_cast<int64_t>(distinct.size());
  }
  return Table(std::move(table_name_), std::move(columns_));
}

}  // namespace lqo
