#include "joinorder/join_env.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace lqo {
namespace {

bool Crossing(const Query& query, TableSet left, TableSet right) {
  for (const QueryJoin& j : query.joins()) {
    bool ll = ContainsTable(left, j.left_table);
    bool lr = ContainsTable(right, j.left_table);
    bool rl = ContainsTable(left, j.right_table);
    bool rr = ContainsTable(right, j.right_table);
    if ((ll && rr) || (lr && rl)) return true;
  }
  return false;
}

double Log1p(double v) { return std::log(std::max(v, 0.0) + 1.0); }

}  // namespace

JoinOrderEnv::JoinOrderEnv(const Query* query, const StatsCatalog* stats,
                           const AnalyticalCostModel* cost_model,
                           CardinalityProvider* cards)
    : query_(query), stats_(stats), cost_model_(cost_model), cards_(cards) {
  LQO_CHECK(query_ != nullptr);
  LQO_CHECK(query_->IsConnected(query_->AllTables()));
  Reset();
}

void JoinOrderEnv::Reset() {
  components_.clear();
  total_cost_ = 0.0;
  for (int t = 0; t < query_->num_tables(); ++t) {
    Component component;
    component.plan = MakeScanNode(t);
    component.card = cards_->Cardinality(Subquery{query_, TableBit(t)});
    const std::string& name =
        query_->tables()[static_cast<size_t>(t)].table_name;
    component.cost = cost_model_->ScanCost(
        static_cast<double>(stats_->Of(name).row_count),
        static_cast<int>(query_->PredicatesOf(t).size()));
    component.plan->estimated_cardinality = component.card;
    component.plan->estimated_cost = component.cost;
    total_cost_ += component.cost;
    components_.push_back(std::move(component));
  }
}

std::vector<JoinOrderEnv::Action> JoinOrderEnv::LegalActions() const {
  std::vector<Action> actions;
  for (size_t i = 0; i < components_.size(); ++i) {
    for (size_t j = 0; j < components_.size(); ++j) {
      if (i == j) continue;
      if (Crossing(*query_, components_[i].plan->table_set,
                   components_[j].plan->table_set)) {
        actions.push_back({i, j});
      }
    }
  }
  return actions;
}

double JoinOrderEnv::Step(const Action& action) {
  LQO_CHECK_LT(action.left, components_.size());
  LQO_CHECK_LT(action.right, components_.size());
  LQO_CHECK_NE(action.left, action.right);
  Component& left = components_[action.left];
  Component& right = components_[action.right];
  TableSet merged_set = left.plan->table_set | right.plan->table_set;
  double merged_card = cards_->Cardinality(Subquery{query_, merged_set});

  // Best local algorithm.
  double best_cost = std::numeric_limits<double>::infinity();
  JoinAlgorithm best_algo = JoinAlgorithm::kHashJoin;
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kHashJoin, JoinAlgorithm::kNestedLoopJoin,
        JoinAlgorithm::kMergeJoin}) {
    double cost =
        cost_model_->JoinCost(algo, left.card, right.card, merged_card);
    if (cost < best_cost) {
      best_cost = cost;
      best_algo = algo;
    }
  }

  Component merged;
  merged.card = merged_card;
  merged.cost = left.cost + right.cost + best_cost;
  merged.plan =
      MakeJoinNode(best_algo, std::move(left.plan), std::move(right.plan));
  merged.plan->estimated_cardinality = merged_card;
  merged.plan->estimated_cost = best_cost;
  total_cost_ += best_cost;

  size_t hi = std::max(action.left, action.right);
  size_t lo = std::min(action.left, action.right);
  components_.erase(components_.begin() + static_cast<long>(hi));
  components_.erase(components_.begin() + static_cast<long>(lo));
  components_.push_back(std::move(merged));
  return best_cost;
}

std::vector<double> JoinOrderEnv::ActionFeatures(const Action& action) const {
  const Component& left = components_[action.left];
  const Component& right = components_[action.right];
  TableSet merged = left.plan->table_set | right.plan->table_set;
  double merged_card = cards_->Cardinality(Subquery{query_, merged});
  std::vector<double> features = {
      Log1p(left.card),
      Log1p(right.card),
      Log1p(merged_card),
      static_cast<double>(PopCount(left.plan->table_set)),
      static_cast<double>(PopCount(right.plan->table_set)),
      static_cast<double>(components_.size()),
      Log1p(merged_card) - Log1p(left.card) - Log1p(right.card),
      static_cast<double>(query_->num_tables()),
  };
  LQO_CHECK_EQ(features.size(), kFeatureDim);
  return features;
}

PhysicalPlan JoinOrderEnv::ExtractPlan() {
  LQO_CHECK(Done());
  PhysicalPlan plan;
  plan.query = query_;
  plan.root = std::move(components_[0].plan);
  components_.clear();
  return plan;
}

}  // namespace lqo
