#ifndef LQO_JOINORDER_JOIN_ENV_H_
#define LQO_JOINORDER_JOIN_ENV_H_

#include <memory>
#include <vector>

#include "engine/plan.h"
#include "optimizer/cardinality_interface.h"
#include "optimizer/cost_model.h"
#include "optimizer/table_stats.h"

namespace lqo {

/// The join-order MDP shared by the learned search methods (DQ [15],
/// ReJoin [24], RTOS [73], SkinnerDB [56]): a state is a forest of joined
/// components; an action joins two connected components (the physical
/// algorithm is chosen greedily per join); an episode ends with a complete
/// plan whose total analytical cost is the (negative) return.
class JoinOrderEnv {
 public:
  JoinOrderEnv(const Query* query, const StatsCatalog* stats,
               const AnalyticalCostModel* cost_model,
               CardinalityProvider* cards);

  /// Restarts the episode (components = single-table scans).
  void Reset();

  bool Done() const { return components_.size() == 1; }

  struct Action {
    size_t left = 0;
    size_t right = 0;
  };

  /// Ordered pairs of component indices sharing a join edge.
  std::vector<Action> LegalActions() const;

  /// Applies the action; returns the incremental join cost.
  double Step(const Action& action);

  /// Total accumulated cost (scans + joins so far).
  double total_cost() const { return total_cost_; }

  /// RTOS-style state+action featurization: cardinalities and structure of
  /// the two components and the merged result.
  std::vector<double> ActionFeatures(const Action& action) const;
  static constexpr size_t kFeatureDim = 8;

  /// Moves the finished plan out (requires Done()).
  PhysicalPlan ExtractPlan();

  const Query& query() const { return *query_; }

 private:
  struct Component {
    std::unique_ptr<PlanNode> plan;
    double card = 0.0;
    double cost = 0.0;  // subtree cost
  };

  const Query* query_;
  const StatsCatalog* stats_;
  const AnalyticalCostModel* cost_model_;
  CardinalityProvider* cards_;
  std::vector<Component> components_;
  double total_cost_ = 0.0;
};

}  // namespace lqo

#endif  // LQO_JOINORDER_JOIN_ENV_H_
