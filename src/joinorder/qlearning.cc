#include "joinorder/qlearning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace lqo {

QLearningJoinOrderer::QLearningJoinOrderer(
    const StatsCatalog* stats, const AnalyticalCostModel* cost_model,
    CardinalityProvider* cards, QLearningOptions options)
    : stats_(stats),
      cost_model_(cost_model),
      cards_(cards),
      options_(options) {}

double QLearningJoinOrderer::QValue(const std::vector<double>& features) const {
  if (!trained_) return 0.0;
  return q_model_.Predict(features);
}

void QLearningJoinOrderer::Train(const std::vector<Query>& queries) {
  Rng rng(options_.seed);
  int total_episodes = options_.episodes_per_query *
                       static_cast<int>(queries.size());
  int refit_interval =
      std::max(1, total_episodes / std::max(1, options_.num_refits));
  int episode = 0;

  for (int e = 0; e < options_.episodes_per_query; ++e) {
    for (const Query& query : queries) {
      if (query.num_tables() < 2) continue;
      double epsilon =
          options_.epsilon_start +
          (options_.epsilon_end - options_.epsilon_start) *
              static_cast<double>(episode) /
              std::max(1, total_episodes - 1);

      JoinOrderEnv env(&query, stats_, cost_model_, cards_);
      // Transitions of this episode: (features, cost incurred afterwards).
      std::vector<std::vector<double>> features;
      std::vector<double> incremental_costs;
      while (!env.Done()) {
        std::vector<JoinOrderEnv::Action> actions = env.LegalActions();
        LQO_CHECK(!actions.empty());
        size_t chosen;
        if (rng.Bernoulli(epsilon)) {
          chosen = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(actions.size()) - 1));
        } else {
          chosen = 0;
          double best = std::numeric_limits<double>::infinity();
          for (size_t a = 0; a < actions.size(); ++a) {
            double q = QValue(env.ActionFeatures(actions[a]));
            if (q < best) {
              best = q;
              chosen = a;
            }
          }
        }
        features.push_back(env.ActionFeatures(actions[chosen]));
        incremental_costs.push_back(env.Step(actions[chosen]));
      }
      // Monte-Carlo returns: cost-to-go from each step, in log space.
      double to_go = 0.0;
      for (size_t i = features.size(); i > 0; --i) {
        to_go += incremental_costs[i - 1];
        replay_features_.push_back(std::move(features[i - 1]));
        replay_returns_.push_back(std::log(to_go + 1.0));
      }
      ++episode;
      if (episode % refit_interval == 0 && !replay_features_.empty()) {
        GbdtOptions gbdt_options;
        gbdt_options.num_trees = 80;
        gbdt_options.tree.max_depth = 5;
        q_model_ = GradientBoostedTrees(gbdt_options);
        q_model_.Fit(replay_features_, replay_returns_);
        trained_ = true;
      }
    }
  }
  if (!replay_features_.empty()) {
    GbdtOptions gbdt_options;
    gbdt_options.num_trees = 120;
    gbdt_options.tree.max_depth = 5;
    q_model_ = GradientBoostedTrees(gbdt_options);
    q_model_.Fit(replay_features_, replay_returns_);
    trained_ = true;
  }
}

PhysicalPlan QLearningJoinOrderer::Plan(const Query& query,
                                        double* total_cost) {
  JoinOrderEnv env(&query, stats_, cost_model_, cards_);
  while (!env.Done()) {
    std::vector<JoinOrderEnv::Action> actions = env.LegalActions();
    LQO_CHECK(!actions.empty());
    size_t chosen = 0;
    double best = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < actions.size(); ++a) {
      double q = QValue(env.ActionFeatures(actions[a]));
      if (q < best) {
        best = q;
        chosen = a;
      }
    }
    env.Step(actions[chosen]);
  }
  if (total_cost != nullptr) *total_cost = env.total_cost();
  return env.ExtractPlan();
}

}  // namespace lqo
