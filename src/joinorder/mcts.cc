#include "joinorder/mcts.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/logging.h"
#include "common/rng.h"

namespace lqo {
namespace {

struct TreeNode {
  int visits = 0;
  double total_reward = 0.0;
  /// Child index per action (actions identified positionally; the env is
  /// deterministic so replaying an action sequence reproduces the state).
  std::map<std::pair<size_t, size_t>, int> children;
  size_t num_legal = 0;
};

// Greedy (min incremental cost) episode: the reward-normalization baseline.
double GreedyCost(JoinOrderEnv* env) {
  env->Reset();
  while (!env->Done()) {
    std::vector<JoinOrderEnv::Action> actions = env->LegalActions();
    size_t best = 0;
    double best_card = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < actions.size(); ++a) {
      // Greedy on resulting cardinality (GOO-style).
      std::vector<double> f = env->ActionFeatures(actions[a]);
      if (f[2] < best_card) {
        best_card = f[2];
        best = a;
      }
    }
    env->Step(actions[best]);
  }
  return env->total_cost();
}

}  // namespace

MctsJoinOrderer::MctsJoinOrderer(const StatsCatalog* stats,
                                 const AnalyticalCostModel* cost_model,
                                 CardinalityProvider* cards,
                                 MctsOptions options)
    : stats_(stats),
      cost_model_(cost_model),
      cards_(cards),
      options_(options) {}

PhysicalPlan MctsJoinOrderer::Plan(const Query& query, double* total_cost) {
  JoinOrderEnv env(&query, stats_, cost_model_, cards_);
  if (query.num_tables() < 2) {
    if (total_cost != nullptr) *total_cost = env.total_cost();
    return env.ExtractPlan();
  }

  Rng rng(options_.seed);
  double baseline = GreedyCost(&env);

  std::vector<TreeNode> nodes(1);
  std::vector<std::pair<size_t, size_t>> best_sequence;
  double best_cost = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options_.iterations; ++iter) {
    env.Reset();
    std::vector<int> path = {0};
    std::vector<std::pair<size_t, size_t>> sequence;

    // Selection.
    while (!env.Done()) {
      std::vector<JoinOrderEnv::Action> actions = env.LegalActions();
      TreeNode& node = nodes[static_cast<size_t>(path.back())];
      node.num_legal = actions.size();
      if (node.children.size() < actions.size()) break;  // expandable.
      // UCB over children.
      double best_ucb = -std::numeric_limits<double>::infinity();
      std::pair<size_t, size_t> best_action{0, 0};
      int best_child = -1;
      for (const JoinOrderEnv::Action& action : actions) {
        auto key = std::make_pair(action.left, action.right);
        int child = node.children.at(key);
        const TreeNode& c = nodes[static_cast<size_t>(child)];
        double mean = c.total_reward / std::max(1, c.visits);
        double ucb = mean + options_.exploration *
                                std::sqrt(std::log(std::max(2, node.visits)) /
                                          std::max(1, c.visits));
        if (ucb > best_ucb) {
          best_ucb = ucb;
          best_action = key;
          best_child = child;
        }
      }
      env.Step({best_action.first, best_action.second});
      sequence.push_back(best_action);
      path.push_back(best_child);
    }

    // Expansion.
    if (!env.Done()) {
      std::vector<JoinOrderEnv::Action> actions = env.LegalActions();
      TreeNode& node = nodes[static_cast<size_t>(path.back())];
      std::vector<std::pair<size_t, size_t>> untried;
      for (const JoinOrderEnv::Action& action : actions) {
        auto key = std::make_pair(action.left, action.right);
        if (node.children.find(key) == node.children.end()) {
          untried.push_back(key);
        }
      }
      LQO_CHECK(!untried.empty());
      auto key = untried[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(untried.size()) - 1))];
      nodes.emplace_back();
      int child = static_cast<int>(nodes.size()) - 1;
      nodes[static_cast<size_t>(path.back())].children[key] = child;
      env.Step({key.first, key.second});
      sequence.push_back(key);
      path.push_back(child);

      // Rollout: random completion.
      while (!env.Done()) {
        std::vector<JoinOrderEnv::Action> rollout = env.LegalActions();
        const JoinOrderEnv::Action& action = rollout[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(rollout.size()) - 1))];
        env.Step(action);
        sequence.push_back({action.left, action.right});
      }
    }

    double cost = env.total_cost();
    if (cost < best_cost) {
      best_cost = cost;
      best_sequence = sequence;
    }
    // Reward: baseline ratio clipped to [0, 2]; higher is better.
    double reward = std::clamp(baseline / std::max(cost, 1e-9), 0.0, 2.0);
    for (int node_index : path) {
      TreeNode& node = nodes[static_cast<size_t>(node_index)];
      ++node.visits;
      node.total_reward += reward;
    }
  }

  // Replay the best sequence to build the final plan.
  env.Reset();
  for (const auto& [left, right] : best_sequence) {
    env.Step({left, right});
  }
  LQO_CHECK(env.Done());
  if (total_cost != nullptr) *total_cost = env.total_cost();
  return env.ExtractPlan();
}

}  // namespace lqo
