#ifndef LQO_JOINORDER_ONLINE_SKINNER_H_
#define LQO_JOINORDER_ONLINE_SKINNER_H_

#include <vector>

#include "engine/executor.h"

namespace lqo {

/// Options for the online adaptive executor.
struct OnlineSkinnerOptions {
  /// Time slices the query execution is divided into.
  int num_slices = 60;
  /// Fractional overhead charged per plan switch (state migration).
  double switch_overhead = 0.01;
  /// UCB exploration weight.
  double exploration = 0.6;
};

/// Outcome of one adaptive execution.
struct OnlineSkinnerResult {
  double total_time = 0.0;
  int switches = 0;
  /// Arm the algorithm converged on (most-used in the last quarter).
  size_t preferred_plan = 0;
  /// Oracle references: executing only the best / worst candidate.
  double best_plan_time = 0.0;
  double worst_plan_time = 0.0;
  uint64_t row_count = 0;
};

/// SkinnerDB-style online join-order selection [56] (the Section 2.1.3
/// "online learning" class, with Eddy-RL [58] as the earlier instance):
/// execution proceeds in fixed work slices; before each slice a UCB1 bandit
/// picks which candidate plan processes the next slice, learning plan
/// quality *during* execution with no optimizer estimates at all. The
/// per-slice progress sharing of SkinnerDB is simulated by charging each
/// slice 1/num_slices of the chosen plan's true cost (see DESIGN.md,
/// substitutions); the regret-bounded guarantee — total time close to the
/// best candidate's, whatever the estimates said — is preserved.
class OnlineSkinnerExecutor {
 public:
  OnlineSkinnerExecutor(const Executor* executor,
                        OnlineSkinnerOptions options = OnlineSkinnerOptions());

  /// Adaptively executes the query over the candidate plans (all must plan
  /// the same query). Requires at least one candidate.
  OnlineSkinnerResult Run(const std::vector<PhysicalPlan>& candidates) const;

 private:
  const Executor* executor_;
  OnlineSkinnerOptions options_;
};

}  // namespace lqo

#endif  // LQO_JOINORDER_ONLINE_SKINNER_H_
