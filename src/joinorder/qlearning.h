#ifndef LQO_JOINORDER_QLEARNING_H_
#define LQO_JOINORDER_QLEARNING_H_

#include <vector>

#include "joinorder/join_env.h"
#include "ml/gbdt.h"

namespace lqo {

/// Options for the fitted-Q join orderer.
struct QLearningOptions {
  int episodes_per_query = 30;
  /// Epsilon-greedy exploration decays linearly from start to end.
  double epsilon_start = 0.9;
  double epsilon_end = 0.05;
  /// Q refits (from all collected transitions) spread across training.
  int num_refits = 4;
  uint64_t seed = 1001;
};

/// DQ/ReJoin-style reinforcement-learned join ordering [15,24]: Q(s, a)
/// estimates the total remaining plan cost after taking action a; trained
/// by Monte-Carlo fitted-Q iteration over epsilon-greedy episodes with a
/// GBDT function approximator on RTOS-style features [73].
class QLearningJoinOrderer {
 public:
  QLearningJoinOrderer(const StatsCatalog* stats,
                       const AnalyticalCostModel* cost_model,
                       CardinalityProvider* cards,
                       QLearningOptions options = QLearningOptions());

  /// Runs training episodes over the workload queries.
  void Train(const std::vector<Query>& queries);

  /// Greedy rollout under the learned Q; returns the plan and its
  /// analytical cost. Untrained planners act randomly (tested baseline).
  PhysicalPlan Plan(const Query& query, double* total_cost = nullptr);

  bool trained() const { return trained_; }
  size_t transitions_collected() const { return replay_features_.size(); }

 private:
  /// Predicted cost-to-go of an action (large default when untrained).
  double QValue(const std::vector<double>& features) const;

  const StatsCatalog* stats_;
  const AnalyticalCostModel* cost_model_;
  CardinalityProvider* cards_;
  QLearningOptions options_;
  GradientBoostedTrees q_model_;
  bool trained_ = false;
  std::vector<std::vector<double>> replay_features_;
  std::vector<double> replay_returns_;
};

}  // namespace lqo

#endif  // LQO_JOINORDER_QLEARNING_H_
