#ifndef LQO_JOINORDER_MCTS_H_
#define LQO_JOINORDER_MCTS_H_

#include <vector>

#include "joinorder/join_env.h"

namespace lqo {

/// Options for the UCT join orderer.
struct MctsOptions {
  int iterations = 300;
  double exploration = 1.0;
  uint64_t seed = 1101;
};

/// SkinnerDB-style Monte-Carlo tree search over join orders [56]: UCT on
/// the sequential join-pair decision process, rewards normalized by a
/// greedy baseline cost (the time-sliced execution of SkinnerDB is
/// simulated by analytical cost evaluation, see DESIGN.md).
class MctsJoinOrderer {
 public:
  MctsJoinOrderer(const StatsCatalog* stats,
                  const AnalyticalCostModel* cost_model,
                  CardinalityProvider* cards,
                  MctsOptions options = MctsOptions());

  /// Searches for a plan; returns it and optionally the analytical cost.
  PhysicalPlan Plan(const Query& query, double* total_cost = nullptr);

 private:
  const StatsCatalog* stats_;
  const AnalyticalCostModel* cost_model_;
  CardinalityProvider* cards_;
  MctsOptions options_;
};

}  // namespace lqo

#endif  // LQO_JOINORDER_MCTS_H_
