#include "joinorder/online_skinner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace lqo {

OnlineSkinnerExecutor::OnlineSkinnerExecutor(const Executor* executor,
                                             OnlineSkinnerOptions options)
    : executor_(executor), options_(options) {
  LQO_CHECK(executor_ != nullptr);
  LQO_CHECK_GT(options_.num_slices, 0);
}

OnlineSkinnerResult OnlineSkinnerExecutor::Run(
    const std::vector<PhysicalPlan>& candidates) const {
  LQO_CHECK(!candidates.empty());
  OnlineSkinnerResult result;

  // Ground-truth per-candidate total times (the algorithm only observes
  // them slice by slice).
  std::vector<double> total_time(candidates.size());
  for (size_t k = 0; k < candidates.size(); ++k) {
    auto exec = executor_->Execute(candidates[k]);
    LQO_CHECK(exec.ok()) << exec.status().ToString();
    total_time[k] = exec->time_units;
    result.row_count = exec->row_count;
  }
  result.best_plan_time =
      *std::min_element(total_time.begin(), total_time.end());
  result.worst_plan_time =
      *std::max_element(total_time.begin(), total_time.end());

  // UCB1 over arms; reward = negative per-slice time, normalized by the
  // first observation so the exploration scale is unit-free.
  std::vector<int> pulls(candidates.size(), 0);
  std::vector<double> mean_slice_time(candidates.size(), 0.0);
  double slice_fraction = 1.0 / static_cast<double>(options_.num_slices);
  double reference = 0.0;
  int last_arm = -1;
  std::vector<int> recent_usage(candidates.size(), 0);

  for (int slice = 0; slice < options_.num_slices; ++slice) {
    size_t arm = 0;
    // Play each arm once first; then UCB.
    bool all_tried = true;
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (pulls[k] == 0) {
        arm = k;
        all_tried = false;
        break;
      }
    }
    if (all_tried) {
      double best_score = std::numeric_limits<double>::infinity();
      for (size_t k = 0; k < candidates.size(); ++k) {
        double bonus =
            options_.exploration * reference *
            std::sqrt(std::log(static_cast<double>(slice + 1)) /
                      static_cast<double>(pulls[k]));
        double score = mean_slice_time[k] - bonus;
        if (score < best_score) {
          best_score = score;
          arm = k;
        }
      }
    }

    double slice_time = total_time[arm] * slice_fraction;
    if (last_arm >= 0 && static_cast<size_t>(last_arm) != arm) {
      ++result.switches;
      // State-migration cost: a fraction of the incoming slice's work.
      slice_time *= 1.0 + options_.switch_overhead;
    }
    result.total_time += slice_time;
    mean_slice_time[arm] =
        (mean_slice_time[arm] * pulls[arm] + slice_time) /
        static_cast<double>(pulls[arm] + 1);
    ++pulls[arm];
    if (reference == 0.0) reference = slice_time;
    last_arm = static_cast<int>(arm);
    if (slice >= options_.num_slices * 3 / 4) ++recent_usage[arm];
  }

  result.preferred_plan = static_cast<size_t>(
      std::max_element(recent_usage.begin(), recent_usage.end()) -
      recent_usage.begin());
  return result;
}

}  // namespace lqo
