#include "engine/plan.h"

#include <sstream>

#include "common/logging.h"
#include "common/str_util.h"

namespace lqo {

const char* JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kHashJoin:
      return "HashJoin";
    case JoinAlgorithm::kNestedLoopJoin:
      return "NestedLoopJoin";
    case JoinAlgorithm::kMergeJoin:
      return "MergeJoin";
  }
  return "Unknown";
}

namespace {

const char* ShortName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kHashJoin:
      return "HJ";
    case JoinAlgorithm::kNestedLoopJoin:
      return "NL";
    case JoinAlgorithm::kMergeJoin:
      return "MJ";
  }
  return "??";
}

void RenderNode(const PlanNode& node, const Query* query, int indent,
                std::ostringstream& out) {
  out << std::string(static_cast<size_t>(indent) * 2, ' ');
  if (node.kind == PlanNode::Kind::kScan) {
    out << "Scan ";
    if (query != nullptr) {
      const QueryTable& t =
          query->tables()[static_cast<size_t>(node.table_index)];
      out << t.table_name << " " << t.alias;
    } else {
      out << "t" << node.table_index;
    }
  } else {
    out << JoinAlgorithmName(node.algorithm);
  }
  if (node.estimated_cardinality >= 0) {
    out << "  (est_rows=" << FormatDouble(node.estimated_cardinality);
    if (node.estimated_cost >= 0) {
      out << ", est_cost=" << FormatDouble(node.estimated_cost);
    }
    out << ")";
  }
  out << "\n";
  if (node.kind == PlanNode::Kind::kJoin) {
    RenderNode(*node.left, query, indent + 1, out);
    RenderNode(*node.right, query, indent + 1, out);
  }
}

}  // namespace

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->table_index = table_index;
  copy->algorithm = algorithm;
  copy->table_set = table_set;
  copy->estimated_cardinality = estimated_cardinality;
  copy->estimated_cost = estimated_cost;
  if (left) copy->left = left->Clone();
  if (right) copy->right = right->Clone();
  return copy;
}

std::string PlanNode::Signature(const Query& query) const {
  if (kind == Kind::kScan) {
    return "(S " + query.tables()[static_cast<size_t>(table_index)].alias +
           ")";
  }
  return std::string("(") + ShortName(algorithm) + " " +
         left->Signature(query) + " " + right->Signature(query) + ")";
}

std::unique_ptr<PlanNode> MakeScanNode(int table_index) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->table_index = table_index;
  node->table_set = TableBit(table_index);
  return node;
}

std::unique_ptr<PlanNode> MakeJoinNode(JoinAlgorithm algorithm,
                                       std::unique_ptr<PlanNode> left,
                                       std::unique_ptr<PlanNode> right) {
  LQO_CHECK(left != nullptr);
  LQO_CHECK(right != nullptr);
  LQO_CHECK_EQ(left->table_set & right->table_set, 0u)
      << "join sides overlap";
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->algorithm = algorithm;
  node->table_set = left->table_set | right->table_set;
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

PhysicalPlan PhysicalPlan::Clone() const {
  PhysicalPlan copy;
  copy.query = query;
  if (root) copy.root = root->Clone();
  return copy;
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream out;
  if (root) RenderNode(*root, query, 0, out);
  return out.str();
}

std::string PhysicalPlan::Signature() const {
  LQO_CHECK(query != nullptr);
  LQO_CHECK(root != nullptr);
  return root->Signature(*query);
}

void VisitPlanBottomUp(const PlanNode& node,
                       const std::function<void(const PlanNode&)>& visit) {
  if (node.kind == PlanNode::Kind::kJoin) {
    VisitPlanBottomUp(*node.left, visit);
    VisitPlanBottomUp(*node.right, visit);
  }
  visit(node);
}

void VisitPlanBottomUpMut(PlanNode& node,
                          const std::function<void(PlanNode&)>& visit) {
  if (node.kind == PlanNode::Kind::kJoin) {
    VisitPlanBottomUpMut(*node.left, visit);
    VisitPlanBottomUpMut(*node.right, visit);
  }
  visit(node);
}

}  // namespace lqo
