#include "engine/true_cardinality.h"

#include "common/logging.h"

namespace lqo {

TrueCardinalityService::TrueCardinalityService(const Catalog* catalog)
    : executor_(catalog) {}

uint64_t TrueCardinalityService::Cardinality(const Subquery& subquery) {
  std::string key = subquery.Key();
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  PhysicalPlan plan = MakeLeftDeepPlan(*subquery.query, subquery.tables,
                                       JoinAlgorithm::kHashJoin);
  auto result = executor_.Execute(plan);
  LQO_CHECK(result.ok()) << result.status().ToString();
  cache_[key] = result->row_count;
  return result->row_count;
}

uint64_t TrueCardinalityService::Cardinality(const Query& query) {
  return Cardinality(Subquery{&query, query.AllTables()});
}

}  // namespace lqo
