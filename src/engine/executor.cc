#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace lqo {
namespace {

// A materialized intermediate result: selected join-key columns for the
// covered tables, stored column-wise.
struct Chunk {
  // Parallel vectors: col_keys[i] identifies cols[i].
  std::vector<std::pair<int, std::string>> col_keys;
  std::vector<std::vector<int64_t>> cols;
  uint64_t num_rows = 0;

  int FindColumn(int table_index, const std::string& column) const {
    for (size_t i = 0; i < col_keys.size(); ++i) {
      if (col_keys[i].first == table_index && col_keys[i].second == column) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

uint64_t HashCombine(uint64_t h, int64_t v) {
  // FNV-ish mix; good enough for join bucketing (equality is verified).
  h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

double Log2Rows(uint64_t rows) {
  return std::log2(static_cast<double>(std::max<uint64_t>(rows, 2)));
}

class PlanRunner {
 public:
  PlanRunner(const Catalog& catalog, const CostConstants& constants,
             const Query& query)
      : catalog_(catalog), constants_(constants), query_(query) {}

  StatusOr<ExecutionResult> Run(const PlanNode& root) {
    auto chunk_or = Evaluate(root);
    if (!chunk_or.ok()) return chunk_or.status();
    ExecutionResult result;
    result.row_count = chunk_or->num_rows;
    result.node_profiles = std::move(profiles_);
    for (const NodeProfile& p : result.node_profiles) {
      result.time_units += p.time_units;
    }
    return result;
  }

 private:
  // Join-key columns of `table_index` used anywhere in the query; these are
  // the only columns an intermediate needs to carry.
  std::vector<std::string> NeededColumns(int table_index) const {
    std::vector<std::string> cols;
    auto add = [&](const std::string& c) {
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    };
    for (const QueryJoin& j : query_.joins()) {
      if (j.left_table == table_index) add(j.left_column);
      if (j.right_table == table_index) add(j.right_column);
    }
    return cols;
  }

  StatusOr<Chunk> Evaluate(const PlanNode& node) {
    if (node.kind == PlanNode::Kind::kScan) return EvaluateScan(node);
    return EvaluateJoin(node);
  }

  StatusOr<Chunk> EvaluateScan(const PlanNode& node) {
    const QueryTable& qt =
        query_.tables()[static_cast<size_t>(node.table_index)];
    auto table_or = catalog_.GetTable(qt.table_name);
    if (!table_or.ok()) return table_or.status();
    const Table& table = **table_or;

    std::vector<Predicate> predicates = query_.PredicatesOf(node.table_index);
    // Resolve predicate + needed columns up front.
    std::vector<const Column*> pred_cols;
    for (const Predicate& p : predicates) {
      auto idx = table.ColumnIndex(p.column);
      if (!idx.ok()) return idx.status();
      pred_cols.push_back(&table.column(*idx));
    }
    std::vector<std::string> needed = NeededColumns(node.table_index);
    std::vector<const Column*> out_cols;
    for (const std::string& name : needed) {
      auto idx = table.ColumnIndex(name);
      if (!idx.ok()) return idx.status();
      out_cols.push_back(&table.column(*idx));
    }

    Chunk chunk;
    for (const std::string& name : needed) {
      chunk.col_keys.emplace_back(node.table_index, name);
      chunk.cols.emplace_back();
    }
    size_t n = table.num_rows();
    for (size_t row = 0; row < n; ++row) {
      bool pass = true;
      for (size_t p = 0; p < predicates.size(); ++p) {
        if (!predicates[p].Matches(pred_cols[p]->data[row])) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      for (size_t c = 0; c < out_cols.size(); ++c) {
        chunk.cols[c].push_back(out_cols[c]->data[row]);
      }
      ++chunk.num_rows;
    }
    NodeProfile profile;
    profile.kind = PlanNode::Kind::kScan;
    profile.table_index = node.table_index;
    profile.left_rows = n;
    profile.output_rows = chunk.num_rows;
    profile.time_units =
        static_cast<double>(n) * constants_.scan_row +
        static_cast<double>(n) * static_cast<double>(predicates.size()) *
            constants_.predicate_eval;
    profiles_.push_back(profile);
    return chunk;
  }

  StatusOr<Chunk> EvaluateJoin(const PlanNode& node) {
    auto left_or = Evaluate(*node.left);
    if (!left_or.ok()) return left_or.status();
    auto right_or = Evaluate(*node.right);
    if (!right_or.ok()) return right_or.status();
    Chunk left = std::move(*left_or);
    Chunk right = std::move(*right_or);

    // Join conditions crossing the two sides.
    std::vector<std::pair<int, int>> key_cols;  // (left col idx, right col idx)
    for (const QueryJoin& j : query_.joins()) {
      bool l_in_left = ContainsTable(node.left->table_set, j.left_table);
      bool l_in_right = ContainsTable(node.right->table_set, j.left_table);
      bool r_in_left = ContainsTable(node.left->table_set, j.right_table);
      bool r_in_right = ContainsTable(node.right->table_set, j.right_table);
      int lc = -1, rc = -1;
      if (l_in_left && r_in_right) {
        lc = left.FindColumn(j.left_table, j.left_column);
        rc = right.FindColumn(j.right_table, j.right_column);
      } else if (l_in_right && r_in_left) {
        lc = left.FindColumn(j.right_table, j.right_column);
        rc = right.FindColumn(j.left_table, j.left_column);
      } else {
        continue;
      }
      if (lc < 0 || rc < 0) {
        return Status::Internal("join key column missing from intermediate");
      }
      key_cols.emplace_back(lc, rc);
    }
    if (key_cols.empty()) {
      return Status::InvalidArgument(
          "plan joins disconnected components (cross product)");
    }

    // Build on the right side.
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    buckets.reserve(static_cast<size_t>(right.num_rows) * 2 + 16);
    LQO_CHECK_LT(right.num_rows, (1ULL << 32));
    for (uint32_t r = 0; r < right.num_rows; ++r) {
      uint64_t h = 0;
      for (auto [lc, rc] : key_cols) h = HashCombine(h, right.cols[static_cast<size_t>(rc)][r]);
      buckets[h].push_back(r);
    }
    uint64_t max_bucket = 0;
    for (const auto& [h, rows] : buckets) {
      max_bucket = std::max<uint64_t>(max_bucket, rows.size());
    }
    double mean_bucket =
        buckets.empty()
            ? 1.0
            : static_cast<double>(right.num_rows) /
                  static_cast<double>(buckets.size());

    // Output carries all columns from both sides.
    Chunk out;
    out.col_keys = left.col_keys;
    out.col_keys.insert(out.col_keys.end(), right.col_keys.begin(),
                        right.col_keys.end());
    out.cols.resize(out.col_keys.size());

    size_t left_width = left.cols.size();
    for (uint64_t l = 0; l < left.num_rows; ++l) {
      uint64_t h = 0;
      for (auto [lc, rc] : key_cols) h = HashCombine(h, left.cols[static_cast<size_t>(lc)][l]);
      auto it = buckets.find(h);
      if (it == buckets.end()) continue;
      for (uint32_t r : it->second) {
        bool match = true;
        for (auto [lc, rc] : key_cols) {
          if (left.cols[static_cast<size_t>(lc)][l] !=
              right.cols[static_cast<size_t>(rc)][r]) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        for (size_t c = 0; c < left_width; ++c) {
          out.cols[c].push_back(left.cols[c][l]);
        }
        for (size_t c = 0; c < right.cols.size(); ++c) {
          out.cols[left_width + c].push_back(right.cols[c][r]);
        }
        ++out.num_rows;
      }
    }

    // Charge the node under its declared algorithm.
    double l_rows = static_cast<double>(left.num_rows);
    double r_rows = static_cast<double>(right.num_rows);
    double out_rows = static_cast<double>(out.num_rows);
    double time = 0.0;
    switch (node.algorithm) {
      case JoinAlgorithm::kHashJoin: {
        double skew = max_bucket > 0 && mean_bucket > 0
                          ? static_cast<double>(max_bucket) / mean_bucket - 1.0
                          : 0.0;
        time = r_rows * constants_.hash_build_row +
               l_rows * constants_.hash_probe_row *
                   (1.0 + constants_.skew_probe_factor * skew) +
               out_rows * constants_.output_row;
        if (right.num_rows >
            static_cast<uint64_t>(constants_.hash_memory_rows)) {
          time *= constants_.hash_spill_factor;
        }
        break;
      }
      case JoinAlgorithm::kNestedLoopJoin: {
        double pair_cost =
            right.num_rows <= static_cast<uint64_t>(constants_.nlj_cache_rows)
                ? constants_.nlj_cached_pair
                : constants_.nlj_pair;
        time = l_rows * r_rows * pair_cost + out_rows * constants_.output_row;
        break;
      }
      case JoinAlgorithm::kMergeJoin: {
        time = l_rows * Log2Rows(left.num_rows) * constants_.sort_row_log +
               r_rows * Log2Rows(right.num_rows) * constants_.sort_row_log +
               (l_rows + r_rows) * constants_.merge_row +
               out_rows * constants_.output_row;
        break;
      }
    }

    NodeProfile profile;
    profile.kind = PlanNode::Kind::kJoin;
    profile.algorithm = node.algorithm;
    profile.left_rows = left.num_rows;
    profile.right_rows = right.num_rows;
    profile.output_rows = out.num_rows;
    profile.time_units = time;
    profiles_.push_back(profile);
    return out;
  }

  const Catalog& catalog_;
  const CostConstants& constants_;
  const Query& query_;
  std::vector<NodeProfile> profiles_;
};

}  // namespace

Executor::Executor(const Catalog* catalog, CostConstants constants)
    : catalog_(catalog), constants_(constants) {
  LQO_CHECK(catalog_ != nullptr);
}

StatusOr<ExecutionResult> Executor::Execute(const PhysicalPlan& plan) const {
  if (plan.query == nullptr || plan.root == nullptr) {
    return Status::InvalidArgument("plan missing query or root");
  }
  PlanRunner runner(*catalog_, constants_, *plan.query);
  return runner.Run(*plan.root);
}

PhysicalPlan MakeLeftDeepPlan(const Query& query, TableSet tables,
                              JoinAlgorithm algorithm) {
  LQO_CHECK(tables != 0);
  LQO_CHECK(query.IsConnected(tables)) << "table set must be connected";
  int start = __builtin_ctzll(tables);
  std::unique_ptr<PlanNode> current = MakeScanNode(start);
  TableSet joined = TableBit(start);
  while (joined != tables) {
    // Lowest-index unjoined table adjacent to the joined set.
    int next = -1;
    for (int t = 0; t < query.num_tables(); ++t) {
      if (!ContainsTable(tables, t) || ContainsTable(joined, t)) continue;
      for (int n : query.Neighbors(t)) {
        if (ContainsTable(joined, n)) {
          next = t;
          break;
        }
      }
      if (next >= 0) break;
    }
    LQO_CHECK_GE(next, 0);
    current = MakeJoinNode(algorithm, std::move(current), MakeScanNode(next));
    joined |= TableBit(next);
  }
  PhysicalPlan plan;
  plan.query = &query;
  plan.root = std::move(current);
  return plan;
}

}  // namespace lqo
