#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "engine/agg_kernels.h"
#include "engine/filter_kernels.h"
#include "engine/simd.h"
#include "engine/vec_batch.h"

namespace lqo {
namespace {

// Morsel/partition geometry. All values are input-size gated only — never
// thread-count gated — so the execution structure (and therefore every
// output bit) is identical at any LQO_THREADS setting.
constexpr size_t kScanMorselRows = 4096;
// Below this many input rows a scan runs as one morsel.
constexpr uint64_t kParallelScanMinRows = 8192;
// Radix partitions for large joins; must be a power of two.
constexpr size_t kJoinPartitions = 16;
// Below this many build+probe rows a join uses a single partition.
constexpr uint64_t kParallelJoinMinRows = 8192;
// Physical-strategy gates for the declared-algorithm join paths. A node
// declared merge/nested-loop *executes* as such only when its inputs fit
// under these input-size-only (therefore deterministic) bounds; above them
// it falls back to the partitioned hash execution, which produces the same
// output multiset, so hint-forced pathological plans keep reporting their
// declared cost without pathological wall-clock. Both real paths emit rows
// in a deterministic order of their own (merge: key order with row-id
// tie-breaks; NLJ: outer × inner row order), so every downstream bit is
// still reproducible.
constexpr uint64_t kMergeJoinMaxRows = 1ull << 20;   // left + right rows
constexpr uint64_t kNljMaxPairs = 1ull << 22;        // left * right rows

double WallSeconds(const std::chrono::steady_clock::time_point& start) {
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// An intermediate result. The two execution modes store it differently:
//
//  - The scalar reference path materializes *early*: value columns for the
//    join keys and output-stage columns of every covered table, copied
//    forward through each operator (col_keys/cols).
//  - The vectorized path materializes *late*: only per-base-table row-id
//    columns flow between operators (rowid_tables/rowids); join keys are
//    gathered on demand from base tables, and the output stage gathers
//    values through the surviving row ids at the very end. Intermediates
//    under COUNT(*) carry nothing at all past each join's key needs.
//
// Both modes agree on num_rows and row order, which is all the
// ExecutionResult bit-equality contract needs.
struct Chunk {
  // Scalar mode. Parallel vectors: col_keys[i] identifies cols[i].
  std::vector<std::pair<int, std::string>> col_keys;
  std::vector<std::vector<int64_t>> cols;

  // Vectorized mode. Parallel vectors: rowids[i] holds base-table row ids
  // of query table rowid_tables[i], one entry per intermediate row.
  std::vector<int> rowid_tables;
  std::vector<std::vector<uint32_t>> rowids;
  // True when every rowid column is strictly ascending (scan outputs);
  // joins scramble row order and reset this. Enables the sink's dense
  // kernels and run-detected gathers.
  bool rowids_ascending = false;

  uint64_t num_rows = 0;

  int FindColumn(int table_index, const std::string& column) const {
    for (size_t i = 0; i < col_keys.size(); ++i) {
      if (col_keys[i].first == table_index && col_keys[i].second == column) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  int FindRowids(int table_index) const {
    for (size_t i = 0; i < rowid_tables.size(); ++i) {
      if (rowid_tables[i] == table_index) return static_cast<int>(i);
    }
    return -1;
  }
};

// Scalar hash steps live in engine/simd.h (HashCombine / FinalizeHash) so
// the SIMD hash kernels and this row-at-a-time reference share one
// definition; the batched path calls the dispatched N-lane kernels, which
// are bit-identical by the simd layer's contract.
using simd::FinalizeHash;
using simd::HashCombine;

double Log2Rows(uint64_t rows) {
  return std::log2(static_cast<double>(std::max<uint64_t>(rows, 2)));
}

// The partition of a hash uses its top bits; open-addressing slots use the
// low bits, so the two never alias.
size_t PartitionOf(uint64_t h, size_t num_partitions) {
  return static_cast<size_t>(h >> 32) & (num_partitions - 1);
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Open-addressing (linear-probing) hash table over one join partition.
/// Stores one slot per build row, sized for load factor <= 0.5 from the
/// exact build count — "sized from the estimate" with the executor's
/// perfect estimate; no per-row rehashing, no node allocations.
struct JoinHashTable {
  static constexpr uint32_t kEmpty = 0xffffffffu;

  std::vector<uint64_t> hashes;
  std::vector<uint32_t> rows;
  size_t mask = 0;

  uint64_t build_collisions = 0;
  uint64_t distinct_hashes = 0;
  uint64_t max_chain = 0;

  explicit JoinHashTable(size_t build_rows) {
    size_t capacity = NextPowerOfTwo(std::max<size_t>(16, build_rows * 2));
    hashes.assign(capacity, 0);
    rows.assign(capacity, kEmpty);
    mask = capacity - 1;
  }

  void Insert(uint64_t h, uint32_t row) {
    size_t slot = static_cast<size_t>(h) & mask;
    uint64_t same_hash_before = 0;
    while (rows[slot] != kEmpty) {
      if (hashes[slot] == h) {
        ++same_hash_before;
      } else {
        ++build_collisions;
      }
      slot = (slot + 1) & mask;
    }
    hashes[slot] = h;
    rows[slot] = row;
    if (same_hash_before == 0) ++distinct_hashes;
    max_chain = std::max(max_chain, same_hash_before + 1);
  }
};

// Per-aggregate accumulator state shared by the scalar reference and the
// kernel path: SUM in wrapping uint64 (see engine/agg_kernels.h for why
// that is lane-order independent), MIN/MAX from their fold identities. One
// finalize block converts it to the emitted int64 in both modes.
struct AggAcc {
  uint64_t sum = 0;
  int64_t mn = INT64_MAX;
  int64_t mx = INT64_MIN;
};

// Process-wide default for the vectorized executor: on unless LQO_VECTORIZED=0.
bool DefaultVectorized() {
  const char* v = std::getenv("LQO_VECTORIZED");
  return v == nullptr || std::string_view(v) != "0";
}

class PlanRunner {
 public:
  PlanRunner(const Catalog& catalog, const CostConstants& constants,
             const Query& query, bool vectorized)
      : catalog_(catalog),
        constants_(constants),
        query_(query),
        vectorized_(vectorized) {}

  StatusOr<ExecutionResult> Run(const PlanNode& root) {
    Status valid = ValidateOutputStage(root);
    if (!valid.ok()) return valid;
    auto chunk_or = Evaluate(root, SinkTables() & root.table_set);
    if (!chunk_or.ok()) return chunk_or.status();
    ExecutionResult result;
    result.row_count = chunk_or->num_rows;
    if (query_.HasOutputStage()) {
      Status sink = ExecuteOutput(*chunk_or, &result);
      if (!sink.ok()) return sink;
    }
    result.node_profiles = std::move(profiles_);
    for (const NodeProfile& p : result.node_profiles) {
      result.time_units += p.time_units;
    }
    return result;
  }

 private:
  // Tables whose base rows the output stage reads (select list + GROUP BY
  // key). Empty for legacy COUNT(*) queries — nothing is ever materialized.
  TableSet SinkTables() const {
    TableSet set = 0;
    for (const OutputExpr& e : query_.outputs()) {
      if (e.ReferencesColumn()) set |= TableBit(e.table_index);
    }
    if (query_.has_group_by()) set |= TableBit(query_.group_by_table());
    return set;
  }

  Status ValidateOutputStage(const PlanNode& root) const {
    if (!query_.HasOutputStage()) return Status::Ok();
    bool has_col = false;
    bool has_agg = false;
    for (const OutputExpr& e : query_.outputs()) {
      if (e.ReferencesColumn() &&
          !ContainsTable(root.table_set, e.table_index)) {
        return Status::InvalidArgument(
            "select list references a table outside the plan");
      }
      if (e.kind == OutputExpr::Kind::kColumn) {
        has_col = true;
        if (query_.has_group_by() &&
            (e.table_index != query_.group_by_table() ||
             e.column != query_.group_by_column())) {
          return Status::InvalidArgument(
              "non-aggregate select item must be the GROUP BY key");
        }
      } else {
        has_agg = true;
      }
    }
    if (query_.has_group_by() &&
        !ContainsTable(root.table_set, query_.group_by_table())) {
      return Status::InvalidArgument(
          "GROUP BY references a table outside the plan");
    }
    if (!query_.has_group_by() && has_col && has_agg) {
      return Status::InvalidArgument(
          "mixing bare columns and aggregates requires GROUP BY");
    }
    return Status::Ok();
  }

  StatusOr<const Column*> BaseColumn(int table_index,
                                     const std::string& column) const {
    const QueryTable& qt = query_.tables()[static_cast<size_t>(table_index)];
    auto table_or = catalog_.GetTable(qt.table_name);
    if (!table_or.ok()) return table_or.status();
    const Table& table = **table_or;
    auto idx = table.ColumnIndex(column);
    if (!idx.ok()) return idx.status();
    return &table.column(*idx);
  }

  // Columns of `table_index` a *scalar* intermediate must carry: the join
  // keys used anywhere in the query plus the columns the output stage
  // reads. (The vectorized path carries row ids instead and gathers both
  // on demand — that is the late-materialization tentpole.)
  std::vector<std::string> NeededColumns(int table_index) const {
    std::vector<std::string> cols;
    auto add = [&](const std::string& c) {
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    };
    for (const QueryJoin& j : query_.joins()) {
      if (j.left_table == table_index) add(j.left_column);
      if (j.right_table == table_index) add(j.right_column);
    }
    for (const std::string& c : query_.OutputColumnsOf(table_index)) add(c);
    return cols;
  }

  // `keep` is the set of tables whose row ids this node's output must carry
  // for consumers above it (ancestor join keys + the output sink); always a
  // subset of node.table_set. Threaded through both paths: the vectorized
  // path materializes exactly these row-id columns, the scalar path uses it
  // only for the (structurally defined, therefore path-identical)
  // late-materialization profile counters.
  StatusOr<Chunk> Evaluate(const PlanNode& node, TableSet keep) {
    if (node.kind == PlanNode::Kind::kScan) return EvaluateScan(node, keep);
    return EvaluateJoin(node, keep);
  }

  StatusOr<Chunk> EvaluateScan(const PlanNode& node, TableSet keep) {
    const QueryTable& qt =
        query_.tables()[static_cast<size_t>(node.table_index)];
    auto table_or = catalog_.GetTable(qt.table_name);
    if (!table_or.ok()) return table_or.status();
    const Table& table = **table_or;

    std::vector<Predicate> predicates = query_.PredicatesOf(node.table_index);
    // Resolve predicate + needed columns up front.
    std::vector<const Column*> pred_cols;
    for (const Predicate& p : predicates) {
      auto idx = table.ColumnIndex(p.column);
      if (!idx.ok()) return idx.status();
      pred_cols.push_back(&table.column(*idx));
    }
    std::vector<std::string> needed;
    std::vector<const Column*> out_cols;
    if (!vectorized_) {
      needed = NeededColumns(node.table_index);
      for (const std::string& name : needed) {
        auto idx = table.ColumnIndex(name);
        if (!idx.ok()) return idx.status();
        out_cols.push_back(&table.column(*idx));
      }
    }
    const bool keep_ids = ContainsTable(keep, node.table_index);

    size_t n = table.num_rows();
    size_t num_morsels =
        n >= kParallelScanMinRows ? (n + kScanMorselRows - 1) / kScanMorselRows
                                  : 1;

    // Each morsel filters its row range into a private output; morsels are
    // then concatenated in index order, reproducing the serial row order
    // exactly.
    struct MorselOut {
      std::vector<std::vector<int64_t>> cols;  // scalar: value columns
      std::vector<uint32_t> ids;               // vectorized: row ids
      uint64_t num_rows = 0;
    };
    // Tuple-at-a-time reference path, kept byte-for-byte equivalent to the
    // vectorized twin below for the LQO_VECTORIZED=0 A/B contract.
    auto run_morsel_scalar = [&](size_t m) {
      MorselOut out;
      out.cols.resize(out_cols.size());
      size_t begin = m * n / num_morsels;
      size_t end = (m + 1) * n / num_morsels;
      for (size_t row = begin; row < end; ++row) {
        bool pass = true;
        for (size_t p = 0; p < predicates.size(); ++p) {
          if (!predicates[p].Matches(pred_cols[p]->data[row])) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        for (size_t c = 0; c < out_cols.size(); ++c) {
          // lint: hot-loop-growth-ok(scalar reference path, not the hot kernel)
          out.cols[c].push_back(out_cols[c]->data[row]);
        }
        ++out.num_rows;
      }
      return out;
    };
    // Batch-at-a-time twin: same morsel boundaries, batches of kVecBatchRows
    // flow through the branch-free filter kernels; survivors are recorded as
    // *row ids only* (when a consumer above needs them) — no value column is
    // copied. Selection vectors stay ascending and predicates are applied in
    // query order, so surviving rows (and their order) match the scalar loop
    // exactly; evaluating later predicates only on survivors is equivalent
    // to the scalar short-circuit.
    auto run_morsel_vectorized = [&](size_t m) {
      MorselOut out;
      size_t begin = m * n / num_morsels;
      size_t end = (m + 1) * n / num_morsels;
      SelVector sel_a;
      SelVector sel_b;
      for (size_t batch = begin; batch < end; batch += kVecBatchRows) {
        uint32_t b = static_cast<uint32_t>(batch);
        uint32_t e =
            static_cast<uint32_t>(std::min(end, batch + kVecBatchRows));
        size_t count = e - b;
        const uint32_t* sel = nullptr;
        if (!predicates.empty()) {
          uint32_t* cur = sel_a.row;
          uint32_t* next = sel_b.row;
          count =
              FilterDense(predicates[0], pred_cols[0]->data.data(), b, e, cur);
          for (size_t p = 1; p < predicates.size() && count > 0; ++p) {
            count = FilterSel(predicates[p], pred_cols[p]->data.data(), cur,
                              count, next);
            std::swap(cur, next);
          }
          sel = cur;
        }
        if (count == 0) continue;
        if (keep_ids) {
          size_t offset = out.ids.size();
          out.ids.resize(offset + count);
          uint32_t* dst = out.ids.data() + offset;
          if (sel == nullptr) {
            for (size_t i = 0; i < count; ++i) {
              dst[i] = b + static_cast<uint32_t>(i);
            }
          } else {
            std::memcpy(dst, sel, count * sizeof(uint32_t));
          }
        }
        out.num_rows += count;
      }
      return out;
    };
    if (vectorized_) LQO_CHECK_LT(n, (1ULL << 32));
    std::vector<MorselOut> morsels =
        vectorized_ ? ParallelMap(num_morsels, run_morsel_vectorized)
                    : ParallelMap(num_morsels, run_morsel_scalar);

    Chunk chunk;
    for (const MorselOut& m : morsels) chunk.num_rows += m.num_rows;
    if (vectorized_) {
      chunk.rowids_ascending = true;
      if (keep_ids) {
        chunk.rowid_tables.push_back(node.table_index);
        chunk.rowids.emplace_back();
        std::vector<uint32_t>& ids = chunk.rowids[0];
        ids.reserve(static_cast<size_t>(chunk.num_rows));
        for (const MorselOut& m : morsels) {
          ids.insert(ids.end(), m.ids.begin(), m.ids.end());
        }
      }
    } else {
      for (const std::string& name : needed) {
        chunk.col_keys.emplace_back(node.table_index, name);
        chunk.cols.emplace_back();
      }
      for (size_t c = 0; c < chunk.cols.size(); ++c) {
        chunk.cols[c].reserve(static_cast<size_t>(chunk.num_rows));
        for (const MorselOut& m : morsels) {
          chunk.cols[c].insert(chunk.cols[c].end(), m.cols[c].begin(),
                               m.cols[c].end());
        }
      }
    }

    NodeProfile profile;
    profile.kind = PlanNode::Kind::kScan;
    profile.table_index = node.table_index;
    profile.left_rows = n;
    profile.output_rows = chunk.num_rows;
    profile.time_units =
        static_cast<double>(n) * constants_.scan_row +
        static_cast<double>(n) * static_cast<double>(predicates.size()) *
            constants_.predicate_eval;
    profile.carried_columns = keep_ids ? 1 : 0;
    profile.materialized_values = chunk.num_rows * profile.carried_columns;
    profiles_.push_back(profile);
    return chunk;
  }

  // Where a join output's row-id column for one kept table comes from.
  struct RowidSrc {
    int table = -1;
    bool from_left = true;
    size_t src_col = 0;
  };

  // Gathers base-table key column `column` of `table` through `side`'s
  // row-id column into `*out` — the on-demand key materialization of the
  // late pipeline. Morsel-parallel with disjoint writes, so deterministic.
  Status GatherKeyColumn(const Chunk& side, int table,
                         const std::string& column,
                         std::vector<int64_t>* out) const {
    auto col_or = BaseColumn(table, column);
    if (!col_or.ok()) return col_or.status();
    const int64_t* base = (*col_or)->data.data();
    int idx = side.FindRowids(table);
    if (idx < 0) {
      return Status::Internal("join key row ids missing from intermediate");
    }
    const std::vector<uint32_t>& ids = side.rowids[static_cast<size_t>(idx)];
    LQO_CHECK_EQ(ids.size(), static_cast<size_t>(side.num_rows));
    out->resize(ids.size());
    int64_t* dst = out->data();
    const uint32_t* src = ids.data();
    ParallelFor(HashMorsels(ids.size()), [&](size_t m) {
      auto [begin, end] = MorselRange(m, ids.size());
      for (size_t i = begin; i < end; ++i) dst[i] = base[src[i]];
    });
    return Status::Ok();
  }

  StatusOr<Chunk> EvaluateJoin(const PlanNode& node, TableSet keep) {
    // Join conditions crossing the two sides, resolved to (table, column)
    // per side. Built from the query's join list in declaration order —
    // the same order the scalar key loop and the column-wise hash kernels
    // combine keys, so hashes match bit for bit.
    struct KeyRef {
      int ltab;
      std::string lcol;
      int rtab;
      std::string rcol;
    };
    std::vector<KeyRef> key_refs;
    for (const QueryJoin& j : query_.joins()) {
      bool l_in_left = ContainsTable(node.left->table_set, j.left_table);
      bool l_in_right = ContainsTable(node.right->table_set, j.left_table);
      bool r_in_left = ContainsTable(node.left->table_set, j.right_table);
      bool r_in_right = ContainsTable(node.right->table_set, j.right_table);
      if (l_in_left && r_in_right) {
        key_refs.push_back({j.left_table, j.left_column, j.right_table,
                            j.right_column});
      } else if (l_in_right && r_in_left) {
        key_refs.push_back({j.right_table, j.right_column, j.left_table,
                            j.left_column});
      }
    }
    if (key_refs.empty()) {
      return Status::InvalidArgument(
          "plan joins disconnected components (cross product)");
    }

    // Children must carry row ids for everything consumers above need plus
    // this join's own key tables.
    TableSet lkeep = keep & node.left->table_set;
    TableSet rkeep = keep & node.right->table_set;
    for (const KeyRef& k : key_refs) {
      lkeep |= TableBit(k.ltab);
      rkeep |= TableBit(k.rtab);
    }
    auto left_or = Evaluate(*node.left, lkeep);
    if (!left_or.ok()) return left_or.status();
    auto right_or = Evaluate(*node.right, rkeep);
    if (!right_or.ok()) return right_or.status();
    Chunk left = std::move(*left_or);
    Chunk right = std::move(*right_or);
    LQO_CHECK_LT(right.num_rows, (1ULL << 32));

    // Unified key access for every strategy: lkeys[k][row] is key k of left
    // row `row`. Scalar mode points into the early-materialized chunk
    // columns; vectorized mode gathers scratch key columns from base tables
    // through the carried row ids (the only per-join materialization the
    // late pipeline does).
    std::vector<std::vector<int64_t>> lkey_store(key_refs.size());
    std::vector<std::vector<int64_t>> rkey_store(key_refs.size());
    std::vector<const int64_t*> lkeys;
    std::vector<const int64_t*> rkeys;
    if (vectorized_) {
      for (size_t k = 0; k < key_refs.size(); ++k) {
        Status s = GatherKeyColumn(left, key_refs[k].ltab, key_refs[k].lcol,
                                   &lkey_store[k]);
        if (!s.ok()) return s;
        s = GatherKeyColumn(right, key_refs[k].rtab, key_refs[k].rcol,
                            &rkey_store[k]);
        if (!s.ok()) return s;
        lkeys.push_back(lkey_store[k].data());
        rkeys.push_back(rkey_store[k].data());
      }
    } else {
      for (const KeyRef& k : key_refs) {
        int lc = left.FindColumn(k.ltab, k.lcol);
        int rc = right.FindColumn(k.rtab, k.rcol);
        if (lc < 0 || rc < 0) {
          return Status::Internal("join key column missing from intermediate");
        }
        lkeys.push_back(left.cols[static_cast<size_t>(lc)].data());
        rkeys.push_back(right.cols[static_cast<size_t>(rc)].data());
      }
    }

    // Which child row-id column feeds each kept table of the output.
    std::vector<RowidSrc> rowid_plan;
    if (vectorized_) {
      for (int t = 0; t < query_.num_tables(); ++t) {
        if (!ContainsTable(keep, t)) continue;
        RowidSrc s;
        s.table = t;
        int li = left.FindRowids(t);
        int ri = right.FindRowids(t);
        if (li >= 0) {
          s.from_left = true;
          s.src_col = static_cast<size_t>(li);
        } else if (ri >= 0) {
          s.from_left = false;
          s.src_col = static_cast<size_t>(ri);
        } else {
          return Status::Internal(
              "row ids for kept table missing from join input");
        }
        rowid_plan.push_back(s);
      }
    }

    // Pick the physical strategy from the declared algorithm and the
    // input-size gates (see kMergeJoinMaxRows / kNljMaxPairs); cost
    // charging and the profile layout below are shared by all three.
    bool run_merge = node.algorithm == JoinAlgorithm::kMergeJoin &&
                     left.num_rows + right.num_rows <= kMergeJoinMaxRows;
    bool run_nlj = node.algorithm == JoinAlgorithm::kNestedLoopJoin &&
                   left.num_rows <= kNljMaxPairs &&
                   right.num_rows <= kNljMaxPairs &&
                   left.num_rows * right.num_rows <= kNljMaxPairs;
    JoinExecOut exec =
        run_merge ? ExecuteMergeJoin(left, right, lkeys, rkeys, rowid_plan)
        : run_nlj ? ExecuteNestedLoopJoin(left, right, lkeys, rkeys,
                                          rowid_plan)
                  : ExecuteHashJoin(left, right, lkeys, rkeys, rowid_plan);
    Chunk out = std::move(exec.chunk);

    // Charge the node under its declared algorithm.
    double l_rows = static_cast<double>(left.num_rows);
    double r_rows = static_cast<double>(right.num_rows);
    double out_rows = static_cast<double>(out.num_rows);
    double time = 0.0;
    switch (node.algorithm) {
      case JoinAlgorithm::kHashJoin: {
        // A hash-declared node always ran the hash strategy, so its skew
        // statistics are present.
        double skew =
            exec.max_bucket > 0 && exec.mean_bucket > 0
                ? static_cast<double>(exec.max_bucket) / exec.mean_bucket - 1.0
                : 0.0;
        time = r_rows * constants_.hash_build_row +
               l_rows * constants_.hash_probe_row *
                   (1.0 + constants_.skew_probe_factor * skew) +
               out_rows * constants_.output_row;
        if (right.num_rows >
            static_cast<uint64_t>(constants_.hash_memory_rows)) {
          time *= constants_.hash_spill_factor;
        }
        break;
      }
      case JoinAlgorithm::kNestedLoopJoin: {
        double pair_cost =
            right.num_rows <= static_cast<uint64_t>(constants_.nlj_cache_rows)
                ? constants_.nlj_cached_pair
                : constants_.nlj_pair;
        time = l_rows * r_rows * pair_cost + out_rows * constants_.output_row;
        break;
      }
      case JoinAlgorithm::kMergeJoin: {
        time = l_rows * Log2Rows(left.num_rows) * constants_.sort_row_log +
               r_rows * Log2Rows(right.num_rows) * constants_.sort_row_log +
               (l_rows + r_rows) * constants_.merge_row +
               out_rows * constants_.output_row;
        break;
      }
    }

    NodeProfile profile;
    profile.kind = PlanNode::Kind::kJoin;
    profile.algorithm = node.algorithm;
    profile.left_rows = left.num_rows;
    profile.right_rows = right.num_rows;
    profile.output_rows = out.num_rows;
    profile.time_units = time;
    profile.build_collisions = exec.build_collisions;
    profile.probe_collisions = exec.probe_collisions;
    profile.partitions = exec.partitions;
    profile.build_seconds = exec.build_seconds;
    profile.probe_seconds = exec.probe_seconds;
    profile.concat_seconds = exec.concat_seconds;
    profile.carried_columns = static_cast<uint64_t>(PopCount(keep));
    profile.materialized_values = out.num_rows * profile.carried_columns;
    profiles_.push_back(profile);
    return out;
  }

  // Per-execution output of whichever physical join strategy ran. The hash
  // statistics stay zero/default on the merge and nested-loop paths — no
  // table is built, so there is nothing to collide with.
  struct JoinExecOut {
    Chunk chunk;
    uint64_t build_collisions = 0;
    uint64_t probe_collisions = 0;
    uint64_t max_bucket = 0;
    double mean_bucket = 1.0;
    int partitions = 1;
    double build_seconds = 0.0;
    double probe_seconds = 0.0;
    double concat_seconds = 0.0;
  };

  // Shared output-chunk scaffolding for the three strategies: scalar mode
  // concatenates both sides' value-column schemas, vectorized mode lays out
  // the kept row-id columns.
  void InitJoinOut(const Chunk& left, const Chunk& right,
                   const std::vector<RowidSrc>& rowid_plan, Chunk* out) const {
    if (vectorized_) {
      for (const RowidSrc& s : rowid_plan) out->rowid_tables.push_back(s.table);
      out->rowids.resize(rowid_plan.size());
      return;
    }
    out->col_keys = left.col_keys;
    out->col_keys.insert(out->col_keys.end(), right.col_keys.begin(),
                         right.col_keys.end());
    out->cols.resize(left.cols.size() + right.cols.size());
  }

  // Radix-partitioned open-addressing hash join — the workhorse strategy,
  // and the fallback that executes merge/NLJ-declared nodes whose inputs
  // exceed the real-path gates (same output multiset either way).
  JoinExecOut ExecuteHashJoin(const Chunk& left, const Chunk& right,
                              const std::vector<const int64_t*>& lkeys,
                              const std::vector<const int64_t*>& rkeys,
                              const std::vector<RowidSrc>& rowid_plan) {
    // Input-size gate: small joins run the identical code with a single
    // partition (which ParallelFor executes inline).
    size_t num_partitions =
        left.num_rows + right.num_rows >= kParallelJoinMinRows
            ? kJoinPartitions
            : 1;
    const simd::KernelTable& kt = simd::Kernels();

    auto key_hash = [&](const std::vector<const int64_t*>& keys, size_t row) {
      uint64_t h = 0;
      for (const int64_t* data : keys) h = HashCombine(h, data[row]);
      return FinalizeHash(h);
    };
    // Column-wise batched hash kernel: one dispatched N-lane combine pass
    // per key column over the morsel range, then one finalize pass. Per row
    // it combines the key columns in the same order as key_hash, and the
    // SIMD kernels are bit-identical to the scalar steps, so every hash
    // value matches the row-at-a-time computation.
    auto hash_range_columnwise = [&](const std::vector<const int64_t*>& keys,
                                     size_t begin, size_t end,
                                     uint64_t* hashes) {
      for (size_t r = begin; r < end; ++r) hashes[r] = 0;
      for (const int64_t* data : keys) {
        kt.hash_combine_column(hashes, data, begin, end);
      }
      kt.hash_finalize(hashes, begin, end);
    };

    // ---- Build phase: hash, scatter, per-partition open addressing. ----
    auto build_start = std::chrono::steady_clock::now();

    std::vector<uint64_t> right_hashes(static_cast<size_t>(right.num_rows));
    ParallelFor(HashMorsels(right.num_rows), [&](size_t m) {
      auto [begin, end] = MorselRange(m, right.num_rows);
      if (vectorized_) {
        hash_range_columnwise(rkeys, begin, end, right_hashes.data());
        return;
      }
      for (size_t r = begin; r < end; ++r) {
        right_hashes[r] = key_hash(rkeys, r);
      }
    });
    // Serial scatter in row order: partition row lists preserve build-side
    // row order, making table layout independent of thread count.
    std::vector<std::vector<uint32_t>> build_rows(num_partitions);
    for (uint32_t r = 0; r < right.num_rows; ++r) {
      build_rows[PartitionOf(right_hashes[r], num_partitions)].push_back(r);
    }
    std::vector<JoinHashTable> tables;
    tables.reserve(num_partitions);
    for (size_t p = 0; p < num_partitions; ++p) {
      tables.emplace_back(build_rows[p].size());
    }
    ParallelFor(num_partitions, [&](size_t p) {
      for (uint32_t r : build_rows[p]) {
        tables[p].Insert(right_hashes[r], r);
      }
    });

    uint64_t build_collisions = 0;
    uint64_t distinct_hashes = 0;
    uint64_t max_bucket = 0;
    for (const JoinHashTable& t : tables) {
      build_collisions += t.build_collisions;
      distinct_hashes += t.distinct_hashes;
      max_bucket = std::max(max_bucket, t.max_chain);
    }
    double mean_bucket =
        distinct_hashes == 0
            ? 1.0
            : static_cast<double>(right.num_rows) /
                  static_cast<double>(distinct_hashes);
    double build_seconds = WallSeconds(build_start);

    // ---- Probe phase: hash, scatter, per-partition probe. ----
    auto probe_start = std::chrono::steady_clock::now();

    std::vector<uint64_t> left_hashes(static_cast<size_t>(left.num_rows));
    ParallelFor(HashMorsels(left.num_rows), [&](size_t m) {
      auto [begin, end] = MorselRange(m, left.num_rows);
      if (vectorized_) {
        hash_range_columnwise(lkeys, begin, end, left_hashes.data());
        return;
      }
      for (size_t l = begin; l < end; ++l) {
        left_hashes[l] = key_hash(lkeys, l);
      }
    });
    std::vector<std::vector<uint64_t>> probe_rows(num_partitions);
    for (uint64_t l = 0; l < left.num_rows; ++l) {
      probe_rows[PartitionOf(left_hashes[l], num_partitions)].push_back(l);
    }

    size_t left_width = left.cols.size();
    size_t out_width = left_width + right.cols.size();
    struct PartitionOut {
      std::vector<std::vector<int64_t>> cols;        // scalar mode
      std::vector<std::vector<uint32_t>> rowid_cols; // vectorized mode
      uint64_t num_rows = 0;
      uint64_t probe_collisions = 0;
    };
    // Each partition probes its left rows in (preserved) row order against
    // its private table, emitting into an index-addressed slot.
    std::vector<PartitionOut> outs = ParallelMap(num_partitions, [&](size_t p) {
      PartitionOut out;
      const JoinHashTable& table = tables[p];
      if (vectorized_) {
        // Batched probe: the slot walk (and its collision counting) is
        // identical to the scalar path, but surviving (l, r) pairs land in
        // fixed-size match buffers and resolve to *row-id* columns in bulk
        // — the payload gather is deferred all the way to the sink. Flush
        // boundaries never reorder matches, so the output is bit-identical.
        out.rowid_cols.resize(rowid_plan.size());
        uint64_t match_l[kVecBatchRows];
        uint32_t match_r[kVecBatchRows];
        size_t n_match = 0;
        auto flush = [&] {
          for (size_t c = 0; c < rowid_plan.size(); ++c) {
            const RowidSrc& s = rowid_plan[c];
            if (s.from_left) {
              GatherAppend(left.rowids[s.src_col].data(), match_l, n_match,
                           &out.rowid_cols[c]);
            } else {
              GatherAppend(right.rowids[s.src_col].data(), match_r, n_match,
                           &out.rowid_cols[c]);
            }
          }
          out.num_rows += n_match;
          n_match = 0;
        };
        for (uint64_t l : probe_rows[p]) {
          uint64_t h = left_hashes[l];
          size_t slot = static_cast<size_t>(h) & table.mask;
          while (table.rows[slot] != JoinHashTable::kEmpty) {
            if (table.hashes[slot] != h) {
              ++out.probe_collisions;
              slot = (slot + 1) & table.mask;
              continue;
            }
            uint32_t r = table.rows[slot];
            bool match = true;
            for (size_t k = 0; k < lkeys.size(); ++k) {
              if (lkeys[k][l] != rkeys[k][r]) {
                match = false;
                break;
              }
            }
            if (match) {
              match_l[n_match] = l;
              match_r[n_match] = r;
              if (++n_match == kVecBatchRows) flush();
            }
            slot = (slot + 1) & table.mask;
          }
        }
        flush();
        return out;
      }
      out.cols.resize(out_width);
      for (uint64_t l : probe_rows[p]) {
        uint64_t h = left_hashes[l];
        size_t slot = static_cast<size_t>(h) & table.mask;
        while (table.rows[slot] != JoinHashTable::kEmpty) {
          if (table.hashes[slot] != h) {
            ++out.probe_collisions;
            slot = (slot + 1) & table.mask;
            continue;
          }
          uint32_t r = table.rows[slot];
          bool match = true;
          for (size_t k = 0; k < lkeys.size(); ++k) {
            if (lkeys[k][l] != rkeys[k][r]) {
              match = false;
              break;
            }
          }
          if (match) {
            for (size_t c = 0; c < left_width; ++c) {
              // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
              out.cols[c].push_back(left.cols[c][l]);
            }
            for (size_t c = 0; c < right.cols.size(); ++c) {
              // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
              out.cols[left_width + c].push_back(right.cols[c][r]);
            }
            ++out.num_rows;
          }
          slot = (slot + 1) & table.mask;
        }
      }
      return out;
    });
    double probe_seconds = WallSeconds(probe_start);

    // ---- Concat phase: ordered reduction over partition outputs. ----
    auto concat_start = std::chrono::steady_clock::now();
    JoinExecOut exec;
    Chunk& out = exec.chunk;
    InitJoinOut(left, right, rowid_plan, &out);
    uint64_t probe_collisions = 0;
    for (const PartitionOut& p : outs) {
      out.num_rows += p.num_rows;
      probe_collisions += p.probe_collisions;
    }
    if (vectorized_) {
      ParallelFor(rowid_plan.size(), [&](size_t c) {
        out.rowids[c].reserve(static_cast<size_t>(out.num_rows));
        for (const PartitionOut& p : outs) {
          out.rowids[c].insert(out.rowids[c].end(), p.rowid_cols[c].begin(),
                               p.rowid_cols[c].end());
        }
      });
    } else {
      ParallelFor(out_width, [&](size_t c) {
        out.cols[c].reserve(static_cast<size_t>(out.num_rows));
        for (const PartitionOut& p : outs) {
          out.cols[c].insert(out.cols[c].end(), p.cols[c].begin(),
                             p.cols[c].end());
        }
      });
    }
    exec.concat_seconds = WallSeconds(concat_start);

    exec.build_collisions = build_collisions;
    exec.probe_collisions = probe_collisions;
    exec.max_bucket = max_bucket;
    exec.mean_bucket = mean_bucket;
    exec.partitions = static_cast<int>(num_partitions);
    exec.build_seconds = build_seconds;
    exec.probe_seconds = probe_seconds;
    return exec;
  }

  // Sort-merge join — the real path for merge-declared nodes under
  // kMergeJoinMaxRows. Both sides are argsorted by key tuple with the row
  // id as the final tie-break, so the sorted orders (and therefore every
  // emitted bit) are unique regardless of key duplication; the merge then
  // emits the cross product of each equal-key run pair, runs in merge
  // order, pairs in (left-run, right-run) row order. The scalar reference
  // finds run ends linearly and emits tuple at a time; the vectorized path
  // gallops to run ends (exponential probe + binary search) and emits
  // row-id columns through fixed-size match buffers. Identical run
  // boundaries, identical emission order. The whole strategy is serial by
  // construction (the gate keeps inputs small), so thread count cannot
  // influence anything.
  JoinExecOut ExecuteMergeJoin(const Chunk& left, const Chunk& right,
                               const std::vector<const int64_t*>& lkeys,
                               const std::vector<const int64_t*>& rkeys,
                               const std::vector<RowidSrc>& rowid_plan) {
    auto sort_start = std::chrono::steady_clock::now();
    JoinExecOut exec;
    size_t ln = static_cast<size_t>(left.num_rows);
    size_t rn = static_cast<size_t>(right.num_rows);
    std::vector<uint32_t> lorder(ln);
    std::vector<uint32_t> rorder(rn);
    for (size_t i = 0; i < ln; ++i) lorder[i] = static_cast<uint32_t>(i);
    for (size_t i = 0; i < rn; ++i) rorder[i] = static_cast<uint32_t>(i);
    std::sort(lorder.begin(), lorder.end(), [&](uint32_t a, uint32_t b) {
      for (const int64_t* col : lkeys) {
        if (col[a] != col[b]) return col[a] < col[b];
      }
      return a < b;
    });
    std::sort(rorder.begin(), rorder.end(), [&](uint32_t a, uint32_t b) {
      for (const int64_t* col : rkeys) {
        if (col[a] != col[b]) return col[a] < col[b];
      }
      return a < b;
    });
    exec.build_seconds = WallSeconds(sort_start);

    auto merge_start = std::chrono::steady_clock::now();
    size_t left_width = left.cols.size();
    Chunk& out = exec.chunk;
    InitJoinOut(left, right, rowid_plan, &out);

    auto compare_lr = [&](uint32_t l, uint32_t r) {
      for (size_t k = 0; k < lkeys.size(); ++k) {
        int64_t lv = lkeys[k][l];
        int64_t rv = rkeys[k][r];
        if (lv != rv) return lv < rv ? -1 : 1;
      }
      return 0;
    };
    auto equal_ll = [&](uint32_t a, uint32_t b) {
      for (const int64_t* col : lkeys) {
        if (col[a] != col[b]) return false;
      }
      return true;
    };
    auto equal_rr = [&](uint32_t a, uint32_t b) {
      for (const int64_t* col : rkeys) {
        if (col[a] != col[b]) return false;
      }
      return true;
    };
    // First position in (begin, n) whose key differs from the key at
    // `begin`, found by galloping: exponential probe to bracket the run
    // end, then binary search inside the bracket. Returns exactly what the
    // linear scan of the scalar reference returns.
    auto gallop_run_end = [](size_t begin, size_t n, auto&& equal_at) {
      size_t last = begin;  // highest index known equal to `begin`
      size_t step = 1;
      while (last + step < n && equal_at(last + step, begin)) {
        last += step;
        step <<= 1;
      }
      size_t hi = std::min(last + step, n);  // first known non-equal (or n)
      while (last + 1 < hi) {
        size_t mid = last + (hi - last) / 2;
        if (equal_at(mid, begin)) {
          last = mid;
        } else {
          hi = mid;
        }
      }
      return last + 1;
    };

    size_t i = 0;
    size_t j = 0;
    if (vectorized_) {
      uint32_t match_l[kVecBatchRows];
      uint32_t match_r[kVecBatchRows];
      size_t n_match = 0;
      auto flush = [&] {
        for (size_t c = 0; c < rowid_plan.size(); ++c) {
          const RowidSrc& s = rowid_plan[c];
          if (s.from_left) {
            GatherAppend(left.rowids[s.src_col].data(), match_l, n_match,
                         &out.rowids[c]);
          } else {
            GatherAppend(right.rowids[s.src_col].data(), match_r, n_match,
                         &out.rowids[c]);
          }
        }
        out.num_rows += n_match;
        n_match = 0;
      };
      while (i < ln && j < rn) {
        int c = compare_lr(lorder[i], rorder[j]);
        if (c < 0) {
          ++i;
          continue;
        }
        if (c > 0) {
          ++j;
          continue;
        }
        size_t ie = gallop_run_end(i, ln, [&](size_t x, size_t y) {
          return equal_ll(lorder[x], lorder[y]);
        });
        size_t je = gallop_run_end(j, rn, [&](size_t x, size_t y) {
          return equal_rr(rorder[x], rorder[y]);
        });
        for (size_t a = i; a < ie; ++a) {
          for (size_t b = j; b < je; ++b) {
            match_l[n_match] = lorder[a];
            match_r[n_match] = rorder[b];
            if (++n_match == kVecBatchRows) flush();
          }
        }
        i = ie;
        j = je;
      }
      flush();
    } else {
      // Tuple-at-a-time reference: linear run-end scans, per-row emission.
      while (i < ln && j < rn) {
        int c = compare_lr(lorder[i], rorder[j]);
        if (c < 0) {
          ++i;
          continue;
        }
        if (c > 0) {
          ++j;
          continue;
        }
        size_t ie = i + 1;
        while (ie < ln && equal_ll(lorder[ie], lorder[i])) ++ie;
        size_t je = j + 1;
        while (je < rn && equal_rr(rorder[je], rorder[j])) ++je;
        for (size_t a = i; a < ie; ++a) {
          for (size_t b = j; b < je; ++b) {
            for (size_t c2 = 0; c2 < left_width; ++c2) {
              // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
              out.cols[c2].push_back(left.cols[c2][lorder[a]]);
            }
            for (size_t c2 = 0; c2 < right.cols.size(); ++c2) {
              // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
              out.cols[left_width + c2].push_back(right.cols[c2][rorder[b]]);
            }
            ++out.num_rows;
          }
        }
        i = ie;
        j = je;
      }
    }
    exec.probe_seconds = WallSeconds(merge_start);
    return exec;
  }

  // Block nested-loop join — the real path for NLJ-declared nodes under
  // kNljMaxPairs. The outer (left) side is walked row by row; the inner
  // (right) side is consumed as dense kVecBatchRows batches through the
  // dispatched filter kernels: an Eq kernel on the first key column, then
  // Eq refinements on the remaining key columns — instead of per-row
  // Predicate-style comparisons. The scalar reference compares every
  // (outer, inner) pair tuple at a time. Both emit pairs in (outer row,
  // inner row) order, serially — bit-identical output, no thread
  // sensitivity.
  JoinExecOut ExecuteNestedLoopJoin(const Chunk& left, const Chunk& right,
                                    const std::vector<const int64_t*>& lkeys,
                                    const std::vector<const int64_t*>& rkeys,
                                    const std::vector<RowidSrc>& rowid_plan) {
    auto probe_start = std::chrono::steady_clock::now();
    JoinExecOut exec;
    size_t ln = static_cast<size_t>(left.num_rows);
    uint32_t rn = static_cast<uint32_t>(right.num_rows);
    size_t left_width = left.cols.size();
    Chunk& out = exec.chunk;
    InitJoinOut(left, right, rowid_plan, &out);

    if (vectorized_) {
      const int64_t* right_key0 = rkeys[0];
      SelVector sel_a;
      SelVector sel_b;
      uint32_t match_l[kVecBatchRows];
      uint32_t match_r[kVecBatchRows];
      size_t n_match = 0;
      auto flush = [&] {
        for (size_t c = 0; c < rowid_plan.size(); ++c) {
          const RowidSrc& s = rowid_plan[c];
          if (s.from_left) {
            GatherAppend(left.rowids[s.src_col].data(), match_l, n_match,
                         &out.rowids[c]);
          } else {
            GatherAppend(right.rowids[s.src_col].data(), match_r, n_match,
                         &out.rowids[c]);
          }
        }
        out.num_rows += n_match;
        n_match = 0;
      };
      for (size_t l = 0; l < ln; ++l) {
        for (uint32_t batch = 0; batch < rn; batch += kVecBatchRows) {
          uint32_t e = static_cast<uint32_t>(
              std::min<size_t>(rn, batch + kVecBatchRows));
          uint32_t* cur = sel_a.row;
          uint32_t* next = sel_b.row;
          size_t count = FilterEqDense(right_key0, batch, e, lkeys[0][l], cur);
          for (size_t kc = 1; kc < lkeys.size() && count > 0; ++kc) {
            count = FilterEqSel(rkeys[kc], cur, count, lkeys[kc][l], next);
            std::swap(cur, next);
          }
          for (size_t t = 0; t < count; ++t) {
            match_l[n_match] = static_cast<uint32_t>(l);
            match_r[n_match] = cur[t];
            if (++n_match == kVecBatchRows) flush();
          }
        }
      }
      flush();
    } else {
      // Tuple-at-a-time reference: compare every pair.
      for (size_t l = 0; l < ln; ++l) {
        for (uint32_t r = 0; r < rn; ++r) {
          bool match = true;
          for (size_t k = 0; k < lkeys.size(); ++k) {
            if (lkeys[k][l] != rkeys[k][r]) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          for (size_t c = 0; c < left_width; ++c) {
            // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
            out.cols[c].push_back(left.cols[c][l]);
          }
          for (size_t c = 0; c < right.cols.size(); ++c) {
            // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
            out.cols[left_width + c].push_back(right.cols[c][r]);
          }
          ++out.num_rows;
        }
      }
    }
    exec.probe_seconds = WallSeconds(probe_start);
    return exec;
  }

  // ---- Output stage (projection / aggregation sink). ----
  //
  // The one place the vectorized pipeline finally touches base-table
  // values: every select-list read gathers through the row-id columns the
  // plan carried forward (run-detected bulk gathers / selection-vector agg
  // kernels). The scalar reference reads the early-materialized chunk
  // columns tuple at a time. Both emit bit-identical output columns.
  Status ExecuteOutput(const Chunk& root, ExecutionResult* result) {
    const std::vector<OutputExpr>& outputs = query_.outputs();
    size_t n = static_cast<size_t>(root.num_rows);

    // Distinct (table, column) pairs the stage reads, and each output's
    // slot in that list (-1 for COUNT(*)).
    std::vector<std::pair<int, std::string>> refs;
    auto add_ref = [&](int t, const std::string& c) {
      for (size_t i = 0; i < refs.size(); ++i) {
        if (refs[i].first == t && refs[i].second == c) {
          return static_cast<int>(i);
        }
      }
      refs.emplace_back(t, c);
      return static_cast<int>(refs.size() - 1);
    };
    int gk_ref = -1;
    if (query_.has_group_by()) {
      gk_ref = add_ref(query_.group_by_table(), query_.group_by_column());
    }
    std::vector<int> out_ref(outputs.size(), -1);
    for (size_t o = 0; o < outputs.size(); ++o) {
      if (outputs[o].ReferencesColumn()) {
        out_ref[o] = add_ref(outputs[o].table_index, outputs[o].column);
      }
    }

    // Resolve value access per referenced column: scalar mode points into
    // the carried chunk columns; vectorized mode pairs the base column with
    // the carried row-id vector (the deferred gather).
    struct RefAccess {
      const int64_t* chunk_col = nullptr;  // scalar
      const int64_t* base = nullptr;       // vectorized
      size_t base_rows = 0;
      const uint32_t* ids = nullptr;
    };
    std::vector<RefAccess> ref_access(refs.size());
    for (size_t i = 0; i < refs.size(); ++i) {
      RefAccess& a = ref_access[i];
      if (vectorized_) {
        auto col_or = BaseColumn(refs[i].first, refs[i].second);
        if (!col_or.ok()) return col_or.status();
        a.base = (*col_or)->data.data();
        a.base_rows = (*col_or)->data.size();
        int ridx = root.FindRowids(refs[i].first);
        if (ridx < 0) {
          return Status::Internal("output row ids missing from intermediate");
        }
        a.ids = root.rowids[static_cast<size_t>(ridx)].data();
      } else {
        int idx = root.FindColumn(refs[i].first, refs[i].second);
        if (idx < 0) {
          return Status::Internal("output column missing from intermediate");
        }
        a.chunk_col = root.cols[static_cast<size_t>(idx)].data();
      }
    }

    result->output_cols.assign(outputs.size(), {});
    if (query_.has_group_by()) {
      Status s = RunGroupBy(root, outputs, ref_access, out_ref, gk_ref, n,
                            result);
      if (!s.ok()) return s;
    } else {
      bool all_aggregate = true;
      for (const OutputExpr& e : outputs) {
        if (e.kind == OutputExpr::Kind::kColumn) all_aggregate = false;
      }
      if (all_aggregate) {
        RunGlobalAggregates(root, outputs, ref_access, out_ref, n, result);
      } else {
        RunProjection(outputs, ref_access, out_ref, n, result);
      }
    }

    // Charge the stage. Every term is structural (row counts × select-list
    // shape), so scalar and vectorized runs charge identically.
    size_t naggs = 0;
    for (const OutputExpr& e : outputs) {
      if (e.kind == OutputExpr::Kind::kAggregate) ++naggs;
    }
    double rows = static_cast<double>(n);
    NodeProfile profile;
    profile.kind = PlanNode::Kind::kOutput;
    profile.table_index = -1;
    profile.left_rows = n;
    profile.output_rows = result->output_row_count;
    profile.time_units =
        rows * static_cast<double>(refs.size()) * constants_.materialize_value +
        rows * static_cast<double>(naggs) * constants_.agg_update +
        (query_.has_group_by() ? rows * constants_.group_probe : 0.0) +
        static_cast<double>(result->output_row_count) *
            static_cast<double>(outputs.size()) * constants_.materialize_value;
    profile.carried_columns = refs.size();
    profile.materialized_values =
        result->output_row_count * static_cast<uint64_t>(outputs.size());
    profile.groups =
        query_.has_group_by() ? result->output_row_count : 0;
    profiles_.push_back(profile);
    return Status::Ok();
  }

  template <typename RefAccessT>
  void RunGlobalAggregates(const Chunk& root,
                           const std::vector<OutputExpr>& outputs,
                           const std::vector<RefAccessT>& ref_access,
                           const std::vector<int>& out_ref, size_t n,
                           ExecutionResult* result) {
    std::vector<AggAcc> accs(outputs.size());
    if (vectorized_) {
      const simd::AggKernelTable& ak = simd::AggKernels();
      for (size_t o = 0; o < outputs.size(); ++o) {
        const OutputExpr& e = outputs[o];
        if (!e.ReferencesColumn() || e.func == AggFunc::kCount || n == 0) {
          continue;
        }
        const RefAccessT& a = ref_access[static_cast<size_t>(out_ref[o])];
        AggAcc& acc = accs[o];
        // Scans emit ascending row ids, so a predicate-free (or prefix)
        // selection is a dense range: fold it with the dense kernels, no
        // gather at all. Anything else goes through the sel kernels.
        bool dense = root.rowids_ascending &&
                     static_cast<uint64_t>(a.ids[n - 1]) - a.ids[0] == n - 1;
        if (dense) {
          uint32_t row_begin = a.ids[0];
          uint32_t row_end = a.ids[n - 1] + 1;
          LQO_CHECK_LE(static_cast<size_t>(row_end), a.base_rows);
          switch (e.func) {
            case AggFunc::kSum:
            case AggFunc::kAvg:
              acc.sum = ak.sum_dense(a.base, row_begin, row_end);
              break;
            case AggFunc::kMin:
              acc.mn = ak.min_dense(a.base, row_begin, row_end);
              break;
            case AggFunc::kMax:
              acc.mx = ak.max_dense(a.base, row_begin, row_end);
              break;
            case AggFunc::kCount:
              break;
          }
        } else {
          switch (e.func) {
            case AggFunc::kSum:
            case AggFunc::kAvg:
              acc.sum = ak.sum_sel(a.base, a.ids, n);
              break;
            case AggFunc::kMin:
              acc.mn = ak.min_sel(a.base, a.ids, n);
              break;
            case AggFunc::kMax:
              acc.mx = ak.max_sel(a.base, a.ids, n);
              break;
            case AggFunc::kCount:
              break;
          }
        }
      }
    } else {
      // Tuple-at-a-time reference: one pass over the carried columns.
      for (size_t row = 0; row < n; ++row) {
        for (size_t o = 0; o < outputs.size(); ++o) {
          const OutputExpr& e = outputs[o];
          if (!e.ReferencesColumn() || e.func == AggFunc::kCount) continue;
          int64_t v =
              ref_access[static_cast<size_t>(out_ref[o])].chunk_col[row];
          AggAcc& a = accs[o];
          switch (e.func) {
            case AggFunc::kSum:
            case AggFunc::kAvg:
              a.sum += static_cast<uint64_t>(v);
              break;
            case AggFunc::kMin:
              a.mn = v < a.mn ? v : a.mn;
              break;
            case AggFunc::kMax:
              a.mx = v > a.mx ? v : a.mx;
              break;
            case AggFunc::kCount:
              break;
          }
        }
      }
    }
    // Shared finalize — the only place accumulator state becomes output, so
    // path equality reduces to the kernel bit-equality contract.
    for (size_t o = 0; o < outputs.size(); ++o) {
      result->output_cols[o] = {FinalizeAgg(outputs[o].func, accs[o],
                                            static_cast<uint64_t>(n))};
    }
    result->output_row_count = 1;
  }

  template <typename RefAccessT>
  void RunProjection(const std::vector<OutputExpr>& outputs,
                     const std::vector<RefAccessT>& ref_access,
                     const std::vector<int>& out_ref, size_t n,
                     ExecutionResult* result) {
    for (size_t o = 0; o < outputs.size(); ++o) {
      const RefAccessT& a = ref_access[static_cast<size_t>(out_ref[o])];
      std::vector<int64_t>& col = result->output_cols[o];
      if (vectorized_) {
        col.reserve(n);
        GatherAppendRuns(a.base, a.base_rows, a.ids, n, &col);
      } else {
        col.reserve(n);
        for (size_t row = 0; row < n; ++row) {
          // lint: hot-loop-growth-ok(scalar reference path, not the hot kernel)
          col.push_back(a.chunk_col[row]);
        }
      }
    }
    result->output_row_count = n;
  }

  template <typename RefAccessT>
  Status RunGroupBy(const Chunk& /*root*/,
                    const std::vector<OutputExpr>& outputs,
                    const std::vector<RefAccessT>& ref_access,
                    const std::vector<int>& out_ref, int gk_ref, size_t n,
                    ExecutionResult* result) {
    // Both paths produce: group keys in first-seen row order, per-group row
    // counts, and per-(output, group) accumulators.
    std::vector<int64_t> gkeys;
    std::vector<uint64_t> gcounts;
    std::vector<std::vector<AggAcc>> gaccs(outputs.size());
    const RefAccessT& gk = ref_access[static_cast<size_t>(gk_ref)];

    if (vectorized_) {
      // Map every row to a dense first-seen group id. Two key paths, both
      // reproducing the scalar reference's first-seen insertion order
      // bit-for-bit (the choice depends only on the key values, never on
      // thread count, SIMD level or path):
      //   - dense key domain (max-min fits a small direct table, measured
      //     with the dispatched min/max kernels): one direct-indexed pass,
      //     no hashing at all;
      //   - general: gather the key column once (run-detected bulk copy),
      //     hash it with the dispatched join-hash kernels, probe the
      //     open-addressing GroupIndex.
      std::vector<uint32_t> gids(n);
      if (n > 0) {
        const simd::AggKernelTable& ak = simd::AggKernels();
        int64_t kmin = ak.min_sel(gk.base, gk.ids, n);
        int64_t kmax = ak.max_sel(gk.base, gk.ids, n);
        uint64_t domain =
            static_cast<uint64_t>(kmax) - static_cast<uint64_t>(kmin);
        // Direct-table cap: generous relative to the row count but bounded
        // so the table stays cache-resident.
        if (domain < 2 * static_cast<uint64_t>(n) + 1024 &&
            domain < (1u << 20)) {
          std::vector<uint32_t> slot(static_cast<size_t>(domain) + 1,
                                     UINT32_MAX);
          gkeys.reserve(std::min<size_t>(n, static_cast<size_t>(domain) + 1));
          for (size_t i = 0; i < n; ++i) {
            int64_t kv = gk.base[gk.ids[i]];
            size_t s = static_cast<size_t>(static_cast<uint64_t>(kv) -
                                           static_cast<uint64_t>(kmin));
            uint32_t g = slot[s];
            if (g == UINT32_MAX) {
              g = static_cast<uint32_t>(gkeys.size());
              slot[s] = g;
              // lint: hot-loop-growth-ok(reserved above; grows once per new group)
              gkeys.push_back(kv);
            }
            gids[i] = g;
          }
        } else {
          std::vector<int64_t> keys;
          keys.reserve(n);
          GatherAppendRuns(gk.base, gk.base_rows, gk.ids, n, &keys);
          std::vector<uint64_t> hashes(n);
          const simd::KernelTable& kt = simd::Kernels();
          ParallelFor(HashMorsels(n), [&](size_t m) {
            auto [begin, end] = MorselRange(m, n);
            for (size_t r = begin; r < end; ++r) hashes[r] = 0;
            kt.hash_combine_column(hashes.data(), keys.data(), begin, end);
            kt.hash_finalize(hashes.data(), begin, end);
          });
          simd::GroupIndex gindex;
          gindex.MapBatch(keys.data(), hashes.data(), n, gids.data());
          gkeys = gindex.group_keys();
        }
      }
      gcounts.assign(gkeys.size(), 0);
      for (size_t i = 0; i < n; ++i) ++gcounts[gids[i]];
      // One scatter-accumulate pass per *distinct* referenced column,
      // reading base values straight through the carried row ids (no
      // intermediate gather) and folding every aggregate kind that reads
      // the column in the same pass — SUM and AVG share the wrapping sum.
      for (size_t r = 0; r < ref_access.size(); ++r) {
        bool want_sum = false;
        bool want_min = false;
        bool want_max = false;
        for (size_t o = 0; o < outputs.size(); ++o) {
          const OutputExpr& e = outputs[o];
          if (e.kind != OutputExpr::Kind::kAggregate ||
              !e.ReferencesColumn() || e.func == AggFunc::kCount ||
              out_ref[o] != static_cast<int>(r)) {
            continue;
          }
          want_sum |= e.func == AggFunc::kSum || e.func == AggFunc::kAvg;
          want_min |= e.func == AggFunc::kMin;
          want_max |= e.func == AggFunc::kMax;
        }
        if (!want_sum && !want_min && !want_max) continue;
        const RefAccessT& a = ref_access[r];
        std::vector<AggAcc> acc(gkeys.size(), AggAcc{});
        const int64_t* base = a.base;
        const uint32_t* ids = a.ids;
        for (size_t i = 0; i < n; ++i) {
          int64_t v = base[ids[i]];
          AggAcc& g = acc[gids[i]];
          if (want_sum) g.sum += static_cast<uint64_t>(v);
          if (want_min) g.mn = v < g.mn ? v : g.mn;
          if (want_max) g.mx = v > g.mx ? v : g.mx;
        }
        for (size_t o = 0; o < outputs.size(); ++o) {
          const OutputExpr& e = outputs[o];
          if (e.kind == OutputExpr::Kind::kAggregate && e.ReferencesColumn() &&
              e.func != AggFunc::kCount && out_ref[o] == static_cast<int>(r)) {
            gaccs[o] = acc;
          }
        }
      }
    } else {
      // Tuple-at-a-time reference: unordered_map lookups only (never
      // iterated), first-seen dense group ids, per-row accumulator updates.
      std::unordered_map<int64_t, uint32_t> gid_of;
      const int64_t* keyv = gk.chunk_col;
      for (size_t row = 0; row < n; ++row) {
        int64_t kv = keyv[row];
        auto [it, inserted] =
            gid_of.try_emplace(kv, static_cast<uint32_t>(gkeys.size()));
        uint32_t g = it->second;
        if (inserted) {
          // lint: hot-loop-growth-ok(scalar reference path: grows once per new group)
          gkeys.push_back(kv);
          // lint: hot-loop-growth-ok(scalar reference path: grows once per new group)
          gcounts.push_back(0);
          for (size_t o = 0; o < outputs.size(); ++o) {
            // lint: hot-loop-growth-ok(scalar reference path: grows once per new group)
            gaccs[o].push_back(AggAcc{});
          }
        }
        ++gcounts[g];
        for (size_t o = 0; o < outputs.size(); ++o) {
          const OutputExpr& e = outputs[o];
          if (e.kind != OutputExpr::Kind::kAggregate ||
              !e.ReferencesColumn() || e.func == AggFunc::kCount) {
            continue;
          }
          int64_t v =
              ref_access[static_cast<size_t>(out_ref[o])].chunk_col[row];
          AggAcc& a = gaccs[o][g];
          switch (e.func) {
            case AggFunc::kSum:
            case AggFunc::kAvg:
              a.sum += static_cast<uint64_t>(v);
              break;
            case AggFunc::kMin:
              a.mn = v < a.mn ? v : a.mn;
              break;
            case AggFunc::kMax:
              a.mx = v > a.mx ? v : a.mx;
              break;
            case AggFunc::kCount:
              break;
          }
        }
      }
    }

    // Shared emission in group-id (= first-seen) order.
    size_t num_groups = gkeys.size();
    for (size_t o = 0; o < outputs.size(); ++o) {
      const OutputExpr& e = outputs[o];
      std::vector<int64_t>& col = result->output_cols[o];
      if (e.kind == OutputExpr::Kind::kColumn) {
        col = gkeys;  // validated to be the GROUP BY key
        continue;
      }
      col.resize(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        AggAcc acc = gaccs[o].empty() ? AggAcc{} : gaccs[o][g];
        col[g] = FinalizeAgg(e.func, acc, gcounts[g]);
      }
    }
    result->output_row_count = num_groups;
    return Status::Ok();
  }

  // Converts accumulator state + row count to the emitted int64. Empty
  // inputs (count == 0, global aggregates over zero qualifying rows) emit
  // 0 for every function; AVG is the truncated integer quotient.
  static int64_t FinalizeAgg(AggFunc func, const AggAcc& acc, uint64_t count) {
    switch (func) {
      case AggFunc::kCount:
        return static_cast<int64_t>(count);
      case AggFunc::kSum:
        return static_cast<int64_t>(acc.sum);
      case AggFunc::kAvg:
        return count == 0 ? 0
                          : static_cast<int64_t>(acc.sum) /
                                static_cast<int64_t>(count);
      case AggFunc::kMin:
        return count == 0 ? 0 : acc.mn;
      case AggFunc::kMax:
        return count == 0 ? 0 : acc.mx;
    }
    return 0;
  }

  // Morsel geometry for the hash-computation loops: one morsel below the
  // parallel threshold, fixed-size morsels above it.
  static size_t HashMorsels(uint64_t rows) {
    if (rows == 0) return 0;
    if (rows < kParallelScanMinRows) return 1;
    return (static_cast<size_t>(rows) + kScanMorselRows - 1) / kScanMorselRows;
  }
  static std::pair<size_t, size_t> MorselRange(size_t m, uint64_t rows) {
    size_t n = static_cast<size_t>(rows);
    size_t num = HashMorsels(rows);
    return {m * n / num, (m + 1) * n / num};
  }

  const Catalog& catalog_;
  const CostConstants& constants_;
  const Query& query_;
  const bool vectorized_;
  std::vector<NodeProfile> profiles_;
};

}  // namespace

Executor::Executor(const Catalog* catalog, CostConstants constants)
    : catalog_(catalog),
      constants_(constants),
      vectorized_(DefaultVectorized()) {
  LQO_CHECK(catalog_ != nullptr);
}

StatusOr<ExecutionResult> Executor::Execute(const PhysicalPlan& plan) const {
  if (plan.query == nullptr || plan.root == nullptr) {
    return Status::InvalidArgument("plan missing query or root");
  }
  PlanRunner runner(*catalog_, constants_, *plan.query, vectorized_);
  return runner.Run(*plan.root);
}

PhysicalPlan MakeLeftDeepPlan(const Query& query, TableSet tables,
                              JoinAlgorithm algorithm) {
  LQO_CHECK(tables != 0);
  LQO_CHECK(query.IsConnected(tables)) << "table set must be connected";
  int start = __builtin_ctzll(tables);
  std::unique_ptr<PlanNode> current = MakeScanNode(start);
  TableSet joined = TableBit(start);
  while (joined != tables) {
    // Lowest-index unjoined table adjacent to the joined set.
    int next = -1;
    for (int t = 0; t < query.num_tables(); ++t) {
      if (!ContainsTable(tables, t) || ContainsTable(joined, t)) continue;
      for (int n : query.Neighbors(t)) {
        if (ContainsTable(joined, n)) {
          next = t;
          break;
        }
      }
      if (next >= 0) break;
    }
    LQO_CHECK_GE(next, 0);
    current = MakeJoinNode(algorithm, std::move(current), MakeScanNode(next));
    joined |= TableBit(next);
  }
  PhysicalPlan plan;
  plan.query = &query;
  plan.root = std::move(current);
  return plan;
}

}  // namespace lqo
