#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "engine/filter_kernels.h"
#include "engine/simd.h"
#include "engine/vec_batch.h"

namespace lqo {
namespace {

// Morsel/partition geometry. All values are input-size gated only — never
// thread-count gated — so the execution structure (and therefore every
// output bit) is identical at any LQO_THREADS setting.
constexpr size_t kScanMorselRows = 4096;
// Below this many input rows a scan runs as one morsel.
constexpr uint64_t kParallelScanMinRows = 8192;
// Radix partitions for large joins; must be a power of two.
constexpr size_t kJoinPartitions = 16;
// Below this many build+probe rows a join uses a single partition.
constexpr uint64_t kParallelJoinMinRows = 8192;
// Physical-strategy gates for the declared-algorithm join paths. A node
// declared merge/nested-loop *executes* as such only when its inputs fit
// under these input-size-only (therefore deterministic) bounds; above them
// it falls back to the partitioned hash execution, which produces the same
// output multiset, so hint-forced pathological plans keep reporting their
// declared cost without pathological wall-clock. Both real paths emit rows
// in a deterministic order of their own (merge: key order with row-id
// tie-breaks; NLJ: outer × inner row order), so every downstream bit is
// still reproducible.
constexpr uint64_t kMergeJoinMaxRows = 1ull << 20;   // left + right rows
constexpr uint64_t kNljMaxPairs = 1ull << 22;        // left * right rows

double WallSeconds(const std::chrono::steady_clock::time_point& start) {
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// A materialized intermediate result: selected join-key columns for the
// covered tables, stored column-wise.
struct Chunk {
  // Parallel vectors: col_keys[i] identifies cols[i].
  std::vector<std::pair<int, std::string>> col_keys;
  std::vector<std::vector<int64_t>> cols;
  uint64_t num_rows = 0;

  int FindColumn(int table_index, const std::string& column) const {
    for (size_t i = 0; i < col_keys.size(); ++i) {
      if (col_keys[i].first == table_index && col_keys[i].second == column) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

// Scalar hash steps live in engine/simd.h (HashCombine / FinalizeHash) so
// the SIMD hash kernels and this row-at-a-time reference share one
// definition; the batched path calls the dispatched N-lane kernels, which
// are bit-identical by the simd layer's contract.
using simd::FinalizeHash;
using simd::HashCombine;

double Log2Rows(uint64_t rows) {
  return std::log2(static_cast<double>(std::max<uint64_t>(rows, 2)));
}

// The partition of a hash uses its top bits; open-addressing slots use the
// low bits, so the two never alias.
size_t PartitionOf(uint64_t h, size_t num_partitions) {
  return static_cast<size_t>(h >> 32) & (num_partitions - 1);
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Open-addressing (linear-probing) hash table over one join partition.
/// Stores one slot per build row, sized for load factor <= 0.5 from the
/// exact build count — "sized from the estimate" with the executor's
/// perfect estimate; no per-row rehashing, no node allocations.
struct JoinHashTable {
  static constexpr uint32_t kEmpty = 0xffffffffu;

  std::vector<uint64_t> hashes;
  std::vector<uint32_t> rows;
  size_t mask = 0;

  uint64_t build_collisions = 0;
  uint64_t distinct_hashes = 0;
  uint64_t max_chain = 0;

  explicit JoinHashTable(size_t build_rows) {
    size_t capacity = NextPowerOfTwo(std::max<size_t>(16, build_rows * 2));
    hashes.assign(capacity, 0);
    rows.assign(capacity, kEmpty);
    mask = capacity - 1;
  }

  void Insert(uint64_t h, uint32_t row) {
    size_t slot = static_cast<size_t>(h) & mask;
    uint64_t same_hash_before = 0;
    while (rows[slot] != kEmpty) {
      if (hashes[slot] == h) {
        ++same_hash_before;
      } else {
        ++build_collisions;
      }
      slot = (slot + 1) & mask;
    }
    hashes[slot] = h;
    rows[slot] = row;
    if (same_hash_before == 0) ++distinct_hashes;
    max_chain = std::max(max_chain, same_hash_before + 1);
  }
};

// Process-wide default for the vectorized executor: on unless LQO_VECTORIZED=0.
bool DefaultVectorized() {
  const char* v = std::getenv("LQO_VECTORIZED");
  return v == nullptr || std::string_view(v) != "0";
}

class PlanRunner {
 public:
  PlanRunner(const Catalog& catalog, const CostConstants& constants,
             const Query& query, bool vectorized)
      : catalog_(catalog),
        constants_(constants),
        query_(query),
        vectorized_(vectorized) {}

  StatusOr<ExecutionResult> Run(const PlanNode& root) {
    auto chunk_or = Evaluate(root);
    if (!chunk_or.ok()) return chunk_or.status();
    ExecutionResult result;
    result.row_count = chunk_or->num_rows;
    result.node_profiles = std::move(profiles_);
    for (const NodeProfile& p : result.node_profiles) {
      result.time_units += p.time_units;
    }
    return result;
  }

 private:
  // Join-key columns of `table_index` used anywhere in the query; these are
  // the only columns an intermediate needs to carry.
  std::vector<std::string> NeededColumns(int table_index) const {
    std::vector<std::string> cols;
    auto add = [&](const std::string& c) {
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    };
    for (const QueryJoin& j : query_.joins()) {
      if (j.left_table == table_index) add(j.left_column);
      if (j.right_table == table_index) add(j.right_column);
    }
    return cols;
  }

  StatusOr<Chunk> Evaluate(const PlanNode& node) {
    if (node.kind == PlanNode::Kind::kScan) return EvaluateScan(node);
    return EvaluateJoin(node);
  }

  StatusOr<Chunk> EvaluateScan(const PlanNode& node) {
    const QueryTable& qt =
        query_.tables()[static_cast<size_t>(node.table_index)];
    auto table_or = catalog_.GetTable(qt.table_name);
    if (!table_or.ok()) return table_or.status();
    const Table& table = **table_or;

    std::vector<Predicate> predicates = query_.PredicatesOf(node.table_index);
    // Resolve predicate + needed columns up front.
    std::vector<const Column*> pred_cols;
    for (const Predicate& p : predicates) {
      auto idx = table.ColumnIndex(p.column);
      if (!idx.ok()) return idx.status();
      pred_cols.push_back(&table.column(*idx));
    }
    std::vector<std::string> needed = NeededColumns(node.table_index);
    std::vector<const Column*> out_cols;
    for (const std::string& name : needed) {
      auto idx = table.ColumnIndex(name);
      if (!idx.ok()) return idx.status();
      out_cols.push_back(&table.column(*idx));
    }

    size_t n = table.num_rows();
    size_t num_morsels =
        n >= kParallelScanMinRows ? (n + kScanMorselRows - 1) / kScanMorselRows
                                  : 1;

    // Each morsel filters its row range into a private column set; morsels
    // are then concatenated in index order, reproducing the serial row
    // order exactly.
    struct MorselOut {
      std::vector<std::vector<int64_t>> cols;
      uint64_t num_rows = 0;
    };
    // Tuple-at-a-time reference path, kept byte-for-byte equivalent to the
    // vectorized twin below for the LQO_VECTORIZED=0 A/B contract.
    auto run_morsel_scalar = [&](size_t m) {
      MorselOut out;
      out.cols.resize(out_cols.size());
      size_t begin = m * n / num_morsels;
      size_t end = (m + 1) * n / num_morsels;
      for (size_t row = begin; row < end; ++row) {
        bool pass = true;
        for (size_t p = 0; p < predicates.size(); ++p) {
          if (!predicates[p].Matches(pred_cols[p]->data[row])) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        for (size_t c = 0; c < out_cols.size(); ++c) {
          // lint: hot-loop-growth-ok(scalar reference path, not the hot kernel)
          out.cols[c].push_back(out_cols[c]->data[row]);
        }
        ++out.num_rows;
      }
      return out;
    };
    // Batch-at-a-time twin: same morsel boundaries, batches of kVecBatchRows
    // flow through the branch-free filter kernels into bulk column gathers.
    // Selection vectors stay ascending and predicates are applied in query
    // order, so surviving rows (and their order) match the scalar loop
    // exactly; evaluating later predicates only on survivors is equivalent
    // to the scalar short-circuit.
    auto run_morsel_vectorized = [&](size_t m) {
      MorselOut out;
      out.cols.resize(out_cols.size());
      size_t begin = m * n / num_morsels;
      size_t end = (m + 1) * n / num_morsels;
      SelVector sel_a;
      SelVector sel_b;
      for (size_t batch = begin; batch < end; batch += kVecBatchRows) {
        uint32_t b = static_cast<uint32_t>(batch);
        uint32_t e =
            static_cast<uint32_t>(std::min(end, batch + kVecBatchRows));
        size_t count = e - b;
        const uint32_t* sel = nullptr;
        if (!predicates.empty()) {
          uint32_t* cur = sel_a.row;
          uint32_t* next = sel_b.row;
          count =
              FilterDense(predicates[0], pred_cols[0]->data.data(), b, e, cur);
          for (size_t p = 1; p < predicates.size() && count > 0; ++p) {
            count = FilterSel(predicates[p], pred_cols[p]->data.data(), cur,
                              count, next);
            std::swap(cur, next);
          }
          sel = cur;
        }
        if (count == 0) continue;
        for (size_t c = 0; c < out_cols.size(); ++c) {
          const int64_t* col = out_cols[c]->data.data();
          if (sel == nullptr) {
            AppendContiguous(col, b, count, &out.cols[c]);
          } else {
            GatherAppend(col, sel, count, &out.cols[c]);
          }
        }
        out.num_rows += count;
      }
      return out;
    };
    if (vectorized_) LQO_CHECK_LT(n, (1ULL << 32));
    std::vector<MorselOut> morsels =
        vectorized_ ? ParallelMap(num_morsels, run_morsel_vectorized)
                    : ParallelMap(num_morsels, run_morsel_scalar);

    Chunk chunk;
    for (const std::string& name : needed) {
      chunk.col_keys.emplace_back(node.table_index, name);
      chunk.cols.emplace_back();
    }
    for (const MorselOut& m : morsels) chunk.num_rows += m.num_rows;
    for (size_t c = 0; c < chunk.cols.size(); ++c) {
      chunk.cols[c].reserve(static_cast<size_t>(chunk.num_rows));
      for (const MorselOut& m : morsels) {
        chunk.cols[c].insert(chunk.cols[c].end(), m.cols[c].begin(),
                             m.cols[c].end());
      }
    }

    NodeProfile profile;
    profile.kind = PlanNode::Kind::kScan;
    profile.table_index = node.table_index;
    profile.left_rows = n;
    profile.output_rows = chunk.num_rows;
    profile.time_units =
        static_cast<double>(n) * constants_.scan_row +
        static_cast<double>(n) * static_cast<double>(predicates.size()) *
            constants_.predicate_eval;
    profiles_.push_back(profile);
    return chunk;
  }

  StatusOr<Chunk> EvaluateJoin(const PlanNode& node) {
    auto left_or = Evaluate(*node.left);
    if (!left_or.ok()) return left_or.status();
    auto right_or = Evaluate(*node.right);
    if (!right_or.ok()) return right_or.status();
    Chunk left = std::move(*left_or);
    Chunk right = std::move(*right_or);

    // Join conditions crossing the two sides.
    std::vector<std::pair<int, int>> key_cols;  // (left col idx, right col idx)
    for (const QueryJoin& j : query_.joins()) {
      bool l_in_left = ContainsTable(node.left->table_set, j.left_table);
      bool l_in_right = ContainsTable(node.right->table_set, j.left_table);
      bool r_in_left = ContainsTable(node.left->table_set, j.right_table);
      bool r_in_right = ContainsTable(node.right->table_set, j.right_table);
      int lc = -1, rc = -1;
      if (l_in_left && r_in_right) {
        lc = left.FindColumn(j.left_table, j.left_column);
        rc = right.FindColumn(j.right_table, j.right_column);
      } else if (l_in_right && r_in_left) {
        lc = left.FindColumn(j.right_table, j.right_column);
        rc = right.FindColumn(j.left_table, j.left_column);
      } else {
        continue;
      }
      if (lc < 0 || rc < 0) {
        return Status::Internal("join key column missing from intermediate");
      }
      key_cols.emplace_back(lc, rc);
    }
    if (key_cols.empty()) {
      return Status::InvalidArgument(
          "plan joins disconnected components (cross product)");
    }
    LQO_CHECK_LT(right.num_rows, (1ULL << 32));

    // Pick the physical strategy from the declared algorithm and the
    // input-size gates (see kMergeJoinMaxRows / kNljMaxPairs); cost
    // charging and the profile layout below are shared by all three.
    bool run_merge = node.algorithm == JoinAlgorithm::kMergeJoin &&
                     left.num_rows + right.num_rows <= kMergeJoinMaxRows;
    bool run_nlj = node.algorithm == JoinAlgorithm::kNestedLoopJoin &&
                   left.num_rows <= kNljMaxPairs &&
                   right.num_rows <= kNljMaxPairs &&
                   left.num_rows * right.num_rows <= kNljMaxPairs;
    JoinExecOut exec = run_merge ? ExecuteMergeJoin(left, right, key_cols)
                       : run_nlj
                           ? ExecuteNestedLoopJoin(left, right, key_cols)
                           : ExecuteHashJoin(left, right, key_cols);
    Chunk out = std::move(exec.chunk);

    // Charge the node under its declared algorithm.
    double l_rows = static_cast<double>(left.num_rows);
    double r_rows = static_cast<double>(right.num_rows);
    double out_rows = static_cast<double>(out.num_rows);
    double time = 0.0;
    switch (node.algorithm) {
      case JoinAlgorithm::kHashJoin: {
        // A hash-declared node always ran the hash strategy, so its skew
        // statistics are present.
        double skew =
            exec.max_bucket > 0 && exec.mean_bucket > 0
                ? static_cast<double>(exec.max_bucket) / exec.mean_bucket - 1.0
                : 0.0;
        time = r_rows * constants_.hash_build_row +
               l_rows * constants_.hash_probe_row *
                   (1.0 + constants_.skew_probe_factor * skew) +
               out_rows * constants_.output_row;
        if (right.num_rows >
            static_cast<uint64_t>(constants_.hash_memory_rows)) {
          time *= constants_.hash_spill_factor;
        }
        break;
      }
      case JoinAlgorithm::kNestedLoopJoin: {
        double pair_cost =
            right.num_rows <= static_cast<uint64_t>(constants_.nlj_cache_rows)
                ? constants_.nlj_cached_pair
                : constants_.nlj_pair;
        time = l_rows * r_rows * pair_cost + out_rows * constants_.output_row;
        break;
      }
      case JoinAlgorithm::kMergeJoin: {
        time = l_rows * Log2Rows(left.num_rows) * constants_.sort_row_log +
               r_rows * Log2Rows(right.num_rows) * constants_.sort_row_log +
               (l_rows + r_rows) * constants_.merge_row +
               out_rows * constants_.output_row;
        break;
      }
    }

    NodeProfile profile;
    profile.kind = PlanNode::Kind::kJoin;
    profile.algorithm = node.algorithm;
    profile.left_rows = left.num_rows;
    profile.right_rows = right.num_rows;
    profile.output_rows = out.num_rows;
    profile.time_units = time;
    profile.build_collisions = exec.build_collisions;
    profile.probe_collisions = exec.probe_collisions;
    profile.partitions = exec.partitions;
    profile.build_seconds = exec.build_seconds;
    profile.probe_seconds = exec.probe_seconds;
    profile.concat_seconds = exec.concat_seconds;
    profiles_.push_back(profile);
    return out;
  }

  // Per-execution output of whichever physical join strategy ran. The hash
  // statistics stay zero/default on the merge and nested-loop paths — no
  // table is built, so there is nothing to collide with.
  struct JoinExecOut {
    Chunk chunk;
    uint64_t build_collisions = 0;
    uint64_t probe_collisions = 0;
    uint64_t max_bucket = 0;
    double mean_bucket = 1.0;
    int partitions = 1;
    double build_seconds = 0.0;
    double probe_seconds = 0.0;
    double concat_seconds = 0.0;
  };

  // Radix-partitioned open-addressing hash join — the workhorse strategy,
  // and the fallback that executes merge/NLJ-declared nodes whose inputs
  // exceed the real-path gates (same output multiset either way).
  JoinExecOut ExecuteHashJoin(
      const Chunk& left, const Chunk& right,
      const std::vector<std::pair<int, int>>& key_cols) {
    // Input-size gate: small joins run the identical code with a single
    // partition (which ParallelFor executes inline).
    size_t num_partitions =
        left.num_rows + right.num_rows >= kParallelJoinMinRows
            ? kJoinPartitions
            : 1;
    const simd::KernelTable& kt = simd::Kernels();

    auto key_hash = [&](const Chunk& side, bool use_left_col, size_t row) {
      uint64_t h = 0;
      for (auto [lc, rc] : key_cols) {
        int col = use_left_col ? lc : rc;
        h = HashCombine(h, side.cols[static_cast<size_t>(col)][row]);
      }
      return FinalizeHash(h);
    };
    // Column-wise batched hash kernel: one dispatched N-lane combine pass
    // per key column over the morsel range, then one finalize pass. Per row
    // it combines the key columns in the same key_cols order as key_hash,
    // and the SIMD kernels are bit-identical to the scalar steps, so every
    // hash value matches the row-at-a-time computation.
    auto hash_range_columnwise = [&](const Chunk& side, bool use_left_col,
                                     size_t begin, size_t end,
                                     uint64_t* hashes) {
      for (size_t r = begin; r < end; ++r) hashes[r] = 0;
      for (auto [lc, rc] : key_cols) {
        int col = use_left_col ? lc : rc;
        const int64_t* data = side.cols[static_cast<size_t>(col)].data();
        kt.hash_combine_column(hashes, data, begin, end);
      }
      kt.hash_finalize(hashes, begin, end);
    };

    // ---- Build phase: hash, scatter, per-partition open addressing. ----
    auto build_start = std::chrono::steady_clock::now();

    std::vector<uint64_t> right_hashes(static_cast<size_t>(right.num_rows));
    ParallelFor(HashMorsels(right.num_rows), [&](size_t m) {
      auto [begin, end] = MorselRange(m, right.num_rows);
      if (vectorized_) {
        hash_range_columnwise(right, /*use_left_col=*/false, begin, end,
                              right_hashes.data());
        return;
      }
      for (size_t r = begin; r < end; ++r) {
        right_hashes[r] = key_hash(right, /*use_left_col=*/false, r);
      }
    });
    // Serial scatter in row order: partition row lists preserve build-side
    // row order, making table layout independent of thread count.
    std::vector<std::vector<uint32_t>> build_rows(num_partitions);
    for (uint32_t r = 0; r < right.num_rows; ++r) {
      build_rows[PartitionOf(right_hashes[r], num_partitions)].push_back(r);
    }
    std::vector<JoinHashTable> tables;
    tables.reserve(num_partitions);
    for (size_t p = 0; p < num_partitions; ++p) {
      tables.emplace_back(build_rows[p].size());
    }
    ParallelFor(num_partitions, [&](size_t p) {
      for (uint32_t r : build_rows[p]) {
        tables[p].Insert(right_hashes[r], r);
      }
    });

    uint64_t build_collisions = 0;
    uint64_t distinct_hashes = 0;
    uint64_t max_bucket = 0;
    for (const JoinHashTable& t : tables) {
      build_collisions += t.build_collisions;
      distinct_hashes += t.distinct_hashes;
      max_bucket = std::max(max_bucket, t.max_chain);
    }
    double mean_bucket =
        distinct_hashes == 0
            ? 1.0
            : static_cast<double>(right.num_rows) /
                  static_cast<double>(distinct_hashes);
    double build_seconds = WallSeconds(build_start);

    // ---- Probe phase: hash, scatter, per-partition probe. ----
    auto probe_start = std::chrono::steady_clock::now();

    std::vector<uint64_t> left_hashes(static_cast<size_t>(left.num_rows));
    ParallelFor(HashMorsels(left.num_rows), [&](size_t m) {
      auto [begin, end] = MorselRange(m, left.num_rows);
      if (vectorized_) {
        hash_range_columnwise(left, /*use_left_col=*/true, begin, end,
                              left_hashes.data());
        return;
      }
      for (size_t l = begin; l < end; ++l) {
        left_hashes[l] = key_hash(left, /*use_left_col=*/true, l);
      }
    });
    std::vector<std::vector<uint64_t>> probe_rows(num_partitions);
    for (uint64_t l = 0; l < left.num_rows; ++l) {
      probe_rows[PartitionOf(left_hashes[l], num_partitions)].push_back(l);
    }

    size_t left_width = left.cols.size();
    size_t out_width = left_width + right.cols.size();
    struct PartitionOut {
      std::vector<std::vector<int64_t>> cols;
      uint64_t num_rows = 0;
      uint64_t probe_collisions = 0;
    };
    // Each partition probes its left rows in (preserved) row order against
    // its private table, emitting into an index-addressed slot.
    std::vector<PartitionOut> outs = ParallelMap(num_partitions, [&](size_t p) {
      PartitionOut out;
      out.cols.resize(out_width);
      const JoinHashTable& table = tables[p];
      if (vectorized_) {
        // Batched probe: the slot walk (and its collision counting) is
        // identical to the scalar path, but surviving (l, r) pairs land in
        // fixed-size match buffers and materialize in bulk per output
        // column. Flush boundaries never reorder matches, so the output is
        // bit-identical.
        uint64_t match_l[kVecBatchRows];
        uint32_t match_r[kVecBatchRows];
        size_t n_match = 0;
        auto flush = [&] {
          for (size_t c = 0; c < left_width; ++c) {
            GatherAppend(left.cols[c].data(), match_l, n_match, &out.cols[c]);
          }
          for (size_t c = 0; c < right.cols.size(); ++c) {
            GatherAppend(right.cols[c].data(), match_r, n_match,
                         &out.cols[left_width + c]);
          }
          out.num_rows += n_match;
          n_match = 0;
        };
        for (uint64_t l : probe_rows[p]) {
          uint64_t h = left_hashes[l];
          size_t slot = static_cast<size_t>(h) & table.mask;
          while (table.rows[slot] != JoinHashTable::kEmpty) {
            if (table.hashes[slot] != h) {
              ++out.probe_collisions;
              slot = (slot + 1) & table.mask;
              continue;
            }
            uint32_t r = table.rows[slot];
            bool match = true;
            for (auto [lc, rc] : key_cols) {
              if (left.cols[static_cast<size_t>(lc)][l] !=
                  right.cols[static_cast<size_t>(rc)][r]) {
                match = false;
                break;
              }
            }
            if (match) {
              match_l[n_match] = l;
              match_r[n_match] = r;
              if (++n_match == kVecBatchRows) flush();
            }
            slot = (slot + 1) & table.mask;
          }
        }
        flush();
        return out;
      }
      for (uint64_t l : probe_rows[p]) {
        uint64_t h = left_hashes[l];
        size_t slot = static_cast<size_t>(h) & table.mask;
        while (table.rows[slot] != JoinHashTable::kEmpty) {
          if (table.hashes[slot] != h) {
            ++out.probe_collisions;
            slot = (slot + 1) & table.mask;
            continue;
          }
          uint32_t r = table.rows[slot];
          bool match = true;
          for (auto [lc, rc] : key_cols) {
            if (left.cols[static_cast<size_t>(lc)][l] !=
                right.cols[static_cast<size_t>(rc)][r]) {
              match = false;
              break;
            }
          }
          if (match) {
            for (size_t c = 0; c < left_width; ++c) {
              // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
              out.cols[c].push_back(left.cols[c][l]);
            }
            for (size_t c = 0; c < right.cols.size(); ++c) {
              // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
              out.cols[left_width + c].push_back(right.cols[c][r]);
            }
            ++out.num_rows;
          }
          slot = (slot + 1) & table.mask;
        }
      }
      return out;
    });
    double probe_seconds = WallSeconds(probe_start);

    // ---- Concat phase: ordered reduction over partition outputs. ----
    auto concat_start = std::chrono::steady_clock::now();
    JoinExecOut exec;
    Chunk& out = exec.chunk;
    out.col_keys = left.col_keys;
    out.col_keys.insert(out.col_keys.end(), right.col_keys.begin(),
                        right.col_keys.end());
    out.cols.resize(out_width);
    uint64_t probe_collisions = 0;
    for (const PartitionOut& p : outs) {
      out.num_rows += p.num_rows;
      probe_collisions += p.probe_collisions;
    }
    ParallelFor(out_width, [&](size_t c) {
      out.cols[c].reserve(static_cast<size_t>(out.num_rows));
      for (const PartitionOut& p : outs) {
        out.cols[c].insert(out.cols[c].end(), p.cols[c].begin(),
                           p.cols[c].end());
      }
    });
    exec.concat_seconds = WallSeconds(concat_start);

    exec.build_collisions = build_collisions;
    exec.probe_collisions = probe_collisions;
    exec.max_bucket = max_bucket;
    exec.mean_bucket = mean_bucket;
    exec.partitions = static_cast<int>(num_partitions);
    exec.build_seconds = build_seconds;
    exec.probe_seconds = probe_seconds;
    return exec;
  }

  // Sort-merge join — the real path for merge-declared nodes under
  // kMergeJoinMaxRows. Both sides are argsorted by key tuple with the row
  // id as the final tie-break, so the sorted orders (and therefore every
  // emitted bit) are unique regardless of key duplication; the merge then
  // emits the cross product of each equal-key run pair, runs in merge
  // order, pairs in (left-run, right-run) row order. The scalar reference
  // finds run ends linearly and emits tuple at a time; the vectorized path
  // gallops to run ends (exponential probe + binary search) and emits
  // through fixed-size match buffers into bulk gathers. Identical run
  // boundaries, identical emission order. The whole strategy is serial by
  // construction (the gate keeps inputs small), so thread count cannot
  // influence anything.
  JoinExecOut ExecuteMergeJoin(
      const Chunk& left, const Chunk& right,
      const std::vector<std::pair<int, int>>& key_cols) {
    auto sort_start = std::chrono::steady_clock::now();
    JoinExecOut exec;
    size_t ln = static_cast<size_t>(left.num_rows);
    size_t rn = static_cast<size_t>(right.num_rows);
    std::vector<uint32_t> lorder(ln);
    std::vector<uint32_t> rorder(rn);
    for (size_t i = 0; i < ln; ++i) lorder[i] = static_cast<uint32_t>(i);
    for (size_t i = 0; i < rn; ++i) rorder[i] = static_cast<uint32_t>(i);
    std::sort(lorder.begin(), lorder.end(), [&](uint32_t a, uint32_t b) {
      for (auto [lc, rc] : key_cols) {
        (void)rc;
        const std::vector<int64_t>& col = left.cols[static_cast<size_t>(lc)];
        if (col[a] != col[b]) return col[a] < col[b];
      }
      return a < b;
    });
    std::sort(rorder.begin(), rorder.end(), [&](uint32_t a, uint32_t b) {
      for (auto [lc, rc] : key_cols) {
        (void)lc;
        const std::vector<int64_t>& col = right.cols[static_cast<size_t>(rc)];
        if (col[a] != col[b]) return col[a] < col[b];
      }
      return a < b;
    });
    exec.build_seconds = WallSeconds(sort_start);

    auto merge_start = std::chrono::steady_clock::now();
    size_t left_width = left.cols.size();
    size_t out_width = left_width + right.cols.size();
    Chunk& out = exec.chunk;
    out.col_keys = left.col_keys;
    out.col_keys.insert(out.col_keys.end(), right.col_keys.begin(),
                        right.col_keys.end());
    out.cols.resize(out_width);

    auto compare_lr = [&](uint32_t l, uint32_t r) {
      for (auto [lc, rc] : key_cols) {
        int64_t lv = left.cols[static_cast<size_t>(lc)][l];
        int64_t rv = right.cols[static_cast<size_t>(rc)][r];
        if (lv != rv) return lv < rv ? -1 : 1;
      }
      return 0;
    };
    auto equal_ll = [&](uint32_t a, uint32_t b) {
      for (auto [lc, rc] : key_cols) {
        (void)rc;
        const std::vector<int64_t>& col = left.cols[static_cast<size_t>(lc)];
        if (col[a] != col[b]) return false;
      }
      return true;
    };
    auto equal_rr = [&](uint32_t a, uint32_t b) {
      for (auto [lc, rc] : key_cols) {
        (void)lc;
        const std::vector<int64_t>& col = right.cols[static_cast<size_t>(rc)];
        if (col[a] != col[b]) return false;
      }
      return true;
    };
    // First position in (begin, n) whose key differs from the key at
    // `begin`, found by galloping: exponential probe to bracket the run
    // end, then binary search inside the bracket. Returns exactly what the
    // linear scan of the scalar reference returns.
    auto gallop_run_end = [](size_t begin, size_t n, auto&& equal_at) {
      size_t last = begin;  // highest index known equal to `begin`
      size_t step = 1;
      while (last + step < n && equal_at(last + step, begin)) {
        last += step;
        step <<= 1;
      }
      size_t hi = std::min(last + step, n);  // first known non-equal (or n)
      while (last + 1 < hi) {
        size_t mid = last + (hi - last) / 2;
        if (equal_at(mid, begin)) {
          last = mid;
        } else {
          hi = mid;
        }
      }
      return last + 1;
    };

    size_t i = 0;
    size_t j = 0;
    if (vectorized_) {
      uint32_t match_l[kVecBatchRows];
      uint32_t match_r[kVecBatchRows];
      size_t n_match = 0;
      auto flush = [&] {
        for (size_t c = 0; c < left_width; ++c) {
          GatherAppend(left.cols[c].data(), match_l, n_match, &out.cols[c]);
        }
        for (size_t c = 0; c < right.cols.size(); ++c) {
          GatherAppend(right.cols[c].data(), match_r, n_match,
                       &out.cols[left_width + c]);
        }
        out.num_rows += n_match;
        n_match = 0;
      };
      while (i < ln && j < rn) {
        int c = compare_lr(lorder[i], rorder[j]);
        if (c < 0) {
          ++i;
          continue;
        }
        if (c > 0) {
          ++j;
          continue;
        }
        size_t ie = gallop_run_end(i, ln, [&](size_t x, size_t y) {
          return equal_ll(lorder[x], lorder[y]);
        });
        size_t je = gallop_run_end(j, rn, [&](size_t x, size_t y) {
          return equal_rr(rorder[x], rorder[y]);
        });
        for (size_t a = i; a < ie; ++a) {
          for (size_t b = j; b < je; ++b) {
            match_l[n_match] = lorder[a];
            match_r[n_match] = rorder[b];
            if (++n_match == kVecBatchRows) flush();
          }
        }
        i = ie;
        j = je;
      }
      flush();
    } else {
      // Tuple-at-a-time reference: linear run-end scans, per-row emission.
      while (i < ln && j < rn) {
        int c = compare_lr(lorder[i], rorder[j]);
        if (c < 0) {
          ++i;
          continue;
        }
        if (c > 0) {
          ++j;
          continue;
        }
        size_t ie = i + 1;
        while (ie < ln && equal_ll(lorder[ie], lorder[i])) ++ie;
        size_t je = j + 1;
        while (je < rn && equal_rr(rorder[je], rorder[j])) ++je;
        for (size_t a = i; a < ie; ++a) {
          for (size_t b = j; b < je; ++b) {
            for (size_t c2 = 0; c2 < left_width; ++c2) {
              // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
              out.cols[c2].push_back(left.cols[c2][lorder[a]]);
            }
            for (size_t c2 = 0; c2 < right.cols.size(); ++c2) {
              // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
              out.cols[left_width + c2].push_back(right.cols[c2][rorder[b]]);
            }
            ++out.num_rows;
          }
        }
        i = ie;
        j = je;
      }
    }
    exec.probe_seconds = WallSeconds(merge_start);
    return exec;
  }

  // Block nested-loop join — the real path for NLJ-declared nodes under
  // kNljMaxPairs. The outer (left) side is walked row by row; the inner
  // (right) side is consumed as dense kVecBatchRows batches through the
  // dispatched filter kernels: an Eq kernel on the first key column, then
  // Eq refinements on the remaining key columns — instead of per-row
  // Predicate-style comparisons. The scalar reference compares every
  // (outer, inner) pair tuple at a time. Both emit pairs in (outer row,
  // inner row) order, serially — bit-identical output, no thread
  // sensitivity.
  JoinExecOut ExecuteNestedLoopJoin(
      const Chunk& left, const Chunk& right,
      const std::vector<std::pair<int, int>>& key_cols) {
    auto probe_start = std::chrono::steady_clock::now();
    JoinExecOut exec;
    size_t ln = static_cast<size_t>(left.num_rows);
    uint32_t rn = static_cast<uint32_t>(right.num_rows);
    size_t left_width = left.cols.size();
    size_t out_width = left_width + right.cols.size();
    Chunk& out = exec.chunk;
    out.col_keys = left.col_keys;
    out.col_keys.insert(out.col_keys.end(), right.col_keys.begin(),
                        right.col_keys.end());
    out.cols.resize(out_width);

    if (vectorized_) {
      const int64_t* right_key0 =
          right.cols[static_cast<size_t>(key_cols[0].second)].data();
      SelVector sel_a;
      SelVector sel_b;
      uint32_t match_l[kVecBatchRows];
      uint32_t match_r[kVecBatchRows];
      size_t n_match = 0;
      auto flush = [&] {
        for (size_t c = 0; c < left_width; ++c) {
          GatherAppend(left.cols[c].data(), match_l, n_match, &out.cols[c]);
        }
        for (size_t c = 0; c < right.cols.size(); ++c) {
          GatherAppend(right.cols[c].data(), match_r, n_match,
                       &out.cols[left_width + c]);
        }
        out.num_rows += n_match;
        n_match = 0;
      };
      for (size_t l = 0; l < ln; ++l) {
        for (uint32_t batch = 0; batch < rn; batch += kVecBatchRows) {
          uint32_t e = static_cast<uint32_t>(
              std::min<size_t>(rn, batch + kVecBatchRows));
          uint32_t* cur = sel_a.row;
          uint32_t* next = sel_b.row;
          size_t count = FilterEqDense(
              right_key0, batch, e,
              left.cols[static_cast<size_t>(key_cols[0].first)][l], cur);
          for (size_t kc = 1; kc < key_cols.size() && count > 0; ++kc) {
            count = FilterEqSel(
                right.cols[static_cast<size_t>(key_cols[kc].second)].data(),
                cur, count,
                left.cols[static_cast<size_t>(key_cols[kc].first)][l], next);
            std::swap(cur, next);
          }
          for (size_t t = 0; t < count; ++t) {
            match_l[n_match] = static_cast<uint32_t>(l);
            match_r[n_match] = cur[t];
            if (++n_match == kVecBatchRows) flush();
          }
        }
      }
      flush();
    } else {
      // Tuple-at-a-time reference: compare every pair.
      for (size_t l = 0; l < ln; ++l) {
        for (uint32_t r = 0; r < rn; ++r) {
          bool match = true;
          for (auto [lc, rc] : key_cols) {
            if (left.cols[static_cast<size_t>(lc)][l] !=
                right.cols[static_cast<size_t>(rc)][r]) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          for (size_t c = 0; c < left_width; ++c) {
            // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
            out.cols[c].push_back(left.cols[c][l]);
          }
          for (size_t c = 0; c < right.cols.size(); ++c) {
            // lint: hot-loop-growth-ok(scalar reference path, LQO_VECTORIZED=0)
            out.cols[left_width + c].push_back(right.cols[c][r]);
          }
          ++out.num_rows;
        }
      }
    }
    exec.probe_seconds = WallSeconds(probe_start);
    return exec;
  }

  // Morsel geometry for the hash-computation loops: one morsel below the
  // parallel threshold, fixed-size morsels above it.
  static size_t HashMorsels(uint64_t rows) {
    if (rows == 0) return 0;
    if (rows < kParallelScanMinRows) return 1;
    return (static_cast<size_t>(rows) + kScanMorselRows - 1) / kScanMorselRows;
  }
  static std::pair<size_t, size_t> MorselRange(size_t m, uint64_t rows) {
    size_t n = static_cast<size_t>(rows);
    size_t num = HashMorsels(rows);
    return {m * n / num, (m + 1) * n / num};
  }

  const Catalog& catalog_;
  const CostConstants& constants_;
  const Query& query_;
  const bool vectorized_;
  std::vector<NodeProfile> profiles_;
};

}  // namespace

Executor::Executor(const Catalog* catalog, CostConstants constants)
    : catalog_(catalog),
      constants_(constants),
      vectorized_(DefaultVectorized()) {
  LQO_CHECK(catalog_ != nullptr);
}

StatusOr<ExecutionResult> Executor::Execute(const PhysicalPlan& plan) const {
  if (plan.query == nullptr || plan.root == nullptr) {
    return Status::InvalidArgument("plan missing query or root");
  }
  PlanRunner runner(*catalog_, constants_, *plan.query, vectorized_);
  return runner.Run(*plan.root);
}

PhysicalPlan MakeLeftDeepPlan(const Query& query, TableSet tables,
                              JoinAlgorithm algorithm) {
  LQO_CHECK(tables != 0);
  LQO_CHECK(query.IsConnected(tables)) << "table set must be connected";
  int start = __builtin_ctzll(tables);
  std::unique_ptr<PlanNode> current = MakeScanNode(start);
  TableSet joined = TableBit(start);
  while (joined != tables) {
    // Lowest-index unjoined table adjacent to the joined set.
    int next = -1;
    for (int t = 0; t < query.num_tables(); ++t) {
      if (!ContainsTable(tables, t) || ContainsTable(joined, t)) continue;
      for (int n : query.Neighbors(t)) {
        if (ContainsTable(joined, n)) {
          next = t;
          break;
        }
      }
      if (next >= 0) break;
    }
    LQO_CHECK_GE(next, 0);
    current = MakeJoinNode(algorithm, std::move(current), MakeScanNode(next));
    joined |= TableBit(next);
  }
  PhysicalPlan plan;
  plan.query = &query;
  plan.root = std::move(current);
  return plan;
}

}  // namespace lqo
