#ifndef LQO_ENGINE_VEC_BATCH_H_
#define LQO_ENGINE_VEC_BATCH_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace lqo {

/// Batch format of the vectorized executor (DESIGN.md "Vectorized
/// execution").
///
/// The executor processes rows in fixed-size batches of `kVecBatchRows`
/// consecutive rows. Qualifying rows are described by a *selection vector*:
/// an ascending array of absolute row ids (uint32 — the executor CHECKs
/// inputs below 2^32 rows). Predicate kernels (engine/filter_kernels.h)
/// consume one selection vector and produce the next without branching on
/// the predicate outcome; materialization gathers surviving rows
/// column-by-column in bulk. Because selection vectors are always ascending
/// and batches are walked in row order, the vectorized pipeline emits rows
/// in exactly the order the tuple-at-a-time loop does — the basis of the
/// scalar/vectorized bit-equality contract.
constexpr size_t kVecBatchRows = 1024;

/// Fixed-capacity selection vector: ascending absolute row ids plus a
/// count. Sized for one batch; kernels write it without bounds branches.
struct SelVector {
  uint32_t row[kVecBatchRows];
  size_t count = 0;
};

/// Appends `col[sel[0..count)]` to `*out` in one resize plus a tight gather
/// loop — the batched twin of per-row `out->push_back(col[row])`. Index is
/// uint32 for scan selection vectors and uint64 for join probe-side rows.
template <typename Index>
inline void GatherAppend(const int64_t* col, const Index* sel, size_t count,
                         std::vector<int64_t>* out) {
  size_t offset = out->size();
  out->resize(offset + count);
  int64_t* dst = out->data() + offset;
  for (size_t i = 0; i < count; ++i) dst[i] = col[sel[i]];
}

/// Appends the contiguous rows `[row_begin, row_begin + count)` of `col` —
/// the fully-selected fast path (no selection vector needed).
inline void AppendContiguous(const int64_t* col, uint32_t row_begin,
                             size_t count, std::vector<int64_t>* out) {
  size_t offset = out->size();
  out->resize(offset + count);
  std::memcpy(out->data() + offset, col + row_begin, count * sizeof(int64_t));
}

}  // namespace lqo

#endif  // LQO_ENGINE_VEC_BATCH_H_
