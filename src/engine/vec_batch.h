#ifndef LQO_ENGINE_VEC_BATCH_H_
#define LQO_ENGINE_VEC_BATCH_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace lqo {

/// Batch format of the vectorized executor (DESIGN.md "Vectorized
/// execution").
///
/// The executor processes rows in fixed-size batches of `kVecBatchRows`
/// consecutive rows. Qualifying rows are described by a *selection vector*:
/// an ascending array of absolute row ids (uint32 — the executor CHECKs
/// inputs below 2^32 rows). Predicate kernels (engine/filter_kernels.h)
/// consume one selection vector and produce the next without branching on
/// the predicate outcome; materialization gathers surviving rows
/// column-by-column in bulk. Because selection vectors are always ascending
/// and batches are walked in row order, the vectorized pipeline emits rows
/// in exactly the order the tuple-at-a-time loop does — the basis of the
/// scalar/vectorized bit-equality contract.
constexpr size_t kVecBatchRows = 1024;

/// Fixed-capacity selection vector: ascending absolute row ids plus a
/// count. Sized for one batch; kernels write it without bounds branches.
struct SelVector {
  uint32_t row[kVecBatchRows];
  size_t count = 0;
};

/// Appends `col[sel[0..count)]` to `*out` in one resize plus a tight gather
/// loop — the batched twin of per-row `out->push_back(col[row])`. Index is
/// uint32 for scan selection vectors and uint64 for join probe-side rows;
/// T is int64 for value columns and uint32 for the late-materialization
/// row-id columns.
template <typename T, typename Index>
inline void GatherAppend(const T* col, const Index* sel, size_t count,
                         std::vector<T>* out) {
  size_t offset = out->size();
  out->resize(offset + count);
  T* dst = out->data() + offset;
  for (size_t i = 0; i < count; ++i) dst[i] = col[sel[i]];
}

/// GatherAppend for *ascending* uint32 row-id selections, with an explicit
/// bounds guard: ascending ids are bounded by their last element, so one
/// check covers the whole gather. Use this on fast paths whose ids come
/// from upstream bookkeeping (scan selection vectors, sink row-id columns)
/// rather than straight out of a just-validated kernel.
template <typename T>
inline void GatherAppendBounded(const T* col, size_t col_size,
                                const uint32_t* sel, size_t count,
                                std::vector<T>* out) {
  if (count == 0) return;
  LQO_CHECK_LT(sel[count - 1], col_size);
  GatherAppend(col, sel, count, out);
}

/// Appends the contiguous rows `[row_begin, row_begin + count)` of `col` —
/// the fully-selected fast path (no selection vector needed).
inline void AppendContiguous(const int64_t* col, uint32_t row_begin,
                             size_t count, std::vector<int64_t>* out) {
  size_t offset = out->size();
  out->resize(offset + count);
  std::memcpy(out->data() + offset, col + row_begin, count * sizeof(int64_t));
}

/// Gather with run detection: walks `ids`, finds maximal consecutive runs
/// (ids[k+1] == ids[k] + 1) and copies each run with one memcpy instead of
/// an element-wise gather — the sink's fast path for sorted near-contiguous
/// row-id vectors (e.g. scan outputs under high-selectivity predicates),
/// degrading gracefully to per-element copies on scattered ids. Each run is
/// ascending, so its last id bounds it; every element is the last id of
/// some run, so the per-run LQO_CHECK bounds the whole gather.
template <typename T>
inline void GatherAppendRuns(const T* col, size_t col_size,
                             const uint32_t* ids, size_t count,
                             std::vector<T>* out) {
  size_t offset = out->size();
  out->resize(offset + count);
  T* dst = out->data() + offset;
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count && ids[j] == ids[j - 1] + 1) ++j;
    LQO_CHECK_LT(ids[j - 1], col_size);
    std::memcpy(dst + i, col + ids[i], (j - i) * sizeof(T));
    i = j;
  }
}

}  // namespace lqo

#endif  // LQO_ENGINE_VEC_BATCH_H_
