#ifndef LQO_ENGINE_COST_CONSTANTS_H_
#define LQO_ENGINE_COST_CONSTANTS_H_

#include <cstdint>

namespace lqo {

/// Per-operation work weights. The executor uses the *full* schedule
/// (including the skew, cache and spill effects) to compute a query's true
/// "time units"; the optimizer's analytical cost model deliberately uses
/// only the simple linear terms — the gap between the two is exactly the
/// model error that learned cost models and end-to-end learned optimizers
/// exploit (Section 2.1.2 / 2.2 of the paper).
struct CostConstants {
  // Linear terms, shared with the analytical model.
  double scan_row = 1.0;
  double predicate_eval = 0.3;   // per predicate per scanned row
  double hash_build_row = 2.0;
  double hash_probe_row = 1.2;
  double nlj_pair = 0.02;        // per (outer,inner) row pair
  double sort_row_log = 0.4;     // per row per log2(rows)
  double merge_row = 0.8;
  double output_row = 0.4;       // per emitted join row

  // Executor-only effects, unknown to the analytical model. These are the
  // "gap between cost and latency" that hint steering (Bao), cardinality
  // steering (Lero) and learned cost models exploit; the magnitudes mirror
  // the real-world cliffs (cache-resident inner relations, hash spills,
  // skewed build keys) that make native optimizers leave performance on
  // the table.
  /// Nested loop is an order of magnitude cheaper per pair when the inner
  /// side fits the "cache".
  int64_t nlj_cache_rows = 8192;
  double nlj_cached_pair = 0.002;
  /// Hash joins whose build side exceeds memory pay a spill multiplier.
  int64_t hash_memory_rows = 30000;
  double hash_spill_factor = 3.0;
  /// Extra probe cost proportional to build-side key skew
  /// (max bucket / mean bucket).
  double skew_probe_factor = 0.15;

  // Output-stage terms (late-materialization sink). Charged once at the
  // root, only for queries with an explicit select list; legacy COUNT(*)
  // queries have no output stage and are charged exactly as before.
  /// Per column value gathered from a base table at the sink.
  double materialize_value = 0.05;
  /// Per qualifying row per aggregate accumulator update.
  double agg_update = 0.1;
  /// Per qualifying row probe of the GROUP BY hash table.
  double group_probe = 0.6;
};

/// The canonical schedule used by every experiment.
inline const CostConstants& DefaultCostConstants() {
  static const CostConstants kConstants{};
  return kConstants;
}

}  // namespace lqo

#endif  // LQO_ENGINE_COST_CONSTANTS_H_
