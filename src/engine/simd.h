#ifndef LQO_ENGINE_SIMD_H_
#define LQO_ENGINE_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lqo::simd {

/// Portable SIMD kernel layer for the vectorized executor (DESIGN.md
/// "Vectorized execution" → "SIMD dispatch").
///
/// Every data-path kernel the executor runs per batch — the Eq/Range/In
/// selection kernels of engine/filter_kernels.h and the column-wise join-key
/// hashing of engine/executor.cc — exists here in up to four variants, one
/// per instruction-set level:
///
///   kScalar  — plain C++ loops; the *definitional reference*. Every other
///              level must produce bit-identical outputs (same survivors in
///              the same order, same hash words) on every input.
///   kSse     — 2 × int64 lanes over SSE4.2 (x86-64).
///   kAvx2    — 4 × int64 lanes over AVX2, processed as 8-row groups:
///              two compares → combined 8-bit movemask → compressed-store
///              via a 256-entry vpermd permutation table (x86-64).
///   kNeon    — 2 × int64 lanes over NEON for the dense filter kernels
///              (AArch64); remaining entries fall back to scalar.
///
/// Dispatch is one-time and process-wide: the first call to ActiveLevel()
/// (or Kernels()) probes the CPU via __builtin_cpu_supports and caches the
/// best supported level; all kernel entry points are plain function
/// pointers in a per-level KernelTable, so steady-state dispatch is one
/// indirect call per *batch*, never per row. The environment variable
/// `LQO_SIMD=scalar|sse|avx2|neon` overrides detection for A/B benches and
/// determinism tests (an unsupported request clamps to the best supported
/// level). Because every level is bit-identical by contract, the choice can
/// never change ExecutionResult — the determinism fingerprint in
/// bench_parallel_scaling's `simd_kernels` site enforces this across
/// LQO_SIMD levels × LQO_THREADS.

// Instruction-set levels, ordered by preference within an architecture.
enum class Level : int { kScalar = 0, kSse = 1, kAvx2 = 2, kNeon = 3 };
inline constexpr int kNumLevels = 4;

/// Lowercase spelling used by LQO_SIMD and the bench JSON ("scalar", "sse",
/// "avx2", "neon").
const char* LevelName(Level level);

/// Parses an LQO_SIMD spelling; returns false (leaving *out untouched) on
/// anything unrecognized.
bool ParseLevel(const char* name, Level* out);

/// True when this process can execute `level`'s kernels on this CPU.
/// kScalar is always supported.
bool LevelSupported(Level level);

/// Highest-throughput supported level on this CPU (the dispatch default).
Level BestSupportedLevel();

/// Every supported level, scalar first, in ascending Level order — the
/// sweep set for A/B benches and bit-equality tests.
std::vector<Level> SupportedLevels();

/// The level the process-wide kernel table currently dispatches to.
/// First call resolves LQO_SIMD / CPU detection and caches the result.
Level ActiveLevel();

/// Forces the active level (clamped to a supported one); returns the
/// previous active level so tests/benches can restore it. Not thread-safe
/// against concurrent kernel execution — call from a serial section only,
/// as the Simd* tests and the simd_kernels bench site do.
Level SetLevelForTest(Level level);

/// Drops the cached level and re-resolves from LQO_SIMD + CPU detection;
/// returns the new active level. Exists so tests can exercise the
/// environment override path after setenv().
Level ReinitFromEnv();

/// One function pointer per hot kernel. Filter kernels share the exact
/// contract of engine/filter_kernels.h: write survivor row ids (ascending)
/// to out_sel, return the survivor count, out_sel capacity covers the input
/// count. Compressed stores write a whole lane group then advance the
/// cursor by its popcount, but never past the input count: with k survivors
/// after scanning s rows, k <= s, and a group is only loaded when
/// s + lanes <= count, so the store's last slot k + lanes - 1 < count.
struct KernelTable {
  size_t (*filter_eq_dense)(const int64_t* col, uint32_t row_begin,
                            uint32_t row_end, int64_t value, uint32_t* out_sel);
  size_t (*filter_eq_sel)(const int64_t* col, const uint32_t* sel,
                          size_t count, int64_t value, uint32_t* out_sel);
  size_t (*filter_range_dense)(const int64_t* col, uint32_t row_begin,
                               uint32_t row_end, int64_t lo, int64_t hi,
                               uint32_t* out_sel);
  size_t (*filter_range_sel)(const int64_t* col, const uint32_t* sel,
                             size_t count, int64_t lo, int64_t hi,
                             uint32_t* out_sel);
  size_t (*filter_in_dense)(const int64_t* col, uint32_t row_begin,
                            uint32_t row_end, const int64_t* sorted_values,
                            size_t num_values, uint32_t* out_sel);
  size_t (*filter_in_sel)(const int64_t* col, const uint32_t* sel,
                          size_t count, const int64_t* sorted_values,
                          size_t num_values, uint32_t* out_sel);
  // Join-key hashing (engine/executor.cc): fold `col[r]` into `hashes[r]`
  // with HashCombine for r in [begin, end), and apply FinalizeHash to
  // `hashes[r]` in place. N-lane integer ops, bit-identical to the scalar
  // helpers below.
  void (*hash_combine_column)(uint64_t* hashes, const int64_t* col,
                              size_t begin, size_t end);
  void (*hash_finalize)(uint64_t* hashes, size_t begin, size_t end);
};

/// The table for the active level (resolving it on first use).
const KernelTable& Kernels();

/// The table for an explicit level, for A/B comparisons; an unsupported
/// level returns the scalar table.
const KernelTable& KernelsFor(Level level);

// -- Scalar hash steps (definitional reference, shared with the executor's
//    row-at-a-time path). --

/// FNV-ish mix; good enough for join bucketing (equality is verified).
inline uint64_t HashCombine(uint64_t h, int64_t v) {
  h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Murmur3-style finalizer. HashCombine alone leaves the top bits of small
/// keys nearly constant; radix partitioning reads the top 32 bits and slot
/// addressing the low bits, so both need full avalanche. Bijective, so
/// distinct-hash counts (the skew statistic) are unchanged.
inline uint64_t FinalizeHash(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace lqo::simd

#endif  // LQO_ENGINE_SIMD_H_
