#include "engine/filter_kernels.h"

#include "engine/simd.h"

namespace lqo {

// Each entry point forwards to the process-wide SIMD kernel table
// (engine/simd.h): one indirect call per batch, resolved once at first use
// from CPU detection or the LQO_SIMD override. The scalar loop bodies these
// kernels used to carry verbatim now live in engine/simd.cc as the kScalar
// reference level; every other level is bit-identical to them by contract.

size_t FilterEqDense(const int64_t* col, uint32_t row_begin, uint32_t row_end,
                     int64_t value, uint32_t* out_sel) {
  return simd::Kernels().filter_eq_dense(col, row_begin, row_end, value,
                                         out_sel);
}

size_t FilterEqSel(const int64_t* col, const uint32_t* sel, size_t count,
                   int64_t value, uint32_t* out_sel) {
  return simd::Kernels().filter_eq_sel(col, sel, count, value, out_sel);
}

size_t FilterRangeDense(const int64_t* col, uint32_t row_begin,
                        uint32_t row_end, int64_t lo, int64_t hi,
                        uint32_t* out_sel) {
  return simd::Kernels().filter_range_dense(col, row_begin, row_end, lo, hi,
                                            out_sel);
}

size_t FilterRangeSel(const int64_t* col, const uint32_t* sel, size_t count,
                      int64_t lo, int64_t hi, uint32_t* out_sel) {
  return simd::Kernels().filter_range_sel(col, sel, count, lo, hi, out_sel);
}

size_t FilterInDense(const int64_t* col, uint32_t row_begin, uint32_t row_end,
                     std::span<const int64_t> sorted_values,
                     uint32_t* out_sel) {
  return simd::Kernels().filter_in_dense(col, row_begin, row_end,
                                         sorted_values.data(),
                                         sorted_values.size(), out_sel);
}

size_t FilterInSel(const int64_t* col, const uint32_t* sel, size_t count,
                   std::span<const int64_t> sorted_values, uint32_t* out_sel) {
  return simd::Kernels().filter_in_sel(col, sel, count, sorted_values.data(),
                                       sorted_values.size(), out_sel);
}

size_t FilterDense(const Predicate& p, const int64_t* col, uint32_t row_begin,
                   uint32_t row_end, uint32_t* out_sel) {
  switch (p.kind) {
    case PredicateKind::kEquals:
      return FilterEqDense(col, row_begin, row_end, p.value, out_sel);
    case PredicateKind::kRange:
      return FilterRangeDense(col, row_begin, row_end, p.lo, p.hi, out_sel);
    case PredicateKind::kIn:
      return FilterInDense(col, row_begin, row_end, p.in_values, out_sel);
  }
  return 0;
}

size_t FilterSel(const Predicate& p, const int64_t* col, const uint32_t* sel,
                 size_t count, uint32_t* out_sel) {
  switch (p.kind) {
    case PredicateKind::kEquals:
      return FilterEqSel(col, sel, count, p.value, out_sel);
    case PredicateKind::kRange:
      return FilterRangeSel(col, sel, count, p.lo, p.hi, out_sel);
    case PredicateKind::kIn:
      return FilterInSel(col, sel, count, p.in_values, out_sel);
  }
  return 0;
}

}  // namespace lqo
