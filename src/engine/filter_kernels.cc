#include "engine/filter_kernels.h"

namespace lqo {
namespace {

// Branchless membership test against a sorted-unique IN list: a lower-bound
// descent whose step is selected by comparison, not control flow. Agrees
// with std::binary_search (Predicate::Matches) on every input because the
// list is sorted and duplicate-free.
inline bool InListContains(const int64_t* base, size_t n, int64_t v) {
  while (n > 1) {
    size_t half = n / 2;
    base += (base[half - 1] < v) ? half : 0;
    n -= half;
  }
  return *base == v;
}

}  // namespace

size_t FilterEqDense(const int64_t* col, uint32_t row_begin, uint32_t row_end,
                     int64_t value, uint32_t* out_sel) {
  size_t k = 0;
  for (uint32_t r = row_begin; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

size_t FilterEqSel(const int64_t* col, const uint32_t* sel, size_t count,
                   int64_t value, uint32_t* out_sel) {
  size_t k = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t r = sel[i];
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

size_t FilterRangeDense(const int64_t* col, uint32_t row_begin,
                        uint32_t row_end, int64_t lo, int64_t hi,
                        uint32_t* out_sel) {
  size_t k = 0;
  for (uint32_t r = row_begin; r < row_end; ++r) {
    int64_t v = col[r];
    out_sel[k] = r;
    // Bitwise & of the two bool outcomes: no short-circuit branch.
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

size_t FilterRangeSel(const int64_t* col, const uint32_t* sel, size_t count,
                      int64_t lo, int64_t hi, uint32_t* out_sel) {
  size_t k = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t r = sel[i];
    int64_t v = col[r];
    out_sel[k] = r;
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

size_t FilterInDense(const int64_t* col, uint32_t row_begin, uint32_t row_end,
                     std::span<const int64_t> sorted_values,
                     uint32_t* out_sel) {
  const int64_t* base = sorted_values.data();
  size_t n = sorted_values.size();
  size_t k = 0;
  for (uint32_t r = row_begin; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(InListContains(base, n, col[r]));
  }
  return k;
}

size_t FilterInSel(const int64_t* col, const uint32_t* sel, size_t count,
                   std::span<const int64_t> sorted_values, uint32_t* out_sel) {
  const int64_t* base = sorted_values.data();
  size_t n = sorted_values.size();
  size_t k = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t r = sel[i];
    out_sel[k] = r;
    k += static_cast<size_t>(InListContains(base, n, col[r]));
  }
  return k;
}

size_t FilterDense(const Predicate& p, const int64_t* col, uint32_t row_begin,
                   uint32_t row_end, uint32_t* out_sel) {
  switch (p.kind) {
    case PredicateKind::kEquals:
      return FilterEqDense(col, row_begin, row_end, p.value, out_sel);
    case PredicateKind::kRange:
      return FilterRangeDense(col, row_begin, row_end, p.lo, p.hi, out_sel);
    case PredicateKind::kIn:
      return FilterInDense(col, row_begin, row_end, p.in_values, out_sel);
  }
  return 0;
}

size_t FilterSel(const Predicate& p, const int64_t* col, const uint32_t* sel,
                 size_t count, uint32_t* out_sel) {
  switch (p.kind) {
    case PredicateKind::kEquals:
      return FilterEqSel(col, sel, count, p.value, out_sel);
    case PredicateKind::kRange:
      return FilterRangeSel(col, sel, count, p.lo, p.hi, out_sel);
    case PredicateKind::kIn:
      return FilterInSel(col, sel, count, p.in_values, out_sel);
  }
  return 0;
}

}  // namespace lqo
