#ifndef LQO_ENGINE_PLAN_H_
#define LQO_ENGINE_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "query/query.h"

namespace lqo {

/// Physical join algorithms, mirroring the operator set the Bao-style hint
/// knobs toggle (hash / nested-loop / sort-merge).
enum class JoinAlgorithm { kHashJoin, kNestedLoopJoin, kMergeJoin };

const char* JoinAlgorithmName(JoinAlgorithm algorithm);

/// A node in a physical plan tree: either a (filtered) table scan or a
/// binary join of two subplans. kOutput never appears in a plan tree — it
/// tags the implicit output-stage profile the executor appends after the
/// root for queries with a select list (see NodeProfile).
struct PlanNode {
  enum class Kind { kScan, kJoin, kOutput };

  Kind kind = Kind::kScan;

  /// kScan: index into Query::tables.
  int table_index = -1;

  /// kJoin payload. The join conditions are implicit: all query join
  /// conjuncts connecting left->table_set with right->table_set apply.
  JoinAlgorithm algorithm = JoinAlgorithm::kHashJoin;
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  /// Query tables covered by this subtree.
  TableSet table_set = 0;

  /// Optimizer annotations (estimated; populated during planning).
  double estimated_cardinality = -1.0;
  double estimated_cost = -1.0;

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;

  /// Structure-only signature, e.g. "(HJ (S t0) (NL (S t1) (S t2)))".
  /// Identical signatures mean identical join order + operators.
  std::string Signature(const Query& query) const;
};

/// Creates a scan leaf for query table `table_index`.
std::unique_ptr<PlanNode> MakeScanNode(int table_index);

/// Creates a join node over two subplans.
std::unique_ptr<PlanNode> MakeJoinNode(JoinAlgorithm algorithm,
                                       std::unique_ptr<PlanNode> left,
                                       std::unique_ptr<PlanNode> right);

/// A complete physical plan for a query. Owns the node tree; holds a
/// non-owning pointer to the query it plans.
struct PhysicalPlan {
  const Query* query = nullptr;
  std::unique_ptr<PlanNode> root;

  PhysicalPlan Clone() const;

  /// Multi-line indented rendering with annotations.
  std::string ToString() const;

  /// Structure signature (see PlanNode::Signature).
  std::string Signature() const;
};

/// Visits nodes bottom-up (children before parents).
void VisitPlanBottomUp(const PlanNode& node,
                       const std::function<void(const PlanNode&)>& visit);
void VisitPlanBottomUpMut(PlanNode& node,
                          const std::function<void(PlanNode&)>& visit);

}  // namespace lqo

#endif  // LQO_ENGINE_PLAN_H_
