#ifndef LQO_ENGINE_EXPLAIN_H_
#define LQO_ENGINE_EXPLAIN_H_

#include <string>

#include "engine/executor.h"

namespace lqo {

/// EXPLAIN ANALYZE-style rendering: the plan tree annotated with estimated
/// vs actual rows and per-operator time, the diagnostic view every section
/// of the paper reasons about (estimation error -> operator blow-up).
///
///   HashJoin  (est_rows=2175 actual=2214 time=6481)
///     Scan comments c  (est_rows=2175 actual=2214 time=10470)
///     Scan posts p     ...
///
/// `result` must come from executing exactly `plan` (node profiles align
/// with the plan's bottom-up traversal).
std::string ExplainAnalyze(const PhysicalPlan& plan,
                           const ExecutionResult& result);

}  // namespace lqo

#endif  // LQO_ENGINE_EXPLAIN_H_
