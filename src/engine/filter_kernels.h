#ifndef LQO_ENGINE_FILTER_KERNELS_H_
#define LQO_ENGINE_FILTER_KERNELS_H_

#include <cstdint>
#include <span>

#include "query/predicate.h"

namespace lqo {

/// Branch-free predicate kernels over contiguous int64 column spans — the
/// selection-vector stage of the vectorized executor (DESIGN.md "Vectorized
/// execution").
///
/// Survivors always come out in ascending row order, which is what makes
/// vectorized output bit-identical to the tuple-at-a-time loop. `Dense`
/// variants scan the contiguous row range [row_begin, row_end); `Sel`
/// variants refine an existing selection vector. All return the number of
/// surviving rows written to `out_sel`, whose capacity must cover the input
/// count. Selection semantics match Predicate::Matches exactly (inclusive
/// ranges, sorted-unique IN lists).
///
/// Since the SIMD dispatch layer landed, these entry points forward to the
/// active engine/simd.h kernel table: on a CPU with SSE4.2/AVX2 (or under
/// an `LQO_SIMD` override) the loops run as explicit
/// compare→movemask→compressed-store kernels; the scalar reference level
/// keeps the original cursor loops, and every level is bit-identical.

// -- Typed kernels (one tight loop per comparison op), exposed for the
//    kernel microbenchmarks in bench_micro_components. --

size_t FilterEqDense(const int64_t* col, uint32_t row_begin, uint32_t row_end,
                     int64_t value, uint32_t* out_sel);
size_t FilterEqSel(const int64_t* col, const uint32_t* sel, size_t count,
                   int64_t value, uint32_t* out_sel);

size_t FilterRangeDense(const int64_t* col, uint32_t row_begin,
                        uint32_t row_end, int64_t lo, int64_t hi,
                        uint32_t* out_sel);
size_t FilterRangeSel(const int64_t* col, const uint32_t* sel, size_t count,
                      int64_t lo, int64_t hi, uint32_t* out_sel);

size_t FilterInDense(const int64_t* col, uint32_t row_begin, uint32_t row_end,
                     std::span<const int64_t> sorted_values,
                     uint32_t* out_sel);
size_t FilterInSel(const int64_t* col, const uint32_t* sel, size_t count,
                   std::span<const int64_t> sorted_values, uint32_t* out_sel);

// -- Predicate dispatch (one switch per batch, never per row). --

size_t FilterDense(const Predicate& p, const int64_t* col, uint32_t row_begin,
                   uint32_t row_end, uint32_t* out_sel);
size_t FilterSel(const Predicate& p, const int64_t* col, const uint32_t* sel,
                 size_t count, uint32_t* out_sel);

}  // namespace lqo

#endif  // LQO_ENGINE_FILTER_KERNELS_H_
