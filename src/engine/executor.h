#ifndef LQO_ENGINE_EXECUTOR_H_
#define LQO_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/cost_constants.h"
#include "engine/plan.h"
#include "storage/catalog.h"

namespace lqo {

/// Work profile of a single executed plan node.
struct NodeProfile {
  PlanNode::Kind kind = PlanNode::Kind::kScan;
  JoinAlgorithm algorithm = JoinAlgorithm::kHashJoin;
  /// Scans: table_index is set and left_rows is the raw table size.
  int table_index = -1;
  uint64_t left_rows = 0;
  uint64_t right_rows = 0;
  uint64_t output_rows = 0;
  double time_units = 0.0;

  /// Join nodes: physical hash-join counters from the partitioned
  /// open-addressing table (deterministic and thread-count invariant —
  /// partitioning depends only on the input, never on the pool size).
  /// A "collision" is a probe-sequence step over a slot holding a
  /// different hash; rows sharing a hash are chain entries, not collisions.
  uint64_t build_collisions = 0;
  uint64_t probe_collisions = 0;
  /// Radix partitions used (1 = serial small-input fallback).
  int partitions = 0;

  /// Wall-clock seconds per join phase (build / probe / ordered concat).
  /// Diagnostics only: real time, NOT deterministic, excluded from every
  /// determinism contract; consumed by bench_micro_components.
  double build_seconds = 0.0;
  double probe_seconds = 0.0;
  double concat_seconds = 0.0;

  /// Late-materialization accounting. Logical counters, defined by plan
  /// structure and row counts alone (like time_units), so they are
  /// bit-identical across scalar/vectorized paths, SIMD levels and thread
  /// counts: carried_columns is the number of per-table row-id columns the
  /// late-materialized pipeline carries out of this node (0 at a COUNT(*)
  /// root — nothing is ever materialized); materialized_values is
  /// output_rows * carried_columns for scans/joins, and emitted output
  /// values (output rows * select-list width) for the output stage.
  uint64_t carried_columns = 0;
  uint64_t materialized_values = 0;
  /// Output stage under GROUP BY: number of groups (0 otherwise).
  uint64_t groups = 0;
};

/// Result of executing a plan.
struct ExecutionResult {
  /// Qualifying rows entering the output stage — the COUNT(*) answer. This
  /// keeps its meaning for every query; projection/aggregation never change
  /// the qualifying-row semantics estimators and optimizers consume.
  uint64_t row_count = 0;
  /// Output-stage result for queries with a select list
  /// (Query::HasOutputStage()): output_cols[i] is the column of SELECT item
  /// i, all of length output_row_count (1 for global aggregates, the group
  /// count under GROUP BY, row_count for pure projection). Both stay
  /// empty/zero for legacy COUNT(*) queries.
  uint64_t output_row_count = 0;
  std::vector<std::vector<int64_t>> output_cols;
  /// Deterministic simulated latency: sum of per-node work charged under
  /// the full CostConstants schedule (including skew/cache/spill effects).
  double time_units = 0.0;
  /// Bottom-up per-node profiles (children before parents), plus one
  /// trailing PlanNode::Kind::kOutput profile for the output stage when the
  /// query declares one.
  std::vector<NodeProfile> node_profiles;
};

/// Volcano-style executor over the in-memory catalog.
///
/// Each join node is *charged* according to its declared physical algorithm,
/// but the physical strategy that computes its rows is gated on input size:
/// merge-declared nodes run a real sort-merge join (with galloping run
/// detection) while left+right rows stay under 2^20, nested-loop-declared
/// nodes run a real block NLJ (inner side through the dispatched filter
/// kernels) while left*right pairs stay under 2^22, and everything else —
/// including any declared node above its gate — runs the radix-partitioned
/// hash join. All three strategies emit the same row multiset, so executing
/// a pathological plan (e.g. a huge nested-loop join) still reports its true
/// awful latency without taking quadratic wall-clock time. This is the
/// deterministic stand-in for running plans on a real PostgreSQL server
/// (see DESIGN.md, substitutions).
///
/// Execution is morsel-driven (HyPer-style) on the shared lqo::ThreadPool:
/// scans filter fixed-size row morsels in parallel and concatenate their
/// outputs in morsel order; joins radix-partition build and probe by hash
/// into index-addressed partitions, each with a private open-addressing
/// table, and concatenate partition outputs in partition order. Inputs
/// below a fixed tuple threshold run the identical code serially with one
/// partition/morsel. All boundaries depend only on the input, so results
/// are bit-for-bit identical across LQO_THREADS settings (DESIGN.md
/// "Concurrency model").
///
/// Within each morsel, rows flow batch-at-a-time by default: scans run
/// branch-free selection-vector kernels (engine/filter_kernels.h) over
/// kVecBatchRows-row batches and materialize survivors with bulk column
/// gathers; joins hash key columns column-wise and buffer probe matches for
/// bulk materialization. Setting env LQO_VECTORIZED=0 flips the process
/// default to the tuple-at-a-time reference path; both paths share every
/// morsel/partition boundary and emit rows in the same order, so
/// ExecutionResult (row_count, time_units, NodeProfile counters) is
/// bit-for-bit identical between them (DESIGN.md "Vectorized execution").
class Executor {
 public:
  explicit Executor(const Catalog* catalog,
                    CostConstants constants = DefaultCostConstants());

  /// Executes `plan` and returns the count plus the work profile. Fails if
  /// the plan references unknown tables/columns.
  StatusOr<ExecutionResult> Execute(const PhysicalPlan& plan) const;

  const CostConstants& constants() const { return constants_; }
  const Catalog& catalog() const { return *catalog_; }

  /// Batch-at-a-time execution toggle. Defaults from env LQO_VECTORIZED at
  /// construction ("0" = scalar reference path); the setter exists for
  /// scalar-vs-vectorized A/B in tests and benches.
  bool vectorized() const { return vectorized_; }
  void set_vectorized(bool v) { vectorized_ = v; }

 private:
  const Catalog* catalog_;
  CostConstants constants_;
  bool vectorized_ = true;
};

/// Builds a left-deep plan over the connected table set `tables` of `query`
/// using `algorithm` for every join. Table order is greedy-BFS from the
/// lowest-index table, so consecutive joins always share a join edge.
PhysicalPlan MakeLeftDeepPlan(const Query& query, TableSet tables,
                              JoinAlgorithm algorithm);

}  // namespace lqo

#endif  // LQO_ENGINE_EXECUTOR_H_
