#include "engine/agg_kernels.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LQO_AGG_SIMD_X86 1
#else
#define LQO_AGG_SIMD_X86 0
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define LQO_AGG_SIMD_NEON 1
#else
#define LQO_AGG_SIMD_NEON 0
#endif

// Together with engine/simd.cc this is the only translation unit allowed to
// touch raw intrinsics (lqo-lint rule `raw-intrinsics`); the executor's sink
// reaches these bodies through the AggKernelTable only. Per-function
// `target` attributes keep the global -m baseline unchanged, exactly as in
// simd.cc; the shared dispatcher guarantees a body only runs on a CPU that
// has its ISA.

namespace lqo::simd {
namespace {

// ===========================================================================
// Scalar reference kernels. Branch-free folds: SUM wraps in uint64, MIN/MAX
// select with conditional moves (ternaries the compiler lowers to cmov), so
// per-row cost is data-independent. These define the semantics every SIMD
// level must reproduce bit-for-bit — which they do for free, because all
// three folds are associative and commutative (see agg_kernels.h).
// ===========================================================================

uint64_t SumDenseScalar(const int64_t* col, uint32_t row_begin,
                        uint32_t row_end) {
  uint64_t acc = 0;
  for (uint32_t r = row_begin; r < row_end; ++r) {
    acc += static_cast<uint64_t>(col[r]);
  }
  return acc;
}

uint64_t SumSelScalar(const int64_t* col, const uint32_t* sel, size_t count) {
  uint64_t acc = 0;
  for (size_t i = 0; i < count; ++i) {
    acc += static_cast<uint64_t>(col[sel[i]]);
  }
  return acc;
}

int64_t MinDenseScalar(const int64_t* col, uint32_t row_begin,
                       uint32_t row_end) {
  int64_t acc = std::numeric_limits<int64_t>::max();
  for (uint32_t r = row_begin; r < row_end; ++r) {
    int64_t v = col[r];
    acc = v < acc ? v : acc;
  }
  return acc;
}

int64_t MinSelScalar(const int64_t* col, const uint32_t* sel, size_t count) {
  int64_t acc = std::numeric_limits<int64_t>::max();
  for (size_t i = 0; i < count; ++i) {
    int64_t v = col[sel[i]];
    acc = v < acc ? v : acc;
  }
  return acc;
}

int64_t MaxDenseScalar(const int64_t* col, uint32_t row_begin,
                       uint32_t row_end) {
  int64_t acc = std::numeric_limits<int64_t>::min();
  for (uint32_t r = row_begin; r < row_end; ++r) {
    int64_t v = col[r];
    acc = v > acc ? v : acc;
  }
  return acc;
}

int64_t MaxSelScalar(const int64_t* col, const uint32_t* sel, size_t count) {
  int64_t acc = std::numeric_limits<int64_t>::min();
  for (size_t i = 0; i < count; ++i) {
    int64_t v = col[sel[i]];
    acc = v > acc ? v : acc;
  }
  return acc;
}

constexpr AggKernelTable kScalarAggTable = {
    SumDenseScalar, SumSelScalar, MinDenseScalar,
    MinSelScalar,   MaxDenseScalar, MaxSelScalar,
};

#if LQO_AGG_SIMD_X86

// ===========================================================================
// SSE4.2: 2 × int64 lanes. pcmpgtq (SSE4.2) + pblendvb (SSE4.1) give
// branch-free 64-bit min/max, which no SSE level has as a single
// instruction. Sel variants assemble lanes with two scalar loads — hardware
// gathers do not exist below AVX2, and the row ids are unordered after
// joins, so per-lane loads are the only correct option anyway.
// ===========================================================================

__attribute__((target("sse4.2"))) uint64_t SumDenseSse(const int64_t* col,
                                                       uint32_t row_begin,
                                                       uint32_t row_end) {
  uint32_t r = row_begin;
  __m128i acc = _mm_setzero_si128();
  for (; r + 2 <= row_end; r += 2) {
    acc = _mm_add_epi64(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r)));
  }
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1];
  for (; r < row_end; ++r) total += static_cast<uint64_t>(col[r]);
  return total;
}

__attribute__((target("sse4.2"))) uint64_t SumSelSse(const int64_t* col,
                                                     const uint32_t* sel,
                                                     size_t count) {
  size_t i = 0;
  __m128i acc = _mm_setzero_si128();
  for (; i + 2 <= count; i += 2) {
    acc = _mm_add_epi64(acc, _mm_set_epi64x(col[sel[i + 1]], col[sel[i]]));
  }
  uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1];
  for (; i < count; ++i) total += static_cast<uint64_t>(col[sel[i]]);
  return total;
}

__attribute__((target("sse4.2"))) inline __m128i Min64Sse(__m128i a,
                                                          __m128i b) {
  // Keep b where a > b.
  return _mm_blendv_epi8(a, b, _mm_cmpgt_epi64(a, b));
}

__attribute__((target("sse4.2"))) inline __m128i Max64Sse(__m128i a,
                                                          __m128i b) {
  // Keep b where b > a.
  return _mm_blendv_epi8(a, b, _mm_cmpgt_epi64(b, a));
}

__attribute__((target("sse4.2"))) int64_t MinDenseSse(const int64_t* col,
                                                      uint32_t row_begin,
                                                      uint32_t row_end) {
  uint32_t r = row_begin;
  __m128i acc = _mm_set1_epi64x(std::numeric_limits<int64_t>::max());
  for (; r + 2 <= row_end; r += 2) {
    acc = Min64Sse(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r)));
  }
  int64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int64_t best = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  for (; r < row_end; ++r) best = col[r] < best ? col[r] : best;
  return best;
}

__attribute__((target("sse4.2"))) int64_t MinSelSse(const int64_t* col,
                                                    const uint32_t* sel,
                                                    size_t count) {
  size_t i = 0;
  __m128i acc = _mm_set1_epi64x(std::numeric_limits<int64_t>::max());
  for (; i + 2 <= count; i += 2) {
    acc = Min64Sse(acc, _mm_set_epi64x(col[sel[i + 1]], col[sel[i]]));
  }
  int64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int64_t best = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  for (; i < count; ++i) best = col[sel[i]] < best ? col[sel[i]] : best;
  return best;
}

__attribute__((target("sse4.2"))) int64_t MaxDenseSse(const int64_t* col,
                                                      uint32_t row_begin,
                                                      uint32_t row_end) {
  uint32_t r = row_begin;
  __m128i acc = _mm_set1_epi64x(std::numeric_limits<int64_t>::min());
  for (; r + 2 <= row_end; r += 2) {
    acc = Max64Sse(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r)));
  }
  int64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int64_t best = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  for (; r < row_end; ++r) best = col[r] > best ? col[r] : best;
  return best;
}

__attribute__((target("sse4.2"))) int64_t MaxSelSse(const int64_t* col,
                                                    const uint32_t* sel,
                                                    size_t count) {
  size_t i = 0;
  __m128i acc = _mm_set1_epi64x(std::numeric_limits<int64_t>::min());
  for (; i + 2 <= count; i += 2) {
    acc = Max64Sse(acc, _mm_set_epi64x(col[sel[i + 1]], col[sel[i]]));
  }
  int64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  int64_t best = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  for (; i < count; ++i) best = col[sel[i]] > best ? col[sel[i]] : best;
  return best;
}

constexpr AggKernelTable kSseAggTable = {
    SumDenseSse, SumSelSse, MinDenseSse, MinSelSse, MaxDenseSse, MaxSelSse,
};

// ===========================================================================
// AVX2: 4 × int64 lanes. Same cmpgt+blendv min/max trick (AVX2 still has no
// 64-bit vpmin/vpmax). Sel variants assemble lanes with four scalar loads
// instead of vpgatherqq: the hardware gather takes *signed* 32-bit indices,
// and sink row-id vectors are unordered after joins, so the ascending-max
// guard the filter kernels use cannot bound them cheaply.
// ===========================================================================

__attribute__((target("avx2"))) uint64_t SumDenseAvx2(const int64_t* col,
                                                      uint32_t row_begin,
                                                      uint32_t row_end) {
  uint32_t r = row_begin;
  __m256i acc = _mm256_setzero_si256();
  for (; r + 4 <= row_end; r += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; r < row_end; ++r) total += static_cast<uint64_t>(col[r]);
  return total;
}

__attribute__((target("avx2"))) uint64_t SumSelAvx2(const int64_t* col,
                                                    const uint32_t* sel,
                                                    size_t count) {
  size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= count; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_set_epi64x(col[sel[i + 3]], col[sel[i + 2]],
                               col[sel[i + 1]], col[sel[i]]));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < count; ++i) total += static_cast<uint64_t>(col[sel[i]]);
  return total;
}

__attribute__((target("avx2"))) inline __m256i Min64Avx2(__m256i a,
                                                         __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

__attribute__((target("avx2"))) inline __m256i Max64Avx2(__m256i a,
                                                         __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(b, a));
}

__attribute__((target("avx2"))) int64_t MinDenseAvx2(const int64_t* col,
                                                     uint32_t row_begin,
                                                     uint32_t row_end) {
  uint32_t r = row_begin;
  __m256i acc = _mm256_set1_epi64x(std::numeric_limits<int64_t>::max());
  for (; r + 4 <= row_end; r += 4) {
    acc = Min64Avx2(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t best = lanes[0];
  for (int l = 1; l < 4; ++l) best = lanes[l] < best ? lanes[l] : best;
  for (; r < row_end; ++r) best = col[r] < best ? col[r] : best;
  return best;
}

__attribute__((target("avx2"))) int64_t MinSelAvx2(const int64_t* col,
                                                   const uint32_t* sel,
                                                   size_t count) {
  size_t i = 0;
  __m256i acc = _mm256_set1_epi64x(std::numeric_limits<int64_t>::max());
  for (; i + 4 <= count; i += 4) {
    acc = Min64Avx2(acc, _mm256_set_epi64x(col[sel[i + 3]], col[sel[i + 2]],
                                           col[sel[i + 1]], col[sel[i]]));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t best = lanes[0];
  for (int l = 1; l < 4; ++l) best = lanes[l] < best ? lanes[l] : best;
  for (; i < count; ++i) best = col[sel[i]] < best ? col[sel[i]] : best;
  return best;
}

__attribute__((target("avx2"))) int64_t MaxDenseAvx2(const int64_t* col,
                                                     uint32_t row_begin,
                                                     uint32_t row_end) {
  uint32_t r = row_begin;
  __m256i acc = _mm256_set1_epi64x(std::numeric_limits<int64_t>::min());
  for (; r + 4 <= row_end; r += 4) {
    acc = Max64Avx2(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r)));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t best = lanes[0];
  for (int l = 1; l < 4; ++l) best = lanes[l] > best ? lanes[l] : best;
  for (; r < row_end; ++r) best = col[r] > best ? col[r] : best;
  return best;
}

__attribute__((target("avx2"))) int64_t MaxSelAvx2(const int64_t* col,
                                                   const uint32_t* sel,
                                                   size_t count) {
  size_t i = 0;
  __m256i acc = _mm256_set1_epi64x(std::numeric_limits<int64_t>::min());
  for (; i + 4 <= count; i += 4) {
    acc = Max64Avx2(acc, _mm256_set_epi64x(col[sel[i + 3]], col[sel[i + 2]],
                                           col[sel[i + 1]], col[sel[i]]));
  }
  int64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t best = lanes[0];
  for (int l = 1; l < 4; ++l) best = lanes[l] > best ? lanes[l] : best;
  for (; i < count; ++i) best = col[sel[i]] > best ? col[sel[i]] : best;
  return best;
}

constexpr AggKernelTable kAvx2AggTable = {
    SumDenseAvx2, SumSelAvx2, MinDenseAvx2,
    MinSelAvx2,   MaxDenseAvx2, MaxSelAvx2,
};

#endif  // LQO_AGG_SIMD_X86

#if LQO_AGG_SIMD_NEON

// ===========================================================================
// NEON (AArch64): 2 × int64 lanes for the dense folds (A64 has 64-bit
// cmgt, so min/max blend with vbslq). Sel variants fall back to scalar,
// mirroring the NEON filter table's dense-only acceleration.
// ===========================================================================

uint64_t SumDenseNeon(const int64_t* col, uint32_t row_begin,
                      uint32_t row_end) {
  uint32_t r = row_begin;
  uint64x2_t acc = vdupq_n_u64(0);
  for (; r + 2 <= row_end; r += 2) {
    acc = vaddq_u64(acc,
                    vreinterpretq_u64_s64(vld1q_s64(col + r)));
  }
  uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; r < row_end; ++r) total += static_cast<uint64_t>(col[r]);
  return total;
}

int64_t MinDenseNeon(const int64_t* col, uint32_t row_begin,
                     uint32_t row_end) {
  uint32_t r = row_begin;
  int64x2_t acc = vdupq_n_s64(std::numeric_limits<int64_t>::max());
  for (; r + 2 <= row_end; r += 2) {
    int64x2_t v = vld1q_s64(col + r);
    acc = vbslq_s64(vcgtq_s64(acc, v), v, acc);
  }
  int64_t a = vgetq_lane_s64(acc, 0);
  int64_t b = vgetq_lane_s64(acc, 1);
  int64_t best = a < b ? a : b;
  for (; r < row_end; ++r) best = col[r] < best ? col[r] : best;
  return best;
}

int64_t MaxDenseNeon(const int64_t* col, uint32_t row_begin,
                     uint32_t row_end) {
  uint32_t r = row_begin;
  int64x2_t acc = vdupq_n_s64(std::numeric_limits<int64_t>::min());
  for (; r + 2 <= row_end; r += 2) {
    int64x2_t v = vld1q_s64(col + r);
    acc = vbslq_s64(vcgtq_s64(v, acc), v, acc);
  }
  int64_t a = vgetq_lane_s64(acc, 0);
  int64_t b = vgetq_lane_s64(acc, 1);
  int64_t best = a > b ? a : b;
  for (; r < row_end; ++r) best = col[r] > best ? col[r] : best;
  return best;
}

constexpr AggKernelTable kNeonAggTable = {
    SumDenseNeon, SumSelScalar, MinDenseNeon,
    MinSelScalar, MaxDenseNeon, MaxSelScalar,
};

#endif  // LQO_AGG_SIMD_NEON

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const AggKernelTable& AggKernelsFor(Level level) {
  if (!LevelSupported(level)) return kScalarAggTable;
  switch (level) {
    case Level::kScalar:
      return kScalarAggTable;
#if LQO_AGG_SIMD_X86
    case Level::kSse:
      return kSseAggTable;
    case Level::kAvx2:
      return kAvx2AggTable;
#endif
#if LQO_AGG_SIMD_NEON
    case Level::kNeon:
      return kNeonAggTable;
#endif
    default:
      return kScalarAggTable;
  }
}

const AggKernelTable& AggKernels() { return AggKernelsFor(ActiveLevel()); }

GroupIndex::GroupIndex(size_t expected_groups) {
  size_t capacity =
      NextPowerOfTwo(std::max<size_t>(16, expected_groups * 2));
  slot_hash_.assign(capacity, 0);
  slot_group_.assign(capacity, kEmpty);
  mask_ = capacity - 1;
}

void GroupIndex::Grow() {
  size_t capacity = (mask_ + 1) * 2;
  slot_hash_.assign(capacity, 0);
  slot_group_.assign(capacity, kEmpty);
  mask_ = capacity - 1;
  // Re-seat existing groups from their stored hashes; ids are preserved, so
  // first-seen order (and every downstream bit) is unchanged by growth.
  for (size_t g = 0; g < group_keys_.size(); ++g) {
    size_t slot = static_cast<size_t>(group_hashes_[g]) & mask_;
    while (slot_group_[slot] != kEmpty) slot = (slot + 1) & mask_;
    slot_hash_[slot] = group_hashes_[g];
    slot_group_[slot] = static_cast<uint32_t>(g);
  }
}

void GroupIndex::MapBatch(const int64_t* keys, const uint64_t* hashes,
                          size_t count, uint32_t* group_ids) {
  for (size_t i = 0; i < count; ++i) {
    uint64_t h = hashes[i];
    int64_t key = keys[i];
    size_t slot = static_cast<size_t>(h) & mask_;
    uint32_t id = kEmpty;
    while (slot_group_[slot] != kEmpty) {
      if (slot_hash_[slot] == h &&
          group_keys_[slot_group_[slot]] == key) {
        id = slot_group_[slot];
        break;
      }
      slot = (slot + 1) & mask_;
    }
    if (id == kEmpty) {
      id = static_cast<uint32_t>(group_keys_.size());
      LQO_CHECK_LT(id, kEmpty);
      slot_hash_[slot] = h;
      slot_group_[slot] = id;
      // lint: hot-loop-growth-ok(amortized first-seen group registration,
      // bounded by the distinct-key count, not the row count)
      group_keys_.push_back(key);
      // lint: hot-loop-growth-ok(same amortized group registration)
      group_hashes_.push_back(h);
      if (group_keys_.size() * 2 > mask_ + 1) Grow();
    }
    group_ids[i] = id;
  }
}

}  // namespace lqo::simd
