#include "engine/simd.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LQO_SIMD_X86 1
#else
#define LQO_SIMD_X86 0
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define LQO_SIMD_NEON 1
#else
#define LQO_SIMD_NEON 0
#endif

// This translation unit is the only one allowed to touch raw intrinsics
// (lqo-lint rule `raw-intrinsics`); everything else goes through the
// KernelTable. Per-function `target` attributes let one GCC invocation emit
// SSE4.2 and AVX2 bodies without raising the global -m baseline; the
// runtime dispatcher guarantees a body only runs on a CPU that has its ISA.

namespace lqo::simd {
namespace {

// ===========================================================================
// Scalar reference kernels — the definitional semantics every SIMD level
// must reproduce bit-for-bit. Loop bodies are the branch-free forms from
// engine/filter_kernels.cc: write the candidate row id unconditionally,
// advance the cursor by the 0/1 outcome.
// ===========================================================================

// Branchless membership test against a sorted-unique IN list: a lower-bound
// descent whose step is selected by comparison, not control flow. Agrees
// with std::binary_search (Predicate::Matches) on every input because the
// list is sorted and duplicate-free.
inline bool InListContains(const int64_t* base, size_t n, int64_t v) {
  while (n > 1) {
    size_t half = n / 2;
    base += (base[half - 1] < v) ? half : 0;
    n -= half;
  }
  return *base == v;
}

size_t FilterEqDenseScalar(const int64_t* col, uint32_t row_begin,
                           uint32_t row_end, int64_t value, uint32_t* out_sel) {
  size_t k = 0;
  for (uint32_t r = row_begin; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

size_t FilterEqSelScalar(const int64_t* col, const uint32_t* sel, size_t count,
                         int64_t value, uint32_t* out_sel) {
  size_t k = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t r = sel[i];
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

size_t FilterRangeDenseScalar(const int64_t* col, uint32_t row_begin,
                              uint32_t row_end, int64_t lo, int64_t hi,
                              uint32_t* out_sel) {
  size_t k = 0;
  for (uint32_t r = row_begin; r < row_end; ++r) {
    int64_t v = col[r];
    out_sel[k] = r;
    // Bitwise & of the two bool outcomes: no short-circuit branch.
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

size_t FilterRangeSelScalar(const int64_t* col, const uint32_t* sel,
                            size_t count, int64_t lo, int64_t hi,
                            uint32_t* out_sel) {
  size_t k = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t r = sel[i];
    int64_t v = col[r];
    out_sel[k] = r;
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

size_t FilterInDenseScalar(const int64_t* col, uint32_t row_begin,
                           uint32_t row_end, const int64_t* sorted_values,
                           size_t num_values, uint32_t* out_sel) {
  size_t k = 0;
  for (uint32_t r = row_begin; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(InListContains(sorted_values, num_values, col[r]));
  }
  return k;
}

size_t FilterInSelScalar(const int64_t* col, const uint32_t* sel, size_t count,
                         const int64_t* sorted_values, size_t num_values,
                         uint32_t* out_sel) {
  size_t k = 0;
  for (size_t i = 0; i < count; ++i) {
    uint32_t r = sel[i];
    out_sel[k] = r;
    k += static_cast<size_t>(InListContains(sorted_values, num_values, col[r]));
  }
  return k;
}

void HashCombineColumnScalar(uint64_t* hashes, const int64_t* col,
                             size_t begin, size_t end) {
  for (size_t r = begin; r < end; ++r) {
    hashes[r] = HashCombine(hashes[r], col[r]);
  }
}

void HashFinalizeScalar(uint64_t* hashes, size_t begin, size_t end) {
  for (size_t r = begin; r < end; ++r) hashes[r] = FinalizeHash(hashes[r]);
}

constexpr KernelTable kScalarTable = {
    FilterEqDenseScalar,    FilterEqSelScalar,   FilterRangeDenseScalar,
    FilterRangeSelScalar,   FilterInDenseScalar, FilterInSelScalar,
    HashCombineColumnScalar, HashFinalizeScalar,
};

// A SIMD membership test compares against every list element, so it only
// pays for short lists; longer lists keep the scalar descent. Both produce
// the same 0/1 outcome per row, so the cutoff cannot change results.
constexpr size_t kInListSimdMax = 16;

#if LQO_SIMD_X86

// ===========================================================================
// x86-64: SSE4.2 (2 × int64 lanes) and AVX2 (4 × int64 lanes, emitted 8
// rows per group).
//
// The AVX2 filter kernels are compare → movemask → compressed-store: two
// 4-lane compares produce one 8-bit survivor mask, the mask indexes a
// 256-entry permutation table that left-packs the surviving 32-bit row ids
// with vpermd, one unaligned 32-byte store writes them at the output
// cursor, and the cursor advances by popcount(mask). Survivors therefore
// land in lane (= row) order — the same ascending order as the scalar
// cursor loop. Emitting 8 rows per group (rather than 4) halves the trips
// through the serial cursor-update chain, which is what bounds throughput
// at typical selectivities.
// ===========================================================================

// kCompress8.p[mask] is the _mm256_permutevar8x32_epi32 control that
// left-packs the 32-bit lanes whose mask bits are set; unused output lanes
// replicate lane 0, which the next store group overwrites (stores stay
// within the output capacity — see the KernelTable contract).
struct Compress8Table {
  alignas(32) uint32_t p[256][8];
};

constexpr Compress8Table MakeCompress8Table() {
  Compress8Table t{};
  for (int mask = 0; mask < 256; ++mask) {
    int out = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask >> lane) & 1) t.p[mask][out++] = static_cast<uint32_t>(lane);
    }
    for (; out < 8; ++out) t.p[mask][out] = 0;
  }
  return t;
}

constexpr Compress8Table kCompress8 = MakeCompress8Table();

// ---- SSE4.2: 2-lane compares, branch-free 2-slot emission. ----
// (_mm_cmpgt_epi64 is the SSE4.2 instruction; everything else here is
// SSE2/SSE4.1, so the whole level keys off sse4.2 support.)

__attribute__((target("sse4.2"))) size_t FilterEqDenseSse(
    const int64_t* col, uint32_t row_begin, uint32_t row_end, int64_t value,
    uint32_t* out_sel) {
  size_t k = 0;
  uint32_t r = row_begin;
  const __m128i needle = _mm_set1_epi64x(value);
  for (; r + 2 <= row_end; r += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    int mask = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(v, needle)));
    out_sel[k] = r;
    k += static_cast<size_t>(mask & 1);
    out_sel[k] = r + 1;
    k += static_cast<size_t>((mask >> 1) & 1);
  }
  for (; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

__attribute__((target("sse4.2"))) size_t FilterEqSelSse(
    const int64_t* col, const uint32_t* sel, size_t count, int64_t value,
    uint32_t* out_sel) {
  size_t k = 0;
  size_t i = 0;
  const __m128i needle = _mm_set1_epi64x(value);
  for (; i + 2 <= count; i += 2) {
    __m128i v = _mm_set_epi64x(col[sel[i + 1]], col[sel[i]]);
    int mask = _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(v, needle)));
    out_sel[k] = sel[i];
    k += static_cast<size_t>(mask & 1);
    out_sel[k] = sel[i + 1];
    k += static_cast<size_t>((mask >> 1) & 1);
  }
  for (; i < count; ++i) {
    uint32_t r = sel[i];
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

// In-range as NOT(v < lo OR v > hi): two signed greater-thans cover both
// inclusive bounds, matching the scalar (v >= lo) & (v <= hi).
__attribute__((target("sse4.2"))) size_t FilterRangeDenseSse(
    const int64_t* col, uint32_t row_begin, uint32_t row_end, int64_t lo,
    int64_t hi, uint32_t* out_sel) {
  size_t k = 0;
  uint32_t r = row_begin;
  const __m128i vlo = _mm_set1_epi64x(lo);
  const __m128i vhi = _mm_set1_epi64x(hi);
  for (; r + 2 <= row_end; r += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    __m128i out_of_range = _mm_or_si128(_mm_cmpgt_epi64(vlo, v),
                                        _mm_cmpgt_epi64(v, vhi));
    int ok = ~_mm_movemask_pd(_mm_castsi128_pd(out_of_range)) & 3;
    out_sel[k] = r;
    k += static_cast<size_t>(ok & 1);
    out_sel[k] = r + 1;
    k += static_cast<size_t>((ok >> 1) & 1);
  }
  for (; r < row_end; ++r) {
    int64_t v = col[r];
    out_sel[k] = r;
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

__attribute__((target("sse4.2"))) size_t FilterRangeSelSse(
    const int64_t* col, const uint32_t* sel, size_t count, int64_t lo,
    int64_t hi, uint32_t* out_sel) {
  size_t k = 0;
  size_t i = 0;
  const __m128i vlo = _mm_set1_epi64x(lo);
  const __m128i vhi = _mm_set1_epi64x(hi);
  for (; i + 2 <= count; i += 2) {
    __m128i v = _mm_set_epi64x(col[sel[i + 1]], col[sel[i]]);
    __m128i out_of_range = _mm_or_si128(_mm_cmpgt_epi64(vlo, v),
                                        _mm_cmpgt_epi64(v, vhi));
    int ok = ~_mm_movemask_pd(_mm_castsi128_pd(out_of_range)) & 3;
    out_sel[k] = sel[i];
    k += static_cast<size_t>(ok & 1);
    out_sel[k] = sel[i + 1];
    k += static_cast<size_t>((ok >> 1) & 1);
  }
  for (; i < count; ++i) {
    uint32_t r = sel[i];
    int64_t v = col[r];
    out_sel[k] = r;
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

// IN as an OR of equality compares against pre-broadcast needles.
__attribute__((target("sse4.2"))) size_t FilterInDenseSse(
    const int64_t* col, uint32_t row_begin, uint32_t row_end,
    const int64_t* sorted_values, size_t num_values, uint32_t* out_sel) {
  if (num_values == 0 || num_values > kInListSimdMax) {
    return FilterInDenseScalar(col, row_begin, row_end, sorted_values,
                               num_values, out_sel);
  }
  __m128i needles[kInListSimdMax];
  for (size_t i = 0; i < num_values; ++i) {
    needles[i] = _mm_set1_epi64x(sorted_values[i]);
  }
  size_t k = 0;
  uint32_t r = row_begin;
  for (; r + 2 <= row_end; r += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    __m128i any = _mm_cmpeq_epi64(v, needles[0]);
    for (size_t i = 1; i < num_values; ++i) {
      any = _mm_or_si128(any, _mm_cmpeq_epi64(v, needles[i]));
    }
    int mask = _mm_movemask_pd(_mm_castsi128_pd(any));
    out_sel[k] = r;
    k += static_cast<size_t>(mask & 1);
    out_sel[k] = r + 1;
    k += static_cast<size_t>((mask >> 1) & 1);
  }
  for (; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(InListContains(sorted_values, num_values, col[r]));
  }
  return k;
}

__attribute__((target("sse4.2"))) size_t FilterInSelSse(
    const int64_t* col, const uint32_t* sel, size_t count,
    const int64_t* sorted_values, size_t num_values, uint32_t* out_sel) {
  if (num_values == 0 || num_values > kInListSimdMax) {
    return FilterInSelScalar(col, sel, count, sorted_values, num_values,
                             out_sel);
  }
  __m128i needles[kInListSimdMax];
  for (size_t i = 0; i < num_values; ++i) {
    needles[i] = _mm_set1_epi64x(sorted_values[i]);
  }
  size_t k = 0;
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    __m128i v = _mm_set_epi64x(col[sel[i + 1]], col[sel[i]]);
    __m128i any = _mm_cmpeq_epi64(v, needles[0]);
    for (size_t j = 1; j < num_values; ++j) {
      any = _mm_or_si128(any, _mm_cmpeq_epi64(v, needles[j]));
    }
    int mask = _mm_movemask_pd(_mm_castsi128_pd(any));
    out_sel[k] = sel[i];
    k += static_cast<size_t>(mask & 1);
    out_sel[k] = sel[i + 1];
    k += static_cast<size_t>((mask >> 1) & 1);
  }
  for (; i < count; ++i) {
    uint32_t r = sel[i];
    out_sel[k] = r;
    k += static_cast<size_t>(InListContains(sorted_values, num_values, col[r]));
  }
  return k;
}

// 64-bit low-half multiply from 32-bit cross products (SSE has no 64-bit
// mullo): a*b mod 2^64 = lo(a)lo(b) + ((hi(a)lo(b) + lo(a)hi(b)) << 32).
__attribute__((target("sse4.2"))) inline __m128i MulLo64Sse(__m128i a,
                                                            __m128i b) {
  __m128i lo = _mm_mul_epu32(a, b);
  __m128i cross = _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                                _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

__attribute__((target("sse4.2"))) void HashCombineColumnSse(
    uint64_t* hashes, const int64_t* col, size_t begin, size_t end) {
  const __m128i golden = _mm_set1_epi64x(
      static_cast<long long>(0x9e3779b97f4a7c15ULL));
  size_t r = begin;
  for (; r + 2 <= end; r += 2) {
    __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hashes + r));
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + r));
    __m128i mix = _mm_add_epi64(v, golden);
    mix = _mm_add_epi64(mix, _mm_slli_epi64(h, 6));
    mix = _mm_add_epi64(mix, _mm_srli_epi64(h, 2));
    h = _mm_xor_si128(h, mix);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hashes + r), h);
  }
  for (; r < end; ++r) hashes[r] = HashCombine(hashes[r], col[r]);
}

__attribute__((target("sse4.2"))) void HashFinalizeSse(uint64_t* hashes,
                                                       size_t begin,
                                                       size_t end) {
  const __m128i m1 = _mm_set1_epi64x(
      static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m128i m2 = _mm_set1_epi64x(
      static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  size_t r = begin;
  for (; r + 2 <= end; r += 2) {
    __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hashes + r));
    h = _mm_xor_si128(h, _mm_srli_epi64(h, 33));
    h = MulLo64Sse(h, m1);
    h = _mm_xor_si128(h, _mm_srli_epi64(h, 33));
    h = MulLo64Sse(h, m2);
    h = _mm_xor_si128(h, _mm_srli_epi64(h, 33));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(hashes + r), h);
  }
  for (; r < end; ++r) hashes[r] = FinalizeHash(hashes[r]);
}

constexpr KernelTable kSseTable = {
    FilterEqDenseSse,    FilterEqSelSse,   FilterRangeDenseSse,
    FilterRangeSelSse,   FilterInDenseSse, FilterInSelSse,
    HashCombineColumnSse, HashFinalizeSse,
};

// ---- AVX2: two 4-lane compares per group, vpermd compressed stores. ----

// Left-packs the row ids whose mask bits are set and stores them at
// out_sel + k; returns the advanced cursor.
__attribute__((target("avx2"))) inline size_t EmitCompressed8(
    __m256i row_ids, int mask, uint32_t* out_sel, size_t k) {
  __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompress8.p[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_sel + k),
                      _mm256_permutevar8x32_epi32(row_ids, perm));
  return k +
         static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
}

__attribute__((target("avx2"))) size_t FilterEqDenseAvx2(
    const int64_t* col, uint32_t row_begin, uint32_t row_end, int64_t value,
    uint32_t* out_sel) {
  size_t k = 0;
  uint32_t r = row_begin;
  const __m256i needle = _mm256_set1_epi64x(value);
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (; r + 8 <= row_end; r += 8) {
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r + 4));
    int m0 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v0, needle)));
    int m1 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v1, needle)));
    __m256i rows =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(r)), lane);
    k = EmitCompressed8(rows, m0 | (m1 << 4), out_sel, k);
  }
  for (; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

// Sel variants gather through the selection vector. _mm256_i32gather_epi64
// consumes *signed* 32-bit indices, so row ids at or above 2^31 take the
// scalar path (sel vectors are ascending: checking the last id suffices).
__attribute__((target("avx2"))) size_t FilterEqSelAvx2(
    const int64_t* col, const uint32_t* sel, size_t count, int64_t value,
    uint32_t* out_sel) {
  if (count > 0 && sel[count - 1] >= 0x80000000u) {
    return FilterEqSelScalar(col, sel, count, value, out_sel);
  }
  size_t k = 0;
  size_t i = 0;
  const __m256i needle = _mm256_set1_epi64x(value);
  for (; i + 8 <= count; i += 8) {
    __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sel + i));
    __m256i v0 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(col),
        _mm256_castsi256_si128(idx), 8);
    __m256i v1 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(col),
        _mm256_extracti128_si256(idx, 1), 8);
    int m0 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v0, needle)));
    int m1 = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v1, needle)));
    k = EmitCompressed8(idx, m0 | (m1 << 4), out_sel, k);
  }
  for (; i < count; ++i) {
    uint32_t r = sel[i];
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

__attribute__((target("avx2"))) size_t FilterRangeDenseAvx2(
    const int64_t* col, uint32_t row_begin, uint32_t row_end, int64_t lo,
    int64_t hi, uint32_t* out_sel) {
  size_t k = 0;
  uint32_t r = row_begin;
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (; r + 8 <= row_end; r += 8) {
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r + 4));
    __m256i bad0 = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, v0),
                                   _mm256_cmpgt_epi64(v0, vhi));
    __m256i bad1 = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, v1),
                                   _mm256_cmpgt_epi64(v1, vhi));
    int m0 = _mm256_movemask_pd(_mm256_castsi256_pd(bad0));
    int m1 = _mm256_movemask_pd(_mm256_castsi256_pd(bad1));
    int mask = ~(m0 | (m1 << 4)) & 0xFF;
    __m256i rows =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(r)), lane);
    k = EmitCompressed8(rows, mask, out_sel, k);
  }
  for (; r < row_end; ++r) {
    int64_t v = col[r];
    out_sel[k] = r;
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

__attribute__((target("avx2"))) size_t FilterRangeSelAvx2(
    const int64_t* col, const uint32_t* sel, size_t count, int64_t lo,
    int64_t hi, uint32_t* out_sel) {
  if (count > 0 && sel[count - 1] >= 0x80000000u) {
    return FilterRangeSelScalar(col, sel, count, lo, hi, out_sel);
  }
  size_t k = 0;
  size_t i = 0;
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  for (; i + 8 <= count; i += 8) {
    __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sel + i));
    __m256i v0 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(col),
        _mm256_castsi256_si128(idx), 8);
    __m256i v1 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(col),
        _mm256_extracti128_si256(idx, 1), 8);
    __m256i bad0 = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, v0),
                                   _mm256_cmpgt_epi64(v0, vhi));
    __m256i bad1 = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, v1),
                                   _mm256_cmpgt_epi64(v1, vhi));
    int m0 = _mm256_movemask_pd(_mm256_castsi256_pd(bad0));
    int m1 = _mm256_movemask_pd(_mm256_castsi256_pd(bad1));
    int mask = ~(m0 | (m1 << 4)) & 0xFF;
    k = EmitCompressed8(idx, mask, out_sel, k);
  }
  for (; i < count; ++i) {
    uint32_t r = sel[i];
    int64_t v = col[r];
    out_sel[k] = r;
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

__attribute__((target("avx2"))) size_t FilterInDenseAvx2(
    const int64_t* col, uint32_t row_begin, uint32_t row_end,
    const int64_t* sorted_values, size_t num_values, uint32_t* out_sel) {
  if (num_values == 0 || num_values > kInListSimdMax) {
    return FilterInDenseScalar(col, row_begin, row_end, sorted_values,
                               num_values, out_sel);
  }
  __m256i needles[kInListSimdMax];
  for (size_t i = 0; i < num_values; ++i) {
    needles[i] = _mm256_set1_epi64x(sorted_values[i]);
  }
  size_t k = 0;
  uint32_t r = row_begin;
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (; r + 8 <= row_end; r += 8) {
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r + 4));
    __m256i any0 = _mm256_cmpeq_epi64(v0, needles[0]);
    __m256i any1 = _mm256_cmpeq_epi64(v1, needles[0]);
    for (size_t i = 1; i < num_values; ++i) {
      any0 = _mm256_or_si256(any0, _mm256_cmpeq_epi64(v0, needles[i]));
      any1 = _mm256_or_si256(any1, _mm256_cmpeq_epi64(v1, needles[i]));
    }
    int m0 = _mm256_movemask_pd(_mm256_castsi256_pd(any0));
    int m1 = _mm256_movemask_pd(_mm256_castsi256_pd(any1));
    __m256i rows =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(r)), lane);
    k = EmitCompressed8(rows, m0 | (m1 << 4), out_sel, k);
  }
  for (; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(InListContains(sorted_values, num_values, col[r]));
  }
  return k;
}

__attribute__((target("avx2"))) size_t FilterInSelAvx2(
    const int64_t* col, const uint32_t* sel, size_t count,
    const int64_t* sorted_values, size_t num_values, uint32_t* out_sel) {
  if (num_values == 0 || num_values > kInListSimdMax ||
      (count > 0 && sel[count - 1] >= 0x80000000u)) {
    return FilterInSelScalar(col, sel, count, sorted_values, num_values,
                             out_sel);
  }
  __m256i needles[kInListSimdMax];
  for (size_t i = 0; i < num_values; ++i) {
    needles[i] = _mm256_set1_epi64x(sorted_values[i]);
  }
  size_t k = 0;
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sel + i));
    __m256i v0 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(col),
        _mm256_castsi256_si128(idx), 8);
    __m256i v1 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(col),
        _mm256_extracti128_si256(idx, 1), 8);
    __m256i any0 = _mm256_cmpeq_epi64(v0, needles[0]);
    __m256i any1 = _mm256_cmpeq_epi64(v1, needles[0]);
    for (size_t j = 1; j < num_values; ++j) {
      any0 = _mm256_or_si256(any0, _mm256_cmpeq_epi64(v0, needles[j]));
      any1 = _mm256_or_si256(any1, _mm256_cmpeq_epi64(v1, needles[j]));
    }
    int m0 = _mm256_movemask_pd(_mm256_castsi256_pd(any0));
    int m1 = _mm256_movemask_pd(_mm256_castsi256_pd(any1));
    k = EmitCompressed8(idx, m0 | (m1 << 4), out_sel, k);
  }
  for (; i < count; ++i) {
    uint32_t r = sel[i];
    out_sel[k] = r;
    k += static_cast<size_t>(InListContains(sorted_values, num_values, col[r]));
  }
  return k;
}

// 64-bit low-half multiply (AVX2's _mm256_mullo covers 32-bit lanes only;
// the 64-bit form is AVX-512): same cross-product identity as MulLo64Sse.
__attribute__((target("avx2"))) inline __m256i MulLo64Avx2(__m256i a,
                                                           __m256i b) {
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void HashCombineColumnAvx2(
    uint64_t* hashes, const int64_t* col, size_t begin, size_t end) {
  const __m256i golden = _mm256_set1_epi64x(
      static_cast<long long>(0x9e3779b97f4a7c15ULL));
  size_t r = begin;
  for (; r + 4 <= end; r += 4) {
    __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + r));
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + r));
    __m256i mix = _mm256_add_epi64(v, golden);
    mix = _mm256_add_epi64(mix, _mm256_slli_epi64(h, 6));
    mix = _mm256_add_epi64(mix, _mm256_srli_epi64(h, 2));
    h = _mm256_xor_si256(h, mix);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + r), h);
  }
  for (; r < end; ++r) hashes[r] = HashCombine(hashes[r], col[r]);
}

__attribute__((target("avx2"))) void HashFinalizeAvx2(uint64_t* hashes,
                                                      size_t begin,
                                                      size_t end) {
  const __m256i m1 = _mm256_set1_epi64x(
      static_cast<long long>(0xff51afd7ed558ccdULL));
  const __m256i m2 = _mm256_set1_epi64x(
      static_cast<long long>(0xc4ceb9fe1a85ec53ULL));
  size_t r = begin;
  for (; r + 4 <= end; r += 4) {
    __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + r));
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
    h = MulLo64Avx2(h, m1);
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
    h = MulLo64Avx2(h, m2);
    h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + r), h);
  }
  for (; r < end; ++r) hashes[r] = FinalizeHash(hashes[r]);
}

constexpr KernelTable kAvx2Table = {
    FilterEqDenseAvx2,    FilterEqSelAvx2,   FilterRangeDenseAvx2,
    FilterRangeSelAvx2,   FilterInDenseAvx2, FilterInSelAvx2,
    HashCombineColumnAvx2, HashFinalizeAvx2,
};

#endif  // LQO_SIMD_X86

#if LQO_SIMD_NEON

// ===========================================================================
// AArch64 NEON: 2 × int64 lanes for the dense filter compares (the paths
// the scan spends its time in); sel/in/hash entries delegate to scalar —
// bit-identical by construction, just not yet accelerated.
// ===========================================================================

size_t FilterEqDenseNeon(const int64_t* col, uint32_t row_begin,
                         uint32_t row_end, int64_t value, uint32_t* out_sel) {
  size_t k = 0;
  uint32_t r = row_begin;
  const int64x2_t needle = vdupq_n_s64(value);
  for (; r + 2 <= row_end; r += 2) {
    uint64x2_t eq = vceqq_s64(vld1q_s64(col + r), needle);
    out_sel[k] = r;
    k += static_cast<size_t>(vgetq_lane_u64(eq, 0) & 1);
    out_sel[k] = r + 1;
    k += static_cast<size_t>(vgetq_lane_u64(eq, 1) & 1);
  }
  for (; r < row_end; ++r) {
    out_sel[k] = r;
    k += static_cast<size_t>(col[r] == value);
  }
  return k;
}

size_t FilterRangeDenseNeon(const int64_t* col, uint32_t row_begin,
                            uint32_t row_end, int64_t lo, int64_t hi,
                            uint32_t* out_sel) {
  size_t k = 0;
  uint32_t r = row_begin;
  const int64x2_t vlo = vdupq_n_s64(lo);
  const int64x2_t vhi = vdupq_n_s64(hi);
  for (; r + 2 <= row_end; r += 2) {
    int64x2_t v = vld1q_s64(col + r);
    uint64x2_t ok = vandq_u64(vcgeq_s64(v, vlo), vcleq_s64(v, vhi));
    out_sel[k] = r;
    k += static_cast<size_t>(vgetq_lane_u64(ok, 0) & 1);
    out_sel[k] = r + 1;
    k += static_cast<size_t>(vgetq_lane_u64(ok, 1) & 1);
  }
  for (; r < row_end; ++r) {
    int64_t v = col[r];
    out_sel[k] = r;
    k += static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return k;
}

constexpr KernelTable kNeonTable = {
    FilterEqDenseNeon,    FilterEqSelScalar,   FilterRangeDenseNeon,
    FilterRangeSelScalar, FilterInDenseScalar, FilterInSelScalar,
    HashCombineColumnScalar, HashFinalizeScalar,
};

#endif  // LQO_SIMD_NEON

// ===========================================================================
// Dispatch state.
// ===========================================================================

// Cached resolved Level as int; -1 = unresolved. Protocol: release-store
// after resolution, acquire-load on read. Concurrent first calls may both
// resolve, but Resolve() is a pure function of the CPU and environment, so
// they store the same value — the race is benign and deterministic.
std::atomic<int> g_active_level{-1};

Level Resolve() {
  Level parsed;
  const char* env = std::getenv("LQO_SIMD");
  if (env != nullptr && ParseLevel(env, &parsed) && LevelSupported(parsed)) {
    return parsed;
  }
  return BestSupportedLevel();
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse: return "sse";
    case Level::kAvx2: return "avx2";
    case Level::kNeon: return "neon";
  }
  return "scalar";
}

bool ParseLevel(const char* name, Level* out) {
  if (name == nullptr) return false;
  for (int i = 0; i < kNumLevels; ++i) {
    Level level = static_cast<Level>(i);
    const char* spelled = LevelName(level);
    size_t j = 0;
    while (spelled[j] != '\0' && name[j] == spelled[j]) ++j;
    if (spelled[j] == '\0' && name[j] == '\0') {
      *out = level;
      return true;
    }
  }
  return false;
}

bool LevelSupported(Level level) {
  if (level == Level::kScalar) return true;
#if LQO_SIMD_X86
  if (level == Level::kSse) return __builtin_cpu_supports("sse4.2") != 0;
  if (level == Level::kAvx2) return __builtin_cpu_supports("avx2") != 0;
#endif
#if LQO_SIMD_NEON
  if (level == Level::kNeon) return true;
#endif
  return false;
}

Level BestSupportedLevel() {
  if (LevelSupported(Level::kAvx2)) return Level::kAvx2;
  if (LevelSupported(Level::kSse)) return Level::kSse;
  if (LevelSupported(Level::kNeon)) return Level::kNeon;
  return Level::kScalar;
}

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels;
  for (int i = 0; i < kNumLevels; ++i) {
    Level level = static_cast<Level>(i);
    if (LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

Level ActiveLevel() {
  int v = g_active_level.load(std::memory_order_acquire);
  if (v < 0) {
    v = static_cast<int>(Resolve());
    g_active_level.store(v, std::memory_order_release);
  }
  return static_cast<Level>(v);
}

Level SetLevelForTest(Level level) {
  Level previous = ActiveLevel();
  if (!LevelSupported(level)) level = Level::kScalar;
  g_active_level.store(static_cast<int>(level), std::memory_order_release);
  return previous;
}

Level ReinitFromEnv() {
  g_active_level.store(static_cast<int>(Resolve()), std::memory_order_release);
  return ActiveLevel();
}

const KernelTable& KernelsFor(Level level) {
  if (!LevelSupported(level)) return kScalarTable;
  switch (level) {
    case Level::kScalar:
      return kScalarTable;
#if LQO_SIMD_X86
    case Level::kSse:
      return kSseTable;
    case Level::kAvx2:
      return kAvx2Table;
#endif
#if LQO_SIMD_NEON
    case Level::kNeon:
      return kNeonTable;
#endif
    default:
      return kScalarTable;
  }
}

const KernelTable& Kernels() { return KernelsFor(ActiveLevel()); }

}  // namespace lqo::simd
