#include "engine/explain.h"

#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"

namespace lqo {
namespace {

// Assigns bottom-up profile indices to nodes (children before parents,
// left before right — the executor's emission order).
void IndexNodes(const PlanNode& node, int* counter,
                std::vector<std::pair<const PlanNode*, int>>* indexed) {
  if (node.kind == PlanNode::Kind::kJoin) {
    IndexNodes(*node.left, counter, indexed);
    IndexNodes(*node.right, counter, indexed);
  }
  indexed->emplace_back(&node, (*counter)++);
}

void Render(const PlanNode& node, const Query* query,
            const std::vector<std::pair<const PlanNode*, int>>& indexed,
            const ExecutionResult& result, int depth,
            std::ostringstream& out) {
  int profile_index = -1;
  for (const auto& [candidate, index] : indexed) {
    if (candidate == &node) {
      profile_index = index;
      break;
    }
  }
  LQO_CHECK_GE(profile_index, 0);
  const NodeProfile& profile =
      result.node_profiles[static_cast<size_t>(profile_index)];

  out << std::string(static_cast<size_t>(depth) * 2, ' ');
  if (node.kind == PlanNode::Kind::kScan) {
    const QueryTable& table =
        query->tables()[static_cast<size_t>(node.table_index)];
    out << "Scan " << table.table_name << " " << table.alias;
  } else {
    out << JoinAlgorithmName(node.algorithm);
  }
  out << "  (est_rows=" << FormatDouble(node.estimated_cardinality, 4)
      << " actual=" << profile.output_rows
      << " time=" << FormatDouble(profile.time_units, 4);
  if (node.kind == PlanNode::Kind::kJoin) {
    // Physical hash-table health of the partitioned join: probe-sequence
    // collisions on build/probe plus the radix partition count.
    out << " collisions=" << profile.build_collisions << "/"
        << profile.probe_collisions << " partitions=" << profile.partitions;
  }
  out << ")";
  if (node.estimated_cardinality >= 1.0 && profile.output_rows > 0) {
    double q = std::max(
        node.estimated_cardinality / static_cast<double>(profile.output_rows),
        static_cast<double>(profile.output_rows) /
            node.estimated_cardinality);
    if (q > 2.0) out << "  <-- q-error " << FormatDouble(q, 3);
  }
  out << "\n";
  if (node.kind == PlanNode::Kind::kJoin) {
    Render(*node.left, query, indexed, result, depth + 1, out);
    Render(*node.right, query, indexed, result, depth + 1, out);
  }
}

}  // namespace

std::string ExplainAnalyze(const PhysicalPlan& plan,
                           const ExecutionResult& result) {
  LQO_CHECK(plan.root != nullptr);
  LQO_CHECK(plan.query != nullptr);
  std::vector<std::pair<const PlanNode*, int>> indexed;
  int counter = 0;
  IndexNodes(*plan.root, &counter, &indexed);
  LQO_CHECK_EQ(indexed.size(), result.node_profiles.size())
      << "result does not match plan";

  std::ostringstream out;
  Render(*plan.root, plan.query, indexed, result, 0, out);
  out << "Total: " << result.row_count << " rows, "
      << FormatDouble(result.time_units, 6) << " time units\n";
  return out.str();
}

}  // namespace lqo
