#include "engine/explain.h"

#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"

namespace lqo {
namespace {

// Assigns bottom-up profile indices to nodes (children before parents,
// left before right — the executor's emission order).
void IndexNodes(const PlanNode& node, int* counter,
                std::vector<std::pair<const PlanNode*, int>>* indexed) {
  if (node.kind == PlanNode::Kind::kJoin) {
    IndexNodes(*node.left, counter, indexed);
    IndexNodes(*node.right, counter, indexed);
  }
  indexed->emplace_back(&node, (*counter)++);
}

// Renders one select-list item, e.g. "t0.a", "SUM(t1.b)", "COUNT(*)".
void RenderOutputExpr(const OutputExpr& expr, const Query* query,
                      std::ostringstream& out) {
  if (!expr.ReferencesColumn()) {
    out << "COUNT(*)";
    return;
  }
  const std::string& alias =
      query->tables()[static_cast<size_t>(expr.table_index)].alias;
  if (expr.kind == OutputExpr::Kind::kColumn) {
    out << alias << "." << expr.column;
  } else {
    out << AggFuncName(expr.func) << "(" << alias << "." << expr.column << ")";
  }
}

void Render(const PlanNode& node, const Query* query,
            const std::vector<std::pair<const PlanNode*, int>>& indexed,
            const ExecutionResult& result, int depth, bool show_materialization,
            std::ostringstream& out) {
  int profile_index = -1;
  for (const auto& [candidate, index] : indexed) {
    if (candidate == &node) {
      profile_index = index;
      break;
    }
  }
  LQO_CHECK_GE(profile_index, 0);
  const NodeProfile& profile =
      result.node_profiles[static_cast<size_t>(profile_index)];

  out << std::string(static_cast<size_t>(depth) * 2, ' ');
  if (node.kind == PlanNode::Kind::kScan) {
    const QueryTable& table =
        query->tables()[static_cast<size_t>(node.table_index)];
    out << "Scan " << table.table_name << " " << table.alias;
  } else {
    out << JoinAlgorithmName(node.algorithm);
  }
  out << "  (est_rows=" << FormatDouble(node.estimated_cardinality, 4)
      << " actual=" << profile.output_rows
      << " time=" << FormatDouble(profile.time_units, 4);
  if (node.kind == PlanNode::Kind::kJoin) {
    // Physical hash-table health of the partitioned join: probe-sequence
    // collisions on build/probe plus the radix partition count.
    out << " collisions=" << profile.build_collisions << "/"
        << profile.probe_collisions << " partitions=" << profile.partitions;
  }
  if (show_materialization) {
    // Late-materialization accounting (only rendered for queries with an
    // output stage): row-id columns carried out of this node and the
    // resulting deferred-gather volume.
    out << " carried_cols=" << profile.carried_columns
        << " materialized=" << profile.materialized_values;
  }
  out << ")";
  if (node.estimated_cardinality >= 1.0 && profile.output_rows > 0) {
    double q = std::max(
        node.estimated_cardinality / static_cast<double>(profile.output_rows),
        static_cast<double>(profile.output_rows) /
            node.estimated_cardinality);
    if (q > 2.0) out << "  <-- q-error " << FormatDouble(q, 3);
  }
  out << "\n";
  if (node.kind == PlanNode::Kind::kJoin) {
    Render(*node.left, query, indexed, result, depth + 1, show_materialization,
           out);
    Render(*node.right, query, indexed, result, depth + 1,
           show_materialization, out);
  }
}

}  // namespace

std::string ExplainAnalyze(const PhysicalPlan& plan,
                           const ExecutionResult& result) {
  LQO_CHECK(plan.root != nullptr);
  LQO_CHECK(plan.query != nullptr);
  const bool has_output = plan.query->HasOutputStage();
  std::vector<std::pair<const PlanNode*, int>> indexed;
  int counter = 0;
  IndexNodes(*plan.root, &counter, &indexed);
  LQO_CHECK_EQ(indexed.size() + (has_output ? 1 : 0),
               result.node_profiles.size())
      << "result does not match plan";

  std::ostringstream out;
  int plan_depth = 0;
  if (has_output) {
    // The output stage sits above the plan root; the executor appends its
    // profile after every plan node's.
    const NodeProfile& sink = result.node_profiles.back();
    out << "Output ";
    const std::vector<OutputExpr>& outputs = plan.query->outputs();
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (i > 0) out << ", ";
      RenderOutputExpr(outputs[i], plan.query, out);
    }
    if (plan.query->has_group_by()) {
      const std::string& alias =
          plan.query->tables()[static_cast<size_t>(
              plan.query->group_by_table())].alias;
      out << " GROUP BY " << alias << "." << plan.query->group_by_column();
    }
    out << "  (rows=" << sink.output_rows
        << " carried_cols=" << sink.carried_columns
        << " materialized=" << sink.materialized_values;
    if (plan.query->has_group_by()) out << " groups=" << sink.groups;
    out << " time=" << FormatDouble(sink.time_units, 4) << ")\n";
    plan_depth = 1;
  }
  Render(*plan.root, plan.query, indexed, result, plan_depth, has_output, out);
  out << "Total: " << result.row_count << " rows, "
      << FormatDouble(result.time_units, 6) << " time units";
  if (has_output) out << ", " << result.output_row_count << " output rows";
  out << "\n";
  return out.str();
}

}  // namespace lqo
