#ifndef LQO_ENGINE_TRUE_CARDINALITY_H_
#define LQO_ENGINE_TRUE_CARDINALITY_H_

#include <cstdint>
#include <unordered_map>

#include "engine/executor.h"
#include "query/query.h"

namespace lqo {

/// Computes exact sub-query cardinalities by executing a canonical
/// left-deep hash plan, memoized by the sub-query's canonical key. This is
/// the labeling oracle used to (a) train query-driven estimators and
/// (b) score every estimator's q-error.
class TrueCardinalityService {
 public:
  explicit TrueCardinalityService(const Catalog* catalog);

  /// Exact COUNT(*) of the sub-query. The table set must be connected.
  uint64_t Cardinality(const Subquery& subquery);

  /// Exact COUNT(*) of a full query.
  uint64_t Cardinality(const Query& query);

  size_t cache_size() const { return cache_.size(); }

 private:
  Executor executor_;
  std::unordered_map<std::string, uint64_t> cache_;
};

}  // namespace lqo

#endif  // LQO_ENGINE_TRUE_CARDINALITY_H_
