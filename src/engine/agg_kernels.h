#ifndef LQO_ENGINE_AGG_KERNELS_H_
#define LQO_ENGINE_AGG_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/simd.h"

namespace lqo::simd {

/// Aggregation kernels of the late-materialization output stage (DESIGN.md
/// "Late materialization & output pipeline").
///
/// Each kernel folds one int64 column into a single accumulator, either over
/// a dense row range or through a row-id selection (the sink's deferred
/// gather: `col[sel[i]]` reads base-table values through the row ids the
/// joins carried forward, so aggregation never materializes the column).
/// Dispatch follows engine/simd.h exactly: per-level tables of plain
/// function pointers, resolved from the same ActiveLevel() /
/// SetLevelForTest() state, one indirect call per column — never per row.
///
/// Bit-equality contract, shared with the filter/hash kernels:
///  - SUM accumulates in *wrapping uint64* arithmetic. Wrapping addition is
///    associative and commutative, so lane-wise partial sums reduced
///    horizontally equal the scalar left-to-right fold on every input —
///    including overflowing ones — and the result is independent of lane
///    width. (Signed accumulation would be UB on overflow; the executor
///    casts the final value back to int64.)
///  - MIN/MAX are associative/commutative idempotent folds; lane order
///    cannot change the result. Empty inputs return the fold identities
///    (INT64_MAX for MIN, INT64_MIN for MAX); the executor rewrites empty
///    aggregates to 0 before emitting.
///  - COUNT needs no kernel (it is the row count).
struct AggKernelTable {
  uint64_t (*sum_dense)(const int64_t* col, uint32_t row_begin,
                        uint32_t row_end);
  uint64_t (*sum_sel)(const int64_t* col, const uint32_t* sel, size_t count);
  int64_t (*min_dense)(const int64_t* col, uint32_t row_begin,
                       uint32_t row_end);
  int64_t (*min_sel)(const int64_t* col, const uint32_t* sel, size_t count);
  int64_t (*max_dense)(const int64_t* col, uint32_t row_begin,
                       uint32_t row_end);
  int64_t (*max_sel)(const int64_t* col, const uint32_t* sel, size_t count);
};

/// The table for the active level (engine/simd.h dispatch state).
const AggKernelTable& AggKernels();

/// The table for an explicit level, for A/B tests; an unsupported level
/// returns the scalar table.
const AggKernelTable& AggKernelsFor(Level level);

/// Open-addressing GROUP BY key table: maps int64 key values to dense group
/// ids assigned in *first-seen row order* — exactly the order the scalar
/// tuple-at-a-time reference assigns them, so grouped output rows are
/// bit-identical across paths. Reuses the partitioned-join hashing
/// contract: callers hash keys batch-wise through the dispatched
/// hash_combine_column/hash_finalize kernels (bit-identical to
/// FinalizeHash(HashCombine(0, key)) at every level) and pass the hashes
/// in. Linear probing over power-of-two capacity, load factor <= 0.5,
/// doubling growth — the same slot discipline as the executor's
/// JoinHashTable, minus the per-partition split (group counts are small
/// relative to probe counts).
class GroupIndex {
 public:
  explicit GroupIndex(size_t expected_groups = 16);

  /// Maps keys[0..count) to group ids in group_ids[0..count), assigning new
  /// ids in first-seen order. hashes[i] must be the finalized hash of
  /// keys[i] (see class comment).
  void MapBatch(const int64_t* keys, const uint64_t* hashes, size_t count,
                uint32_t* group_ids);

  /// Group keys in first-seen order; index == group id.
  const std::vector<int64_t>& group_keys() const { return group_keys_; }
  size_t num_groups() const { return group_keys_.size(); }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;

  void Grow();

  std::vector<uint64_t> slot_hash_;
  std::vector<uint32_t> slot_group_;
  std::vector<int64_t> group_keys_;
  std::vector<uint64_t> group_hashes_;  // for rehash on growth
  size_t mask_ = 0;
};

}  // namespace lqo::simd

#endif  // LQO_ENGINE_AGG_KERNELS_H_
