#include "costmodel/sample_collection.h"

#include <set>
#include <string>

#include "common/logging.h"

namespace lqo {

std::vector<CollectedPlan> CollectCostSamples(const Workload& workload,
                                              const Optimizer& optimizer,
                                              CardinalityProvider* cards,
                                              const Executor& executor) {
  std::vector<CollectedPlan> collected;

  std::vector<HintSet> hint_variants;
  hint_variants.push_back(HintSet{});
  {
    HintSet h;
    h.name = "hash_only";
    h.enable_nested_loop = false;
    h.enable_merge_join = false;
    hint_variants.push_back(h);
  }
  {
    HintSet h;
    h.name = "no_hash";
    h.enable_hash_join = false;
    hint_variants.push_back(h);
  }
  {
    HintSet h;
    h.name = "nlj_only";
    h.enable_hash_join = false;
    h.enable_merge_join = false;
    hint_variants.push_back(h);
  }

  const double kScales[] = {0.1, 10.0};

  for (const Query& query : workload.queries) {
    std::set<std::string> seen;
    auto add_plan = [&](PhysicalPlan plan) {
      if (!seen.insert(plan.Signature()).second) return;
      auto result = executor.Execute(plan);
      LQO_CHECK(result.ok()) << result.status().ToString();
      CollectedPlan entry;
      entry.sample = MakeCostSample(plan, *result, optimizer.stats());
      entry.plan = std::move(plan);
      collected.push_back(std::move(entry));
    };

    for (const HintSet& hints : hint_variants) {
      add_plan(optimizer.Optimize(query, cards, hints).plan);
    }
    if (query.num_tables() > 1) {
      add_plan(optimizer.OptimizeGreedy(query, cards).plan);
      for (double scale : kScales) {
        cards->SetScale(scale, 2);
        add_plan(optimizer.Optimize(query, cards).plan);
        cards->ClearOverrides();
      }
    }
  }
  return collected;
}

}  // namespace lqo
