#ifndef LQO_COSTMODEL_SAMPLE_COLLECTION_H_
#define LQO_COSTMODEL_SAMPLE_COLLECTION_H_

#include <vector>

#include "costmodel/learned_cost_model.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "query/workload.h"

namespace lqo {

/// An executed training plan with its extracted cost sample.
struct CollectedPlan {
  PhysicalPlan plan;
  CostSample sample;
};

/// Builds a diverse plan corpus for cost-model training: for every workload
/// query, plans from the DP enumerator under several hint sets plus the
/// greedy enumerator and cardinality scalings, deduplicated by signature,
/// each executed to obtain true time units. Node annotations keep the
/// *estimated* cardinalities (the information a cost model actually has at
/// planning time).
std::vector<CollectedPlan> CollectCostSamples(const Workload& workload,
                                              const Optimizer& optimizer,
                                              CardinalityProvider* cards,
                                              const Executor& executor);

}  // namespace lqo

#endif  // LQO_COSTMODEL_SAMPLE_COLLECTION_H_
