#include "costmodel/plan_featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lqo {
namespace {

double Log1p(double v) { return std::log(std::max(v, 0.0) + 1.0); }

struct Aggregates {
  double count_scan = 0, count_hash = 0, count_nlj = 0, count_merge = 0;
  double sum_log_card = 0, max_log_card = 0, root_log_card = 0;
  double sum_log_hash_build = 0, sum_log_nlj_inner = 0;
  double nlj_pairs = 0;
  double max_depth = 0;
  double sum_scan_card = 0;
  // Per-node maxima: the features that let a model learn threshold effects
  // (cache-resident NLJ inners, spilling hash builds).
  double max_log_nlj_inner = 0, max_log_hash_build = 0, max_log_nlj_pairs = 0;
};

void Walk(const PlanNode& node, int depth, Aggregates* agg) {
  double card = std::max(node.estimated_cardinality, 0.0);
  agg->sum_log_card += Log1p(card);
  agg->max_log_card = std::max(agg->max_log_card, Log1p(card));
  agg->max_depth = std::max(agg->max_depth, static_cast<double>(depth));
  if (node.kind == PlanNode::Kind::kScan) {
    agg->count_scan += 1;
    agg->sum_scan_card += card;
    return;
  }
  double left = std::max(node.left->estimated_cardinality, 0.0);
  double right = std::max(node.right->estimated_cardinality, 0.0);
  switch (node.algorithm) {
    case JoinAlgorithm::kHashJoin:
      agg->count_hash += 1;
      agg->sum_log_hash_build += Log1p(right);
      agg->max_log_hash_build = std::max(agg->max_log_hash_build, Log1p(right));
      break;
    case JoinAlgorithm::kNestedLoopJoin:
      agg->count_nlj += 1;
      agg->sum_log_nlj_inner += Log1p(right);
      agg->nlj_pairs += left * right;
      agg->max_log_nlj_inner = std::max(agg->max_log_nlj_inner, Log1p(right));
      agg->max_log_nlj_pairs =
          std::max(agg->max_log_nlj_pairs, Log1p(left * right));
      break;
    case JoinAlgorithm::kMergeJoin:
      agg->count_merge += 1;
      break;
  }
  Walk(*node.left, depth + 1, agg);
  Walk(*node.right, depth + 1, agg);
}

}  // namespace

std::vector<double> PlanFeaturizer::Featurize(const PhysicalPlan& plan) {
  std::vector<double> features(kDim);
  FeaturizeInto(plan, features.data());
  return features;
}

void PlanFeaturizer::FeaturizeInto(const PhysicalPlan& plan, double* out) {
  LQO_CHECK(plan.root != nullptr);
  Aggregates agg;
  Walk(*plan.root, 0, &agg);
  agg.root_log_card = Log1p(std::max(plan.root->estimated_cardinality, 0.0));

  double num_joins = agg.count_hash + agg.count_nlj + agg.count_merge;
  size_t k = 0;
  out[k++] = agg.count_scan;
  out[k++] = agg.count_hash;
  out[k++] = agg.count_nlj;
  out[k++] = agg.count_merge;
  out[k++] = num_joins;
  out[k++] = agg.max_depth;
  out[k++] = agg.root_log_card;
  out[k++] = agg.sum_log_card;
  out[k++] = agg.max_log_card;
  out[k++] = Log1p(agg.sum_scan_card);
  out[k++] = agg.sum_log_hash_build;
  out[k++] = agg.sum_log_nlj_inner;
  out[k++] = Log1p(agg.nlj_pairs);
  // Shape indicators.
  out[k++] = num_joins > 0 ? agg.count_hash / num_joins : 0.0;
  out[k++] = num_joins > 0 ? agg.count_nlj / num_joins : 0.0;
  out[k++] = num_joins > 0 ? agg.count_merge / num_joins : 0.0;
  out[k++] = agg.max_depth - num_joins;  // 0 for left-deep, neg for bushy
  // Cardinality-derived interactions.
  out[k++] = agg.root_log_card * num_joins;
  out[k++] = agg.max_log_card * agg.count_nlj;
  out[k++] = agg.max_log_card * agg.count_hash;
  out[k++] = agg.sum_log_card / std::max(1.0, num_joins + agg.count_scan);
  out[k++] = agg.max_log_nlj_inner;
  out[k++] = agg.max_log_hash_build;
  out[k++] = agg.max_log_nlj_pairs;
  out[k++] = 1.0;  // bias
  LQO_CHECK_EQ(k, kDim);
}

std::vector<double> PlanFeaturizer::NodeFeatures(PlanNode::Kind kind,
                                                 JoinAlgorithm algorithm,
                                                 double left_rows,
                                                 double right_rows,
                                                 double output_rows,
                                                 int depth) {
  std::vector<double> features(kNodeDim, 0.0);
  NodeFeaturesInto(kind, algorithm, left_rows, right_rows, output_rows, depth,
                   features.data());
  return features;
}

void PlanFeaturizer::NodeFeaturesInto(PlanNode::Kind kind,
                                      JoinAlgorithm algorithm,
                                      double left_rows, double right_rows,
                                      double output_rows, int depth,
                                      double* out) {
  for (size_t i = 0; i < kNodeDim; ++i) out[i] = 0.0;
  if (kind == PlanNode::Kind::kScan) {
    out[0] = 1.0;
  } else {
    switch (algorithm) {
      case JoinAlgorithm::kHashJoin:
        out[1] = 1.0;
        break;
      case JoinAlgorithm::kNestedLoopJoin:
        out[2] = 1.0;
        break;
      case JoinAlgorithm::kMergeJoin:
        out[3] = 1.0;
        break;
    }
  }
  out[4] = Log1p(left_rows);
  out[5] = Log1p(right_rows);
  out[6] = Log1p(output_rows);
  out[7] = Log1p(left_rows) + Log1p(right_rows);
  out[8] = static_cast<double>(depth);
}

}  // namespace lqo
