#ifndef LQO_COSTMODEL_CONCURRENT_H_
#define LQO_COSTMODEL_CONCURRENT_H_

#include <span>
#include <vector>

#include "costmodel/learned_cost_model.h"
#include "engine/executor.h"
#include "ml/gbdt.h"

namespace lqo {

/// Resource profile of one plan when run in a mix: its solo latency and
/// the footprints that create interference.
struct PlanResourceProfile {
  double solo_time = 0.0;
  /// Largest hash-build input (memory pressure proxy).
  double memory_rows = 0.0;
  /// Total work (CPU pressure proxy) == solo time under our schedule.
  double cpu_work = 0.0;
  std::vector<double> plan_features;
};

/// Extracts the resource profile from an executed plan.
PlanResourceProfile MakeResourceProfile(const PhysicalPlan& plan,
                                        const ExecutionResult& result);

/// Options of the deterministic concurrency simulator.
struct ConcurrencyOptions {
  /// Latency inflation per unit of co-runner memory over capacity.
  double memory_alpha = 1.5;
  double memory_capacity = 50000.0;  // rows
  /// Latency inflation per unit of co-runner CPU work over capacity.
  double cpu_beta = 0.5;
  double cpu_capacity = 2e6;  // time units
};

/// Deterministic stand-in for running query mixes on a shared server: each
/// query in a batch is slowed down proportionally to its co-runners'
/// memory and CPU footprints. This is the substrate the concurrent-query
/// cost models of the paper's Section 2.1.2 (GPredictor [78],
/// Prestroid [20], resource-aware models [31]) are trained against.
class ConcurrencySimulator {
 public:
  explicit ConcurrencySimulator(
      ConcurrencyOptions options = ConcurrencyOptions())
      : options_(options) {}

  /// Latency of every batch member under interference; batch of one
  /// returns the solo time.
  std::vector<double> BatchLatencies(
      const std::vector<const PlanResourceProfile*>& batch) const;

  const ConcurrencyOptions& options() const { return options_; }

 private:
  ConcurrencyOptions options_;
};

/// GPredictor/Prestroid-style learned concurrent-latency model: a GBDT
/// over [own plan features; own footprints; co-runner aggregates]
/// predicting the query's latency inside the mix. The "solo" baseline it
/// is compared against simply predicts the solo latency, ignoring
/// interference.
class ConcurrentCostModel {
 public:
  ConcurrentCostModel() = default;

  /// One training observation: the query's features within its batch.
  static std::vector<double> MixFeatures(
      const PlanResourceProfile& self,
      const std::vector<const PlanResourceProfile*>& batch);

  void Train(const std::vector<std::vector<double>>& features,
             const std::vector<double>& latencies);

  double Predict(const std::vector<double>& features) const;

  /// Batch Predict over all rows of `x`: one batched GBDT pass plus the
  /// scalar clamp/exp per row — bit-identical results.
  void PredictBatch(const FeatureMatrix& x, std::span<double> out) const;

  /// Batched-inference counters of the underlying model.
  InferenceStatsSnapshot InferenceStats() const { return model_.Stats(); }

  bool trained() const { return trained_; }

 private:
  GradientBoostedTrees model_;
  bool trained_ = false;
};

}  // namespace lqo

#endif  // LQO_COSTMODEL_CONCURRENT_H_
