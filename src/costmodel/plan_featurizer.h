#ifndef LQO_COSTMODEL_PLAN_FEATURIZER_H_
#define LQO_COSTMODEL_PLAN_FEATURIZER_H_

#include <vector>

#include "engine/executor.h"
#include "engine/plan.h"

namespace lqo {

/// Fixed-size featurization of an (annotated) physical plan, in the spirit
/// of the tree-convolution featurizations of [39]/Neo/Bao: per-operator
/// counts and cardinality aggregates plus tree-shape statistics. Plans must
/// carry estimated_cardinality annotations (set by any CostModelInterface
/// or the optimizer).
class PlanFeaturizer {
 public:
  /// Number of features produced.
  static constexpr size_t kDim = 25;

  /// Version stamp for feature caches (ml/feature_cache.h): bump whenever
  /// the feature definition changes so cached rows from older featurizers
  /// are invalidated instead of served.
  static constexpr uint32_t kVersion = 1;

  /// Featurizes an annotated plan.
  static std::vector<double> Featurize(const PhysicalPlan& plan);

  /// Writes the kDim features of `plan` into `out` (caller owns the
  /// buffer — e.g. a FeatureMatrix::AppendRow() slot). Identical values to
  /// Featurize without the per-plan vector allocation.
  static void FeaturizeInto(const PhysicalPlan& plan, double* out);

  /// Node-local features for per-operator (zero-shot style) models:
  /// [scan, hash, nlj, merge one-hot; log left rows; log right rows;
  ///  log output rows; left*right interaction (log); depth].
  static constexpr size_t kNodeDim = 9;
  static std::vector<double> NodeFeatures(PlanNode::Kind kind,
                                          JoinAlgorithm algorithm,
                                          double left_rows, double right_rows,
                                          double output_rows, int depth);

  /// As NodeFeatures, into a caller-owned kNodeDim buffer.
  static void NodeFeaturesInto(PlanNode::Kind kind, JoinAlgorithm algorithm,
                               double left_rows, double right_rows,
                               double output_rows, int depth, double* out);
};

}  // namespace lqo

#endif  // LQO_COSTMODEL_PLAN_FEATURIZER_H_
