#include "costmodel/concurrent.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "costmodel/plan_featurizer.h"

namespace lqo {

PlanResourceProfile MakeResourceProfile(const PhysicalPlan& plan,
                                        const ExecutionResult& result) {
  PlanResourceProfile profile;
  profile.solo_time = result.time_units;
  profile.cpu_work = result.time_units;
  for (const NodeProfile& node : result.node_profiles) {
    if (node.kind == PlanNode::Kind::kJoin &&
        node.algorithm == JoinAlgorithm::kHashJoin) {
      profile.memory_rows = std::max(
          profile.memory_rows, static_cast<double>(node.right_rows));
    }
  }
  profile.plan_features = PlanFeaturizer::Featurize(plan);
  return profile;
}

std::vector<double> ConcurrencySimulator::BatchLatencies(
    const std::vector<const PlanResourceProfile*>& batch) const {
  std::vector<double> latencies;
  latencies.reserve(batch.size());
  double total_memory = 0.0;
  double total_cpu = 0.0;
  for (const PlanResourceProfile* profile : batch) {
    total_memory += profile->memory_rows;
    total_cpu += profile->cpu_work;
  }
  for (const PlanResourceProfile* profile : batch) {
    double co_memory = total_memory - profile->memory_rows;
    double co_cpu = total_cpu - profile->cpu_work;
    double inflation =
        1.0 + options_.memory_alpha * co_memory / options_.memory_capacity +
        options_.cpu_beta * co_cpu / options_.cpu_capacity;
    latencies.push_back(profile->solo_time * inflation);
  }
  return latencies;
}

std::vector<double> ConcurrentCostModel::MixFeatures(
    const PlanResourceProfile& self,
    const std::vector<const PlanResourceProfile*>& batch) {
  double co_memory = 0.0, co_cpu = 0.0, max_co_memory = 0.0;
  for (const PlanResourceProfile* other : batch) {
    if (other == &self) continue;
    co_memory += other->memory_rows;
    co_cpu += other->cpu_work;
    max_co_memory = std::max(max_co_memory, other->memory_rows);
  }
  std::vector<double> features = self.plan_features;
  features.push_back(std::log(self.memory_rows + 1.0));
  features.push_back(std::log(self.cpu_work + 1.0));
  features.push_back(static_cast<double>(batch.size()));
  features.push_back(std::log(co_memory + 1.0));
  features.push_back(std::log(co_cpu + 1.0));
  features.push_back(std::log(max_co_memory + 1.0));
  return features;
}

void ConcurrentCostModel::Train(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& latencies) {
  LQO_CHECK(!features.empty());
  LQO_CHECK_EQ(features.size(), latencies.size());
  std::vector<double> log_latency;
  log_latency.reserve(latencies.size());
  for (double latency : latencies) {
    log_latency.push_back(std::log(latency + 1.0));
  }
  GbdtOptions options;
  options.num_trees = 120;
  options.tree.max_depth = 5;
  model_ = GradientBoostedTrees(options);
  model_.Fit(features, log_latency);
  trained_ = true;
}

double ConcurrentCostModel::Predict(
    const std::vector<double>& features) const {
  LQO_CHECK(trained_);
  double log_latency = std::clamp(model_.Predict(features), 0.0, 50.0);
  return std::exp(log_latency) - 1.0;
}

void ConcurrentCostModel::PredictBatch(const FeatureMatrix& x,
                                       std::span<double> out) const {
  LQO_CHECK(trained_);
  LQO_CHECK_EQ(x.rows(), out.size());
  model_.PredictBatch(x, out);
  for (size_t i = 0; i < out.size(); ++i) {
    double log_latency = std::clamp(out[i], 0.0, 50.0);
    out[i] = std::exp(log_latency) - 1.0;
  }
}

}  // namespace lqo
