#ifndef LQO_COSTMODEL_LEARNED_COST_MODEL_H_
#define LQO_COSTMODEL_LEARNED_COST_MODEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "costmodel/plan_featurizer.h"
#include "engine/executor.h"
#include "ml/gbdt.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "optimizer/table_stats.h"

namespace lqo {

/// One executed plan: its (annotated) features and true simulated latency.
struct CostSample {
  std::vector<double> plan_features;
  /// Node-local features + per-node true time, for the zero-shot model.
  std::vector<std::vector<double>> node_features;
  std::vector<double> node_times;
  double time_units = 0.0;
};

/// Extracts a CostSample from an annotated plan and its execution result.
/// `stats` supplies raw table row counts for scan-node features.
CostSample MakeCostSample(const PhysicalPlan& plan,
                          const ExecutionResult& result,
                          const StatsCatalog& stats);

/// Plan-level learned cost models (tree-based [39]-style aggregation with
/// GBDT, or the Tree-LSTM/transformer lineage [51,76] represented by an
/// MLP) predicting log latency from plan features.
class LearnedPlanCostModel {
 public:
  enum class ModelType { kGbdt, kMlp };

  explicit LearnedPlanCostModel(ModelType type);

  void Train(const std::vector<CostSample>& samples);
  /// Predicted time units for an annotated plan.
  double PredictTime(const PhysicalPlan& plan) const;
  double PredictFromFeatures(const std::vector<double>& features) const;

  /// Batch PredictFromFeatures over all rows of `x`: one batched model
  /// pass plus the scalar clamp/exp per row — bit-identical results.
  void PredictTimeBatch(const FeatureMatrix& x, std::span<double> out) const;

  /// Batched-inference counters of the underlying model.
  InferenceStatsSnapshot InferenceStats() const {
    return type_ == ModelType::kGbdt ? gbdt_.Stats() : mlp_.Stats();
  }

  std::string Name() const;
  bool trained() const { return trained_; }

 private:
  ModelType type_;
  GradientBoostedTrees gbdt_;
  Mlp mlp_;
  bool trained_ = false;
};

/// BASE-style calibrated cost model [5]: keeps the analytical formulas but
/// learns a linear recombination of the per-operator work terms that best
/// matches observed latency — "bridging the gap between cost and latency"
/// with far fewer samples than a free-form model.
class CalibratedCostModel {
 public:
  CalibratedCostModel() = default;

  void Train(const std::vector<CostSample>& samples);
  double PredictTime(const PhysicalPlan& plan) const;

  bool trained() const { return trained_; }

  /// The work-term vector the calibration regresses over:
  /// [scan rows, hash build rows, hash probe rows, nlj pairs, sort work,
  ///  merge rows, output rows].
  static std::vector<double> WorkTerms(const PhysicalPlan& plan);

 private:
  RidgeRegression regression_;
  bool trained_ = false;
};

/// Zero-shot-style cost model [16]: one shared regressor over
/// *schema-independent node-local* features; plan cost = sum of per-node
/// predictions. Because no feature references tables or columns, the model
/// transfers across databases (validated by the cost-model bench, which
/// trains on one dataset and tests on another).
class ZeroShotCostModel {
 public:
  ZeroShotCostModel() = default;

  void Train(const std::vector<CostSample>& samples);
  double PredictTime(const PhysicalPlan& plan,
                     const StatsCatalog& stats) const;

  /// Batched-inference counters of the shared node model.
  InferenceStatsSnapshot InferenceStats() const { return node_model_.Stats(); }

  bool trained() const { return trained_; }

 private:
  GradientBoostedTrees node_model_;
  bool trained_ = false;
};

/// Collects per-node features (annotated estimates) for a plan, aligned
/// bottom-up with Executor node profiles. Scan nodes use the raw table row
/// count as their input size (their work is driven by it) and the
/// estimated cardinality as output.
std::vector<std::vector<double>> PlanNodeFeatures(const PhysicalPlan& plan,
                                                  const StatsCatalog& stats);

/// As PlanNodeFeatures, appending one kNodeDim row per node to `out`
/// (which must have kNodeDim columns) — no per-node vector allocation.
void AppendPlanNodeFeatures(const PhysicalPlan& plan,
                            const StatsCatalog& stats, FeatureMatrix* out);

}  // namespace lqo

#endif  // LQO_COSTMODEL_LEARNED_COST_MODEL_H_
