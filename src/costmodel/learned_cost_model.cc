#include "costmodel/learned_cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lqo {
namespace {

double Log1p(double v) { return std::log(std::max(v, 0.0) + 1.0); }

// Bottom-up traversal collecting (node, depth) pairs in the same order the
// executor emits NodeProfiles (children before parents, left before right).
void CollectBottomUp(const PlanNode& node, int depth,
                     std::vector<std::pair<const PlanNode*, int>>* out) {
  if (node.kind == PlanNode::Kind::kJoin) {
    CollectBottomUp(*node.left, depth + 1, out);
    CollectBottomUp(*node.right, depth + 1, out);
  }
  out->emplace_back(&node, depth);
}

}  // namespace

std::vector<std::vector<double>> PlanNodeFeatures(const PhysicalPlan& plan,
                                                  const StatsCatalog& stats) {
  std::vector<std::pair<const PlanNode*, int>> nodes;
  CollectBottomUp(*plan.root, 0, &nodes);
  std::vector<std::vector<double>> features;
  features.reserve(nodes.size());
  for (const auto& [node, depth] : nodes) {
    double left = 0, right = 0;
    if (node->kind == PlanNode::Kind::kJoin) {
      left = std::max(node->left->estimated_cardinality, 0.0);
      right = std::max(node->right->estimated_cardinality, 0.0);
    } else {
      const std::string& table =
          plan.query->tables()[static_cast<size_t>(node->table_index)]
              .table_name;
      left = static_cast<double>(stats.Of(table).row_count);
    }
    features.push_back(PlanFeaturizer::NodeFeatures(
        node->kind, node->algorithm, left, right,
        std::max(node->estimated_cardinality, 0.0), depth));
  }
  return features;
}

void AppendPlanNodeFeatures(const PhysicalPlan& plan,
                            const StatsCatalog& stats, FeatureMatrix* out) {
  LQO_CHECK(out != nullptr);
  LQO_CHECK_EQ(out->cols(), PlanFeaturizer::kNodeDim);
  std::vector<std::pair<const PlanNode*, int>> nodes;
  CollectBottomUp(*plan.root, 0, &nodes);
  out->Reserve(out->rows() + nodes.size());
  for (const auto& [node, depth] : nodes) {
    double left = 0, right = 0;
    if (node->kind == PlanNode::Kind::kJoin) {
      left = std::max(node->left->estimated_cardinality, 0.0);
      right = std::max(node->right->estimated_cardinality, 0.0);
    } else {
      const std::string& table =
          plan.query->tables()[static_cast<size_t>(node->table_index)]
              .table_name;
      left = static_cast<double>(stats.Of(table).row_count);
    }
    PlanFeaturizer::NodeFeaturesInto(
        node->kind, node->algorithm, left, right,
        std::max(node->estimated_cardinality, 0.0), depth,
        out->AppendRow());
  }
}

CostSample MakeCostSample(const PhysicalPlan& plan,
                          const ExecutionResult& result,
                          const StatsCatalog& stats) {
  CostSample sample;
  sample.plan_features = PlanFeaturizer::Featurize(plan);
  sample.node_features = PlanNodeFeatures(plan, stats);
  sample.time_units = result.time_units;
  LQO_CHECK_EQ(sample.node_features.size(), result.node_profiles.size())
      << "plan/profile node count mismatch";
  for (const NodeProfile& profile : result.node_profiles) {
    sample.node_times.push_back(profile.time_units);
  }
  return sample;
}

LearnedPlanCostModel::LearnedPlanCostModel(ModelType type) : type_(type) {
  MlpOptions options;
  options.hidden_layers = {64, 32};
  options.epochs = 120;
  options.seed = 91;
  mlp_ = Mlp(options);
}

void LearnedPlanCostModel::Train(const std::vector<CostSample>& samples) {
  LQO_CHECK(!samples.empty());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const CostSample& sample : samples) {
    x.push_back(sample.plan_features);
    y.push_back(Log1p(sample.time_units));
  }
  if (type_ == ModelType::kGbdt) {
    gbdt_.Fit(x, y);
  } else {
    mlp_.Fit(x, y);
  }
  trained_ = true;
}

double LearnedPlanCostModel::PredictFromFeatures(
    const std::vector<double>& features) const {
  LQO_CHECK(trained_);
  double log_time = type_ == ModelType::kGbdt ? gbdt_.Predict(features)
                                              : mlp_.Predict(features);
  log_time = std::clamp(log_time, 0.0, 50.0);
  return std::exp(log_time) - 1.0;
}

void LearnedPlanCostModel::PredictTimeBatch(const FeatureMatrix& x,
                                            std::span<double> out) const {
  LQO_CHECK(trained_);
  LQO_CHECK_EQ(x.rows(), out.size());
  if (type_ == ModelType::kGbdt) {
    gbdt_.PredictBatch(x, out);
  } else {
    mlp_.PredictBatch(x, out);
  }
  for (size_t i = 0; i < out.size(); ++i) {
    double log_time = std::clamp(out[i], 0.0, 50.0);
    out[i] = std::exp(log_time) - 1.0;
  }
}

double LearnedPlanCostModel::PredictTime(const PhysicalPlan& plan) const {
  return PredictFromFeatures(PlanFeaturizer::Featurize(plan));
}

std::string LearnedPlanCostModel::Name() const {
  return type_ == ModelType::kGbdt ? "learned_gbdt" : "learned_mlp";
}

std::vector<double> CalibratedCostModel::WorkTerms(const PhysicalPlan& plan) {
  double scan_rows = 0, hash_build = 0, hash_probe = 0, nlj_pairs = 0;
  double sort_work = 0, merge_rows = 0, output_rows = 0;
  VisitPlanBottomUp(*plan.root, [&](const PlanNode& node) {
    double card = std::max(node.estimated_cardinality, 0.0);
    if (node.kind == PlanNode::Kind::kScan) {
      scan_rows += card;
      return;
    }
    double left = std::max(node.left->estimated_cardinality, 0.0);
    double right = std::max(node.right->estimated_cardinality, 0.0);
    output_rows += card;
    switch (node.algorithm) {
      case JoinAlgorithm::kHashJoin:
        hash_build += right;
        hash_probe += left;
        break;
      case JoinAlgorithm::kNestedLoopJoin:
        nlj_pairs += left * right;
        break;
      case JoinAlgorithm::kMergeJoin:
        sort_work += left * std::log2(std::max(left, 2.0)) +
                     right * std::log2(std::max(right, 2.0));
        merge_rows += left + right;
        break;
    }
  });
  return {scan_rows, hash_build, hash_probe, nlj_pairs,
          sort_work, merge_rows, output_rows};
}

void CalibratedCostModel::Train(const std::vector<CostSample>& samples) {
  LQO_CHECK(!samples.empty());
  // The calibration needs the raw work terms; plan_features do not keep
  // them, so CostSample stores node features from which terms could be
  // reconstructed — instead callers train via executed plans; here we use
  // the node-local features to rebuild approximate terms.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const CostSample& sample : samples) {
    // Reconstruct work terms from node features:
    // [scan,hash,nlj,merge one-hot, log l, log r, log out, logl+logr, depth]
    double scan_rows = 0, hash_build = 0, hash_probe = 0, nlj_pairs = 0;
    double sort_work = 0, merge_rows = 0, output_rows = 0;
    for (const std::vector<double>& f : sample.node_features) {
      double l = std::exp(f[4]) - 1.0;
      double r = std::exp(f[5]) - 1.0;
      double out = std::exp(f[6]) - 1.0;
      if (f[0] > 0.5) {
        scan_rows += l;
      } else {
        output_rows += out;
        if (f[1] > 0.5) {
          hash_build += r;
          hash_probe += l;
        } else if (f[2] > 0.5) {
          nlj_pairs += l * r;
        } else {
          sort_work += l * std::log2(std::max(l, 2.0)) +
                       r * std::log2(std::max(r, 2.0));
          merge_rows += l + r;
        }
      }
    }
    x.push_back({scan_rows, hash_build, hash_probe, nlj_pairs, sort_work,
                 merge_rows, output_rows});
    y.push_back(sample.time_units);
  }
  regression_ = RidgeRegression(1e-2);
  LQO_CHECK(regression_.Fit(x, y).ok());
  trained_ = true;
}

double CalibratedCostModel::PredictTime(const PhysicalPlan& plan) const {
  LQO_CHECK(trained_);
  return std::max(0.0, regression_.Predict(WorkTerms(plan)));
}

void ZeroShotCostModel::Train(const std::vector<CostSample>& samples) {
  LQO_CHECK(!samples.empty());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const CostSample& sample : samples) {
    LQO_CHECK_EQ(sample.node_features.size(), sample.node_times.size());
    for (size_t i = 0; i < sample.node_features.size(); ++i) {
      x.push_back(sample.node_features[i]);
      y.push_back(Log1p(sample.node_times[i]));
    }
  }
  GbdtOptions options;
  options.num_trees = 150;
  options.tree.max_depth = 5;
  node_model_ = GradientBoostedTrees(options);
  node_model_.Fit(x, y);
  trained_ = true;
}

double ZeroShotCostModel::PredictTime(const PhysicalPlan& plan,
                                      const StatsCatalog& stats) const {
  LQO_CHECK(trained_);
  // One node-feature matrix and one batched GBDT pass over every plan
  // node; the serial clamp/exp/sum follows the scalar loop's bottom-up
  // node order, so the total is bit-identical.
  FeatureMatrix features(PlanFeaturizer::kNodeDim);
  AppendPlanNodeFeatures(plan, stats, &features);
  std::vector<double> node_log_times(features.rows());
  node_model_.PredictBatch(features, node_log_times);
  double total = 0.0;
  for (double log_time : node_log_times) {
    total += std::exp(std::clamp(log_time, 0.0, 50.0)) - 1.0;
  }
  return total;
}

}  // namespace lqo
