#include "serving/plan_cache.h"

#include <cmath>
#include <mutex>

#include "common/logging.h"

namespace lqo {

PlanCacheStats PlanCacheStats::operator-(const PlanCacheStats& other) const {
  PlanCacheStats d;
  d.hits = hits - other.hits;
  d.misses = misses - other.misses;
  d.volatile_skips = volatile_skips - other.volatile_skips;
  d.installs = installs - other.installs;
  d.install_races = install_races - other.install_races;
  d.invalidations = invalidations - other.invalidations;
  d.demotions = demotions - other.demotions;
  d.observations = observations - other.observations;
  d.stale_feedback = stale_feedback - other.stale_feedback;
  // Gauges, not counters: report the later snapshot's value.
  d.entries = entries;
  d.cached_plans = cached_plans;
  return d;
}

PlanCache::PlanCache(PlanCacheOptions options)
    : options_(options), shards_(new Shard[options.shards]) {
  LQO_CHECK_GT(options_.shards, 0u);
  LQO_CHECK_EQ(options_.shards & (options_.shards - 1), 0u)
      << "PlanCache shard count must be a power of two";
  LQO_CHECK_GT(options_.drift_window, 0);
}

PlanCacheLookup PlanCache::Lookup(uint64_t type) const {
  Shard& shard = ShardOf(type);
  PlanCacheLookup result;
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.entries.find(type);
    if (it != shard.entries.end()) {
      const TypeState& state = it->second;
      result.always_optimize = state.always_optimize;
      result.generation = state.generation;
      if (state.root != nullptr && !state.always_optimize) {
        result.hit = true;
        result.root = state.root;
        result.install_estimated_rows = state.install_estimated_rows;
      }
    }
  }
  if (result.hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else if (result.always_optimize) {
    volatile_skips_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

bool PlanCache::TryInstall(uint64_t type, uint32_t generation,
                           const PhysicalPlan& plan, double estimated_rows) {
  LQO_CHECK(plan.root != nullptr) << "TryInstall of an empty plan";
  Shard& shard = ShardOf(type);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  TypeState& state = shard.entries[type];
  // The optimistic token from Lookup must still be current. A mismatch means
  // the plan was produced against a generation the drift detector has since
  // invalidated — installing it would resurrect the evicted plan, so the
  // protocol violation is fatal rather than silently cached.
  LQO_CHECK_EQ(generation, state.generation)
      << "stale plan install after invalidation (type " << type << ")";
  if (state.always_optimize) {
    // Demotion raced ahead of this planner; drop the plan, keep the demotion.
    install_races_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (state.root != nullptr) {
    install_races_.fetch_add(1, std::memory_order_relaxed);
    return false;  // first writer wins
  }
  state.root = std::shared_ptr<const PlanNode>(plan.root->Clone().release());
  state.install_estimated_rows = estimated_rows > 0.0 ? estimated_rows : -1.0;
  state.window_count = 0;
  state.window_time_sum = 0.0;
  state.window_high_qerror = 0;
  state.baseline_time = -1.0;
  installs_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

PlanObserveOutcome PlanCache::Observe(uint64_t type, uint32_t generation,
                                      double observed_rows,
                                      double time_units) {
  Shard& shard = ShardOf(type);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.entries.find(type);
  if (it == shard.entries.end() || it->second.generation != generation ||
      it->second.root == nullptr || it->second.always_optimize) {
    // Feedback for a plan that is no longer resident (evicted, demoted, or
    // never installed): benign, drop it.
    stale_feedback_.fetch_add(1, std::memory_order_relaxed);
    return PlanObserveOutcome::kDropped;
  }
  TypeState& state = it->second;
  observations_.fetch_add(1, std::memory_order_relaxed);

  double qerror = 1.0;
  if (state.install_estimated_rows > 0.0) {
    const double est = state.install_estimated_rows;
    const double obs = observed_rows < 1.0 ? 1.0 : observed_rows;
    qerror = est > obs ? est / obs : obs / est;
  }
  state.window_count += 1;
  state.window_time_sum += time_units;
  state.window_high_qerror += qerror > options_.qerror_threshold ? 1 : 0;
  state.obs_count += 1;
  state.time_sum += time_units;
  state.time_sq_sum += time_units * time_units;

  if (state.window_count < options_.drift_window) {
    return PlanObserveOutcome::kKept;
  }
  return ApplyPolicyLocked(&state);
}

PlanObserveOutcome PlanCache::ApplyPolicyLocked(TypeState* state) {
  const double window = static_cast<double>(options_.drift_window);
  const double mean_time = state->window_time_sum / window;
  const int high_qerror = state->window_high_qerror;
  state->window_count = 0;
  state->window_time_sum = 0.0;
  state->window_high_qerror = 0;

  // Parameter-sensitivity: lifetime latency CV across bindings. A type whose
  // executions swing wildly regardless of which plan is installed has no
  // single cacheable plan — demote it before it hurts tail latency again.
  if (state->obs_count >=
      static_cast<uint64_t>(options_.sensitivity_min_observations)) {
    const double n = static_cast<double>(state->obs_count);
    const double mean = state->time_sum / n;
    const double var = state->time_sq_sum / n - mean * mean;
    const double cv = mean > 0.0 ? std::sqrt(var > 0.0 ? var : 0.0) / mean : 0.0;
    if (cv > options_.sensitivity_cv) {
      state->always_optimize = true;
      state->root.reset();
      state->generation += 1;
      demotions_.fetch_add(1, std::memory_order_relaxed);
      return PlanObserveOutcome::kDemoted;
    }
  }

  // Majority vote: the plan is drifted only when most of the window's
  // bindings miss the install-time estimate, not when one outlier does.
  const bool qerror_drift = state->install_estimated_rows > 0.0 &&
                            2 * high_qerror >= options_.drift_window;
  bool latency_drift = false;
  if (state->baseline_time < 0.0) {
    // First completed window of this plan becomes its latency baseline.
    state->baseline_time = mean_time;
  } else if (state->baseline_time > 0.0) {
    latency_drift = mean_time > options_.latency_drift_ratio * state->baseline_time;
  }
  if (!qerror_drift && !latency_drift) {
    return PlanObserveOutcome::kKept;
  }

  state->reopt_count += 1;
  state->root.reset();
  state->install_estimated_rows = -1.0;
  state->baseline_time = -1.0;
  state->generation += 1;
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  if (state->reopt_count > options_.max_reoptimizations) {
    // The type keeps invalidating whatever plan is installed: stop paying the
    // re-plan churn and pin it to always-optimize.
    state->always_optimize = true;
    demotions_.fetch_add(1, std::memory_order_relaxed);
    return PlanObserveOutcome::kDemoted;
  }
  return PlanObserveOutcome::kInvalidated;
}

void PlanCache::Invalidate(uint64_t type) {
  Shard& shard = ShardOf(type);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.entries.find(type);
  if (it == shard.entries.end() || it->second.root == nullptr ||
      it->second.always_optimize) {
    return;
  }
  TypeState& state = it->second;
  state.root.reset();
  state.install_estimated_rows = -1.0;
  state.window_count = 0;
  state.window_time_sum = 0.0;
  state.window_high_qerror = 0;
  state.baseline_time = -1.0;
  state.generation += 1;
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.volatile_skips = volatile_skips_.load(std::memory_order_relaxed);
  stats.installs = installs_.load(std::memory_order_relaxed);
  stats.install_races = install_races_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.demotions = demotions_.load(std::memory_order_relaxed);
  stats.observations = observations_.load(std::memory_order_relaxed);
  stats.stale_feedback = stale_feedback_.load(std::memory_order_relaxed);
  for (size_t s = 0; s < options_.shards; ++s) {
    std::shared_lock<std::shared_mutex> lock(shards_[s].mutex);
    stats.entries += shards_[s].entries.size();
    // lint: unordered-iter-ok(commutative count of resident plans)
    for (const auto& [type, state] : shards_[s].entries) {
      (void)type;
      if (state.root != nullptr) stats.cached_plans += 1;
    }
  }
  return stats;
}

PhysicalPlan BindPlan(std::shared_ptr<const PlanNode> root,
                      const Query& query) {
  LQO_CHECK(root != nullptr) << "BindPlan of a null cached tree";
  PhysicalPlan plan;
  plan.query = &query;
  plan.root = root->Clone();
  return plan;
}

}  // namespace lqo
