#ifndef LQO_SERVING_PLAN_CACHE_H_
#define LQO_SERVING_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/plan.h"

namespace lqo {

/// Knobs of the learned invalidation policy (see DESIGN.md "Serving path").
struct PlanCacheOptions {
  /// Shard count (power of two). Lookups take one shard's shared lock, so
  /// unrelated types never contend.
  size_t shards = 16;
  /// Observations folded per drift check. Smaller reacts faster; larger is
  /// more robust to a single outlier binding.
  int drift_window = 8;
  /// Per-observation q-error (observed vs install-time estimated result
  /// cardinality) above which an observation counts as drifted. A window
  /// re-optimizes when the *majority* of its observations drift — a robust
  /// vote, so the occasional outlier binding of a skewed column (routine
  /// under Zipf data) cannot evict a plan that fits typical traffic.
  double qerror_threshold = 16.0;
  /// Re-optimize when the window-mean latency exceeds this multiple of the
  /// plan's baseline (its first completed window).
  double latency_drift_ratio = 3.0;
  /// After this many re-optimizations the type is demoted to
  /// always-optimize: the plan evidently cannot be amortized.
  int max_reoptimizations = 3;
  /// Parameter-sensitivity detection arms after this many lifetime
  /// observations of a type (across generations).
  int sensitivity_min_observations = 24;
  /// Demote when the lifetime coefficient of variation of a type's latency
  /// exceeds this: different parameter bindings want different plans, so
  /// caching any single plan is a tail-latency hazard.
  double sensitivity_cv = 2.0;
};

/// Counters since construction. Under the phased serving protocol (lookups
/// against a quiescent cache, ordered installs/observes — see ServingFrontEnd)
/// every field is bit-deterministic across thread counts; under free-form
/// concurrent use hits+misses+volatile_skips == Lookup() calls still holds.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t volatile_skips = 0;  // lookups of demoted (always-optimize) types
  uint64_t installs = 0;
  uint64_t install_races = 0;  // TryInstall lost to an earlier writer
  uint64_t invalidations = 0;  // drift-triggered generation bumps
  uint64_t demotions = 0;      // types demoted to always-optimize
  uint64_t observations = 0;   // feedback folds accepted
  uint64_t stale_feedback = 0; // feedback dropped (generation mismatch)
  uint64_t entries = 0;        // resident types
  uint64_t cached_plans = 0;   // resident types currently holding a plan

  PlanCacheStats operator-(const PlanCacheStats& other) const;
};

/// Outcome of one cache lookup. `generation` must be echoed into TryInstall
/// and Observe: it is the optimistic-concurrency token that makes a stale
/// install (planned against a generation that has since been invalidated)
/// detectable — and fatal, see TryInstall.
struct PlanCacheLookup {
  bool hit = false;
  /// Demoted type: the caller must optimize and must NOT install.
  bool always_optimize = false;
  uint32_t generation = 0;
  /// Shared immutable plan tree on a hit; bind it to the caller's query via
  /// BindPlan. Null on a miss.
  std::shared_ptr<const PlanNode> root;
  /// Install-time estimate of the result cardinality (-1 when the installed
  /// plan carried no estimate), backing the drift check.
  double install_estimated_rows = -1.0;
};

/// What Observe decided for the type after folding one execution.
enum class PlanObserveOutcome {
  kKept,         // plan stays installed
  kInvalidated,  // drift: plan dropped, generation bumped, next miss re-plans
  kDemoted,      // type demoted to always-optimize (sticky)
  kDropped,      // stale/unknown feedback, ignored
};

/// Parameterized plan cache: the serving-layer structure that turns one
/// optimization into amortized throughput. Keyed by structural query type
/// (QueryTypeHash — same type iff queries differ only in constants, the aqo
/// typing strategy), it stores one immutable plan tree per type and serves
/// it to every later binding of that type.
///
/// Concurrency: sharded by type hash; each shard is a shared-lock map.
/// Lookup is a pure read under the shard's shared lock (the plan tree is
/// handed out as a shared_ptr to an immutable node tree, so it stays valid
/// across invalidation). TryInstall/Observe take the shard's exclusive lock.
/// First writer wins on install; racing installers of the same (type,
/// generation) lose gracefully (install_races).
///
/// Generations: every entry carries a generation counter bumped on each
/// invalidation. Lookup returns the generation; TryInstall CHECK-fails when
/// handed a stale one — installing a plan that was produced against an
/// already-invalidated generation would resurrect exactly the plan the
/// drift detector evicted, so the protocol violation is fatal rather than
/// silent. Observe with a stale generation is the benign twin (feedback for
/// an evicted plan) and is dropped.
///
/// Learned invalidation: Observe folds (observed rows, latency) per type and
/// every `drift_window` observations takes a majority vote of per-observation
/// q-errors against the install-time estimate and compares the window mean
/// latency against
/// the plan's baseline window; either exceeding its threshold re-optimizes
/// (kInvalidated). Types that re-optimize more than `max_reoptimizations`
/// times, or whose lifetime latency CV exceeds `sensitivity_cv`
/// (parameter-sensitive: no single plan fits all bindings), are demoted to
/// always-optimize (kDemoted, sticky).
///
/// Determinism: plans are pure functions of (producer, type, binding), so a
/// lost install race installs a plan identical in role; stats and drift
/// decisions are bit-deterministic when lookups run against a quiescent
/// cache and installs/observes are applied in a deterministic order — the
/// phased protocol ServingFrontEnd/DriveSessions implement (DESIGN.md
/// "Serving path").
class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options = {});

  /// Classifies `type`'s cache state. Pure read (shared lock); never
  /// creates an entry.
  PlanCacheLookup Lookup(uint64_t type) const;

  /// Installs `plan`'s tree for `type` under optimistic token `generation`
  /// (from Lookup). First writer wins: returns true when this call
  /// installed, false when a plan was already resident (install_races).
  /// `estimated_rows` is the planner's estimate of the result cardinality
  /// (<= 0 when unavailable; drift checks then use latency only).
  /// CHECK-fails on a stale generation — see the class comment.
  bool TryInstall(uint64_t type, uint32_t generation, const PhysicalPlan& plan,
                  double estimated_rows);

  /// Folds one observed execution of the installed plan (generation must
  /// match) and runs the invalidation policy. Callers only observe
  /// executions of the *cached* plan: hits, plus the install winner's own
  /// execution.
  PlanObserveOutcome Observe(uint64_t type, uint32_t generation,
                             double observed_rows, double time_units);

  /// Operational hook: drops `type`'s plan and bumps its generation as if
  /// drift had triggered (counted as an invalidation). No-op for absent or
  /// demoted types.
  void Invalidate(uint64_t type);

  PlanCacheStats Stats() const;

  const PlanCacheOptions& options() const { return options_; }

 private:
  struct TypeState {
    uint32_t generation = 0;
    bool always_optimize = false;
    std::shared_ptr<const PlanNode> root;  // null while invalidated
    double install_estimated_rows = -1.0;
    int reopt_count = 0;
    // Windowed drift accounting for the installed plan.
    int window_count = 0;
    double window_time_sum = 0.0;
    int window_high_qerror = 0;  // observations with q-error > threshold
    double baseline_time = -1.0;  // mean of the plan's first window
    // Lifetime latency moments (across generations) for sensitivity.
    uint64_t obs_count = 0;
    double time_sum = 0.0;
    double time_sq_sum = 0.0;
  };

  struct Shard {
    // guards: entries — shared-lock reads (Lookup), exclusive-lock
    // installs/observes/invalidations. Plan trees are immutable and handed
    // out by shared_ptr, so they outlive any entry mutation.
    mutable std::shared_mutex mutex;
    std::unordered_map<uint64_t, TypeState> entries LQO_GUARDED_BY(mutex);
  };

  Shard& ShardOf(uint64_t type) const {
    return shards_[static_cast<size_t>(type) & (options_.shards - 1)];
  }

  /// Applies the drift/sensitivity policy after a fold. Caller holds the
  /// shard lock exclusively.
  PlanObserveOutcome ApplyPolicyLocked(TypeState* state);

  const PlanCacheOptions options_;
  /// Shards are constructed once and never resized; only entry maps mutate.
  const std::unique_ptr<Shard[]> shards_;
  // Lookup is logically const; its outcome counters are mutable.
  mutable std::atomic<uint64_t> hits_{0};    // relaxed: monotonic stat only
  mutable std::atomic<uint64_t> misses_{0};  // relaxed: monotonic stat only
  mutable std::atomic<uint64_t> volatile_skips_{0};  // relaxed: monotonic stat
  std::atomic<uint64_t> installs_{0};        // relaxed: monotonic stat only
  std::atomic<uint64_t> install_races_{0};   // relaxed: monotonic stat only
  std::atomic<uint64_t> invalidations_{0};   // relaxed: monotonic stat only
  std::atomic<uint64_t> demotions_{0};       // relaxed: monotonic stat only
  std::atomic<uint64_t> observations_{0};    // relaxed: monotonic stat only
  std::atomic<uint64_t> stale_feedback_{0};  // relaxed: monotonic stat only
};

/// Binds a cached plan tree to a concrete parameter binding: clones the
/// immutable tree and points the plan at `query`. Sound because every query
/// of a type shares the structure (tables, join graph, predicate shapes)
/// the tree's node indices refer to; only constants differ, and those live
/// in the query, not the plan.
PhysicalPlan BindPlan(std::shared_ptr<const PlanNode> root,
                      const Query& query);

}  // namespace lqo

#endif  // LQO_SERVING_PLAN_CACHE_H_
