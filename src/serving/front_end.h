#ifndef LQO_SERVING_FRONT_END_H_
#define LQO_SERVING_FRONT_END_H_

#include <cstdint>
#include <memory>
#include <string>

#include "e2e/framework.h"
#include "engine/executor.h"
#include "serving/plan_cache.h"
#include "serving/query_type.h"

namespace lqo {

/// Anything that can turn a query into a physical plan — the planning side
/// of the serving layer, so one front end serves the native DP optimizer,
/// every e2e learned optimizer, and the PilotScope drivers uniformly.
class PlanProducer {
 public:
  virtual ~PlanProducer() = default;

  /// Plans `query` without executing it.
  virtual StatusOr<PhysicalPlan> Plan(const Query& query) = 0;

  virtual std::string Name() const = 0;

  /// True when Plan() may be called concurrently from pool tasks. Learned
  /// producers typically mutate internal state (experience, model caches)
  /// and must be planned serially.
  virtual bool thread_safe() const { return false; }
};

/// The native DP optimizer as a producer. NativePlan is a pure function
/// (fresh CardinalityProvider per call), hence thread-safe.
class NativePlanProducer : public PlanProducer {
 public:
  explicit NativePlanProducer(const E2eContext* context);

  StatusOr<PhysicalPlan> Plan(const Query& query) override;
  std::string Name() const override { return "native"; }
  bool thread_safe() const override { return true; }

 private:
  const E2eContext* context_;
};

/// Wraps any e2e LearnedQueryOptimizer's ChoosePlan. Not thread-safe:
/// ChoosePlan may touch the optimizer's internal state.
class LearnedOptimizerPlanProducer : public PlanProducer {
 public:
  explicit LearnedOptimizerPlanProducer(LearnedQueryOptimizer* optimizer);

  StatusOr<PhysicalPlan> Plan(const Query& query) override;
  std::string Name() const override;

 private:
  LearnedQueryOptimizer* optimizer_;
};

/// Everything the front end did for one served query. Wall-clock fields are
/// reporting-only (never part of any determinism contract); row counts,
/// time_units, flags and the cache outcome are bit-deterministic.
struct ServeResult {
  uint64_t type = 0;           // producer-tagged query type
  bool cache_hit = false;      // executed a cached plan
  bool always_optimize = false;  // type is demoted; planned by policy
  bool planned = false;        // producer was invoked
  bool installed = false;      // this call installed the plan (won the race)
  bool observed = false;       // execution feedback reached the cache
  PlanObserveOutcome outcome = PlanObserveOutcome::kDropped;
  ExecutionResult execution;
  double plan_seconds = 0.0;   // wall-clock of the producer call (0 on hits)
  double exec_seconds = 0.0;   // wall-clock of bind + execute
};

/// The serving front end: query in, result out, one plan optimization
/// amortized over every binding of a query type.
///
/// Per query: canonicalize to a producer-tagged type (QueryTypeHash mixed
/// with the producer name, so one shared cache serves many optimizer
/// families without cross-family collisions), look the type up in the plan
/// cache, on a hit bind the cached tree to this binding's constants
/// (BindPlan) and execute, on a miss plan with the producer, install
/// first-writer-wins, execute, and feed the observed (rows, time_units)
/// back into the cache's drift detector.
///
/// `cache == nullptr` runs the optimize-every-query baseline: every query
/// is planned and executed, nothing is cached — the denominator of the
/// serving speedup gate.
///
/// Thread safety: TypeOf/Lookup/Execute are safe from pool tasks; Plan is
/// safe iff the producer says so; Install/Observe are cache-exclusive ops
/// that phased callers (DriveSessions) apply in deterministic serial order.
/// The one-shot Serve() is the serial convenience path (tests, warmup).
class ServingFrontEnd {
 public:
  /// All pointers are non-owning and must outlive the front end; `cache`
  /// may be null (baseline mode, see class comment).
  ServingFrontEnd(PlanCache* cache, PlanProducer* producer,
                  const Executor* executor);

  /// Producer-tagged type of `query`.
  uint64_t TypeOf(const Query& query) const;

  /// Cache lookup for a type; a guaranteed miss in baseline mode.
  PlanCacheLookup Lookup(uint64_t type) const;

  /// Plans with the producer (no caching, no execution).
  StatusOr<PhysicalPlan> Plan(const Query& query);

  /// First-writer-wins install of `plan` under the Lookup token
  /// `generation`; the install-time estimate is taken from the plan root's
  /// estimated_cardinality annotation. Returns whether this call installed.
  /// No-op (false) in baseline mode.
  bool Install(uint64_t type, uint32_t generation, const PhysicalPlan& plan);

  StatusOr<ExecutionResult> Execute(const PhysicalPlan& plan) const;

  /// Feeds one execution of the cached plan back into the drift detector.
  /// kDropped in baseline mode.
  PlanObserveOutcome Observe(uint64_t type, uint32_t generation,
                             const ExecutionResult& result);

  /// The whole serving path for one query, serially.
  StatusOr<ServeResult> Serve(const Query& query);

  PlanCache* cache() const { return cache_; }
  PlanProducer* producer() const { return producer_; }
  const Executor* executor() const { return executor_; }

 private:
  PlanCache* cache_;
  PlanProducer* producer_;
  const Executor* executor_;
  uint64_t producer_tag_ = 0;
};

}  // namespace lqo

#endif  // LQO_SERVING_FRONT_END_H_
