#include "serving/query_type.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace lqo {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

uint64_t MixHash(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t HashBytes(const std::string& s, uint64_t h) {
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;  // FNV-1a prime.
  }
  return h;
}

// Predicate *shape*: column and kind only. Every literal payload (value,
// lo/hi, in_values and even the IN-list length) is a constant and is
// deliberately excluded — that is the typing contract.
uint64_t HashPredicateShape(const Predicate& p) {
  uint64_t h = HashBytes(p.column, kFnvOffset);
  return MixHash(h ^ (static_cast<uint64_t>(p.kind) + 0x9e37u));
}

const char* PredicateKindName(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kEquals:
      return "=?";
    case PredicateKind::kRange:
      return " between ?";
    case PredicateKind::kIn:
      return " in (?)";
  }
  return "?";
}

}  // namespace

uint64_t QueryTypeHash(const Query& query) {
  // Tables fold *sequentially* in index order: cached plans reference
  // tables by query-table index, so the index -> table assignment is part
  // of the type (see the header). Predicate shapes within a table combine
  // by addition — their attachment order is a no-op to the executor.
  uint64_t tables_hash = kFnvOffset;
  for (int t = 0; t < query.num_tables(); ++t) {
    const std::string& name = query.tables()[static_cast<size_t>(t)].table_name;
    uint64_t shapes_hash = 0;
    for (const Predicate& p : query.PredicatesOf(t)) {
      shapes_hash += MixHash(HashPredicateShape(p));
    }
    uint64_t part = HashBytes(name, kFnvOffset);
    tables_hash =
        MixHash(tables_hash ^ MixHash(part ^ MixHash(shapes_hash + 0x517cc1b7u)));
  }

  // With indices pinned above, joins hash as index-qualified columns:
  // endpoint-symmetric per conjunct (a=b and b=a are the same join) and
  // commutative across the conjunct list (the executor picks applicable
  // conjuncts per join node, so list order is a no-op too).
  uint64_t joins_hash = 0;
  for (const QueryJoin& j : query.joins()) {
    uint64_t a = HashBytes(
        j.left_column,
        MixHash(static_cast<uint64_t>(j.left_table) + 0x2eu) ^ kFnvOffset);
    uint64_t b = HashBytes(
        j.right_column,
        MixHash(static_cast<uint64_t>(j.right_table) + 0x2eu) ^ kFnvOffset);
    joins_hash += MixHash((a ^ b) + MixHash(a + b));
  }
  uint64_t h = MixHash(tables_hash ^ MixHash(joins_hash + 0x85ebca6bu));

  // Output shape. Legacy COUNT(*) queries (empty select list) fold nothing,
  // so their hashes are unchanged from before output stages existed. The
  // select list folds *sequentially*: item order is the order of
  // ExecutionResult::output_cols, so it is part of the type.
  if (query.HasOutputStage()) {
    uint64_t out_hash = kFnvOffset;
    for (const OutputExpr& o : query.outputs()) {
      uint64_t e = HashBytes(o.column, kFnvOffset);
      e = MixHash(e ^ (static_cast<uint64_t>(o.kind) * 0x9e3779b9ull) ^
                  MixHash(static_cast<uint64_t>(o.func) + 0x7f4a7c15ull) ^
                  (static_cast<uint64_t>(
                       static_cast<int64_t>(o.table_index)) +
                   0x165667b1ull));
      out_hash = MixHash(out_hash ^ e);
    }
    if (query.has_group_by()) {
      uint64_t g = HashBytes(
          query.group_by_column(),
          MixHash(static_cast<uint64_t>(query.group_by_table()) + 0x2eu) ^
              kFnvOffset);
      out_hash = MixHash(out_hash ^ MixHash(g + 0xd6e8feb8u));
    }
    h = MixHash(h ^ MixHash(out_hash + 0x27d4eb2fu));
  }
  return h;
}

std::string QueryTypeKey(const Query& query) {
  // Same canonicalization as the hash, rendered: table parts in FROM order
  // (the index assignment is part of the type) with sorted '?'-masked
  // predicate shapes, then sorted index-qualified symmetric join conjuncts.
  std::string key;
  for (int t = 0; t < query.num_tables(); ++t) {
    std::vector<std::string> shapes;
    for (const Predicate& p : query.PredicatesOf(t)) {
      shapes.push_back(p.column + PredicateKindName(p.kind));
    }
    std::sort(shapes.begin(), shapes.end());
    key += query.tables()[static_cast<size_t>(t)].table_name + "{";
    for (const std::string& s : shapes) key += s + ";";
    key += "}|";
  }

  std::vector<std::string> join_parts;
  for (const QueryJoin& j : query.joins()) {
    std::string a = "#" + std::to_string(j.left_table) + "." + j.left_column;
    std::string b = "#" + std::to_string(j.right_table) + "." + j.right_column;
    if (b < a) std::swap(a, b);
    join_parts.push_back(a + "=" + b);
  }
  std::sort(join_parts.begin(), join_parts.end());

  key += "/";
  for (const std::string& p : join_parts) key += p + "|";

  // Output shape, in select-list order (order is part of the type — it is
  // the order of ExecutionResult::output_cols). Legacy COUNT(*) queries
  // append nothing, keeping their keys unchanged.
  if (query.HasOutputStage()) {
    key += ">";
    for (const OutputExpr& o : query.outputs()) {
      if (!o.ReferencesColumn()) {
        key += "COUNT(*)";
      } else {
        std::string c = "#" + std::to_string(o.table_index) + "." + o.column;
        if (o.kind == OutputExpr::Kind::kColumn) {
          key += c;
        } else {
          key += std::string(AggFuncName(o.func)) + "(" + c + ")";
        }
      }
      key += ";";
    }
    if (query.has_group_by()) {
      key += "@#" + std::to_string(query.group_by_table()) + "." +
             query.group_by_column();
    }
  }
  return key;
}

}  // namespace lqo
