#include "serving/query_type.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace lqo {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

uint64_t MixHash(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t HashBytes(const std::string& s, uint64_t h) {
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;  // FNV-1a prime.
  }
  return h;
}

// Predicate *shape*: column and kind only. Every literal payload (value,
// lo/hi, in_values and even the IN-list length) is a constant and is
// deliberately excluded — that is the typing contract.
uint64_t HashPredicateShape(const Predicate& p) {
  uint64_t h = HashBytes(p.column, kFnvOffset);
  return MixHash(h ^ (static_cast<uint64_t>(p.kind) + 0x9e37u));
}

const char* PredicateKindName(PredicateKind kind) {
  switch (kind) {
    case PredicateKind::kEquals:
      return "=?";
    case PredicateKind::kRange:
      return " between ?";
    case PredicateKind::kIn:
      return " in (?)";
  }
  return "?";
}

}  // namespace

uint64_t QueryTypeHash(const Query& query) {
  // Tables fold *sequentially* in index order: cached plans reference
  // tables by query-table index, so the index -> table assignment is part
  // of the type (see the header). Predicate shapes within a table combine
  // by addition — their attachment order is a no-op to the executor.
  uint64_t tables_hash = kFnvOffset;
  for (int t = 0; t < query.num_tables(); ++t) {
    const std::string& name = query.tables()[static_cast<size_t>(t)].table_name;
    uint64_t shapes_hash = 0;
    for (const Predicate& p : query.PredicatesOf(t)) {
      shapes_hash += MixHash(HashPredicateShape(p));
    }
    uint64_t part = HashBytes(name, kFnvOffset);
    tables_hash =
        MixHash(tables_hash ^ MixHash(part ^ MixHash(shapes_hash + 0x517cc1b7u)));
  }

  // With indices pinned above, joins hash as index-qualified columns:
  // endpoint-symmetric per conjunct (a=b and b=a are the same join) and
  // commutative across the conjunct list (the executor picks applicable
  // conjuncts per join node, so list order is a no-op too).
  uint64_t joins_hash = 0;
  for (const QueryJoin& j : query.joins()) {
    uint64_t a = HashBytes(
        j.left_column,
        MixHash(static_cast<uint64_t>(j.left_table) + 0x2eu) ^ kFnvOffset);
    uint64_t b = HashBytes(
        j.right_column,
        MixHash(static_cast<uint64_t>(j.right_table) + 0x2eu) ^ kFnvOffset);
    joins_hash += MixHash((a ^ b) + MixHash(a + b));
  }
  return MixHash(tables_hash ^ MixHash(joins_hash + 0x85ebca6bu));
}

std::string QueryTypeKey(const Query& query) {
  // Same canonicalization as the hash, rendered: table parts in FROM order
  // (the index assignment is part of the type) with sorted '?'-masked
  // predicate shapes, then sorted index-qualified symmetric join conjuncts.
  std::string key;
  for (int t = 0; t < query.num_tables(); ++t) {
    std::vector<std::string> shapes;
    for (const Predicate& p : query.PredicatesOf(t)) {
      shapes.push_back(p.column + PredicateKindName(p.kind));
    }
    std::sort(shapes.begin(), shapes.end());
    key += query.tables()[static_cast<size_t>(t)].table_name + "{";
    for (const std::string& s : shapes) key += s + ";";
    key += "}|";
  }

  std::vector<std::string> join_parts;
  for (const QueryJoin& j : query.joins()) {
    std::string a = "#" + std::to_string(j.left_table) + "." + j.left_column;
    std::string b = "#" + std::to_string(j.right_table) + "." + j.right_column;
    if (b < a) std::swap(a, b);
    join_parts.push_back(a + "=" + b);
  }
  std::sort(join_parts.begin(), join_parts.end());

  key += "/";
  for (const std::string& p : join_parts) key += p + "|";
  return key;
}

}  // namespace lqo
