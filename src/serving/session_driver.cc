#include "serving/session_driver.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace lqo {
namespace {

uint64_t MixHash(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void Fold(uint64_t* fp, uint64_t value) { *fp = MixHash(*fp ^ value); }

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Binding widths of a parameter-sensitive template: bindings alternate
// between near-point ranges and near-whole-span ranges, so no single cached
// plan fits — the latency-CV detector should demote the type.
constexpr double kSensitiveTight = 0.02;
constexpr double kSensitiveWide = 10.0;

// Per-round, per-session scratch of the phased replay.
struct Slot {
  uint64_t type = 0;
  PlanCacheLookup lookup;
  PhysicalPlan plan;       // miss path: the producer's plan
  bool planned = false;
  bool installed = false;
  double plan_seconds = 0.0;
  ExecutionResult exec;
  double exec_seconds = 0.0;
};

}  // namespace

std::vector<Query> BuildSessionQueries(const Catalog& catalog,
                                       const std::vector<Query>& templates,
                                       const SessionDriverOptions& options) {
  LQO_CHECK(!templates.empty());
  LQO_CHECK_GT(options.sessions, 0);
  LQO_CHECK_GT(options.rounds, 0);
  const size_t sessions = static_cast<size_t>(options.sessions);
  const size_t rounds = static_cast<size_t>(options.rounds);
  const int64_t num_templates = static_cast<int64_t>(templates.size());
  const int64_t num_sensitive = static_cast<int64_t>(
      std::llround(options.sensitive_fraction * static_cast<double>(num_templates)));
  const ZipfDistribution zipf(num_templates, options.zipf_s);

  std::vector<Query> queries(rounds * sessions);
  // Each session owns an independent DeriveSeed stream, so the matrix is a
  // pure function of (templates, options) at any thread count.
  ParallelFor(sessions, [&](size_t s) {
    Rng rng(DeriveSeed(options.seed, s));
    for (size_t r = 0; r < rounds; ++r) {
      const int64_t t = zipf.Sample(rng);
      double widen = 1.0;
      if (t < num_sensitive) {
        // The hottest Zipf ranks are the sensitive ones: their bindings
        // alternate tight/wide per issue.
        widen = (r % 2 == 0) ? kSensitiveTight : kSensitiveWide;
      } else if (options.drift_round >= 0 &&
                 r >= static_cast<size_t>(options.drift_round)) {
        widen = options.drift_widen;
      }
      queries[r * sessions + s] = ResampleConstants(
          catalog, templates[static_cast<size_t>(t)], rng, widen);
    }
  });
  return queries;
}

SessionReport DriveSessions(ServingFrontEnd& front_end,
                            const std::vector<Query>& queries,
                            const SessionDriverOptions& options) {
  const size_t sessions = static_cast<size_t>(options.sessions);
  const size_t rounds = static_cast<size_t>(options.rounds);
  LQO_CHECK_EQ(queries.size(), sessions * rounds);

  SessionReport report;
  report.serve_seconds.resize(queries.size(), 0.0);
  uint64_t fp = 0x9e3779b97f4a7c15ull;
  const PlanCacheStats before =
      front_end.cache() != nullptr ? front_end.cache()->Stats() : PlanCacheStats{};

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<Slot> slots(sessions);
  for (size_t r = 0; r < rounds; ++r) {
    for (Slot& slot : slots) slot = Slot{};
    const Query* round_queries = &queries[r * sessions];

    // Phase A: classify + look up, in parallel against the quiescent cache
    // (Lookup is a pure read; only atomic counters move, and their totals
    // are order-independent).
    ParallelFor(sessions, [&](size_t s) {
      slots[s].type = front_end.TypeOf(round_queries[s]);
      slots[s].lookup = front_end.Lookup(slots[s].type);
    });

    // Phase B: plan the misses. Parallel only when the producer allows it;
    // learned producers mutate internal state and plan serially in session
    // order, so their state evolution is thread-count-invariant.
    auto plan_one = [&](size_t s) {
      Slot& slot = slots[s];
      if (slot.lookup.hit) return;
      const auto start = std::chrono::steady_clock::now();
      auto planned = front_end.Plan(round_queries[s]);
      LQO_CHECK(planned.ok()) << planned.status().ToString();
      slot.plan_seconds = SecondsSince(start);
      slot.plan = std::move(*planned);
      slot.planned = true;
    };
    if (front_end.producer()->thread_safe()) {
      ParallelFor(sessions, plan_one);
    } else {
      for (size_t s = 0; s < sessions; ++s) plan_one(s);
    }

    // Phase C: install first-writer-wins, serially in session order — the
    // winner of a same-type race is then a deterministic fact, not a
    // scheduling accident.
    for (size_t s = 0; s < sessions; ++s) {
      Slot& slot = slots[s];
      if (slot.planned && !slot.lookup.always_optimize) {
        slot.installed =
            front_end.Install(slot.type, slot.lookup.generation, slot.plan);
      }
    }

    // Phase D: bind + execute in parallel (Executor::Execute is const and
    // thread-safe; results are index-addressed).
    ParallelFor(sessions, [&](size_t s) {
      Slot& slot = slots[s];
      const auto start = std::chrono::steady_clock::now();
      PhysicalPlan bound;
      const PhysicalPlan* to_run = &slot.plan;
      if (slot.lookup.hit) {
        bound = BindPlan(slot.lookup.root, round_queries[s]);
        to_run = &bound;
      }
      auto executed = front_end.Execute(*to_run);
      LQO_CHECK(executed.ok()) << executed.status().ToString() << " (round "
                               << r << " session " << s << " hit "
                               << slot.lookup.hit << ")";
      slot.exec = std::move(*executed);
      slot.exec_seconds = SecondsSince(start);
    });

    // Phase E: fold feedback and the fingerprint, serially in session
    // order. Only executions of the cached plan reach the drift detector:
    // hits plus the install winner (a losing racer ran its own plan, whose
    // feedback would contaminate the installed plan's statistics).
    for (size_t s = 0; s < sessions; ++s) {
      Slot& slot = slots[s];
      PlanObserveOutcome outcome = PlanObserveOutcome::kDropped;
      if (slot.lookup.hit || slot.installed) {
        outcome =
            front_end.Observe(slot.type, slot.lookup.generation, slot.exec);
      }
      report.queries += 1;
      report.cache_hits += slot.lookup.hit ? 1 : 0;
      report.planned += slot.planned ? 1 : 0;
      report.installs += slot.installed ? 1 : 0;
      report.total_rows += slot.exec.row_count;
      report.total_time_units += slot.exec.time_units;
      report.serve_seconds[r * sessions + s] =
          slot.plan_seconds + slot.exec_seconds;

      const uint64_t flags = (slot.lookup.hit ? 1u : 0u) |
                             (slot.planned ? 2u : 0u) |
                             (slot.installed ? 4u : 0u) |
                             (slot.lookup.always_optimize ? 8u : 0u) |
                             (static_cast<uint64_t>(outcome) << 4);
      Fold(&fp, slot.type);
      Fold(&fp, flags);
      Fold(&fp, slot.exec.row_count);
      Fold(&fp, std::bit_cast<uint64_t>(slot.exec.time_units));
    }
  }
  report.wall_seconds = SecondsSince(wall_start);

  if (front_end.cache() != nullptr) {
    const PlanCacheStats delta = front_end.cache()->Stats() - before;
    report.invalidations = delta.invalidations;
    report.demotions = delta.demotions;
    Fold(&fp, delta.hits);
    Fold(&fp, delta.misses);
    Fold(&fp, delta.volatile_skips);
    Fold(&fp, delta.installs);
    Fold(&fp, delta.install_races);
    Fold(&fp, delta.invalidations);
    Fold(&fp, delta.demotions);
    Fold(&fp, delta.observations);
    Fold(&fp, delta.stale_feedback);
  }
  report.fingerprint = fp;
  return report;
}

}  // namespace lqo
