#include "serving/front_end.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace lqo {
namespace {

uint64_t MixHash(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t HashName(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

NativePlanProducer::NativePlanProducer(const E2eContext* context)
    : context_(context) {
  LQO_CHECK(context_ != nullptr);
}

StatusOr<PhysicalPlan> NativePlanProducer::Plan(const Query& query) {
  return NativePlan(*context_, query);
}

LearnedOptimizerPlanProducer::LearnedOptimizerPlanProducer(
    LearnedQueryOptimizer* optimizer)
    : optimizer_(optimizer) {
  LQO_CHECK(optimizer_ != nullptr);
}

StatusOr<PhysicalPlan> LearnedOptimizerPlanProducer::Plan(const Query& query) {
  return optimizer_->ChoosePlan(query);
}

std::string LearnedOptimizerPlanProducer::Name() const {
  return optimizer_->Name();
}

ServingFrontEnd::ServingFrontEnd(PlanCache* cache, PlanProducer* producer,
                                 const Executor* executor)
    : cache_(cache), producer_(producer), executor_(executor) {
  LQO_CHECK(producer_ != nullptr);
  LQO_CHECK(executor_ != nullptr);
  producer_tag_ = HashName(producer_->Name());
}

uint64_t ServingFrontEnd::TypeOf(const Query& query) const {
  return MixHash(QueryTypeHash(query) ^ producer_tag_);
}

PlanCacheLookup ServingFrontEnd::Lookup(uint64_t type) const {
  if (cache_ == nullptr) return PlanCacheLookup{};  // baseline: always miss
  return cache_->Lookup(type);
}

StatusOr<PhysicalPlan> ServingFrontEnd::Plan(const Query& query) {
  return producer_->Plan(query);
}

bool ServingFrontEnd::Install(uint64_t type, uint32_t generation,
                              const PhysicalPlan& plan) {
  if (cache_ == nullptr) return false;
  const double estimated_rows =
      plan.root != nullptr ? plan.root->estimated_cardinality : -1.0;
  return cache_->TryInstall(type, generation, plan, estimated_rows);
}

StatusOr<ExecutionResult> ServingFrontEnd::Execute(
    const PhysicalPlan& plan) const {
  return executor_->Execute(plan);
}

PlanObserveOutcome ServingFrontEnd::Observe(uint64_t type, uint32_t generation,
                                            const ExecutionResult& result) {
  if (cache_ == nullptr) return PlanObserveOutcome::kDropped;
  return cache_->Observe(type, generation,
                         static_cast<double>(result.row_count),
                         result.time_units);
}

StatusOr<ServeResult> ServingFrontEnd::Serve(const Query& query) {
  ServeResult r;
  r.type = TypeOf(query);
  PlanCacheLookup lookup = Lookup(r.type);
  r.always_optimize = lookup.always_optimize;

  PhysicalPlan plan;
  if (lookup.hit) {
    r.cache_hit = true;
    plan = BindPlan(lookup.root, query);
  } else {
    const auto plan_start = std::chrono::steady_clock::now();
    auto planned = Plan(query);
    if (!planned.ok()) return planned.status();
    r.plan_seconds = SecondsSince(plan_start);
    r.planned = true;
    plan = std::move(*planned);
    if (!lookup.always_optimize) {
      r.installed = Install(r.type, lookup.generation, plan);
    }
  }

  const auto exec_start = std::chrono::steady_clock::now();
  auto executed = Execute(plan);
  if (!executed.ok()) return executed.status();
  r.exec_seconds = SecondsSince(exec_start);
  r.execution = std::move(*executed);

  // Only executions of the *cached* plan feed the drift detector: hits and
  // the install winner (whose plan is the cached plan by construction).
  // A losing racer executed its own plan; its feedback would contaminate
  // the installed plan's drift statistics.
  if (r.cache_hit || r.installed) {
    r.outcome = Observe(r.type, lookup.generation, r.execution);
    r.observed = true;
  }
  return r;
}

}  // namespace lqo
