#ifndef LQO_SERVING_SESSION_DRIVER_H_
#define LQO_SERVING_SESSION_DRIVER_H_

#include <cstdint>
#include <vector>

#include "query/workload.h"
#include "serving/front_end.h"

namespace lqo {

/// Knobs of the concurrent session replay.
struct SessionDriverOptions {
  /// Concurrently in-flight sessions; each issues one query per round.
  int sessions = 64;
  /// Queries per session.
  int rounds = 16;
  uint64_t seed = 7;
  /// Zipf skew of template popularity (rank r weight (r+1)^-s): hot query
  /// types dominate, as in real OLTP/serving traffic.
  double zipf_s = 1.1;
  /// From this round on (when >= 0), range widths are scaled by
  /// `drift_widen` — far from 1 in either direction shifts observed
  /// cardinalities away from the installed plans' install-time estimates,
  /// and the q-error drift detector must re-optimize. Tightening (<< 1) is
  /// the stronger signal on skewed data: ranges collapse toward points and
  /// result counts crater.
  int drift_round = -1;
  double drift_widen = 0.02;
  /// Fraction of templates (the hottest Zipf ranks) whose bindings
  /// alternate between very tight and near-whole-span ranges — the
  /// parameter-sensitive types the cache should demote to always-optimize.
  double sensitive_fraction = 0.0;
};

/// Aggregate outcome of one DriveSessions replay. Everything except the
/// wall-clock fields is bit-deterministic across LQO_THREADS settings; the
/// `fingerprint` folds the deterministic per-query results and the cache
/// stats delta, so any cross-thread-count divergence is one u64 compare
/// away.
struct SessionReport {
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t planned = 0;       // producer invocations
  uint64_t installs = 0;
  uint64_t invalidations = 0; // drift re-optimizations
  uint64_t demotions = 0;
  uint64_t total_rows = 0;
  double total_time_units = 0.0;  // simulated latency, deterministic
  uint64_t fingerprint = 0;

  /// Wall-clock per-query serve latency (plan when planned + bind+execute),
  /// one entry per query in (round, session) order. Reporting only.
  std::vector<double> serve_seconds;
  double wall_seconds = 0.0;

  double HitRate() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(queries);
  }
  double Throughput() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(queries) / wall_seconds;
  }
};

/// Materializes the full query matrix the replay will issue: for each
/// session a DeriveSeed-derived private RNG stream samples a template per
/// round (Zipf over `templates`) and resamples its constants
/// (ResampleConstants), applying the drift / parameter-sensitivity
/// scenarios from `options`. Entry [round * sessions + session] is round
/// `round`'s query of session `session`. Deterministic for (templates,
/// options) regardless of thread count, and the returned vector is stable —
/// plans may point into it for the driver's lifetime.
std::vector<Query> BuildSessionQueries(const Catalog& catalog,
                                       const std::vector<Query>& templates,
                                       const SessionDriverOptions& options);

/// Replays `queries` (from BuildSessionQueries) through `front_end` with
/// `options.sessions` concurrent in-flight sessions over the global
/// ThreadPool.
///
/// Each round runs in phases so real concurrency and bit-determinism
/// coexist (DESIGN.md "Serving path"): (A) all sessions classify + look up
/// in parallel against the quiescent cache; (B) missed sessions plan — in
/// parallel when the producer is thread-safe, else serially in session
/// order; (C) plans install first-writer-wins serially in session order;
/// (D) all sessions bind + execute in parallel; (E) feedback folds into the
/// drift detector serially in session order, and the fingerprint folds the
/// per-query results. Stats, invalidations, demotions and the fingerprint
/// are therefore identical at any LQO_THREADS.
SessionReport DriveSessions(ServingFrontEnd& front_end,
                            const std::vector<Query>& queries,
                            const SessionDriverOptions& options);

}  // namespace lqo

#endif  // LQO_SERVING_SESSION_DRIVER_H_
