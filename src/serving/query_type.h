#ifndef LQO_SERVING_QUERY_TYPE_H_
#define LQO_SERVING_QUERY_TYPE_H_

#include <cstdint>
#include <string>

#include "query/query.h"

namespace lqo {

/// Structural query typing, following aqo's preprocessing strategy: two
/// queries are of the same *type* if and only if they are equal or differ
/// only in their constants. The hash covers base tables, the join graph
/// (endpoint tables + columns, endpoint-symmetric) and every predicate's
/// *shape* — its table, column and kind — while stripping every literal:
/// the kEquals value, the kRange bounds, and the kIn values (including the
/// IN-list length, which is just "how many constants", not structure).
///
/// Predicate and join-conjunct *attachment order* is neutral (the executor
/// re-derives both from the query by table index, so reordering them is a
/// no-op), but the FROM-clause table order is folded sequentially: a cached
/// plan's scan and join nodes reference tables by query-table index, so two
/// queries may only share a type if index i names the same table in both.
/// Same tables in a different FROM order is not a constants-only difference
/// and hashes differently. This is the key of the serving-layer plan cache:
/// one plan optimized for a type is rebound to every later parameter
/// binding of it, and any same-type query must be a sound binding target.
///
/// The output stage is structure too: the select list folds sequentially
/// (item order is the order of ExecutionResult::output_cols) along with the
/// optional GROUP BY key, so queries with different output shapes type
/// differently. Legacy COUNT(*) queries (empty select list) fold nothing and
/// keep the hashes they had before output stages existed.
uint64_t QueryTypeHash(const Query& query);

/// Human-readable canonical rendering of the type with constants replaced by
/// '?' — the debugging/test companion of QueryTypeHash. Equal type keys
/// imply equal type hashes.
std::string QueryTypeKey(const Query& query);

}  // namespace lqo

#endif  // LQO_SERVING_QUERY_TYPE_H_
