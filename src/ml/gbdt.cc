#include "ml/gbdt.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace lqo {

void GradientBoostedTrees::Fit(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& targets) {
  LQO_CHECK(!rows.empty());
  LQO_CHECK_EQ(rows.size(), targets.size());
  trees_.clear();

  base_prediction_ =
      std::accumulate(targets.begin(), targets.end(), 0.0) /
      static_cast<double>(targets.size());

  std::vector<double> residuals(targets.size());
  std::vector<double> current(targets.size(), base_prediction_);
  Rng rng(options_.seed);

  for (int t = 0; t < options_.num_trees; ++t) {
    for (size_t i = 0; i < targets.size(); ++i) {
      residuals[i] = targets[i] - current[i];
    }
    // Row subsample.
    std::vector<size_t> indices;
    if (options_.subsample < 1.0) {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(options_.subsample *
                                 static_cast<double>(rows.size())));
      indices = rng.SampleWithoutReplacement(rows.size(), k);
    }
    // Boosting is inherently sequential across trees; the parallelism here
    // is inside Fit (per-feature split search) and in the per-row update
    // below, both of which write index-addressed slots.
    RegressionTree tree;
    tree.Fit(rows, residuals, options_.tree, indices, nullptr);
    ParallelFor(rows.size(), [&](size_t i) {
      current[i] += options_.learning_rate * tree.Predict(rows[i]);
    });
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  ConfigureCompact(options_.compact_min_total_nodes);
}

size_t GradientBoostedTrees::total_nodes() const {
  size_t total = 0;
  for (const RegressionTree& tree : trees_) total += tree.num_nodes();
  return total;
}

void GradientBoostedTrees::ConfigureCompact(size_t min_total_nodes) {
  options_.compact_min_total_nodes = min_total_nodes;
  if (fitted_ && total_nodes() > min_total_nodes) {
    compact_.Pack(trees_);
  } else {
    compact_.Clear();
  }
}

double GradientBoostedTrees::Predict(const std::vector<double>& row) const {
  LQO_CHECK(fitted_);
  double y = base_prediction_;
  for (const RegressionTree& tree : trees_) {
    y += options_.learning_rate * tree.Predict(row);
  }
  return y;
}

void GradientBoostedTrees::PredictBatch(const FeatureMatrix& x,
                                        std::span<double> out) const {
  LQO_CHECK(fitted_);
  LQO_CHECK_EQ(x.rows(), out.size());
  if (x.empty()) return;
  ScopedInferenceTimer timer(&inference_, x.rows());

  constexpr size_t kMorselRows = 256;
  size_t morsels = (x.rows() + kMorselRows - 1) / kMorselRows;
  // Boosted trees are shallow; when the whole ensemble's SoA node arrays
  // are cache-resident, a row-major walk (scalar Predict's exact FP order,
  // no tree_out scratch traffic) is fastest. Huge ensembles fall back to
  // tree-major blocks so each tree's nodes stay hot across the morsel, and
  // when the size gate packed the compact quantized layout that kernel
  // reads the float/uint16 arenas instead of the SoA arrays. Every kernel
  // accumulates per row in boosting order — identical results (the compact
  // comparisons match by the build-time quantization contract); the cutoff
  // depends on the model alone, never the input.
  constexpr size_t kCacheResidentTotalNodes = 1u << 15;
  size_t soa_nodes = total_nodes();
  auto run_morsel = [&](size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(x.rows(), begin + kMorselRows);
    size_t n = end - begin;
    if (compact_.empty() && soa_nodes <= kCacheResidentTotalNodes) {
      for (size_t r = begin; r < end; ++r) {
        const double* row = x.Row(r);
        double y = base_prediction_;
        for (const RegressionTree& tree : trees_) {
          y += options_.learning_rate * tree.PredictRow(row);
        }
        out[r] = y;
      }
      return;
    }
    std::vector<double> tree_out(n);
    for (size_t i = 0; i < n; ++i) out[begin + i] = base_prediction_;
    for (size_t t = 0; t < trees_.size(); ++t) {
      if (compact_.empty()) {
        trees_[t].PredictRange(x, begin, end, tree_out.data());
      } else {
        compact_.PredictRangeTree(t, x, begin, end, tree_out.data());
      }
      for (size_t i = 0; i < n; ++i) {
        out[begin + i] += options_.learning_rate * tree_out[i];
      }
    }
  };
  if (morsels <= 1) {
    run_morsel(0);
  } else {
    ParallelFor(morsels, run_morsel);
  }
}

}  // namespace lqo
