#include "ml/gbdt.h"

#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace lqo {

void GradientBoostedTrees::Fit(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& targets) {
  LQO_CHECK(!rows.empty());
  LQO_CHECK_EQ(rows.size(), targets.size());
  trees_.clear();

  base_prediction_ =
      std::accumulate(targets.begin(), targets.end(), 0.0) /
      static_cast<double>(targets.size());

  std::vector<double> residuals(targets.size());
  std::vector<double> current(targets.size(), base_prediction_);
  Rng rng(options_.seed);

  for (int t = 0; t < options_.num_trees; ++t) {
    for (size_t i = 0; i < targets.size(); ++i) {
      residuals[i] = targets[i] - current[i];
    }
    // Row subsample.
    std::vector<size_t> indices;
    if (options_.subsample < 1.0) {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(options_.subsample *
                                 static_cast<double>(rows.size())));
      indices = rng.SampleWithoutReplacement(rows.size(), k);
    }
    // Boosting is inherently sequential across trees; the parallelism here
    // is inside Fit (per-feature split search) and in the per-row update
    // below, both of which write index-addressed slots.
    RegressionTree tree;
    tree.Fit(rows, residuals, options_.tree, indices, nullptr);
    ParallelFor(rows.size(), [&](size_t i) {
      current[i] += options_.learning_rate * tree.Predict(rows[i]);
    });
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoostedTrees::Predict(const std::vector<double>& row) const {
  LQO_CHECK(fitted_);
  double y = base_prediction_;
  for (const RegressionTree& tree : trees_) {
    y += options_.learning_rate * tree.Predict(row);
  }
  return y;
}

}  // namespace lqo
