#include "ml/gbdt.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace lqo {
namespace {

// Longest root-to-leaf path (in edges) of a fitted tree's SoA arrays.
// Leaves store -1 children, so the walk terminates at them.
int TreeDepth(const RegressionTree& tree) {
  std::span<const int32_t> left = tree.node_left();
  std::span<const int32_t> right = tree.node_right();
  if (left.empty()) return 0;
  std::vector<std::pair<int32_t, int>> stack = {{0, 0}};
  int depth = 0;
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    if (left[node] >= 0) stack.push_back({left[node], d + 1});
    if (right[node] >= 0) stack.push_back({right[node], d + 1});
  }
  return depth;
}

}  // namespace

void GradientBoostedTrees::Fit(const std::vector<std::vector<double>>& rows,
                               const std::vector<double>& targets) {
  LQO_CHECK(!rows.empty());
  LQO_CHECK_EQ(rows.size(), targets.size());
  trees_.clear();

  base_prediction_ =
      std::accumulate(targets.begin(), targets.end(), 0.0) /
      static_cast<double>(targets.size());

  std::vector<double> residuals(targets.size());
  std::vector<double> current(targets.size(), base_prediction_);
  Rng rng(options_.seed);

  for (int t = 0; t < options_.num_trees; ++t) {
    for (size_t i = 0; i < targets.size(); ++i) {
      residuals[i] = targets[i] - current[i];
    }
    // Row subsample.
    std::vector<size_t> indices;
    if (options_.subsample < 1.0) {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(options_.subsample *
                                 static_cast<double>(rows.size())));
      indices = rng.SampleWithoutReplacement(rows.size(), k);
    }
    // Boosting is inherently sequential across trees; the parallelism here
    // is inside Fit (per-feature split search) and in the per-row update
    // below, both of which write index-addressed slots.
    RegressionTree tree;
    tree.Fit(rows, residuals, options_.tree, indices, nullptr);
    ParallelFor(rows.size(), [&](size_t i) {
      current[i] += options_.learning_rate * tree.Predict(rows[i]);
    });
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  ConfigureCompact(options_.compact_min_total_nodes);
}

size_t GradientBoostedTrees::total_nodes() const {
  size_t total = 0;
  for (const RegressionTree& tree : trees_) total += tree.num_nodes();
  return total;
}

void GradientBoostedTrees::ConfigureCompact(size_t min_total_nodes) {
  options_.compact_min_total_nodes = min_total_nodes;
  if (fitted_ && total_nodes() > min_total_nodes) {
    compact_.Pack(trees_);
  } else {
    compact_.Clear();
  }
}

double GradientBoostedTrees::Predict(const std::vector<double>& row) const {
  LQO_CHECK(fitted_);
  double y = base_prediction_;
  for (const RegressionTree& tree : trees_) {
    y += options_.learning_rate * tree.Predict(row);
  }
  return y;
}

void GradientBoostedTrees::PredictBatch(const FeatureMatrix& x,
                                        std::span<double> out) const {
  LQO_CHECK(fitted_);
  LQO_CHECK_EQ(x.rows(), out.size());
  if (x.empty()) return;
  ScopedInferenceTimer timer(&inference_, x.rows());

  constexpr size_t kMorselRows = 256;
  size_t morsels = (x.rows() + kMorselRows - 1) / kMorselRows;
  // Boosted trees are shallow; when the whole ensemble's SoA node arrays
  // are cache-resident, a row-major walk (scalar Predict's exact FP order,
  // no tree_out scratch traffic) is fastest. Huge ensembles fall back to
  // tree-major blocks so each tree's nodes stay hot across the morsel, and
  // when the size gate packed the compact quantized layout that kernel
  // reads the float/uint16 arenas instead of the SoA arrays. Every kernel
  // accumulates per row in boosting order — identical results (the compact
  // comparisons match by the build-time quantization contract); the cutoff
  // depends on the model alone, never the input.
  constexpr size_t kCacheResidentTotalNodes = 1u << 15;
  size_t soa_nodes = total_nodes();
  // Exact per-tree descent lengths, computed once per batch: the lockstep
  // kernel below iterates each tree for its true depth instead of
  // re-checking lane liveness, which would cost an extra all-leaf pass
  // per tree (a ~20% tax on depth-4 boosted trees).
  std::vector<int> tree_depths;
  if (compact_.empty() && soa_nodes <= kCacheResidentTotalNodes) {
    tree_depths.reserve(trees_.size());
    for (const RegressionTree& tree : trees_) {
      tree_depths.push_back(TreeDepth(tree));
    }
  }
  auto run_morsel = [&](size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(x.rows(), begin + kMorselRows);
    size_t n = end - begin;
    if (compact_.empty() && soa_nodes <= kCacheResidentTotalNodes) {
      // Interleaved lockstep kernel: kLanes independent root-to-leaf
      // descents advance together through each tree, so the (serially
      // dependent) node lookups of one lane overlap the others' instead of
      // stalling the pipeline. The descent direction is a conditional move,
      // lanes that reach a leaf early hold position (leaves are
      // self-consistent: feature -1, so `interior` stays false), the loop
      // runs exactly tree_depths[t] iterations, and each lane accumulates
      // its leaf value in boosting order from base_prediction_ — the exact
      // comparisons and FP addition order of per-row Predict.
      constexpr size_t kLanes = 8;
      const double lr = options_.learning_rate;
      size_t r = begin;
      for (; r + kLanes <= end; r += kLanes) {
        const double* rows[kLanes];
        double acc[kLanes];
        for (size_t j = 0; j < kLanes; ++j) {
          rows[j] = x.Row(r + j);
          acc[j] = base_prediction_;
        }
        for (size_t t = 0; t < trees_.size(); ++t) {
          const RegressionTree& tree = trees_[t];
          const int32_t* feature = tree.node_features().data();
          const double* threshold = tree.node_thresholds().data();
          const double* value = tree.node_values().data();
          const int32_t* left = tree.node_left().data();
          const int32_t* right = tree.node_right().data();
          int32_t idx[kLanes] = {};
          for (int d = 0; d < tree_depths[t]; ++d) {
            for (size_t j = 0; j < kLanes; ++j) {
              int32_t i = idx[j];
              int32_t f = feature[i];
              bool interior = f >= 0;
              size_t fi = interior ? static_cast<size_t>(f) : 0;
              int32_t next = rows[j][fi] <= threshold[i] ? left[i] : right[i];
              idx[j] = interior ? next : i;
            }
          }
          for (size_t j = 0; j < kLanes; ++j) {
            acc[j] += lr * value[idx[j]];
          }
        }
        for (size_t j = 0; j < kLanes; ++j) out[r + j] = acc[j];
      }
      // Remainder lanes (< kLanes rows) take the per-row walk.
      for (; r < end; ++r) {
        const double* row = x.Row(r);
        double y = base_prediction_;
        for (const RegressionTree& tree : trees_) {
          y += options_.learning_rate * tree.PredictRow(row);
        }
        out[r] = y;
      }
      return;
    }
    std::vector<double> tree_out(n);
    for (size_t i = 0; i < n; ++i) out[begin + i] = base_prediction_;
    for (size_t t = 0; t < trees_.size(); ++t) {
      if (compact_.empty()) {
        trees_[t].PredictRange(x, begin, end, tree_out.data());
      } else {
        compact_.PredictRangeTree(t, x, begin, end, tree_out.data());
      }
      for (size_t i = 0; i < n; ++i) {
        out[begin + i] += options_.learning_rate * tree_out[i];
      }
    }
  };
  if (morsels <= 1) {
    run_morsel(0);
  } else {
    ParallelFor(morsels, run_morsel);
  }
}

}  // namespace lqo
