#ifndef LQO_ML_COMPACT_FOREST_H_
#define LQO_ML_COMPACT_FOREST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/tree.h"

namespace lqo {

/// Compact quantized node layout for tree ensembles whose SoA arrays spill
/// out of L2 — the inference-substrate phase-2 layout (see DESIGN.md
/// "Inference path").
///
/// The PR 3 SoA arrays cost ~28 bytes/node (int32 feature + double
/// threshold + double value + two int32 children). This layout packs every
/// tree of an ensemble into shared arenas at ~10 bytes/node plus 8 bytes
/// per leaf:
///
///   feature_[n]    uint16  split feature id; 0xFFFF marks a leaf
///   threshold_[n]  float   split threshold (quantized at *build* time)
///   child_[n]      int32   interior: arena index of the left child, with
///                          the right child packed adjacently at child+1;
///                          leaf: index into leaf_value_
///   leaf_value_[l] double  leaf predictions, full precision
///   root_[t]       int32   arena index of tree t's root
///
/// Predictions are bit-for-bit identical to the source RegressionTrees:
/// RegressionTree::BuildNode quantizes thresholds to float before
/// partitioning, so the double SoA arrays only ever hold float-representable
/// thresholds and `row[f] <= threshold` compares identically against either
/// layout. Leaf values stay double, so the returned prediction is the exact
/// value the scalar path returns. Enforced by tests/ml_test.cc and the
/// CheckBatchMatchesScalar gate in bench_micro_components.
class CompactForest {
 public:
  /// Sentinel feature id marking a leaf node.
  static constexpr uint16_t kLeaf = 0xFFFF;

  /// Packs `trees` (children-adjacent breadth-first per tree) into the
  /// shared arenas, replacing any previous contents. Every tree must be
  /// fitted and use feature ids < 0xFFFF.
  void Pack(std::span<const RegressionTree> trees);

  void Clear();

  bool empty() const { return root_.empty(); }
  size_t num_trees() const { return root_.size(); }
  size_t total_nodes() const { return feature_.size(); }

  /// Arena bytes per node actually paid by this ensemble (feature +
  /// threshold + child arenas plus the leaf-value arena), for layout
  /// comparisons in BENCH_cache.json.
  size_t bytes() const {
    return feature_.size() * (sizeof(uint16_t) + sizeof(float) +
                              sizeof(int32_t)) +
           leaf_value_.size() * sizeof(double) +
           root_.size() * sizeof(int32_t);
  }

  /// Prediction of tree `t` for one row (raw pointer, no length check).
  double PredictRowTree(size_t t, const double* row) const;

  /// Serial kernel over rows [begin, end) of `x` for tree `t`, writing
  /// out[i - begin] — the compact twin of RegressionTree::PredictRange.
  /// Ensemble batch kernels call this per (tree, morsel).
  void PredictRangeTree(size_t t, const FeatureMatrix& x, size_t begin,
                        size_t end, double* out) const;

 private:
  // Shared arenas across all trees (layout documented above).
  std::vector<uint16_t> feature_;
  std::vector<float> threshold_;
  std::vector<int32_t> child_;
  std::vector<double> leaf_value_;
  std::vector<int32_t> root_;
};

/// The GBDT reuses the identical arena layout; only the ensemble-level
/// accumulation (base + learning-rate-scaled sums in boosting order)
/// differs, and that lives in GradientBoostedTrees::PredictBatch.
using CompactGbdt = CompactForest;

}  // namespace lqo

#endif  // LQO_ML_COMPACT_FOREST_H_
