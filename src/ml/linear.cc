#include "ml/linear.h"

#include <cmath>

#include "common/logging.h"

namespace lqo {

bool CholeskySolve(std::vector<std::vector<double>> a, std::vector<double> b,
                   std::vector<double>* x) {
  LQO_CHECK(x != nullptr);
  size_t n = a.size();
  LQO_CHECK_EQ(b.size(), n);
  // In-place Cholesky: a becomes L (lower triangular).
  for (size_t j = 0; j < n; ++j) {
    double diag = a[j][j];
    for (size_t k = 0; k < j; ++k) diag -= a[j][k] * a[j][k];
    if (diag <= 0.0) {
      // Tiny jitter for near-singular systems; bail if still not PD.
      diag += 1e-9;
      if (diag <= 0.0) return false;
    }
    a[j][j] = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double v = a[i][j];
      for (size_t k = 0; k < j; ++k) v -= a[i][k] * a[j][k];
      a[i][j] = v / a[j][j];
    }
  }
  // Forward solve L y = b.
  for (size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (size_t k = 0; k < i; ++k) v -= a[i][k] * b[k];
    b[i] = v / a[i][i];
  }
  // Backward solve L^T x = y.
  x->assign(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double v = b[i];
    for (size_t k = i + 1; k < n; ++k) v -= a[k][i] * (*x)[k];
    (*x)[i] = v / a[i][i];
  }
  return true;
}

Status RidgeRegression::Fit(const std::vector<std::vector<double>>& rows,
                            const std::vector<double>& targets) {
  if (rows.empty()) return Status::InvalidArgument("empty training set");
  if (rows.size() != targets.size()) {
    return Status::InvalidArgument("rows/targets size mismatch");
  }
  size_t f = rows[0].size();
  size_t d = f + 1;  // +1 intercept, appended as the last feature.

  // Normal equations: (X^T X + lambda I) w = X^T y.
  std::vector<std::vector<double>> gram(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  std::vector<double> extended(d);
  for (size_t r = 0; r < rows.size(); ++r) {
    LQO_CHECK_EQ(rows[r].size(), f);
    for (size_t j = 0; j < f; ++j) extended[j] = rows[r][j];
    extended[f] = 1.0;
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i; j < d; ++j) gram[i][j] += extended[i] * extended[j];
      xty[i] += extended[i] * targets[r];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < i; ++j) gram[i][j] = gram[j][i];
  }
  for (size_t i = 0; i < f; ++i) gram[i][i] += lambda_;  // don't penalize bias
  gram[f][f] += 1e-9;

  std::vector<double> solution;
  if (!CholeskySolve(std::move(gram), std::move(xty), &solution)) {
    return Status::Internal("ridge system not positive definite");
  }
  weights_.assign(solution.begin(), solution.begin() + static_cast<long>(f));
  intercept_ = solution[f];
  return Status::Ok();
}

double RidgeRegression::Predict(const std::vector<double>& row) const {
  LQO_CHECK(fitted());
  LQO_CHECK_EQ(row.size(), weights_.size());
  double y = intercept_;
  for (size_t j = 0; j < row.size(); ++j) y += weights_[j] * row[j];
  return y;
}

void RidgeRegression::PredictBatch(const FeatureMatrix& x,
                                   std::span<double> out) const {
  LQO_CHECK(fitted());
  LQO_CHECK_EQ(x.rows(), out.size());
  if (x.empty()) return;
  LQO_CHECK_EQ(x.cols(), weights_.size());
  ScopedInferenceTimer timer(&inference_, x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.Row(r);
    double y = intercept_;
    for (size_t j = 0; j < weights_.size(); ++j) y += weights_[j] * row[j];
    out[r] = y;
  }
}

}  // namespace lqo
