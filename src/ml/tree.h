#ifndef LQO_ML_TREE_H_
#define LQO_ML_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/inference_stats.h"

namespace lqo {

/// Options shared by the tree-based regressors.
struct TreeOptions {
  int max_depth = 6;
  int min_samples_leaf = 4;
  /// Features considered per split; <= 0 means all features.
  int max_features = -1;
};

/// A CART regression tree with exact variance-reduction splits. Building
/// block for the random forest and GBDT, i.e. the "tree-based ensembles /
/// XGBoost" row of the paper's Table 1 (Dutt et al. [10], [9]).
///
/// Nodes are stored structure-of-arrays (parallel feature / threshold /
/// value / left / right buffers) so batch traversal streams four small
/// contiguous arrays instead of striding over an array of node structs.
class RegressionTree {
 public:
  /// Fits on the rows selected by `indices` (all rows if empty). When
  /// `rng` is non-null and options.max_features > 0, each split considers a
  /// random feature subset (for forests).
  void Fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets, const TreeOptions& options,
           const std::vector<size_t>& indices = {}, Rng* rng = nullptr);

  double Predict(const std::vector<double>& row) const;
  /// Raw-pointer variant used by the batch kernels (no length check).
  double PredictRow(const double* row) const;

  /// Batch prediction over all rows of `x`, bit-for-bit identical to
  /// per-row Predict. Morsel-parallel over the global pool; each morsel
  /// writes its own index-addressed slice of `out`, so results are the
  /// same at any LQO_THREADS. Records inference counters.
  void PredictBatch(const FeatureMatrix& x, std::span<double> out) const;

  /// Serial block-traversal kernel over rows [begin, end), writing
  /// out[i - begin]. Ensemble batch kernels call this per morsel (their
  /// own counters then cover the whole ensemble batch).
  void PredictRange(const FeatureMatrix& x, size_t begin, size_t end,
                    double* out) const;

  /// Batched-inference counters (rows scored via PredictBatch).
  InferenceStatsSnapshot Stats() const { return inference_.Snapshot(); }

  bool fitted() const { return !feature_.empty(); }
  size_t num_nodes() const { return feature_.size(); }

  /// Read-only views of the SoA node arrays, for packing into the compact
  /// quantized layout (ml/compact_forest.h). Thresholds are quantized to
  /// float at build time, so every stored double is exactly float
  /// representable (see BuildNode).
  std::span<const int32_t> node_features() const { return feature_; }
  std::span<const double> node_thresholds() const { return threshold_; }
  std::span<const double> node_values() const { return value_; }
  std::span<const int32_t> node_left() const { return left_; }
  std::span<const int32_t> node_right() const { return right_; }

 private:
  /// Appends a leaf node with `value` and returns its index.
  int AddNode(double value);

  int BuildNode(const std::vector<std::vector<double>>& rows,
                const std::vector<double>& targets,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, const TreeOptions& options, Rng* rng);

  // Structure-of-arrays node storage. A node is a leaf iff feature < 0;
  // interior nodes route row[feature] <= threshold to left, else right.
  std::vector<int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<double> value_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;

  mutable InferenceCounters inference_;
};

}  // namespace lqo

#endif  // LQO_ML_TREE_H_
