#ifndef LQO_ML_TREE_H_
#define LQO_ML_TREE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lqo {

/// Options shared by the tree-based regressors.
struct TreeOptions {
  int max_depth = 6;
  int min_samples_leaf = 4;
  /// Features considered per split; <= 0 means all features.
  int max_features = -1;
};

/// A CART regression tree with exact variance-reduction splits. Building
/// block for the random forest and GBDT, i.e. the "tree-based ensembles /
/// XGBoost" row of the paper's Table 1 (Dutt et al. [10], [9]).
class RegressionTree {
 public:
  /// Fits on the rows selected by `indices` (all rows if empty). When
  /// `rng` is non-null and options.max_features > 0, each split considers a
  /// random feature subset (for forests).
  void Fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets, const TreeOptions& options,
           const std::vector<size_t>& indices = {}, Rng* rng = nullptr);

  double Predict(const std::vector<double>& row) const;

  bool fitted() const { return !nodes_.empty(); }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Leaf iff feature < 0.
    int feature = -1;
    double threshold = 0.0;  // go left if x[feature] <= threshold
    double value = 0.0;      // leaf prediction
    int left = -1;
    int right = -1;
  };

  int BuildNode(const std::vector<std::vector<double>>& rows,
                const std::vector<double>& targets,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, const TreeOptions& options, Rng* rng);

  std::vector<Node> nodes_;
};

}  // namespace lqo

#endif  // LQO_ML_TREE_H_
