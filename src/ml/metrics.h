#ifndef LQO_ML_METRICS_H_
#define LQO_ML_METRICS_H_

#include <vector>

namespace lqo {

/// q-error of a cardinality estimate: max(est/true, true/est), with both
/// sides clamped to >= 1 row (the standard convention in the CE literature).
double QError(double estimate, double truth);

/// Summary of a q-error distribution.
struct QErrorSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double geometric_mean = 0.0;
};

QErrorSummary SummarizeQErrors(const std::vector<double>& qerrors);

/// Mean squared / absolute error.
double MeanSquaredError(const std::vector<double>& predictions,
                        const std::vector<double>& targets);
double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<double>& targets);

/// Coefficient of determination; 1 is perfect, 0 matches predicting the
/// mean, negative is worse than the mean.
double R2Score(const std::vector<double>& predictions,
               const std::vector<double>& targets);

}  // namespace lqo

#endif  // LQO_ML_METRICS_H_
