#ifndef LQO_ML_LINEAR_H_
#define LQO_ML_LINEAR_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/inference_stats.h"

namespace lqo {

/// Ridge (L2-regularized least squares) regression solved in closed form
/// via the normal equations with a Cholesky factorization. The first model
/// family applied to cardinality estimation (Malik et al. [36]).
class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}

  /// Fits weights (including an intercept) to rows/targets.
  Status Fit(const std::vector<std::vector<double>>& rows,
             const std::vector<double>& targets);

  double Predict(const std::vector<double>& row) const;

  /// Batch prediction over all rows of `x`, bit-for-bit identical to
  /// per-row Predict (same j-ascending dot product per row).
  void PredictBatch(const FeatureMatrix& x, std::span<double> out) const;

  /// Batched-inference counters (rows scored via PredictBatch).
  InferenceStatsSnapshot Stats() const { return inference_.Snapshot(); }

  bool fitted() const { return !weights_.empty(); }
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  double lambda_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  mutable InferenceCounters inference_;
};

/// Solves the symmetric positive-definite system A x = b in place via
/// Cholesky; returns false if A is not SPD (after jitter). Exposed for the
/// mixture-model estimator which also solves least-squares systems.
bool CholeskySolve(std::vector<std::vector<double>> a, std::vector<double> b,
                   std::vector<double>* x);

}  // namespace lqo

#endif  // LQO_ML_LINEAR_H_
