#ifndef LQO_ML_INFERENCE_STATS_H_
#define LQO_ML_INFERENCE_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace lqo {

/// Point-in-time view of a model's batched-inference counters: how many
/// rows it scored through PredictBatch, in how many batches, and how long
/// the batch kernels spent. The benchlib harness reads these to report
/// planning-time inference throughput per learned component.
struct InferenceStatsSnapshot {
  uint64_t rows = 0;
  uint64_t batches = 0;
  double seconds = 0.0;

  double RowsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(rows) / seconds : 0.0;
  }

  InferenceStatsSnapshot operator-(const InferenceStatsSnapshot& o) const {
    return {rows - o.rows, batches - o.batches, seconds - o.seconds};
  }
  InferenceStatsSnapshot& operator+=(const InferenceStatsSnapshot& o) {
    rows += o.rows;
    batches += o.batches;
    seconds += o.seconds;
    return *this;
  }
};

/// Thread-safe accumulator behind every model's Stats(). PredictBatch may
/// be called concurrently from pool workers, so the counters are atomics;
/// they are recorded once per batch (never per row or per morsel), keeping
/// the hot kernels free of shared writes. Copyable so models that own one
/// keep their value semantics (the counters copy by value).
class InferenceCounters {
 public:
  InferenceCounters() = default;
  InferenceCounters(const InferenceCounters& other) { CopyFrom(other); }
  InferenceCounters& operator=(const InferenceCounters& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  void Record(uint64_t rows, double seconds) {
    rows_.fetch_add(rows, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
  }

  InferenceStatsSnapshot Snapshot() const {
    InferenceStatsSnapshot snapshot;
    snapshot.rows = rows_.load(std::memory_order_relaxed);
    snapshot.batches = batches_.load(std::memory_order_relaxed);
    snapshot.seconds =
        static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
    return snapshot;
  }

  void Reset() {
    rows_.store(0, std::memory_order_relaxed);
    batches_.store(0, std::memory_order_relaxed);
    nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  void CopyFrom(const InferenceCounters& other) {
    rows_.store(other.rows_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    batches_.store(other.batches_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    nanos_.store(other.nanos_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }

  // Relaxed throughout: independent monotonic counters bumped from worker
  // threads, read via Stats() snapshots; no ordering with model state.
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> batches_{0};  // relaxed: monotonic stat only
  std::atomic<uint64_t> nanos_{0};    // relaxed: monotonic stat only
};

/// RAII timer feeding an InferenceCounters from a PredictBatch scope.
class ScopedInferenceTimer {
 public:
  ScopedInferenceTimer(InferenceCounters* counters, uint64_t rows)
      : counters_(counters),
        rows_(rows),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedInferenceTimer() {
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    counters_->Record(rows_, elapsed.count());
  }

  ScopedInferenceTimer(const ScopedInferenceTimer&) = delete;
  ScopedInferenceTimer& operator=(const ScopedInferenceTimer&) = delete;

 private:
  InferenceCounters* counters_;
  uint64_t rows_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lqo

#endif  // LQO_ML_INFERENCE_STATS_H_
