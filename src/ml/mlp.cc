#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats_util.h"
#include "common/thread_pool.h"

namespace lqo {

double Sigmoid(double x) {
  if (x >= 0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

void Mlp::InitNetwork(size_t input_dim) {
  layers_.clear();
  Rng rng(options_.seed);
  std::vector<int> dims;
  dims.push_back(static_cast<int>(input_dim));
  for (int h : options_.hidden_layers) dims.push_back(h);
  dims.push_back(1);

  for (size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    layer.in = dims[l];
    layer.out = dims[l + 1];
    size_t w_size = static_cast<size_t>(layer.in) * static_cast<size_t>(layer.out);
    layer.w.resize(w_size);
    // He initialization for ReLU nets.
    double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.w) w = rng.Gaussian(0.0, scale);
    layer.b.assign(static_cast<size_t>(layer.out), 0.0);
    layer.mw.assign(w_size, 0.0);
    layer.vw.assign(w_size, 0.0);
    layer.mb.assign(static_cast<size_t>(layer.out), 0.0);
    layer.vb.assign(static_cast<size_t>(layer.out), 0.0);
    layers_.push_back(std::move(layer));
  }
  adam_t_ = 0;
}

double Mlp::Forward(const std::vector<double>& x,
                    std::vector<std::vector<double>>* zs,
                    std::vector<std::vector<double>>* as) const {
  std::vector<double> activation = x;
  if (zs != nullptr) {
    zs->clear();
    as->clear();
    as->push_back(activation);
  }
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    LQO_CHECK_EQ(activation.size(), static_cast<size_t>(layer.in));
    std::vector<double> z(static_cast<size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double v = layer.b[static_cast<size_t>(o)];
      const double* wrow = &layer.w[static_cast<size_t>(o) *
                                    static_cast<size_t>(layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        v += wrow[i] * activation[static_cast<size_t>(i)];
      }
      z[static_cast<size_t>(o)] = v;
    }
    bool last = (l + 1 == layers_.size());
    std::vector<double> a = z;
    if (!last) {
      for (double& v : a) v = std::max(0.0, v);  // ReLU
    }
    if (zs != nullptr) {
      zs->push_back(z);
      as->push_back(a);
    }
    activation = std::move(a);
  }
  return activation[0];
}

void Mlp::Backward(double g, const std::vector<std::vector<double>>& zs,
                   const std::vector<std::vector<double>>& as,
                   std::vector<Layer>* grads) const {
  // delta holds dL/dz for the current layer, starting at the output.
  std::vector<double> delta = {g};
  for (size_t li = layers_.size(); li > 0; --li) {
    size_t l = li - 1;
    const Layer& layer = layers_[l];
    Layer& grad = (*grads)[l];
    const std::vector<double>& input = as[l];
    for (int o = 0; o < layer.out; ++o) {
      double d = delta[static_cast<size_t>(o)];
      grad.b[static_cast<size_t>(o)] += d;
      double* grow = &grad.w[static_cast<size_t>(o) *
                             static_cast<size_t>(layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        grow[i] += d * input[static_cast<size_t>(i)];
      }
    }
    if (l == 0) break;
    // Propagate to previous layer through W and the ReLU mask.
    std::vector<double> prev(static_cast<size_t>(layer.in), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double d = delta[static_cast<size_t>(o)];
      const double* wrow = &layer.w[static_cast<size_t>(o) *
                                    static_cast<size_t>(layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        prev[static_cast<size_t>(i)] += wrow[i] * d;
      }
    }
    const std::vector<double>& z_prev = zs[l - 1];
    for (size_t i = 0; i < prev.size(); ++i) {
      if (z_prev[i] <= 0.0) prev[i] = 0.0;
    }
    delta = std::move(prev);
  }
}

void Mlp::AdamStep(const std::vector<Layer>& grads, double batch_scale) {
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  ++adam_t_;
  double bias1 = 1.0 - std::pow(kBeta1, adam_t_);
  double bias2 = 1.0 - std::pow(kBeta2, adam_t_);
  for (size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    const Layer& grad = grads[l];
    auto update = [&](std::vector<double>& param, const std::vector<double>& g,
                      std::vector<double>& m, std::vector<double>& v) {
      for (size_t i = 0; i < param.size(); ++i) {
        double gi = g[i] * batch_scale + options_.l2 * param[i];
        m[i] = kBeta1 * m[i] + (1 - kBeta1) * gi;
        v[i] = kBeta2 * v[i] + (1 - kBeta2) * gi * gi;
        double mhat = m[i] / bias1;
        double vhat = v[i] / bias2;
        param[i] -= options_.learning_rate * mhat / (std::sqrt(vhat) + kEps);
      }
    };
    update(layer.w, grad.w, layer.mw, layer.vw);
    update(layer.b, grad.b, layer.mb, layer.vb);
  }
}

void Mlp::Fit(const std::vector<std::vector<double>>& rows,
              const std::vector<double>& targets) {
  LQO_CHECK(!rows.empty());
  LQO_CHECK_EQ(rows.size(), targets.size());
  input_standardizer_.Fit(rows);
  std::vector<std::vector<double>> x;
  x.reserve(rows.size());
  for (const auto& r : rows) x.push_back(input_standardizer_.Transform(r));

  std::vector<double> y = targets;
  if (options_.loss == MlpOptions::Loss::kSquared) {
    target_mean_ = Mean(y);
    target_std_ = StdDev(y);
    if (target_std_ < 1e-12) target_std_ = 1.0;
    for (double& v : y) v = (v - target_mean_) / target_std_;
  } else {
    target_mean_ = 0.0;
    target_std_ = 1.0;
  }

  InitNetwork(x[0].size());
  Rng rng(options_.seed + 1);
  std::vector<size_t> order(x.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<Layer> grads = layers_;  // same shapes; values reset per batch.
  auto zero_grads = [&]() {
    for (Layer& g : grads) {
      std::fill(g.w.begin(), g.w.end(), 0.0);
      std::fill(g.b.begin(), g.b.end(), 0.0);
    }
  };

  std::vector<std::vector<double>> zs, as;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options_.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(options_.batch_size));
      zero_grads();
      for (size_t i = start; i < end; ++i) {
        size_t row = order[i];
        double out = Forward(x[row], &zs, &as);
        double g;
        if (options_.loss == MlpOptions::Loss::kSquared) {
          g = out - y[row];
        } else {
          g = Sigmoid(out) - y[row];
        }
        Backward(g, zs, as, &grads);
      }
      AdamStep(grads, 1.0 / static_cast<double>(end - start));
    }
  }
  fitted_ = true;
}

void Mlp::FitPairwise(const std::vector<std::vector<double>>& first,
                      const std::vector<std::vector<double>>& second,
                      const std::vector<double>& labels) {
  LQO_CHECK(!first.empty());
  LQO_CHECK_EQ(first.size(), second.size());
  LQO_CHECK_EQ(first.size(), labels.size());
  // Standardize over the union of both sides.
  std::vector<std::vector<double>> all = first;
  all.insert(all.end(), second.begin(), second.end());
  input_standardizer_.Fit(all);
  std::vector<std::vector<double>> xa, xb;
  xa.reserve(first.size());
  xb.reserve(second.size());
  for (const auto& r : first) xa.push_back(input_standardizer_.Transform(r));
  for (const auto& r : second) xb.push_back(input_standardizer_.Transform(r));
  target_mean_ = 0.0;
  target_std_ = 1.0;

  InitNetwork(xa[0].size());
  Rng rng(options_.seed + 1);
  std::vector<size_t> order(xa.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<Layer> grads = layers_;
  auto zero_grads = [&]() {
    for (Layer& g : grads) {
      std::fill(g.w.begin(), g.w.end(), 0.0);
      std::fill(g.b.begin(), g.b.end(), 0.0);
    }
  };

  std::vector<std::vector<double>> zs_a, as_a, zs_b, as_b;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options_.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(options_.batch_size));
      zero_grads();
      for (size_t i = start; i < end; ++i) {
        size_t pair = order[i];
        double sa = Forward(xa[pair], &zs_a, &as_a);
        double sb = Forward(xb[pair], &zs_b, &as_b);
        // RankNet: P(a wins) = sigmoid(sa - sb); dL/dsa = p - y; dL/dsb = -(p - y).
        double p = Sigmoid(sa - sb);
        double g = p - labels[pair];
        Backward(g, zs_a, as_a, &grads);
        Backward(-g, zs_b, as_b, &grads);
      }
      AdamStep(grads, 1.0 / static_cast<double>(end - start));
    }
  }
  fitted_ = true;
}

void Mlp::ForwardBlock(const FeatureMatrix& x, size_t begin, size_t end,
                       double* out) const {
  size_t n = end - begin;
  size_t max_dim = input_standardizer_.num_features();
  for (const Layer& layer : layers_) {
    max_dim = std::max(max_dim, static_cast<size_t>(layer.out));
  }

  // Two ping-pong activation buffers in COLUMN-major block layout:
  // cur[i * n + r] is feature i of block row r. Each weight w[o][i] then
  // multiplies a contiguous run of n rows, which the compiler turns into
  // SIMD fma over the block — while each row's dot product still
  // accumulates in ascending input order, exactly the scalar Forward's
  // floating-point order, so batch == scalar bit for bit.
  std::vector<double> buf_a(n * max_dim);
  std::vector<double> buf_b(n * max_dim);
  double* cur = buf_a.data();
  double* next = buf_b.data();

  // Standardize + clamp each input row (the same extrapolation guard
  // Predict applies), scattered into the column-major block.
  size_t in_dim = input_standardizer_.num_features();
  std::vector<double> row_scratch(in_dim);
  for (size_t r = 0; r < n; ++r) {
    input_standardizer_.TransformInto(x.Row(begin + r), row_scratch.data());
    for (size_t j = 0; j < in_dim; ++j) {
      cur[j * n + r] = std::clamp(row_scratch[j], -5.0, 5.0);
    }
  }

  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    bool last = (l + 1 == layers_.size());
    for (int o = 0; o < layer.out; ++o) {
      double* z = next + static_cast<size_t>(o) * n;
      double bias = layer.b[static_cast<size_t>(o)];
      for (size_t r = 0; r < n; ++r) z[r] = bias;
      const double* wrow = &layer.w[static_cast<size_t>(o) *
                                    static_cast<size_t>(layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        double w = wrow[i];
        const double* act = cur + static_cast<size_t>(i) * n;
        for (size_t r = 0; r < n; ++r) z[r] += w * act[r];
      }
      if (!last) {
        for (size_t r = 0; r < n; ++r) z[r] = std::max(0.0, z[r]);  // ReLU
      }
    }
    std::swap(cur, next);
  }

  // The output layer has a single unit, so its column is the block's
  // prediction vector.
  for (size_t r = 0; r < n; ++r) {
    out[r] = cur[r] * target_std_ + target_mean_;
  }
}

void Mlp::PredictBatch(const FeatureMatrix& x, std::span<double> out) const {
  LQO_CHECK(fitted_);
  LQO_CHECK_EQ(x.rows(), out.size());
  if (x.empty()) return;
  ScopedInferenceTimer timer(&inference_, x.rows());

  constexpr size_t kMorselRows = 128;
  size_t morsels = (x.rows() + kMorselRows - 1) / kMorselRows;
  auto run_morsel = [&](size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(x.rows(), begin + kMorselRows);
    ForwardBlock(x, begin, end, out.data() + begin);
  };
  if (morsels <= 1) {
    run_morsel(0);
  } else {
    ParallelFor(morsels, run_morsel);
  }
}

double Mlp::Predict(const std::vector<double>& row) const {
  LQO_CHECK(fitted_);
  std::vector<double> x = input_standardizer_.Transform(row);
  // Bound extrapolation: inputs far outside the training distribution are
  // clamped so the network saturates instead of predicting wildly (the
  // same conservatism tree ensembles get for free from their leaves).
  for (double& v : x) v = std::clamp(v, -5.0, 5.0);
  double out = Forward(x, nullptr, nullptr);
  return out * target_std_ + target_mean_;
}

double Mlp::PredictProba(const std::vector<double>& row) const {
  return Sigmoid(Predict(row));
}

double Mlp::CompareProba(const std::vector<double>& a,
                         const std::vector<double>& b) const {
  return Sigmoid(Predict(a) - Predict(b));
}

}  // namespace lqo
