#ifndef LQO_ML_FEATURE_CACHE_H_
#define LQO_ML_FEATURE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "ml/dataset.h"

namespace lqo {

/// Counters of one FeatureCache since construction. Under concurrent access
/// the hit/miss split may vary run to run (two threads can miss the same key
/// simultaneously); hits + misses == number of Lookup() calls always holds.
struct FeatureCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Rows currently resident.
  uint64_t rows = 0;
};

/// Plan-signature feature cache — the inference-substrate phase-2 cache (see
/// DESIGN.md "Inference path"). Featurizing a plan walks the whole operator
/// tree and consults the cardinality estimator at every node; across retrain
/// epochs the harness re-featurizes the same (query, candidate plan) pairs
/// over and over. Feature rows are pure functions of the structural key
/// (query KeyHash mixed with the plan signature) given a fixed featurizer
/// version, so they can be computed once and served from here on every later
/// epoch — and shared across optimizers that use the same featurizer.
///
/// Locking protocol mirrors the frozen CardinalityProvider: Lookup() copies
/// the row out under a shared lock (a span would dangle across eviction);
/// a miss computes the row outside any lock and commits it via Insert()
/// under an exclusive lock, first writer wins. Because rows are pure
/// functions of the key, racing writers always carry identical rows, so
/// cached results are bit-for-bit identical at any thread count.
///
/// Invalidation: every call carries the featurizer's version stamp. A lookup
/// with a version other than the resident one wholesale-clears the cache
/// (counted in evictions) and adopts the new version — rows from an older
/// featurizer can never be served. Inserting under a stale version is a
/// programming error and CHECK-fails: compute-then-insert must happen under
/// one version, i.e. bump versions only between epochs, not mid-flight.
class FeatureCache {
 public:
  /// `dim` is the width every row must have; `max_rows` bounds residency
  /// (reaching it wholesale-clears — plan populations are epoch-periodic, so
  /// LRU bookkeeping would cost more than the rare full rebuild).
  explicit FeatureCache(size_t dim, size_t max_rows = 1u << 18);

  size_t dim() const { return dim_; }

  /// Copies the cached row for `key` into `out` (dim() doubles) and returns
  /// true, or returns false on a miss. A `version` differing from the
  /// resident one clears the cache first (see invalidation above), which
  /// always misses.
  bool Lookup(uint64_t key, uint32_t version, double* out);

  /// Commits the row for `key` (dim() doubles). First writer wins: a key
  /// that is already resident keeps its existing row (identical by purity).
  /// CHECK-fails if `version` is not the resident version.
  void Insert(uint64_t key, uint32_t version, const double* row);

  FeatureCacheStats Stats() const;

 private:
  /// Wholesale-clears rows (not counters). Caller holds mutex_ exclusively.
  void ClearLocked() LQO_REQUIRES(mutex_);

  const size_t dim_;
  const size_t max_rows_;
  /// Featurizer version the resident rows were computed under.
  uint32_t version_ LQO_GUARDED_BY(mutex_) = 0;
  /// Row storage; slots_ maps key -> row index. Rows are append-only
  /// between clears, so an index handed out under the lock stays valid
  /// until the next exclusive-lock clear.
  FeatureMatrix rows_ LQO_GUARDED_BY(mutex_);
  /// Keys are pre-mixed hashes; identity-hashing avoids a second pass.
  struct IdentityHash {
    size_t operator()(uint64_t h) const { return static_cast<size_t>(h); }
  };
  std::unordered_map<uint64_t, size_t, IdentityHash> slots_
      LQO_GUARDED_BY(mutex_);
  // guards: version_, rows_, slots_ — shared-lock reads (Lookup hit path),
  // exclusive-lock inserts/clears; rows are computed outside any lock.
  mutable std::shared_mutex mutex_;
  std::atomic<uint64_t> hits_{0};       // relaxed: monotonic stat only
  std::atomic<uint64_t> misses_{0};     // relaxed: monotonic stat only
  std::atomic<uint64_t> evictions_{0};  // relaxed: monotonic stat only
};

}  // namespace lqo

#endif  // LQO_ML_FEATURE_CACHE_H_
