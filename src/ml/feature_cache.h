#ifndef LQO_ML_FEATURE_CACHE_H_
#define LQO_ML_FEATURE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "ml/dataset.h"

namespace lqo {

/// Counters of one FeatureCache since construction. Under concurrent access
/// the hit/miss split may vary run to run (two threads can miss the same key
/// simultaneously); hits + misses == number of Lookup() calls always holds.
struct FeatureCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Version-mismatch wholesale clears (both generations dropped).
  uint64_t evictions = 0;
  /// Capacity rotations: the current generation filled and became the
  /// previous generation (whose rows stay servable until the next rotation).
  uint64_t generation_evictions = 0;
  /// Rows currently resident (both generations).
  uint64_t rows = 0;
};

/// Plan-signature feature cache — the inference-substrate phase-2 cache (see
/// DESIGN.md "Inference path"). Featurizing a plan walks the whole operator
/// tree and consults the cardinality estimator at every node; across retrain
/// epochs the harness re-featurizes the same (query, candidate plan) pairs
/// over and over. Feature rows are pure functions of the structural key
/// (query KeyHash mixed with the plan signature) given a fixed featurizer
/// version, so they can be computed once and served from here on every later
/// epoch — and shared across optimizers that use the same featurizer.
///
/// Locking protocol mirrors the frozen CardinalityProvider: Lookup() copies
/// the row out under a shared lock (a span would dangle across eviction);
/// a miss computes the row outside any lock and commits it via Insert()
/// under an exclusive lock, first writer wins. Because rows are pure
/// functions of the key, racing writers always carry identical rows, so
/// cached results are bit-for-bit identical at any thread count.
///
/// Invalidation: every call carries the featurizer's version stamp. A lookup
/// with a version other than the resident one wholesale-clears the cache
/// (counted in evictions) and adopts the new version — rows from an older
/// featurizer can never be served. Inserting under a stale version is a
/// programming error and CHECK-fails: compute-then-insert must happen under
/// one version, i.e. bump versions only between epochs, not mid-flight.
/// Capacity policy: two generations (current + previous). When the current
/// generation reaches `max_rows` it *rotates* — current becomes previous,
/// the old previous is dropped, and a fresh current starts filling. Lookups
/// fall through to the previous generation (no promotion, so hits stay on
/// the shared-lock path), which means a retrain working set larger than
/// max_rows keeps serving recent rows instead of thrashing through
/// wholesale clears; total residency is bounded by 2 * max_rows. Rotations
/// are counted in generation_evictions, version-mismatch wholesale clears
/// (which drop both generations) in evictions.
class FeatureCache {
 public:
  /// `dim` is the width every row must have; `max_rows` bounds each
  /// generation (see the two-generation capacity policy above — LRU
  /// bookkeeping would cost more than the occasional rotation).
  explicit FeatureCache(size_t dim, size_t max_rows = 1u << 18);

  size_t dim() const { return dim_; }

  /// Copies the cached row for `key` into `out` (dim() doubles) and returns
  /// true, or returns false on a miss. A `version` differing from the
  /// resident one clears the cache first (see invalidation above), which
  /// always misses.
  bool Lookup(uint64_t key, uint32_t version, double* out);

  /// Commits the row for `key` (dim() doubles). First writer wins: a key
  /// that is already resident keeps its existing row (identical by purity).
  /// CHECK-fails if `version` is not the resident version.
  void Insert(uint64_t key, uint32_t version, const double* row);

  FeatureCacheStats Stats() const;

 private:
  /// Wholesale-clears both generations (not counters). Caller holds mutex_
  /// exclusively.
  void ClearLocked() LQO_REQUIRES(mutex_);

  const size_t dim_;
  const size_t max_rows_;
  /// Featurizer version the resident rows were computed under.
  uint32_t version_ LQO_GUARDED_BY(mutex_) = 0;
  /// Current-generation row storage; slots_ maps key -> row index. Rows are
  /// append-only between rotations/clears, so an index handed out under the
  /// lock stays valid until the next exclusive-lock rotation or clear.
  FeatureMatrix rows_ LQO_GUARDED_BY(mutex_);
  /// Previous generation: the last rotated-out row set, still servable.
  FeatureMatrix rows_prev_ LQO_GUARDED_BY(mutex_);
  /// Keys are pre-mixed hashes; identity-hashing avoids a second pass.
  struct IdentityHash {
    size_t operator()(uint64_t h) const { return static_cast<size_t>(h); }
  };
  std::unordered_map<uint64_t, size_t, IdentityHash> slots_
      LQO_GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, size_t, IdentityHash> slots_prev_
      LQO_GUARDED_BY(mutex_);
  // guards: version_, rows_, rows_prev_, slots_, slots_prev_ — shared-lock
  // reads (Lookup hit path), exclusive-lock inserts/rotations/clears; rows
  // are computed outside any lock.
  mutable std::shared_mutex mutex_;
  std::atomic<uint64_t> hits_{0};    // relaxed: monotonic stat only
  std::atomic<uint64_t> misses_{0};  // relaxed: monotonic stat only
  std::atomic<uint64_t> evictions_{0};             // relaxed: monotonic stat
  std::atomic<uint64_t> generation_evictions_{0};  // relaxed: monotonic stat
};

}  // namespace lqo

#endif  // LQO_ML_FEATURE_CACHE_H_
