#ifndef LQO_ML_KMEANS_H_
#define LQO_ML_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lqo {

/// Options for Lloyd's k-means.
struct KMeansOptions {
  int k = 4;
  int max_iterations = 50;
  uint64_t seed = 29;
};

/// k-means clustering with k-means++ seeding. Used by the DeepDB-style SPN
/// row splits and the Eraser-style plan clustering.
class KMeans {
 public:
  explicit KMeans(KMeansOptions options = KMeansOptions())
      : options_(options) {}

  /// Clusters `rows`; drops empty clusters (k may shrink).
  void Fit(const std::vector<std::vector<double>>& rows);

  /// Nearest-centroid index.
  size_t Assign(const std::vector<double>& row) const;

  /// Assignment of each training row.
  const std::vector<size_t>& labels() const { return labels_; }
  const std::vector<std::vector<double>>& centroids() const {
    return centroids_;
  }
  bool fitted() const { return !centroids_.empty(); }

 private:
  KMeansOptions options_;
  std::vector<std::vector<double>> centroids_;
  std::vector<size_t> labels_;
};

}  // namespace lqo

#endif  // LQO_ML_KMEANS_H_
