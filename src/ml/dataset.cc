#include "ml/dataset.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace lqo {

void FeatureMatrix::AddRow(const std::vector<double>& row) {
  AddRow(std::span<const double>(row));
}

void FeatureMatrix::AddRow(std::span<const double> row) {
  LQO_CHECK_EQ(row.size(), cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

double* FeatureMatrix::AppendRow() {
  data_.resize(data_.size() + cols_, 0.0);
  ++rows_;
  return data_.data() + (rows_ - 1) * cols_;
}

void TrainTestSplit(const MlDataset& data, double test_fraction,
                    uint64_t seed, MlDataset* train, MlDataset* test) {
  LQO_CHECK(train != nullptr);
  LQO_CHECK(test != nullptr);
  LQO_CHECK_GT(test_fraction, 0.0);
  LQO_CHECK_LT(test_fraction, 1.0);
  train->rows.clear();
  train->targets.clear();
  test->rows.clear();
  test->targets.clear();

  Rng rng(seed);
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  size_t test_count = static_cast<size_t>(
      static_cast<double>(data.size()) * test_fraction);
  for (size_t i = 0; i < order.size(); ++i) {
    MlDataset* target = i < test_count ? test : train;
    target->Add(data.rows[order[i]], data.targets[order[i]]);
  }
}

void Standardizer::Fit(const std::vector<std::vector<double>>& rows) {
  LQO_CHECK(!rows.empty());
  size_t f = rows[0].size();
  means_.assign(f, 0.0);
  stds_.assign(f, 0.0);
  for (const auto& row : rows) {
    LQO_CHECK_EQ(row.size(), f);
    for (size_t j = 0; j < f; ++j) means_[j] += row[j];
  }
  for (double& m : means_) m /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (size_t j = 0; j < f; ++j) {
      double d = row[j] - means_[j];
      stds_[j] += d * d;
    }
  }
  for (double& s : stds_) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-12) s = 1.0;  // constant column: pass through.
  }
}

std::vector<double> Standardizer::Transform(
    const std::vector<double>& row) const {
  LQO_CHECK_EQ(row.size(), means_.size());
  std::vector<double> out(row.size());
  TransformInto(row.data(), out.data());
  return out;
}

void Standardizer::TransformInto(const double* row, double* out) const {
  for (size_t j = 0; j < means_.size(); ++j) {
    out[j] = (row[j] - means_[j]) / stds_[j];
  }
}

}  // namespace lqo
