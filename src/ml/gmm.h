#ifndef LQO_ML_GMM_H_
#define LQO_ML_GMM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lqo {

/// Options for the 1-D Gaussian mixture model.
struct GmmOptions {
  int num_components = 4;
  int max_iterations = 60;
  double tolerance = 1e-5;
  uint64_t seed = 37;
};

/// One-dimensional Gaussian mixture fit with EM. Used by the IAM-style
/// estimator [40] to model continuous attributes: mixture components give
/// a data-adaptive discretization (component responsibility boundaries)
/// that shrinks wide domains far better than equi-depth cuts.
class GaussianMixture1D {
 public:
  explicit GaussianMixture1D(GmmOptions options = GmmOptions())
      : options_(options) {}

  /// Fits on the values; degenerate inputs (few distinct values) shrink
  /// the component count.
  void Fit(const std::vector<double>& values);

  /// Mixture density at x.
  double Density(double x) const;

  /// Mixture CDF at x (sum of weighted component CDFs).
  double Cdf(double x) const;

  /// Index of the most responsible component for x.
  size_t Assign(double x) const;

  size_t num_components() const { return weights_.size(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Log-likelihood of the training data at convergence.
  double log_likelihood() const { return log_likelihood_; }

  bool fitted() const { return !weights_.empty(); }

 private:
  GmmOptions options_;
  std::vector<double> weights_;
  std::vector<double> means_;
  std::vector<double> stddevs_;
  double log_likelihood_ = 0.0;
};

}  // namespace lqo

#endif  // LQO_ML_GMM_H_
