#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace lqo {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

void KMeans::Fit(const std::vector<std::vector<double>>& rows) {
  LQO_CHECK(!rows.empty());
  Rng rng(options_.seed);
  size_t k = std::min<size_t>(static_cast<size_t>(options_.k), rows.size());

  // k-means++ seeding.
  centroids_.clear();
  centroids_.push_back(rows[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(rows.size()) - 1))]);
  std::vector<double> min_dist(rows.size(),
                               std::numeric_limits<double>::infinity());
  while (centroids_.size() < k) {
    for (size_t i = 0; i < rows.size(); ++i) {
      min_dist[i] = std::min(min_dist[i],
                             SquaredDistance(rows[i], centroids_.back()));
    }
    double total = 0.0;
    for (double d : min_dist) total += d;
    if (total <= 0.0) break;  // fewer distinct points than k.
    double u = rng.UniformDouble(0.0, total);
    double acc = 0.0;
    size_t pick = rows.size() - 1;
    for (size_t i = 0; i < rows.size(); ++i) {
      acc += min_dist[i];
      if (u < acc) {
        pick = i;
        break;
      }
    }
    centroids_.push_back(rows[pick]);
  }

  labels_.assign(rows.size(), 0);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      size_t best = Assign(rows[i]);
      if (best != labels_[i]) {
        labels_[i] = best;
        changed = true;
      }
    }
    // Recompute centroids.
    std::vector<std::vector<double>> sums(
        centroids_.size(), std::vector<double>(rows[0].size(), 0.0));
    std::vector<size_t> counts(centroids_.size(), 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = 0; j < rows[i].size(); ++j) {
        sums[labels_[i]][j] += rows[i][j];
      }
      ++counts[labels_[i]];
    }
    for (size_t c = 0; c < centroids_.size(); ++c) {
      if (counts[c] == 0) continue;
      for (size_t j = 0; j < sums[c].size(); ++j) {
        centroids_[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  // Drop empty clusters and re-map labels.
  std::vector<size_t> counts(centroids_.size(), 0);
  for (size_t label : labels_) ++counts[label];
  std::vector<std::vector<double>> kept;
  std::vector<size_t> remap(centroids_.size(), 0);
  for (size_t c = 0; c < centroids_.size(); ++c) {
    if (counts[c] > 0) {
      remap[c] = kept.size();
      kept.push_back(centroids_[c]);
    }
  }
  for (size_t& label : labels_) label = remap[label];
  centroids_ = std::move(kept);
}

size_t KMeans::Assign(const std::vector<double>& row) const {
  LQO_CHECK(fitted());
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    double d = SquaredDistance(row, centroids_[c]);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

}  // namespace lqo
