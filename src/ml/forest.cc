#include "ml/forest.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace lqo {

void RandomForest::Fit(const std::vector<std::vector<double>>& rows,
                       const std::vector<double>& targets) {
  LQO_CHECK(!rows.empty());
  LQO_CHECK_EQ(rows.size(), targets.size());
  trees_.clear();

  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features <= 0) {
    // Default: sqrt(F), the classic forest heuristic.
    tree_options.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(rows[0].size()))));
  }

  // Trees are independent given per-tree RNG streams: tree t draws its
  // bootstrap and feature subsets from DeriveSeed(seed, t), so the ensemble
  // is identical at any thread count (and ParallelMap keeps tree order).
  trees_ = ParallelMap(
      static_cast<size_t>(options_.num_trees), [&](size_t t) {
        Rng rng(DeriveSeed(options_.seed, t));
        std::vector<size_t> indices(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          indices[i] = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(rows.size()) - 1));
        }
        RegressionTree tree;
        tree.Fit(rows, targets, tree_options, indices, &rng);
        return tree;
      });
  ConfigureCompact(options_.compact_min_total_nodes);
}

size_t RandomForest::total_nodes() const {
  size_t total = 0;
  for (const RegressionTree& tree : trees_) total += tree.num_nodes();
  return total;
}

void RandomForest::ConfigureCompact(size_t min_total_nodes) {
  options_.compact_min_total_nodes = min_total_nodes;
  if (fitted() && total_nodes() > min_total_nodes) {
    compact_.Pack(trees_);
  } else {
    compact_.Clear();
  }
}

double RandomForest::Predict(const std::vector<double>& row) const {
  double mean, stddev;
  PredictWithUncertainty(row, &mean, &stddev);
  return mean;
}

void RandomForest::PredictWithUncertainty(const std::vector<double>& row,
                                          double* mean,
                                          double* stddev) const {
  LQO_CHECK(fitted());
  double sum = 0.0, sum_sq = 0.0;
  for (const RegressionTree& tree : trees_) {
    double y = tree.Predict(row);
    sum += y;
    sum_sq += y * y;
  }
  double n = static_cast<double>(trees_.size());
  *mean = sum / n;
  double var = sum_sq / n - (*mean) * (*mean);
  *stddev = std::sqrt(std::max(0.0, var));
}

void RandomForest::PredictBatch(const FeatureMatrix& x,
                                std::span<double> out) const {
  PredictBatchWithUncertainty(x, out, {});
}

void RandomForest::PredictBatchWithUncertainty(
    const FeatureMatrix& x, std::span<double> means,
    std::span<double> stddevs) const {
  LQO_CHECK(fitted());
  LQO_CHECK_EQ(x.rows(), means.size());
  if (!stddevs.empty()) LQO_CHECK_EQ(x.rows(), stddevs.size());
  if (x.empty()) return;
  ScopedInferenceTimer timer(&inference_, x.rows());

  // Morsel-chunked over rows; each morsel owns index-addressed slices of
  // the outputs. Within a morsel, trees run tree-major over the whole
  // morsel (node buffers stay hot across rows) while each row's sum and
  // sum-of-squares accumulate in ensemble order — the exact additions of
  // the scalar loop, so results match at any thread count. When the size
  // gate packed the compact quantized layout, the per-tree kernel reads
  // the float/uint16 arenas instead of the SoA arrays; the comparisons
  // (and therefore the outputs) are identical by the build-time
  // quantization contract.
  constexpr size_t kMorselRows = 256;
  size_t morsels = (x.rows() + kMorselRows - 1) / kMorselRows;
  auto run_morsel = [&](size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(x.rows(), begin + kMorselRows);
    size_t n = end - begin;
    std::vector<double> tree_out(n);
    std::vector<double> sum(n, 0.0);
    std::vector<double> sum_sq(n, 0.0);
    for (size_t t = 0; t < trees_.size(); ++t) {
      if (compact_.empty()) {
        trees_[t].PredictRange(x, begin, end, tree_out.data());
      } else {
        compact_.PredictRangeTree(t, x, begin, end, tree_out.data());
      }
      for (size_t i = 0; i < n; ++i) {
        double y = tree_out[i];
        sum[i] += y;
        sum_sq[i] += y * y;
      }
    }
    double num_trees = static_cast<double>(trees_.size());
    for (size_t i = 0; i < n; ++i) {
      double mean = sum[i] / num_trees;
      means[begin + i] = mean;
      if (!stddevs.empty()) {
        double var = sum_sq[i] / num_trees - mean * mean;
        stddevs[begin + i] = std::sqrt(std::max(0.0, var));
      }
    }
  };
  if (morsels <= 1) {
    run_morsel(0);
  } else {
    ParallelFor(morsels, run_morsel);
  }
}

}  // namespace lqo
