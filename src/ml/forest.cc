#include "ml/forest.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace lqo {

void RandomForest::Fit(const std::vector<std::vector<double>>& rows,
                       const std::vector<double>& targets) {
  LQO_CHECK(!rows.empty());
  LQO_CHECK_EQ(rows.size(), targets.size());
  trees_.clear();

  TreeOptions tree_options = options_.tree;
  if (tree_options.max_features <= 0) {
    // Default: sqrt(F), the classic forest heuristic.
    tree_options.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(rows[0].size()))));
  }

  // Trees are independent given per-tree RNG streams: tree t draws its
  // bootstrap and feature subsets from DeriveSeed(seed, t), so the ensemble
  // is identical at any thread count (and ParallelMap keeps tree order).
  trees_ = ParallelMap(
      static_cast<size_t>(options_.num_trees), [&](size_t t) {
        Rng rng(DeriveSeed(options_.seed, t));
        std::vector<size_t> indices(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          indices[i] = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(rows.size()) - 1));
        }
        RegressionTree tree;
        tree.Fit(rows, targets, tree_options, indices, &rng);
        return tree;
      });
}

double RandomForest::Predict(const std::vector<double>& row) const {
  double mean, stddev;
  PredictWithUncertainty(row, &mean, &stddev);
  return mean;
}

void RandomForest::PredictWithUncertainty(const std::vector<double>& row,
                                          double* mean,
                                          double* stddev) const {
  LQO_CHECK(fitted());
  double sum = 0.0, sum_sq = 0.0;
  for (const RegressionTree& tree : trees_) {
    double y = tree.Predict(row);
    sum += y;
    sum_sq += y * y;
  }
  double n = static_cast<double>(trees_.size());
  *mean = sum / n;
  double var = sum_sq / n - (*mean) * (*mean);
  *stddev = std::sqrt(std::max(0.0, var));
}

}  // namespace lqo
