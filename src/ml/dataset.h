#ifndef LQO_ML_DATASET_H_
#define LQO_ML_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lqo {

/// Row-major dense feature matrix — the unit of batched model inference.
/// One contiguous buffer holds all rows, so tree/MLP batch kernels stream
/// it cache-line by cache-line instead of chasing a vector-of-vectors.
/// Reset() keeps the allocation, making one matrix reusable across many
/// candidate sets (the per-candidate allocation-churn fix in src/e2e).
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  explicit FeatureMatrix(size_t cols) : cols_(cols) {}

  /// Drops all rows (capacity retained) and sets the row width.
  void Reset(size_t cols) {
    cols_ = cols;
    rows_ = 0;
    data_.clear();
  }

  void Reserve(size_t rows) { data_.reserve(rows * cols_); }

  /// Appends a copy of `row` (must have exactly cols() values).
  void AddRow(const std::vector<double>& row);
  void AddRow(std::span<const double> row);

  /// Appends a zero-initialized row and returns a pointer to fill in place.
  double* AppendRow();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  const double* Row(size_t i) const { return data_.data() + i * cols_; }
  double* MutableRow(size_t i) { return data_.data() + i * cols_; }
  std::span<const double> RowSpan(size_t i) const {
    return {Row(i), cols_};
  }

  const std::vector<double>& data() const { return data_; }

 private:
  size_t cols_ = 0;
  size_t rows_ = 0;
  std::vector<double> data_;  // rows_ x cols_, row-major
};

/// A dense supervised dataset: rows of features plus one target per row.
struct MlDataset {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;

  size_t size() const { return rows.size(); }
  size_t num_features() const { return rows.empty() ? 0 : rows[0].size(); }

  void Add(std::vector<double> row, double target) {
    rows.push_back(std::move(row));
    targets.push_back(target);
  }
};

/// Splits `data` into train/test deterministically: every k-th row (by a
/// seeded shuffle) goes to test. `test_fraction` in (0,1).
void TrainTestSplit(const MlDataset& data, double test_fraction,
                    uint64_t seed, MlDataset* train, MlDataset* test);

/// Column-wise standardization (x - mean) / std, fit on one dataset and
/// applied to any vector. Constant columns pass through unchanged.
class Standardizer {
 public:
  void Fit(const std::vector<std::vector<double>>& rows);
  std::vector<double> Transform(const std::vector<double>& row) const;
  /// Allocation-free variant for batch kernels: writes the standardized row
  /// into `out` (both of length num_features()).
  void TransformInto(const double* row, double* out) const;
  size_t num_features() const { return means_.size(); }
  bool fitted() const { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace lqo

#endif  // LQO_ML_DATASET_H_
