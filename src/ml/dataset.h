#ifndef LQO_ML_DATASET_H_
#define LQO_ML_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lqo {

/// A dense supervised dataset: rows of features plus one target per row.
struct MlDataset {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;

  size_t size() const { return rows.size(); }
  size_t num_features() const { return rows.empty() ? 0 : rows[0].size(); }

  void Add(std::vector<double> row, double target) {
    rows.push_back(std::move(row));
    targets.push_back(target);
  }
};

/// Splits `data` into train/test deterministically: every k-th row (by a
/// seeded shuffle) goes to test. `test_fraction` in (0,1).
void TrainTestSplit(const MlDataset& data, double test_fraction,
                    uint64_t seed, MlDataset* train, MlDataset* test);

/// Column-wise standardization (x - mean) / std, fit on one dataset and
/// applied to any vector. Constant columns pass through unchanged.
class Standardizer {
 public:
  void Fit(const std::vector<std::vector<double>>& rows);
  std::vector<double> Transform(const std::vector<double>& row) const;
  bool fitted() const { return !means_.empty(); }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace lqo

#endif  // LQO_ML_DATASET_H_
