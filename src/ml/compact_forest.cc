#include "ml/compact_forest.h"

#include <algorithm>

#include "common/logging.h"

namespace lqo {
namespace {

// Mirrors the block size of RegressionTree::PredictRange so the two layouts
// stream rows with the same locality shape. Affects work layout only, never
// results.
constexpr size_t kTraversalBlock = 64;

}  // namespace

void CompactForest::Clear() {
  feature_.clear();
  threshold_.clear();
  child_.clear();
  leaf_value_.clear();
  root_.clear();
}

void CompactForest::Pack(std::span<const RegressionTree> trees) {
  Clear();
  size_t total = 0;
  for (const RegressionTree& tree : trees) total += tree.num_nodes();
  feature_.reserve(total);
  threshold_.reserve(total);
  child_.reserve(total);
  root_.reserve(trees.size());

  // Per tree: breadth-first renumbering that allocates both children of an
  // interior node adjacently, so one int32 addresses the pair (left at
  // child_, right at child_ + 1). The walk order is a pure function of the
  // source tree, so packing is deterministic.
  std::vector<std::pair<int32_t, size_t>> worklist;  // (source node, slot)
  for (const RegressionTree& tree : trees) {
    LQO_CHECK(tree.fitted());
    std::span<const int32_t> feature = tree.node_features();
    std::span<const double> threshold = tree.node_thresholds();
    std::span<const double> value = tree.node_values();
    std::span<const int32_t> left = tree.node_left();
    std::span<const int32_t> right = tree.node_right();

    size_t base = feature_.size();
    root_.push_back(static_cast<int32_t>(base));
    feature_.resize(base + feature.size());
    threshold_.resize(base + feature.size());
    child_.resize(base + feature.size());

    size_t next_slot = base + 1;  // root occupies `base`
    worklist.clear();
    worklist.emplace_back(0, base);
    // The worklist grows at the tail while the head advances: plain FIFO
    // breadth-first order.
    for (size_t head = 0; head < worklist.size(); ++head) {
      auto [node, slot] = worklist[head];
      size_t n = static_cast<size_t>(node);
      int32_t f = feature[n];
      if (f < 0) {
        feature_[slot] = kLeaf;
        threshold_[slot] = 0.0f;
        child_[slot] = static_cast<int32_t>(leaf_value_.size());
        leaf_value_.push_back(value[n]);
        continue;
      }
      LQO_CHECK_LT(f, static_cast<int32_t>(kLeaf))
          << "feature id does not fit the uint16 compact layout";
      float q = static_cast<float>(threshold[n]);
      // Build-time quantization contract: the double array already holds a
      // float-representable value, so the narrowing is exact.
      LQO_CHECK_EQ(static_cast<double>(q), threshold[n])
          << "threshold not quantized at build time";
      feature_[slot] = static_cast<uint16_t>(f);
      threshold_[slot] = q;
      child_[slot] = static_cast<int32_t>(next_slot);
      worklist.emplace_back(left[n], next_slot);
      worklist.emplace_back(right[n], next_slot + 1);
      next_slot += 2;
    }
    LQO_CHECK_EQ(next_slot, base + feature.size());
  }
}

double CompactForest::PredictRowTree(size_t t, const double* row) const {
  size_t index = static_cast<size_t>(root_[t]);
  while (true) {
    uint16_t f = feature_[index];
    if (f == kLeaf) {
      return leaf_value_[static_cast<size_t>(child_[index])];
    }
    // Widening the float threshold back to double reproduces the exact
    // value the SoA array stores (build-time quantization), so this is the
    // same comparison RegressionTree::PredictRow performs.
    bool go_left = row[f] <= static_cast<double>(threshold_[index]);
    index = static_cast<size_t>(child_[index]) + (go_left ? 0 : 1);
  }
}

void CompactForest::PredictRangeTree(size_t t, const FeatureMatrix& x,
                                     size_t begin, size_t end,
                                     double* out) const {
  // Row blocks keep the block's feature rows hot while the arena streams;
  // each row still takes exactly the comparisons PredictRowTree takes, so
  // blocking affects layout of work only.
  for (size_t block = begin; block < end; block += kTraversalBlock) {
    size_t block_rows = std::min(kTraversalBlock, end - block);
    for (size_t i = 0; i < block_rows; ++i) {
      out[block - begin + i] = PredictRowTree(t, x.Row(block + i));
    }
  }
}

}  // namespace lqo
