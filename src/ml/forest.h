#ifndef LQO_ML_FOREST_H_
#define LQO_ML_FOREST_H_

#include <cstddef>
#include <span>
#include <vector>

#include "ml/compact_forest.h"
#include "ml/tree.h"

namespace lqo {

/// Options for the bagged random-forest regressor.
struct ForestOptions {
  int num_trees = 40;
  TreeOptions tree;
  uint64_t seed = 23;
  /// Ensembles with more than this many total nodes leave L2 residence, so
  /// Fit() additionally packs the compact quantized layout
  /// (ml/compact_forest.h) and the batch kernels serve from it. 0 forces
  /// the compact layout; SIZE_MAX disables it. Predictions are identical
  /// either way (build-time threshold quantization).
  size_t compact_min_total_nodes = 1u << 15;

  ForestOptions() {
    tree.max_depth = 10;
    tree.min_samples_leaf = 2;
  }
};

/// Random forest regressor (bootstrap rows + random feature subsets). The
/// "tree-based ensembles" row of Table 1 [10]; its prediction variance also
/// doubles as an uncertainty signal (Fauce-style [33]).
class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = ForestOptions())
      : options_(options) {}

  void Fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets);

  double Predict(const std::vector<double>& row) const;

  /// Mean and standard deviation across the ensemble's per-tree
  /// predictions; the std is the Fauce-style epistemic uncertainty proxy.
  void PredictWithUncertainty(const std::vector<double>& row, double* mean,
                              double* stddev) const;

  /// Batch ensemble mean over all rows of `x`, bit-for-bit identical to
  /// per-row Predict. Morsel-parallel; within a morsel trees are visited
  /// in ensemble order (tree-major), so each row's accumulation order
  /// matches the scalar loop exactly at any LQO_THREADS.
  void PredictBatch(const FeatureMatrix& x, std::span<double> out) const;

  /// Batch mean + stddev, identical to per-row PredictWithUncertainty.
  /// `stddevs` may be empty to skip the uncertainty output.
  void PredictBatchWithUncertainty(const FeatureMatrix& x,
                                   std::span<double> means,
                                   std::span<double> stddevs) const;

  /// Batched-inference counters (rows scored via PredictBatch).
  InferenceStatsSnapshot Stats() const { return inference_.Snapshot(); }

  bool fitted() const { return !trees_.empty(); }

  /// Re-applies the compact-layout size gate with a new threshold (packs or
  /// drops the compact arenas to match). Benches/tests use this to compare
  /// both layouts on one fitted ensemble without refitting.
  void ConfigureCompact(size_t min_total_nodes);

  /// True when batch predictions are served from the compact layout.
  bool compact() const { return !compact_.empty(); }
  size_t total_nodes() const;
  /// Arena bytes of the active compact layout (0 when on the SoA path).
  size_t compact_bytes() const { return compact_.bytes(); }

 private:
  ForestOptions options_;
  std::vector<RegressionTree> trees_;
  /// Packed mirror of trees_; non-empty iff the size gate selected it.
  CompactForest compact_;
  mutable InferenceCounters inference_;
};

}  // namespace lqo

#endif  // LQO_ML_FOREST_H_
