#ifndef LQO_ML_FOREST_H_
#define LQO_ML_FOREST_H_

#include <vector>

#include "ml/tree.h"

namespace lqo {

/// Options for the bagged random-forest regressor.
struct ForestOptions {
  int num_trees = 40;
  TreeOptions tree;
  uint64_t seed = 23;

  ForestOptions() {
    tree.max_depth = 10;
    tree.min_samples_leaf = 2;
  }
};

/// Random forest regressor (bootstrap rows + random feature subsets). The
/// "tree-based ensembles" row of Table 1 [10]; its prediction variance also
/// doubles as an uncertainty signal (Fauce-style [33]).
class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = ForestOptions())
      : options_(options) {}

  void Fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets);

  double Predict(const std::vector<double>& row) const;

  /// Mean and standard deviation across the ensemble's per-tree
  /// predictions; the std is the Fauce-style epistemic uncertainty proxy.
  void PredictWithUncertainty(const std::vector<double>& row, double* mean,
                              double* stddev) const;

  bool fitted() const { return !trees_.empty(); }

 private:
  ForestOptions options_;
  std::vector<RegressionTree> trees_;
};

}  // namespace lqo

#endif  // LQO_ML_FOREST_H_
