#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats_util.h"

namespace lqo {

double QError(double estimate, double truth) {
  double e = std::max(estimate, 1.0);
  double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

QErrorSummary SummarizeQErrors(const std::vector<double>& qerrors) {
  QErrorSummary summary;
  if (qerrors.empty()) return summary;
  summary.p50 = Quantile(qerrors, 0.5);
  summary.p90 = Quantile(qerrors, 0.9);
  summary.p99 = Quantile(qerrors, 0.99);
  summary.max = *std::max_element(qerrors.begin(), qerrors.end());
  summary.geometric_mean = GeometricMean(qerrors);
  return summary;
}

double MeanSquaredError(const std::vector<double>& predictions,
                        const std::vector<double>& targets) {
  LQO_CHECK_EQ(predictions.size(), targets.size());
  LQO_CHECK(!predictions.empty());
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    double d = predictions[i] - targets[i];
    acc += d * d;
  }
  return acc / static_cast<double>(predictions.size());
}

double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<double>& targets) {
  LQO_CHECK_EQ(predictions.size(), targets.size());
  LQO_CHECK(!predictions.empty());
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    acc += std::abs(predictions[i] - targets[i]);
  }
  return acc / static_cast<double>(predictions.size());
}

double R2Score(const std::vector<double>& predictions,
               const std::vector<double>& targets) {
  LQO_CHECK_EQ(predictions.size(), targets.size());
  LQO_CHECK(!predictions.empty());
  double mean = Mean(targets);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    ss_res += (targets[i] - predictions[i]) * (targets[i] - predictions[i]);
    ss_tot += (targets[i] - mean) * (targets[i] - mean);
  }
  if (ss_tot < 1e-12) return ss_res < 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace lqo
