#include "ml/chow_liu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

double MutualInformation(const std::vector<int64_t>& x,
                         const std::vector<int64_t>& y, int64_t x_domain,
                         int64_t y_domain) {
  LQO_CHECK_EQ(x.size(), y.size());
  LQO_CHECK(!x.empty());
  double n = static_cast<double>(x.size());

  std::vector<double> px(static_cast<size_t>(x_domain), 0.0);
  std::vector<double> py(static_cast<size_t>(y_domain), 0.0);
  std::unordered_map<int64_t, double> pxy;  // key = xv * y_domain + yv
  for (size_t i = 0; i < x.size(); ++i) {
    LQO_CHECK_GE(x[i], 0);
    LQO_CHECK_LT(x[i], x_domain);
    LQO_CHECK_GE(y[i], 0);
    LQO_CHECK_LT(y[i], y_domain);
    px[static_cast<size_t>(x[i])] += 1.0;
    py[static_cast<size_t>(y[i])] += 1.0;
    pxy[x[i] * y_domain + y[i]] += 1.0;
  }
  // The MI sum is a float reduction, so fold the joint counts in sorted key
  // order rather than unspecified hash-bucket order (lqo-lint:
  // unordered-iter) — the result must not depend on the standard library's
  // bucket layout.
  std::vector<std::pair<int64_t, double>> joint(pxy.begin(), pxy.end());
  std::sort(joint.begin(), joint.end());
  double mi = 0.0;
  for (const auto& [key, count] : joint) {
    int64_t xv = key / y_domain;
    int64_t yv = key % y_domain;
    double p = count / n;
    double marginal = (px[static_cast<size_t>(xv)] / n) *
                      (py[static_cast<size_t>(yv)] / n);
    mi += p * std::log(p / marginal);
  }
  return std::max(0.0, mi);
}

ChowLiuResult LearnChowLiuTree(
    const std::vector<std::vector<int64_t>>& columns,
    const std::vector<int64_t>& domain_sizes) {
  size_t v = columns.size();
  LQO_CHECK_EQ(domain_sizes.size(), v);
  LQO_CHECK_GT(v, 0u);

  ChowLiuResult result;
  result.parent.assign(v, -1);
  if (v == 1) {
    result.topological_order = {0};
    return result;
  }

  // Pairwise MI triangle: flatten the i<j pairs and score them as
  // independent index-addressed tasks, then fill the matrix in pair order.
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(v * (v - 1) / 2);
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = i + 1; j < v; ++j) pairs.emplace_back(i, j);
  }
  std::vector<double> pair_mi = ParallelMap(pairs.size(), [&](size_t p) {
    auto [i, j] = pairs[p];
    return MutualInformation(columns[i], columns[j], domain_sizes[i],
                             domain_sizes[j]);
  });
  std::vector<std::vector<double>> mi(v, std::vector<double>(v, 0.0));
  for (size_t p = 0; p < pairs.size(); ++p) {
    auto [i, j] = pairs[p];
    mi[i][j] = mi[j][i] = pair_mi[p];
  }

  // Prim's maximum spanning tree rooted at variable 0.
  std::vector<bool> in_tree(v, false);
  std::vector<double> best_weight(v, -1.0);
  std::vector<int> best_parent(v, -1);
  in_tree[0] = true;
  result.topological_order.push_back(0);
  for (size_t j = 1; j < v; ++j) {
    best_weight[j] = mi[0][j];
    best_parent[j] = 0;
  }
  for (size_t step = 1; step < v; ++step) {
    double best = -std::numeric_limits<double>::infinity();
    int pick = -1;
    for (size_t j = 0; j < v; ++j) {
      if (!in_tree[j] && best_weight[j] > best) {
        best = best_weight[j];
        pick = static_cast<int>(j);
      }
    }
    LQO_CHECK_GE(pick, 0);
    in_tree[static_cast<size_t>(pick)] = true;
    result.parent[static_cast<size_t>(pick)] =
        best_parent[static_cast<size_t>(pick)];
    result.topological_order.push_back(pick);
    for (size_t j = 0; j < v; ++j) {
      if (!in_tree[j] && mi[static_cast<size_t>(pick)][j] > best_weight[j]) {
        best_weight[j] = mi[static_cast<size_t>(pick)][j];
        best_parent[j] = pick;
      }
    }
  }
  return result;
}

}  // namespace lqo
