#include "ml/tree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {
namespace {

double MeanOf(const std::vector<double>& targets,
              const std::vector<size_t>& indices, size_t begin, size_t end) {
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += targets[indices[i]];
  return sum / static_cast<double>(end - begin);
}

// Rows per batch-traversal block: small enough that the block's feature
// values and node cursors stay in L1, large enough to amortize the level
// loop. Affects layout of work only, never results.
constexpr size_t kTraversalBlock = 64;

// Rows per parallel morsel in PredictBatch (a multiple of the traversal
// block). Size-derived, so the parallel split cannot affect results.
constexpr size_t kMorselRows = 512;

// Node-count cutoff between the two batch kernels: below it the SoA node
// arrays (~28 bytes/node) fit comfortably in L2, so a tight per-row walk
// wins; above it the level-synchronous sweep keeps each level's nodes hot
// across the row block. Depends on the tree alone, never on the input.
constexpr size_t kCacheResidentNodes = 1u << 15;

}  // namespace

void RegressionTree::Fit(const std::vector<std::vector<double>>& rows,
                         const std::vector<double>& targets,
                         const TreeOptions& options,
                         const std::vector<size_t>& indices, Rng* rng) {
  LQO_CHECK(!rows.empty());
  LQO_CHECK_EQ(rows.size(), targets.size());
  feature_.clear();
  threshold_.clear();
  value_.clear();
  left_.clear();
  right_.clear();
  std::vector<size_t> work = indices;
  if (work.empty()) {
    work.resize(rows.size());
    std::iota(work.begin(), work.end(), 0);
  }
  BuildNode(rows, targets, work, 0, work.size(), 0, options, rng);
}

int RegressionTree::AddNode(double value) {
  int index = static_cast<int>(feature_.size());
  feature_.push_back(-1);
  threshold_.push_back(0.0);
  value_.push_back(value);
  left_.push_back(-1);
  right_.push_back(-1);
  return index;
}

int RegressionTree::BuildNode(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& targets,
                              std::vector<size_t>& indices, size_t begin,
                              size_t end, int depth,
                              const TreeOptions& options, Rng* rng) {
  LQO_CHECK_LT(begin, end);
  int node_index = AddNode(MeanOf(targets, indices, begin, end));

  size_t n = end - begin;
  if (depth >= options.max_depth ||
      n < 2 * static_cast<size_t>(options.min_samples_leaf)) {
    return node_index;
  }

  size_t num_features = rows[0].size();
  // Candidate features (random subset for forests).
  std::vector<size_t> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  if (rng != nullptr && options.max_features > 0 &&
      static_cast<size_t>(options.max_features) < num_features) {
    rng->Shuffle(features);
    features.resize(static_cast<size_t>(options.max_features));
  }

  // Exact best split by variance reduction (equivalently: maximize
  // sum_left^2/n_left + sum_right^2/n_right). Features are scored
  // independently (parallel when the node is large enough) and reduced
  // serially in candidate order, which reproduces the serial loop's
  // first-wins tie-breaking bit for bit.
  double total_sum = 0.0;
  for (size_t i = begin; i < end; ++i) total_sum += targets[indices[i]];

  struct FeatureSplit {
    double score = -std::numeric_limits<double>::infinity();
    double threshold = 0.0;
  };
  auto eval_feature = [&](size_t f) {
    FeatureSplit split;
    std::vector<std::pair<double, double>> values(n);  // (feature, target)
    for (size_t i = 0; i < n; ++i) {
      size_t row = indices[begin + i];
      values[i] = {rows[row][f], targets[row]};
    }
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) return split;  // const.

    double left_sum = 0.0;
    size_t left_n = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += values[i].second;
      ++left_n;
      if (values[i].first == values[i + 1].first) continue;  // mid-run.
      size_t right_n = n - left_n;
      if (left_n < static_cast<size_t>(options.min_samples_leaf) ||
          right_n < static_cast<size_t>(options.min_samples_leaf)) {
        continue;
      }
      double right_sum = total_sum - left_sum;
      double score = left_sum * left_sum / static_cast<double>(left_n) +
                     right_sum * right_sum / static_cast<double>(right_n);
      if (score > split.score) {
        split.score = score;
        split.threshold = (values[i].first + values[i + 1].first) / 2.0;
      }
    }
    return split;
  };

  // Fanning out pays only when this node sorts enough (row, feature) cells;
  // the cutoff depends on sizes alone, so it cannot affect results.
  constexpr size_t kParallelCells = 8192;
  std::vector<FeatureSplit> splits;
  if (features.size() > 1 && n * features.size() >= kParallelCells) {
    splits = ParallelMap(features.size(),
                         [&](size_t i) { return eval_feature(features[i]); });
  } else {
    splits.reserve(features.size());
    for (size_t f : features) splits.push_back(eval_feature(f));
  }

  double best_score = -std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;
  for (size_t i = 0; i < features.size(); ++i) {
    if (splits[i].score > best_score) {
      best_score = splits[i].score;
      best_feature = static_cast<int>(features[i]);
      best_threshold = splits[i].threshold;
    }
  }

  if (best_feature < 0) return node_index;

  // Quantize the threshold to float *before* partitioning, so the split the
  // tree trains on is exactly the split the compact quantized layout
  // (ml/compact_forest.h) serves: every stored double threshold is float
  // representable, making `row[f] <= threshold` bitwise identical whether
  // the comparison reads the double SoA array or the float compact array.
  // Degenerate quantized splits (all rows on one side) fall into the
  // existing mid == begin/end guard below.
  best_threshold = static_cast<double>(static_cast<float>(best_threshold));

  // Partition indices[begin,end) by the chosen split.
  auto mid_it = std::partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](size_t row) {
        return rows[row][static_cast<size_t>(best_feature)] <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_index;  // degenerate.

  int left = BuildNode(rows, targets, indices, begin, mid, depth + 1, options,
                       rng);
  int right =
      BuildNode(rows, targets, indices, mid, end, depth + 1, options, rng);
  size_t node = static_cast<size_t>(node_index);
  feature_[node] = best_feature;
  threshold_[node] = best_threshold;
  left_[node] = left;
  right_[node] = right;
  return node_index;
}

double RegressionTree::Predict(const std::vector<double>& row) const {
  LQO_CHECK(fitted());
  return PredictRow(row.data());
}

double RegressionTree::PredictRow(const double* row) const {
  int32_t index = 0;
  while (true) {
    int32_t f = feature_[static_cast<size_t>(index)];
    if (f < 0) return value_[static_cast<size_t>(index)];
    index = row[f] <= threshold_[static_cast<size_t>(index)]
                ? left_[static_cast<size_t>(index)]
                : right_[static_cast<size_t>(index)];
  }
}

void RegressionTree::PredictRange(const FeatureMatrix& x, size_t begin,
                                  size_t end, double* out) const {
  // Cache-resident trees: the whole SoA layout stays hot, so per-row
  // traversal with zero bookkeeping is fastest. Identical comparisons to
  // Predict either way.
  if (feature_.size() <= kCacheResidentNodes) {
    for (size_t r = begin; r < end; ++r) {
      out[r - begin] = PredictRow(x.Row(r));
    }
    return;
  }
  // Level-synchronous traversal over row blocks: every live row in the
  // block advances one level per sweep, so the SoA node buffers are
  // revisited while hot instead of once per row. Each row still takes
  // exactly the comparisons Predict takes — identical results.
  int32_t cursor[kTraversalBlock];
  for (size_t block = begin; block < end; block += kTraversalBlock) {
    size_t block_rows = std::min(kTraversalBlock, end - block);
    for (size_t i = 0; i < block_rows; ++i) cursor[i] = 0;
    size_t live = block_rows;
    while (live > 0) {
      live = 0;
      for (size_t i = 0; i < block_rows; ++i) {
        int32_t node = cursor[i];
        if (node < 0) continue;
        int32_t f = feature_[static_cast<size_t>(node)];
        if (f < 0) {
          out[block - begin + i] = value_[static_cast<size_t>(node)];
          cursor[i] = -1;
          continue;
        }
        const double* row = x.Row(block + i);
        cursor[i] = row[f] <= threshold_[static_cast<size_t>(node)]
                        ? left_[static_cast<size_t>(node)]
                        : right_[static_cast<size_t>(node)];
        ++live;
      }
    }
  }
}

void RegressionTree::PredictBatch(const FeatureMatrix& x,
                                  std::span<double> out) const {
  LQO_CHECK(fitted());
  LQO_CHECK_EQ(x.rows(), out.size());
  if (x.empty()) return;
  ScopedInferenceTimer timer(&inference_, x.rows());
  size_t morsels = (x.rows() + kMorselRows - 1) / kMorselRows;
  if (morsels <= 1) {
    PredictRange(x, 0, x.rows(), out.data());
    return;
  }
  ParallelFor(morsels, [&](size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(x.rows(), begin + kMorselRows);
    PredictRange(x, begin, end, out.data() + begin);
  });
}

}  // namespace lqo
