#include "ml/tree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {
namespace {

double MeanOf(const std::vector<double>& targets,
              const std::vector<size_t>& indices, size_t begin, size_t end) {
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += targets[indices[i]];
  return sum / static_cast<double>(end - begin);
}

}  // namespace

void RegressionTree::Fit(const std::vector<std::vector<double>>& rows,
                         const std::vector<double>& targets,
                         const TreeOptions& options,
                         const std::vector<size_t>& indices, Rng* rng) {
  LQO_CHECK(!rows.empty());
  LQO_CHECK_EQ(rows.size(), targets.size());
  nodes_.clear();
  std::vector<size_t> work = indices;
  if (work.empty()) {
    work.resize(rows.size());
    std::iota(work.begin(), work.end(), 0);
  }
  BuildNode(rows, targets, work, 0, work.size(), 0, options, rng);
}

int RegressionTree::BuildNode(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& targets,
                              std::vector<size_t>& indices, size_t begin,
                              size_t end, int depth,
                              const TreeOptions& options, Rng* rng) {
  LQO_CHECK_LT(begin, end);
  int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].value =
      MeanOf(targets, indices, begin, end);

  size_t n = end - begin;
  if (depth >= options.max_depth ||
      n < 2 * static_cast<size_t>(options.min_samples_leaf)) {
    return node_index;
  }

  size_t num_features = rows[0].size();
  // Candidate features (random subset for forests).
  std::vector<size_t> features(num_features);
  std::iota(features.begin(), features.end(), 0);
  if (rng != nullptr && options.max_features > 0 &&
      static_cast<size_t>(options.max_features) < num_features) {
    rng->Shuffle(features);
    features.resize(static_cast<size_t>(options.max_features));
  }

  // Exact best split by variance reduction (equivalently: maximize
  // sum_left^2/n_left + sum_right^2/n_right). Features are scored
  // independently (parallel when the node is large enough) and reduced
  // serially in candidate order, which reproduces the serial loop's
  // first-wins tie-breaking bit for bit.
  double total_sum = 0.0;
  for (size_t i = begin; i < end; ++i) total_sum += targets[indices[i]];

  struct FeatureSplit {
    double score = -std::numeric_limits<double>::infinity();
    double threshold = 0.0;
  };
  auto eval_feature = [&](size_t f) {
    FeatureSplit split;
    std::vector<std::pair<double, double>> values(n);  // (feature, target)
    for (size_t i = 0; i < n; ++i) {
      size_t row = indices[begin + i];
      values[i] = {rows[row][f], targets[row]};
    }
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) return split;  // const.

    double left_sum = 0.0;
    size_t left_n = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += values[i].second;
      ++left_n;
      if (values[i].first == values[i + 1].first) continue;  // mid-run.
      size_t right_n = n - left_n;
      if (left_n < static_cast<size_t>(options.min_samples_leaf) ||
          right_n < static_cast<size_t>(options.min_samples_leaf)) {
        continue;
      }
      double right_sum = total_sum - left_sum;
      double score = left_sum * left_sum / static_cast<double>(left_n) +
                     right_sum * right_sum / static_cast<double>(right_n);
      if (score > split.score) {
        split.score = score;
        split.threshold = (values[i].first + values[i + 1].first) / 2.0;
      }
    }
    return split;
  };

  // Fanning out pays only when this node sorts enough (row, feature) cells;
  // the cutoff depends on sizes alone, so it cannot affect results.
  constexpr size_t kParallelCells = 8192;
  std::vector<FeatureSplit> splits;
  if (features.size() > 1 && n * features.size() >= kParallelCells) {
    splits = ParallelMap(features.size(),
                         [&](size_t i) { return eval_feature(features[i]); });
  } else {
    splits.reserve(features.size());
    for (size_t f : features) splits.push_back(eval_feature(f));
  }

  double best_score = -std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;
  for (size_t i = 0; i < features.size(); ++i) {
    if (splits[i].score > best_score) {
      best_score = splits[i].score;
      best_feature = static_cast<int>(features[i]);
      best_threshold = splits[i].threshold;
    }
  }

  if (best_feature < 0) return node_index;

  // Partition indices[begin,end) by the chosen split.
  auto mid_it = std::partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](size_t row) {
        return rows[row][static_cast<size_t>(best_feature)] <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_index;  // degenerate.

  int left = BuildNode(rows, targets, indices, begin, mid, depth + 1, options,
                       rng);
  int right =
      BuildNode(rows, targets, indices, mid, end, depth + 1, options, rng);
  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

double RegressionTree::Predict(const std::vector<double>& row) const {
  LQO_CHECK(fitted());
  int index = 0;
  while (true) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.feature < 0) return node.value;
    index = row[static_cast<size_t>(node.feature)] <= node.threshold
                ? node.left
                : node.right;
  }
}

}  // namespace lqo
