#include "ml/feature_cache.h"

#include <cstring>
#include <mutex>

#include "common/logging.h"

namespace lqo {

FeatureCache::FeatureCache(size_t dim, size_t max_rows)
    : dim_(dim), max_rows_(max_rows) {
  LQO_CHECK_GT(dim, 0u);
  LQO_CHECK_GT(max_rows, 0u);
  rows_.Reset(dim_);
}

bool FeatureCache::Lookup(uint64_t key, uint32_t version, double* out) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (version == version_) {
      auto it = slots_.find(key);
      if (it != slots_.end()) {
        std::memcpy(out, rows_.Row(it->second), dim_ * sizeof(double));
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  // Version changed: drop every resident row before reporting the miss so a
  // stale-featurizer row can never be served. Re-check under the exclusive
  // lock — another thread may have already adopted the new version.
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (version != version_) {
      ClearLocked();
      version_ = version;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      std::memcpy(out, rows_.Row(it->second), dim_ * sizeof(double));
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void FeatureCache::Insert(uint64_t key, uint32_t version, const double* row) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Insert must run under the same version its row was computed under; a
  // mismatch means the caller bumped the featurizer mid-flight and the row
  // may be stale — refuse loudly rather than poison the cache.
  LQO_CHECK_EQ(version, version_)
      << "FeatureCache::Insert under a stale featurizer version";
  if (slots_.find(key) != slots_.end()) return;  // first writer wins
  if (slots_.size() >= max_rows_) {
    ClearLocked();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  slots_.emplace(key, rows_.rows());
  rows_.AddRow(std::span<const double>(row, dim_));
}

void FeatureCache::ClearLocked() {
  slots_.clear();
  rows_.Reset(dim_);
}

FeatureCacheStats FeatureCache::Stats() const {
  FeatureCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    stats.rows = slots_.size();
  }
  return stats;
}

}  // namespace lqo
