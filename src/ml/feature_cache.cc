#include "ml/feature_cache.h"

#include <cstring>
#include <mutex>

#include "common/logging.h"

namespace lqo {

FeatureCache::FeatureCache(size_t dim, size_t max_rows)
    : dim_(dim), max_rows_(max_rows) {
  LQO_CHECK_GT(dim, 0u);
  LQO_CHECK_GT(max_rows, 0u);
  // locked-by: mutex_(constructor body; no other thread can hold a
  // reference to this object yet)
  rows_.Reset(dim_);
}

bool FeatureCache::Lookup(uint64_t key, uint32_t version, double* out) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (version == version_) {
      auto it = slots_.find(key);
      if (it != slots_.end()) {
        std::memcpy(out, rows_.Row(it->second), dim_ * sizeof(double));
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Fall through to the previous generation. No promotion: moving the
      // row would need the exclusive lock, and rotated-out rows are served
      // read-only until the next rotation drops them.
      auto prev = slots_prev_.find(key);
      if (prev != slots_prev_.end()) {
        std::memcpy(out, rows_prev_.Row(prev->second), dim_ * sizeof(double));
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  // Version changed: drop every resident row before reporting the miss so a
  // stale-featurizer row can never be served. Re-check under the exclusive
  // lock — another thread may have already adopted the new version.
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (version != version_) {
      ClearLocked();
      version_ = version;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      std::memcpy(out, rows_.Row(it->second), dim_ * sizeof(double));
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    auto prev = slots_prev_.find(key);
    if (prev != slots_prev_.end()) {
      std::memcpy(out, rows_prev_.Row(prev->second), dim_ * sizeof(double));
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void FeatureCache::Insert(uint64_t key, uint32_t version, const double* row) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Insert must run under the same version its row was computed under; a
  // mismatch means the caller bumped the featurizer mid-flight and the row
  // may be stale — refuse loudly rather than poison the cache.
  LQO_CHECK_EQ(version, version_)
      << "FeatureCache::Insert under a stale featurizer version";
  if (slots_.find(key) != slots_.end()) return;  // first writer wins
  if (slots_.size() >= max_rows_) {
    // Rotate generations: current becomes previous (still servable), the
    // old previous is dropped. Working sets up to 2 * max_rows keep
    // hitting instead of thrashing through wholesale clears.
    rows_prev_ = std::move(rows_);
    slots_prev_ = std::move(slots_);
    rows_.Reset(dim_);
    slots_.clear();
    generation_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  slots_.emplace(key, rows_.rows());
  rows_.AddRow(std::span<const double>(row, dim_));
}

void FeatureCache::ClearLocked() {
  slots_.clear();
  slots_prev_.clear();
  rows_.Reset(dim_);
  rows_prev_.Reset(dim_);
}

FeatureCacheStats FeatureCache::Stats() const {
  FeatureCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.generation_evictions =
      generation_evictions_.load(std::memory_order_relaxed);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    stats.rows = slots_.size() + slots_prev_.size();
  }
  return stats;
}

}  // namespace lqo
