#include "ml/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats_util.h"

namespace lqo {
namespace {

constexpr double kMinStddev = 1e-3;

double NormalPdf(double x, double mean, double stddev) {
  double z = (x - mean) / stddev;
  return std::exp(-0.5 * z * z) / (stddev * std::sqrt(2.0 * M_PI));
}

double NormalCdf(double x, double mean, double stddev) {
  return 0.5 * std::erfc(-(x - mean) / (stddev * std::sqrt(2.0)));
}

}  // namespace

void GaussianMixture1D::Fit(const std::vector<double>& values) {
  LQO_CHECK(!values.empty());
  std::set<double> distinct(values.begin(), values.end());
  size_t k = std::min<size_t>(static_cast<size_t>(options_.num_components),
                              distinct.size());
  LQO_CHECK_GE(k, 1u);

  // Initialize on quantiles with a shared spread.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  weights_.assign(k, 1.0 / static_cast<double>(k));
  means_.resize(k);
  for (size_t c = 0; c < k; ++c) {
    size_t idx = (2 * c + 1) * (sorted.size() - 1) / (2 * k);
    means_[c] = sorted[idx];
  }
  double spread = std::max(kMinStddev, StdDev(values));
  stddevs_.assign(k, spread / static_cast<double>(k));

  size_t n = values.size();
  std::vector<double> responsibility(n * k);
  double previous_ll = -std::numeric_limits<double>::infinity();
  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    // E step.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (size_t c = 0; c < k; ++c) {
        double p = weights_[c] * NormalPdf(values[i], means_[c], stddevs_[c]);
        responsibility[i * k + c] = p;
        total += p;
      }
      if (total <= 1e-300) {
        // Point far from every component: assign to the nearest.
        size_t nearest = 0;
        for (size_t c = 1; c < k; ++c) {
          if (std::abs(values[i] - means_[c]) <
              std::abs(values[i] - means_[nearest])) {
            nearest = c;
          }
        }
        for (size_t c = 0; c < k; ++c) {
          responsibility[i * k + c] = c == nearest ? 1.0 : 0.0;
        }
        total = 1.0;
        ll += -700.0;  // log of ~1e-300
      } else {
        for (size_t c = 0; c < k; ++c) responsibility[i * k + c] /= total;
        ll += std::log(total);
      }
    }
    log_likelihood_ = ll;

    // M step.
    for (size_t c = 0; c < k; ++c) {
      double mass = 0.0, mean_acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        mass += responsibility[i * k + c];
        mean_acc += responsibility[i * k + c] * values[i];
      }
      if (mass < 1e-9) continue;  // dead component: freeze.
      weights_[c] = mass / static_cast<double>(n);
      means_[c] = mean_acc / mass;
      double var_acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double d = values[i] - means_[c];
        var_acc += responsibility[i * k + c] * d * d;
      }
      stddevs_[c] = std::max(kMinStddev, std::sqrt(var_acc / mass));
    }

    if (std::abs(ll - previous_ll) <
        options_.tolerance * (std::abs(ll) + 1.0)) {
      break;
    }
    previous_ll = ll;
  }
}

double GaussianMixture1D::Density(double x) const {
  LQO_CHECK(fitted());
  double p = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    p += weights_[c] * NormalPdf(x, means_[c], stddevs_[c]);
  }
  return p;
}

double GaussianMixture1D::Cdf(double x) const {
  LQO_CHECK(fitted());
  double p = 0.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    p += weights_[c] * NormalCdf(x, means_[c], stddevs_[c]);
  }
  return std::clamp(p, 0.0, 1.0);
}

size_t GaussianMixture1D::Assign(double x) const {
  LQO_CHECK(fitted());
  size_t best = 0;
  double best_p = -1.0;
  for (size_t c = 0; c < weights_.size(); ++c) {
    double p = weights_[c] * NormalPdf(x, means_[c], stddevs_[c]);
    if (p > best_p) {
      best_p = p;
      best = c;
    }
  }
  return best;
}

}  // namespace lqo
