#ifndef LQO_ML_CHOW_LIU_H_
#define LQO_ML_CHOW_LIU_H_

#include <cstdint>
#include <vector>

namespace lqo {

/// Learns the Chow-Liu tree over discrete variables: the maximum spanning
/// tree of the pairwise mutual-information graph. This is the structure
/// learner behind the BayesNet/BayesCard cardinality estimators [57,65].
///
/// `columns[v]` holds the value of variable v for every row; values must be
/// small non-negative codes (callers compress domains first).
struct ChowLiuResult {
  /// parent[v] = parent variable of v in the rooted tree, -1 for the root.
  std::vector<int> parent;
  /// Order in which variables appear root-first (parents precede children).
  std::vector<int> topological_order;
};

ChowLiuResult LearnChowLiuTree(
    const std::vector<std::vector<int64_t>>& columns,
    const std::vector<int64_t>& domain_sizes);

/// Mutual information (nats) between two discrete columns.
double MutualInformation(const std::vector<int64_t>& x,
                         const std::vector<int64_t>& y, int64_t x_domain,
                         int64_t y_domain);

}  // namespace lqo

#endif  // LQO_ML_CHOW_LIU_H_
