#ifndef LQO_ML_MLP_H_
#define LQO_ML_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/inference_stats.h"

namespace lqo {

/// Options for the multi-layer perceptron.
struct MlpOptions {
  std::vector<int> hidden_layers = {64, 32};
  int epochs = 150;
  int batch_size = 32;
  double learning_rate = 1e-3;
  double l2 = 1e-5;
  uint64_t seed = 31;
  /// kSquared: regression on (standardized) targets. kLogistic: binary
  /// classification with 0/1 targets; Predict returns the logit.
  enum class Loss { kSquared, kLogistic };
  Loss loss = Loss::kSquared;
};

/// A fully connected ReLU network with a scalar linear output, trained with
/// Adam. Stands in for the DNN components of MSCN [23], Neo's and Bao's
/// tree-convolution value networks [37,38] and Lero's comparator [79] (via
/// FitPairwise, a RankNet-style shared-scorer pairwise loss).
class Mlp {
 public:
  explicit Mlp(MlpOptions options = MlpOptions()) : options_(options) {}

  /// Supervised fit. Inputs are standardized internally; squared-loss
  /// targets are standardized too (undone at prediction time).
  void Fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets);

  /// Pairwise ranking fit: `labels[i]` is 1 if `first[i]` should score
  /// higher than `second[i]`, else 0. P(first wins) =
  /// sigmoid(s(first) - s(second)) with a shared scorer s.
  void FitPairwise(const std::vector<std::vector<double>>& first,
                   const std::vector<std::vector<double>>& second,
                   const std::vector<double>& labels);

  /// Regression value / raw score (logit for kLogistic; ranking score after
  /// FitPairwise).
  double Predict(const std::vector<double>& row) const;

  /// sigmoid(Predict) — probability for kLogistic models.
  double PredictProba(const std::vector<double>& row) const;

  /// P(a scores higher than b) under the pairwise model.
  double CompareProba(const std::vector<double>& a,
                      const std::vector<double>& b) const;

  /// Batch prediction over all rows of `x`, bit-for-bit identical to
  /// per-row Predict. Morsel-parallel; each morsel runs a blocked
  /// row-major forward pass that reuses two preallocated activation
  /// buffers across its rows (no per-row allocation), with every row's
  /// dot products in the scalar loop's i-ascending order.
  void PredictBatch(const FeatureMatrix& x, std::span<double> out) const;

  /// Batched-inference counters (rows scored via PredictBatch).
  InferenceStatsSnapshot Stats() const { return inference_.Snapshot(); }

  bool fitted() const { return fitted_; }

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    std::vector<double> w;  // row-major out x in
    std::vector<double> b;
    // Adam state.
    std::vector<double> mw, vw, mb, vb;
  };

  void InitNetwork(size_t input_dim);
  /// Forward pass; fills per-layer pre-activations (z) and activations (a).
  double Forward(const std::vector<double>& x,
                 std::vector<std::vector<double>>* zs,
                 std::vector<std::vector<double>>* as) const;
  /// Backprop of dL/d(output)=g into grad accumulators.
  void Backward(double g, const std::vector<std::vector<double>>& zs,
                const std::vector<std::vector<double>>& as,
                std::vector<Layer>* grads) const;
  void AdamStep(const std::vector<Layer>& grads, double batch_scale);
  /// Blocked forward kernel over rows [begin, end), writing out[i - begin].
  void ForwardBlock(const FeatureMatrix& x, size_t begin, size_t end,
                    double* out) const;

  MlpOptions options_;
  std::vector<Layer> layers_;
  Standardizer input_standardizer_;
  double target_mean_ = 0.0;
  double target_std_ = 1.0;
  bool fitted_ = false;
  int adam_t_ = 0;
  mutable InferenceCounters inference_;
};

/// Numerically stable logistic sigmoid.
double Sigmoid(double x);

}  // namespace lqo

#endif  // LQO_ML_MLP_H_
