#ifndef LQO_ML_GBDT_H_
#define LQO_ML_GBDT_H_

#include <vector>

#include "ml/tree.h"

namespace lqo {

/// Options for gradient-boosted regression trees.
struct GbdtOptions {
  int num_trees = 120;
  double learning_rate = 0.1;
  TreeOptions tree;
  /// Row subsampling per tree (stochastic gradient boosting); 1.0 = all.
  double subsample = 0.8;
  uint64_t seed = 17;

  GbdtOptions() { tree.max_depth = 4; }
};

/// Gradient-boosted trees with squared loss — the XGBoost-style lightweight
/// model of Dutt et al. [9,10], reused as a plan-cost model and as the
/// UAE-style hybrid correction model.
class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(GbdtOptions options = GbdtOptions())
      : options_(options) {}

  void Fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets);

  double Predict(const std::vector<double>& row) const;

  bool fitted() const { return fitted_; }
  size_t num_trees() const { return trees_.size(); }

 private:
  GbdtOptions options_;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
  bool fitted_ = false;
};

}  // namespace lqo

#endif  // LQO_ML_GBDT_H_
