#ifndef LQO_ML_GBDT_H_
#define LQO_ML_GBDT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "ml/compact_forest.h"
#include "ml/tree.h"

namespace lqo {

/// Options for gradient-boosted regression trees.
struct GbdtOptions {
  int num_trees = 120;
  double learning_rate = 0.1;
  TreeOptions tree;
  /// Row subsampling per tree (stochastic gradient boosting); 1.0 = all.
  double subsample = 0.8;
  uint64_t seed = 17;
  /// Ensembles with more than this many total nodes leave L2 residence, so
  /// Fit() additionally packs the compact quantized layout
  /// (ml/compact_forest.h) and PredictBatch serves from it. 0 forces the
  /// compact layout; SIZE_MAX disables it. Predictions are identical either
  /// way (build-time threshold quantization).
  size_t compact_min_total_nodes = 1u << 15;

  GbdtOptions() { tree.max_depth = 4; }
};

/// Gradient-boosted trees with squared loss — the XGBoost-style lightweight
/// model of Dutt et al. [9,10], reused as a plan-cost model and as the
/// UAE-style hybrid correction model.
class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(GbdtOptions options = GbdtOptions())
      : options_(options) {}

  void Fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets);

  double Predict(const std::vector<double>& row) const;

  /// Batch prediction over all rows of `x`, bit-for-bit identical to
  /// per-row Predict. Morsel-parallel; within a morsel the boosted trees
  /// run tree-major, each row accumulating base + lr * tree_t in boosting
  /// order — the scalar loop's additions — at any LQO_THREADS.
  void PredictBatch(const FeatureMatrix& x, std::span<double> out) const;

  /// Batched-inference counters (rows scored via PredictBatch).
  InferenceStatsSnapshot Stats() const { return inference_.Snapshot(); }

  bool fitted() const { return fitted_; }
  size_t num_trees() const { return trees_.size(); }

  /// Re-applies the compact-layout size gate with a new threshold (packs or
  /// drops the compact arenas to match). Benches/tests use this to compare
  /// both layouts on one fitted ensemble without refitting.
  void ConfigureCompact(size_t min_total_nodes);

  /// True when batch predictions are served from the compact layout.
  bool compact() const { return !compact_.empty(); }
  size_t total_nodes() const;
  /// Arena bytes of the active compact layout (0 when on the SoA path).
  size_t compact_bytes() const { return compact_.bytes(); }

 private:
  GbdtOptions options_;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
  /// Packed mirror of trees_; non-empty iff the size gate selected it.
  CompactGbdt compact_;
  bool fitted_ = false;
  mutable InferenceCounters inference_;
};

}  // namespace lqo

#endif  // LQO_ML_GBDT_H_
