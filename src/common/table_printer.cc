#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace lqo {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  LQO_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto separator = [&]() {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  out << separator() << render_row(header_) << separator();
  for (const auto& row : rows_) out << render_row(row);
  out << separator();
  return out.str();
}

}  // namespace lqo
