#ifndef LQO_COMMON_THREAD_POOL_H_
#define LQO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace lqo {

/// Fixed-size worker pool behind every parallel loop in the library.
///
/// Design constraints (see DESIGN.md "Concurrency model"):
///  - Determinism first: the pool itself never reorders observable results.
///    All parallel helpers below write into index-addressed slots and reduce
///    serially, so running at 1 thread and at N threads is bit-for-bit
///    identical.
///  - `LQO_THREADS` in the environment overrides the default worker count
///    (hardware concurrency). `LQO_THREADS=1` degenerates to fully serial
///    inline execution — no worker threads are spawned at all.
///  - Tasks submitted from inside a worker run inline (nested ParallelFor is
///    safe and cannot deadlock the pool).
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// ParallelFor); `num_threads <= 1` spawns none.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical parallelism of this pool (>= 1).
  int num_threads() const { return num_threads_; }

  /// Enqueues a task. Tasks must not block on other tasks in this pool
  /// (ParallelFor handles that by running inline when nested).
  void Submit(std::function<void()> task) LQO_EXCLUDES(mutex_);

  /// The process-wide pool used by ParallelFor/ParallelMap when no explicit
  /// pool is given. Sized from LQO_THREADS, else hardware concurrency.
  static ThreadPool& Global();

  /// Resizes the global pool (tests and benchmarks sweep thread counts).
  /// Must not be called while parallel work is in flight.
  static void SetGlobalThreads(int num_threads);

  /// Worker count implied by an LQO_THREADS-style string; falls back to
  /// hardware concurrency when `value` is null, empty, or not a positive
  /// integer. Exposed for testing.
  static int ParseThreadCount(const char* value);

  /// True when called from one of this pool's worker threads.
  static bool InWorker();

 private:
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ LQO_GUARDED_BY(mutex_);
  std::mutex mutex_;  // guards: queue_, stop_
  std::condition_variable ready_;
  bool stop_ LQO_GUARDED_BY(mutex_) = false;
};

/// Runs fn(0), ..., fn(n-1), partitioned over the pool, and blocks until all
/// complete. Exceptions thrown by tasks are captured and the one from the
/// lowest-indexed chunk is rethrown on the calling thread (a deterministic
/// choice). Runs inline (serially) when the pool has one thread, when n <= 1,
/// or when called from inside a worker (nesting).
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 ThreadPool* pool = nullptr);

/// Index-addressed parallel map: returns {fn(0), ..., fn(n-1)} in index
/// order regardless of execution interleaving, so reductions over the result
/// are stable across thread counts.
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn, ThreadPool* pool = nullptr)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> results(n);
  ParallelFor(
      n, [&](size_t i) { results[i] = fn(i); }, pool);
  return results;
}

}  // namespace lqo

#endif  // LQO_COMMON_THREAD_POOL_H_
